// Shared helpers for the experiment-reproduction benches.
//
// Every bench binary prints the paper-style table/series first (that output
// is what EXPERIMENTS.md records), then hands over to google-benchmark for
// wall-clock timing of the underlying synthesis calls.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fat_runner.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/io/jsonl.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::bench {

/// First line of `path` with the `key:`-style prefix stripped, or
/// `fallback` when the file is unreadable (containers often hide
/// /sys/devices/system/cpu cpufreq nodes).
inline std::string read_first_line(const std::string& path,
                                   const std::string& key,
                                   const std::string& fallback) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (key.empty()) return line.empty() ? fallback : line;
    if (line.compare(0, key.size(), key) == 0) {
      std::size_t pos = line.find(':');
      pos = line.find_first_not_of(" \t", pos == std::string::npos ? pos
                                                                   : pos + 1);
      if (pos != std::string::npos) return line.substr(pos);
    }
  }
  return fallback;
}

/// Appends machine + build provenance to a bench JSONL record so a stored
/// baseline identifies the environment that produced it: CPU model and
/// visible core count, the cpufreq governor (a "powersave" baseline is not
/// comparable to a "performance" one), compiler, and the build type/flags
/// baked in by CMake. Extra fields are ignored by tools/bench_check, so
/// provenance never breaks an existing baseline comparison.
inline io::JsonlWriter& append_env_provenance(io::JsonlWriter& w) {
  w.field("cpu_model",
          read_first_line("/proc/cpuinfo", "model name", "unknown"));
  w.field("cpu_cores",
          static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.field("cpu_governor",
          read_first_line(
              "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor", "",
              "unknown"));
#if defined(__clang__)
  w.field("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
  w.field("compiler", std::string("gcc ") + __VERSION__);
#else
  w.field("compiler", "unknown");
#endif
#if defined(VINOC_BUILD_TYPE)
  w.field("build_type", VINOC_BUILD_TYPE);
#endif
#if defined(VINOC_BUILD_FLAGS)
  w.field("build_flags", VINOC_BUILD_FLAGS);
#endif
  return w;
}

/// Detects and strips `--quick` from the argument list (so it never reaches
/// google-benchmark's parser). Quick mode is the CI perf-smoke contract:
/// print the table + JSONL with a reduced workload and SKIP the
/// google-benchmark tail, so the binary finishes in seconds.
inline bool quick_mode(int& argc, char** argv) {
  bool quick = false;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::string(argv[r]) == "--quick") {
      quick = true;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return quick;
}

/// The island-count sweep of the paper's Figures 2 and 3 (the last point is
/// "every core in its own island").
inline std::vector<int> figure_island_counts(int core_count) {
  std::vector<int> counts = {1, 2, 3, 4, 5, 6, 7};
  counts.push_back(core_count);
  return counts;
}

/// Result of synthesizing one islanding variant and picking the design point
/// the figures report (the minimum-power point among the saved ones).
struct SweepPoint {
  int islands = 0;
  bool ok = false;
  core::Metrics metrics;
  int design_points = 0;
  int intermediate_switches = 0;
  double elapsed_s = 0.0;
};

inline SweepPoint run_point(const soc::SocSpec& spec,
                            const core::SynthesisOptions& options) {
  SweepPoint p;
  p.islands = static_cast<int>(spec.islands.size());
  const core::SynthesisResult result = core::synthesize(spec, options);
  p.design_points = static_cast<int>(result.points.size());
  p.elapsed_s = result.stats.elapsed_seconds;
  if (!result.points.empty()) {
    const core::DesignPoint& best = result.best_power();
    p.ok = true;
    p.metrics = best.metrics;
    p.intermediate_switches = best.intermediate_switches;
  }
  return p;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

/// Formats a RobustStats time measurement as "min/med/max" seconds for
/// the human tables (the JSONL records carry the full median+MAD shape
/// via fat_runner's append_metric).
inline std::string time_range(const RobustStats& t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f/%.4f/%.4f", t.min, t.median, t.max);
  return std::string(buf);
}

/// Standard google-benchmark tail: time a full synthesize() call.
inline void time_synthesis(benchmark::State& state, const soc::SocSpec& spec,
                           const core::SynthesisOptions& options) {
  for (auto _ : state) {
    const core::SynthesisResult r = core::synthesize(spec, options);
    benchmark::DoNotOptimize(r.points.size());
  }
}

}  // namespace vinoc::bench

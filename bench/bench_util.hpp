// Shared helpers for the experiment-reproduction benches.
//
// Every bench binary prints the paper-style table/series first (that output
// is what EXPERIMENTS.md records), then hands over to google-benchmark for
// wall-clock timing of the underlying synthesis calls.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "vinoc/core/synthesis.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::bench {

/// Detects and strips `--quick` from the argument list (so it never reaches
/// google-benchmark's parser). Quick mode is the CI perf-smoke contract:
/// print the table + JSONL with a reduced workload and SKIP the
/// google-benchmark tail, so the binary finishes in seconds.
inline bool quick_mode(int& argc, char** argv) {
  bool quick = false;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::string(argv[r]) == "--quick") {
      quick = true;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return quick;
}

/// The island-count sweep of the paper's Figures 2 and 3 (the last point is
/// "every core in its own island").
inline std::vector<int> figure_island_counts(int core_count) {
  std::vector<int> counts = {1, 2, 3, 4, 5, 6, 7};
  counts.push_back(core_count);
  return counts;
}

/// Result of synthesizing one islanding variant and picking the design point
/// the figures report (the minimum-power point among the saved ones).
struct SweepPoint {
  int islands = 0;
  bool ok = false;
  core::Metrics metrics;
  int design_points = 0;
  int intermediate_switches = 0;
  double elapsed_s = 0.0;
};

inline SweepPoint run_point(const soc::SocSpec& spec,
                            const core::SynthesisOptions& options) {
  SweepPoint p;
  p.islands = static_cast<int>(spec.islands.size());
  const core::SynthesisResult result = core::synthesize(spec, options);
  p.design_points = static_cast<int>(result.points.size());
  p.elapsed_s = result.stats.elapsed_seconds;
  if (!result.points.empty()) {
    const core::DesignPoint& best = result.best_power();
    p.ok = true;
    p.metrics = best.metrics;
    p.intermediate_switches = best.intermediate_switches;
  }
  return p;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

/// Standard google-benchmark tail: time a full synthesize() call.
inline void time_synthesis(benchmark::State& state, const soc::SocSpec& spec,
                           const core::SynthesisOptions& options) {
  for (auto _ : state) {
    const core::SynthesisResult r = core::synthesize(spec, options);
    benchmark::DoNotOptimize(r.points.size());
  }
}

}  // namespace vinoc::bench

// Figure 4 reproduction: an example synthesized topology for the D26 SoC
// with 6 voltage islands under logical partitioning.
//
// The paper shows the topology as a drawing; we emit the same information as
// Graphviz DOT (written to d26_fig4_topology.dot) and print a structural
// summary: switches per island, link list with FIFO markers, and the
// shutdown-safety audit.
#include "bench_util.hpp"
#include "vinoc/core/shutdown_safety.hpp"
#include "vinoc/io/exports.hpp"

namespace {

using namespace vinoc;

void print_topology() {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  core::SynthesisOptions options;
  const core::SynthesisResult result = core::synthesize(spec, options);

  bench::print_header("Figure 4: example topology (D26, 6 VIs, logical partitioning)",
                      "Seiculescu et al., DAC 2009, Figure 4");
  if (result.points.empty()) {
    std::printf("no design point found\n");
    return;
  }
  const core::DesignPoint& best = result.best_power();
  const core::NocTopology& topo = best.topology;

  std::printf("design point: %.2f mW (switches+links+fifos), %.2f cycles avg\n\n",
              best.metrics.paper_noc_dynamic_w() * 1e3,
              best.metrics.avg_latency_cycles);

  for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
    std::printf("island %-8s (%s, NoC @ %.0f MHz):\n", spec.islands[isl].name.c_str(),
                spec.islands[isl].can_shutdown ? "gateable" : "always-on",
                topo.island_freq_hz[isl] / 1e6);
    for (std::size_t s = 0; s < topo.switches.size(); ++s) {
      if (topo.switches[s].island != static_cast<soc::IslandId>(isl)) continue;
      std::printf("  sw%zu:", s);
      for (const soc::CoreId c : topo.switches[s].cores) {
        std::printf(" %s", spec.cores[static_cast<std::size_t>(c)].name.c_str());
      }
      std::printf("\n");
    }
  }
  int n_inter = 0;
  for (const core::SwitchInst& s : topo.switches) {
    if (s.island == core::kIntermediateIsland) ++n_inter;
  }
  std::printf("intermediate NoC VI switches: %d\n\n", n_inter);

  std::printf("links (%zu total, %d island crossings via bi-sync FIFOs):\n",
              topo.links.size(), best.metrics.fifo_count);
  for (std::size_t l = 0; l < topo.links.size(); ++l) {
    const core::TopLink& link = topo.links[l];
    std::printf("  sw%-3d -> sw%-3d %7.1f MB/s, %4.2f mm%s\n", link.src_switch,
                link.dst_switch, link.carried_bw_bits_per_s / 8e6, link.length_mm,
                link.crosses_island ? "  [FIFO]" : "");
  }

  const auto violations = core::verify_shutdown_safety(topo, spec);
  std::printf("\nshutdown-safety audit: %s\n",
              violations.empty() ? "PASS (no flow transits a third gateable island)"
                                 : violations.front().c_str());

  io::write_file("d26_fig4_topology.dot", io::topology_to_dot(topo, spec));
  std::printf("wrote d26_fig4_topology.dot\n\n");
}

void BM_SynthesizeFig4(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  vinoc::bench::time_synthesis(state, spec, {});
}
BENCHMARK(BM_SynthesizeFig4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_topology();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Campaign engine throughput: jobs/second of a cold batch run and the
// speedup a warm content-hash cache delivers on the re-run.
//
// This is beyond the paper (it synthesizes each design once, by hand); the
// campaign engine is what lets the reproduction sweep thousands of
// (scenario, islanding, island count, width) combinations as one scheduled,
// cached, resumable batch. The table reports, per thread count: cold
// wall time, warm (all-cache-hit) wall time, and the hit speedup — the
// acceptance bar is >= 5x, in practice it is orders of magnitude. One JSON
// line per measurement between the BEGIN/END JSONL markers.
#include "bench_util.hpp"

#include "vinoc/campaign/engine.hpp"
#include "vinoc/campaign/result_cache.hpp"
#include "vinoc/io/jsonl.hpp"

namespace {

using namespace vinoc;

/// Moderate matrix: d16 + a 12-core synthetic family (base + 2 variants),
/// 2 strategies x {2,3} islands x {32,64} bits = 32 jobs. Quick mode (CI
/// perf smoke) drops the synthetic variants and one width: 8 jobs.
campaign::CampaignSpec bench_campaign(bool quick) {
  campaign::CampaignSpec spec;
  spec.name = "bench";
  spec.benchmarks = {"d16"};
  campaign::SyntheticScenario family;
  family.params.cores = 12;
  family.params.hubs = 2;
  family.perturbations = quick ? 0 : 2;
  spec.synthetic.push_back(family);
  spec.strategies = {"logical", "comm"};
  spec.island_counts = {2, 3};
  spec.widths = quick ? std::vector<int>{32} : std::vector<int>{32, 64};
  return spec;
}

void print_table(bool quick) {
  bench::print_header(
      "Campaign engine: batch throughput and cache-hit speedup",
      "beyond the paper (batched multi-scenario synthesis harness)");
  const campaign::CampaignSpec spec = bench_campaign(quick);
  std::printf("%-10s %-8s %-12s %-12s %-12s %-10s\n", "threads", "jobs",
              "cold [s]", "jobs/s", "warm [s]", "speedup");
  struct Row {
    int threads;
    int jobs;
    double cold_s, warm_s;
  };
  std::vector<Row> rows;
  for (const int threads : quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4}) {
    campaign::ResultCache cache;
    campaign::CampaignOptions opt;
    opt.threads = threads;
    opt.cache = &cache;
    const campaign::CampaignResult cold = campaign::run_campaign(spec, opt);
    const campaign::CampaignResult warm = campaign::run_campaign(spec, opt);
    if (warm.cache_hits() != warm.jobs_total()) {
      std::printf("ERROR: warm run expected all hits, got %d/%d\n",
                  warm.cache_hits(), warm.jobs_total());
    }
    rows.push_back({threads, cold.jobs_total(), cold.wall_s, warm.wall_s});
    std::printf("%-10d %-8d %-12.3f %-12.1f %-12.4f %.0fx\n", threads,
                cold.jobs_total(), cold.wall_s, cold.jobs_total() / cold.wall_s,
                warm.wall_s, cold.wall_s / warm.wall_s);
  }
  std::printf("\n--- BEGIN JSONL (campaign_cache_speedup) ---\n");
  for (const Row& r : rows) {
    io::JsonlWriter w;
    w.field("bench", "campaign_cache_speedup")
        .field("threads", r.threads)
        .field("jobs", r.jobs)
        .field("cold_s", r.cold_s)
        .field("warm_s", r.warm_s)
        .field("jobs_per_s", r.jobs / r.cold_s)
        .field("speedup", r.cold_s / r.warm_s);
    bench::append_env_provenance(w);
    std::printf("%s\n", w.line().c_str());
  }
  // One-line summary (threads = 1 row) keyed for tools/bench_check.
  io::JsonlWriter summary;
  summary.field("bench", "campaign_summary")
      .field("quick", quick)
      .field("jobs_per_s", rows[0].jobs / rows[0].cold_s)
      .field("warm_speedup", rows[0].cold_s / rows[0].warm_s);
  bench::append_env_provenance(summary);
  std::printf("%s\n", summary.line().c_str());
  std::printf("--- END JSONL ---\n\n");
}

void BM_CampaignCold(benchmark::State& state) {
  const campaign::CampaignSpec spec = bench_campaign(false);
  campaign::CampaignOptions opt;
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const campaign::CampaignResult r = campaign::run_campaign(spec, opt);
    benchmark::DoNotOptimize(r.records.size());
  }
}
BENCHMARK(BM_CampaignCold)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CampaignWarm(benchmark::State& state) {
  const campaign::CampaignSpec spec = bench_campaign(false);
  campaign::ResultCache cache;
  campaign::CampaignOptions opt;
  opt.threads = static_cast<int>(state.range(0));
  opt.cache = &cache;
  (void)campaign::run_campaign(spec, opt);  // fill the cache once
  for (auto _ : state) {
    const campaign::CampaignResult r = campaign::run_campaign(spec, opt);
    benchmark::DoNotOptimize(r.cache_hits());
  }
}
BENCHMARK(BM_CampaignWarm)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = vinoc::bench::quick_mode(argc, argv);
  print_table(quick);
  if (quick) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Campaign engine throughput: jobs/second of a cold batch run and the
// speedup a warm content-hash cache delivers on the re-run.
//
// This is beyond the paper (it synthesizes each design once, by hand); the
// campaign engine is what lets the reproduction sweep thousands of
// (scenario, islanding, island count, width) combinations as one scheduled,
// cached, resumable batch. The table reports, per thread count: cold
// wall time, warm (all-cache-hit) wall time, and the hit speedup — the
// acceptance bar is >= 5x, in practice it is orders of magnitude. One JSON
// line per measurement between the BEGIN/END JSONL markers.
#include "bench_util.hpp"

#include "vinoc/campaign/engine.hpp"
#include "vinoc/campaign/result_cache.hpp"
#include "vinoc/io/jsonl.hpp"

namespace {

using namespace vinoc;

/// Moderate matrix: d16 + a 12-core synthetic family (base + 2 variants),
/// 2 strategies x {2,3} islands x {32,64} bits = 32 jobs. Quick mode (CI
/// perf smoke) drops the synthetic variants and one width: 8 jobs.
campaign::CampaignSpec bench_campaign(bool quick) {
  campaign::CampaignSpec spec;
  spec.name = "bench";
  spec.benchmarks = {"d16"};
  campaign::SyntheticScenario family;
  family.params.cores = 12;
  family.params.hubs = 2;
  family.perturbations = quick ? 0 : 2;
  spec.synthetic.push_back(family);
  spec.strategies = {"logical", "comm"};
  spec.island_counts = {2, 3};
  spec.widths = quick ? std::vector<int>{32} : std::vector<int>{32, 64};
  return spec;
}

void print_table(bool quick) {
  bench::print_header(
      "Campaign engine: batch throughput and cache-hit speedup",
      "beyond the paper (batched multi-scenario synthesis harness)");
  const campaign::CampaignSpec spec = bench_campaign(quick);
  // Statistical measurement (bench/fat_runner.hpp) of the gated threads=1
  // numbers: cold = fresh cache every rep, warm = all-hit re-run against
  // a pre-filled cache; median + MAD over the reps feed the perf gate.
  bench::FatRunner runner(bench::FatConfig::from_env_or_die());
  bench::RecordProvenance prov(runner.config());

  int jobs = 0;
  const bench::Measurement cold_m = runner.run("campaign_cold", [&] {
    campaign::ResultCache cache;
    campaign::CampaignOptions opt;
    opt.threads = 1;
    opt.cache = &cache;
    const campaign::CampaignResult r = campaign::run_campaign(spec, opt);
    jobs = r.jobs_total();
    benchmark::DoNotOptimize(r.records.size());
  });
  campaign::ResultCache warm_cache;
  campaign::CampaignOptions warm_opt;
  warm_opt.threads = 1;
  warm_opt.cache = &warm_cache;
  (void)campaign::run_campaign(spec, warm_opt);  // fill the cache once
  // Correctness guardrail, outside the timed region: the warm re-run must
  // serve every job from the cache or "warm" times the wrong thing.
  const campaign::CampaignResult check = campaign::run_campaign(spec, warm_opt);
  if (check.cache_hits() != check.jobs_total()) {
    std::fprintf(stderr, "bench_campaign: warm run expected all hits, got %d/%d\n",
                 check.cache_hits(), check.jobs_total());
    std::exit(1);
  }
  const bench::Measurement warm_m = runner.run("campaign_warm", [&] {
    const campaign::CampaignResult r = campaign::run_campaign(spec, warm_opt);
    benchmark::DoNotOptimize(r.cache_hits());
  });
  prov.add(cold_m);
  prov.add(warm_m);
  const bench::RobustStats jobs_per_s = bench::rate_from_time(cold_m.stats, jobs);
  const bench::RobustStats warm_speedup =
      bench::ratio_of(cold_m.stats, warm_m.stats);

  std::printf("%-10s %-8s %-12s %-12s %-12s %-10s %-6s\n", "threads", "jobs",
              "cold [s]", "jobs/s", "warm [s]", "speedup", "reps");
  std::printf("%-10d %-8d %-12.3f %-12.1f %-12.4f %-10.0f %d\n", 1, jobs,
              cold_m.stats.median, jobs_per_s.median, warm_m.stats.median,
              warm_speedup.median, std::min(cold_m.stats.n, warm_m.stats.n));

  // Thread-scaling rows (observability only — single-shot, not gated).
  struct Row {
    int threads;
    int jobs;
    double cold_s, warm_s;
  };
  std::vector<Row> rows;
  for (const int threads : quick ? std::vector<int>{2} : std::vector<int>{2, 4}) {
    campaign::ResultCache cache;
    campaign::CampaignOptions opt;
    opt.threads = threads;
    opt.cache = &cache;
    const campaign::CampaignResult cold = campaign::run_campaign(spec, opt);
    const campaign::CampaignResult warm = campaign::run_campaign(spec, opt);
    if (warm.cache_hits() != warm.jobs_total()) {
      std::printf("ERROR: warm run expected all hits, got %d/%d\n",
                  warm.cache_hits(), warm.jobs_total());
    }
    rows.push_back({threads, cold.jobs_total(), cold.wall_s, warm.wall_s});
    std::printf("%-10d %-8d %-12.3f %-12.1f %-12.4f %.0fx\n", threads,
                cold.jobs_total(), cold.wall_s, cold.jobs_total() / cold.wall_s,
                warm.wall_s, cold.wall_s / warm.wall_s);
  }

  std::printf("\n--- BEGIN JSONL (campaign_cache_speedup) ---\n");
  for (const Row& r : rows) {
    // Raw seconds only (observability fields, never gated): the gated
    // rates live in the campaign_summary record below.
    io::JsonlWriter w;
    w.field("bench", "campaign_cache_speedup")
        .field("threads", r.threads)
        .field("jobs", r.jobs)
        .field("cold_s", r.cold_s)
        .field("warm_s", r.warm_s);
    bench::append_env_provenance(w);
    std::printf("%s\n", w.line().c_str());
  }
  // One-line summary (threads = 1, FatRunner-measured) keyed for
  // tools/bench_check.
  io::JsonlWriter summary;
  summary.field("bench", "campaign_summary")
      .field("quick", quick)
      .field("jobs", jobs)
      .field("cold_s", cold_m.stats.median)
      .field("warm_s", warm_m.stats.median);
  bench::append_metric(summary, "jobs_per_s", jobs_per_s);
  bench::append_metric(summary, "warm_speedup", warm_speedup);
  prov.append(summary);
  bench::append_env_provenance(summary);
  std::printf("%s\n", summary.line().c_str());
  std::printf("--- END JSONL ---\n\n");
}

void BM_CampaignCold(benchmark::State& state) {
  const campaign::CampaignSpec spec = bench_campaign(false);
  campaign::CampaignOptions opt;
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const campaign::CampaignResult r = campaign::run_campaign(spec, opt);
    benchmark::DoNotOptimize(r.records.size());
  }
}
BENCHMARK(BM_CampaignCold)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CampaignWarm(benchmark::State& state) {
  const campaign::CampaignSpec spec = bench_campaign(false);
  campaign::ResultCache cache;
  campaign::CampaignOptions opt;
  opt.threads = static_cast<int>(state.range(0));
  opt.cache = &cache;
  (void)campaign::run_campaign(spec, opt);  // fill the cache once
  for (auto _ : state) {
    const campaign::CampaignResult r = campaign::run_campaign(spec, opt);
    benchmark::DoNotOptimize(r.cache_hits());
  }
}
BENCHMARK(BM_CampaignWarm)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = vinoc::bench::quick_mode(argc, argv);
  print_table(quick);
  if (quick) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Figure 5 reproduction: an example floorplan for the D26 SoC with the
// synthesized NoC components inserted (same design point as Figure 4).
//
// Emits d26_fig5_floorplan.svg and prints the placement table: island
// regions, core rectangles, switch positions, and the wiring totals.
#include "bench_util.hpp"
#include "vinoc/io/exports.hpp"

namespace {

using namespace vinoc;

void print_floorplan() {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  core::SynthesisOptions options;
  const core::SynthesisResult result = core::synthesize(spec, options);

  bench::print_header("Figure 5: example floorplan (D26, 6 VIs, logical partitioning)",
                      "Seiculescu et al., DAC 2009, Figure 5");
  const floorplan::Floorplan& fp = result.floorplan;
  std::printf("chip: %.2f x %.2f mm (%.1f mm^2), %zu islands, %zu cores\n\n",
              fp.chip_width_mm(), fp.chip_height_mm(), fp.chip_area_mm2(),
              fp.island_count(), fp.core_count());

  std::printf("%-12s %-10s %-10s %-10s %-10s\n", "island", "x[mm]", "y[mm]",
              "w[mm]", "h[mm]");
  for (std::size_t isl = 0; isl < fp.island_count(); ++isl) {
    const floorplan::Rect& r = fp.island_rect(static_cast<soc::IslandId>(isl));
    std::printf("%-12s %-10.2f %-10.2f %-10.2f %-10.2f\n",
                spec.islands[isl].name.c_str(), r.x_mm, r.y_mm, r.w_mm, r.h_mm);
  }

  const auto problems = fp.validate(spec);
  std::printf("\nfloorplan validity: %s\n",
              problems.empty() ? "PASS (no overlaps, islands contiguous)"
                               : problems.front().c_str());

  if (!result.points.empty()) {
    const core::DesignPoint& best = result.best_power();
    std::printf("NoC inserted: %d switches, %zu links, %.1f mm of wiring\n",
                best.metrics.switch_count, best.topology.links.size(),
                best.metrics.total_wire_mm);
    io::write_file("d26_fig5_floorplan.svg",
                   io::floorplan_to_svg(fp, spec, &best.topology));
    std::printf("wrote d26_fig5_floorplan.svg\n\n");
  }
}

void BM_FloorplanD26(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  for (auto _ : state) {
    const floorplan::Floorplan fp = floorplan::Floorplan::build(spec);
    benchmark::DoNotOptimize(fp.chip_area_mm2());
  }
}
BENCHMARK(BM_FloorplanD26)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_floorplan();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

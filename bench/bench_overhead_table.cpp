// Reproduction of the paper's headline overhead claims (Section 5, text):
//
//   "For the different SoC benchmarks, we found that the topologies
//    synthesized to support multiple VIs incur a 3% overhead on the total
//    system's dynamic power. We found that the area overhead is also
//    negligible, with less than 0.5% increase in the total SoC area."
//
// For every benchmark we synthesize (a) the shutdown-oblivious baseline —
// the same algorithm with all cores in a single island, i.e. no FIFO
// converters and no island routing restrictions — and (b) the VI-aware
// design on the logical islanding. Overheads are quoted against *total SoC*
// dynamic power / area, exactly as in the paper.
#include <algorithm>

#include "bench_util.hpp"

namespace {

using namespace vinoc;

struct Row {
  std::string name;
  int islands = 0;
  bool ok = false;
  double noc_base_mw = 0.0;
  double noc_vi_mw = 0.0;
  double power_overhead_pct = 0.0;  ///< of total SoC dynamic power
  double area_overhead_pct = 0.0;   ///< of total SoC area
};

Row eval_benchmark(const soc::Benchmark& bm, int islands) {
  Row row;
  row.name = bm.soc.name;
  core::SynthesisOptions options;

  const soc::SocSpec base_spec = soc::with_logical_islands(bm.soc, 1, bm.use_cases);
  const soc::SocSpec vi_spec =
      soc::with_logical_islands(bm.soc, islands, bm.use_cases);
  row.islands = static_cast<int>(vi_spec.islands.size());

  const core::SynthesisResult base = core::synthesize(base_spec, options);
  const core::SynthesisResult vi = core::synthesize(vi_spec, options);
  if (base.points.empty() || vi.points.empty()) return row;
  const core::Metrics& mb = base.best_power().metrics;
  const core::Metrics& mv = vi.best_power().metrics;

  const double soc_dyn_w = bm.soc.total_core_dynamic_w() + mb.noc_dynamic_w;
  const double soc_area_mm2 = bm.soc.total_core_area_mm2() + mb.noc_area_mm2;

  row.ok = true;
  row.noc_base_mw = mb.noc_dynamic_w * 1e3;
  row.noc_vi_mw = mv.noc_dynamic_w * 1e3;
  row.power_overhead_pct =
      (mv.noc_dynamic_w - mb.noc_dynamic_w) / soc_dyn_w * 100.0;
  row.area_overhead_pct = (mv.noc_area_mm2 - mb.noc_area_mm2) / soc_area_mm2 * 100.0;
  return row;
}

void print_table() {
  bench::print_header(
      "Overhead of shutdown support vs. shutdown-oblivious baseline",
      "Seiculescu et al., DAC 2009, Section 5 (3% power / 0.5% area claims)");

  std::vector<soc::Benchmark> suite = soc::all_benchmarks();
  {
    soc::SyntheticParams sp;
    sp.cores = 20;
    sp.seed = 3;
    suite.push_back(soc::make_synthetic_soc(sp));
    sp.cores = 32;
    sp.hubs = 4;
    sp.seed = 9;
    suite.push_back(soc::make_synthetic_soc(sp));
  }

  std::printf("%-22s %-8s %-14s %-14s %-16s %-14s\n", "benchmark", "VIs",
              "NoC base[mW]", "NoC VI[mW]", "power ovh [%]", "area ovh [%]");
  double sum_p = 0.0;
  double sum_a = 0.0;
  int n_ok = 0;
  for (const soc::Benchmark& bm : suite) {
    const int islands =
        std::min(6, static_cast<int>(bm.soc.core_count()) / 2);
    const Row row = eval_benchmark(bm, islands);
    if (!row.ok) {
      std::printf("%-22s %-8d (no design point)\n", row.name.c_str(), row.islands);
      continue;
    }
    std::printf("%-22s %-8d %-14.2f %-14.2f %-16.2f %-14.3f\n", row.name.c_str(),
                row.islands, row.noc_base_mw, row.noc_vi_mw,
                row.power_overhead_pct, row.area_overhead_pct);
    sum_p += row.power_overhead_pct;
    sum_a += row.area_overhead_pct;
    ++n_ok;
  }
  if (n_ok > 0) {
    std::printf("%-22s %-8s %-14s %-14s %-16.2f %-14.3f\n", "AVERAGE", "", "", "",
                sum_p / n_ok, sum_a / n_ok);
  }
  std::printf("\n(paper: ~3%% average dynamic-power overhead, <0.5%% area overhead)\n\n");
}

void BM_OverheadD26(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  vinoc::bench::time_synthesis(state, spec, {});
}
BENCHMARK(BM_OverheadD26)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Candidate-evaluation hot-path throughput: candidates/second through the
// staged engine (enumerate -> partition -> evaluate) on the seed benchmark
// sweep, in three modes:
//
//   cold     — call-local allocations, no pruning (the call pattern of the
//              pre-arena evaluation path);
//   scratch  — per-worker EvalScratch arenas (reset, not reallocated);
//   pruned   — arenas + Pareto-bound pruning against the running front
//              (sequential semantics: the bound grows with saved points in
//              enumeration order, exactly like synthesize()).
//
// It also times full synthesize() calls (prune on, the production path) for
// the end-to-end candidates/s number the CI perf gate tracks.
//
// One JSON line per measurement between the BEGIN/END JSONL markers; the
// perf-smoke job feeds them to tools/bench_check against bench/baseline.json.
// `--quick` shrinks the case list and skips the google-benchmark tail.
#include "bench_util.hpp"

#include <chrono>
#include <cstdlib>

#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/candidates.hpp"
#include "vinoc/core/prune.hpp"
#include "vinoc/exec/thread_pool.hpp"
#include "vinoc/io/jsonl.hpp"
#include "vinoc/io/obs_writers.hpp"
#include "vinoc/obs/profile.hpp"
#include "vinoc/obs/trace.hpp"

namespace {

using namespace vinoc;

struct Case {
  std::string name;
  soc::SocSpec spec;
};

std::vector<Case> sweep_cases(bool quick) {
  std::vector<Case> cases;
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  cases.push_back({"d26/l1", soc::with_logical_islands(d26.soc, 1, d26.use_cases)});
  cases.push_back({"d26/l4", soc::with_logical_islands(d26.soc, 4, d26.use_cases)});
  cases.push_back({"d26/l7", soc::with_logical_islands(d26.soc, 7, d26.use_cases)});
  if (!quick) {
    const soc::Benchmark d36 = soc::make_d36_settop_soc();
    cases.push_back({"d36/l5", soc::with_logical_islands(d36.soc, 5, d36.use_cases)});
    const soc::Benchmark d24 = soc::make_d24_imaging_soc();
    cases.push_back({"d24/l5", soc::with_logical_islands(d24.soc, 5, d24.use_cases)});
  }
  return cases;
}

enum class Mode { kCold, kScratch, kPruned };

/// Everything evaluate_candidate() reads, built ONCE per case (synthesize()
/// amortises this setup over the whole sweep; re-timing it per repetition
/// would dilute the per-candidate cost this bench isolates).
struct SweepSetup {
  explicit SweepSetup(soc::SocSpec s) : spec(std::move(s)) {
    exec::ThreadPool pool(1);
    island_params = core::derive_island_params(
        spec, options.tech, options.link_width_bits, options.port_reserve);
    candidates = core::enumerate_candidates(spec, island_params, options);
    partitions =
        core::compute_partitions(spec, options, island_params, candidates, pool);
    plan = floorplan::Floorplan::build(spec, options.floorplan);
    intermediate = core::derive_intermediate_params(island_params, options.tech);
    traffic = core::compute_core_traffic(spec);
    flow_order = core::bandwidth_descending_order(spec);
    ni_base = core::compute_ni_dynamic_base_w(spec, options.tech);
  }

  soc::SocSpec spec;
  core::SynthesisOptions options;
  std::vector<core::IslandNocParams> island_params;
  std::vector<core::CandidateConfig> candidates;
  core::PartitionTable partitions;
  floorplan::Floorplan plan;
  core::IslandNocParams intermediate;
  std::vector<double> traffic;
  std::vector<std::size_t> flow_order;
  double ni_base = 0.0;
};

/// Evaluates the case's full candidate list once, sequentially. Returns the
/// number of candidates evaluated; `scratch`/`bound` wiring depends on mode.
int run_sweep(const SweepSetup& s, Mode mode, core::EvalScratchPool& pool_scratch) {
  const core::EvalContext ctx{s.spec,       s.plan,    s.island_params,
                              s.intermediate, s.partitions, s.traffic, s.options,
                              mode == Mode::kCold ? nullptr : &s.flow_order,
                              s.ni_base};
  core::ParetoBound front;
  for (const auto& cand : s.candidates) {
    core::EvalScratch* scratch =
        mode == Mode::kCold ? nullptr : &pool_scratch.local();
    const core::ParetoBound* bound = mode == Mode::kPruned ? &front : nullptr;
    const core::CandidateOutcome out =
        core::evaluate_candidate(ctx, cand, scratch, bound);
    if (mode == Mode::kPruned && out.status == core::EvalStatus::kRouted &&
        out.deadlock_free) {
      front.insert(out.point.metrics.noc_dynamic_w,
                   out.point.metrics.avg_latency_cycles);
    }
    benchmark::DoNotOptimize(out.status);
  }
  return static_cast<int>(s.candidates.size());
}

void print_table(bool quick) {
  bench::print_header(
      "Evaluation hot path: candidates/s (arena reuse + Pareto-bound pruning)",
      "beyond the paper (engine optimisation; sweep of Algorithm 1 evaluations)");
  std::vector<SweepSetup> cases;
  for (Case& c : sweep_cases(quick)) cases.emplace_back(std::move(c.spec));
  core::EvalScratchPool scratch;
  // Statistical measurement (bench/fat_runner.hpp): env-var-canonical
  // warmup/rep config, batch calibration, median + MAD with outlier
  // rejection. Every gated value below is the median over the kept reps.
  bench::FatRunner runner(bench::FatConfig::from_env_or_die());
  bench::RecordProvenance prov(runner.config());

  int n_cands = 0;
  for (const SweepSetup& c : cases) {
    n_cands += static_cast<int>(c.candidates.size());
  }

  auto time_mode = [&](Mode mode, const char* name) {
    const bench::Measurement m = runner.run(name, [&] {
      for (const SweepSetup& c : cases) {
        benchmark::DoNotOptimize(run_sweep(c, mode, scratch));
      }
    });
    prov.add(m);
    return m;
  };
  const bench::Measurement cold_m = time_mode(Mode::kCold, "eval_cold");
  const bench::Measurement scr_m = time_mode(Mode::kScratch, "eval_scratch");
  const bench::Measurement pr_m = time_mode(Mode::kPruned, "eval_pruned");
  const bench::RobustStats cold_rate = bench::rate_from_time(cold_m.stats, n_cands);
  const bench::RobustStats scr_rate = bench::rate_from_time(scr_m.stats, n_cands);
  const bench::RobustStats pr_rate = bench::rate_from_time(pr_m.stats, n_cands);

  std::printf("%-18s %-12s %-14s %-10s %-6s %-24s\n", "mode", "candidates",
              "cands/s (med)", "speedup", "reps", "per-rep s (min/med/max)");
  auto row = [&](const char* name, int cands, const bench::RobustStats& rate,
                 const bench::Measurement& m) {
    std::printf("%-18s %-12d %-14.0f %-10.2f %-6d %s\n", name, cands,
                rate.median, rate.median / cold_rate.median, m.stats.n,
                bench::time_range(m.stats).c_str());
  };
  row("cold (legacy)", n_cands, cold_rate, cold_m);
  row("scratch", n_cands, scr_rate, scr_m);
  row("scratch+prune", n_cands, pr_rate, pr_m);

  // End-to-end synthesize() throughput (prune on — the production path),
  // A/B'd delta-off vs delta-on. Bit-identity is gated by an UNTIMED
  // verification pass before the timed reps (correctness guardrails stay
  // outside timed regions): a result_fingerprint mismatch between the two
  // means the delta evaluator's replay is NOT equivalent to from-scratch
  // evaluation, and the bench exits non-zero (the speedup number would be
  // meaningless).
  //
  // The A/B runs its own case list: delta replay only serves intra-island
  // flows, so its reuse rate is bounded by the intra/cross flow mix — low
  // island counts are the representative regime (at 7+ islands most flows
  // cross islands and the delta evaluator correctly sits out). The gated
  // delta_reuse_rate tracks THIS list; the table above keeps the historical
  // per-candidate case list.
  std::vector<SweepSetup> synth_cases;
  {
    const soc::Benchmark d26 = soc::make_d26_media_soc();
    synth_cases.emplace_back(
        soc::with_logical_islands(d26.soc, 2, d26.use_cases));
    const soc::Benchmark d36 = soc::make_d36_settop_soc();
    synth_cases.emplace_back(
        soc::with_logical_islands(d36.soc, 2, d36.use_cases));
    if (!quick) {
      const soc::Benchmark d64 = soc::make_d64_tile_soc();
      synth_cases.emplace_back(
          soc::with_logical_islands(d64.soc, 3, d64.use_cases));
    }
  }
  int synth_cands = 0;
  long long delta_eligible = 0;
  long long delta_served = 0;
  auto synth_pass = [&](bool delta_on, std::vector<std::uint64_t>* fps) {
    synth_cands = 0;
    for (const SweepSetup& c : synth_cases) {
      core::SynthesisOptions opt;
      opt.delta_eval = delta_on;
      const core::SynthesisResult res = core::synthesize(c.spec, opt);
      synth_cands += res.stats.configs_explored;
      if (fps != nullptr) {
        fps->push_back(campaign::result_fingerprint(res));
        if (delta_on) {
          const long long reused =
              res.stats.delta_flows_reused + res.stats.delta_flows_certified;
          delta_served += reused;
          delta_eligible += reused + res.stats.delta_flows_rerouted;
        }
      }
      benchmark::DoNotOptimize(res.points.size());
    }
  };
  // Untimed verification pass: the fingerprint guardrail and the
  // (deterministic) reuse counters, kept out of the timed regions.
  std::vector<std::uint64_t> fps_scratch;
  std::vector<std::uint64_t> fps_delta;
  synth_pass(/*delta_on=*/false, &fps_scratch);
  synth_pass(/*delta_on=*/true, &fps_delta);
  if (fps_scratch != fps_delta) {
    std::fprintf(stderr,
                 "bench_eval_hotpath: FINGERPRINT MISMATCH — delta evaluation "
                 "is not bit-identical to from-scratch evaluation\n");
    std::exit(1);
  }
  const bench::Measurement synth_m = runner.run(
      "synthesize", [&] { synth_pass(/*delta_on=*/false, nullptr); });
  const bench::Measurement delta_m = runner.run(
      "synthesize_delta", [&] { synth_pass(/*delta_on=*/true, nullptr); });
  prov.add(synth_m);
  prov.add(delta_m);
  const bench::RobustStats synth_rate =
      bench::rate_from_time(synth_m.stats, synth_cands);
  const bench::RobustStats delta_rate =
      bench::rate_from_time(delta_m.stats, synth_cands);
  const bench::RobustStats speedup_delta =
      bench::ratio_of(synth_m.stats, delta_m.stats);  // time ratio = speedup
  const double delta_reuse_rate =
      delta_eligible > 0
          ? static_cast<double>(delta_served) / static_cast<double>(delta_eligible)
          : 0.0;
  row("synthesize()", synth_cands, synth_rate, synth_m);
  row("synthesize()+delta", synth_cands, delta_rate, delta_m);
  std::printf("delta reuse rate: %.3f (%lld of %lld eligible flows replayed)\n",
              delta_reuse_rate, delta_served, delta_eligible);

  std::printf("\n--- BEGIN JSONL (eval_hotpath) ---\n");
  io::JsonlWriter w;
  w.field("bench", "eval_hotpath").field("quick", quick);
  bench::append_metric(w, "candidates_per_s", synth_rate);
  bench::append_metric(w, "cands_per_s_delta", delta_rate);
  bench::append_metric(
      w, "delta_reuse_rate",
      bench::exact_stat(delta_reuse_rate, synth_m.stats.n));
  bench::append_metric(w, "speedup_delta", speedup_delta);
  bench::append_metric(w, "eval_cold_per_s", cold_rate);
  bench::append_metric(w, "eval_scratch_per_s", scr_rate);
  bench::append_metric(w, "eval_pruned_per_s", pr_rate);
  bench::append_metric(w, "speedup_scratch",
                       bench::ratio_of(cold_m.stats, scr_m.stats));
  bench::append_metric(w, "speedup_total",
                       bench::ratio_of(cold_m.stats, pr_m.stats));
  prov.append(w);
  bench::append_env_provenance(w);
  std::printf("%s\n", w.line().c_str());
  std::printf("--- END JSONL ---\n\n");

  // Tracing/profiling A/B — deliberately OUTSIDE the BEGIN/END markers, so
  // the perf gate's baselines never include it (the gated timings above run
  // with observability off, keeping the disabled-path overhead inside
  // bench_check's tolerance). This block gates CORRECTNESS: armed spans and
  // phase attribution must not perturb results, so a fingerprint mismatch
  // between the traced and untraced runs exits non-zero. The armed overhead
  // and the per-phase attribution are reported for inspection.
  {
    auto fingerprints = [&] {
      std::vector<std::uint64_t> fps;
      for (const SweepSetup& c : synth_cases) {
        const core::SynthesisResult res =
            core::synthesize(c.spec, core::SynthesisOptions{});
        fps.push_back(campaign::result_fingerprint(res));
      }
      return fps;
    };
    const bench::Measurement off_m = runner.run(
        "traced_off", [&] { benchmark::DoNotOptimize(fingerprints()); });
    const std::vector<std::uint64_t> fps_off = fingerprints();
    obs::set_tracing_enabled(true);
    obs::set_profiling_enabled(true);
    obs::reset_phase_totals();
    const bench::Measurement on_m = runner.run(
        "traced_on", [&] { benchmark::DoNotOptimize(fingerprints()); });
    const std::vector<std::uint64_t> fps_on = fingerprints();
    obs::set_tracing_enabled(false);
    obs::set_profiling_enabled(false);
    if (fps_off != fps_on) {
      std::fprintf(stderr,
                   "bench_eval_hotpath: FINGERPRINT MISMATCH — tracing "
                   "perturbed synthesis results\n");
      std::exit(1);
    }
    std::printf("tracing armed overhead: %.2f%% (untraced %.4f s, traced "
                "%.4f s median; fingerprints bit-identical)\n",
                (on_m.stats.median / off_m.stats.median - 1.0) * 100.0,
                off_m.stats.median, on_m.stats.median);
    std::printf("%s\n", io::phase_profile_record(obs::phase_totals()).c_str());
    obs::reset_tracing();  // drop the buffered spans; nothing exports them
  }
}

void BM_EvaluateSweep(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const SweepSetup setup(
      soc::with_logical_islands(d26.soc, static_cast<int>(state.range(0)), d26.use_cases));
  core::EvalScratchPool scratch;
  const Mode mode = state.range(1) != 0 ? Mode::kPruned : Mode::kCold;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sweep(setup, mode, scratch));
  }
}
BENCHMARK(BM_EvaluateSweep)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({7, 0})
    ->Args({7, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = vinoc::bench::quick_mode(argc, argv);
  print_table(quick);
  if (quick) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Candidate-evaluation hot-path throughput: candidates/second through the
// staged engine (enumerate -> partition -> evaluate) on the seed benchmark
// sweep, in three modes:
//
//   cold     — call-local allocations, no pruning (the call pattern of the
//              pre-arena evaluation path);
//   scratch  — per-worker EvalScratch arenas (reset, not reallocated);
//   pruned   — arenas + Pareto-bound pruning against the running front
//              (sequential semantics: the bound grows with saved points in
//              enumeration order, exactly like synthesize()).
//
// It also times full synthesize() calls (prune on, the production path) for
// the end-to-end candidates/s number the CI perf gate tracks.
//
// One JSON line per measurement between the BEGIN/END JSONL markers; the
// perf-smoke job feeds them to tools/bench_check against bench/baseline.json.
// `--quick` shrinks the case list and skips the google-benchmark tail.
#include "bench_util.hpp"

#include <chrono>

#include "vinoc/core/candidates.hpp"
#include "vinoc/core/prune.hpp"
#include "vinoc/exec/thread_pool.hpp"
#include "vinoc/io/jsonl.hpp"

namespace {

using namespace vinoc;

struct Case {
  std::string name;
  soc::SocSpec spec;
};

std::vector<Case> sweep_cases(bool quick) {
  std::vector<Case> cases;
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  cases.push_back({"d26/l1", soc::with_logical_islands(d26.soc, 1, d26.use_cases)});
  cases.push_back({"d26/l4", soc::with_logical_islands(d26.soc, 4, d26.use_cases)});
  cases.push_back({"d26/l7", soc::with_logical_islands(d26.soc, 7, d26.use_cases)});
  if (!quick) {
    const soc::Benchmark d36 = soc::make_d36_settop_soc();
    cases.push_back({"d36/l5", soc::with_logical_islands(d36.soc, 5, d36.use_cases)});
    const soc::Benchmark d24 = soc::make_d24_imaging_soc();
    cases.push_back({"d24/l5", soc::with_logical_islands(d24.soc, 5, d24.use_cases)});
  }
  return cases;
}

enum class Mode { kCold, kScratch, kPruned };

/// Everything evaluate_candidate() reads, built ONCE per case (synthesize()
/// amortises this setup over the whole sweep; re-timing it per repetition
/// would dilute the per-candidate cost this bench isolates).
struct SweepSetup {
  explicit SweepSetup(soc::SocSpec s) : spec(std::move(s)) {
    exec::ThreadPool pool(1);
    island_params = core::derive_island_params(
        spec, options.tech, options.link_width_bits, options.port_reserve);
    candidates = core::enumerate_candidates(spec, island_params, options);
    partitions =
        core::compute_partitions(spec, options, island_params, candidates, pool);
    plan = floorplan::Floorplan::build(spec, options.floorplan);
    intermediate = core::derive_intermediate_params(island_params, options.tech);
    traffic = core::compute_core_traffic(spec);
    flow_order = core::bandwidth_descending_order(spec);
    ni_base = core::compute_ni_dynamic_base_w(spec, options.tech);
  }

  soc::SocSpec spec;
  core::SynthesisOptions options;
  std::vector<core::IslandNocParams> island_params;
  std::vector<core::CandidateConfig> candidates;
  core::PartitionTable partitions;
  floorplan::Floorplan plan;
  core::IslandNocParams intermediate;
  std::vector<double> traffic;
  std::vector<std::size_t> flow_order;
  double ni_base = 0.0;
};

/// Evaluates the case's full candidate list once, sequentially. Returns the
/// number of candidates evaluated; `scratch`/`bound` wiring depends on mode.
int run_sweep(const SweepSetup& s, Mode mode, core::EvalScratchPool& pool_scratch) {
  const core::EvalContext ctx{s.spec,       s.plan,    s.island_params,
                              s.intermediate, s.partitions, s.traffic, s.options,
                              mode == Mode::kCold ? nullptr : &s.flow_order,
                              s.ni_base};
  core::ParetoBound front;
  for (const auto& cand : s.candidates) {
    core::EvalScratch* scratch =
        mode == Mode::kCold ? nullptr : &pool_scratch.local();
    const core::ParetoBound* bound = mode == Mode::kPruned ? &front : nullptr;
    const core::CandidateOutcome out =
        core::evaluate_candidate(ctx, cand, scratch, bound);
    if (mode == Mode::kPruned && out.status == core::EvalStatus::kRouted &&
        out.deadlock_free) {
      front.insert(out.point.metrics.noc_dynamic_w,
                   out.point.metrics.avg_latency_cycles);
    }
    benchmark::DoNotOptimize(out.status);
  }
  return static_cast<int>(s.candidates.size());
}

void print_table(bool quick) {
  bench::print_header(
      "Evaluation hot path: candidates/s (arena reuse + Pareto-bound pruning)",
      "beyond the paper (engine optimisation; sweep of Algorithm 1 evaluations)");
  std::vector<SweepSetup> cases;
  for (Case& c : sweep_cases(quick)) cases.emplace_back(std::move(c.spec));
  core::EvalScratchPool scratch;
  const int reps = quick ? 3 : 5;

  auto time_mode = [&](Mode mode) {
    // Warm-up evaluates everything once (fills arenas, faults pages).
    for (const SweepSetup& c : cases) (void)run_sweep(c, mode, scratch);
    const auto t0 = std::chrono::steady_clock::now();
    int total = 0;
    for (int r = 0; r < reps; ++r) {
      for (const SweepSetup& c : cases) total += run_sweep(c, mode, scratch);
    }
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return std::pair<int, double>{total, s};
  };

  const auto [cold_n, cold_s] = time_mode(Mode::kCold);
  const auto [scr_n, scr_s] = time_mode(Mode::kScratch);
  const auto [pr_n, pr_s] = time_mode(Mode::kPruned);
  const double cold_rate = cold_n / cold_s;
  const double scr_rate = scr_n / scr_s;
  const double pr_rate = pr_n / pr_s;

  std::printf("%-18s %-12s %-14s %-10s\n", "mode", "candidates", "cands/s", "speedup");
  std::printf("%-18s %-12d %-14.0f %-10s\n", "cold (legacy)", cold_n, cold_rate, "1.00x");
  std::printf("%-18s %-12d %-14.0f %.2fx\n", "scratch", scr_n, scr_rate,
              scr_rate / cold_rate);
  std::printf("%-18s %-12d %-14.0f %.2fx\n", "scratch+prune", pr_n, pr_rate,
              pr_rate / cold_rate);

  // End-to-end synthesize() throughput (prune on — the production path).
  double synth_s = 0.0;
  int synth_cands = 0;
  for (int r = 0; r < reps; ++r) {
    for (const SweepSetup& c : cases) {
      const auto t0 = std::chrono::steady_clock::now();
      const core::SynthesisResult res = core::synthesize(c.spec, {});
      synth_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      synth_cands += res.stats.configs_explored;
      benchmark::DoNotOptimize(res.points.size());
    }
  }
  const double synth_rate = synth_cands / synth_s;
  std::printf("%-18s %-12d %-14.0f\n", "synthesize()", synth_cands, synth_rate);

  std::printf("\n--- BEGIN JSONL (eval_hotpath) ---\n");
  io::JsonlWriter w;
  w.field("bench", "eval_hotpath")
      .field("quick", quick)
      .field("candidates_per_s", synth_rate)
      .field("eval_cold_per_s", cold_rate)
      .field("eval_scratch_per_s", scr_rate)
      .field("eval_pruned_per_s", pr_rate)
      .field("speedup_scratch", scr_rate / cold_rate)
      .field("speedup_total", pr_rate / cold_rate);
  std::printf("%s\n", w.line().c_str());
  std::printf("--- END JSONL ---\n\n");
}

void BM_EvaluateSweep(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const SweepSetup setup(
      soc::with_logical_islands(d26.soc, static_cast<int>(state.range(0)), d26.use_cases));
  core::EvalScratchPool scratch;
  const Mode mode = state.range(1) != 0 ? Mode::kPruned : Mode::kCold;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sweep(setup, mode, scratch));
  }
}
BENCHMARK(BM_EvaluateSweep)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({7, 0})
    ->Args({7, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = vinoc::bench::quick_mode(argc, argv);
  print_table(quick);
  if (quick) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Candidate-evaluation hot-path throughput: candidates/second through the
// staged engine (enumerate -> partition -> evaluate) on the seed benchmark
// sweep, in three modes:
//
//   cold     — call-local allocations, no pruning (the call pattern of the
//              pre-arena evaluation path);
//   scratch  — per-worker EvalScratch arenas (reset, not reallocated);
//   pruned   — arenas + Pareto-bound pruning against the running front
//              (sequential semantics: the bound grows with saved points in
//              enumeration order, exactly like synthesize()).
//
// It also times full synthesize() calls (prune on, the production path) for
// the end-to-end candidates/s number the CI perf gate tracks.
//
// One JSON line per measurement between the BEGIN/END JSONL markers; the
// perf-smoke job feeds them to tools/bench_check against bench/baseline.json.
// `--quick` shrinks the case list and skips the google-benchmark tail.
#include "bench_util.hpp"

#include <chrono>
#include <cstdlib>

#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/candidates.hpp"
#include "vinoc/core/prune.hpp"
#include "vinoc/exec/thread_pool.hpp"
#include "vinoc/io/jsonl.hpp"
#include "vinoc/io/obs_writers.hpp"
#include "vinoc/obs/profile.hpp"
#include "vinoc/obs/trace.hpp"

namespace {

using namespace vinoc;

struct Case {
  std::string name;
  soc::SocSpec spec;
};

std::vector<Case> sweep_cases(bool quick) {
  std::vector<Case> cases;
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  cases.push_back({"d26/l1", soc::with_logical_islands(d26.soc, 1, d26.use_cases)});
  cases.push_back({"d26/l4", soc::with_logical_islands(d26.soc, 4, d26.use_cases)});
  cases.push_back({"d26/l7", soc::with_logical_islands(d26.soc, 7, d26.use_cases)});
  if (!quick) {
    const soc::Benchmark d36 = soc::make_d36_settop_soc();
    cases.push_back({"d36/l5", soc::with_logical_islands(d36.soc, 5, d36.use_cases)});
    const soc::Benchmark d24 = soc::make_d24_imaging_soc();
    cases.push_back({"d24/l5", soc::with_logical_islands(d24.soc, 5, d24.use_cases)});
  }
  return cases;
}

enum class Mode { kCold, kScratch, kPruned };

/// Everything evaluate_candidate() reads, built ONCE per case (synthesize()
/// amortises this setup over the whole sweep; re-timing it per repetition
/// would dilute the per-candidate cost this bench isolates).
struct SweepSetup {
  explicit SweepSetup(soc::SocSpec s) : spec(std::move(s)) {
    exec::ThreadPool pool(1);
    island_params = core::derive_island_params(
        spec, options.tech, options.link_width_bits, options.port_reserve);
    candidates = core::enumerate_candidates(spec, island_params, options);
    partitions =
        core::compute_partitions(spec, options, island_params, candidates, pool);
    plan = floorplan::Floorplan::build(spec, options.floorplan);
    intermediate = core::derive_intermediate_params(island_params, options.tech);
    traffic = core::compute_core_traffic(spec);
    flow_order = core::bandwidth_descending_order(spec);
    ni_base = core::compute_ni_dynamic_base_w(spec, options.tech);
  }

  soc::SocSpec spec;
  core::SynthesisOptions options;
  std::vector<core::IslandNocParams> island_params;
  std::vector<core::CandidateConfig> candidates;
  core::PartitionTable partitions;
  floorplan::Floorplan plan;
  core::IslandNocParams intermediate;
  std::vector<double> traffic;
  std::vector<std::size_t> flow_order;
  double ni_base = 0.0;
};

/// Evaluates the case's full candidate list once, sequentially. Returns the
/// number of candidates evaluated; `scratch`/`bound` wiring depends on mode.
int run_sweep(const SweepSetup& s, Mode mode, core::EvalScratchPool& pool_scratch) {
  const core::EvalContext ctx{s.spec,       s.plan,    s.island_params,
                              s.intermediate, s.partitions, s.traffic, s.options,
                              mode == Mode::kCold ? nullptr : &s.flow_order,
                              s.ni_base};
  core::ParetoBound front;
  for (const auto& cand : s.candidates) {
    core::EvalScratch* scratch =
        mode == Mode::kCold ? nullptr : &pool_scratch.local();
    const core::ParetoBound* bound = mode == Mode::kPruned ? &front : nullptr;
    const core::CandidateOutcome out =
        core::evaluate_candidate(ctx, cand, scratch, bound);
    if (mode == Mode::kPruned && out.status == core::EvalStatus::kRouted &&
        out.deadlock_free) {
      front.insert(out.point.metrics.noc_dynamic_w,
                   out.point.metrics.avg_latency_cycles);
    }
    benchmark::DoNotOptimize(out.status);
  }
  return static_cast<int>(s.candidates.size());
}

void print_table(bool quick) {
  bench::print_header(
      "Evaluation hot path: candidates/s (arena reuse + Pareto-bound pruning)",
      "beyond the paper (engine optimisation; sweep of Algorithm 1 evaluations)");
  std::vector<SweepSetup> cases;
  for (Case& c : sweep_cases(quick)) cases.emplace_back(std::move(c.spec));
  core::EvalScratchPool scratch;
  const int reps = quick ? 3 : 5;

  // Median-of-`reps` timing (see bench::time_repeats): each rep evaluates
  // the full case list once; the gated rate uses the median rep.
  auto time_mode = [&](Mode mode) {
    // Warm-up evaluates everything once (fills arenas, faults pages).
    int per_rep = 0;
    for (const SweepSetup& c : cases) per_rep += run_sweep(c, mode, scratch);
    const bench::RepeatTiming t = bench::time_repeats(reps, [&] {
      for (const SweepSetup& c : cases) {
        benchmark::DoNotOptimize(run_sweep(c, mode, scratch));
      }
    });
    return std::pair<int, bench::RepeatTiming>{per_rep, t};
  };

  const auto [n_cands, cold_t] = time_mode(Mode::kCold);
  const auto [scr_n, scr_t] = time_mode(Mode::kScratch);
  const auto [pr_n, pr_t] = time_mode(Mode::kPruned);
  (void)scr_n;
  (void)pr_n;
  const double cold_rate = n_cands / cold_t.median_s;
  const double scr_rate = n_cands / scr_t.median_s;
  const double pr_rate = n_cands / pr_t.median_s;

  std::printf("%-18s %-12s %-14s %-10s %-24s\n", "mode", "candidates",
              "cands/s", "speedup", "per-rep s (min/med/max)");
  auto row = [&](const char* name, int cands, double rate,
                 const bench::RepeatTiming& t) {
    std::printf("%-18s %-12d %-14.0f %-10.2f %.4f/%.4f/%.4f\n", name, cands,
                rate, rate / cold_rate, t.min_s, t.median_s, t.max_s);
  };
  row("cold (legacy)", n_cands, cold_rate, cold_t);
  row("scratch", n_cands, scr_rate, scr_t);
  row("scratch+prune", n_cands, pr_rate, pr_t);

  // End-to-end synthesize() throughput (prune on — the production path),
  // A/B'd delta-off vs delta-on. Every rep gates bit-identity: a
  // result_fingerprint mismatch between the two means the delta evaluator's
  // replay is NOT equivalent to from-scratch evaluation, and the bench
  // exits non-zero (the speedup number would be meaningless).
  //
  // The A/B runs its own case list: delta replay only serves intra-island
  // flows, so its reuse rate is bounded by the intra/cross flow mix — low
  // island counts are the representative regime (at 7+ islands most flows
  // cross islands and the delta evaluator correctly sits out). The gated
  // delta_reuse_rate tracks THIS list; the table above keeps the historical
  // per-candidate case list.
  std::vector<SweepSetup> synth_cases;
  {
    const soc::Benchmark d26 = soc::make_d26_media_soc();
    synth_cases.emplace_back(
        soc::with_logical_islands(d26.soc, 2, d26.use_cases));
    const soc::Benchmark d36 = soc::make_d36_settop_soc();
    synth_cases.emplace_back(
        soc::with_logical_islands(d36.soc, 2, d36.use_cases));
    if (!quick) {
      const soc::Benchmark d64 = soc::make_d64_tile_soc();
      synth_cases.emplace_back(
          soc::with_logical_islands(d64.soc, 3, d64.use_cases));
    }
  }
  int synth_cands = 0;
  long long delta_eligible = 0;
  long long delta_served = 0;
  std::vector<std::uint64_t> fps_scratch;
  std::vector<std::uint64_t> fps_delta;
  auto time_synth = [&](bool delta_on) {
    return bench::time_repeats(reps, [&] {
      synth_cands = 0;
      std::vector<std::uint64_t>& fps = delta_on ? fps_delta : fps_scratch;
      fps.clear();
      if (delta_on) {
        delta_eligible = 0;
        delta_served = 0;
      }
      for (const SweepSetup& c : synth_cases) {
        core::SynthesisOptions opt;
        opt.delta_eval = delta_on;
        const core::SynthesisResult res = core::synthesize(c.spec, opt);
        synth_cands += res.stats.configs_explored;
        fps.push_back(campaign::result_fingerprint(res));
        if (delta_on) {
          const long long reused =
              res.stats.delta_flows_reused + res.stats.delta_flows_certified;
          delta_served += reused;
          delta_eligible += reused + res.stats.delta_flows_rerouted;
        }
        benchmark::DoNotOptimize(res.points.size());
      }
    });
  };
  const bench::RepeatTiming synth_t = time_synth(/*delta_on=*/false);
  const bench::RepeatTiming delta_t = time_synth(/*delta_on=*/true);
  if (fps_scratch != fps_delta) {
    std::fprintf(stderr,
                 "bench_eval_hotpath: FINGERPRINT MISMATCH — delta evaluation "
                 "is not bit-identical to from-scratch evaluation\n");
    std::exit(1);
  }
  const double synth_rate = synth_cands / synth_t.median_s;
  const double delta_rate = synth_cands / delta_t.median_s;
  const double delta_reuse_rate =
      delta_eligible > 0
          ? static_cast<double>(delta_served) / static_cast<double>(delta_eligible)
          : 0.0;
  row("synthesize()", synth_cands, synth_rate, synth_t);
  row("synthesize()+delta", synth_cands, delta_rate, delta_t);
  std::printf("delta reuse rate: %.3f (%lld of %lld eligible flows replayed)\n",
              delta_reuse_rate, delta_served, delta_eligible);

  std::printf("\n--- BEGIN JSONL (eval_hotpath) ---\n");
  io::JsonlWriter w;
  w.field("bench", "eval_hotpath")
      .field("quick", quick)
      .field("candidates_per_s", synth_rate)
      .field("cands_per_s_delta", delta_rate)
      .field("delta_reuse_rate", delta_reuse_rate)
      .field("speedup_delta", delta_rate / synth_rate)
      .field("eval_cold_per_s", cold_rate)
      .field("eval_scratch_per_s", scr_rate)
      .field("eval_pruned_per_s", pr_rate)
      .field("speedup_scratch", scr_rate / cold_rate)
      .field("speedup_total", pr_rate / cold_rate);
  bench::append_env_provenance(w);
  std::printf("%s\n", w.line().c_str());
  std::printf("--- END JSONL ---\n\n");

  // Tracing/profiling A/B — deliberately OUTSIDE the BEGIN/END markers, so
  // the perf gate's baselines never include it (the gated timings above run
  // with observability off, keeping the disabled-path overhead inside
  // bench_check's tolerance). This block gates CORRECTNESS: armed spans and
  // phase attribution must not perturb results, so a fingerprint mismatch
  // between the traced and untraced runs exits non-zero. The armed overhead
  // and the per-phase attribution are reported for inspection.
  {
    auto fingerprints = [&] {
      std::vector<std::uint64_t> fps;
      for (const SweepSetup& c : synth_cases) {
        const core::SynthesisResult res =
            core::synthesize(c.spec, core::SynthesisOptions{});
        fps.push_back(campaign::result_fingerprint(res));
      }
      return fps;
    };
    const bench::RepeatTiming off_t =
        bench::time_repeats(reps, [&] { benchmark::DoNotOptimize(fingerprints()); });
    const std::vector<std::uint64_t> fps_off = fingerprints();
    obs::set_tracing_enabled(true);
    obs::set_profiling_enabled(true);
    obs::reset_phase_totals();
    const bench::RepeatTiming on_t =
        bench::time_repeats(reps, [&] { benchmark::DoNotOptimize(fingerprints()); });
    const std::vector<std::uint64_t> fps_on = fingerprints();
    obs::set_tracing_enabled(false);
    obs::set_profiling_enabled(false);
    if (fps_off != fps_on) {
      std::fprintf(stderr,
                   "bench_eval_hotpath: FINGERPRINT MISMATCH — tracing "
                   "perturbed synthesis results\n");
      std::exit(1);
    }
    std::printf("tracing armed overhead: %.2f%% (untraced %.4f s, traced "
                "%.4f s median; fingerprints bit-identical)\n",
                (on_t.median_s / off_t.median_s - 1.0) * 100.0, off_t.median_s,
                on_t.median_s);
    std::printf("%s\n", io::phase_profile_record(obs::phase_totals()).c_str());
    obs::reset_tracing();  // drop the buffered spans; nothing exports them
  }
}

void BM_EvaluateSweep(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const SweepSetup setup(
      soc::with_logical_islands(d26.soc, static_cast<int>(state.range(0)), d26.use_cases));
  core::EvalScratchPool scratch;
  const Mode mode = state.range(1) != 0 ? Mode::kPruned : Mode::kCold;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sweep(setup, mode, scratch));
  }
}
BENCHMARK(BM_EvaluateSweep)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({7, 0})
    ->Args({7, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = vinoc::bench::quick_mode(argc, argv);
  print_table(quick);
  if (quick) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Figure 2 reproduction: NoC dynamic power consumption vs. voltage-island
// count on the D26 mobile/multimedia SoC, for logical partitioning vs.
// communication-based partitioning.
//
// Paper shape to reproduce (DAC'09, Fig. 2):
//  * the 1-island point is the reference (a NoC synthesized with no VI
//    constraints);
//  * logical partitioning pays a power overhead that grows with the island
//    count (more high-bandwidth flows cross islands);
//  * communication-based partitioning stays at or below the reference for
//    small island counts (heavy flows stay local and some islands run their
//    NoC slower), and stays cheaper than logical partitioning throughout.
#include "bench_util.hpp"
#include "vinoc/io/plots.hpp"

namespace {

using namespace vinoc;

void print_table() {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  core::SynthesisOptions options;

  bench::print_header("Figure 2: VI count vs. NoC dynamic power (D26 media SoC)",
                      "Seiculescu et al., DAC 2009, Figure 2");
  std::printf("%-10s %-28s %-28s\n", "islands", "logical power [mW]",
              "comm-based power [mW]");

  io::Series logical_series{"logical partitioning", {}};
  io::Series comm_series{"communication-based partitioning", {}};
  double ref_power_mw = -1.0;
  for (const int k : bench::figure_island_counts(
           static_cast<int>(d26.soc.core_count()))) {
    const soc::SocSpec spec_log =
        soc::with_logical_islands(d26.soc, k, d26.use_cases);
    const soc::SocSpec spec_com =
        soc::with_communication_islands(d26.soc, k, d26.use_cases);
    const bench::SweepPoint log_pt = bench::run_point(spec_log, options);
    const bench::SweepPoint com_pt = bench::run_point(spec_com, options);
    if (k == 1 && log_pt.ok) {
      ref_power_mw = log_pt.metrics.paper_noc_dynamic_w() * 1e3;
    }

    auto fmt = [ref_power_mw](const bench::SweepPoint& p) {
      if (!p.ok) return std::string("(no design point)");
      char buf[64];
      const double mw = p.metrics.paper_noc_dynamic_w() * 1e3;
      if (ref_power_mw > 0.0) {
        std::snprintf(buf, sizeof buf, "%8.2f  (%+6.1f%% vs ref)", mw,
                      (mw / ref_power_mw - 1.0) * 100.0);
      } else {
        std::snprintf(buf, sizeof buf, "%8.2f", mw);
      }
      return std::string(buf);
    };
    std::printf("%-10d %-28s %-28s\n", k, fmt(log_pt).c_str(), fmt(com_pt).c_str());
    if (log_pt.ok) {
      logical_series.points.emplace_back(k, log_pt.metrics.paper_noc_dynamic_w() * 1e3);
    }
    if (com_pt.ok) {
      comm_series.points.emplace_back(k, com_pt.metrics.paper_noc_dynamic_w() * 1e3);
    }
  }
  io::PlotSpec plot;
  plot.title = "Fig. 2: VI count vs. NoC dynamic power (D26)";
  plot.xlabel = "island count";
  plot.ylabel = "power [mW]";
  plot.series = {logical_series, comm_series};
  io::write_plot("d26_fig2_power", plot);
  std::printf("\nwrote d26_fig2_power.{dat,gp} (render: gnuplot d26_fig2_power.gp)\n");
  std::printf("\n(ref = 1-island design; paper: logical pays an overhead,\n"
              " communication-based dips below the reference)\n\n");
}

void BM_SynthesizeD26Logical6(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  bench::time_synthesis(state, spec, {});
}
BENCHMARK(BM_SynthesizeD26Logical6)->Unit(benchmark::kMillisecond);

void BM_SynthesizeD26Comm6(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec =
      soc::with_communication_islands(d26.soc, 6, d26.use_cases);
  bench::time_synthesis(state, spec, {});
}
BENCHMARK(BM_SynthesizeD26Comm6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#include "fat_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace vinoc::bench {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Strict parse of a non-negative integer environment value.
bool parse_env_u64(const char* raw, std::uint64_t& out) {
  if (raw == nullptr || *raw == '\0') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return false;
  // strtoull silently wraps "-3"; reject any sign character up front.
  for (const char* p = raw; *p != '\0'; ++p) {
    if (*p == '-' || *p == '+') return false;
  }
  out = v;
  return true;
}

bool parse_env_double(const char* raw, double& out) {
  if (raw == nullptr || *raw == '\0') return false;
  char* end = nullptr;
  out = std::strtod(raw, &end);
  return end != raw && *end == '\0' && std::isfinite(out);
}

std::string first_line_of(const char* path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return "";
  return line;
}

}  // namespace

// --- Robust statistics ------------------------------------------------------

double median_of(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  if (n % 2 == 1) return samples[n / 2];
  return 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

double mad_of(const std::vector<double>& samples, double center) {
  if (samples.empty()) return 0.0;
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (const double s : samples) dev.push_back(std::fabs(s - center));
  return median_of(std::move(dev));
}

double RobustStats::rel_mad() const {
  if (median == 0.0) return 0.0;
  return mad / std::fabs(median);
}

RobustStats robust_stats(std::vector<double> samples, double outlier_k) {
  RobustStats out;
  if (samples.empty()) return out;
  const double med0 = median_of(samples);
  const double mad0 = mad_of(samples, med0);
  std::vector<double> kept;
  kept.reserve(samples.size());
  if (mad0 > 0.0) {
    for (const double s : samples) {
      if (std::fabs(s - med0) <= outlier_k * mad0) kept.push_back(s);
    }
  } else {
    kept = samples;  // no dispersion estimate => no sound rejection
  }
  out.rejected = static_cast<int>(samples.size() - kept.size());
  out.n = static_cast<int>(kept.size());
  out.median = median_of(kept);
  out.mad = mad_of(kept, out.median);
  out.min = *std::min_element(kept.begin(), kept.end());
  out.max = *std::max_element(kept.begin(), kept.end());
  return out;
}

RobustStats rate_from_time(const RobustStats& t, double units) {
  RobustStats r;
  if (t.median <= 0.0) return r;
  r.n = t.n;
  r.rejected = t.rejected;
  r.median = units / t.median;
  r.mad = r.median * t.rel_mad();
  r.min = t.max > 0.0 ? units / t.max : 0.0;
  r.max = t.min > 0.0 ? units / t.min : 0.0;
  return r;
}

RobustStats sum_stats(const std::vector<RobustStats>& parts) {
  RobustStats out;
  if (parts.empty()) return out;
  out.n = parts.front().n;
  for (const RobustStats& p : parts) {
    out.median += p.median;
    out.mad += p.mad;
    out.min += p.min;
    out.max += p.max;
    out.rejected += p.rejected;
    out.n = std::min(out.n, p.n);
  }
  return out;
}

RobustStats ratio_of(const RobustStats& num, const RobustStats& den) {
  RobustStats out;
  if (den.median == 0.0) return out;
  out.n = std::min(num.n, den.n);
  out.rejected = num.rejected + den.rejected;
  out.median = num.median / den.median;
  out.mad = std::fabs(out.median) * (num.rel_mad() + den.rel_mad());
  if (den.max != 0.0) out.min = num.min / den.max;
  if (den.min != 0.0) out.max = num.max / den.min;
  return out;
}

RobustStats exact_stat(double value, int reps) {
  RobustStats out;
  out.n = reps;
  out.median = value;
  out.min = value;
  out.max = value;
  return out;
}

// --- Environment configuration ----------------------------------------------

bool FatConfig::from_env(FatConfig& out, std::string& error) {
  const FatConfig defaults;
  FatConfig cfg = defaults;
  const auto fail = [&](const char* var, const char* raw, const char* want) {
    error = std::string(var) + ": bad value '" + (raw != nullptr ? raw : "") +
            "' (want " + want + ")";
    out = defaults;
    return false;
  };
  std::uint64_t u = 0;
  double d = 0.0;
  if (const char* raw = std::getenv("VINOC_BENCH_WARMUP_RUNS")) {
    if (!parse_env_u64(raw, u)) {
      return fail("VINOC_BENCH_WARMUP_RUNS", raw, "a non-negative integer");
    }
    cfg.warmup_runs = static_cast<int>(u);
  }
  if (const char* raw = std::getenv("VINOC_BENCH_MIN_REPS")) {
    if (!parse_env_u64(raw, u) || u == 0) {
      return fail("VINOC_BENCH_MIN_REPS", raw, "a positive integer");
    }
    cfg.min_reps = static_cast<int>(u);
  }
  if (const char* raw = std::getenv("VINOC_BENCH_MAX_REPS")) {
    if (!parse_env_u64(raw, u) || u == 0) {
      return fail("VINOC_BENCH_MAX_REPS", raw, "a positive integer");
    }
    cfg.max_reps = static_cast<int>(u);
  }
  if (const char* raw = std::getenv("VINOC_BENCH_MIN_DURATION_MS")) {
    if (!parse_env_double(raw, d) || d < 0.0) {
      return fail("VINOC_BENCH_MIN_DURATION_MS", raw,
                  "a non-negative number of milliseconds");
    }
    cfg.min_duration_ms = d;
  }
  if (const char* raw = std::getenv("VINOC_BENCH_SEED")) {
    if (!parse_env_u64(raw, u)) {
      return fail("VINOC_BENCH_SEED", raw, "a non-negative integer");
    }
    cfg.seed = u;
  }
  if (cfg.max_reps < cfg.min_reps) {
    error = "VINOC_BENCH_MAX_REPS: " + std::to_string(cfg.max_reps) +
            " is below VINOC_BENCH_MIN_REPS " + std::to_string(cfg.min_reps);
    out = defaults;
    return false;
  }
  out = cfg;
  return true;
}

FatConfig FatConfig::from_env_or_die() {
  FatConfig cfg;
  std::string error;
  if (!FatConfig::from_env(cfg, error)) {
    std::fprintf(stderr, "fat_runner: %s\n", error.c_str());
    std::exit(2);
  }
  return cfg;
}

// --- Timer calibration ------------------------------------------------------

double timer_resolution_s() {
  double best = 1.0;
  for (int probe = 0; probe < 16; ++probe) {
    const auto t0 = Clock::now();
    auto t1 = Clock::now();
    while (t1 == t0) t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

int next_calibration_batch(int batch, double elapsed_s, double min_duration_s) {
  if (batch < 1) batch = 1;
  if (elapsed_s >= min_duration_s) return batch;
  double factor;
  if (elapsed_s <= 0.0) {
    factor = 16.0;  // unmeasurably fast: grow aggressively
  } else {
    factor = (min_duration_s / elapsed_s) * 1.2;  // shortfall + 20% headroom
    factor = std::clamp(factor, 2.0, 16.0);
  }
  const double grown = static_cast<double>(batch) * factor;
  constexpr int kMaxBatch = 1 << 24;
  if (grown >= static_cast<double>(kMaxBatch)) return kMaxBatch;
  return static_cast<int>(grown);
}

// --- CPU frequency / governor -----------------------------------------------

CpuSample sample_cpu() {
  CpuSample s;
  const std::string freq =
      first_line_of("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq");
  if (!freq.empty()) {
    char* end = nullptr;
    const double v = std::strtod(freq.c_str(), &end);
    if (end != freq.c_str()) s.freq_khz = v;
  }
  const std::string gov =
      first_line_of("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (!gov.empty()) s.governor = gov;
  return s;
}

// --- FatRunner --------------------------------------------------------------

bool FatRunner::is_noisy(const Measurement& m, const FatConfig& config) {
  if (m.cpu_start.governor != "unknown" &&
      m.cpu_start.governor != "performance") {
    return true;
  }
  if (m.cpu_start.freq_khz > 0.0 && m.cpu_end.freq_khz > 0.0) {
    const double drift =
        std::fabs(m.cpu_end.freq_khz - m.cpu_start.freq_khz) /
        m.cpu_start.freq_khz;
    if (drift > 0.05) return true;
  }
  return m.stats.rel_mad() > config.noisy_rel_mad;
}

Measurement FatRunner::run(const std::string& name,
                           const std::function<void()>& fn) {
  Measurement m;
  m.name = name;
  m.cpu_start = sample_cpu();

  // Calibration: grow the batch until one timed batch meets the duration
  // floor AND sits three orders of magnitude above the timer resolution
  // (a batch measurable only to ±10% of the clock tick is not a sample).
  const double floor_s = std::max(config_.min_duration_ms * 1e-3,
                                  timer_resolution_s() * 1000.0);
  int batch = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (int i = 0; i < batch; ++i) fn();
    const double elapsed = seconds_since(t0);
    const int next = next_calibration_batch(batch, elapsed, floor_s);
    if (next == batch) break;
    batch = next;
  }
  m.batch = batch;

  // Warmup batches: run, never reported.
  for (int w = 0; w < config_.warmup_runs; ++w) {
    const auto t0 = Clock::now();
    for (int i = 0; i < batch; ++i) fn();
    (void)seconds_since(t0);
  }

  // Measured reps: at least min_reps, then keep going (to max_reps) while
  // the dispersion is still above the target — more data where it helps,
  // no wasted time where the first reps already agree.
  for (int rep = 0; rep < config_.max_reps; ++rep) {
    const auto t0 = Clock::now();
    for (int i = 0; i < batch; ++i) fn();
    m.rep_s.push_back(seconds_since(t0) / static_cast<double>(batch));
    if (rep + 1 >= config_.min_reps) {
      const RobustStats s = robust_stats(m.rep_s);
      if (s.rel_mad() <= config_.target_rel_mad) break;
    }
  }
  m.stats = robust_stats(m.rep_s);
  m.cpu_end = sample_cpu();
  m.noisy = is_noisy(m, config_);
  return m;
}

// --- Record emission --------------------------------------------------------

void RecordProvenance::add(const Measurement& m) {
  if (!any_) {
    min_reps_ = m.stats.n;
    freq_start_khz_ = m.cpu_start.freq_khz;
    any_ = true;
  } else {
    min_reps_ = std::min(min_reps_, m.stats.n);
  }
  freq_end_khz_ = m.cpu_end.freq_khz;
  noisy_ = noisy_ || m.noisy;
}

io::JsonlWriter& RecordProvenance::append(io::JsonlWriter& w) const {
  w.field("reps", min_reps_)
      .field("warmup_runs", config_.warmup_runs)
      .field("noisy", noisy_)
      .field("cpu_freq_start_khz", freq_start_khz_)
      .field("cpu_freq_end_khz", freq_end_khz_)
      .field("timer_res_ns", timer_resolution_s() * 1e9);
  return w;
}

io::JsonlWriter& append_metric(io::JsonlWriter& w, std::string_view key,
                               const RobustStats& s) {
  w.field(key, s.median);
  w.field(std::string(key) + "_mad", s.mad);
  return w;
}

}  // namespace vinoc::bench

// Reproduction of the paper's runtime remark (Section 5, text):
//
//   "The exploration of the design points for all the benchmark took only a
//    few hours on a 2 GHz Linux machine. [...] the synthesis process is only
//    run once at design time and therefore the computational time required
//    by the algorithm is negligible."
//
// The stated complexity is O(V^2 E^2 ln V), "however in practice the
// algorithm runs quite fast as the input graphs typically are not fully
// connected". We sweep synthetic SoCs from 8 to 96 cores and report the
// full design-space exploration time, plus per-size google-benchmark
// timings.
//
// The second table measures the staged engine's thread scaling
// (SynthesisOptions::threads) on a multi-island spec, verifies the parallel
// runs reproduce the sequential design space exactly, and emits one
// machine-readable JSON line per measurement (between the BEGIN/END JSONL
// markers) so results can be collected across machines without parsing the
// human table.
#include "bench_util.hpp"

#include <chrono>
#include <thread>

namespace {

using namespace vinoc;

soc::SocSpec make_case(int cores, int islands) {
  soc::SyntheticParams params;
  params.cores = cores;
  params.hubs = std::max(1, cores / 12);
  params.seed = 17;
  const soc::Benchmark bm = soc::make_synthetic_soc(params);
  return soc::with_logical_islands(bm.soc, islands, bm.use_cases);
}

void print_table() {
  bench::print_header("Synthesis runtime scaling (synthetic SoCs)",
                      "Seiculescu et al., DAC 2009, Section 5 (runtime remark)");
  std::printf("%-8s %-8s %-8s %-12s %-14s %-14s\n", "cores", "flows", "VIs",
              "configs", "points", "runtime [s]");
  for (const int cores : {8, 16, 24, 32, 48, 64, 96}) {
    const int islands = std::min(6, cores / 3);
    const soc::SocSpec spec = make_case(cores, islands);
    core::SynthesisOptions options;
    const core::SynthesisResult result = core::synthesize(spec, options);
    std::printf("%-8d %-8zu %-8zu %-12d %-14zu %-14.3f\n", cores,
                spec.flows.size(), spec.islands.size(),
                result.stats.configs_explored, result.points.size(),
                result.stats.elapsed_seconds);
  }
  std::printf("\n(paper: 'a few hours' for the whole benchmark suite on a 2 GHz\n"
              " machine; our exploration is seconds per design at these sizes)\n\n");
}

/// Same saved design space? (cheap structural check: counts + exact power
/// and latency of every point, which are bit-identical by design).
bool same_design_space(const core::SynthesisResult& a,
                       const core::SynthesisResult& b) {
  if (a.points.size() != b.points.size() || a.pareto != b.pareto) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].metrics.noc_dynamic_w != b.points[i].metrics.noc_dynamic_w ||
        a.points[i].metrics.avg_latency_cycles !=
            b.points[i].metrics.avg_latency_cycles) {
      return false;
    }
  }
  return true;
}

void print_thread_scaling() {
  bench::print_header(
      "Synthesis thread scaling (staged parallel exploration engine)",
      "extension: SynthesisOptions::threads over the Section 5 runtime remark");

  const int cores = 48;
  const int islands = 6;
  const soc::SocSpec spec = make_case(cores, islands);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::vector<int> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  std::printf("%-8s %-12s %-10s %-10s\n", "threads", "runtime [s]", "speedup",
              "identical");
  std::printf("(spec: %d cores, %d VIs, %zu flows; hardware_concurrency=%d)\n",
              cores, islands, spec.flows.size(), hw);

  core::SynthesisOptions base;
  base.threads = 1;
  const core::SynthesisResult reference = core::synthesize(spec, base);
  struct Row {
    int threads;
    double seconds;
    bool identical;
  };
  std::vector<Row> rows;
  for (const int t : thread_counts) {
    core::SynthesisOptions options;
    options.threads = t;
    const auto t0 = std::chrono::steady_clock::now();
    const core::SynthesisResult r = core::synthesize(spec, options);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    rows.push_back({t, secs, same_design_space(reference, r)});
    std::printf("%-8d %-12.3f %-10.2f %-10s\n", t, secs, rows.front().seconds / secs,
                rows.back().identical ? "yes" : "NO");
  }

  // Machine-readable export: one JSON object per line, stable keys.
  std::printf("--- BEGIN JSONL (synthesis_thread_scaling) ---\n");
  for (const Row& row : rows) {
    std::printf(
        "{\"benchmark\":\"synthesis_thread_scaling\",\"cores\":%d,"
        "\"islands\":%d,\"flows\":%zu,\"hardware_concurrency\":%d,"
        "\"threads\":%d,\"runtime_s\":%.6f,\"speedup_vs_1\":%.4f,"
        "\"design_points\":%zu,\"identical_to_sequential\":%s}\n",
        cores, islands, spec.flows.size(), hw, row.threads, row.seconds,
        rows.front().seconds / row.seconds, reference.points.size(),
        row.identical ? "true" : "false");
  }
  std::printf("--- END JSONL ---\n\n");
}

void BM_SynthesizeSynthetic(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const soc::SocSpec spec = make_case(cores, std::min(6, cores / 3));
  vinoc::bench::time_synthesis(state, spec, {});
  state.SetComplexityN(cores);
}
BENCHMARK(BM_SynthesizeSynthetic)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

/// Thread-count sweep under google-benchmark as well, so the scaling shows
/// up in the standard --benchmark_format=json export.
void BM_SynthesizeThreads(benchmark::State& state) {
  const soc::SocSpec spec = make_case(48, 6);
  core::SynthesisOptions options;
  options.threads = static_cast<int>(state.range(0));
  vinoc::bench::time_synthesis(state, spec, options);
}
BENCHMARK(BM_SynthesizeThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  print_thread_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

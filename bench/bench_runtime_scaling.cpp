// Reproduction of the paper's runtime remark (Section 5, text):
//
//   "The exploration of the design points for all the benchmark took only a
//    few hours on a 2 GHz Linux machine. [...] the synthesis process is only
//    run once at design time and therefore the computational time required
//    by the algorithm is negligible."
//
// The stated complexity is O(V^2 E^2 ln V), "however in practice the
// algorithm runs quite fast as the input graphs typically are not fully
// connected". We sweep synthetic SoCs from 8 to 96 cores and report the
// full design-space exploration time, plus per-size google-benchmark
// timings.
//
// The second table measures the staged engine's thread scaling
// (SynthesisOptions::threads) on a multi-island spec, verifies the parallel
// runs reproduce the sequential design space exactly, and emits one
// machine-readable JSON line per measurement (between the BEGIN/END JSONL
// markers) so results can be collected across machines without parsing the
// human table.
#include "bench_util.hpp"

#include <chrono>
#include <thread>

namespace {

using namespace vinoc;

soc::SocSpec make_case(int cores, int islands) {
  soc::SyntheticParams params;
  params.cores = cores;
  params.hubs = std::max(1, cores / 12);
  params.seed = 17;
  const soc::Benchmark bm = soc::make_synthetic_soc(params);
  return soc::with_logical_islands(bm.soc, islands, bm.use_cases);
}

void print_table(bool quick) {
  bench::print_header("Synthesis runtime scaling (synthetic SoCs)",
                      "Seiculescu et al., DAC 2009, Section 5 (runtime remark)");
  std::printf("%-8s %-8s %-8s %-12s %-14s %-14s\n", "cores", "flows", "VIs",
              "configs", "points", "runtime [s]");
  const std::vector<int> core_sweep =
      quick ? std::vector<int>{8, 16, 24} : std::vector<int>{8, 16, 24, 32, 48, 64, 96};
  for (const int cores : core_sweep) {
    const int islands = std::min(6, cores / 3);
    const soc::SocSpec spec = make_case(cores, islands);
    core::SynthesisOptions options;
    const core::SynthesisResult result = core::synthesize(spec, options);
    std::printf("%-8d %-8zu %-8zu %-12d %-14zu %-14.3f\n", cores,
                spec.flows.size(), spec.islands.size(),
                result.stats.configs_explored, result.points.size(),
                result.stats.elapsed_seconds);
  }
  std::printf("\n(paper: 'a few hours' for the whole benchmark suite on a 2 GHz\n"
              " machine; our exploration is seconds per design at these sizes)\n\n");
}

/// Same saved design space? (cheap structural check: counts + exact power
/// and latency of every point, which are bit-identical by design).
bool same_design_space(const core::SynthesisResult& a,
                       const core::SynthesisResult& b) {
  if (a.points.size() != b.points.size() || a.pareto != b.pareto) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].metrics.noc_dynamic_w != b.points[i].metrics.noc_dynamic_w ||
        a.points[i].metrics.avg_latency_cycles !=
            b.points[i].metrics.avg_latency_cycles) {
      return false;
    }
  }
  return true;
}

void print_thread_scaling(bool quick) {
  bench::print_header(
      "Synthesis thread scaling (staged parallel exploration engine)",
      "extension: SynthesisOptions::threads over the Section 5 runtime remark");

  const int cores = quick ? 24 : 48;
  const int islands = 6;
  const soc::SocSpec spec = make_case(cores, islands);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  bench::FatRunner runner(bench::FatConfig::from_env_or_die());

  std::vector<int> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  std::printf("%-8s %-22s %-10s %-6s %-10s\n", "threads",
              "runtime s (min/med/max)", "speedup", "reps", "identical");
  std::printf("(spec: %d cores, %d VIs, %zu flows; hardware_concurrency=%d)\n",
              cores, islands, spec.flows.size(), hw);

  core::SynthesisOptions base;
  base.threads = 1;
  const core::SynthesisResult reference = core::synthesize(spec, base);
  struct Row {
    int threads;
    bench::Measurement m;
    bool identical;
  };
  std::vector<Row> rows;
  for (const int t : thread_counts) {
    core::SynthesisOptions options;
    options.threads = t;
    // Correctness guardrail outside the timed region: the parallel run
    // must reproduce the sequential design space exactly.
    const bool identical =
        same_design_space(reference, core::synthesize(spec, options));
    const bench::Measurement m =
        runner.run("synthesize_t" + std::to_string(t), [&] {
          const core::SynthesisResult r = core::synthesize(spec, options);
          benchmark::DoNotOptimize(r.points.size());
        });
    rows.push_back({t, m, identical});
    std::printf("%-8d %-22s %-10.2f %-6d %-10s\n", t,
                bench::time_range(m.stats).c_str(),
                rows.front().m.stats.median / m.stats.median, m.stats.n,
                identical ? "yes" : "NO");
  }

  // Machine-readable export, in the FatRunner record shape consumed by
  // tools/bench_check (one record per thread count; the raw `*_s`
  // runtimes are observability fields, speedups gate-able if ever
  // baselined).
  std::printf("--- BEGIN JSONL (synthesis_thread_scaling) ---\n");
  for (const Row& row : rows) {
    bench::RecordProvenance prov(runner.config());
    prov.add(row.m);
    io::JsonlWriter w;
    w.field("bench", "runtime_scaling_t" + std::to_string(row.threads))
        .field("cores", cores)
        .field("islands", islands)
        .field("flows", static_cast<std::int64_t>(spec.flows.size()))
        .field("hardware_concurrency", hw)
        .field("threads", row.threads);
    bench::append_metric(w, "runtime_s", row.m.stats);
    bench::append_metric(
        w, "speedup_vs_1",
        bench::ratio_of(rows.front().m.stats, row.m.stats));
    w.field("design_points", static_cast<std::int64_t>(reference.points.size()))
        .field("identical_to_sequential", row.identical);
    prov.append(w);
    bench::append_env_provenance(w);
    std::printf("%s\n", w.line().c_str());
  }
  std::printf("--- END JSONL ---\n\n");
}

void BM_SynthesizeSynthetic(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const soc::SocSpec spec = make_case(cores, std::min(6, cores / 3));
  vinoc::bench::time_synthesis(state, spec, {});
  state.SetComplexityN(cores);
}
BENCHMARK(BM_SynthesizeSynthetic)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

/// Thread-count sweep under google-benchmark as well, so the scaling shows
/// up in the standard --benchmark_format=json export.
void BM_SynthesizeThreads(benchmark::State& state) {
  const soc::SocSpec spec = make_case(48, 6);
  core::SynthesisOptions options;
  options.threads = static_cast<int>(state.range(0));
  vinoc::bench::time_synthesis(state, spec, options);
}
BENCHMARK(BM_SynthesizeThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = vinoc::bench::quick_mode(argc, argv);
  print_table(quick);
  print_thread_scaling(quick);
  if (quick) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Reproduction of the paper's runtime remark (Section 5, text):
//
//   "The exploration of the design points for all the benchmark took only a
//    few hours on a 2 GHz Linux machine. [...] the synthesis process is only
//    run once at design time and therefore the computational time required
//    by the algorithm is negligible."
//
// The stated complexity is O(V^2 E^2 ln V), "however in practice the
// algorithm runs quite fast as the input graphs typically are not fully
// connected". We sweep synthetic SoCs from 8 to 96 cores and report the
// full design-space exploration time, plus per-size google-benchmark
// timings.
#include "bench_util.hpp"

namespace {

using namespace vinoc;

soc::SocSpec make_case(int cores, int islands) {
  soc::SyntheticParams params;
  params.cores = cores;
  params.hubs = std::max(1, cores / 12);
  params.seed = 17;
  const soc::Benchmark bm = soc::make_synthetic_soc(params);
  return soc::with_logical_islands(bm.soc, islands, bm.use_cases);
}

void print_table() {
  bench::print_header("Synthesis runtime scaling (synthetic SoCs)",
                      "Seiculescu et al., DAC 2009, Section 5 (runtime remark)");
  std::printf("%-8s %-8s %-8s %-12s %-14s %-14s\n", "cores", "flows", "VIs",
              "configs", "points", "runtime [s]");
  for (const int cores : {8, 16, 24, 32, 48, 64, 96}) {
    const int islands = std::min(6, cores / 3);
    const soc::SocSpec spec = make_case(cores, islands);
    core::SynthesisOptions options;
    const core::SynthesisResult result = core::synthesize(spec, options);
    std::printf("%-8d %-8zu %-8zu %-12d %-14zu %-14.3f\n", cores,
                spec.flows.size(), spec.islands.size(),
                result.stats.configs_explored, result.points.size(),
                result.stats.elapsed_seconds);
  }
  std::printf("\n(paper: 'a few hours' for the whole benchmark suite on a 2 GHz\n"
              " machine; our exploration is seconds per design at these sizes)\n\n");
}

void BM_SynthesizeSynthetic(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const soc::SocSpec spec = make_case(cores, std::min(6, cores / 3));
  vinoc::bench::time_synthesis(state, spec, {});
  state.SetComplexityN(cores);
}
BENCHMARK(BM_SynthesizeSynthetic)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Related-work baseline: application-specific synthesized NoC vs. mapping
// the application onto a regular 2D mesh ([9]-[11] in the paper).
//
// The paper's premise ("There are several approaches presented to synthesize
// application-specific NoCs ... none of them consider the issue of shutdown
// of VIs") assumes custom topologies are the right starting point; this
// bench quantifies why: for heterogeneous SoC traffic, the custom topology
// beats the mesh on power (fewer, right-sized switches; short paths for
// heavy flows) at comparable or better latency. Both designs use identical
// 65 nm component models, so the ratio is a fair apples-to-apples number.
#include "bench_util.hpp"
#include "vinoc/core/mesh_baseline.hpp"

namespace {

using namespace vinoc;

void print_table() {
  bench::print_header("Custom synthesized NoC vs. regular 2D-mesh baseline",
                      "Seiculescu et al., DAC 2009, Sections 1-2 (refs [9]-[11])");
  std::printf("%-16s %-8s %-26s %-26s %-10s\n", "benchmark", "mesh",
              "power custom/mesh [mW]", "latency custom/mesh [cy]", "mesh util");

  for (const soc::Benchmark& bm : soc::all_benchmarks()) {
    const soc::SocSpec spec = soc::with_logical_islands(bm.soc, 1, bm.use_cases);
    core::SynthesisOptions options;
    const core::SynthesisResult custom = core::synthesize(spec, options);
    const core::MeshResult mesh = core::synthesize_mesh_baseline(spec);
    if (custom.points.empty() || !mesh.ok) {
      std::printf("%-16s (failed: %s)\n", bm.soc.name.c_str(),
                  mesh.ok ? "no custom design point" : mesh.failure_reason.c_str());
      continue;
    }
    const core::Metrics& mc = custom.best_power().metrics;
    const core::Metrics& mm = mesh.metrics;
    char grid[16];
    std::snprintf(grid, sizeof grid, "%dx%d", mesh.rows, mesh.cols);
    char pw[64];
    std::snprintf(pw, sizeof pw, "%7.1f / %7.1f (%.2fx)", mc.noc_dynamic_w * 1e3,
                  mm.noc_dynamic_w * 1e3, mm.noc_dynamic_w / mc.noc_dynamic_w);
    char lat[64];
    std::snprintf(lat, sizeof lat, "%5.2f / %5.2f", mc.avg_latency_cycles,
                  mm.avg_latency_cycles);
    std::printf("%-16s %-8s %-26s %-26s %-10.2f\n", bm.soc.name.c_str(), grid,
                pw, lat, mesh.max_link_utilization);
  }
  std::printf("\n(custom topologies use fewer, right-sized switches; the mesh\n"
              " pays for a full fabric. util > 1 means the mesh cannot even\n"
              " carry the traffic at this link width.)\n\n");
}

void BM_MeshBaselineD26(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 1, d26.use_cases);
  for (auto _ : state) {
    const core::MeshResult r = core::synthesize_mesh_baseline(spec);
    benchmark::DoNotOptimize(r.metrics.noc_dynamic_w);
  }
}
BENCHMARK(BM_MeshBaselineD26)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

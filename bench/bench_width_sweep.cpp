// Multi-width sweep throughput: wall clock of explore_link_widths() (the
// sweep-structured evaluation — partitions / floorplan / candidate
// structures shared across the width sweep, see vinoc/core/width_eval.hpp)
// versus the LEGACY schedule of one independent synthesize() per width, on
// the seed benchmarks at the default width set.
//
// The legacy loop lives in this same binary, so the A/B needs no second
// build; the bench additionally asserts that every shared-sweep entry's
// result_fingerprint equals its legacy counterpart (exits non-zero on
// mismatch — the speedup number is only meaningful if the results are
// bit-identical).
//
// One JSON line between the BEGIN/END JSONL markers; the perf-smoke job
// feeds it to tools/bench_check against bench/baseline.json (the
// speedup_shared metric is the CI floor for the sweep-structuring win).
// `--quick` shrinks the case list and skips the google-benchmark tail.
#include "bench_util.hpp"

#include <chrono>
#include <cstdlib>

#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/candidates.hpp"
#include "vinoc/core/explore.hpp"
#include "vinoc/exec/thread_pool.hpp"
#include "vinoc/io/jsonl.hpp"

namespace {

using namespace vinoc;
using Clock = std::chrono::steady_clock;

struct Case {
  std::string name;
  soc::SocSpec spec;
};

std::vector<Case> sweep_cases(bool quick) {
  std::vector<Case> cases;
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::Benchmark d36 = soc::make_d36_settop_soc();
  const soc::Benchmark d64 = soc::make_d64_tile_soc();
  cases.push_back({"d26/l4", soc::with_logical_islands(d26.soc, 4, d26.use_cases)});
  cases.push_back({"d36/l5", soc::with_logical_islands(d36.soc, 5, d36.use_cases)});
  cases.push_back({"d64/l8", soc::with_logical_islands(d64.soc, 8, d64.use_cases)});
  if (!quick) {
    const soc::Benchmark d24 = soc::make_d24_imaging_soc();
    cases.push_back({"d26/l7", soc::with_logical_islands(d26.soc, 7, d26.use_cases)});
    cases.push_back({"d24/l5", soc::with_logical_islands(d24.soc, 5, d24.use_cases)});
    cases.push_back({"d64/l4", soc::with_logical_islands(d64.soc, 4, d64.use_cases)});
  }
  return cases;
}

const std::vector<int> kWidths = {16, 32, 64, 128};

/// The pre-PR sweep schedule: one full synthesize() per width over one
/// shared pool/scratch, infeasible widths recorded. Returns per-width
/// fingerprints (0 = infeasible) and the number of candidate evaluations.
std::vector<std::uint64_t> legacy_sweep(const soc::SocSpec& spec,
                                        const core::SynthesisOptions& options,
                                        long long* evals) {
  exec::ThreadPool pool(options.threads);
  core::EvalScratchPool scratch;
  std::vector<std::uint64_t> fps;
  for (const int w : kWidths) {
    core::SynthesisOptions opt = options;
    opt.link_width_bits = w;
    try {
      const core::SynthesisResult r = core::synthesize(spec, opt, pool, scratch);
      if (evals != nullptr) *evals += r.stats.configs_explored;
      fps.push_back(campaign::result_fingerprint(r));
    } catch (const core::InfeasibleWidthError&) {
      fps.push_back(0);
    }
  }
  return fps;
}

std::vector<std::uint64_t> shared_sweep(const soc::SocSpec& spec,
                                        const core::SynthesisOptions& options,
                                        long long* evals) {
  const core::WidthSweepResult sweep =
      core::explore_link_widths(spec, kWidths, options);
  std::vector<std::uint64_t> fps;
  for (const core::WidthSweepEntry& e : sweep.entries) {
    if (e.feasible && evals != nullptr) *evals += e.result.stats.configs_explored;
    fps.push_back(e.feasible ? campaign::result_fingerprint(e.result) : 0);
  }
  return fps;
}

void print_table(bool quick) {
  bench::print_header(
      "Width sweep: shared structures vs one synthesize() per width",
      "beyond the paper (sweep-structured evaluation of Algorithm 1)");
  std::vector<Case> cases = sweep_cases(quick);
  core::SynthesisOptions options;  // threads = 1, prune on: the default path
  const int reps = quick ? 2 : 3;

  // Bit-identity gate first (also warms caches/pages for the timing loops).
  for (const Case& c : cases) {
    const std::vector<std::uint64_t> a = shared_sweep(c.spec, options, nullptr);
    const std::vector<std::uint64_t> b = legacy_sweep(c.spec, options, nullptr);
    if (a != b) {
      std::fprintf(stderr,
                   "bench_width_sweep: FINGERPRINT MISMATCH on %s — the shared "
                   "sweep is not bit-identical to per-width synthesize()\n",
                   c.name.c_str());
      std::exit(1);
    }
  }

  double shared_total = 0.0;
  double legacy_total = 0.0;
  long long evals_total = 0;
  std::printf("%-10s %-12s %-12s %-10s\n", "case", "legacy [s]", "shared [s]",
              "speedup");
  for (const Case& c : cases) {
    double best_shared = 1e100;
    double best_legacy = 1e100;
    long long evals = 0;
    for (int r = 0; r < reps; ++r) {
      evals = 0;
      auto t0 = Clock::now();
      (void)shared_sweep(c.spec, options, &evals);
      best_shared =
          std::min(best_shared, std::chrono::duration<double>(Clock::now() - t0).count());
      t0 = Clock::now();
      (void)legacy_sweep(c.spec, options, nullptr);
      best_legacy =
          std::min(best_legacy, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    shared_total += best_shared;
    legacy_total += best_legacy;
    evals_total += evals;
    std::printf("%-10s %-12.4f %-12.4f %.2fx\n", c.name.c_str(), best_legacy,
                best_shared, best_legacy / best_shared);
  }
  std::printf("%-10s %-12.4f %-12.4f %.2fx\n", "TOTAL", legacy_total,
              shared_total, legacy_total / shared_total);

  // Sharing observability on the aggregate case list.
  long long shared_evals = 0;
  long long fallback_evals = 0;
  long long partition_hits = 0;
  for (const Case& c : cases) {
    exec::ThreadPool pool(1);
    core::EvalScratchPool scratch;
    core::WidthSetStats st;
    (void)core::synthesize_width_set(c.spec, kWidths, options, pool, scratch, &st);
    shared_evals += st.shared_evals;
    fallback_evals += st.fallback_evals;
    partition_hits += st.partition_cache_hits;
  }

  std::printf("\n--- BEGIN JSONL (width_sweep) ---\n");
  io::JsonlWriter w;
  w.field("bench", "width_sweep")
      .field("quick", quick)
      .field("sweep_s", shared_total)
      .field("legacy_s", legacy_total)
      .field("speedup_shared", legacy_total / shared_total)
      .field("width_cands_per_s", static_cast<double>(evals_total) / shared_total)
      .field("shared_evals", static_cast<double>(shared_evals))
      .field("fallback_evals", static_cast<double>(fallback_evals))
      .field("partition_cache_hits", static_cast<double>(partition_hits));
  std::printf("%s\n", w.line().c_str());
  std::printf("--- END JSONL ---\n\n");
}

void BM_WidthSweepShared(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(
      d26.soc, static_cast<int>(state.range(0)), d26.use_cases);
  core::SynthesisOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::explore_link_widths(spec, kWidths, options));
  }
}
BENCHMARK(BM_WidthSweepShared)->Arg(4)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = vinoc::bench::quick_mode(argc, argv);
  print_table(quick);
  if (quick) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Multi-width sweep throughput: wall clock of explore_link_widths() (the
// sweep-structured evaluation — partitions / floorplan / candidate
// structures shared across the width sweep, see vinoc/core/width_eval.hpp)
// versus the LEGACY schedule of one independent synthesize() per width, on
// the seed benchmarks at the default width set.
//
// The legacy loop lives in this same binary, so the A/B needs no second
// build; the bench additionally asserts that every shared-sweep entry's
// result_fingerprint equals its legacy counterpart (exits non-zero on
// mismatch — the speedup number is only meaningful if the results are
// bit-identical).
//
// A second A/B runs the FINE width grid (kFineWidths), where PR 4's
// trace-level lockstep shared nothing: the certified_share_rate metric is
// the CI floor for how much of that sweep the path-level route-equivalence
// certificates and diverged-lane cohorts now serve from shared structures.
//
// One JSON line between the BEGIN/END JSONL markers; the perf-smoke job
// feeds it to tools/bench_check against bench/baseline.json (the
// speedup_shared metric is the CI floor for the sweep-structuring win).
// `--quick` shrinks the case list and skips the google-benchmark tail.
#include "bench_util.hpp"

#include <chrono>
#include <cstdlib>

#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/candidates.hpp"
#include "vinoc/core/explore.hpp"
#include "vinoc/exec/thread_pool.hpp"
#include "vinoc/io/jsonl.hpp"

namespace {

using namespace vinoc;
using Clock = std::chrono::steady_clock;

struct Case {
  std::string name;
  soc::SocSpec spec;
};

std::vector<Case> sweep_cases(bool quick) {
  std::vector<Case> cases;
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::Benchmark d36 = soc::make_d36_settop_soc();
  const soc::Benchmark d64 = soc::make_d64_tile_soc();
  cases.push_back({"d26/l4", soc::with_logical_islands(d26.soc, 4, d26.use_cases)});
  cases.push_back({"d36/l5", soc::with_logical_islands(d36.soc, 5, d36.use_cases)});
  cases.push_back({"d64/l8", soc::with_logical_islands(d64.soc, 8, d64.use_cases)});
  if (!quick) {
    const soc::Benchmark d24 = soc::make_d24_imaging_soc();
    cases.push_back({"d26/l7", soc::with_logical_islands(d26.soc, 7, d26.use_cases)});
    cases.push_back({"d24/l5", soc::with_logical_islands(d24.soc, 5, d24.use_cases)});
    cases.push_back({"d64/l4", soc::with_logical_islands(d64.soc, 4, d64.use_cases)});
  }
  return cases;
}

const std::vector<int> kWidths = {16, 32, 64, 128};

/// Dense upper-range width grid for the certificate measurement: adjacent
/// widths snap to close (often overlapping) island frequencies, so their
/// Dijkstras differ in near-tie flips and genuine reuse-vs-open shifts —
/// exactly the regime the path-level route-equivalence certificates and
/// diverged-lane cohorts target. Under PR 4's trace-level lockstep every
/// one of these (candidate, width) results fell back to solo evaluation
/// (shared rate 0); the certified_share_rate metric gates how much of the
/// fine sweep the certificates now serve from shared structures.
const std::vector<int> kFineWidths = {128, 160, 192, 256};

/// The pre-PR sweep schedule: one full synthesize() per width over one
/// shared pool/scratch, infeasible widths recorded. Returns per-width
/// fingerprints (0 = infeasible) and the number of candidate evaluations.
std::vector<std::uint64_t> legacy_sweep(const soc::SocSpec& spec,
                                        const std::vector<int>& widths,
                                        const core::SynthesisOptions& options,
                                        long long* evals) {
  exec::ThreadPool pool(options.threads);
  core::EvalScratchPool scratch;
  std::vector<std::uint64_t> fps;
  for (const int w : widths) {
    core::SynthesisOptions opt = options;
    opt.link_width_bits = w;
    try {
      const core::SynthesisResult r = core::synthesize(spec, opt, pool, scratch);
      if (evals != nullptr) *evals += r.stats.configs_explored;
      fps.push_back(campaign::result_fingerprint(r));
    } catch (const core::InfeasibleWidthError&) {
      fps.push_back(0);
    }
  }
  return fps;
}

std::vector<std::uint64_t> shared_sweep(const soc::SocSpec& spec,
                                        const std::vector<int>& widths,
                                        const core::SynthesisOptions& options,
                                        long long* evals) {
  const core::WidthSweepResult sweep =
      core::explore_link_widths(spec, widths, options);
  std::vector<std::uint64_t> fps;
  for (const core::WidthSweepEntry& e : sweep.entries) {
    if (e.feasible && evals != nullptr) *evals += e.result.stats.configs_explored;
    fps.push_back(e.feasible ? campaign::result_fingerprint(e.result) : 0);
  }
  return fps;
}

/// One measured legacy-vs-shared A/B over `widths`. The fingerprint
/// guardrail runs as an UNTIMED verification pass first (correctness
/// checks stay outside timed regions; it doubles as the warm-up): the
/// shared sweep must be bit-identical to the legacy per-width schedule,
/// else the bench exits non-zero — the single protocol behind BOTH gated
/// speedup metrics. Each side is then measured by the FatRunner (warmup
/// batches, adaptive reps, median + MAD). `evals` receives the shared
/// side's candidate-evaluation count from the verification pass.
struct AbResult {
  bench::Measurement legacy;
  bench::Measurement shared;
};
AbResult timed_ab(bench::FatRunner& runner, const Case& c,
                  const std::vector<int>& widths,
                  const core::SynthesisOptions& options,
                  const char* grid_label, long long* evals = nullptr) {
  if (evals != nullptr) *evals = 0;
  const std::vector<std::uint64_t> a = shared_sweep(c.spec, widths, options, evals);
  const std::vector<std::uint64_t> b = legacy_sweep(c.spec, widths, options, nullptr);
  if (a != b) {
    std::fprintf(stderr,
                 "bench_width_sweep: FINGERPRINT MISMATCH on %s (%s) — the "
                 "shared sweep is not bit-identical to per-width "
                 "synthesize()\n",
                 c.name.c_str(), grid_label);
    std::exit(1);
  }
  AbResult ab;
  ab.shared = runner.run(c.name + " shared", [&] {
    benchmark::DoNotOptimize(shared_sweep(c.spec, widths, options, nullptr));
  });
  ab.legacy = runner.run(c.name + " legacy", [&] {
    benchmark::DoNotOptimize(legacy_sweep(c.spec, widths, options, nullptr));
  });
  return ab;
}

void print_table(bool quick) {
  bench::print_header(
      "Width sweep: shared structures vs one synthesize() per width",
      "beyond the paper (sweep-structured evaluation of Algorithm 1)");
  std::vector<Case> cases = sweep_cases(quick);
  core::SynthesisOptions options;  // threads = 1, prune on: the default path
  // Statistical measurement (bench/fat_runner.hpp): env-var-canonical
  // warmup/rep config, median + MAD with outlier rejection per side.
  bench::FatRunner runner(bench::FatConfig::from_env_or_die());
  bench::RecordProvenance prov(runner.config());

  std::vector<bench::RobustStats> shared_parts;
  std::vector<bench::RobustStats> legacy_parts;
  long long evals_total = 0;
  std::printf("%-10s %-26s %-26s %-10s %-6s\n", "case",
              "legacy s (min/med/max)", "shared s (min/med/max)", "speedup",
              "reps");
  for (const Case& c : cases) {
    long long evals = 0;
    const AbResult ab =
        timed_ab(runner, c, kWidths, options, "default grid", &evals);
    prov.add(ab.shared);
    prov.add(ab.legacy);
    shared_parts.push_back(ab.shared.stats);
    legacy_parts.push_back(ab.legacy.stats);
    evals_total += evals;
    std::printf("%-10s %-26s %-26s %-10.2f %d\n", c.name.c_str(),
                bench::time_range(ab.legacy.stats).c_str(),
                bench::time_range(ab.shared.stats).c_str(),
                ab.legacy.stats.median / ab.shared.stats.median,
                std::min(ab.legacy.stats.n, ab.shared.stats.n));
  }
  const bench::RobustStats shared_total = bench::sum_stats(shared_parts);
  const bench::RobustStats legacy_total = bench::sum_stats(legacy_parts);
  std::printf("%-10s %-26.4f %-26.4f %.2fx\n", "TOTAL (med)",
              legacy_total.median, shared_total.median,
              legacy_total.median / shared_total.median);

  // Sharing observability on the aggregate case list (default width set).
  long long shared_evals = 0;
  long long fallback_evals = 0;
  long long partition_hits = 0;
  int peak_buffered = 0;
  for (const Case& c : cases) {
    exec::ThreadPool pool(1);
    core::EvalScratchPool scratch;
    core::WidthSetStats st;
    (void)core::synthesize_width_set(c.spec, kWidths, options, pool, scratch, &st);
    shared_evals += st.shared_evals;
    fallback_evals += st.fallback_evals;
    partition_hits += st.partition_cache_hits;
    peak_buffered = std::max(peak_buffered, st.peak_buffered_outcomes);
  }

  // Certificate measurement: the fine width grid (see kFineWidths), where
  // PR 4's trace-level lockstep shared NOTHING. A/B timed and fingerprint-
  // gated like the main sweep; the sharing stats feed the gated
  // certified_share_rate metric.
  std::vector<bench::RobustStats> fine_shared_parts;
  std::vector<bench::RobustStats> fine_legacy_parts;
  long long fine_shared = 0;
  long long fine_certified = 0;
  long long fine_accepts = 0;
  long long fine_cohort = 0;
  long long fine_fallback = 0;
  std::printf("\nfine width grid {128,160,192,256} (certificate regime):\n");
  std::printf("%-10s %-26s %-26s %-10s %-22s\n", "case",
              "legacy s (min/med/max)", "shared s (min/med/max)", "speedup",
              "shared/cert/cohort/solo");
  for (const Case& c : cases) {
    const AbResult ab = timed_ab(runner, c, kFineWidths, options, "fine grid");
    prov.add(ab.shared);
    prov.add(ab.legacy);
    fine_shared_parts.push_back(ab.shared.stats);
    fine_legacy_parts.push_back(ab.legacy.stats);
    exec::ThreadPool pool(1);
    core::EvalScratchPool scratch;
    core::WidthSetStats st;
    (void)core::synthesize_width_set(c.spec, kFineWidths, options, pool,
                                     scratch, &st);
    fine_shared += st.shared_evals;
    fine_certified += st.certified_evals;
    fine_accepts += st.certificate_accepts;
    fine_cohort += st.cohort_evals;
    fine_fallback += st.fallback_evals;
    peak_buffered = std::max(peak_buffered, st.peak_buffered_outcomes);
    std::printf("%-10s %-26s %-26s %-10.2f %d/%d/%d/%d\n", c.name.c_str(),
                bench::time_range(ab.legacy.stats).c_str(),
                bench::time_range(ab.shared.stats).c_str(),
                ab.legacy.stats.median / ab.shared.stats.median,
                st.shared_evals, st.certified_evals, st.cohort_evals,
                st.fallback_evals - st.cohort_evals);
  }
  const bench::RobustStats fine_shared_total =
      bench::sum_stats(fine_shared_parts);
  const bench::RobustStats fine_legacy_total =
      bench::sum_stats(fine_legacy_parts);
  const long long fine_followers = fine_shared + fine_fallback;
  const double certified_share_rate =
      fine_followers > 0 ? static_cast<double>(fine_shared) /
                               static_cast<double>(fine_followers)
                         : 0.0;
  std::printf("fine-grid shared rate: %.3f (%lld certificate accepts)\n",
              certified_share_rate, fine_accepts);

  std::printf("\n--- BEGIN JSONL (width_sweep) ---\n");
  const int reps_floor = std::min(shared_total.n, legacy_total.n);
  io::JsonlWriter w;
  w.field("bench", "width_sweep")
      .field("quick", quick)
      .field("sweep_s", shared_total.median)
      .field("legacy_s", legacy_total.median);
  bench::append_metric(w, "speedup_shared",
                       bench::ratio_of(legacy_total, shared_total));
  bench::append_metric(
      w, "width_cands_per_s",
      bench::rate_from_time(shared_total, static_cast<double>(evals_total)));
  // The sharing counters are deterministic at threads=1 (MAD 0 by
  // construction); gating them still catches a sharing-machinery change.
  bench::append_metric(
      w, "shared_evals",
      bench::exact_stat(static_cast<double>(shared_evals), reps_floor));
  bench::append_metric(
      w, "fallback_evals",
      bench::exact_stat(static_cast<double>(fallback_evals), reps_floor));
  bench::append_metric(
      w, "partition_cache_hits",
      bench::exact_stat(static_cast<double>(partition_hits), reps_floor));
  bench::append_metric(w, "speedup_fine",
                       bench::ratio_of(fine_legacy_total, fine_shared_total));
  bench::append_metric(w, "certified_share_rate",
                       bench::exact_stat(certified_share_rate, reps_floor));
  bench::append_metric(
      w, "certificate_accepts",
      bench::exact_stat(static_cast<double>(fine_accepts), reps_floor));
  bench::append_metric(
      w, "cohort_evals",
      bench::exact_stat(static_cast<double>(fine_cohort), reps_floor));
  bench::append_metric(
      w, "peak_buffered_outcomes",
      bench::exact_stat(static_cast<double>(peak_buffered), reps_floor));
  prov.append(w);
  bench::append_env_provenance(w);
  std::printf("%s\n", w.line().c_str());
  std::printf("--- END JSONL ---\n\n");
}

void BM_WidthSweepShared(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(
      d26.soc, static_cast<int>(state.range(0)), d26.use_cases);
  core::SynthesisOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::explore_link_widths(spec, kWidths, options));
  }
}
BENCHMARK(BM_WidthSweepShared)->Arg(4)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool quick = vinoc::bench::quick_mode(argc, argv);
  print_table(quick);
  if (quick) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// FatRunner — the shared statistical measurement harness behind every
// bench_* binary (ROADMAP item 2: "statistical benchmark rigor, then
// tighter perf gates").
//
// A single wall-clock sample is not a measurement: CI runners jitter by
// 10-20%, which forced bench/baseline.json tolerances to ±80-90% on
// absolute throughputs — too loose to catch the ~1.1-1.2x regressions
// that are exactly the size of the wins this repo ships. FatRunner turns
// each timed region into a statistic CI can gate at ±10-20%:
//
//   * env-var-canonical config — every bench reads the SAME knobs
//     (VINOC_BENCH_WARMUP_RUNS / _MIN_REPS / _MAX_REPS /
//     _MIN_DURATION_MS / _SEED), so CI pins them once in the workflow and
//     the log shows exactly what was run; no per-bench config names;
//   * timer-resolution calibration — the steady_clock granularity is
//     estimated at startup and the inner batch size auto-scales until one
//     timed batch lasts at least min_duration_ms (and well above the
//     timer resolution), so sub-millisecond regions are still measurable;
//   * warmup batches excluded from statistics (page faults, cache fill,
//     branch predictors, frequency ramp);
//   * robust statistics — median + MAD (median absolute deviation), with
//     MAD-based outlier rejection (a one-off scheduling stall does not
//     move the reported value), and the rep count + dispersion reported
//     so a noisy measurement is visible in the record itself;
//   * CPU-frequency / governor monitoring sampled around the timed
//     region; every record carries a `noisy` flag (governor not
//     "performance", frequency drifted, or dispersion above threshold);
//   * correctness guardrails live OUTSIDE timed regions: run() times
//     exactly the callable it is given — fingerprint checks belong in the
//     caller, before/after the timed reps (see bench_eval_hotpath).
//
// Deliberately independent of google-benchmark so tests/test_bench_stats
// can unit-test the math without the benchmark package; compiled into the
// small vinoc_fatrunner static library.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "vinoc/io/jsonl.hpp"

namespace vinoc::bench {

// ---------------------------------------------------------------------------
// Robust statistics (median + MAD, outlier rejection)
// ---------------------------------------------------------------------------

/// True median (average of the two middle elements for even counts).
/// Returns 0 for an empty vector.
[[nodiscard]] double median_of(std::vector<double> samples);

/// Median absolute deviation around `center`. Returns 0 when empty.
[[nodiscard]] double mad_of(const std::vector<double>& samples, double center);

/// Summary of one sample vector after MAD-based outlier rejection.
struct RobustStats {
  int n = 0;           ///< samples kept (reported rep count)
  int rejected = 0;    ///< outliers dropped by the MAD filter
  double median = 0.0;
  double mad = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Relative dispersion MAD/|median| (0 when the median is 0) — the
  /// number bench_check --noise-report compares against the tolerance
  /// budget.
  [[nodiscard]] double rel_mad() const;
};

/// Median/MAD over `samples` after rejecting outliers farther than
/// `outlier_k` MADs from the initial median. A MAD of zero (half the
/// samples identical) disables rejection — with no dispersion estimate
/// there is no sound basis for dropping anything.
[[nodiscard]] RobustStats robust_stats(std::vector<double> samples,
                                       double outlier_k = 8.0);

/// Rate statistics units/second derived from time statistics `t` (seconds
/// per call): median = units/t.median, dispersion scaled accordingly,
/// min/max from the opposite extremes of t.
[[nodiscard]] RobustStats rate_from_time(const RobustStats& t, double units);

/// Sum of per-case statistics (aggregate wall clock across a case list).
/// The MAD is the sum of the component MADs — an upper bound, which is
/// the conservative direction for a noise report. n is the smallest
/// component rep count.
[[nodiscard]] RobustStats sum_stats(const std::vector<RobustStats>& parts);

/// Ratio num/den (e.g. legacy/shared speedup). The relative MAD is the
/// sum of the components' relative MADs (first-order quotient
/// propagation, conservative). n is the smaller rep count.
[[nodiscard]] RobustStats ratio_of(const RobustStats& num,
                                   const RobustStats& den);

/// Statistics of a value known exactly (deterministic counters): MAD 0,
/// n = reps so min-rep enforcement still passes.
[[nodiscard]] RobustStats exact_stat(double value, int reps);

// ---------------------------------------------------------------------------
// Canonical environment configuration
// ---------------------------------------------------------------------------

/// The canonical env-var config every bench binary honours. CI exports
/// these explicitly in the workflow so reps/warmup are pinned and visible
/// in the logs; locally the defaults below apply.
struct FatConfig {
  int warmup_runs = 1;           ///< VINOC_BENCH_WARMUP_RUNS: batches run, not reported
  int min_reps = 5;              ///< VINOC_BENCH_MIN_REPS: always measure at least this many
  int max_reps = 15;             ///< VINOC_BENCH_MAX_REPS: adaptive-rep ceiling
  double min_duration_ms = 20.0; ///< VINOC_BENCH_MIN_DURATION_MS: calibration floor per batch
  std::uint64_t seed = 12345;    ///< VINOC_BENCH_SEED: data-generation seed for benches that randomise
  double target_rel_mad = 0.02;  ///< stop adding reps once dispersion is this low
  double noisy_rel_mad = 0.10;   ///< rel MAD above this flags the record noisy

  /// Reads the VINOC_BENCH_* environment, starting from the defaults.
  /// Returns false and sets `error` ("VINOC_BENCH_MIN_REPS: bad value
  /// 'abc' (want a positive integer)") on unparseable or out-of-range
  /// values; on failure the config is left at the defaults.
  static bool from_env(FatConfig& out, std::string& error);

  /// from_env() that prints the error and exits(2) — the bench-binary
  /// entry point (a bench run with a typoed config must not silently
  /// measure with defaults).
  [[nodiscard]] static FatConfig from_env_or_die();
};

// ---------------------------------------------------------------------------
// Timer calibration
// ---------------------------------------------------------------------------

/// Estimated steady_clock granularity in seconds (smallest positive delta
/// over a burst of back-to-back readings).
[[nodiscard]] double timer_resolution_s();

/// Pure batch-growth step for the calibration loop: given that `batch`
/// iterations took `elapsed_s`, returns the next batch size to try so one
/// batch lasts at least `min_duration_s`. Growth is the measured shortfall
/// with 20% headroom, clamped to [2x, 16x] per step (a wildly short first
/// probe must not overshoot to minutes). Returns `batch` unchanged when
/// the duration target is already met.
[[nodiscard]] int next_calibration_batch(int batch, double elapsed_s,
                                         double min_duration_s);

// ---------------------------------------------------------------------------
// CPU frequency / governor monitoring
// ---------------------------------------------------------------------------

/// One cpufreq sample (cpu0). Zero/"unknown" when /sys is unreadable
/// (typical in containers) — unreadable is NOT treated as noisy, absence
/// of evidence being the container norm.
struct CpuSample {
  double freq_khz = 0.0;
  std::string governor = "unknown";
};
[[nodiscard]] CpuSample sample_cpu();

// ---------------------------------------------------------------------------
// Measurement + runner
// ---------------------------------------------------------------------------

/// One measured region: per-rep seconds (batch-normalised to one fn()
/// call), robust stats, and the CPU-frequency provenance sampled around
/// the timed reps.
struct Measurement {
  std::string name;
  int batch = 1;               ///< calibrated inner iterations per rep
  std::vector<double> rep_s;   ///< all timed reps (pre-rejection), seconds/call
  RobustStats stats;           ///< robust stats over rep_s
  CpuSample cpu_start;
  CpuSample cpu_end;
  bool noisy = false;          ///< governor / frequency-drift / dispersion flag
};

/// The one entry point every bench binary threads its timed regions
/// through: calibrate, warm up, measure adaptively, summarise.
class FatRunner {
 public:
  explicit FatRunner(FatConfig config) : config_(config) {}

  /// Times `fn` per the config: calibrates the batch size to
  /// min_duration_ms, runs warmup_runs unreported batches, then measures
  /// min_reps..max_reps batches (stopping early once rel MAD <=
  /// target_rel_mad), and summarises with outlier rejection. `fn` must be
  /// repeatable; correctness checks belong outside it or must be cheap
  /// relative to the work (they are timed).
  Measurement run(const std::string& name, const std::function<void()>& fn);

  [[nodiscard]] const FatConfig& config() const { return config_; }

  /// Computes the noisy flag for a finished measurement: non-performance
  /// governor, >5% cpu0 frequency drift across the timed region, or
  /// timing dispersion above noisy_rel_mad. Exposed for tests.
  [[nodiscard]] static bool is_noisy(const Measurement& m,
                                     const FatConfig& config);

 private:
  FatConfig config_;
};

/// Accumulates per-record measurement provenance across the (usually
/// several) measurements that feed one JSONL record, and appends the
/// canonical fields: `reps` (smallest kept-rep count — the number
/// bench_check's min-rep enforcement reads), `warmup_runs`, `noisy`
/// (OR over measurements), `cpu_freq_start_khz` / `cpu_freq_end_khz`
/// (first/last sample) and `timer_res_ns`.
class RecordProvenance {
 public:
  explicit RecordProvenance(const FatConfig& config) : config_(config) {}
  void add(const Measurement& m);
  io::JsonlWriter& append(io::JsonlWriter& w) const;

 private:
  FatConfig config_;
  int min_reps_ = 0;
  bool any_ = false;
  bool noisy_ = false;
  double freq_start_khz_ = 0.0;
  double freq_end_khz_ = 0.0;
};

/// Appends a gated metric as the `key` (median) plus its `<key>_mad`
/// dispersion companion — the record shape tools/bench_check consumes
/// (the `_mad` suffix marks an observability field, never gated itself).
io::JsonlWriter& append_metric(io::JsonlWriter& w, std::string_view key,
                               const RobustStats& s);

}  // namespace vinoc::bench

// Figure 3 reproduction: average zero-load packet latency (cycles) vs.
// voltage-island count on the D26 SoC, logical vs. communication-based
// partitioning.
//
// Paper shape to reproduce (DAC'09, Fig. 3):
//  * latency is lowest with 1 island (~3-3.5 cycles) and rises with the
//    island count, because every island crossing pays the 4-cycle
//    bi-synchronous converter delay;
//  * at 26 islands (every core alone) every flow crosses and the average
//    roughly doubles (~7 cycles in the paper).
//
// We additionally validate the analytic zero-load number against the
// flit-level simulator at 5% injection scale (sim and model must agree to
// within a fraction of a cycle at near-zero load).
#include "bench_util.hpp"
#include "vinoc/io/plots.hpp"
#include "vinoc/sim/simulator.hpp"

namespace {

using namespace vinoc;

struct LatencyPoint {
  bool ok = false;
  double analytic = 0.0;
  double simulated = 0.0;
};

LatencyPoint latency_of(const soc::SocSpec& spec,
                        const core::SynthesisOptions& options) {
  LatencyPoint p;
  const core::SynthesisResult result = core::synthesize(spec, options);
  if (result.points.empty()) return p;
  const core::DesignPoint& best = result.best_power();
  p.ok = true;
  p.analytic = best.metrics.avg_latency_cycles;

  sim::SimOptions sopts;
  sopts.injection_scale = 0.05;  // near zero-load
  sopts.duration_cycles = 200'000;
  sopts.warmup_cycles = 20'000;
  const sim::SimReport report =
      sim::simulate(best.topology, spec, options.tech, sopts);
  p.simulated = report.avg_latency_cycles;
  return p;
}

void print_table() {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  core::SynthesisOptions options;

  bench::print_header(
      "Figure 3: VI count vs. average zero-load latency (D26 media SoC)",
      "Seiculescu et al., DAC 2009, Figure 3");
  std::printf("%-10s %-22s %-22s %-22s %-22s\n", "islands", "logical [cycles]",
              "logical (sim)", "comm-based [cycles]", "comm-based (sim)");

  io::Series log_series{"logical partitioning", {}};
  io::Series com_series{"communication-based partitioning", {}};
  for (const int k :
       bench::figure_island_counts(static_cast<int>(d26.soc.core_count()))) {
    const LatencyPoint log_pt =
        latency_of(soc::with_logical_islands(d26.soc, k, d26.use_cases), options);
    const LatencyPoint com_pt = latency_of(
        soc::with_communication_islands(d26.soc, k, d26.use_cases), options);
    auto val = [](const LatencyPoint& p, bool simulated) {
      if (!p.ok) return std::string("(none)");
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", simulated ? p.simulated : p.analytic);
      return std::string(buf);
    };
    std::printf("%-10d %-22s %-22s %-22s %-22s\n", k,
                val(log_pt, false).c_str(), val(log_pt, true).c_str(),
                val(com_pt, false).c_str(), val(com_pt, true).c_str());
    if (log_pt.ok) log_series.points.emplace_back(k, log_pt.analytic);
    if (com_pt.ok) com_series.points.emplace_back(k, com_pt.analytic);
  }
  io::PlotSpec plot;
  plot.title = "Fig. 3: VI count vs. average zero-load latency (D26)";
  plot.xlabel = "island count";
  plot.ylabel = "latency [cycles]";
  plot.series = {log_series, com_series};
  io::write_plot("d26_fig3_latency", plot);
  std::printf("\nwrote d26_fig3_latency.{dat,gp}\n");
  std::printf("\n(paper: rises from ~3.2 cycles at 1 island to ~7 at 26;\n"
              " each island crossing costs the 4-cycle bi-sync converter)\n\n");
}

void BM_SimulateD26Logical6(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  core::SynthesisOptions options;
  const core::SynthesisResult result = core::synthesize(spec, options);
  if (result.points.empty()) {
    state.SkipWithError("no design point");
    return;
  }
  const core::DesignPoint& best = result.best_power();
  sim::SimOptions sopts;
  sopts.duration_cycles = 20'000;
  sopts.warmup_cycles = 2'000;
  for (auto _ : state) {
    const sim::SimReport r = sim::simulate(best.topology, spec, options.tech, sopts);
    benchmark::DoNotOptimize(r.packets_delivered);
  }
}
BENCHMARK(BM_SimulateD26Logical6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Ablation: the weight parameters of the synthesis cost functions.
//
// Definition 1's alpha trades bandwidth against latency tightness in the
// VCG edge weights ("The value of the weight parameter alpha can be set
// experimentally or obtained as an input from the user, depending on the
// importance of performance and power consumption objectives"), and the
// router's alpha_power trades power against latency when opening links.
// The paper does not plot these sweeps; we record them as the design-choice
// ablation DESIGN.md calls out.
#include "bench_util.hpp"

namespace {

using namespace vinoc;

void print_alpha_sweep() {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);

  bench::print_header("Ablation: Definition-1 alpha (VCG weight) sweep",
                      "Seiculescu et al., DAC 2009, Definition 1");
  std::printf("%-8s %-18s %-18s %-14s\n", "alpha", "best power [mW]",
              "best latency [cy]", "design points");
  for (const double alpha : {0.0, 0.25, 0.5, 0.6, 0.75, 1.0}) {
    core::SynthesisOptions options;
    options.alpha = alpha;
    const core::SynthesisResult result = core::synthesize(spec, options);
    if (result.points.empty()) {
      std::printf("%-8.2f (no design point)\n", alpha);
      continue;
    }
    std::printf("%-8.2f %-18.2f %-18.2f %-14zu\n", alpha,
                result.best_power().metrics.noc_dynamic_w * 1e3,
                result.best_latency().metrics.avg_latency_cycles,
                result.points.size());
  }

  std::printf("\n");
  bench::print_header("Ablation: router alpha_power (link-cost weight) sweep",
                      "Seiculescu et al., DAC 2009, Section 4 step 15");
  std::printf("%-12s %-18s %-18s %-12s\n", "alpha_pow", "best power [mW]",
              "avg latency [cy]", "links");
  for (const double ap : {0.0, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    core::SynthesisOptions options;
    options.alpha_power = ap;
    const core::SynthesisResult result = core::synthesize(spec, options);
    if (result.points.empty()) {
      std::printf("%-12.2f (no design point)\n", ap);
      continue;
    }
    const core::DesignPoint& best = result.best_power();
    std::printf("%-12.2f %-18.2f %-18.2f %-12d\n", ap,
                best.metrics.noc_dynamic_w * 1e3, best.metrics.avg_latency_cycles,
                best.metrics.link_count);
  }
  std::printf("\n(expected: latency-heavy weights buy shorter paths at higher power)\n\n");
}

void BM_AlphaZero(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  core::SynthesisOptions options;
  options.alpha = 0.0;
  vinoc::bench::time_synthesis(state, spec, options);
}
BENCHMARK(BM_AlphaZero)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_alpha_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Reproduction of the paper's motivation claim (Section 5, text):
//
//   "In many SoCs, the shutdown of cores can lead to large reduction in
//    leakage power, leading to even 25% or more reduction in overall system
//    power [6]. Thus, compared to the power savings achieved, the penalty
//    incurred in the NoC design is negligible."
//
// For every benchmark we synthesize the VI-aware NoC, then evaluate the
// device's use-case scenarios with and without power gating of idle
// islands (vinoc::power). The NoC's own cost (its dynamic power + its
// always-on intermediate-VI leakage) is charged against the savings.
#include <algorithm>

#include "bench_util.hpp"
#include "vinoc/power/gating.hpp"

namespace {

using namespace vinoc;

void print_table() {
  bench::print_header("Island shutdown: total system power savings",
                      "Seiculescu et al., DAC 2009, Section 5 (>=25% claim)");

  std::printf("%-22s %-8s %-16s %-16s %-12s\n", "benchmark", "VIs",
              "always-on [mW]", "gated [mW]", "saved [%]");

  for (const soc::Benchmark& bm : soc::all_benchmarks()) {
    // Gate at the finest logical islanding: the more islands, the finer the
    // shutdown granularity (this is the configuration shutdown support buys).
    const int islands =
        std::min(soc::logical_group_count(),
                 static_cast<int>(bm.soc.core_count()) / 2);
    const soc::SocSpec spec =
        soc::with_logical_islands(bm.soc, islands, bm.use_cases);
    core::SynthesisOptions options;
    const core::SynthesisResult result = core::synthesize(spec, options);
    if (result.points.empty()) {
      std::printf("%-22s %-8d (no design point)\n", bm.soc.name.c_str(), islands);
      continue;
    }
    const power::ShutdownReport report = power::evaluate_shutdown_savings(
        spec, result.best_power().topology, options.tech);
    std::printf("%-22s %-8zu %-16.1f %-16.1f %-12.1f\n", bm.soc.name.c_str(),
                spec.islands.size(), report.avg_power_no_gating_w * 1e3,
                report.avg_power_with_gating_w * 1e3,
                report.saved_fraction * 100.0);
    for (const power::ScenarioPower& s : report.scenarios) {
      std::printf("    %-24s %4.0f%% of time: %8.1f -> %8.1f mW\n",
                  s.name.c_str(), s.time_fraction * 100.0,
                  s.power_no_gating_w * 1e3, s.power_with_gating_w * 1e3);
    }
  }
  std::printf("\n(paper cites >=25%% total-power reduction from island shutdown)\n\n");
}

void BM_GatingEvalD26(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  core::SynthesisOptions options;
  const core::SynthesisResult result = core::synthesize(spec, options);
  if (result.points.empty()) {
    state.SkipWithError("no design point");
    return;
  }
  for (auto _ : state) {
    const power::ShutdownReport r = power::evaluate_shutdown_savings(
        spec, result.best_power().topology, options.tech);
    benchmark::DoNotOptimize(r.saved_fraction);
  }
}
BENCHMARK(BM_GatingEvalD26)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

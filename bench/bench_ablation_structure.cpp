// Ablation: structural design choices of the synthesized NoC.
//
//  (a) The intermediate NoC VI (Section 3.2: "our method can explore
//      solutions where a separate NoC VI can be created... only if the
//      resources are available"): we compare the sweep with and without it.
//  (b) The NoC data width (Section 4: "without loss of generality, we fix
//      the data width of the NoC links to a user-defined value. Please note
//      that it could be varied in a range and more design points could be
//      explored"): we sweep 16/32/64-bit links. Wider links lower the
//      island clocks (larger max switch sizes) at more wires per link.
#include "bench_util.hpp"

namespace {

using namespace vinoc;

void print_tables() {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);

  bench::print_header("Ablation: intermediate NoC VI on/off (D26, 6 VIs, logical)",
                      "Seiculescu et al., DAC 2009, Section 3.2");
  std::printf("%-14s %-14s %-18s %-18s %-10s\n", "intermediate", "points",
              "best power [mW]", "avg latency [cy]", "fifos");
  for (const bool allow : {false, true}) {
    core::SynthesisOptions options;
    options.allow_intermediate_island = allow;
    const core::SynthesisResult result = core::synthesize(spec, options);
    if (result.points.empty()) {
      std::printf("%-14s (no design point)\n", allow ? "allowed" : "off");
      continue;
    }
    const core::DesignPoint& best = result.best_power();
    std::printf("%-14s %-14zu %-18.2f %-18.2f %-10d\n",
                allow ? "allowed" : "off", result.points.size(),
                best.metrics.noc_dynamic_w * 1e3, best.metrics.avg_latency_cycles,
                best.metrics.fifo_count);
  }

  std::printf("\n");
  bench::print_header("Ablation: NoC link data width (D26, 6 VIs, logical)",
                      "Seiculescu et al., DAC 2009, Section 4");
  std::printf("%-10s %-18s %-18s %-18s %-16s\n", "width", "best power [mW]",
              "avg latency [cy]", "max island MHz", "max sw ports");
  for (const int width : {16, 32, 64, 128}) {
    core::SynthesisOptions options;
    options.link_width_bits = width;
    core::SynthesisResult result;
    try {
      result = core::synthesize(spec, options);
    } catch (const std::invalid_argument& e) {
      std::printf("%-10d infeasible: %s\n", width, e.what());
      continue;
    }
    if (result.points.empty()) {
      std::printf("%-10d (no design point)\n", width);
      continue;
    }
    double f_max = 0.0;
    for (const core::IslandNocParams& p : result.island_params) {
      f_max = std::max(f_max, p.freq_hz);
    }
    const core::DesignPoint& best = result.best_power();
    std::printf("%-10d %-18.2f %-18.2f %-18.0f %-16d\n", width,
                best.metrics.noc_dynamic_w * 1e3, best.metrics.avg_latency_cycles,
                f_max / 1e6, best.metrics.max_switch_ports);
  }
  std::printf("\n");
  bench::print_header(
      "Ablation: hub concentration — when the intermediate VI is required",
      "Seiculescu et al., DAC 2009, Section 4 (max_sw_size constraint)");
  // A star SoC: one memory hub, 17 clients, every core in its own island.
  // The hub's aggregate NI traffic (17 x 1.7 Gbit/s ~ 29 Gbit/s) pushes its
  // island clock to ~950 MHz, where the crossbar critical path caps the
  // switch at a handful of ports — far fewer than 17 direct links. Only the
  // intermediate NoC VI can concentrate the traffic ("By using switches in
  // an intermediate NoC island, the number of switch-to-switch links can be
  // reduced").
  soc::SocSpec star_base;
  star_base.name = "star18";
  star_base.islands = {{"tmp", 1.0, false}};
  auto add_core = [&star_base](const std::string& name, soc::CoreKind kind) {
    soc::CoreSpec c;
    c.name = name;
    c.kind = kind;
    c.island = 0;
    c.dynamic_power_w = 0.05;
    c.leakage_power_w = 0.02;
    star_base.cores.push_back(c);
  };
  add_core("hub", soc::CoreKind::kMemory);
  for (int i = 0; i < 17; ++i) {
    add_core("client" + std::to_string(i), soc::CoreKind::kDsp);
    soc::Flow f;
    f.src = static_cast<soc::CoreId>(i + 1);
    f.dst = 0;
    f.bandwidth_bits_per_s = 1.7e9;
    f.max_latency_cycles = 25;
    f.label = "client" + std::to_string(i) + "->hub";
    star_base.flows.push_back(f);
  }
  const soc::SocSpec star_spec = soc::with_logical_islands(star_base, 18);
  std::printf("%-14s %-14s %-18s %-18s %-14s\n", "intermediate", "points",
              "best power [mW]", "avg latency [cy]", "NoC-VI switches");
  for (const bool allow : {false, true}) {
    core::SynthesisOptions options;
    options.allow_intermediate_island = allow;
    options.max_intermediate_switches = 8;
    const core::SynthesisResult result = core::synthesize(star_spec, options);
    if (result.points.empty()) {
      std::printf("%-14s 0              (unroutable: hub switch out of ports)\n",
                  allow ? "allowed" : "off");
      continue;
    }
    const core::DesignPoint& best = result.best_power();
    std::printf("%-14s %-14zu %-18.2f %-18.2f %-14d\n",
                allow ? "allowed" : "off", result.points.size(),
                best.metrics.noc_dynamic_w * 1e3,
                best.metrics.avg_latency_cycles, best.intermediate_switches);
  }
  std::printf("\n");
}

void BM_NoIntermediate(benchmark::State& state) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  core::SynthesisOptions options;
  options.allow_intermediate_island = false;
  vinoc::bench::time_synthesis(state, spec, options);
}
BENCHMARK(BM_NoIntermediate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

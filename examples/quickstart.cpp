// Quickstart: define a tiny 8-core SoC with three voltage islands, run the
// VI-aware topology synthesis, and print the resulting design points.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "vinoc/core/shutdown_safety.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/io/exports.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace {

vinoc::soc::SocSpec make_tiny_soc() {
  using namespace vinoc::soc;
  SocSpec spec;
  spec.name = "tiny8";
  spec.islands = {
      {"vi_cpu", 1.0, /*can_shutdown=*/false},  // hosts the shared memory
      {"vi_media", 1.0, true},
      {"vi_io", 0.9, true},
  };

  auto core = [&spec](const char* name, CoreKind kind, IslandId isl, double dyn_mw) {
    CoreSpec c;
    c.name = name;
    c.kind = kind;
    c.island = isl;
    c.width_mm = 1.2;
    c.height_mm = 1.2;
    c.dynamic_power_w = dyn_mw * 1e-3;
    c.leakage_power_w = dyn_mw * 0.4e-3;
    c.clock_hz = 300e6;
    spec.cores.push_back(c);
    return static_cast<CoreId>(spec.cores.size()) - 1;
  };
  const CoreId cpu = core("cpu", CoreKind::kCpu, 0, 300);
  const CoreId mem = core("mem", CoreKind::kMemory, 0, 50);
  const CoreId dec = core("video_dec", CoreKind::kVideo, 1, 200);
  const CoreId disp = core("display", CoreKind::kDisplay, 1, 80);
  const CoreId dsp = core("dsp", CoreKind::kDsp, 1, 120);
  const CoreId usb = core("usb", CoreKind::kPeripheral, 2, 30);
  const CoreId uart = core("uart", CoreKind::kPeripheral, 2, 5);
  const CoreId dma = core("dma", CoreKind::kDma, 2, 40);

  auto flow = [&spec](CoreId s, CoreId d, double mbps, double lat) {
    Flow f;
    f.src = s;
    f.dst = d;
    f.bandwidth_bits_per_s = mbps * 8e6;
    f.max_latency_cycles = lat;
    f.label = spec.cores[static_cast<std::size_t>(s)].name + "->" +
              spec.cores[static_cast<std::size_t>(d)].name;
    spec.flows.push_back(f);
  };
  flow(cpu, mem, 800, 12);
  flow(mem, cpu, 800, 12);
  flow(dec, mem, 600, 16);
  flow(mem, dec, 300, 16);
  flow(dec, disp, 400, 16);
  flow(dsp, mem, 250, 16);
  flow(cpu, dec, 40, 24);
  flow(cpu, dsp, 30, 24);
  flow(dma, mem, 200, 18);
  flow(usb, dma, 120, 24);
  flow(dma, usb, 120, 24);
  flow(cpu, uart, 2, 40);
  return spec;
}

}  // namespace

int main() {
  const vinoc::soc::SocSpec spec = make_tiny_soc();

  vinoc::core::SynthesisOptions options;
  options.alpha = 0.6;
  // Evaluate candidates on all hardware threads; results do not depend on
  // the thread count, so this is safe to leave on everywhere.
  options.threads = 0;
  const vinoc::core::SynthesisResult result = vinoc::core::synthesize(spec, options);

  std::printf("tiny8: explored %d configs, saved %d design points (%.3f s)\n",
              result.stats.configs_explored, result.stats.configs_saved,
              result.stats.elapsed_seconds);
  std::printf("%-6s %-10s %-12s %-12s %-10s %s\n", "point", "switches",
              "power[mW]", "latency[cy]", "area[mm2]", "pareto");
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const auto& p = result.points[i];
    int total = p.intermediate_switches;
    for (const int k : p.switches_per_island) total += k;
    const bool pareto =
        std::find(result.pareto.begin(), result.pareto.end(), i) != result.pareto.end();
    std::printf("%-6zu %-10d %-12.2f %-12.2f %-10.4f %s\n", i, total,
                p.metrics.noc_dynamic_w * 1e3, p.metrics.avg_latency_cycles,
                p.metrics.noc_area_mm2, pareto ? "*" : "");
  }

  if (!result.points.empty()) {
    const auto& best = result.best_power();
    const auto violations =
        vinoc::core::verify_shutdown_safety(best.topology, spec);
    std::printf("\nbest-power point: %.2f mW, %.2f cycles, %d switches, "
                "%d links (%d crossings); shutdown-safety: %s\n",
                best.metrics.noc_dynamic_w * 1e3, best.metrics.avg_latency_cycles,
                best.metrics.switch_count, best.metrics.link_count,
                best.metrics.fifo_count,
                violations.empty() ? "OK" : violations.front().c_str());
    vinoc::io::write_file("tiny8_topology.dot",
                          vinoc::io::topology_to_dot(best.topology, spec));
    std::printf("wrote tiny8_topology.dot\n");
  }
  return result.points.empty() ? 1 : 0;
}

// Design-space exploration on the D26 mobile/multimedia SoC — the paper's
// main case study. Sweeps the voltage-island count for both partitioning
// strategies (logical / communication-based), prints the power-latency
// trade-off of every saved design point, and dumps the full design space to
// CSV for plotting.
//
// Usage: mobile_soc_explorer [islands]   (default: sweep {1..7, 26})
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "vinoc/core/synthesis.hpp"
#include "vinoc/io/exports.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace {

using namespace vinoc;

void explore(const soc::SocSpec& spec, const char* tag) {
  core::SynthesisOptions options;
  // Fan the candidate sweep out over all cores; the saved design space is
  // bit-identical to a sequential run (threads = 1), only faster.
  options.threads = 0;
  const core::SynthesisResult result = core::synthesize(spec, options);
  std::printf("\n--- %s: %zu islands, %d configs explored, %zu design points, "
              "%.3f s ---\n",
              tag, spec.islands.size(), result.stats.configs_explored,
              result.points.size(), result.stats.elapsed_seconds);
  if (result.points.empty()) return;

  std::printf("    pareto front (power vs. zero-load latency):\n");
  for (const std::size_t idx : result.pareto) {
    const core::DesignPoint& p = result.points[idx];
    int switches = p.intermediate_switches;
    for (const int k : p.switches_per_island) switches += k;
    std::printf("      %7.2f mW  %5.2f cycles  (%2d switches, %2d links, "
                "%2d fifos%s)\n",
                p.metrics.noc_dynamic_w * 1e3, p.metrics.avg_latency_cycles,
                switches, p.metrics.link_count, p.metrics.fifo_count,
                p.intermediate_switches > 0 ? ", uses NoC VI" : "");
  }

  const std::string csv_name = std::string("d26_space_") + tag + ".csv";
  io::write_file(csv_name, io::design_points_to_csv(result));
  std::printf("    wrote %s\n", csv_name.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  std::vector<int> island_counts = {1, 2, 3, 4, 5, 6, 7,
                                    static_cast<int>(d26.soc.core_count())};
  if (argc > 1) {
    island_counts = {std::atoi(argv[1])};
    if (island_counts[0] < 1 ||
        island_counts[0] > static_cast<int>(d26.soc.core_count())) {
      std::fprintf(stderr, "islands must be in [1, %zu]\n", d26.soc.core_count());
      return 1;
    }
  }

  std::printf("D26 mobile/multimedia SoC: %zu cores, %zu flows\n",
              d26.soc.core_count(), d26.soc.flows.size());
  for (const int k : island_counts) {
    explore(soc::with_logical_islands(d26.soc, k, d26.use_cases),
            ("logical_" + std::to_string(k)).c_str());
    if (k > 1 && k < static_cast<int>(d26.soc.core_count())) {
      explore(soc::with_communication_islands(d26.soc, k, d26.use_cases),
              ("comm_" + std::to_string(k)).c_str());
    }
  }
  return 0;
}

// Shutdown planning on a synthesized VI-aware NoC: for each device use case,
// report which voltage islands can be gated, what the NoC must keep alive,
// and the resulting power picture — the end-to-end story the paper's
// synthesis enables.
#include <cstdio>

#include "vinoc/core/shutdown_safety.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/power/gating.hpp"
#include "vinoc/power/transitions.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

int main() {
  using namespace vinoc;
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec =
      soc::with_logical_islands(d26.soc, 7, d26.use_cases);

  core::SynthesisOptions options;
  const core::SynthesisResult result = core::synthesize(spec, options);
  if (result.points.empty()) {
    std::fprintf(stderr, "no design point found\n");
    return 1;
  }
  const core::DesignPoint& best = result.best_power();

  std::printf("D26 with %zu voltage islands; NoC: %d switches, %d links, "
              "%d bi-sync FIFOs\n\n",
              spec.islands.size(), best.metrics.switch_count,
              best.metrics.link_count, best.metrics.fifo_count);

  // Safety audit first: gating is only legal on a safe topology.
  const auto violations = core::verify_shutdown_safety(best.topology, spec);
  if (!violations.empty()) {
    std::fprintf(stderr, "UNSAFE topology: %s\n", violations.front().c_str());
    return 1;
  }
  std::printf("shutdown-safety audit: PASS\n\n");

  // Per-island summary.
  std::printf("%-12s %-12s %-10s %-14s %-16s\n", "island", "gateable",
              "cores", "NoC clock", "flows blocked if gated");
  for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
    const auto blocked = core::flows_blocked_by_shutdown(
        best.topology, spec, static_cast<soc::IslandId>(isl));
    std::printf("%-12s %-12s %-10zu %6.0f MHz     %zu\n",
                spec.islands[isl].name.c_str(),
                spec.islands[isl].can_shutdown ? "yes" : "no",
                spec.cores_in_island(static_cast<soc::IslandId>(isl)).size(),
                best.topology.island_freq_hz[isl] / 1e6, blocked.size());
  }

  // Per-scenario gating plan.
  const power::ShutdownReport report =
      power::evaluate_shutdown_savings(spec, best.topology, options.tech);
  std::printf("\n%-20s %-8s %-28s %-22s\n", "use case", "time", "islands gated",
              "power (on -> gated)");
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    const soc::Scenario& sc = spec.scenarios[s];
    std::string gated;
    for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
      if (!sc.island_active[isl]) {
        if (!gated.empty()) gated += ",";
        gated += spec.islands[isl].name;
      }
    }
    if (gated.empty()) gated = "(none)";
    const power::ScenarioPower& sp = report.scenarios[s];
    std::printf("%-20s %4.0f%%   %-28s %7.0f -> %6.0f mW\n", sc.name.c_str(),
                sc.time_fraction * 100.0, gated.c_str(),
                sp.power_no_gating_w * 1e3, sp.power_with_gating_w * 1e3);
  }
  std::printf("\naverage power: %.0f mW without gating, %.0f mW with gating "
              "(%.1f%% saved)\n",
              report.avg_power_no_gating_w * 1e3,
              report.avg_power_with_gating_w * 1e3,
              report.saved_fraction * 100.0);

  // Is gating actually worth it once wake-up costs are charged?
  const power::TransitionReport trans =
      power::evaluate_transition_overhead(spec, report);
  std::printf("wake-up overhead: %.2f wakeups/s, %.2f mW transition power, "
              "net saving %.1f%%; break-even dwell %.1f ms\n",
              trans.wakeups_per_s, trans.transition_power_w * 1e3,
              trans.net_saved_fraction * 100.0,
              trans.breakeven_dwell_s * 1e3);
  return 0;
}

// Synthesize a user-provided SoC from the vinoc text format: parse, run the
// VI-aware topology synthesis, report the trade-off, and export the chosen
// design as Graphviz DOT + floorplan SVG + design-space CSV.
//
// Usage: custom_soc_from_file [spec.soc]
//        (defaults to examples/specs/automotive_demo.soc)
#include <cstdio>
#include <string>

#include "vinoc/core/shutdown_safety.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/io/exports.hpp"
#include "vinoc/io/spec_format.hpp"
#include "vinoc/power/gating.hpp"

int main(int argc, char** argv) {
  using namespace vinoc;
  std::string path = argc > 1 ? argv[1] : "examples/specs/automotive_demo.soc";
  if (argc <= 1) {
    // Default spec: works from the repo root and from build/examples.
    for (const char* candidate :
         {"examples/specs/automotive_demo.soc", "specs/automotive_demo.soc",
          "../examples/specs/automotive_demo.soc"}) {
      if (io::parse_soc_spec_file(candidate).ok) {
        path = candidate;
        break;
      }
    }
  }

  const io::ParseResult parsed = io::parse_soc_spec_file(path);
  if (!parsed.ok) {
    std::fprintf(stderr, "failed to parse %s:\n", path.c_str());
    for (const io::ParseError& e : parsed.errors) {
      std::fprintf(stderr, "  line %d: %s\n", e.line, e.message.c_str());
    }
    return 1;
  }
  const soc::SocSpec& spec = parsed.spec;
  std::printf("parsed '%s': %zu cores, %zu islands, %zu flows, %zu scenarios\n",
              spec.name.c_str(), spec.core_count(), spec.island_count(),
              spec.flows.size(), spec.scenarios.size());

  core::SynthesisOptions options;
  const core::SynthesisResult result = core::synthesize(spec, options);
  std::printf("synthesis: %d configs, %zu design points (%.3f s)\n",
              result.stats.configs_explored, result.points.size(),
              result.stats.elapsed_seconds);
  if (result.points.empty()) {
    std::fprintf(stderr, "no feasible design point — check latency budgets\n");
    return 1;
  }

  const core::DesignPoint& best = result.best_power();
  const auto violations = core::verify_shutdown_safety(best.topology, spec);
  std::printf("best point: %.2f mW NoC dynamic, %.2f cycles avg latency, "
              "%d switches, %d links (%d crossings), safety %s\n",
              best.metrics.noc_dynamic_w * 1e3, best.metrics.avg_latency_cycles,
              best.metrics.switch_count, best.metrics.link_count,
              best.metrics.fifo_count, violations.empty() ? "OK" : "VIOLATED");

  if (!spec.scenarios.empty()) {
    const power::ShutdownReport report =
        power::evaluate_shutdown_savings(spec, best.topology, options.tech);
    std::printf("island gating saves %.1f%% of average system power\n",
                report.saved_fraction * 100.0);
  }

  const std::string base = spec.name;
  io::write_file(base + "_topology.dot",
                 io::topology_to_dot(best.topology, spec));
  io::write_file(base + "_floorplan.svg",
                 io::floorplan_to_svg(result.floorplan, spec, &best.topology));
  io::write_file(base + "_space.csv", io::design_points_to_csv(result));
  std::printf("wrote %s_topology.dot, %s_floorplan.svg, %s_space.csv\n",
              base.c_str(), base.c_str(), base.c_str());
  return 0;
}

// bench_check — the CI performance-regression gate.
//
//   bench_check --baseline bench/baseline.json [--tolerance 0.25] out1 [out2 ...]
//   bench_check --baseline bench/baseline.json --noise-report out1 [out2 ...]
//   bench_check --baseline bench/baseline.json --write-baseline OUT [--append-new] out1 [...]
//
// The baseline file is JSON-lines, one metric per line:
//
//   {"metric":"eval_hotpath.candidates_per_s","value":5000,
//    "higher_is_better":true,"tolerance":0.2,"min_reps":5}
//
// `tolerance` (per metric, optional) overrides the command-line default;
// `min_reps` (optional) makes the gate also fail when the producing record's
// `reps` field is absent or below the floor — a near-single-shot number
// cannot defend a tight tolerance. The result files are raw bench stdout:
// every line that parses as a flat JSON object with a string "bench" field
// contributes its numeric fields as metrics named "<bench>.<field>" (later
// lines win; all occurrences feed the noise report). A metric FAILS when it
// moved beyond tolerance in the BAD direction — below value*(1-t) when
// higher is better, above value*(1+t) otherwise. Improvements never fail.
// Missing metrics fail too: a bench that silently stops reporting is a
// regression of the gate itself.
//
// --noise-report gates the MEASUREMENT instead of the value: per metric it
// reports the harness-measured within-record dispersion (median <metric>_mad
// relative to the median) and the cross-run dispersion over repeated bench
// runs, and fails when either exceeds the metric's tolerance budget — a
// tolerance the noise already fills gates nothing.
//
// --write-baseline OUT refreshes the baseline instead of gating: every
// baseline metric's value is replaced by the measured one; direction,
// tolerance and min_reps annotations are kept, '#' comment lines stay
// attached to the metrics they precede, and a provenance header (generating
// commit from $GITHUB_SHA/$VINOC_COMMIT, environment from the records) is
// stamped at the top, replacing any previous one. The CURATED metric set is
// stable: a gate-able metric present in the results but absent from the
// baseline is a HARD FAILURE (baseline drift must not land silently) unless
// --append-new is passed, which appends it with conservative defaults
// (higher_is_better, tolerance 0.9) for the operator to tighten.
// Observability fields — `_mad` companions, raw `*_s` seconds, reps/warmup/
// noisy/cpu provenance — are exempt. Metrics missing from the results keep
// their old value and are reported. OUT may be the baseline file itself.
//
// Exit codes: 0 all within tolerance (or baseline written), 1 regression/
// missing metric/noise over budget/unknown gate-able metric, 2 bad command
// line, 3 unreadable/unparseable baseline.
#include <cstdlib>
#include <sstream>

#include "bench_check_core.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_check --baseline FILE [--tolerance T] "
               "[--noise-report] [--write-baseline OUT [--append-new]] "
               "results...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vinoc::benchgate;
  std::string baseline_path;
  std::string write_path;
  bool append_new = false;
  bool noise_report = false;
  double default_tolerance = 0.25;
  std::vector<std::string> result_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      if (++i >= argc) return usage();
      baseline_path = argv[i];
    } else if (arg == "--write-baseline") {
      if (++i >= argc) return usage();
      write_path = argv[i];
    } else if (arg == "--append-new") {
      append_new = true;
    } else if (arg == "--noise-report") {
      noise_report = true;
    } else if (arg == "--tolerance") {
      if (++i >= argc) return usage();
      if (!parse_number(argv[i], default_tolerance)) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      result_paths.push_back(arg);
    }
  }
  if (baseline_path.empty() || result_paths.empty()) return usage();
  if (noise_report && !write_path.empty()) return usage();

  std::vector<BaselineMetric> baseline;
  std::vector<BaselineComment> comments;
  if (!load_baseline_file(baseline_path, baseline, &comments)) return 3;
  CollectedMetrics current;
  for (const std::string& path : result_paths) {
    collect_metrics_file(path, current);
  }

  if (!write_path.empty()) {
    const char* sha = std::getenv("GITHUB_SHA");
    if (sha == nullptr) sha = std::getenv("VINOC_COMMIT");
    // Render to memory first: a hard failure (unknown gate-able metric)
    // must not truncate an existing baseline handed in as OUT.
    std::ostringstream rendered;
    const int rc = write_baseline(rendered, write_path, comments,
                                  std::move(baseline), current,
                                  sha != nullptr ? sha : "", append_new);
    if (rc != 0) return rc;
    std::ofstream out(write_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench_check: cannot write %s\n", write_path.c_str());
      return 1;
    }
    out << rendered.str();
    return 0;
  }

  const int failures = noise_report
                           ? run_noise_report(baseline, default_tolerance, current)
                           : run_gate(baseline, default_tolerance, current);
  if (failures > 0) {
    std::fprintf(stderr, "bench_check: %d metric(s) %s\n", failures,
                 noise_report ? "noisier than their tolerance budget"
                              : "regressed or missing");
    return 1;
  }
  return 0;
}

// bench_check — the CI performance-regression gate.
//
//   bench_check --baseline bench/baseline.json [--tolerance 0.25] out1 [out2 ...]
//   bench_check --baseline bench/baseline.json --write-baseline OUT out1 [...]
//
// The baseline file is JSON-lines, one metric per line:
//
//   {"metric":"eval_hotpath.candidates_per_s","value":5000,
//    "higher_is_better":true,"tolerance":0.9}
//
// `tolerance` (per metric, optional) overrides the command-line default.
// The result files are raw bench stdout: every line that parses as a flat
// JSON object with a string "bench" field contributes its numeric fields as
// metrics named "<bench>.<field>" (later lines win). A metric FAILS when it
// moved beyond tolerance in the BAD direction — below value*(1-t) when
// higher is better, above value*(1+t) otherwise. Improvements never fail.
// Missing metrics fail too: a bench that silently stops reporting is a
// regression of the gate itself.
//
// --write-baseline OUT refreshes the baseline instead of gating: every
// baseline metric's value is replaced by the measured one; direction and
// per-metric tolerance annotations are kept, and '#' comment lines stay
// attached to the metrics they precede. The CURATED metric set is stable by
// default — bench outputs carry observability fields (wall seconds, shared
// counters) that must not silently become gated metrics; pass --append-new
// to also append metrics found in the results but absent from the baseline
// (conservative defaults: higher_is_better, tolerance 0.9, for the operator
// to tighten). Metrics missing from the results keep their old value and
// are reported. OUT may be the baseline file itself.
//
// Exit codes: 0 all within tolerance (or baseline written), 1 regression/
// missing metric, 2 bad command line, 3 unreadable/unparseable baseline.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "vinoc/io/jsonl.hpp"

namespace {

struct BaselineMetric {
  std::string name;
  double value = 0.0;
  bool higher_is_better = true;
  double tolerance = -1.0;  ///< negative = use the command-line default
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_check --baseline FILE [--tolerance T] "
               "[--write-baseline OUT [--append-new]] results...\n");
  return 2;
}

bool parse_number(const std::string& raw, double& out) {
  char* end = nullptr;
  out = std::strtod(raw.c_str(), &end);
  return end != raw.c_str() && *end == '\0';
}

/// A comment (or blank) line of the baseline file, anchored to the metric
/// it precedes (`before` == index into the metric vector; metrics.size()
/// anchors trailing comments) so --write-baseline can keep each comment
/// block next to the metrics it annotates.
struct BaselineComment {
  std::size_t before = 0;
  std::string text;
};

bool load_baseline(const std::string& path, std::vector<BaselineMetric>& out,
                   std::vector<BaselineComment>* comments = nullptr) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_check: cannot read baseline %s\n", path.c_str());
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') {
      if (comments != nullptr) comments->push_back({out.size(), line});
      continue;
    }
    std::map<std::string, std::string> obj;
    if (!vinoc::io::parse_jsonl_object(line, obj)) {
      std::fprintf(stderr, "bench_check: %s:%d: not a flat JSON object\n",
                   path.c_str(), lineno);
      return false;
    }
    BaselineMetric m;
    const auto name = obj.find("metric");
    const auto value = obj.find("value");
    if (name == obj.end() || value == obj.end() ||
        !parse_number(value->second, m.value)) {
      std::fprintf(stderr, "bench_check: %s:%d: need \"metric\" and numeric \"value\"\n",
                   path.c_str(), lineno);
      return false;
    }
    m.name = name->second;
    const auto dir = obj.find("higher_is_better");
    if (dir != obj.end()) m.higher_is_better = dir->second == "true";
    const auto tol = obj.find("tolerance");
    if (tol != obj.end() && !parse_number(tol->second, m.tolerance)) {
      std::fprintf(stderr, "bench_check: %s:%d: bad tolerance\n", path.c_str(), lineno);
      return false;
    }
    out.push_back(std::move(m));
  }
  return !out.empty();
}

/// Collects "<bench>.<numeric field>" metrics from one bench output file.
void collect_metrics(const std::string& path, std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_check: warning: cannot read %s\n", path.c_str());
    return;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '{') continue;
    std::map<std::string, std::string> obj;
    if (!vinoc::io::parse_jsonl_object(line, obj)) continue;
    const auto bench = obj.find("bench");
    if (bench == obj.end()) continue;
    for (const auto& [key, raw] : obj) {
      if (key == "bench") continue;
      double value = 0.0;
      if (parse_number(raw, value)) out[bench->second + "." + key] = value;
    }
  }
}

/// JSONL spelling of one baseline metric line.
std::string metric_line(const BaselineMetric& m) {
  char buf[256];
  std::string line = "{\"metric\":\"" + m.name + "\"";
  std::snprintf(buf, sizeof buf, ",\"value\":%.6g", m.value);
  line += buf;
  if (!m.higher_is_better) line += ",\"higher_is_better\":false";
  if (m.tolerance >= 0.0) {
    std::snprintf(buf, sizeof buf, ",\"tolerance\":%.6g", m.tolerance);
    line += buf;
  }
  line += "}";
  return line;
}

int write_baseline(const std::string& out_path,
                   const std::vector<BaselineComment>& comments,
                   std::vector<BaselineMetric> baseline,
                   const std::map<std::string, double>& current,
                   bool append_new) {
  std::map<std::string, bool> known;
  int refreshed = 0;
  int kept = 0;
  for (BaselineMetric& m : baseline) {
    known[m.name] = true;
    const auto it = current.find(m.name);
    if (it == current.end()) {
      std::printf("%-40s kept (not in results): %g\n", m.name.c_str(), m.value);
      ++kept;
      continue;
    }
    m.value = it->second;
    ++refreshed;
  }
  // New metrics: only on request (bench outputs mix gate metrics with
  // observability fields), with conservative defaults for hand-tightening.
  for (const auto& [name, value] : current) {
    if (known.count(name) != 0) continue;
    if (!append_new) {
      std::printf("%-40s not in baseline (use --append-new to add): %g\n",
                  name.c_str(), value);
      continue;
    }
    BaselineMetric m;
    m.name = name;
    m.value = value;
    m.higher_is_better = true;
    m.tolerance = 0.9;
    baseline.push_back(m);
    std::printf("%-40s appended (new metric, tolerance 0.9): %g\n", name.c_str(),
                value);
  }
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_check: cannot write %s\n", out_path.c_str());
    return 1;
  }
  // Interleave comments back at their original positions (new metrics sit
  // at the end, after any trailing comments' anchor).
  std::size_t ci = 0;
  for (std::size_t mi = 0; mi <= baseline.size(); ++mi) {
    while (ci < comments.size() && comments[ci].before == mi) {
      out << comments[ci].text << '\n';
      ++ci;
    }
    if (mi < baseline.size()) out << metric_line(baseline[mi]) << '\n';
  }
  std::printf("bench_check: wrote %s (%d refreshed, %d kept, %zu total)\n",
              out_path.c_str(), refreshed, kept, baseline.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string write_path;
  bool append_new = false;
  double default_tolerance = 0.25;
  std::vector<std::string> result_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      if (++i >= argc) return usage();
      baseline_path = argv[i];
    } else if (arg == "--write-baseline") {
      if (++i >= argc) return usage();
      write_path = argv[i];
    } else if (arg == "--append-new") {
      append_new = true;
    } else if (arg == "--tolerance") {
      if (++i >= argc) return usage();
      if (!parse_number(argv[i], default_tolerance)) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      result_paths.push_back(arg);
    }
  }
  if (baseline_path.empty() || result_paths.empty()) return usage();

  std::vector<BaselineMetric> baseline;
  std::vector<BaselineComment> comments;
  if (!load_baseline(baseline_path, baseline, &comments)) return 3;
  std::map<std::string, double> current;
  for (const std::string& path : result_paths) collect_metrics(path, current);

  if (!write_path.empty()) {
    return write_baseline(write_path, comments, std::move(baseline), current,
                          append_new);
  }

  int failures = 0;
  std::printf("%-36s %14s %14s %9s %9s  %s\n", "metric", "baseline", "current",
              "change", "limit", "status");
  for (const BaselineMetric& m : baseline) {
    const double tol = m.tolerance >= 0.0 ? m.tolerance : default_tolerance;
    const auto it = current.find(m.name);
    if (it == current.end()) {
      std::printf("%-36s %14.4g %14s %9s %9s  MISSING\n", m.name.c_str(), m.value,
                  "-", "-", "-");
      ++failures;
      continue;
    }
    const double change = (it->second - m.value) / m.value;
    const bool bad = m.higher_is_better ? it->second < m.value * (1.0 - tol)
                                        : it->second > m.value * (1.0 + tol);
    std::printf("%-36s %14.4g %14.4g %+8.1f%% %8.0f%%  %s\n", m.name.c_str(),
                m.value, it->second, change * 100.0, tol * 100.0,
                bad ? "FAIL" : "ok");
    if (bad) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "bench_check: %d metric(s) regressed or missing\n", failures);
    return 1;
  }
  std::printf("bench_check: all %zu metrics within tolerance\n", baseline.size());
  return 0;
}

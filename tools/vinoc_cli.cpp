// vinoc — command-line front end to the synthesis flow.
//
//   vinoc synth  <spec.soc> [--islands N] [--strategy logical|comm|spec]
//                [--alpha A] [--alpha-power P] [--width BITS]
//                [--no-intermediate] [--threads N] [--progress] [--out PREFIX]
//   vinoc sweep  <spec.soc> [--widths 32,64,...] [--islands N] [--strategy S]
//   vinoc sim    <spec.soc> [--islands N] [--strategy S] [--scale X]
//   vinoc gate   <spec.soc> [--islands N] [--strategy S]
//
// `--strategy spec` (default) keeps the island assignment from the file;
// `logical`/`comm` re-island the cores with the requested island count.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "vinoc/core/deadlock.hpp"
#include "vinoc/core/explore.hpp"
#include "vinoc/core/shutdown_safety.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/io/exports.hpp"
#include "vinoc/io/spec_format.hpp"
#include "vinoc/power/gating.hpp"
#include "vinoc/power/transitions.hpp"
#include "vinoc/sim/simulator.hpp"
#include "vinoc/soc/islanding.hpp"

namespace {

using namespace vinoc;

struct Args {
  std::string command;
  std::string spec_path;
  int islands = 0;  // 0 = keep file islands
  std::string strategy = "spec";
  double alpha = 0.6;
  double alpha_power = 0.7;
  int width = 32;
  std::vector<int> widths = {16, 32, 64, 128};
  bool intermediate = true;
  double scale = 1.0;
  int threads = 0;  // 0 = hardware concurrency (results are thread-count independent)
  bool progress = false;
  std::string out = "vinoc_out";
};

int usage() {
  std::fprintf(stderr,
               "usage: vinoc <synth|sweep|sim|gate> <spec.soc> [options]\n"
               "  --islands N           re-island into N voltage islands\n"
               "  --strategy S          spec | logical | comm (default spec)\n"
               "  --alpha A             Definition-1 weight (default 0.6)\n"
               "  --alpha-power P       router cost weight (default 0.7)\n"
               "  --width BITS          link data width (default 32)\n"
               "  --widths A,B,...      widths for 'sweep'\n"
               "  --no-intermediate     forbid the intermediate NoC VI\n"
               "  --threads N           evaluation threads; 0 = all cores "
               "(default 0, same results for any N)\n"
               "  --progress            print candidate-evaluation progress "
               "to stderr\n"
               "  --scale X             injection scale for 'sim' (default 1)\n"
               "  --out PREFIX          output file prefix (default vinoc_out)\n");
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 3) return false;
  args.command = argv[1];
  args.spec_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--islands") {
      const char* v = next();
      if (v == nullptr) return false;
      args.islands = std::atoi(v);
    } else if (flag == "--strategy") {
      const char* v = next();
      if (v == nullptr) return false;
      args.strategy = v;
    } else if (flag == "--alpha") {
      const char* v = next();
      if (v == nullptr) return false;
      args.alpha = std::atof(v);
    } else if (flag == "--alpha-power") {
      const char* v = next();
      if (v == nullptr) return false;
      args.alpha_power = std::atof(v);
    } else if (flag == "--width") {
      const char* v = next();
      if (v == nullptr) return false;
      args.width = std::atoi(v);
    } else if (flag == "--widths") {
      const char* v = next();
      if (v == nullptr) return false;
      args.widths.clear();
      for (const char* p = v; *p != '\0';) {
        args.widths.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (flag == "--no-intermediate") {
      args.intermediate = false;
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args.threads = std::atoi(v);
    } else if (flag == "--progress") {
      args.progress = true;
    } else if (flag == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      args.scale = std::atof(v);
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

soc::SocSpec load_spec(const Args& args, bool& ok) {
  ok = false;
  const io::ParseResult parsed = io::parse_soc_spec_file(args.spec_path);
  if (!parsed.ok) {
    std::fprintf(stderr, "failed to parse %s:\n", args.spec_path.c_str());
    for (const io::ParseError& e : parsed.errors) {
      std::fprintf(stderr, "  line %d: %s\n", e.line, e.message.c_str());
    }
    return {};
  }
  ok = true;
  if (args.strategy == "spec" || args.islands == 0) return parsed.spec;
  if (args.strategy == "logical") {
    return soc::with_logical_islands(parsed.spec, args.islands);
  }
  if (args.strategy == "comm") {
    return soc::with_communication_islands(parsed.spec, args.islands);
  }
  std::fprintf(stderr, "unknown strategy '%s'\n", args.strategy.c_str());
  ok = false;
  return {};
}

core::SynthesisOptions options_from(const Args& args) {
  core::SynthesisOptions options;
  options.alpha = args.alpha;
  options.alpha_power = args.alpha_power;
  options.link_width_bits = args.width;
  options.allow_intermediate_island = args.intermediate;
  options.threads = args.threads;
  if (args.progress) {
    options.on_progress = [](const core::SynthesisProgress& p) {
      std::fprintf(stderr, "\r  evaluating candidates: %zu/%zu", p.completed,
                   p.total);
      if (p.completed == p.total) std::fprintf(stderr, "\n");
    };
  }
  return options;
}

int cmd_synth(const Args& args, const soc::SocSpec& spec) {
  const core::SynthesisResult result = core::synthesize(spec, options_from(args));
  std::printf("%s: %d configs explored, %zu design points (%.3f s)\n",
              spec.name.c_str(), result.stats.configs_explored,
              result.points.size(), result.stats.elapsed_seconds);
  if (result.points.empty()) {
    std::fprintf(stderr, "no feasible design point\n");
    return 1;
  }
  const core::DesignPoint& best = result.best_power();
  std::printf("best power point: %.2f mW dynamic, %.3f mW leakage, "
              "%.4f mm^2, %.2f cycles avg latency\n",
              best.metrics.noc_dynamic_w * 1e3, best.metrics.noc_leakage_w * 1e3,
              best.metrics.noc_area_mm2, best.metrics.avg_latency_cycles);
  std::printf("shutdown safety: %s; deadlock free: %s\n",
              core::verify_shutdown_safety(best.topology, spec).empty() ? "OK"
                                                                        : "VIOLATED",
              core::is_deadlock_free(best.topology) ? "yes" : "NO");
  io::write_file(args.out + ".dot", io::topology_to_dot(best.topology, spec));
  io::write_file(args.out + ".svg",
                 io::floorplan_to_svg(result.floorplan, spec, &best.topology));
  io::write_file(args.out + ".csv", io::design_points_to_csv(result));
  std::printf("wrote %s.{dot,svg,csv}\n", args.out.c_str());
  return 0;
}

int cmd_sweep(const Args& args, const soc::SocSpec& spec) {
  core::SynthesisOptions options = options_from(args);
  std::size_t evaluated = 0;
  if (args.progress) {
    // Widths run concurrently, so the per-run completed/total pairs
    // interleave; render one monotonic aggregate counter instead (the
    // callback is serialised across the whole sweep, see explore.hpp).
    options.on_progress = [&evaluated](const core::SynthesisProgress& p) {
      ++evaluated;
      std::fprintf(stderr, "\r  evaluated %zu candidates (width %d: %zu/%zu)",
                   evaluated, p.link_width_bits, p.completed, p.total);
    };
  }
  const core::WidthSweepResult sweep =
      core::explore_link_widths(spec, args.widths, options);
  if (args.progress) std::fprintf(stderr, "\n");
  std::printf("%-8s %-10s %-18s %-18s\n", "width", "points", "best power [mW]",
              "best latency [cy]");
  for (const core::WidthSweepEntry& e : sweep.entries) {
    if (!e.feasible) {
      std::printf("%-8d infeasible (NI link exceeds capacity)\n", e.width_bits);
      continue;
    }
    if (e.result.points.empty()) {
      std::printf("%-8d 0\n", e.width_bits);
      continue;
    }
    std::printf("%-8d %-10zu %-18.2f %-18.2f\n", e.width_bits,
                e.result.points.size(),
                e.result.best_power().metrics.noc_dynamic_w * 1e3,
                e.result.best_latency().metrics.avg_latency_cycles);
  }
  std::printf("global pareto (power asc):\n");
  for (const core::GlobalPointRef& ref : sweep.pareto) {
    const core::Metrics& m = sweep.point(ref).metrics;
    std::printf("  %3d-bit  %8.2f mW  %6.2f cycles\n", sweep.width_of(ref),
                m.noc_dynamic_w * 1e3, m.avg_latency_cycles);
  }
  return 0;
}

int cmd_sim(const Args& args, const soc::SocSpec& spec) {
  const core::SynthesisOptions options = options_from(args);
  const core::SynthesisResult result = core::synthesize(spec, options);
  if (result.points.empty()) {
    std::fprintf(stderr, "no feasible design point\n");
    return 1;
  }
  sim::SimOptions sopts;
  sopts.injection_scale = args.scale;
  const sim::SimReport report =
      sim::simulate(result.best_power().topology, spec, options.tech, sopts);
  std::printf("injection x%.2f: %lld packets, avg latency %.2f cycles, "
              "max link util %.2f, %s\n",
              args.scale, static_cast<long long>(report.packets_delivered),
              report.avg_latency_cycles, report.max_link_utilization,
              report.saturated ? "SATURATED" : "stable");
  return 0;
}

int cmd_gate(const Args& args, const soc::SocSpec& spec) {
  if (spec.scenarios.empty()) {
    std::fprintf(stderr, "spec has no scenarios; add 'scenario' lines\n");
    return 1;
  }
  const core::SynthesisOptions options = options_from(args);
  const core::SynthesisResult result = core::synthesize(spec, options);
  if (result.points.empty()) {
    std::fprintf(stderr, "no feasible design point\n");
    return 1;
  }
  const power::ShutdownReport report = power::evaluate_shutdown_savings(
      spec, result.best_power().topology, options.tech);
  for (const power::ScenarioPower& s : report.scenarios) {
    std::printf("%-24s %4.0f%%: %8.1f -> %8.1f mW\n", s.name.c_str(),
                s.time_fraction * 100.0, s.power_no_gating_w * 1e3,
                s.power_with_gating_w * 1e3);
  }
  const power::TransitionReport trans =
      power::evaluate_transition_overhead(spec, report);
  std::printf("gating saves %.1f%% (%.1f%% net of wake-up costs; "
              "break-even dwell %.2f ms)\n",
              report.saved_fraction * 100.0, trans.net_saved_fraction * 100.0,
              trans.breakeven_dwell_s * 1e3);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  bool ok = false;
  const soc::SocSpec spec = load_spec(args, ok);
  if (!ok) return 1;
  {
    const auto problems = spec.validate();
    if (!problems.empty()) {
      std::fprintf(stderr, "invalid spec: %s\n", problems.front().c_str());
      return 1;
    }
  }
  try {
    if (args.command == "synth") return cmd_synth(args, spec);
    if (args.command == "sweep") return cmd_sweep(args, spec);
    if (args.command == "sim") return cmd_sim(args, spec);
    if (args.command == "gate") return cmd_gate(args, spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

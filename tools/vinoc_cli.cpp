// vinoc — command-line front end to the synthesis flow.
//
//   vinoc synth     <spec.soc>      one synthesis run, exports dot/svg/csv
//   vinoc sweep     <spec.soc>      link-width sweep + global Pareto front
//   vinoc sim       <spec.soc>      traffic-simulate the best-power design
//   vinoc gate      <spec.soc>      shutdown/transition accounting
//   vinoc campaign  <file.campaign> batched multi-scenario synthesis
//                                   (--shards N = multi-process supervisor)
//   vinoc campaign-worker <file>    one shard of a sharded campaign
//                                   (spawned by the supervisor, not by hand)
//   vinoc store     verify|merge    inspect / merge a campaign store family
//
// `--strategy spec` (default) keeps the island assignment from the file;
// `logical`/`comm` re-island the cores with the requested island count.
// Run `vinoc` with no arguments for the full flag list and exit codes.
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "vinoc/campaign/campaign_spec.hpp"
#include "vinoc/campaign/engine.hpp"
#include "vinoc/campaign/report.hpp"
#include "vinoc/campaign/result_cache.hpp"
#include "vinoc/campaign/shard.hpp"
#include "vinoc/campaign/shard_merge.hpp"
#include "vinoc/campaign/shard_supervisor.hpp"
#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/deadlock.hpp"
#include "vinoc/core/explore.hpp"
#include "vinoc/core/shutdown_safety.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/exec/cancel.hpp"
#include "vinoc/faultinject/faultinject.hpp"
#include "vinoc/io/exports.hpp"
#include "vinoc/io/jsonl.hpp"
#include "vinoc/io/obs_writers.hpp"
#include "vinoc/io/shard_wire.hpp"
#include "vinoc/io/spec_format.hpp"
#include "vinoc/obs/profile.hpp"
#include "vinoc/obs/registry.hpp"
#include "vinoc/obs/trace.hpp"
#include "vinoc/power/gating.hpp"
#include "vinoc/power/transitions.hpp"
#include "vinoc/sim/simulator.hpp"
#include "vinoc/soc/islanding.hpp"

namespace {

using namespace vinoc;

// Exit codes, documented in usage(): scripts driving the CLI can tell a
// mistyped flag from a broken input file from an unsatisfiable request.
enum ExitCode {
  kExitOk = 0,
  kExitRuntime = 1,      // unexpected error while running
  kExitUsage = 2,        // bad command line
  kExitParse = 3,        // input file does not parse
  kExitSpec = 4,         // input parses but is semantically invalid
  kExitInfeasible = 5,   // valid input, but no feasible design exists
  kExitPartial = 6,      // campaign completed with quarantined/skipped jobs
                         // or a degraded store — partial results on disk
  kExitInterrupted = 7,  // stopped by SIGINT/SIGTERM; finished work flushed
};

/// The process-wide interrupt token. The signal handler only flips its
/// atomic flag (async-signal-safe); every synthesis/campaign poll observes
/// it, abandons in-flight work at the next candidate boundary and lets the
/// command exit through the normal checkpoint-and-flush path. A second
/// signal falls back to the default handler (hard kill).
vinoc::exec::CancelToken g_interrupt;

void handle_interrupt(int sig) {
  g_interrupt.cancel();
  std::signal(sig, SIG_DFL);
}

struct Args {
  std::string command;
  std::string spec_path;
  int islands = 0;  // 0 = keep file islands
  std::string strategy = "spec";
  double alpha = 0.6;
  double alpha_power = 0.7;
  int width = 32;
  std::vector<int> widths = {16, 32, 64, 128};
  bool intermediate = true;
  bool prune = true;
  double scale = 1.0;
  int threads = 0;  // 0 = hardware concurrency (results are thread-count independent)
  bool progress = false;
  bool json = false;
  bool resume = false;
  bool no_timing = false;
  std::string cache_dir;
  double job_timeout_s = 0.0;     // --job-timeout; 0 = none
  int retries = 2;                // --retries
  double retry_backoff_ms = 100;  // --retry-backoff
  double deadline_s = 0.0;        // --deadline; 0 = none
  std::uint64_t store_max_bytes = 0;  // --store-max-bytes; 0 = unlimited
  int shards = 1;                 // --shards; >1 = multi-process supervisor
  int shard = -1;                 // --shard; campaign-worker's shard id
  int max_respawns = 2;           // --max-respawns (per worker slot)
  int crash_retries = 1;          // --crash-retries (per job)
  std::string self_exe;           // argv[0], for spawning campaign-workers
  std::string out = "vinoc_out";
  std::string trace_path;    // --trace: Chrome trace_event JSON export
  std::string metrics_path;  // --metrics-out: registry + phase_profile JSONL
};

/// Registry records contributed by the command (campaign summary, sweep
/// stats, ...) for the --metrics-out export written after the command
/// returns; the phase_profile record is appended last. Purely diagnostic:
/// never part of result fingerprints or the job record stream.
std::vector<std::string> g_metric_lines;

int usage() {
  std::fprintf(
      stderr,
      "usage: vinoc <command> <input> [options]\n"
      "\n"
      "commands:\n"
      "  synth <spec.soc>        run Algorithm 1 once; export .dot/.svg/.csv\n"
      "  sweep <spec.soc>        explore link widths; global Pareto front\n"
      "  sim <spec.soc>          simulate traffic on the best-power design\n"
      "  gate <spec.soc>         shutdown-savings + wake-up accounting\n"
      "  campaign <file>         batched multi-scenario synthesis (job matrix\n"
      "                          x cache x streaming JSONL report)\n"
      "  store <verify|merge> <cache-dir>\n"
      "                          verify: validate store/ledger checksums and\n"
      "                          duplicate keys; merge: union shard stores\n"
      "                          (store-<k>.jsonl) into the canonical store\n"
      "\n"
      "options (synth/sweep/sim/gate):\n"
      "  --islands N             re-island into N voltage islands\n"
      "  --strategy S            spec | logical | comm (default spec)\n"
      "  --alpha A               Definition-1 weight (default 0.6)\n"
      "  --alpha-power P         router cost weight (default 0.7)\n"
      "  --width BITS            link data width for 'synth' (default 32)\n"
      "  --widths A,B,...        widths for 'sweep' (default 16,32,64,128)\n"
      "  --no-intermediate       forbid the intermediate NoC VI\n"
      "  --no-prune              keep every routed design point (disable the\n"
      "                          Pareto-bound pruning of dominated candidates)\n"
      "  --scale X               injection scale for 'sim' (default 1)\n"
      "options (campaign):\n"
      "  --cache-dir DIR         content-hash store; re-runs skip cached jobs\n"
      "  --resume                serve jobs already in the store as cache hits\n"
      "  --no-timing             omit wall_ms from records (byte-exact diffs)\n"
      "  --job-timeout SEC       per-job wall-clock timeout; a job past it is\n"
      "                          quarantined with status \"timeout\" (0 = none)\n"
      "  --retries N             retry attempts for transient job failures\n"
      "                          before quarantine (default 2)\n"
      "  --retry-backoff MS      base backoff between retries, exponential\n"
      "                          with seeded jitter (default 100)\n"
      "  --deadline SEC          whole-campaign budget; remaining jobs are\n"
      "                          emitted with status \"skipped\" (0 = none)\n"
      "  --store-max-bytes N     cap store.jsonl, evicting oldest records\n"
      "                          (0 = unlimited)\n"
      "  --shards N              run the matrix across N supervised worker\n"
      "                          processes (requires --cache-dir); crashed or\n"
      "                          stalled workers are respawned, their shard\n"
      "                          stores merged back into store.jsonl\n"
      "  --max-respawns N        respawns per worker slot before its leftover\n"
      "                          jobs are reassigned (default 2)\n"
      "  --crash-retries N       times a job may be in flight during a worker\n"
      "                          crash before it is quarantined as the cause\n"
      "                          (default 1)\n"
      "options (all commands):\n"
      "  --threads N             parallelism; 0 = all cores (default 0,\n"
      "                          bit-identical results for any N)\n"
      "  --json                  machine-readable JSONL records on stdout\n"
      "  --progress              progress to stderr\n"
      "  --out PREFIX            output file prefix (default vinoc_out)\n"
      "  --trace FILE            record scoped spans and write a Chrome\n"
      "                          trace_event JSON (chrome://tracing, Perfetto;\n"
      "                          results stay bit-identical to untraced runs)\n"
      "  --metrics-out FILE      write the run's merged metric registries and\n"
      "                          a phase_profile record as JSONL\n"
      "\n"
      "exit codes:\n"
      "  0 success    1 runtime error      2 bad command line\n"
      "  3 input does not parse            4 input semantically invalid\n"
      "  5 no feasible design (width infeasible or zero design points)\n"
      "  6 campaign completed with partial results (quarantined or skipped\n"
      "    jobs, or the store degraded) — see failed.jsonl and resume_summary\n"
      "  7 interrupted (SIGINT/SIGTERM or deadline in synth/sweep); finished\n"
      "    work was checkpointed and flushed\n");
  return kExitUsage;
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 3) return false;
  args.self_exe = argv[0];
  args.command = argv[1];
  args.spec_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--islands") {
      const char* v = next();
      if (v == nullptr) return false;
      args.islands = std::atoi(v);
    } else if (flag == "--strategy") {
      const char* v = next();
      if (v == nullptr) return false;
      args.strategy = v;
    } else if (flag == "--alpha") {
      const char* v = next();
      if (v == nullptr) return false;
      args.alpha = std::atof(v);
    } else if (flag == "--alpha-power") {
      const char* v = next();
      if (v == nullptr) return false;
      args.alpha_power = std::atof(v);
    } else if (flag == "--width") {
      const char* v = next();
      if (v == nullptr) return false;
      args.width = std::atoi(v);
    } else if (flag == "--widths") {
      const char* v = next();
      if (v == nullptr) return false;
      args.widths.clear();
      for (const char* p = v; *p != '\0';) {
        args.widths.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (flag == "--no-intermediate") {
      args.intermediate = false;
    } else if (flag == "--no-prune") {
      args.prune = false;
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args.threads = std::atoi(v);
    } else if (flag == "--progress") {
      args.progress = true;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--resume") {
      args.resume = true;
    } else if (flag == "--no-timing") {
      args.no_timing = true;
    } else if (flag == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      args.cache_dir = v;
    } else if (flag == "--job-timeout") {
      const char* v = next();
      if (v == nullptr) return false;
      args.job_timeout_s = std::atof(v);
    } else if (flag == "--retries") {
      const char* v = next();
      if (v == nullptr) return false;
      args.retries = std::atoi(v);
    } else if (flag == "--retry-backoff") {
      const char* v = next();
      if (v == nullptr) return false;
      args.retry_backoff_ms = std::atof(v);
    } else if (flag == "--deadline") {
      const char* v = next();
      if (v == nullptr) return false;
      args.deadline_s = std::atof(v);
    } else if (flag == "--store-max-bytes") {
      const char* v = next();
      if (v == nullptr) return false;
      args.store_max_bytes = std::strtoull(v, nullptr, 10);
    } else if (flag == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      args.shards = std::atoi(v);
    } else if (flag == "--shard") {
      const char* v = next();
      if (v == nullptr) return false;
      args.shard = std::atoi(v);
    } else if (flag == "--max-respawns") {
      const char* v = next();
      if (v == nullptr) return false;
      args.max_respawns = std::atoi(v);
    } else if (flag == "--crash-retries") {
      const char* v = next();
      if (v == nullptr) return false;
      args.crash_retries = std::atoi(v);
    } else if (args.command == "store" && flag.rfind("--", 0) != 0 &&
               args.cache_dir.empty()) {
      // `vinoc store <verify|merge> <cache-dir>` — the dir rides as the one
      // positional (also reachable as --cache-dir for symmetry).
      args.cache_dir = flag;
    } else if (flag == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      args.scale = std::atof(v);
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      args.trace_path = v;
    } else if (flag == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.metrics_path = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

soc::SocSpec load_spec(const Args& args, int& error_code) {
  error_code = kExitOk;
  const io::ParseResult parsed = io::parse_soc_spec_file(args.spec_path);
  if (!parsed.ok) {
    std::fprintf(stderr, "failed to parse %s:\n", args.spec_path.c_str());
    for (const io::ParseError& e : parsed.errors) {
      std::fprintf(stderr, "  line %d: %s\n", e.line, e.message.c_str());
    }
    error_code = kExitParse;
    return {};
  }
  if (args.strategy != "spec" && args.strategy != "logical" &&
      args.strategy != "comm") {
    std::fprintf(stderr, "unknown strategy '%s'\n", args.strategy.c_str());
    error_code = kExitUsage;
    return {};
  }
  if (args.strategy == "spec" || args.islands == 0) return parsed.spec;
  if (args.strategy == "logical") {
    return soc::with_logical_islands(parsed.spec, args.islands);
  }
  return soc::with_communication_islands(parsed.spec, args.islands);
}

core::SynthesisOptions options_from(const Args& args) {
  core::SynthesisOptions options;
  options.alpha = args.alpha;
  options.alpha_power = args.alpha_power;
  options.link_width_bits = args.width;
  options.allow_intermediate_island = args.intermediate;
  options.prune = args.prune;
  options.threads = args.threads;
  options.cancel = &g_interrupt;
  if (args.progress) {
    options.on_progress = [](const core::SynthesisProgress& p) {
      std::fprintf(stderr, "\r  evaluating candidates: %zu/%zu", p.completed,
                   p.total);
      if (p.completed == p.total) std::fprintf(stderr, "\n");
    };
  }
  return options;
}

/// One-off CampaignJob wrapper so synth/sweep --json reuse the campaign
/// record writer instead of inventing a second format.
campaign::JobRecord record_for(const Args& args, const soc::SocSpec& spec,
                               const core::SynthesisOptions& options,
                               const core::SynthesisResult* result) {
  campaign::CampaignJob job;
  job.scenario = spec.name;
  job.strategy = args.strategy;
  job.islands = static_cast<int>(spec.islands.size());
  job.width = options.link_width_bits;
  job.name = spec.name + "/" + args.strategy + "/i" +
             std::to_string(job.islands) + "/w" + std::to_string(job.width);
  job.options = options;
  job.options.threads = 1;
  job.options.on_progress = nullptr;
  job.options.cancel = nullptr;
  job.key = campaign::job_key(spec, job.options);
  return campaign::summarize(args.command, job, result);
}

void print_json_record(const campaign::JobRecord& record, bool include_timing) {
  std::printf("%s\n", campaign::record_to_jsonl(record, include_timing).c_str());
}

int cmd_synth(const Args& args, const soc::SocSpec& spec) {
  core::SynthesisResult result;
  try {
    result = core::synthesize(spec, options_from(args));
  } catch (const core::InfeasibleWidthError& e) {
    if (args.json) {
      print_json_record(record_for(args, spec, options_from(args), nullptr),
                        !args.no_timing);
    }
    std::fprintf(stderr, "infeasible width: %s\n", e.what());
    return kExitInfeasible;
  }
  if (args.json) {
    print_json_record(record_for(args, spec, options_from(args), &result),
                      !args.no_timing);
  } else {
    std::printf("%s: %d configs explored, %zu design points (%.3f s)\n",
                spec.name.c_str(), result.stats.configs_explored,
                result.points.size(), result.stats.elapsed_seconds);
  }
  if (result.points.empty()) {
    std::fprintf(stderr, "no feasible design point\n");
    return kExitInfeasible;
  }
  const core::DesignPoint& best = result.best_power();
  if (!args.json) {
    std::printf("best power point: %.2f mW dynamic, %.3f mW leakage, "
                "%.4f mm^2, %.2f cycles avg latency\n",
                best.metrics.noc_dynamic_w * 1e3,
                best.metrics.noc_leakage_w * 1e3, best.metrics.noc_area_mm2,
                best.metrics.avg_latency_cycles);
    std::printf("shutdown safety: %s; deadlock free: %s\n",
                core::verify_shutdown_safety(best.topology, spec).empty()
                    ? "OK"
                    : "VIOLATED",
                core::is_deadlock_free(best.topology) ? "yes" : "NO");
  }
  io::write_file(args.out + ".dot", io::topology_to_dot(best.topology, spec));
  io::write_file(args.out + ".svg",
                 io::floorplan_to_svg(result.floorplan, spec, &best.topology));
  io::write_file(args.out + ".csv", io::design_points_to_csv(result));
  if (!args.json) std::printf("wrote %s.{dot,svg,csv}\n", args.out.c_str());
  return kExitOk;
}

int cmd_sweep(const Args& args, const soc::SocSpec& spec) {
  core::SynthesisOptions options = options_from(args);
  if (args.progress) {
    // The sweep reports SWEEP-GLOBAL totals: completed rises monotonically
    // over every (candidate, width) evaluation of the whole set and
    // link_width_bits names the width that just finished (the callback is
    // serialised across the whole sweep; see explore.hpp).
    options.on_progress = [](const core::SynthesisProgress& p) {
      std::fprintf(stderr, "\r  evaluated %zu/%zu candidate-width pairs (w%d)",
                   p.completed, p.total, p.link_width_bits);
    };
  }
  core::WidthSetStats sweep_stats;
  const core::WidthSweepResult sweep =
      core::explore_link_widths(spec, args.widths, options, &sweep_stats);
  if (args.progress) std::fprintf(stderr, "\n");
  // The ONE serialization of the sweep telemetry: the --json record, the
  // sharing:/delta: console lines and the --metrics-out export all read
  // from this registry (counters first, shared_rate/delta_reuse_rate as
  // trailing gauges — see WidthSetStats::to_registry).
  const obs::Registry sweep_reg = sweep_stats.to_registry();
  const auto counter = [&sweep_reg](const char* name) {
    return static_cast<long long>(sweep_reg.value(name));
  };
  g_metric_lines.push_back(io::registry_record("width_sweep_stats", sweep_reg));
  if (args.json) {
    // One campaign-format record per width (infeasible widths included with
    // feasible=false), machine-readable counterpart of the table below,
    // then one sweep-level telemetry record: how much of the width sweep
    // was served from shared structures (certificates / cohorts — see
    // core::WidthSetStats).
    for (const core::WidthSweepEntry& e : sweep.entries) {
      core::SynthesisOptions wopt = options;
      wopt.link_width_bits = e.width_bits;
      print_json_record(
          record_for(args, spec, wopt, e.feasible ? &e.result : nullptr),
          !args.no_timing);
    }
    std::printf("%s\n",
                io::registry_record("width_sweep_stats", sweep_reg).c_str());
    return kExitOk;
  }
  std::printf("%-8s %-10s %-18s %-18s\n", "width", "points", "best power [mW]",
              "best latency [cy]");
  for (const core::WidthSweepEntry& e : sweep.entries) {
    if (!e.feasible) {
      std::printf("%-8d infeasible (NI link exceeds capacity)\n", e.width_bits);
      continue;
    }
    if (e.result.points.empty()) {
      std::printf("%-8d 0\n", e.width_bits);
      continue;
    }
    std::printf("%-8d %-10zu %-18.2f %-18.2f\n", e.width_bits,
                e.result.points.size(),
                e.result.best_power().metrics.noc_dynamic_w * 1e3,
                e.result.best_latency().metrics.avg_latency_cycles);
  }
  std::printf("global pareto (power asc):\n");
  for (const core::GlobalPointRef& ref : sweep.pareto) {
    const core::Metrics& m = sweep.point(ref).metrics;
    std::printf("  %3d-bit  %8.2f mW  %6.2f cycles\n", sweep.width_of(ref),
                m.noc_dynamic_w * 1e3, m.avg_latency_cycles);
  }
  // Every counter of the --json width_sweep_stats record, same names and
  // values — both surfaces read the same registry.
  std::printf(
      "sharing: %lld width classes, %lld shared (%lld certified), %lld cohort "
      "in %lld groups, %lld solo fallback (%.0f%% shared rate, %lld "
      "certificate accepts, peak %lld buffered outcomes)\n",
      counter("width_classes"), counter("shared_evals"),
      counter("certified_evals"), counter("cohort_evals"),
      counter("cohort_groups"),
      counter("fallback_evals") - counter("cohort_evals"),
      sweep_reg.gauge("shared_rate") * 100.0, counter("certificate_accepts"),
      counter("peak_buffered_outcomes"));
  std::printf(
      "delta: %lld candidates replayed, %lld flows reused + %lld certified, "
      "%lld rerouted (%.0f%% reuse rate, %lld certificate rejects)\n",
      counter("delta_candidates"), counter("delta_flows_reused"),
      counter("delta_flows_certified"), counter("delta_flows_rerouted"),
      sweep_reg.gauge("delta_reuse_rate") * 100.0,
      counter("delta_cert_rejects"));
  return kExitOk;
}

int cmd_sim(const Args& args, const soc::SocSpec& spec) {
  const core::SynthesisOptions options = options_from(args);
  const core::SynthesisResult result = core::synthesize(spec, options);
  if (result.points.empty()) {
    std::fprintf(stderr, "no feasible design point\n");
    return kExitInfeasible;
  }
  sim::SimOptions sopts;
  sopts.injection_scale = args.scale;
  const sim::SimReport report =
      sim::simulate(result.best_power().topology, spec, options.tech, sopts);
  std::printf("injection x%.2f: %lld packets, avg latency %.2f cycles, "
              "max link util %.2f, %s\n",
              args.scale, static_cast<long long>(report.packets_delivered),
              report.avg_latency_cycles, report.max_link_utilization,
              report.saturated ? "SATURATED" : "stable");
  return kExitOk;
}

int cmd_gate(const Args& args, const soc::SocSpec& spec) {
  if (spec.scenarios.empty()) {
    std::fprintf(stderr, "spec has no scenarios; add 'scenario' lines\n");
    return kExitSpec;
  }
  const core::SynthesisOptions options = options_from(args);
  const core::SynthesisResult result = core::synthesize(spec, options);
  if (result.points.empty()) {
    std::fprintf(stderr, "no feasible design point\n");
    return kExitInfeasible;
  }
  const power::ShutdownReport report = power::evaluate_shutdown_savings(
      spec, result.best_power().topology, options.tech);
  for (const power::ScenarioPower& s : report.scenarios) {
    std::printf("%-24s %4.0f%%: %8.1f -> %8.1f mW\n", s.name.c_str(),
                s.time_fraction * 100.0, s.power_no_gating_w * 1e3,
                s.power_with_gating_w * 1e3);
  }
  const power::TransitionReport trans =
      power::evaluate_transition_overhead(spec, report);
  std::printf("gating saves %.1f%% (%.1f%% net of wake-up costs; "
              "break-even dwell %.2f ms)\n",
              report.saved_fraction * 100.0, trans.net_saved_fraction * 100.0,
              trans.breakeven_dwell_s * 1e3);
  return kExitOk;
}

// --- campaign-worker: one shard of a sharded campaign -----------------------

/// One status line, one write(2): under PIPE_BUF the write is atomic, so a
/// worker killed mid-stream tears at line granularity — the supervisor sees
/// whole lines or nothing, never interleaved fragments.
void emit_status_line(const io::ShardEvent& event) {
  using faultinject::Site;
  if (faultinject::armed() &&
      faultinject::should_fire(Site::kHeartbeatDrop)) {
    return;  // injected heartbeat loss — the shard store still has the truth
  }
  const std::string line = io::encode_shard_event(event) + "\n";
  const ssize_t n = ::write(STDOUT_FILENO, line.data(), line.size());
  (void)n;  // a closed pipe means the supervisor is gone; nothing to report to
}

/// `vinoc campaign-worker <file.campaign> --cache-dir D --shard K` — spawned
/// by the supervisor, not meant for direct use. Reads its assignment from
/// <cache>/shards/<k>.manifest, appends to its private store-<k>.jsonl /
/// failed-<k>.jsonl, and streams checksummed status lines on stdout. The
/// engine always runs with resume=true against the shard store, so a
/// RESPAWNED worker re-serves its predecessor's finished jobs as cache hits
/// and recomputes only what was never recorded.
int cmd_campaign_worker(const Args& args) {
  if (args.cache_dir.empty() || args.shard < 0) {
    std::fprintf(stderr,
                 "campaign-worker needs --cache-dir and --shard (it is "
                 "spawned by `vinoc campaign --shards N`)\n");
    return kExitUsage;
  }
  const campaign::CampaignParseResult parsed =
      campaign::parse_campaign_spec_file(args.spec_path);
  if (!parsed.ok) {
    std::fprintf(stderr, "failed to parse %s\n", args.spec_path.c_str());
    return kExitParse;
  }
  const std::optional<std::vector<std::uint64_t>> manifest =
      io::read_shard_manifest(
          campaign::shard_manifest_path(args.cache_dir, args.shard));
  if (!manifest.has_value()) {
    // A torn manifest must not silently shrink the shard's assignment.
    std::fprintf(stderr, "shard %d: manifest missing or corrupt\n", args.shard);
    return kExitSpec;
  }

  campaign::ResultCache cache(args.cache_dir,
                              campaign::shard_store_file(args.shard));
  if (args.resume) {
    // Canonical-store records serve as hits but live in the memory tier
    // only — this shard's store never absorbs another run's records.
    cache.load_side_store(args.cache_dir + "/store.jsonl");
  }

  campaign::CampaignOptions copt;
  copt.threads = args.threads;
  copt.cache = &cache;
  copt.resume = true;
  copt.include_timing = !args.no_timing;
  copt.job_timeout_s = args.job_timeout_s;
  copt.max_retries = args.retries;
  copt.retry_backoff_ms = args.retry_backoff_ms;
  copt.deadline_s = args.deadline_s;
  copt.cancel = &g_interrupt;
  copt.job_keys = &manifest.value();
  copt.failed_file = campaign::shard_failed_file(args.shard);
  copt.on_job_start = [](const campaign::CampaignJob& job) {
    io::ShardEvent ev;
    ev.type = io::ShardEventType::kStart;
    ev.key = job.key;
    // The heartbeat goes out BEFORE the crash/stall sites so the supervisor
    // can attribute what follows to this job.
    emit_status_line(ev);
    using faultinject::Site;
    if (faultinject::armed()) {
      if (faultinject::should_fire(Site::kShardCrash)) {
        ::kill(::getpid(), SIGKILL);  // simulated hard crash (OOM, segfault)
      }
      faultinject::maybe_stall(Site::kShardStall);
    }
  };
  copt.on_record = [&args](const campaign::JobRecord& rec) {
    io::ShardEvent ev;
    ev.type = io::ShardEventType::kDone;
    ev.key = rec.key;
    ev.payload = campaign::record_to_jsonl(rec, !args.no_timing);
    emit_status_line(ev);
  };

  campaign::CampaignResult result;
  try {
    result = campaign::run_campaign(parsed.spec, copt);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "invalid campaign: %s\n", e.what());
    return kExitSpec;
  }
  io::ShardEvent summary;
  summary.type = io::ShardEventType::kSummary;
  summary.payload = io::registry_record("", result.metrics);
  emit_status_line(summary);
  if (result.interrupted()) return kExitInterrupted;
  if (result.quarantined_jobs() > 0 || result.skipped_jobs() > 0 ||
      result.store_write_errors() > 0) {
    return kExitPartial;
  }
  // An empty assignment (every job already in the store) is a healthy no-op.
  return kExitOk;
}

// --- store: inspect / merge a campaign store family --------------------------

int cmd_store(const Args& args) {
  const std::string& verb = args.spec_path;
  if (args.cache_dir.empty()) {
    std::fprintf(stderr, "store %s: missing <cache-dir>\n", verb.c_str());
    return kExitUsage;
  }
  if (verb == "verify") {
    const campaign::VerifyStats stats = campaign::verify_stores(args.cache_dir);
    std::printf("%s\n", stats.summary().c_str());
    return stats.clean() ? kExitOk : kExitPartial;
  }
  if (verb == "merge") {
    const campaign::MergeStats stats =
        campaign::merge_shard_stores(args.cache_dir, nullptr);
    if (!stats.ok) {
      std::fprintf(stderr, "store merge failed: %s\n", stats.error.c_str());
      return kExitRuntime;
    }
    std::printf("store merge: %zu shard stores -> %zu records "
                "(%zu duplicates, %zu conflicts, %zu quarantined)\n",
                stats.shard_files, stats.merged_records, stats.duplicates,
                stats.conflicts, stats.quarantined);
    return (stats.conflicts > 0 || stats.quarantined > 0) ? kExitPartial
                                                          : kExitOk;
  }
  std::fprintf(stderr, "unknown store verb '%s' (verify|merge)\n",
               verb.c_str());
  return kExitUsage;
}

// --- campaign (single-process engine or sharded supervisor) ------------------

/// The binary to exec as campaign-worker: this very image. /proc/self/exe
/// survives PATH games and cwd changes; argv[0] is the fallback elsewhere.
std::string self_exe_path(const std::string& fallback) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return fallback;
}

int cmd_campaign(const Args& args) {
  if (args.resume && args.cache_dir.empty()) {
    // Without a store there is nothing to resume from; erroring beats
    // silently recomputing the whole matrix.
    std::fprintf(stderr, "--resume requires --cache-dir\n");
    return kExitUsage;
  }
  if (args.shards > 1 && args.cache_dir.empty()) {
    std::fprintf(stderr,
                 "--shards requires --cache-dir (shard manifests and stores "
                 "live there)\n");
    return kExitUsage;
  }
  const campaign::CampaignParseResult parsed =
      campaign::parse_campaign_spec_file(args.spec_path);
  if (!parsed.ok) {
    std::fprintf(stderr, "failed to parse %s:\n", args.spec_path.c_str());
    for (const campaign::CampaignParseError& e : parsed.errors) {
      std::fprintf(stderr, "  line %d: %s\n", e.line, e.message.c_str());
    }
    return kExitParse;
  }

  campaign::CampaignOptions copt;
  copt.threads = args.threads;
  copt.cache_dir = args.cache_dir;
  copt.resume = args.resume;
  copt.include_timing = !args.no_timing;
  copt.job_timeout_s = args.job_timeout_s;
  copt.max_retries = args.retries;
  copt.retry_backoff_ms = args.retry_backoff_ms;
  copt.deadline_s = args.deadline_s;
  copt.store_max_bytes = args.store_max_bytes;
  copt.cancel = &g_interrupt;

  const std::string jsonl_path = args.out + ".jsonl";
  std::FILE* stream = std::fopen(jsonl_path.c_str(), "w");
  if (stream == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", jsonl_path.c_str());
    return kExitRuntime;
  }
  copt.stream = stream;
  int emitted = 0;
  copt.on_record = [&args, &emitted](const campaign::JobRecord& rec) {
    ++emitted;
    if (args.json) {
      std::printf("%s\n",
                  campaign::record_to_jsonl(rec, !args.no_timing).c_str());
    }
    if (args.progress) {
      std::fprintf(stderr, "[%4d] %-40s %s%s\n", emitted, rec.job.c_str(),
                   rec.feasible ? "ok" : "infeasible",
                   rec.cache_hit ? " (cached)" : "");
    }
  };

  const bool sharded = args.shards > 1;
  campaign::CampaignResult result;
  campaign::MergeStats merge;
  try {
    if (sharded) {
      campaign::ShardCampaignOptions sopt;
      sopt.base = copt;
      sopt.shards = args.shards;
      sopt.worker_exe = self_exe_path(args.self_exe);
      sopt.spec_path = args.spec_path;
      // Split a --threads budget across the workers; 0 lets each worker
      // size itself (N x hardware concurrency — fine for chaos tests, rude
      // for shared machines, exactly like -j without an argument).
      sopt.worker_threads =
          args.threads > 0 ? std::max(1, args.threads / args.shards) : 0;
      sopt.max_respawns = args.max_respawns;
      sopt.crash_retries = args.crash_retries;
      campaign::ShardCampaignResult sres =
          campaign::run_sharded_campaign(parsed.spec, sopt);
      result = std::move(sres.campaign);
      merge = sres.merge;
    } else {
      result = campaign::run_campaign(parsed.spec, copt);
    }
  } catch (const std::invalid_argument& e) {
    std::fclose(stream);
    std::fprintf(stderr, "invalid campaign: %s\n", e.what());
    return kExitSpec;
  } catch (...) {
    std::fclose(stream);
    throw;
  }
  std::fclose(stream);
  io::write_file(args.out + ".csv", campaign::records_to_csv(result.records));

  std::fprintf(stderr,
               "%s: %d jobs (%d raw, %d filtered, %d deduped) — %d run "
               "(%d width-shared in %d groups), %d cache hits, %d infeasible, "
               "%.2f s\n",
               parsed.spec.name.c_str(), result.jobs_total(),
               result.expand.raw, result.expand.filtered, result.expand.deduped,
               result.jobs_run(), result.structure_shared_jobs(),
               result.structure_groups(), result.cache_hits(),
               result.infeasible(), result.wall_s);
  std::fprintf(
      stderr,
      "sharing: %d shared (%d certified), %d cohort in %d groups, "
      "%d solo fallback (%d certificate accepts, peak %d buffered "
      "outcomes); delta: %d candidates, %lld reused + %lld "
      "certified, %lld rerouted (%.0f%% reuse rate)\n",
      result.width_shared_evals(), result.width_certified_evals(),
      result.width_cohort_evals(), result.cohort_groups(),
      result.width_fallback_evals() - result.width_cohort_evals(),
      result.certificate_accepts(), result.peak_buffered_outcomes(),
      result.delta_candidates(), result.delta_flows_reused(),
      result.delta_flows_certified(), result.delta_flows_rerouted(),
      result.delta_reuse_rate() * 100.0);
  // Machine-readable run summary: scripts (and CI's resume assertion) parse
  // this line instead of the human-formatted one above. The serialization
  // is CampaignResult::metrics verbatim — the engine registers its counters
  // in the canonical order and test_campaign locks the prefix in, so there
  // is no field list here to drift.
  std::fprintf(stderr, "resume_summary %s\n",
               io::registry_record("", result.metrics).c_str());
  g_metric_lines.push_back(
      io::registry_record("campaign_summary", result.metrics));
  if (obs::profiling_enabled()) {
    std::fprintf(stderr, "%s\n",
                 io::phase_profile_record(obs::phase_totals()).c_str());
  }
  std::fprintf(stderr, "wrote %s.{jsonl,csv}\n", args.out.c_str());
  if (result.jobs_total() == 0) {
    std::fprintf(stderr, "campaign matrix expanded to zero jobs\n");
    return kExitSpec;
  }
  // Degradation report + exit code: the campaign always completes with one
  // record per job, but anything short of a full healthy run is surfaced
  // both as a stderr line and a distinct exit code so scripts can branch.
  if (result.retries() > 0 || result.quarantined_jobs() > 0 ||
      result.skipped_jobs() > 0 || result.recovered_records() > 0 ||
      result.evicted_records() > 0 || result.store_write_errors() > 0) {
    std::fprintf(stderr,
                 "robustness: %d retries, %d quarantined (%d timeouts), "
                 "%d skipped, %d store records recovered, %d evicted, "
                 "%d store write errors%s\n",
                 result.retries(), result.quarantined_jobs(),
                 result.job_timeouts(), result.skipped_jobs(),
                 result.recovered_records(), result.evicted_records(),
                 result.store_write_errors(),
                 result.interrupted() ? " — interrupted" : "");
  }
  if (sharded) {
    const auto sv = [&result](const char* name) {
      return static_cast<long long>(result.metrics.value(name));
    };
    std::fprintf(
        stderr,
        "shards: %lld planned, %lld workers spawned, %lld crashes, "
        "%lld respawns, %lld reassigned, %lld fallback, %lld heartbeat "
        "drops; merge: %zu shard stores -> %zu records (%zu duplicates, "
        "%zu conflicts, %zu quarantined)%s%s\n",
        sv("shards"), sv("workers_spawned"), sv("worker_crashes"),
        sv("worker_respawns"), sv("reassigned_jobs"), sv("fallback_jobs"),
        sv("heartbeat_drops"), merge.shard_files, merge.merged_records,
        merge.duplicates, merge.conflicts, merge.quarantined,
        merge.ok ? "" : " — MERGE FAILED: ",
        merge.ok ? "" : merge.error.c_str());
  }
  if (result.interrupted()) {
    std::fprintf(stderr,
                 "interrupted: finished work flushed; rerun with --resume\n");
    return kExitInterrupted;
  }
  if (result.quarantined_jobs() > 0 || result.skipped_jobs() > 0 ||
      result.store_write_errors() > 0 ||
      (sharded &&
       (!merge.ok || merge.conflicts > 0 || merge.quarantined > 0))) {
    return kExitPartial;
  }
  return kExitOk;
}

int run_command(const Args& args) {
  try {
    if (args.command == "campaign") return cmd_campaign(args);
    if (args.command == "campaign-worker") return cmd_campaign_worker(args);
    if (args.command == "store") return cmd_store(args);
    if (args.command != "synth" && args.command != "sweep" &&
        args.command != "sim" && args.command != "gate") {
      return usage();
    }
    int error_code = kExitOk;
    const soc::SocSpec spec = load_spec(args, error_code);
    if (error_code != kExitOk) return error_code;
    {
      const auto problems = spec.validate();
      if (!problems.empty()) {
        std::fprintf(stderr, "invalid spec: %s\n", problems.front().c_str());
        return kExitSpec;
      }
    }
    if (args.command == "synth") return cmd_synth(args, spec);
    if (args.command == "sweep") return cmd_sweep(args, spec);
    if (args.command == "sim") return cmd_sim(args, spec);
    return cmd_gate(args, spec);
  } catch (const core::InfeasibleWidthError& e) {
    std::fprintf(stderr, "infeasible width: %s\n", e.what());
    return kExitInfeasible;
  } catch (const exec::CancelledError&) {
    // synth/sweep/sim/gate interrupted mid-synthesis (the campaign engine
    // absorbs cancellation itself and exits through cmd_campaign).
    std::fprintf(stderr, "interrupted\n");
    return kExitInterrupted;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitRuntime;
  }
}

/// Writes the --trace / --metrics-out exports after the command returned
/// (worker sinks were flushed when the command's pools joined; the main
/// thread's live sink is snapshotted directly). An export that cannot be
/// written turns a successful exit into kExitRuntime — CI relies on the
/// artifacts existing — but never masks a command failure.
int export_observability(const Args& args, int code) {
  if (!args.metrics_path.empty()) {
    std::string text;
    for (const std::string& line : g_metric_lines) {
      text += line;
      text += '\n';
    }
    text += io::phase_profile_record(obs::phase_totals());
    text += '\n';
    try {
      // Atomic (temp + rename): a crash mid-export never leaves CI with a
      // half-written metrics file.
      io::write_file(args.metrics_path, text);
    } catch (const std::exception&) {
      std::fprintf(stderr, "cannot write %s\n", args.metrics_path.c_str());
      if (code == kExitOk) code = kExitRuntime;
    }
  }
  if (!args.trace_path.empty()) {
    if (!io::write_chrome_trace_file(args.trace_path,
                                     obs::collect_trace_events())) {
      std::fprintf(stderr, "cannot write %s\n", args.trace_path.c_str());
      if (code == kExitOk) code = kExitRuntime;
    }
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  // Graceful shutdown: first SIGINT/SIGTERM flips the cancel token and the
  // run exits through checkpoint-and-flush; a second signal kills outright.
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
  // Deterministic fault injection (VINOC_FAULT / VINOC_FAULT_SEED /
  // VINOC_FAULT_STALL_MS) for chaos testing; off unless the env asks.
  try {
    vinoc::faultinject::configure_from_env();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "bad VINOC_FAULT: %s\n", e.what());
    return kExitUsage;
  }
  // Arm observability BEFORE any pool exists so worker threads register
  // their trace sinks; tracing/profiling never feed content hashes or
  // result fingerprints, so armed runs stay bit-identical to bare ones.
  if (!args.trace_path.empty()) {
    obs::set_tracing_enabled(true);
    obs::set_thread_trace_name("main");
  }
  if (!args.trace_path.empty() || !args.metrics_path.empty()) {
    obs::set_profiling_enabled(true);
  }
  return export_observability(args, run_command(args));
}

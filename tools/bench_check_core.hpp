// Core logic of tools/bench_check, factored out of the binary so
// tests/test_bench_stats.cpp can unit-test the gate without spawning a
// subprocess: baseline parsing, bench-record collection, the regression
// gate (tolerance + min-rep enforcement), the noise report and the
// baseline writer. The binary (bench_check.cpp) is a thin argv wrapper.
//
// Record shape (produced by bench/fat_runner.hpp adopters): every gated
// metric `<field>` in a `{"bench":...}` JSONL line carries a companion
// `<field>_mad` dispersion field, and the record carries `reps`,
// `warmup_runs`, `noisy`, `cpu_freq_start_khz`/`cpu_freq_end_khz` and
// `timer_res_ns` provenance. Those companions are OBSERVABILITY fields:
// never gated, never treated as baseline drift (see observability_field).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "vinoc/io/jsonl.hpp"

namespace vinoc::benchgate {

struct BaselineMetric {
  std::string name;
  double value = 0.0;
  bool higher_is_better = true;
  double tolerance = -1.0;  ///< negative = use the command-line default
  int min_reps = 0;         ///< 0 = no rep-count enforcement
};

/// A comment (or blank) line of the baseline file, anchored to the metric
/// it precedes (`before` == index into the metric vector; metrics.size()
/// anchors trailing comments) so the baseline writer can keep each
/// comment block next to the metrics it annotates.
struct BaselineComment {
  std::size_t before = 0;
  std::string text;
};

/// Everything collected from the bench result files.
struct CollectedMetrics {
  std::map<std::string, double> latest;  ///< last value wins (the gate input)
  std::map<std::string, std::vector<double>> samples;  ///< every occurrence (noise report)
  std::map<std::string, std::string> strings;  ///< provenance strings, unprefixed (cpu_model, ...)
};

inline bool parse_number(const std::string& raw, double& out) {
  char* end = nullptr;
  out = std::strtod(raw.c_str(), &end);
  return end != raw.c_str() && *end == '\0';
}

/// True for record fields that are measurement observability, not gate
/// candidates: the `_mad` dispersion companions, raw wall-clock seconds
/// (`*_s` but not rates spelled `*_per_s`), and the fixed provenance /
/// workload-shape set every FatRunner record carries. These never count
/// as "unknown metrics" when refreshing a baseline — everything else that
/// is numeric and absent from the baseline is treated as baseline drift.
inline bool observability_field(std::string_view metric) {
  const std::size_t dot = metric.rfind('.');
  const std::string_view field =
      dot == std::string_view::npos ? metric : metric.substr(dot + 1);
  const auto ends_with = [&](std::string_view suffix) {
    return field.size() >= suffix.size() &&
           field.substr(field.size() - suffix.size()) == suffix;
  };
  if (ends_with("_mad")) return true;
  if (ends_with("_s") && !ends_with("_per_s")) return true;
  static constexpr std::string_view kProvenance[] = {
      "quick",        "reps",    "warmup_runs",
      "batch",        "noisy",   "cpu_cores",
      "cpu_freq_start_khz", "cpu_freq_end_khz", "timer_res_ns",
      "threads",      "jobs",    "cores",
      "islands",      "flows",   "hardware_concurrency",
  };
  for (const std::string_view p : kProvenance) {
    if (field == p) return true;
  }
  return false;
}

/// Parses a JSONL baseline from `in` (`label` names it in diagnostics).
/// Recognised per-metric keys: metric, value, higher_is_better,
/// tolerance, min_reps. Returns false (with a diagnostic on stderr) on
/// malformed lines or an empty metric set.
inline bool load_baseline(std::istream& in, const std::string& label,
                          std::vector<BaselineMetric>& out,
                          std::vector<BaselineComment>* comments = nullptr) {
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') {
      if (comments != nullptr) comments->push_back({out.size(), line});
      continue;
    }
    std::map<std::string, std::string> obj;
    if (!vinoc::io::parse_jsonl_object(line, obj)) {
      std::fprintf(stderr, "bench_check: %s:%d: not a flat JSON object\n",
                   label.c_str(), lineno);
      return false;
    }
    BaselineMetric m;
    const auto name = obj.find("metric");
    const auto value = obj.find("value");
    if (name == obj.end() || value == obj.end() ||
        !parse_number(value->second, m.value)) {
      std::fprintf(stderr,
                   "bench_check: %s:%d: need \"metric\" and numeric \"value\"\n",
                   label.c_str(), lineno);
      return false;
    }
    m.name = name->second;
    const auto dir = obj.find("higher_is_better");
    if (dir != obj.end()) m.higher_is_better = dir->second == "true";
    const auto tol = obj.find("tolerance");
    if (tol != obj.end() && !parse_number(tol->second, m.tolerance)) {
      std::fprintf(stderr, "bench_check: %s:%d: bad tolerance\n", label.c_str(),
                   lineno);
      return false;
    }
    const auto reps = obj.find("min_reps");
    if (reps != obj.end()) {
      double v = 0.0;
      if (!parse_number(reps->second, v) || v < 0.0) {
        std::fprintf(stderr, "bench_check: %s:%d: bad min_reps\n", label.c_str(),
                     lineno);
        return false;
      }
      m.min_reps = static_cast<int>(v);
    }
    out.push_back(std::move(m));
  }
  if (out.empty()) {
    std::fprintf(stderr, "bench_check: %s: no metrics\n", label.c_str());
    return false;
  }
  return true;
}

inline bool load_baseline_file(const std::string& path,
                               std::vector<BaselineMetric>& out,
                               std::vector<BaselineComment>* comments = nullptr) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_check: cannot read baseline %s\n", path.c_str());
    return false;
  }
  return load_baseline(in, path, out, comments);
}

/// Collects "<bench>.<field>" metrics from one bench output stream: every
/// line that parses as a flat JSON object with a string "bench" field
/// contributes its numeric fields (latest + full sample list) and its
/// string fields (unprefixed provenance, e.g. cpu_model — later lines
/// win).
inline void collect_metrics(std::istream& in, CollectedMetrics& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '{') continue;
    std::map<std::string, std::string> obj;
    if (!vinoc::io::parse_jsonl_object(line, obj)) continue;
    const auto bench = obj.find("bench");
    if (bench == obj.end()) continue;
    for (const auto& [key, raw] : obj) {
      if (key == "bench") continue;
      double value = 0.0;
      if (parse_number(raw, value)) {
        const std::string name = bench->second + "." + key;
        out.latest[name] = value;
        out.samples[name].push_back(value);
      } else if (raw != "true" && raw != "false") {
        out.strings[key] = raw;
      }
    }
  }
}

inline void collect_metrics_file(const std::string& path,
                                 CollectedMetrics& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_check: warning: cannot read %s\n", path.c_str());
    return;
  }
  collect_metrics(in, out);
}

/// JSONL spelling of one baseline metric line.
inline std::string metric_line(const BaselineMetric& m) {
  char buf[256];
  std::string line = "{\"metric\":\"" + m.name + "\"";
  std::snprintf(buf, sizeof buf, ",\"value\":%.6g", m.value);
  line += buf;
  if (!m.higher_is_better) line += ",\"higher_is_better\":false";
  if (m.tolerance >= 0.0) {
    std::snprintf(buf, sizeof buf, ",\"tolerance\":%.6g", m.tolerance);
    line += buf;
  }
  if (m.min_reps > 0) {
    std::snprintf(buf, sizeof buf, ",\"min_reps\":%d", m.min_reps);
    line += buf;
  }
  line += "}";
  return line;
}

/// The regression gate. A metric FAILS when it moved beyond tolerance in
/// the BAD direction — below value*(1-t) when higher is better, above
/// value*(1+t) otherwise; improvements never fail. Missing metrics fail
/// (a bench that silently stops reporting is a regression of the gate
/// itself), and a metric with `min_reps` fails when its record's `reps`
/// field is absent or below the floor — a near-single-shot number cannot
/// defend a tight tolerance. Returns the failure count.
inline int run_gate(const std::vector<BaselineMetric>& baseline,
                    double default_tolerance, const CollectedMetrics& current) {
  int failures = 0;
  std::printf("%-36s %14s %14s %9s %9s  %s\n", "metric", "baseline", "current",
              "change", "limit", "status");
  for (const BaselineMetric& m : baseline) {
    const double tol = m.tolerance >= 0.0 ? m.tolerance : default_tolerance;
    const auto it = current.latest.find(m.name);
    if (it == current.latest.end()) {
      std::printf("%-36s %14.4g %14s %9s %9s  MISSING\n", m.name.c_str(),
                  m.value, "-", "-", "-");
      ++failures;
      continue;
    }
    const char* status = "ok";
    const double change =
        m.value != 0.0 ? (it->second - m.value) / m.value : 0.0;
    const bool bad = m.higher_is_better ? it->second < m.value * (1.0 - tol)
                                        : it->second > m.value * (1.0 + tol);
    if (bad) status = "FAIL";
    if (m.min_reps > 0) {
      const std::size_t dot = m.name.rfind('.');
      const std::string reps_key =
          (dot == std::string::npos ? m.name : m.name.substr(0, dot)) + ".reps";
      const auto reps = current.latest.find(reps_key);
      if (reps == current.latest.end()) {
        status = "FAIL(no-reps)";
      } else if (reps->second < static_cast<double>(m.min_reps)) {
        status = "FAIL(reps)";
      }
    }
    std::printf("%-36s %14.4g %14.4g %+8.1f%% %8.0f%%  %s\n", m.name.c_str(),
                m.value, it->second, change * 100.0, tol * 100.0, status);
    if (std::string_view(status) != "ok") ++failures;
  }
  if (failures == 0) {
    std::printf("bench_check: all %zu metrics within tolerance\n",
                baseline.size());
  }
  return failures;
}

namespace detail {
inline double median_of_samples(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}
}  // namespace detail

/// The noise report (bench-noise CI job): for every gated metric,
/// measures how noisy its measurement actually is — `within` is the
/// per-record dispersion the harness reported (median `<metric>_mad`
/// over records, relative to the metric median) and `cross` the
/// dispersion OF the metric across repeated bench runs (MAD/median over
/// all collected samples; needs >= 3 runs). A metric FAILS when the worst
/// of the two exceeds its tolerance budget (the gate cannot hold a
/// tolerance the measurement noise already fills), WARNs above half the
/// budget, and FAILS as no-data when neither dispersion source exists.
/// Returns the failure count.
inline int run_noise_report(const std::vector<BaselineMetric>& baseline,
                            double default_tolerance,
                            const CollectedMetrics& current) {
  int failures = 0;
  std::printf("%-36s %14s %9s %9s %9s  %s\n", "metric", "median", "within",
              "cross", "budget", "status");
  for (const BaselineMetric& m : baseline) {
    const double tol = m.tolerance >= 0.0 ? m.tolerance : default_tolerance;
    const auto vals = current.samples.find(m.name);
    if (vals == current.samples.end() || vals->second.empty()) {
      std::printf("%-36s %14s %9s %9s %8.0f%%  MISSING\n", m.name.c_str(), "-",
                  "-", "-", tol * 100.0);
      ++failures;
      continue;
    }
    const double median = detail::median_of_samples(vals->second);
    // Relative dispersion; a zero median with zero spread is perfectly
    // quiet (deterministic counters at 0), any spread around 0 is not.
    const auto rel = [&](double spread) {
      if (median != 0.0) return spread / std::abs(median);
      return spread == 0.0 ? 0.0 : 1e9;
    };
    double within = -1.0;
    const auto mads = current.samples.find(m.name + "_mad");
    if (mads != current.samples.end() && !mads->second.empty()) {
      within = rel(detail::median_of_samples(mads->second));
    }
    double cross = -1.0;
    if (vals->second.size() >= 3) {
      std::vector<double> dev;
      dev.reserve(vals->second.size());
      for (const double v : vals->second) dev.push_back(std::abs(v - median));
      cross = rel(detail::median_of_samples(dev));
    }
    const double worst = std::max(within, cross);
    const char* status = "ok";
    if (worst < 0.0) {
      status = "FAIL(no-data)";
    } else if (worst > tol) {
      status = "FAIL";
    } else if (worst > 0.5 * tol) {
      status = "WARN";
    }
    const auto pct = [](double v) {
      char buf[16];
      if (v < 0.0) return std::string("-");
      std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
      return std::string(buf);
    };
    std::printf("%-36s %14.4g %9s %9s %8.0f%%  %s\n", m.name.c_str(), median,
                pct(within).c_str(), pct(cross).c_str(), tol * 100.0, status);
    if (status == std::string_view("FAIL") ||
        status == std::string_view("FAIL(no-data)")) {
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("bench_check: noise within budget for all %zu metrics\n",
                baseline.size());
  }
  return failures;
}

/// Refreshes the baseline: every baseline metric's value is replaced by
/// the measured one; direction / tolerance / min_reps annotations are
/// kept, '#' comment lines stay attached to the metrics they precede,
/// and a provenance header (generating commit from `commit`, environment
/// from the records' string fields) replaces any previous one. The
/// curated metric set is stable: a gate-able metric present in the
/// results but absent from the baseline is a HARD FAILURE unless
/// `append_new` is set (baseline drift must not land silently);
/// observability fields (see observability_field) are exempt. With
/// `append_new`, unknown gate-able metrics are appended with conservative
/// defaults (higher_is_better, tolerance 0.9) for the operator to
/// tighten. Returns 0 on success, 1 on unknown metrics / unwritable
/// output.
inline int write_baseline(std::ostream& out, const std::string& out_label,
                          const std::vector<BaselineComment>& comments,
                          std::vector<BaselineMetric> baseline,
                          const CollectedMetrics& current,
                          const std::string& commit, bool append_new) {
  std::map<std::string, bool> known;
  int refreshed = 0;
  int kept = 0;
  for (BaselineMetric& m : baseline) {
    known[m.name] = true;
    const auto it = current.latest.find(m.name);
    if (it == current.latest.end()) {
      std::printf("%-40s kept (not in results): %g\n", m.name.c_str(), m.value);
      ++kept;
      continue;
    }
    m.value = it->second;
    ++refreshed;
  }
  std::vector<std::string> unknown;
  for (const auto& [name, value] : current.latest) {
    if (known.count(name) != 0 || observability_field(name)) continue;
    if (!append_new) {
      unknown.push_back(name);
      continue;
    }
    BaselineMetric m;
    m.name = name;
    m.value = value;
    m.higher_is_better = true;
    m.tolerance = 0.9;
    baseline.push_back(m);
    std::printf("%-40s appended (new metric, tolerance 0.9): %g\n",
                name.c_str(), value);
  }
  if (!unknown.empty()) {
    std::fprintf(stderr,
                 "bench_check: %zu gate-able metric(s) not in the baseline "
                 "(add them, or pass --append-new to take conservative "
                 "defaults):\n",
                 unknown.size());
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "  %s = %g\n", name.c_str(),
                   current.latest.at(name));
    }
    return 1;
  }

  // Provenance header: who and where. Previous stamps are dropped from
  // the carried-over comments so refreshes do not accumulate headers.
  out << "# refreshed-by: commit " << (commit.empty() ? "unknown" : commit)
      << "\n";
  const auto stamp = [&](const char* key) {
    const auto it = current.strings.find(key);
    return it != current.strings.end() ? it->second : std::string("unknown");
  };
  out << "# refreshed-env: " << stamp("cpu_model") << " | governor "
      << stamp("cpu_governor") << " | " << stamp("compiler") << " | "
      << stamp("build_type") << "\n";
  std::size_t ci = 0;
  for (std::size_t mi = 0; mi <= baseline.size(); ++mi) {
    while (ci < comments.size() && comments[ci].before == mi) {
      const std::string& text = comments[ci].text;
      if (text.rfind("# refreshed-by:", 0) != 0 &&
          text.rfind("# refreshed-env:", 0) != 0) {
        out << text << '\n';
      }
      ++ci;
    }
    if (mi < baseline.size()) out << metric_line(baseline[mi]) << '\n';
  }
  std::printf("bench_check: wrote %s (%d refreshed, %d kept, %zu total)\n",
              out_label.c_str(), refreshed, kept, baseline.size());
  return 0;
}

}  // namespace vinoc::benchgate

// trace_check — validates Chrome trace_event JSON emitted by `--trace`.
//
//   trace_check trace1.json [trace2.json ...]
//
// Accepts iff every file is a well-formed trace in the writer's format:
// "X" events with non-negative ts/dur, per-tid monotone start timestamps,
// and properly nested spans (no partial overlap within a lane). CI runs it
// on the traced smoke campaign; a failure means the tracing pipeline
// produced a timeline no viewer could be trusted to render.
//
// The actual checks live in io/obs_writers.cpp (validate_chrome_trace) so
// the writer, the validator and the obs tests share one format definition.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "vinoc/io/obs_writers.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_check <trace.json> [more.json ...]\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "trace_check: cannot open %s\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (vinoc::io::validate_chrome_trace(buf.str(), error)) {
      std::printf("trace_check: %s OK (%zu bytes)\n", argv[i],
                  buf.str().size());
    } else {
      std::fprintf(stderr, "trace_check: %s FAILED: %s\n", argv[i],
                   error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// Unit tests for the graph substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "vinoc/graph/algorithms.hpp"
#include "vinoc/graph/digraph.hpp"

namespace vinoc::graph {
namespace {

Digraph make_diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 with asymmetric weights.
  Digraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(2, 3, 5.0);
  return g;
}

TEST(Digraph, AddNodesAndEdges) {
  Digraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  EXPECT_EQ(g.node_count(), 2u);
  const EdgeId e = g.add_edge(a, b, 2.5, 7);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).src, a);
  EXPECT_EQ(g.edge(e).dst, b);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 2.5);
  EXPECT_EQ(g.edge(e).user, 7);
}

TEST(Digraph, DegreesCountDirections) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 0);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.degree(0), 3u);
}

TEST(Digraph, FindEdgeAndHasEdge) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_NE(g.find_edge(0, 1), kInvalidEdge);
  EXPECT_EQ(g.find_edge(1, 0), kInvalidEdge);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(2, 1));
}

TEST(Digraph, ParallelEdgesAllowedAndCoalesced) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.edge_count(), 2u);
  const Digraph c = g.coalesce();
  EXPECT_EQ(c.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(c.edges()[0].weight, 3.0);
}

TEST(Digraph, UndirectedViewMergesBothDirections) {
  Digraph g(2);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 0, 2.5);
  const Digraph u = g.undirected_view();
  EXPECT_EQ(u.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(u.edges()[0].weight, 4.0);
  EXPECT_LE(u.edges()[0].src, u.edges()[0].dst);
}

TEST(Digraph, NodeNamesRoundTrip) {
  Digraph g;
  g.add_node("cpu");
  g.add_node("mem");
  EXPECT_EQ(g.find_node("mem"), 1);
  EXPECT_EQ(g.find_node("nope"), kInvalidNode);
  g.set_node_name(0, "cpu0");
  EXPECT_EQ(g.node_name(0), "cpu0");
}

TEST(Digraph, OutOfRangeThrows) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
  EXPECT_THROW((void)g.out_edges(7), std::out_of_range);
}

TEST(Digraph, TotalAndCutWeight) {
  const Digraph g = make_diamond();
  EXPECT_DOUBLE_EQ(g.total_weight(), 12.0);
  const std::vector<int> blocks = {0, 0, 1, 1};
  // Cut edges: 0->2 (5) and 1->3 (1).
  EXPECT_DOUBLE_EQ(g.cut_weight(blocks), 6.0);
}

TEST(Digraph, CutWeightSizeMismatchThrows) {
  const Digraph g = make_diamond();
  const std::vector<int> bad = {0, 1};
  EXPECT_THROW((void)g.cut_weight(bad), std::invalid_argument);
}

TEST(Digraph, InducedSubgraph) {
  const Digraph g = make_diamond();
  const std::vector<bool> keep = {true, true, false, true};
  std::vector<NodeId> map;
  const Digraph sub = g.induced_subgraph(keep, &map);
  EXPECT_EQ(sub.node_count(), 3u);
  EXPECT_EQ(sub.edge_count(), 2u);  // 0->1 and 1->3 survive
  EXPECT_EQ(map[2], kInvalidNode);
  EXPECT_EQ(map[3], 2);
}

TEST(Digraph, FilterEdges) {
  const Digraph g = make_diamond();
  const Digraph heavy = g.filter_edges([](const Edge& e) { return e.weight > 2.0; });
  EXPECT_EQ(heavy.node_count(), 4u);
  EXPECT_EQ(heavy.edge_count(), 2u);
}

TEST(Dijkstra, PicksCheapestPath) {
  const Digraph g = make_diamond();
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[3], 2.0);  // via node 1
  const auto nodes = sp.path_nodes(g, 3);
  const std::vector<NodeId> expected = {0, 1, 3};
  EXPECT_EQ(nodes, expected);
}

TEST(Dijkstra, PathEdgesEmptyAtSourceAndUnreachable) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_TRUE(sp.path_edges(g, 0).empty());
  EXPECT_FALSE(sp.reached(2));
  EXPECT_TRUE(sp.path_edges(g, 2).empty());
  const auto at_source = sp.path_nodes(g, 0);
  const std::vector<NodeId> just_source = {0};
  EXPECT_EQ(at_source, just_source);
}

TEST(Dijkstra, CostOverrideCanForbidEdges) {
  const Digraph g = make_diamond();
  // Forbid 0->1, forcing the expensive route.
  const ShortestPaths sp = dijkstra(g, 0, [](const Edge& e) {
    return (e.src == 0 && e.dst == 1) ? -1.0 : e.weight;
  });
  EXPECT_DOUBLE_EQ(sp.dist[3], 10.0);
}

TEST(Dijkstra, NodeFilterRestrictsRelaxation) {
  const Digraph g = make_diamond();
  const ShortestPaths sp =
      dijkstra(g, 0, {}, [](NodeId n) { return n != 1; });
  EXPECT_DOUBLE_EQ(sp.dist[3], 10.0);
  EXPECT_FALSE(sp.reached(1));
}

TEST(Dijkstra, NegativeWeightWithoutOverrideThrows) {
  Digraph g(2);
  g.add_edge(0, 1, -1.0);
  EXPECT_THROW((void)dijkstra(g, 0), std::invalid_argument);
}

TEST(Bfs, VisitsInBreadthOrder) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  const auto order = bfs_order(g, 0);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 0);
  // 1 and 2 before 3 and 4.
  EXPECT_LT(std::find(order.begin(), order.end(), 1) - order.begin(), 3);
  EXPECT_LT(std::find(order.begin(), order.end(), 2) - order.begin(), 3);
}

TEST(Components, WeaklyConnected) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 1);  // direction should not matter
  g.add_edge(3, 4);
  const Components c = weakly_connected_components(g);
  EXPECT_EQ(c.count, 2);
  EXPECT_EQ(c.comp_of[0], c.comp_of[2]);
  EXPECT_NE(c.comp_of[0], c.comp_of[3]);
  EXPECT_FALSE(is_weakly_connected(g));
}

TEST(Components, StronglyConnectedTarjan) {
  Digraph g(6);
  // SCC {0,1,2}, SCC {3,4}, SCC {5}.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 3);
  g.add_edge(4, 5);
  const Components c = strongly_connected_components(g);
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.comp_of[0], c.comp_of[1]);
  EXPECT_EQ(c.comp_of[0], c.comp_of[2]);
  EXPECT_EQ(c.comp_of[3], c.comp_of[4]);
  EXPECT_NE(c.comp_of[0], c.comp_of[3]);
  EXPECT_NE(c.comp_of[3], c.comp_of[5]);
}

TEST(Topological, OrderOnDagAndCycleDetection) {
  Digraph dag(4);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  dag.add_edge(0, 3);
  const auto order = topological_order(dag);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order->size(); ++i) {
    pos[static_cast<std::size_t>((*order)[i])] = i;
  }
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[2]);

  Digraph cyc(2);
  cyc.add_edge(0, 1);
  cyc.add_edge(1, 0);
  EXPECT_FALSE(topological_order(cyc).has_value());
}

TEST(StoerWagner, FindsObviousMinCut) {
  // Two triangles joined by one light edge.
  Digraph g(6);
  for (const auto& [a, b] : {std::pair{0, 1}, {1, 2}, {2, 0}}) g.add_edge(a, b, 10.0);
  for (const auto& [a, b] : {std::pair{3, 4}, {4, 5}, {5, 3}}) g.add_edge(a, b, 10.0);
  g.add_edge(2, 3, 1.0);
  const GlobalMinCut cut = stoer_wagner_min_cut(g);
  EXPECT_DOUBLE_EQ(cut.weight, 1.0);
  // The side must separate the triangles.
  EXPECT_EQ(cut.side[0], cut.side[1]);
  EXPECT_EQ(cut.side[1], cut.side[2]);
  EXPECT_EQ(cut.side[3], cut.side[4]);
  EXPECT_NE(cut.side[0], cut.side[3]);
}

TEST(StoerWagner, RejectsBadInputs) {
  Digraph tiny(1);
  EXPECT_THROW((void)stoer_wagner_min_cut(tiny), std::invalid_argument);
  Digraph neg(2);
  neg.add_edge(0, 1, -2.0);
  EXPECT_THROW((void)stoer_wagner_min_cut(neg), std::invalid_argument);
}

TEST(UnionFind, MergesAndCounts) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_EQ(uf.set_count(), 2u);
  EXPECT_EQ(uf.find(1), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(4));
}

// Property: on random graphs, Dijkstra distances satisfy the triangle
// inequality over every edge (the relaxation fixed point).
class DijkstraPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DijkstraPropertyTest, RelaxationFixedPoint) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> wdist(0.1, 10.0);
  Digraph g(20);
  std::uniform_int_distribution<int> ndist(0, 19);
  for (int e = 0; e < 60; ++e) {
    const int a = ndist(rng);
    int b = ndist(rng);
    if (a == b) b = (b + 1) % 20;
    g.add_edge(a, b, wdist(rng));
  }
  const ShortestPaths sp = dijkstra(g, 0);
  for (const Edge& e : g.edges()) {
    if (!sp.reached(e.src)) continue;
    EXPECT_LE(sp.dist[static_cast<std::size_t>(e.dst)],
              sp.dist[static_cast<std::size_t>(e.src)] + e.weight + 1e-9);
  }
  // Path reconstruction must reproduce the distance.
  for (NodeId n = 0; n < 20; ++n) {
    if (!sp.reached(n) || n == 0) continue;
    double sum = 0.0;
    for (const EdgeId eid : sp.path_edges(g, n)) sum += g.edge(eid).weight;
    EXPECT_NEAR(sum, sp.dist[static_cast<std::size_t>(n)], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// Property: Stoer-Wagner's cut weight matches the cut implied by its side
// assignment, and no single-node cut is lighter.
class MinCutPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MinCutPropertyTest, CutMatchesSideAndBeatsSingletons) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> wdist(0.5, 4.0);
  const std::size_t n = 10;
  Digraph g(n);
  std::uniform_int_distribution<int> ndist(0, static_cast<int>(n) - 1);
  for (int e = 0; e < 25; ++e) {
    const int a = ndist(rng);
    int b = ndist(rng);
    if (a == b) b = (b + 1) % static_cast<int>(n);
    g.add_edge(a, b, wdist(rng));
  }
  // Make it connected: a cheap ring.
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n), 0.6);
  }
  const GlobalMinCut cut = stoer_wagner_min_cut(g);
  std::vector<int> blocks(n);
  for (std::size_t i = 0; i < n; ++i) blocks[i] = cut.side[i] ? 1 : 0;
  EXPECT_NEAR(g.undirected_view().cut_weight(blocks), cut.weight, 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<int> single(n, 0);
    single[i] = 1;
    EXPECT_GE(g.undirected_view().cut_weight(single), cut.weight - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCutPropertyTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace vinoc::graph

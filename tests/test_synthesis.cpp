// Tests for the full synthesis flow (Algorithm 1).
#include <gtest/gtest.h>

#include <set>

#include "vinoc/core/shutdown_safety.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::core {
namespace {

soc::SocSpec d26_spec(int islands) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  return soc::with_logical_islands(d26.soc, islands, d26.use_cases);
}

TEST(Synthesis, ProducesDesignPointsOnD26) {
  const SynthesisResult r = synthesize(d26_spec(6));
  ASSERT_FALSE(r.points.empty());
  EXPECT_GT(r.stats.configs_explored, 0);
  EXPECT_EQ(r.stats.configs_saved, static_cast<int>(r.points.size()));
}

TEST(Synthesis, EveryPointIsStructurallyValidAndSafe) {
  const soc::SocSpec spec = d26_spec(6);
  const SynthesisResult r = synthesize(spec);
  ASSERT_FALSE(r.points.empty());
  for (const DesignPoint& p : r.points) {
    EXPECT_TRUE(p.topology.validate(spec).empty());
    EXPECT_TRUE(verify_shutdown_safety(p.topology, spec).empty());
  }
}

TEST(Synthesis, LatencyBudgetsHoldOnEveryPoint) {
  const soc::SocSpec spec = d26_spec(7);
  const SynthesisResult r = synthesize(spec);
  ASSERT_FALSE(r.points.empty());
  for (const DesignPoint& p : r.points) {
    for (std::size_t f = 0; f < spec.flows.size(); ++f) {
      EXPECT_LE(p.topology.routes[f].latency_cycles,
                spec.flows[f].max_latency_cycles + 1e-9);
    }
  }
}

TEST(Synthesis, SwitchPortCapsHold) {
  const soc::SocSpec spec = d26_spec(6);
  const SynthesisResult r = synthesize(spec);
  ASSERT_FALSE(r.points.empty());
  for (const DesignPoint& p : r.points) {
    for (std::size_t s = 0; s < p.topology.switches.size(); ++s) {
      const soc::IslandId isl = p.topology.switches[s].island;
      const int cap =
          isl == kIntermediateIsland
              ? r.intermediate_params.max_sw_size
              : r.island_params[static_cast<std::size_t>(isl)].max_sw_size;
      EXPECT_LE(p.topology.switch_ports_in(static_cast<int>(s)), cap);
      EXPECT_LE(p.topology.switch_ports_out(static_cast<int>(s)), cap);
    }
  }
}

TEST(Synthesis, CoresAttachOnlyToOwnIslandSwitches) {
  const soc::SocSpec spec = d26_spec(5);
  const SynthesisResult r = synthesize(spec);
  ASSERT_FALSE(r.points.empty());
  for (const DesignPoint& p : r.points) {
    for (std::size_t c = 0; c < spec.cores.size(); ++c) {
      const int sw = p.topology.switch_of_core[c];
      EXPECT_EQ(p.topology.switches[static_cast<std::size_t>(sw)].island,
                spec.cores[c].island);
    }
  }
}

TEST(Synthesis, ParetoFrontIsNonDominatedAndSorted) {
  const SynthesisResult r = synthesize(d26_spec(6));
  ASSERT_FALSE(r.pareto.empty());
  double prev_power = -1.0;
  double prev_lat = std::numeric_limits<double>::infinity();
  for (const std::size_t idx : r.pareto) {
    const Metrics& m = r.points[idx].metrics;
    EXPECT_GE(m.noc_dynamic_w, prev_power);
    EXPECT_LT(m.avg_latency_cycles, prev_lat);
    prev_power = m.noc_dynamic_w;
    prev_lat = m.avg_latency_cycles;
  }
  // No saved point may dominate a front member.
  for (const std::size_t idx : r.pareto) {
    const Metrics& front = r.points[idx].metrics;
    for (const DesignPoint& p : r.points) {
      const bool dominates =
          p.metrics.noc_dynamic_w < front.noc_dynamic_w - 1e-12 &&
          p.metrics.avg_latency_cycles < front.avg_latency_cycles - 1e-12;
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Synthesis, BestSelectorsAgreeWithScan) {
  const SynthesisResult r = synthesize(d26_spec(4));
  ASSERT_FALSE(r.points.empty());
  double min_p = std::numeric_limits<double>::infinity();
  double min_l = std::numeric_limits<double>::infinity();
  for (const DesignPoint& p : r.points) {
    min_p = std::min(min_p, p.metrics.noc_dynamic_w);
    min_l = std::min(min_l, p.metrics.avg_latency_cycles);
  }
  EXPECT_DOUBLE_EQ(r.best_power().metrics.noc_dynamic_w, min_p);
  EXPECT_DOUBLE_EQ(r.best_latency().metrics.avg_latency_cycles, min_l);
}

TEST(Synthesis, SingleIslandReferenceHasNoFifos) {
  const SynthesisResult r = synthesize(d26_spec(1));
  ASSERT_FALSE(r.points.empty());
  for (const DesignPoint& p : r.points) {
    EXPECT_EQ(p.metrics.fifo_count, 0);
    EXPECT_EQ(p.intermediate_switches, 0);
  }
}

TEST(Synthesis, EveryCoreAloneStillSynthesizes) {
  const SynthesisResult r = synthesize(d26_spec(26));
  ASSERT_FALSE(r.points.empty());
  // Every flow crosses islands: at least one FIFO per flow.
  const DesignPoint& p = r.best_power();
  EXPECT_GT(p.metrics.fifo_count, 0);
  EXPECT_GE(p.metrics.avg_latency_cycles, 8.0 - 1e-9);
}

TEST(Synthesis, DeterministicForFixedSeed) {
  const soc::SocSpec spec = d26_spec(6);
  const SynthesisResult a = synthesize(spec);
  const SynthesisResult b = synthesize(spec);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].metrics.noc_dynamic_w,
                     b.points[i].metrics.noc_dynamic_w);
    EXPECT_EQ(a.points[i].topology.links.size(), b.points[i].topology.links.size());
  }
}

TEST(Synthesis, MorePointsWithIntermediateAllowedOrEqual) {
  const soc::SocSpec spec = d26_spec(6);
  SynthesisOptions with;
  with.allow_intermediate_island = true;
  SynthesisOptions without;
  without.allow_intermediate_island = false;
  EXPECT_GE(synthesize(spec, with).stats.configs_explored,
            synthesize(spec, without).stats.configs_explored);
}

TEST(Synthesis, InvalidSpecRejected) {
  soc::SocSpec bad;
  bad.name = "bad";
  // A core referencing a non-existent island.
  soc::CoreSpec c;
  c.name = "x";
  c.island = 3;
  bad.cores.push_back(c);
  EXPECT_THROW((void)synthesize(bad), std::invalid_argument);
}

TEST(Synthesis, InvalidOptionsRejected) {
  const soc::SocSpec spec = d26_spec(2);
  SynthesisOptions opts;
  opts.alpha = 1.5;
  EXPECT_THROW((void)synthesize(spec, opts), std::invalid_argument);
  opts.alpha = 0.5;
  opts.alpha_power = -0.2;
  EXPECT_THROW((void)synthesize(spec, opts), std::invalid_argument);
}

TEST(Synthesis, UnroutableBandwidthReportedAsWidthProblem) {
  soc::SocSpec spec = d26_spec(2);
  spec.flows[0].bandwidth_bits_per_s = 50e9;  // beyond 32 bit x 1 GHz
  EXPECT_THROW((void)synthesize(spec), std::invalid_argument);
  // Doubling the width resolves it.
  SynthesisOptions opts;
  opts.link_width_bits = 64;
  EXPECT_NO_THROW((void)synthesize(spec, opts));
}

TEST(Synthesis, StatsAreConsistent) {
  const SynthesisResult r = synthesize(d26_spec(6));
  EXPECT_EQ(r.stats.configs_explored,
            r.stats.configs_routed + r.stats.rejected_latency +
                r.stats.rejected_unroutable + r.stats.rejected_pruned);
  EXPECT_EQ(r.stats.configs_routed,
            r.stats.configs_saved + r.stats.rejected_duplicate +
                r.stats.rejected_deadlock);
  EXPECT_GE(r.stats.elapsed_seconds, 0.0);
  // With pruning off every candidate is fully evaluated.
  SynthesisOptions off;
  off.prune = false;
  const SynthesisResult full = synthesize(d26_spec(6), off);
  EXPECT_EQ(full.stats.rejected_pruned, 0);
  EXPECT_EQ(full.stats.configs_explored,
            full.stats.configs_routed + full.stats.rejected_latency +
                full.stats.rejected_unroutable);
}

TEST(Synthesis, MinimumSwitchCountIsExplored) {
  // Documented deviation from the paper's loop indexing: the minimum-switch
  // configuration must appear among the explored configs.
  const SynthesisResult r = synthesize(d26_spec(6));
  ASSERT_FALSE(r.points.empty());
  std::set<int> totals;
  for (const DesignPoint& p : r.points) {
    int total = 0;
    for (const int k : p.switches_per_island) total += k;
    totals.insert(total);
  }
  int min_total = 0;
  for (const IslandNocParams& p : r.island_params) {
    min_total += std::max(p.min_switches, p.core_count > 0 ? 1 : 0);
  }
  EXPECT_TRUE(totals.count(min_total) == 1)
      << "minimum-switch config (" << min_total << " switches) not explored";
}

class SynthesisSweepTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SynthesisSweepTest, AllIslandCountsYieldValidSafePoints) {
  const auto [islands, comm] = GetParam();
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec =
      comm ? soc::with_communication_islands(d26.soc, islands, d26.use_cases)
           : soc::with_logical_islands(d26.soc, islands, d26.use_cases);
  const SynthesisResult r = synthesize(spec);
  ASSERT_FALSE(r.points.empty()) << "islands=" << islands << " comm=" << comm;
  const DesignPoint& best = r.best_power();
  EXPECT_TRUE(best.topology.validate(spec).empty());
  EXPECT_TRUE(verify_shutdown_safety(best.topology, spec).empty());
  EXPECT_GT(best.metrics.noc_dynamic_w, 0.0);
  EXPECT_GE(best.metrics.avg_latency_cycles, 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    D26, SynthesisSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 7, 26),
                       ::testing::Bool()));

}  // namespace
}  // namespace vinoc::core

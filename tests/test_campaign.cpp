// Campaign engine: matrix expansion (order, filters, dedup), spec parsing,
// JSONL record round-trips, thread-count determinism of the streamed
// report, and cache/resume semantics (recompute exactly the missing jobs).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vinoc/campaign/campaign_spec.hpp"
#include "vinoc/campaign/engine.hpp"
#include "vinoc/campaign/report.hpp"
#include "vinoc/campaign/result_cache.hpp"
#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/io/jsonl.hpp"
#include "vinoc/io/obs_writers.hpp"

namespace vinoc::campaign {
namespace {

/// Small, fast matrix: one 9-core synthetic family (base + 1 variant),
/// 2 strategies x 2 island counts x 2 widths = 16 jobs, centiseconds each.
CampaignSpec small_campaign() {
  CampaignSpec spec;
  spec.name = "unit";
  SyntheticScenario family;
  family.params.cores = 9;
  family.params.hubs = 2;
  family.perturbations = 1;
  spec.synthetic.push_back(family);
  spec.strategies = {"logical", "comm"};
  spec.island_counts = {2, 3};
  spec.widths = {32, 64};
  return spec;
}

TEST(CampaignSpec, ExpansionIsDeterministicAndOrdered) {
  const CampaignSpec spec = small_campaign();
  ExpandStats stats;
  const std::vector<CampaignJob> jobs = expand_jobs(spec, &stats);
  ASSERT_EQ(jobs.size(), 16u);
  EXPECT_EQ(stats.raw, 16);
  EXPECT_EQ(stats.filtered, 0);
  EXPECT_EQ(stats.deduped, 0);
  // scenario -> strategy -> islands -> width nesting order.
  EXPECT_EQ(jobs[0].name, "synthetic_c9_s7/logical/i2/w32");
  EXPECT_EQ(jobs[1].name, "synthetic_c9_s7/logical/i2/w64");
  EXPECT_EQ(jobs[2].name, "synthetic_c9_s7/logical/i3/w32");
  EXPECT_EQ(jobs[4].name, "synthetic_c9_s7/comm/i2/w32");
  const std::vector<CampaignJob> again = expand_jobs(spec);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].name, again[i].name);
    EXPECT_EQ(jobs[i].key, again[i].key);
  }
}

TEST(CampaignSpec, DuplicateAxisEntriesAreContentDeduplicated) {
  CampaignSpec spec = small_campaign();
  spec.benchmarks = {"d16", "d16"};  // same benchmark listed twice
  ExpandStats stats;
  const std::vector<CampaignJob> jobs = expand_jobs(spec, &stats);
  EXPECT_GT(stats.deduped, 0);
  // Every surviving job key is unique.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    for (std::size_t j = i + 1; j < jobs.size(); ++j) {
      EXPECT_NE(jobs[i].key, jobs[j].key) << jobs[i].name;
    }
  }
}

TEST(CampaignSpec, IncludeExcludeFiltersApplyToJobNames) {
  CampaignSpec spec = small_campaign();
  spec.include = {"logical"};
  spec.exclude = {"w64"};
  ExpandStats stats;
  const std::vector<CampaignJob> jobs = expand_jobs(spec, &stats);
  ASSERT_EQ(jobs.size(), 4u);  // 2 scenarios x 2 island counts, width 32 only
  for (const CampaignJob& job : jobs) {
    EXPECT_NE(job.name.find("logical"), std::string::npos);
    EXPECT_EQ(job.name.find("w64"), std::string::npos);
  }
  EXPECT_EQ(stats.filtered, 12);
}

TEST(CampaignSpec, UnknownNamesThrow) {
  CampaignSpec bad_bench = small_campaign();
  bad_bench.benchmarks = {"d99"};
  EXPECT_THROW(expand_jobs(bad_bench), std::invalid_argument);
  CampaignSpec bad_strategy = small_campaign();
  bad_strategy.strategies = {"magic"};
  EXPECT_THROW(expand_jobs(bad_strategy), std::invalid_argument);
}

TEST(CampaignSpec, ParserReadsTheDocumentedFormat) {
  const CampaignParseResult parsed = parse_campaign_spec_string(
      "# comment\n"
      "name = nightly\n"
      "benchmarks = d16 d24\n"
      "synthetic = cores:12 hubs:2 seed:9 flows:1.5 perturb:2\n"
      "strategies = logical comm\n"
      "islands = 2 4\n"
      "widths = 32 128\n"
      "alpha = 0.5\n"
      "alpha_power = 0.8\n"
      "intermediate = off\n"
      "include = d16\n"
      "exclude = w128\n");
  ASSERT_TRUE(parsed.ok) << (parsed.errors.empty()
                                 ? "?"
                                 : parsed.errors.front().message);
  const CampaignSpec& spec = parsed.spec;
  EXPECT_EQ(spec.name, "nightly");
  ASSERT_EQ(spec.benchmarks.size(), 2u);
  ASSERT_EQ(spec.synthetic.size(), 1u);
  EXPECT_EQ(spec.synthetic[0].params.cores, 12);
  EXPECT_EQ(spec.synthetic[0].params.seed, 9u);
  EXPECT_EQ(spec.synthetic[0].perturbations, 2);
  EXPECT_EQ(spec.island_counts, (std::vector<int>{2, 4}));
  EXPECT_EQ(spec.widths, (std::vector<int>{32, 128}));
  EXPECT_DOUBLE_EQ(spec.base_options.alpha, 0.5);
  EXPECT_DOUBLE_EQ(spec.base_options.alpha_power, 0.8);
  EXPECT_FALSE(spec.base_options.allow_intermediate_island);
  EXPECT_EQ(spec.include, (std::vector<std::string>{"d16"}));
  EXPECT_EQ(spec.exclude, (std::vector<std::string>{"w128"}));
}

TEST(CampaignSpec, ParserRejectsExtraTokensOnScalarKeysAndHugeInts) {
  // Two settings jammed onto one line must error, not silently drop one.
  const CampaignParseResult jammed = parse_campaign_spec_string(
      "benchmarks = d16\n"
      "alpha = 0.6 alpha_power = 0.7\n");
  ASSERT_FALSE(jammed.ok);
  EXPECT_EQ(jammed.errors.front().line, 2);
  // Out-of-int-range axis values must be rejected, not wrapped.
  const CampaignParseResult huge = parse_campaign_spec_string(
      "benchmarks = d16\n"
      "widths = 4294967328\n");
  ASSERT_FALSE(huge.ok);
  EXPECT_EQ(huge.errors.front().line, 2);
}

TEST(CampaignSpec, OversizedIslandCountsClampIntoTheJobName) {
  CampaignSpec spec = small_campaign();
  spec.synthetic[0].perturbations = 0;
  spec.strategies = {"logical"};
  spec.island_counts = {12, 16};  // both exceed the 9 cores -> both clamp
  spec.widths = {32};
  ExpandStats stats;
  const std::vector<CampaignJob> jobs = expand_jobs(spec, &stats);
  ASSERT_EQ(jobs.size(), 1u);  // saturated points collapse via content dedup
  EXPECT_EQ(stats.deduped, 1);
  EXPECT_EQ(jobs[0].name, "synthetic_c9_s7/logical/i9/w32");
  EXPECT_EQ(jobs[0].islands, 9);
}

TEST(CampaignSpec, ParserReportsErrorsWithLineNumbers) {
  const CampaignParseResult parsed = parse_campaign_spec_string(
      "benchmarks = d16\n"
      "widths = 32 nope\n"
      "mystery = 1\n");
  ASSERT_FALSE(parsed.ok);
  ASSERT_EQ(parsed.errors.size(), 2u);
  EXPECT_EQ(parsed.errors[0].line, 2);
  EXPECT_NE(parsed.errors[0].message.find("nope"), std::string::npos);
  EXPECT_EQ(parsed.errors[1].line, 3);
  // A campaign without any scenario axis is rejected.
  EXPECT_FALSE(parse_campaign_spec_string("widths = 32\n").ok);
}

TEST(CampaignReport, RecordRoundTripsThroughJsonl) {
  JobRecord rec;
  rec.campaign = "unit";
  rec.job = "d16/logical/i2/w32";
  rec.scenario = "d16";
  rec.strategy = "logical";
  rec.islands = 2;
  rec.width = 32;
  rec.seed = 7;
  rec.key = 0xdeadbeefcafef00dull;
  rec.feasible = true;
  rec.cache_hit = true;
  rec.points = 9;
  rec.pareto_points = 3;
  rec.configs_explored = 90;
  rec.best_power_mw = 87.10779198662921;
  rec.best_leakage_mw = 1.86830427478423;
  rec.best_area_mm2 = 0.2984;
  rec.best_power_latency_cycles = 5.8125;
  rec.min_latency_cycles = 5.5;
  rec.wall_ms = 16.25;
  JobRecord back;
  ASSERT_TRUE(record_from_jsonl(record_to_jsonl(rec), back));
  EXPECT_EQ(back.campaign, rec.campaign);
  EXPECT_EQ(back.job, rec.job);
  EXPECT_EQ(back.key, rec.key);
  EXPECT_EQ(back.seed, rec.seed);
  EXPECT_TRUE(back.feasible);
  EXPECT_TRUE(back.cache_hit);
  EXPECT_EQ(back.points, rec.points);
  EXPECT_EQ(back.best_power_mw, rec.best_power_mw);  // %.17g round-trip
  EXPECT_EQ(back.wall_ms, rec.wall_ms);
  // Without timing the field is absent and parses as 0.
  ASSERT_TRUE(record_from_jsonl(record_to_jsonl(rec, false), back));
  EXPECT_EQ(back.wall_ms, 0.0);
  EXPECT_FALSE(record_from_jsonl("{not json", back));
}

TEST(CampaignEngine, JsonlIsByteIdenticalForAnyThreadCount) {
  const CampaignSpec spec = small_campaign();
  CampaignOptions opt1;
  opt1.threads = 1;
  const CampaignResult r1 = run_campaign(spec, opt1);
  ASSERT_EQ(r1.records.size(), 16u);
  EXPECT_EQ(r1.jobs_run(), 16);
  EXPECT_EQ(r1.cache_hits(), 0);
  for (const int threads : {2, 4}) {
    CampaignOptions optn;
    optn.threads = threads;
    const CampaignResult rn = run_campaign(spec, optn);
    // Byte-identical without the measured field...
    EXPECT_EQ(r1.to_jsonl(false), rn.to_jsonl(false)) << threads;
    // ...and wall_ms is the ONLY difference with it.
    for (std::size_t i = 0; i < rn.records.size(); ++i) {
      JobRecord a = r1.records[i];
      JobRecord b = rn.records[i];
      a.wall_ms = b.wall_ms = 0.0;
      EXPECT_EQ(record_to_jsonl(a), record_to_jsonl(b));
    }
  }
}

TEST(CampaignEngine, RecordsStreamInJobOrder) {
  const CampaignSpec spec = small_campaign();
  std::vector<std::string> streamed;
  CampaignOptions opt;
  opt.threads = 4;
  opt.on_record = [&streamed](const JobRecord& rec) {
    streamed.push_back(rec.job);
  };
  const CampaignResult result = run_campaign(spec, opt);
  ASSERT_EQ(streamed.size(), result.records.size());
  const std::vector<CampaignJob> jobs = expand_jobs(spec);
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], jobs[i].name);
    EXPECT_EQ(result.records[i].job, jobs[i].name);
  }
}

TEST(CampaignEngine, SharedCacheMakesSecondRunAllHits) {
  const CampaignSpec spec = small_campaign();
  ResultCache cache;
  CampaignOptions opt;
  opt.threads = 2;
  opt.cache = &cache;
  const CampaignResult cold = run_campaign(spec, opt);
  EXPECT_EQ(cold.jobs_run(), 16);
  EXPECT_EQ(cold.cache_hits(), 0);
  const CampaignResult warm = run_campaign(spec, opt);
  EXPECT_EQ(warm.jobs_run(), 0);
  EXPECT_EQ(warm.cache_hits(), 16);
  // Hits carry the same payload (and flag themselves as hits).
  for (std::size_t i = 0; i < warm.records.size(); ++i) {
    EXPECT_TRUE(warm.records[i].cache_hit);
    EXPECT_EQ(warm.records[i].best_power_mw, cold.records[i].best_power_mw);
    EXPECT_EQ(warm.records[i].points, cold.records[i].points);
  }
}

TEST(CampaignEngine, ResumeRecomputesExactlyTheMissingJobs) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(testing::TempDir()) / "vinoc_campaign_resume_test";
  fs::remove_all(dir);

  const CampaignSpec spec = small_campaign();
  CampaignOptions opt;
  opt.threads = 2;
  opt.cache_dir = dir.string();
  const CampaignResult cold = run_campaign(spec, opt);
  EXPECT_EQ(cold.jobs_run(), 16);

  // Drop every other line of the store, remembering which keys survive.
  const std::string store = (dir / "store.jsonl").string();
  std::vector<std::string> lines;
  {
    std::ifstream in(store);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 16u);
  std::vector<std::uint64_t> kept_keys;
  {
    std::ofstream out(store, std::ios::trunc);
    for (std::size_t i = 0; i < lines.size(); i += 2) {
      out << lines[i] << '\n';
      JobRecord rec;
      ASSERT_TRUE(record_from_jsonl(lines[i], rec));
      kept_keys.push_back(rec.key);
    }
  }

  CampaignOptions resume_opt;
  resume_opt.threads = 2;
  resume_opt.cache_dir = dir.string();
  resume_opt.resume = true;
  const CampaignResult resumed = run_campaign(spec, resume_opt);
  EXPECT_EQ(resumed.jobs_run(), 8);
  EXPECT_EQ(resumed.cache_hits(), 8);
  // Exactly the surviving keys are hits, and payloads match the cold run.
  ASSERT_EQ(resumed.records.size(), cold.records.size());
  for (std::size_t i = 0; i < resumed.records.size(); ++i) {
    const JobRecord& rec = resumed.records[i];
    const bool kept = std::find(kept_keys.begin(), kept_keys.end(), rec.key) !=
                      kept_keys.end();
    EXPECT_EQ(rec.cache_hit, kept) << rec.job;
    EXPECT_EQ(rec.best_power_mw, cold.records[i].best_power_mw);
    EXPECT_EQ(rec.points, cold.records[i].points);
  }
  // The store is whole again: a further resume run computes nothing.
  const CampaignResult third = run_campaign(spec, resume_opt);
  EXPECT_EQ(third.jobs_run(), 0);
  EXPECT_EQ(third.cache_hits(), 16);
  fs::remove_all(dir);
}

TEST(CampaignEngine, RepeatedColdRunsDoNotDuplicateStoreLines) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(testing::TempDir()) / "vinoc_campaign_store_growth_test";
  fs::remove_all(dir);
  CampaignSpec spec = small_campaign();
  spec.include = {"logical/i2"};  // 4 jobs is enough
  CampaignOptions opt;
  opt.threads = 2;
  opt.cache_dir = dir.string();
  (void)run_campaign(spec, opt);  // cold, fills the store
  (void)run_campaign(spec, opt);  // cold again (no --resume): recomputes...
  std::ifstream in((dir / "store.jsonl").string());
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 4u);  // ...but appends nothing for keys already stored
  fs::remove_all(dir);
}

TEST(CampaignEngine, StreamWritesJobOrderedJsonl) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::path(testing::TempDir()) / "vinoc_campaign_stream.jsonl";
  CampaignSpec spec = small_campaign();
  spec.include = {"logical"};
  std::FILE* stream = std::fopen(path.string().c_str(), "w");
  ASSERT_NE(stream, nullptr);
  CampaignOptions opt;
  opt.threads = 4;
  opt.stream = stream;
  opt.include_timing = false;
  const CampaignResult result = run_campaign(spec, opt);
  std::fclose(stream);
  std::ifstream in(path.string());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), result.to_jsonl(false));
  fs::remove(path);
}

TEST(CampaignEngine, InfeasibleWidthIsRecordedNotFatal) {
  CampaignSpec spec = small_campaign();
  spec.synthetic[0].perturbations = 0;
  spec.strategies = {"logical"};
  spec.island_counts = {2};
  spec.widths = {1, 32};  // 1-bit links cannot carry the hub flows
  const CampaignResult result = run_campaign(spec, {});
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_FALSE(result.records[0].feasible);
  EXPECT_EQ(result.records[0].points, 0);
  EXPECT_TRUE(result.records[1].feasible);
  EXPECT_EQ(result.infeasible(), 1);
}

TEST(JsonlWriter, EscapesAndParsesRoundTrip) {
  io::JsonlWriter w;
  w.field("text", "a \"quote\"\nnewline\ttab\\slash")
      .field("num", 1.5)
      .field("neg", std::int64_t{-3})
      .field("flag", true);
  std::map<std::string, std::string> obj;
  ASSERT_TRUE(io::parse_jsonl_object(w.line(), obj));
  EXPECT_EQ(obj["text"], "a \"quote\"\nnewline\ttab\\slash");
  EXPECT_EQ(obj["num"], "1.5");
  EXPECT_EQ(obj["neg"], "-3");
  EXPECT_EQ(obj["flag"], "true");
  EXPECT_FALSE(io::parse_jsonl_object("{\"a\":{\"nested\":1}}", obj));
  EXPECT_FALSE(io::parse_jsonl_object("[1,2]", obj));
  EXPECT_TRUE(io::parse_jsonl_object("{}", obj));
  EXPECT_TRUE(obj.empty());
}

}  // namespace
TEST(CampaignEngine, WidthGroupsShareStructuresAcrossJobs) {
  // Jobs differing only in link_width_bits group under the width-excluded
  // content hash and are synthesized together; each job's cached result
  // must still be bit-identical to a solo synthesize() of that job.
  CampaignSpec spec = small_campaign();
  spec.island_counts = {3};
  spec.strategies = {"logical"};
  spec.widths = {32, 64, 128};  // one structure group of three widths
  ResultCache cache;
  CampaignOptions opt;
  opt.threads = 2;
  opt.cache = &cache;
  const CampaignResult result = run_campaign(spec, opt);
  const std::vector<CampaignJob> jobs = expand_jobs(spec);
  ASSERT_EQ(jobs.size(), 6u);  // 2 scenarios x 3 widths
  EXPECT_EQ(result.jobs_run(), 6);
  EXPECT_EQ(result.structure_groups(), 2);
  EXPECT_EQ(result.structure_shared_jobs(), 6);
  for (const CampaignJob& job : jobs) {
    // Same structure key within a scenario, regardless of width...
    core::SynthesisOptions at32 = job.options;
    at32.link_width_bits = 32;
    EXPECT_EQ(structure_key(job.spec, job.options),
              structure_key(job.spec, at32));
    // ...and a bit-identical result versus the classic per-job path.
    const auto shared = cache.find_result(job.key);
    ASSERT_NE(shared, nullptr) << job.name;
    const core::SynthesisResult solo = core::synthesize(job.spec, job.options);
    EXPECT_EQ(result_fingerprint(*shared), result_fingerprint(solo)) << job.name;
  }
  // A warm re-run serves everything from the cache and forms no groups.
  const CampaignResult warm = run_campaign(spec, opt);
  EXPECT_EQ(warm.cache_hits(), 6);
  EXPECT_EQ(warm.structure_groups(), 0);
  EXPECT_EQ(warm.structure_shared_jobs(), 0);
}

TEST(CampaignEngine, ResumeSummarySerializationIsCanonical) {
  // CampaignResult::metrics is the single source of the CLI's
  // resume_summary line (io::registry_record with an empty record name).
  // Scripts and the CI resume assertion grep the line's PREFIX, so the
  // field order is a contract: new counters must register AFTER the
  // existing ones in engine.cpp. This test is that contract — it replaces
  // the old "new fields append after the ones above" comment that used to
  // sit beside a hand-maintained field list in the CLI.
  CampaignSpec spec = small_campaign();
  spec.strategies = {"logical"};
  spec.island_counts = {2};
  spec.widths = {32};
  ResultCache cache;
  CampaignOptions opt;
  opt.threads = 2;
  opt.cache = &cache;
  const CampaignResult cold = run_campaign(spec, opt);

  const std::string line = io::registry_record("", cold.metrics);
  // Exact prefix shape (the machine-readable contract; no "record" field).
  EXPECT_EQ(line.rfind("{\"run\":2,\"cache_hits\":0,\"infeasible\":0,"
                       "\"total\":2,",
                       0),
            0u)
      << line;
  // Full canonical order, counters then the derived gauge last.
  const char* const kCanonical[] = {
      "run",
      "cache_hits",
      "infeasible",
      "total",
      "structure_groups",
      "structure_shared_jobs",
      "width_shared_evals",
      "width_certified_evals",
      "width_cohort_evals",
      "width_fallback_evals",
      "certificate_accepts",
      "cohort_groups",
      "peak_buffered_outcomes",
      "delta_candidates",
      "delta_flows_reused",
      "delta_flows_certified",
      "delta_flows_rerouted",
      "delta_cert_rejects",
      "retries",
      "job_timeouts",
      "quarantined_jobs",
      "skipped_jobs",
      "recovered_records",
      "evicted_records",
      "store_write_errors",
      "interrupted",
      "delta_reuse_rate",
  };
  std::size_t pos = 0;
  for (const char* name : kCanonical) {
    const std::string needle = std::string("\"") + name + "\":";
    const std::size_t at = line.find(needle, pos);
    ASSERT_NE(at, std::string::npos) << name << " missing/out of order in\n"
                                     << line;
    pos = at + needle.size();
  }

  // The warm line reproduces the CI resume grep's shape.
  const CampaignResult warm = run_campaign(spec, opt);
  EXPECT_EQ(io::registry_record("", warm.metrics)
                .rfind("{\"run\":0,\"cache_hits\":2,", 0),
            0u);
}

TEST(SpecHash, WidthExcludedHashIgnoresExactlyTheWidth) {
  const CampaignSpec spec = small_campaign();
  const std::vector<CampaignJob> jobs = expand_jobs(spec);
  ASSERT_GE(jobs.size(), 2u);
  for (const CampaignJob& a : jobs) {
    for (const CampaignJob& b : jobs) {
      const bool same_but_width =
          hash_soc_spec(a.spec) == hash_soc_spec(b.spec);
      if (same_but_width) {
        EXPECT_EQ(structure_key(a.spec, a.options),
                  structure_key(b.spec, b.options));
      }
      if (a.key == b.key) continue;
      // Full keys still tell widths apart.
      if (same_but_width && a.width != b.width) {
        EXPECT_NE(hash_synthesis_options(a.options),
                  hash_synthesis_options(b.options));
        EXPECT_EQ(hash_synthesis_options_width_excluded(a.options),
                  hash_synthesis_options_width_excluded(b.options));
      }
    }
  }
  // Non-width option changes DO re-key the structure group.
  core::SynthesisOptions base = jobs.front().options;
  core::SynthesisOptions other = base;
  other.alpha = base.alpha * 0.5;
  EXPECT_NE(hash_synthesis_options_width_excluded(base),
            hash_synthesis_options_width_excluded(other));
}

}  // namespace vinoc::campaign

// Tests for the shutdown-safety verifier — the property the whole paper is
// about. Includes an adversarial case: a hand-built topology that routes a
// flow through a third island must be flagged.
#include <gtest/gtest.h>

#include "vinoc/core/shutdown_safety.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::core {
namespace {

/// Three islands, one core + one switch each, flow core0 -> core2.
struct UnsafeFixture {
  soc::SocSpec spec;
  NocTopology topo;

  UnsafeFixture() {
    for (int i = 0; i < 3; ++i) {
      spec.islands.push_back({"vi" + std::to_string(i), 1.0, true});
      soc::CoreSpec c;
      c.name = "core" + std::to_string(i);
      c.island = i;
      spec.cores.push_back(c);
      SwitchInst sw;
      sw.island = i;
      sw.freq_hz = 400e6;
      sw.cores = {static_cast<soc::CoreId>(i)};
      topo.switches.push_back(sw);
      topo.switch_of_core.push_back(i);
      topo.ni_wire_mm.push_back(0.5);
    }
    topo.island_freq_hz = {400e6, 400e6, 400e6};
    soc::Flow f;
    f.src = 0;
    f.dst = 2;
    f.bandwidth_bits_per_s = 1e9;
    f.max_latency_cycles = 40;
    f.label = "c0->c2";
    spec.flows.push_back(f);
  }

  /// Routes the flow through switch `mid` (island 1) — the unsafe detour.
  void route_through_middle() {
    TopLink l1;
    l1.src_switch = 0;
    l1.dst_switch = 1;
    l1.crosses_island = true;
    l1.carried_bw_bits_per_s = 1e9;
    l1.flows = {0};
    TopLink l2 = l1;
    l2.src_switch = 1;
    l2.dst_switch = 2;
    topo.links = {l1, l2};
    FlowRoute r;
    r.src_switch = 0;
    r.dst_switch = 2;
    r.links = {0, 1};
    r.crossings = 2;
    r.latency_cycles = 13;
    topo.routes = {r};
  }

  /// Routes the flow directly (safe).
  void route_direct() {
    TopLink l;
    l.src_switch = 0;
    l.dst_switch = 2;
    l.crosses_island = true;
    l.carried_bw_bits_per_s = 1e9;
    l.flows = {0};
    topo.links = {l};
    FlowRoute r;
    r.src_switch = 0;
    r.dst_switch = 2;
    r.links = {0};
    r.crossings = 1;
    r.latency_cycles = 8;
    topo.routes = {r};
  }
};

TEST(ShutdownSafety, DirectRouteIsSafe) {
  UnsafeFixture fx;
  fx.route_direct();
  EXPECT_TRUE(verify_shutdown_safety(fx.topo, fx.spec).empty());
}

TEST(ShutdownSafety, TransitThroughThirdIslandFlagged) {
  UnsafeFixture fx;
  fx.route_through_middle();
  const auto violations = verify_shutdown_safety(fx.topo, fx.spec);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("vi1"), std::string::npos);
}

TEST(ShutdownSafety, TransitThroughAlwaysOnIslandAllowed) {
  // If the middle island cannot be shut down, routing through it is legal
  // (that is exactly what the intermediate NoC VI is).
  UnsafeFixture fx;
  fx.spec.islands[1].can_shutdown = false;
  fx.route_through_middle();
  EXPECT_TRUE(verify_shutdown_safety(fx.topo, fx.spec).empty());
}

TEST(ShutdownSafety, IntermediateSwitchWithCoresFlagged) {
  UnsafeFixture fx;
  fx.route_direct();
  SwitchInst bad;
  bad.island = kIntermediateIsland;
  bad.cores = {0};  // a core on an indirect switch: forbidden
  fx.topo.switches.push_back(bad);
  const auto violations = verify_shutdown_safety(fx.topo, fx.spec);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("intermediate"), std::string::npos);
}

TEST(FlowsBlockedByShutdown, ExactlyTerminatingFlowsForSafeTopology) {
  UnsafeFixture fx;
  fx.route_direct();
  // Island 0: the flow originates there => blocked. Island 1: untouched.
  EXPECT_EQ(flows_blocked_by_shutdown(fx.topo, fx.spec, 0).size(), 1u);
  EXPECT_TRUE(flows_blocked_by_shutdown(fx.topo, fx.spec, 1).empty());
  EXPECT_EQ(flows_blocked_by_shutdown(fx.topo, fx.spec, 2).size(), 1u);
}

TEST(FlowsBlockedByShutdown, DetourShowsUpAsBlockage) {
  UnsafeFixture fx;
  fx.route_through_middle();
  EXPECT_EQ(flows_blocked_by_shutdown(fx.topo, fx.spec, 1).size(), 1u);
}

// The paper's core guarantee, verified end-to-end: on every synthesized
// design point of every islanding variant, gating any shutdown-capable
// island blocks exactly the flows that terminate in it.
class EndToEndSafetyTest : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndSafetyTest, GatingBlocksOnlyTerminatingFlows) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec =
      soc::with_logical_islands(d26.soc, GetParam(), d26.use_cases);
  const SynthesisResult result = synthesize(spec);
  ASSERT_FALSE(result.points.empty());
  for (const DesignPoint& p : result.points) {
    for (std::size_t isl = 0; isl < spec.island_count(); ++isl) {
      if (!spec.islands[isl].can_shutdown) continue;
      const auto blocked = flows_blocked_by_shutdown(
          p.topology, spec, static_cast<soc::IslandId>(isl));
      for (const int f : blocked) {
        const soc::Flow& flow = spec.flows[static_cast<std::size_t>(f)];
        const bool terminates =
            spec.cores[static_cast<std::size_t>(flow.src)].island ==
                static_cast<soc::IslandId>(isl) ||
            spec.cores[static_cast<std::size_t>(flow.dst)].island ==
                static_cast<soc::IslandId>(isl);
        EXPECT_TRUE(terminates)
            << "flow " << flow.label << " transits island " << isl;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(IslandCounts, EndToEndSafetyTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace vinoc::core

// Tests for the flow router (Algorithm 1, step 15): link admissibility,
// link opening/reuse, capacity, latency budgets, and the structural
// shutdown-safety rule.
#include <gtest/gtest.h>

#include "vinoc/core/router.hpp"
#include "vinoc/core/topology.hpp"

namespace vinoc::core {
namespace {

// A hand-built fixture: two shutdown-capable islands (0, 1) with one switch
// each, plus optionally an intermediate switch. One core per switch.
struct Fixture {
  soc::SocSpec spec;
  NocTopology topo;
  RouterOptions opts;

  explicit Fixture(int islands = 2, int intermediate_switches = 0,
                   int max_ports = 8) {
    spec.name = "fx";
    for (int i = 0; i < islands; ++i) {
      spec.islands.push_back({"vi" + std::to_string(i), 1.0, true});
    }
    topo.island_freq_hz.assign(static_cast<std::size_t>(islands), 400e6);
    topo.intermediate_freq_hz = 400e6;
    for (int i = 0; i < islands; ++i) {
      soc::CoreSpec c;
      c.name = "core" + std::to_string(i);
      c.island = i;
      spec.cores.push_back(c);

      SwitchInst sw;
      sw.island = i;
      sw.freq_hz = 400e6;
      sw.pos = {static_cast<double>(i) * 2.0, 0.0};
      sw.cores = {static_cast<soc::CoreId>(i)};
      topo.switches.push_back(sw);
      topo.switch_of_core.push_back(i);
      topo.ni_wire_mm.push_back(0.5);
    }
    for (int k = 0; k < intermediate_switches; ++k) {
      SwitchInst sw;
      sw.island = kIntermediateIsland;
      sw.freq_hz = 400e6;
      sw.pos = {1.0, 1.0 + k};
      topo.switches.push_back(sw);
    }
    opts.max_ports.assign(topo.switches.size(), max_ports);
  }

  void add_flow(int src, int dst, double bw, double lat) {
    soc::Flow f;
    f.src = src;
    f.dst = dst;
    f.bandwidth_bits_per_s = bw;
    f.max_latency_cycles = lat;
    f.label = "f" + std::to_string(spec.flows.size());
    spec.flows.push_back(f);
  }
};

TEST(LinkAdmissible, IntraIslandFlowNeverLeaves) {
  // Flow 0 -> 0: only hops inside island 0 allowed.
  EXPECT_TRUE(link_admissible(0, 0, 0, 0));
  EXPECT_FALSE(link_admissible(0, 1, 0, 0));
  EXPECT_FALSE(link_admissible(0, kIntermediateIsland, 0, 0));
  EXPECT_FALSE(link_admissible(kIntermediateIsland, kIntermediateIsland, 0, 0));
}

TEST(LinkAdmissible, CrossIslandDirectAndViaIntermediate) {
  // Flow 0 -> 1.
  EXPECT_TRUE(link_admissible(0, 1, 0, 1));                      // direct
  EXPECT_TRUE(link_admissible(0, kIntermediateIsland, 0, 1));    // to NoC VI
  EXPECT_TRUE(link_admissible(kIntermediateIsland, 1, 0, 1));    // from NoC VI
  EXPECT_TRUE(link_admissible(kIntermediateIsland, kIntermediateIsland, 0, 1));
  EXPECT_TRUE(link_admissible(0, 0, 0, 1));  // hop inside source island
  EXPECT_TRUE(link_admissible(1, 1, 0, 1));  // hop inside destination island
}

TEST(LinkAdmissible, ThirdIslandForbidden) {
  // Flow 0 -> 1 must never touch island 2 (the shutdown-safety property).
  EXPECT_FALSE(link_admissible(0, 2, 0, 1));
  EXPECT_FALSE(link_admissible(2, 1, 0, 1));
  EXPECT_FALSE(link_admissible(2, 2, 0, 1));
  EXPECT_FALSE(link_admissible(kIntermediateIsland, 2, 0, 1));
  // Reverse direction (1 -> 0) is also not admissible for a 0 -> 1 flow.
  EXPECT_FALSE(link_admissible(1, 0, 0, 1));
}

TEST(Router, SameSwitchFlowNeedsNoLinks) {
  Fixture fx(2);
  // Put a second core on switch 0.
  soc::CoreSpec c;
  c.name = "extra";
  c.island = 0;
  fx.spec.cores.push_back(c);
  fx.topo.switches[0].cores.push_back(2);
  fx.topo.switch_of_core.push_back(0);
  fx.topo.ni_wire_mm.push_back(0.4);
  fx.add_flow(0, 2, 1e9, 20);
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  ASSERT_TRUE(out.success) << out.failure_reason;
  EXPECT_TRUE(fx.topo.links.empty());
  EXPECT_TRUE(fx.topo.routes[0].links.empty());
  // Latency: NI->sw (1) + switch (1) + sw->NI (1) = 3 cycles.
  EXPECT_DOUBLE_EQ(fx.topo.routes[0].latency_cycles, 3.0);
}

TEST(Router, CrossIslandOpensFifoLink) {
  Fixture fx(2);
  fx.add_flow(0, 1, 1e9, 20);
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  ASSERT_TRUE(out.success) << out.failure_reason;
  ASSERT_EQ(fx.topo.links.size(), 1u);
  EXPECT_TRUE(fx.topo.links[0].crosses_island);
  EXPECT_DOUBLE_EQ(fx.topo.links[0].carried_bw_bits_per_s, 1e9);
  // Latency: 2 NI links + 2 switches + 4-cycle FIFO link = 8.
  EXPECT_DOUBLE_EQ(fx.topo.routes[0].latency_cycles, 8.0);
  EXPECT_EQ(fx.topo.routes[0].crossings, 1);
  EXPECT_TRUE(fx.topo.validate(fx.spec).empty());
}

TEST(Router, ReusesExistingLinkForSecondFlow) {
  Fixture fx(2);
  fx.add_flow(0, 1, 1e9, 20);
  fx.add_flow(0, 1, 2e9, 20);
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  ASSERT_TRUE(out.success) << out.failure_reason;
  EXPECT_EQ(fx.topo.links.size(), 1u);
  EXPECT_DOUBLE_EQ(fx.topo.links[0].carried_bw_bits_per_s, 3e9);
  EXPECT_EQ(fx.topo.links[0].flows.size(), 2u);
}

TEST(Router, SaturatedLinkGetsParallelLink) {
  Fixture fx(2);
  // Capacity at 400 MHz x 32 bit = 12.8e9. Two flows of 8e9 cannot share.
  fx.add_flow(0, 1, 8e9, 20);
  fx.add_flow(0, 1, 8e9, 20);
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  ASSERT_TRUE(out.success) << out.failure_reason;
  EXPECT_EQ(fx.topo.links.size(), 2u);
  EXPECT_TRUE(fx.topo.validate(fx.spec).empty());
}

TEST(Router, FlowExceedingLinkCapacityFails) {
  Fixture fx(2);
  fx.add_flow(0, 1, 20e9, 20);  // > 12.8e9 capacity
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  EXPECT_FALSE(out.success);
  EXPECT_FALSE(out.failure_reason.empty());
}

TEST(Router, LatencyBudgetViolationFails) {
  Fixture fx(2);
  fx.add_flow(0, 1, 1e9, 7.0);  // needs 8 cycles
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  EXPECT_FALSE(out.success);
  EXPECT_NE(out.failure_reason.find("latency"), std::string::npos);
}

TEST(Router, PortExhaustionRoutesViaIntermediate) {
  // Three islands sending to island 0, but switch 0 may only have
  // 1 core + 2 in-ports. With an intermediate switch the three flows
  // concentrate; without it, routing must fail.
  auto build = [](int intermediate) {
    Fixture fx(4, intermediate, /*max_ports=*/3);
    fx.add_flow(1, 0, 1e9, 30);
    fx.add_flow(2, 0, 1e9, 30);
    fx.add_flow(3, 0, 1e9, 30);
    return fx;
  };
  Fixture without = build(0);
  const RouteOutcome fail = route_all_flows(without.topo, without.spec, without.opts);
  EXPECT_FALSE(fail.success);

  Fixture with = build(1);
  const RouteOutcome ok = route_all_flows(with.topo, with.spec, with.opts);
  ASSERT_TRUE(ok.success) << ok.failure_reason;
  // At least one route must pass through the intermediate switch (index 4).
  bool via_intermediate = false;
  for (const FlowRoute& r : with.topo.routes) {
    for (const int l : r.links) {
      if (with.topo.links[static_cast<std::size_t>(l)].dst_switch == 4 ||
          with.topo.links[static_cast<std::size_t>(l)].src_switch == 4) {
        via_intermediate = true;
      }
    }
  }
  EXPECT_TRUE(via_intermediate);
  EXPECT_TRUE(with.topo.validate(with.spec).empty());
}

TEST(Router, NoPathThroughThirdIsland) {
  // Flow 0 -> 1 with islands 0,1,2; even if a detour through island 2's
  // switch were cheap (it sits between them), it must not be taken.
  Fixture fx(3);
  fx.topo.switches[2].pos = {1.0, 0.0};  // between switch 0 (x=0) and 1 (x=2)
  fx.add_flow(0, 1, 1e9, 30);
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  ASSERT_TRUE(out.success) << out.failure_reason;
  for (const int l : fx.topo.routes[0].links) {
    const TopLink& link = fx.topo.links[static_cast<std::size_t>(l)];
    EXPECT_NE(fx.topo.switches[static_cast<std::size_t>(link.src_switch)].island, 2);
    EXPECT_NE(fx.topo.switches[static_cast<std::size_t>(link.dst_switch)].island, 2);
  }
}

TEST(Router, BandwidthOrderIsDeterministic) {
  Fixture a(2);
  a.add_flow(0, 1, 1e9, 20);
  a.add_flow(1, 0, 3e9, 20);
  Fixture b(2);
  b.add_flow(0, 1, 1e9, 20);
  b.add_flow(1, 0, 3e9, 20);
  ASSERT_TRUE(route_all_flows(a.topo, a.spec, a.opts).success);
  ASSERT_TRUE(route_all_flows(b.topo, b.spec, b.opts).success);
  ASSERT_EQ(a.topo.links.size(), b.topo.links.size());
  for (std::size_t l = 0; l < a.topo.links.size(); ++l) {
    EXPECT_EQ(a.topo.links[l].src_switch, b.topo.links[l].src_switch);
    EXPECT_EQ(a.topo.links[l].dst_switch, b.topo.links[l].dst_switch);
  }
}

TEST(Router, WireTimingRejectsOverlongIntraIslandLinks) {
  // Two switches in the same island, far apart. At 400 MHz a wire may be
  // ~13.9 mm; place them 40 mm apart (unrealistic, but makes the point).
  Fixture fx(1, 0, 8);
  soc::CoreSpec c;
  c.name = "far";
  c.island = 0;
  fx.spec.cores.push_back(c);
  SwitchInst sw;
  sw.island = 0;
  sw.freq_hz = 400e6;
  sw.pos = {40.0, 0.0};
  sw.cores = {1};
  fx.topo.switches.push_back(sw);
  fx.topo.switch_of_core.push_back(1);
  fx.topo.ni_wire_mm.push_back(0.5);
  fx.opts.max_ports.assign(fx.topo.switches.size(), 8);
  fx.add_flow(0, 1, 1e9, 30);

  fx.opts.enforce_wire_timing = true;
  NocTopology strict = fx.topo;
  EXPECT_FALSE(route_all_flows(strict, fx.spec, fx.opts).success);

  fx.opts.enforce_wire_timing = false;
  NocTopology lax = fx.topo;
  EXPECT_TRUE(route_all_flows(lax, fx.spec, fx.opts).success);
}

TEST(Router, MaxPortsSizeMismatchReported) {
  Fixture fx(2);
  fx.add_flow(0, 1, 1e9, 20);
  fx.opts.max_ports.pop_back();
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  EXPECT_FALSE(out.success);
  EXPECT_NE(out.failure_reason.find("max_ports"), std::string::npos);
}

TEST(Router, MultiHopWithinIslandWhenDirectPortsRunOut) {
  // One island, three switches in a row; direct 0->2 link would exceed the
  // port cap on switch 0 after other links, forcing a 0->1->2 path. Here we
  // simply verify multi-hop intra-island routing works at all.
  Fixture fx(1, 0, 3);
  for (int i = 1; i < 3; ++i) {
    soc::CoreSpec c;
    c.name = "c" + std::to_string(i);
    c.island = 0;
    fx.spec.cores.push_back(c);
    SwitchInst sw;
    sw.island = 0;
    sw.freq_hz = 400e6;
    sw.pos = {static_cast<double>(i) * 2.0, 0.0};
    sw.cores = {static_cast<soc::CoreId>(i)};
    fx.topo.switches.push_back(sw);
    fx.topo.switch_of_core.push_back(i);
    fx.topo.ni_wire_mm.push_back(0.5);
  }
  fx.opts.max_ports.assign(fx.topo.switches.size(), 3);
  fx.add_flow(0, 1, 1e9, 30);
  fx.add_flow(1, 2, 1e9, 30);
  fx.add_flow(0, 2, 1e9, 30);
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  ASSERT_TRUE(out.success) << out.failure_reason;
  EXPECT_TRUE(fx.topo.validate(fx.spec).empty());
  // All links intra-island: no FIFOs.
  for (const TopLink& l : fx.topo.links) EXPECT_FALSE(l.crosses_island);
}

TEST(Router, LatencyInfeasibleFlowIsReportedStructurally) {
  Fixture fx(2);
  fx.add_flow(0, 1, 1e9, 30.0);  // routable
  fx.add_flow(1, 0, 2e9, 7.0);   // needs 8 cycles: infeasible
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  EXPECT_FALSE(out.success);
  EXPECT_FALSE(out.pruned);
  EXPECT_EQ(out.failed_flow, 1);  // the infeasible flow, by spec index
  EXPECT_NE(out.failure_reason.find("latency"), std::string::npos);
  EXPECT_NE(out.failure_reason.find(fx.spec.flows[1].label), std::string::npos);
}

TEST(Router, NoAdmissiblePathReportsFailedFlow) {
  // Flow exceeding every link's capacity: no admissible path anywhere.
  Fixture fx(2);
  fx.add_flow(0, 1, 20e9, 20);
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.failed_flow, 0);
  EXPECT_EQ(out.failure_reason.find("latency"), std::string::npos);
}

TEST(Router, SuccessLeavesFailedFlowUnset) {
  Fixture fx(2);
  fx.add_flow(0, 1, 1e9, 20);
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  ASSERT_TRUE(out.success) << out.failure_reason;
  EXPECT_EQ(out.failed_flow, -1);
}

TEST(Router, CrossingCountsThroughIntermediateIsland) {
  // Force the flow through the NoC VI: island0 -> intermediate -> island1
  // crosses two island boundaries, and both links carry FIFOs.
  Fixture fx(2, /*intermediate_switches=*/1);
  fx.add_flow(0, 1, 1e9, 30);
  fx.opts.forbid_direct_cross = true;
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  ASSERT_TRUE(out.success) << out.failure_reason;
  ASSERT_EQ(fx.topo.routes[0].links.size(), 2u);
  EXPECT_EQ(fx.topo.routes[0].crossings, 2);
  for (const int l : fx.topo.routes[0].links) {
    EXPECT_TRUE(fx.topo.links[static_cast<std::size_t>(l)].crosses_island);
  }
  // Latency: 2 NI links + 3 switches + 2 FIFO links = 2 + 3 + 8 = 13.
  EXPECT_DOUBLE_EQ(fx.topo.routes[0].latency_cycles, 13.0);
  EXPECT_TRUE(fx.topo.validate(fx.spec).empty());
}

TEST(Router, ZeroFlowSpecRoutesTrivially) {
  Fixture fx(2, 1);
  const RouteOutcome out = route_all_flows(fx.topo, fx.spec, fx.opts);
  ASSERT_TRUE(out.success) << out.failure_reason;
  EXPECT_EQ(out.flows_routed, 0);
  EXPECT_EQ(out.failed_flow, -1);
  EXPECT_TRUE(fx.topo.links.empty());
  EXPECT_TRUE(fx.topo.routes.empty());
  EXPECT_TRUE(fx.topo.validate(fx.spec).empty());
}

TEST(Router, SharedScratchAcrossCallsIsBitIdentical) {
  // Route two different fixtures through ONE scratch arena, interleaved with
  // fresh-scratch runs; results must match exactly (reset, not stale reuse).
  RouterScratch scratch;
  for (const int islands : {2, 3, 2, 4}) {
    Fixture shared(islands, 1);
    Fixture fresh(islands, 1);
    for (int i = 0; i + 1 < islands; ++i) {
      shared.add_flow(i, i + 1, 1e9 + i * 1e8, 30);
      fresh.add_flow(i, i + 1, 1e9 + i * 1e8, 30);
    }
    const RouteOutcome a =
        route_all_flows(shared.topo, shared.spec, shared.opts, &scratch);
    const RouteOutcome b = route_all_flows(fresh.topo, fresh.spec, fresh.opts);
    ASSERT_EQ(a.success, b.success);
    ASSERT_EQ(shared.topo.links.size(), fresh.topo.links.size());
    for (std::size_t l = 0; l < shared.topo.links.size(); ++l) {
      EXPECT_EQ(shared.topo.links[l].src_switch, fresh.topo.links[l].src_switch);
      EXPECT_EQ(shared.topo.links[l].dst_switch, fresh.topo.links[l].dst_switch);
      EXPECT_EQ(shared.topo.links[l].carried_bw_bits_per_s,
                fresh.topo.links[l].carried_bw_bits_per_s);
    }
    for (std::size_t f = 0; f < shared.topo.routes.size(); ++f) {
      EXPECT_EQ(shared.topo.routes[f].links, fresh.topo.routes[f].links);
      EXPECT_EQ(shared.topo.routes[f].latency_cycles,
                fresh.topo.routes[f].latency_cycles);
    }
  }
}

TEST(RouteLatency, FormulaMatchesHeaderDoc) {
  Fixture fx(2, 1, 8);
  fx.add_flow(0, 1, 1e9, 30);
  ASSERT_TRUE(route_all_flows(fx.topo, fx.spec, fx.opts).success);
  const models::Technology tech = models::Technology::cmos65nm();
  const FlowRoute& r = fx.topo.routes[0];
  double expected = 2.0;                              // NI links
  expected += static_cast<double>(r.links.size() + 1);  // switch pipelines
  for (const int l : r.links) {
    expected += fx.topo.links[static_cast<std::size_t>(l)].crosses_island ? 4.0 : 1.0;
  }
  EXPECT_DOUBLE_EQ(route_latency_cycles(fx.topo, r, tech), expected);
}

}  // namespace
}  // namespace vinoc::core

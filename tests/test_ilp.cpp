// Unit tests for the 0/1 branch-and-bound ILP solver.
#include <gtest/gtest.h>

#include <random>

#include "vinoc/ilp/bb_solver.hpp"
#include "vinoc/ilp/mincut_model.hpp"

namespace vinoc::ilp {
namespace {

TEST(BbSolver, UnconstrainedMinimizationTakesNegativeCosts) {
  Model m;
  m.add_var(-2.0);
  m.add_var(3.0);
  m.add_var(-0.5);
  const SolveResult r = solve(m);
  ASSERT_EQ(r.status, SolveResult::Status::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, -2.5);
  EXPECT_EQ(r.assignment[0], 1);
  EXPECT_EQ(r.assignment[1], 0);
  EXPECT_EQ(r.assignment[2], 1);
}

TEST(BbSolver, EqualityConstraintForcesSelection) {
  Model m;
  const int a = m.add_var(5.0);
  const int b = m.add_var(2.0);
  const int c = m.add_var(9.0);
  // Exactly two of the three must be picked.
  m.add_linear({a, b, c}, {1.0, 1.0, 1.0}, Sense::kEqual, 2.0);
  const SolveResult r = solve(m);
  ASSERT_EQ(r.status, SolveResult::Status::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 7.0);  // a + b
}

TEST(BbSolver, DetectsInfeasibility) {
  Model m;
  const int a = m.add_var(1.0);
  m.add_linear({a}, {1.0}, Sense::kGreaterEqual, 2.0);  // x >= 2 impossible
  const SolveResult r = solve(m);
  EXPECT_EQ(r.status, SolveResult::Status::kInfeasible);
}

TEST(BbSolver, KnapsackStyleCover) {
  // Minimize cost subject to covering weight >= 10.
  Model m;
  const int x0 = m.add_var(4.0);  // weight 6
  const int x1 = m.add_var(3.0);  // weight 5
  const int x2 = m.add_var(2.0);  // weight 5
  const int x3 = m.add_var(10.0); // weight 12
  m.add_linear({x0, x1, x2, x3}, {6.0, 5.0, 5.0, 12.0}, Sense::kGreaterEqual, 10.0);
  const SolveResult r = solve(m);
  ASSERT_EQ(r.status, SolveResult::Status::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 5.0);  // x1 + x2
}

TEST(BbSolver, WarmStartMustBeFeasibleToCount) {
  Model m;
  const int a = m.add_var(1.0);
  const int b = m.add_var(1.0);
  m.add_linear({a, b}, {1.0, 1.0}, Sense::kGreaterEqual, 1.0);
  SolveOptions opts;
  opts.warm_start = std::vector<std::uint8_t>{0, 0};  // infeasible start
  const SolveResult r = solve(m, opts);
  ASSERT_EQ(r.status, SolveResult::Status::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 1.0);
}

TEST(BbSolver, NodeLimitReported) {
  // 24 coupled variables with a tiny budget: must report the limit.
  Model m;
  std::vector<int> vars;
  for (int i = 0; i < 24; ++i) vars.push_back(m.add_var(i % 2 == 0 ? 1.0 : -1.0));
  std::vector<double> ones(vars.size(), 1.0);
  m.add_linear(vars, ones, Sense::kEqual, 12.0);
  SolveOptions opts;
  opts.max_nodes = 5;
  const SolveResult r = solve(m, opts);
  EXPECT_EQ(r.status, SolveResult::Status::kNodeLimit);
}

TEST(BbSolver, ObjectiveAndFeasibleHelpers) {
  Model m;
  const int a = m.add_var(2.0);
  const int b = m.add_var(-1.0);
  m.add_linear({a, b}, {1.0, 2.0}, Sense::kLessEqual, 2.0);
  const std::vector<std::uint8_t> x = {1, 0};
  EXPECT_DOUBLE_EQ(m.objective(x), 2.0);
  EXPECT_TRUE(m.feasible(x));
  const std::vector<std::uint8_t> y = {1, 1};
  EXPECT_FALSE(m.feasible(y));  // 1 + 2 > 2
}

TEST(BbSolver, RejectsMalformedConstraints) {
  Model m;
  m.add_var(1.0);
  EXPECT_THROW(m.add_linear({0, 1}, {1.0, 1.0}, Sense::kLessEqual, 1.0),
               std::out_of_range);
  EXPECT_THROW(m.add_linear({0}, {1.0, 2.0}, Sense::kLessEqual, 1.0),
               std::invalid_argument);
}

// Property: the solver's optimum matches brute-force enumeration on random
// small models.
class BbSolverPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BbSolverPropertyTest, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> cost_dist(-5.0, 5.0);
  std::uniform_int_distribution<int> coeff_dist(-3, 3);
  const int n = 10;
  Model m;
  for (int i = 0; i < n; ++i) m.add_var(cost_dist(rng));
  for (int c = 0; c < 4; ++c) {
    std::vector<int> vars;
    std::vector<double> coeffs;
    for (int i = 0; i < n; ++i) {
      const int a = coeff_dist(rng);
      if (a != 0) {
        vars.push_back(i);
        coeffs.push_back(static_cast<double>(a));
      }
    }
    if (vars.empty()) continue;
    m.add_linear(vars, coeffs, c % 2 == 0 ? Sense::kLessEqual : Sense::kGreaterEqual,
                 static_cast<double>(coeff_dist(rng)));
  }

  // Brute force.
  double best = std::numeric_limits<double>::infinity();
  bool any = false;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<std::uint8_t> x(n);
    for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = (mask >> i) & 1;
    if (m.feasible(x)) {
      any = true;
      best = std::min(best, m.objective(x));
    }
  }

  const SolveResult r = solve(m);
  if (!any) {
    EXPECT_EQ(r.status, SolveResult::Status::kInfeasible);
  } else {
    ASSERT_EQ(r.status, SolveResult::Status::kOptimal);
    EXPECT_NEAR(r.objective, best, 1e-9);
    EXPECT_TRUE(m.feasible(r.assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BbSolverPropertyTest,
                         ::testing::Range(100u, 112u));

TEST(OptimalBisection, SplitsTwoCliquesAtTheBridge) {
  graph::Digraph g(6);
  for (const auto& [a, b] : {std::pair{0, 1}, {1, 2}, {0, 2}}) g.add_edge(a, b, 8.0);
  for (const auto& [a, b] : {std::pair{3, 4}, {4, 5}, {3, 5}}) g.add_edge(a, b, 8.0);
  g.add_edge(2, 3, 1.0);
  const BisectionResult r = optimal_bisection(g, 3, 3);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.cut_weight, 1.0);
  EXPECT_EQ(r.side_of[0], r.side_of[1]);
  EXPECT_EQ(r.side_of[3], r.side_of[4]);
  EXPECT_NE(r.side_of[0], r.side_of[3]);
}

TEST(OptimalBisection, BalanceBoundsRespected) {
  // A star: center 0, leaves 1..5. Any bisection cuts something; with side
  // bounds [2,4] the optimum puts the centre with as many leaves as allowed.
  graph::Digraph g(6);
  for (int leaf = 1; leaf < 6; ++leaf) g.add_edge(0, leaf, 1.0);
  const BisectionResult r = optimal_bisection(g, 2, 4);
  ASSERT_TRUE(r.feasible);
  int side1 = 0;
  for (const int s : r.side_of) side1 += s;
  EXPECT_GE(side1, 2);
  EXPECT_LE(side1, 4);
  EXPECT_DOUBLE_EQ(r.cut_weight, 2.0);  // two leaves separated from centre
}

TEST(OptimalLinkChoice, PrefersSharedRelayWhenCheaper) {
  // Flows 0->2 and 1->2; direct links cost 10 each, relay (node 3) links
  // cost 2 each. Sharing the relay->2 link costs 2+2+2 = 6 < 20.
  LinkChoiceProblem prob;
  prob.node_count = 4;
  prob.links = {{0, 2, 10.0}, {1, 2, 10.0}, {0, 3, 2.0}, {1, 3, 2.0}, {3, 2, 2.0}};
  prob.flows = {{0, 2}, {1, 2}};
  prob.relays = {3};
  const LinkChoiceResult r = optimal_link_choice(prob);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.total_cost, 6.0);
  EXPECT_FALSE(r.opened[0]);
  EXPECT_FALSE(r.opened[1]);
  EXPECT_TRUE(r.opened[2]);
  EXPECT_TRUE(r.opened[3]);
  EXPECT_TRUE(r.opened[4]);
}

TEST(OptimalLinkChoice, InfeasibleWhenNoRouteExists) {
  LinkChoiceProblem prob;
  prob.node_count = 3;
  prob.links = {{0, 1, 1.0}};
  prob.flows = {{0, 2}};
  const LinkChoiceResult r = optimal_link_choice(prob);
  EXPECT_FALSE(r.feasible);
}

}  // namespace
}  // namespace vinoc::ilp

// Tests for the statistical bench harness (bench/fat_runner.hpp) and the
// perf-gate core (tools/bench_check_core.hpp): median/MAD/outlier math,
// timer-calibration batch scaling, VINOC_BENCH_* env parsing (bad values
// must produce clear errors), record parsing, and the gate's
// tolerance-violation / missing-metric / min-rep paths.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "../bench/fat_runner.hpp"
#include "../tools/bench_check_core.hpp"

namespace vinoc {
namespace {

using bench::FatConfig;
using bench::FatRunner;
using bench::Measurement;
using bench::RobustStats;

// --- Robust statistics ------------------------------------------------------

TEST(BenchStats, MedianOddEvenEmpty) {
  EXPECT_DOUBLE_EQ(bench::median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(bench::median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(bench::median_of({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(bench::median_of({}), 0.0);
}

TEST(BenchStats, MadAroundCenter) {
  // deviations from 2.0: {1, 0, 1, 2} -> sorted {0,1,1,2} -> median 1.0
  EXPECT_DOUBLE_EQ(bench::mad_of({1.0, 2.0, 3.0, 4.0}, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(bench::mad_of({}, 0.0), 0.0);
}

TEST(BenchStats, RobustStatsRejectsFarOutlier) {
  const RobustStats s =
      bench::robust_stats({1.0, 1.01, 0.99, 1.02, 0.98, 5.0});
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.n, 5);
  EXPECT_NEAR(s.median, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.max, 1.02);
  EXPECT_DOUBLE_EQ(s.min, 0.98);
}

TEST(BenchStats, ZeroMadDisablesRejection) {
  // Half the samples identical -> MAD 0 -> no dispersion estimate, so the
  // 9.0 "outlier" must be kept (dropping it would be unjustified).
  const RobustStats s = bench::robust_stats({2.0, 2.0, 2.0, 9.0});
  EXPECT_EQ(s.rejected, 0);
  EXPECT_EQ(s.n, 4);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(BenchStats, RelMadHandlesZeroMedian) {
  RobustStats s;
  s.median = 0.0;
  s.mad = 0.5;
  EXPECT_DOUBLE_EQ(s.rel_mad(), 0.0);
  s.median = -2.0;
  EXPECT_DOUBLE_EQ(s.rel_mad(), 0.25);
}

TEST(BenchStats, RateFromTimeInvertsAndScales) {
  RobustStats t;
  t.n = 5;
  t.median = 0.5;
  t.mad = 0.05;  // rel_mad 0.1
  t.min = 0.4;
  t.max = 0.8;
  const RobustStats r = bench::rate_from_time(t, 100.0);
  EXPECT_EQ(r.n, 5);
  EXPECT_DOUBLE_EQ(r.median, 200.0);
  EXPECT_NEAR(r.mad, 20.0, 1e-9);        // rel dispersion preserved
  EXPECT_DOUBLE_EQ(r.min, 100.0 / 0.8);  // slowest time -> lowest rate
  EXPECT_DOUBLE_EQ(r.max, 100.0 / 0.4);
  EXPECT_EQ(bench::rate_from_time(RobustStats{}, 100.0).n, 0);
}

TEST(BenchStats, SumStatsIsConservative) {
  RobustStats a;
  a.n = 5;
  a.median = 1.0;
  a.mad = 0.1;
  RobustStats b;
  b.n = 3;
  b.median = 2.0;
  b.mad = 0.2;
  const RobustStats s = bench::sum_stats({a, b});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.mad, 0.3, 1e-12);  // upper bound: MADs add
  EXPECT_EQ(s.n, 3);               // smallest component rep count
}

TEST(BenchStats, RatioOfPropagatesRelativeDispersion) {
  RobustStats num;
  num.n = 5;
  num.median = 3.0;
  num.mad = 0.3;  // rel 0.1
  RobustStats den;
  den.n = 4;
  den.median = 2.0;
  den.mad = 0.1;  // rel 0.05
  const RobustStats r = bench::ratio_of(num, den);
  EXPECT_DOUBLE_EQ(r.median, 1.5);
  EXPECT_NEAR(r.mad, 1.5 * 0.15, 1e-12);  // rel MADs add
  EXPECT_EQ(r.n, 4);
  EXPECT_EQ(bench::ratio_of(num, RobustStats{}).n, 0);  // zero denominator
}

TEST(BenchStats, ExactStatHasNoDispersion) {
  const RobustStats s = bench::exact_stat(42.0, 7);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
  EXPECT_EQ(s.n, 7);
}

// --- Timer calibration ------------------------------------------------------

TEST(BenchStats, CalibrationBatchScaling) {
  // Duration target already met: unchanged (loop terminates).
  EXPECT_EQ(bench::next_calibration_batch(8, 0.030, 0.020), 8);
  // Unmeasurably fast probe: aggressive 16x growth.
  EXPECT_EQ(bench::next_calibration_batch(1, 0.0, 0.020), 16);
  // 4x shortfall + 20% headroom = 4.8x.
  EXPECT_EQ(bench::next_calibration_batch(10, 0.005, 0.020), 48);
  // Tiny shortfall still grows at least 2x...
  EXPECT_EQ(bench::next_calibration_batch(10, 0.019, 0.020), 20);
  // ...and a huge shortfall is clamped to 16x per step.
  EXPECT_EQ(bench::next_calibration_batch(10, 0.0001, 0.020), 160);
  // Growth saturates at the hard batch cap.
  EXPECT_EQ(bench::next_calibration_batch(1 << 23, 0.0, 0.020), 1 << 24);
}

TEST(BenchStats, TimerResolutionIsPositiveAndSane) {
  const double res = bench::timer_resolution_s();
  EXPECT_GT(res, 0.0);
  EXPECT_LT(res, 0.1);  // a steady_clock tick is far below 100 ms anywhere
}

// --- Environment configuration ----------------------------------------------

/// Sets/unsets one VINOC_BENCH_* variable for the test scope and restores
/// the previous value on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(BenchStats, FromEnvDefaultsWhenUnset) {
  const ScopedEnv e1("VINOC_BENCH_WARMUP_RUNS", nullptr);
  const ScopedEnv e2("VINOC_BENCH_MIN_REPS", nullptr);
  const ScopedEnv e3("VINOC_BENCH_MAX_REPS", nullptr);
  const ScopedEnv e4("VINOC_BENCH_MIN_DURATION_MS", nullptr);
  const ScopedEnv e5("VINOC_BENCH_SEED", nullptr);
  FatConfig cfg;
  std::string error;
  ASSERT_TRUE(FatConfig::from_env(cfg, error)) << error;
  const FatConfig defaults;
  EXPECT_EQ(cfg.warmup_runs, defaults.warmup_runs);
  EXPECT_EQ(cfg.min_reps, defaults.min_reps);
  EXPECT_EQ(cfg.max_reps, defaults.max_reps);
  EXPECT_DOUBLE_EQ(cfg.min_duration_ms, defaults.min_duration_ms);
  EXPECT_EQ(cfg.seed, defaults.seed);
}

TEST(BenchStats, FromEnvReadsAllKnobs) {
  const ScopedEnv e1("VINOC_BENCH_WARMUP_RUNS", "2");
  const ScopedEnv e2("VINOC_BENCH_MIN_REPS", "7");
  const ScopedEnv e3("VINOC_BENCH_MAX_REPS", "21");
  const ScopedEnv e4("VINOC_BENCH_MIN_DURATION_MS", "5.5");
  const ScopedEnv e5("VINOC_BENCH_SEED", "99");
  FatConfig cfg;
  std::string error;
  ASSERT_TRUE(FatConfig::from_env(cfg, error)) << error;
  EXPECT_EQ(cfg.warmup_runs, 2);
  EXPECT_EQ(cfg.min_reps, 7);
  EXPECT_EQ(cfg.max_reps, 21);
  EXPECT_DOUBLE_EQ(cfg.min_duration_ms, 5.5);
  EXPECT_EQ(cfg.seed, 99u);
}

TEST(BenchStats, FromEnvRejectsBadValuesWithClearErrors) {
  FatConfig cfg;
  std::string error;
  {
    const ScopedEnv e("VINOC_BENCH_MIN_REPS", "abc");
    EXPECT_FALSE(FatConfig::from_env(cfg, error));
    EXPECT_NE(error.find("VINOC_BENCH_MIN_REPS"), std::string::npos) << error;
    EXPECT_NE(error.find("abc"), std::string::npos) << error;
    EXPECT_EQ(cfg.min_reps, FatConfig().min_reps);  // left at defaults
  }
  {
    const ScopedEnv e("VINOC_BENCH_MIN_REPS", "-3");  // strtoull would wrap
    EXPECT_FALSE(FatConfig::from_env(cfg, error));
    EXPECT_NE(error.find("VINOC_BENCH_MIN_REPS"), std::string::npos) << error;
  }
  {
    const ScopedEnv e("VINOC_BENCH_MIN_REPS", "0");  // must be positive
    EXPECT_FALSE(FatConfig::from_env(cfg, error));
  }
  {
    const ScopedEnv e("VINOC_BENCH_MIN_DURATION_MS", "nan");
    EXPECT_FALSE(FatConfig::from_env(cfg, error));
    EXPECT_NE(error.find("VINOC_BENCH_MIN_DURATION_MS"), std::string::npos)
        << error;
  }
  {
    const ScopedEnv lo("VINOC_BENCH_MIN_REPS", "9");
    const ScopedEnv hi("VINOC_BENCH_MAX_REPS", "3");
    EXPECT_FALSE(FatConfig::from_env(cfg, error));
    EXPECT_NE(error.find("below"), std::string::npos) << error;
  }
}

// --- FatRunner --------------------------------------------------------------

TEST(BenchStats, RunnerHonoursRepBounds) {
  FatConfig cfg;
  cfg.warmup_runs = 1;
  cfg.min_reps = 3;
  cfg.max_reps = 6;
  cfg.min_duration_ms = 0.0;  // floor stays at 1000x timer resolution
  FatRunner runner(cfg);
  int calls = 0;
  volatile double sink = 0.0;
  const Measurement m = runner.run("spin", [&] {
    ++calls;
    for (int i = 0; i < 100; ++i) sink = sink + static_cast<double>(i);
  });
  EXPECT_GE(m.batch, 1);
  EXPECT_GE(static_cast<int>(m.rep_s.size()), cfg.min_reps);
  EXPECT_LE(static_cast<int>(m.rep_s.size()), cfg.max_reps);
  EXPECT_EQ(m.stats.n + m.stats.rejected,
            static_cast<int>(m.rep_s.size()));
  EXPECT_GT(m.stats.median, 0.0);
  EXPECT_GT(calls, 0);
}

TEST(BenchStats, NoisyFlagCombinesGovernorDriftAndDispersion) {
  const FatConfig cfg;
  Measurement m;
  m.stats.median = 1.0;
  m.stats.mad = 0.01;
  m.cpu_start.governor = "performance";
  m.cpu_start.freq_khz = 3000000.0;
  m.cpu_end.freq_khz = 3000000.0;
  EXPECT_FALSE(FatRunner::is_noisy(m, cfg));
  // Unreadable /sys (container norm) is NOT noisy.
  m.cpu_start.governor = "unknown";
  m.cpu_start.freq_khz = 0.0;
  m.cpu_end.freq_khz = 0.0;
  EXPECT_FALSE(FatRunner::is_noisy(m, cfg));
  // A powersave governor is.
  m.cpu_start.governor = "powersave";
  EXPECT_TRUE(FatRunner::is_noisy(m, cfg));
  // >5% frequency drift across the timed region is.
  m.cpu_start.governor = "performance";
  m.cpu_start.freq_khz = 3000000.0;
  m.cpu_end.freq_khz = 2700000.0;
  EXPECT_TRUE(FatRunner::is_noisy(m, cfg));
  // High timing dispersion is, regardless of cpufreq.
  m.cpu_end.freq_khz = 3000000.0;
  m.stats.mad = 0.2;
  EXPECT_TRUE(FatRunner::is_noisy(m, cfg));
}

TEST(BenchStats, RecordProvenanceAppendsCanonicalFields) {
  FatConfig cfg;
  cfg.warmup_runs = 2;
  Measurement a;
  a.stats.n = 5;
  a.noisy = false;
  a.cpu_start.freq_khz = 1000.0;
  a.cpu_end.freq_khz = 1100.0;
  Measurement b;
  b.stats.n = 3;
  b.noisy = true;
  b.cpu_start.freq_khz = 1100.0;
  b.cpu_end.freq_khz = 1200.0;
  bench::RecordProvenance prov(cfg);
  prov.add(a);
  prov.add(b);
  io::JsonlWriter w;
  w.field("bench", "t");
  prov.append(w);
  std::map<std::string, std::string> obj;
  ASSERT_TRUE(io::parse_jsonl_object(w.line(), obj)) << w.line();
  EXPECT_EQ(obj.at("reps"), "3");  // smallest kept-rep count wins
  EXPECT_EQ(obj.at("warmup_runs"), "2");
  EXPECT_EQ(obj.at("noisy"), "true");  // OR over measurements
  EXPECT_EQ(std::stod(obj.at("cpu_freq_start_khz")), 1000.0);
  EXPECT_EQ(std::stod(obj.at("cpu_freq_end_khz")), 1200.0);
  EXPECT_GT(std::stod(obj.at("timer_res_ns")), 0.0);
}

TEST(BenchStats, AppendMetricEmitsMadCompanion) {
  RobustStats s;
  s.median = 12.5;
  s.mad = 0.25;
  io::JsonlWriter w;
  w.field("bench", "t");
  bench::append_metric(w, "rate_per_s", s);
  std::map<std::string, std::string> obj;
  ASSERT_TRUE(io::parse_jsonl_object(w.line(), obj)) << w.line();
  EXPECT_EQ(std::stod(obj.at("rate_per_s")), 12.5);
  EXPECT_EQ(std::stod(obj.at("rate_per_s_mad")), 0.25);
}

// --- bench_check core: parsing ----------------------------------------------

TEST(BenchGate, ObservabilityFieldClassification) {
  using benchgate::observability_field;
  EXPECT_TRUE(observability_field("eval_hotpath.candidates_per_s_mad"));
  EXPECT_TRUE(observability_field("campaign_summary.cold_s"));
  EXPECT_TRUE(observability_field("eval_hotpath.reps"));
  EXPECT_TRUE(observability_field("eval_hotpath.noisy"));
  EXPECT_TRUE(observability_field("width_sweep.timer_res_ns"));
  EXPECT_TRUE(observability_field("runtime_scaling_t2.hardware_concurrency"));
  // Rates are gate-able even though they end in "_s".
  EXPECT_FALSE(observability_field("eval_hotpath.candidates_per_s"));
  EXPECT_FALSE(observability_field("width_sweep.speedup_shared"));
  EXPECT_FALSE(observability_field("width_sweep.certified_share_rate"));
}

TEST(BenchGate, LoadBaselineParsesAnnotations) {
  std::istringstream in(
      "# header comment\n"
      "{\"metric\":\"a.rate\",\"value\":100,\"tolerance\":0.2,\"min_reps\":4}\n"
      "{\"metric\":\"a.mem\",\"value\":8,\"higher_is_better\":false}\n");
  std::vector<benchgate::BaselineMetric> metrics;
  std::vector<benchgate::BaselineComment> comments;
  ASSERT_TRUE(benchgate::load_baseline(in, "test", metrics, &comments));
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].name, "a.rate");
  EXPECT_DOUBLE_EQ(metrics[0].value, 100.0);
  EXPECT_DOUBLE_EQ(metrics[0].tolerance, 0.2);
  EXPECT_EQ(metrics[0].min_reps, 4);
  EXPECT_TRUE(metrics[0].higher_is_better);
  EXPECT_FALSE(metrics[1].higher_is_better);
  EXPECT_EQ(metrics[1].min_reps, 0);
  ASSERT_EQ(comments.size(), 1u);
  EXPECT_EQ(comments[0].before, 0u);
}

TEST(BenchGate, LoadBaselineRejectsMalformedLines) {
  std::vector<benchgate::BaselineMetric> metrics;
  {
    std::istringstream in("{\"metric\":\"a\",\"value\":\"fast\"}\n");
    EXPECT_FALSE(benchgate::load_baseline(in, "test", metrics));
  }
  {
    std::istringstream in(
        "{\"metric\":\"a\",\"value\":1,\"tolerance\":\"loose\"}\n");
    metrics.clear();
    EXPECT_FALSE(benchgate::load_baseline(in, "test", metrics));
  }
  {
    std::istringstream in("# only comments\n");
    metrics.clear();
    EXPECT_FALSE(benchgate::load_baseline(in, "test", metrics));  // empty set
  }
}

TEST(BenchGate, CollectMetricsKeysByBenchAndKeepsAllSamples) {
  std::istringstream in(
      "human-readable table line, ignored\n"
      "{\"bench\":\"b\",\"rate_per_s\":100,\"rate_per_s_mad\":2,"
      "\"cpu_model\":\"TestCPU\",\"noisy\":false}\n"
      "{\"no_bench_key\":1}\n"
      "{\"bench\":\"b\",\"rate_per_s\":110}\n");
  benchgate::CollectedMetrics got;
  benchgate::collect_metrics(in, got);
  EXPECT_DOUBLE_EQ(got.latest.at("b.rate_per_s"), 110.0);  // last wins
  ASSERT_EQ(got.samples.at("b.rate_per_s").size(), 2u);    // both kept
  EXPECT_DOUBLE_EQ(got.samples.at("b.rate_per_s")[0], 100.0);
  EXPECT_EQ(got.strings.at("cpu_model"), "TestCPU");
  EXPECT_EQ(got.latest.count("no_bench_key"), 0u);
  EXPECT_EQ(got.strings.count("noisy"), 0u);  // bools are not provenance strings
}

// --- bench_check core: the gate ---------------------------------------------

benchgate::BaselineMetric make_metric(const std::string& name, double value,
                                      double tolerance, int min_reps = 0,
                                      bool higher_is_better = true) {
  benchgate::BaselineMetric m;
  m.name = name;
  m.value = value;
  m.tolerance = tolerance;
  m.min_reps = min_reps;
  m.higher_is_better = higher_is_better;
  return m;
}

TEST(BenchGate, GatePassesWithinTolerance) {
  benchgate::CollectedMetrics current;
  current.latest["b.rate_per_s"] = 95.0;
  current.latest["b.reps"] = 5.0;
  const int failures = benchgate::run_gate(
      {make_metric("b.rate_per_s", 100.0, 0.10, 5)}, 0.25, current);
  EXPECT_EQ(failures, 0);
}

TEST(BenchGate, GateFailsOnToleranceViolation) {
  benchgate::CollectedMetrics current;
  current.latest["b.rate_per_s"] = 80.0;  // -20% against a 10% tolerance
  const int failures = benchgate::run_gate(
      {make_metric("b.rate_per_s", 100.0, 0.10)}, 0.25, current);
  EXPECT_EQ(failures, 1);
}

TEST(BenchGate, ImprovementsNeverFail) {
  benchgate::CollectedMetrics current;
  current.latest["b.rate_per_s"] = 500.0;  // 5x better
  current.latest["b.mem_mb"] = 1.0;        // lower is better: improved
  const int failures = benchgate::run_gate(
      {make_metric("b.rate_per_s", 100.0, 0.10),
       make_metric("b.mem_mb", 8.0, 0.10, 0, /*higher_is_better=*/false)},
      0.25, current);
  EXPECT_EQ(failures, 0);
}

TEST(BenchGate, LowerIsBetterFailsUpward) {
  benchgate::CollectedMetrics current;
  current.latest["b.mem_mb"] = 10.0;  // +25% against a 10% tolerance
  const int failures = benchgate::run_gate(
      {make_metric("b.mem_mb", 8.0, 0.10, 0, /*higher_is_better=*/false)},
      0.25, current);
  EXPECT_EQ(failures, 1);
}

TEST(BenchGate, GateFailsOnMissingMetric) {
  benchgate::CollectedMetrics current;
  current.latest["b.other"] = 1.0;
  const int failures = benchgate::run_gate(
      {make_metric("b.rate_per_s", 100.0, 0.10)}, 0.25, current);
  EXPECT_EQ(failures, 1);
}

TEST(BenchGate, GateEnforcesMinReps) {
  benchgate::CollectedMetrics current;
  current.latest["b.rate_per_s"] = 100.0;
  // reps field absent entirely -> FAIL(no-reps).
  EXPECT_EQ(benchgate::run_gate({make_metric("b.rate_per_s", 100.0, 0.10, 5)},
                                0.25, current),
            1);
  // reps below the floor -> FAIL(reps), even though the value is fine.
  current.latest["b.reps"] = 2.0;
  EXPECT_EQ(benchgate::run_gate({make_metric("b.rate_per_s", 100.0, 0.10, 5)},
                                0.25, current),
            1);
  current.latest["b.reps"] = 5.0;
  EXPECT_EQ(benchgate::run_gate({make_metric("b.rate_per_s", 100.0, 0.10, 5)},
                                0.25, current),
            0);
}

// --- bench_check core: noise report -----------------------------------------

TEST(BenchGate, NoiseReportFailsWhenDispersionExceedsBudget) {
  benchgate::CollectedMetrics current;
  // Cross-run dispersion: median 100, deviations {20,0,20} -> 20% rel MAD
  // against a 10% budget.
  current.samples["b.rate_per_s"] = {80.0, 100.0, 120.0};
  EXPECT_EQ(benchgate::run_noise_report(
                {make_metric("b.rate_per_s", 100.0, 0.10)}, 0.25, current),
            1);
  // Quiet samples with a quiet within-run MAD pass.
  current.samples["b.rate_per_s"] = {99.0, 100.0, 101.0};
  current.samples["b.rate_per_s_mad"] = {1.0, 1.0, 1.0};
  EXPECT_EQ(benchgate::run_noise_report(
                {make_metric("b.rate_per_s", 100.0, 0.10)}, 0.25, current),
            0);
}

TEST(BenchGate, NoiseReportFailsWithoutDispersionData) {
  benchgate::CollectedMetrics current;
  current.samples["b.rate_per_s"] = {100.0};  // one run, no _mad companion
  EXPECT_EQ(benchgate::run_noise_report(
                {make_metric("b.rate_per_s", 100.0, 0.10)}, 0.25, current),
            1);
  // A deterministic counter stuck at 0 across runs is perfectly quiet,
  // not no-data.
  current.samples["b.shared_evals"] = {0.0, 0.0, 0.0};
  current.samples["b.shared_evals_mad"] = {0.0};
  EXPECT_EQ(benchgate::run_noise_report(
                {make_metric("b.shared_evals", 0.0, 0.25)}, 0.25, current),
            0);
}

// --- bench_check core: baseline writer --------------------------------------

TEST(BenchGate, WriteBaselineRefreshesAndStampsProvenance) {
  std::vector<benchgate::BaselineMetric> baseline = {
      make_metric("b.rate_per_s", 100.0, 0.10, 4),
      make_metric("b.full_only", 7.0, 0.25)};
  const std::vector<benchgate::BaselineComment> comments = {
      {0, "# refreshed-by: commit deadbeef"},  // stale stamp: must be dropped
      {0, "# gate block"},
      {2, "# trailing"}};
  benchgate::CollectedMetrics current;
  current.latest["b.rate_per_s"] = 123.0;
  current.latest["b.rate_per_s_mad"] = 1.0;  // observability: never drift
  current.strings["cpu_model"] = "TestCPU";
  current.strings["compiler"] = "g++ 13";
  std::ostringstream out;
  ASSERT_EQ(benchgate::write_baseline(out, "test", comments, baseline, current,
                                      "abc123", /*append_new=*/false),
            0);
  const std::string text = out.str();
  EXPECT_NE(text.find("# refreshed-by: commit abc123"), std::string::npos)
      << text;
  EXPECT_NE(text.find("TestCPU"), std::string::npos) << text;
  EXPECT_NE(text.find("# gate block"), std::string::npos) << text;
  EXPECT_NE(text.find("# trailing"), std::string::npos) << text;
  EXPECT_EQ(text.find("deadbeef"), std::string::npos) << text;  // one stamp only
  // Measured metric refreshed, annotations kept; absent metric kept as-is.
  EXPECT_NE(text.find("{\"metric\":\"b.rate_per_s\",\"value\":123,"
                      "\"tolerance\":0.1,\"min_reps\":4}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("{\"metric\":\"b.full_only\",\"value\":7"),
            std::string::npos)
      << text;
}

TEST(BenchGate, WriteBaselineHardFailsOnUnknownGateableMetric) {
  const std::vector<benchgate::BaselineMetric> baseline = {
      make_metric("b.rate_per_s", 100.0, 0.10)};
  benchgate::CollectedMetrics current;
  current.latest["b.rate_per_s"] = 100.0;
  current.latest["b.new_rate_per_s"] = 50.0;  // gate-able, not in baseline
  std::ostringstream out;
  EXPECT_EQ(benchgate::write_baseline(out, "test", {}, baseline, current, "c",
                                      /*append_new=*/false),
            1);
  // With --append-new the unknown metric lands with conservative defaults.
  std::ostringstream out2;
  ASSERT_EQ(benchgate::write_baseline(out2, "test", {}, baseline, current, "c",
                                      /*append_new=*/true),
            0);
  EXPECT_NE(out2.str().find("{\"metric\":\"b.new_rate_per_s\",\"value\":50,"
                            "\"tolerance\":0.9}"),
            std::string::npos)
      << out2.str();
}

TEST(BenchGate, WrittenBaselineRoundTrips) {
  const std::vector<benchgate::BaselineMetric> baseline = {
      make_metric("b.rate_per_s", 100.0, 0.10, 4),
      make_metric("b.mem_mb", 8.0, 0.25, 0, /*higher_is_better=*/false)};
  benchgate::CollectedMetrics current;
  current.latest["b.rate_per_s"] = 110.0;
  current.latest["b.mem_mb"] = 7.5;
  std::ostringstream out;
  ASSERT_EQ(benchgate::write_baseline(out, "test", {}, baseline, current, "c",
                                      false),
            0);
  std::istringstream in(out.str());
  std::vector<benchgate::BaselineMetric> reread;
  ASSERT_TRUE(benchgate::load_baseline(in, "roundtrip", reread));
  ASSERT_EQ(reread.size(), 2u);
  EXPECT_DOUBLE_EQ(reread[0].value, 110.0);
  EXPECT_EQ(reread[0].min_reps, 4);
  EXPECT_DOUBLE_EQ(reread[1].value, 7.5);
  EXPECT_FALSE(reread[1].higher_is_better);
}

}  // namespace
}  // namespace vinoc

// Determinism tests for the staged parallel exploration engine: synthesize()
// and explore_link_widths() must produce IDENTICAL results (design points,
// Pareto fronts, stats counters) for every thread count. Candidates are
// evaluated independently and merged in enumeration order, so this holds
// bit-for-bit, which is what the exact double comparisons below assert.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "vinoc/core/candidates.hpp"
#include "vinoc/core/explore.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::core {
namespace {

/// Multi-island spec exercising the full engine: cross-island flows (so the
/// intermediate-VI inner loop is live) over several islands.
soc::SocSpec multi_island_spec(int cores = 16, int islands = 4) {
  soc::SyntheticParams params;
  params.cores = cores;
  params.hubs = std::max(1, cores / 8);
  params.seed = 17;
  const soc::Benchmark bm = soc::make_synthetic_soc(params);
  return soc::with_logical_islands(bm.soc, islands, bm.use_cases);
}

void expect_same_metrics(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.noc_dynamic_w, b.noc_dynamic_w);
  EXPECT_EQ(a.switch_dynamic_w, b.switch_dynamic_w);
  EXPECT_EQ(a.link_dynamic_w, b.link_dynamic_w);
  EXPECT_EQ(a.ni_dynamic_w, b.ni_dynamic_w);
  EXPECT_EQ(a.fifo_dynamic_w, b.fifo_dynamic_w);
  EXPECT_EQ(a.noc_leakage_w, b.noc_leakage_w);
  EXPECT_EQ(a.noc_area_mm2, b.noc_area_mm2);
  EXPECT_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
  EXPECT_EQ(a.max_latency_cycles, b.max_latency_cycles);
  EXPECT_EQ(a.total_wire_mm, b.total_wire_mm);
  EXPECT_EQ(a.switch_count, b.switch_count);
  EXPECT_EQ(a.link_count, b.link_count);
  EXPECT_EQ(a.fifo_count, b.fifo_count);
  EXPECT_EQ(a.max_switch_ports, b.max_switch_ports);
}

void expect_same_topology(const NocTopology& a, const NocTopology& b) {
  ASSERT_EQ(a.switches.size(), b.switches.size());
  for (std::size_t s = 0; s < a.switches.size(); ++s) {
    EXPECT_EQ(a.switches[s].island, b.switches[s].island);
    EXPECT_EQ(a.switches[s].freq_hz, b.switches[s].freq_hz);
    EXPECT_EQ(a.switches[s].pos.x_mm, b.switches[s].pos.x_mm);
    EXPECT_EQ(a.switches[s].pos.y_mm, b.switches[s].pos.y_mm);
    EXPECT_EQ(a.switches[s].cores, b.switches[s].cores);
  }
  EXPECT_EQ(a.switch_of_core, b.switch_of_core);
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t l = 0; l < a.links.size(); ++l) {
    EXPECT_EQ(a.links[l].src_switch, b.links[l].src_switch);
    EXPECT_EQ(a.links[l].dst_switch, b.links[l].dst_switch);
    EXPECT_EQ(a.links[l].crosses_island, b.links[l].crosses_island);
    EXPECT_EQ(a.links[l].length_mm, b.links[l].length_mm);
    EXPECT_EQ(a.links[l].carried_bw_bits_per_s, b.links[l].carried_bw_bits_per_s);
    EXPECT_EQ(a.links[l].flows, b.links[l].flows);
  }
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t f = 0; f < a.routes.size(); ++f) {
    EXPECT_EQ(a.routes[f].src_switch, b.routes[f].src_switch);
    EXPECT_EQ(a.routes[f].dst_switch, b.routes[f].dst_switch);
    EXPECT_EQ(a.routes[f].links, b.routes[f].links);
    EXPECT_EQ(a.routes[f].latency_cycles, b.routes[f].latency_cycles);
    EXPECT_EQ(a.routes[f].crossings, b.routes[f].crossings);
  }
  EXPECT_EQ(a.ni_wire_mm, b.ni_wire_mm);
}

void expect_same_result(const SynthesisResult& a, const SynthesisResult& b) {
  // Stats counters must match exactly (elapsed_seconds excepted — it is the
  // one field that legitimately depends on the thread count).
  EXPECT_EQ(a.stats.configs_explored, b.stats.configs_explored);
  EXPECT_EQ(a.stats.configs_routed, b.stats.configs_routed);
  EXPECT_EQ(a.stats.configs_saved, b.stats.configs_saved);
  EXPECT_EQ(a.stats.rejected_unroutable, b.stats.rejected_unroutable);
  EXPECT_EQ(a.stats.rejected_latency, b.stats.rejected_latency);
  EXPECT_EQ(a.stats.rejected_duplicate, b.stats.rejected_duplicate);
  EXPECT_EQ(a.stats.rejected_deadlock, b.stats.rejected_deadlock);
  EXPECT_EQ(a.stats.rejected_pruned, b.stats.rejected_pruned);

  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].switches_per_island, b.points[i].switches_per_island);
    EXPECT_EQ(a.points[i].intermediate_switches, b.points[i].intermediate_switches);
    expect_same_metrics(a.points[i].metrics, b.points[i].metrics);
    expect_same_topology(a.points[i].topology, b.points[i].topology);
  }
  EXPECT_EQ(a.pareto, b.pareto);
}

TEST(ExploreParallel, SynthesizeIsDeterministicAcrossThreadCounts) {
  const soc::SocSpec spec = multi_island_spec();
  SynthesisOptions seq;
  seq.threads = 1;
  const SynthesisResult base = synthesize(spec, seq);
  ASSERT_FALSE(base.points.empty());

  for (const int threads : {2, 4, 8}) {
    SynthesisOptions par = seq;
    par.threads = threads;
    const SynthesisResult r = synthesize(spec, par);
    expect_same_result(base, r);
  }
}

TEST(ExploreParallel, ThreadsZeroMeansHardwareAndStaysDeterministic) {
  const soc::SocSpec spec = multi_island_spec(12, 3);
  SynthesisOptions seq;
  seq.threads = 1;
  SynthesisOptions hw;
  hw.threads = 0;  // hardware concurrency
  expect_same_result(synthesize(spec, seq), synthesize(spec, hw));
}

TEST(ExploreParallel, WidthSweepIsDeterministicAcrossThreadCounts) {
  const soc::SocSpec spec = multi_island_spec(12, 3);
  const std::vector<int> widths = {16, 32, 64};

  SynthesisOptions seq;
  seq.threads = 1;
  const WidthSweepResult base = explore_link_widths(spec, widths, seq);

  SynthesisOptions par;
  par.threads = 4;
  const WidthSweepResult r = explore_link_widths(spec, widths, par);

  ASSERT_EQ(base.entries.size(), r.entries.size());
  for (std::size_t e = 0; e < base.entries.size(); ++e) {
    EXPECT_EQ(base.entries[e].width_bits, r.entries[e].width_bits);
    EXPECT_EQ(base.entries[e].feasible, r.entries[e].feasible);
    if (base.entries[e].feasible) {
      expect_same_result(base.entries[e].result, r.entries[e].result);
    }
  }
  ASSERT_EQ(base.pareto.size(), r.pareto.size());
  for (std::size_t i = 0; i < base.pareto.size(); ++i) {
    EXPECT_EQ(base.pareto[i].entry, r.pareto[i].entry);
    EXPECT_EQ(base.pareto[i].point, r.pareto[i].point);
  }
}

TEST(ExploreParallel, ProgressCallbackCoversEveryCandidate) {
  const soc::SocSpec spec = multi_island_spec(12, 3);
  SynthesisOptions options;
  options.threads = 4;
  std::atomic<int> calls{0};
  std::size_t last_completed = 0;
  std::size_t reported_total = 0;
  options.on_progress = [&](const SynthesisProgress& p) {
    // Serialised by the engine's progress mutex: completed must be strictly
    // monotonic and end exactly at total.
    calls.fetch_add(1);
    EXPECT_EQ(p.completed, last_completed + 1);
    last_completed = p.completed;
    reported_total = p.total;
  };
  const SynthesisResult r = synthesize(spec, options);
  EXPECT_EQ(calls.load(), r.stats.configs_explored);
  EXPECT_EQ(last_completed, reported_total);
  EXPECT_EQ(static_cast<int>(reported_total), r.stats.configs_explored);
}

TEST(ExploreParallel, EnumerationMatchesStatsAndIsPure) {
  const soc::SocSpec spec = multi_island_spec();
  SynthesisOptions options;
  const auto params = derive_island_params(spec, options.tech,
                                           options.link_width_bits,
                                           options.port_reserve);
  const std::vector<CandidateConfig> cands =
      enumerate_candidates(spec, params, options);
  ASSERT_FALSE(cands.empty());
  // Enumeration is pure: same inputs, same list.
  const std::vector<CandidateConfig> again =
      enumerate_candidates(spec, params, options);
  ASSERT_EQ(cands.size(), again.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    EXPECT_EQ(cands[i].switches_per_island, again[i].switches_per_island);
    EXPECT_EQ(cands[i].intermediate_switches, again[i].intermediate_switches);
  }
  // The engine explores exactly the enumerated candidates.
  const SynthesisResult r = synthesize(spec, options);
  EXPECT_EQ(r.stats.configs_explored, static_cast<int>(cands.size()));
}

TEST(ExploreParallel, InfeasibleWidthIsRecordedButSpecErrorsPropagate) {
  const soc::SocSpec spec = multi_island_spec(12, 3);
  // Width 1 bit forces NI links beyond any attainable switch frequency for
  // at least one island on this spec -> recorded as infeasible, not thrown.
  const WidthSweepResult sweep = explore_link_widths(spec, {1, 32});
  ASSERT_EQ(sweep.entries.size(), 2u);
  EXPECT_FALSE(sweep.entries[0].feasible);
  EXPECT_TRUE(sweep.entries[1].feasible);

  // A genuinely invalid option set must propagate out of the sweep instead
  // of being silently recorded as infeasible (the narrowed catch).
  SynthesisOptions bad;
  bad.alpha = 2.0;
  EXPECT_THROW((void)explore_link_widths(spec, {32}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace vinoc::core

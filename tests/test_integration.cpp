// Cross-module integration tests: the full pipeline from benchmark spec to
// synthesized topology, simulation, power gating, and export — the flows the
// paper's experiments exercise.
#include <gtest/gtest.h>

#include "vinoc/core/shutdown_safety.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/io/exports.hpp"
#include "vinoc/io/spec_format.hpp"
#include "vinoc/power/gating.hpp"
#include "vinoc/sim/simulator.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc {
namespace {

// ---- Figure 2/3 trends, asserted as tests ---------------------------------

TEST(PaperTrends, LogicalPartitioningPaysCrossingOverheadAtManyIslands) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  core::SynthesisOptions options;
  const auto power_at = [&](int k) {
    const soc::SocSpec spec = soc::with_logical_islands(d26.soc, k, d26.use_cases);
    const core::SynthesisResult r = core::synthesize(spec, options);
    EXPECT_FALSE(r.points.empty()) << "k=" << k;
    return r.points.empty() ? 0.0
                            : r.best_power().metrics.paper_noc_dynamic_w();
  };
  const double ref = power_at(1);
  const double at7 = power_at(7);
  const double at26 = power_at(26);
  // Paper Fig. 2: logical partitioning costs more than the reference at high
  // island counts, and the all-singleton design is the most expensive.
  EXPECT_GT(at7, ref * 1.02);
  EXPECT_GT(at26, ref * 1.10);
}

TEST(PaperTrends, CommunicationPartitioningBeatsLogical) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  core::SynthesisOptions options;
  for (const int k : {3, 4, 5, 6}) {
    const core::SynthesisResult log_r = core::synthesize(
        soc::with_logical_islands(d26.soc, k, d26.use_cases), options);
    const core::SynthesisResult com_r = core::synthesize(
        soc::with_communication_islands(d26.soc, k, d26.use_cases), options);
    ASSERT_FALSE(log_r.points.empty());
    ASSERT_FALSE(com_r.points.empty());
    EXPECT_LT(com_r.best_power().metrics.paper_noc_dynamic_w(),
              log_r.best_power().metrics.paper_noc_dynamic_w())
        << "k=" << k;
  }
}

TEST(PaperTrends, LatencyRisesWithIslandCount) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  core::SynthesisOptions options;
  const auto latency_at = [&](int k) {
    const soc::SocSpec spec = soc::with_logical_islands(d26.soc, k, d26.use_cases);
    const core::SynthesisResult r = core::synthesize(spec, options);
    EXPECT_FALSE(r.points.empty());
    return r.points.empty() ? 0.0 : r.best_power().metrics.avg_latency_cycles;
  };
  const double l1 = latency_at(1);
  const double l7 = latency_at(7);
  const double l26 = latency_at(26);
  EXPECT_LT(l1, 5.0);       // paper: ~3.2 cycles at one island
  EXPECT_GT(l7, l1);        // rises with crossings
  EXPECT_GE(l26, 8.0 - 1e-9);  // every flow pays the 4-cycle converter
  EXPECT_GT(l26, l1 * 1.5);    // roughly doubles, as in Fig. 3
}

// ---- Overhead and savings claims ------------------------------------------

TEST(PaperClaims, ShutdownSupportOverheadIsSmall) {
  // VI-aware NoC vs. shutdown-oblivious baseline on D26: the extra dynamic
  // power must be a few percent of total SoC dynamic power (paper: ~3%).
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  core::SynthesisOptions options;
  const core::SynthesisResult base = core::synthesize(
      soc::with_logical_islands(d26.soc, 1, d26.use_cases), options);
  const core::SynthesisResult vi = core::synthesize(
      soc::with_logical_islands(d26.soc, 6, d26.use_cases), options);
  ASSERT_FALSE(base.points.empty());
  ASSERT_FALSE(vi.points.empty());
  const double soc_dyn = d26.soc.total_core_dynamic_w() +
                         base.best_power().metrics.noc_dynamic_w;
  const double overhead = (vi.best_power().metrics.noc_dynamic_w -
                           base.best_power().metrics.noc_dynamic_w) /
                          soc_dyn;
  EXPECT_GE(overhead, -0.01);
  EXPECT_LE(overhead, 0.06);  // "a 3% overhead" — allow 0..6%
}

TEST(PaperClaims, AreaOverheadUnderOnePercent) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  core::SynthesisOptions options;
  const core::SynthesisResult base = core::synthesize(
      soc::with_logical_islands(d26.soc, 1, d26.use_cases), options);
  const core::SynthesisResult vi = core::synthesize(
      soc::with_logical_islands(d26.soc, 6, d26.use_cases), options);
  ASSERT_FALSE(base.points.empty());
  ASSERT_FALSE(vi.points.empty());
  const double soc_area = d26.soc.total_core_area_mm2() +
                          base.best_power().metrics.noc_area_mm2;
  const double overhead = (vi.best_power().metrics.noc_area_mm2 -
                           base.best_power().metrics.noc_area_mm2) /
                          soc_area;
  EXPECT_LE(overhead, 0.01);  // paper: < 0.5%; we allow < 1%
}

// ---- Full pipeline ----------------------------------------------------------

TEST(Pipeline, SpecTextToTopologyToSimulationToGating) {
  // Round-trip the D26 spec through the text format, synthesize, simulate,
  // evaluate gating, export everything — nothing may throw or disagree.
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec orig = soc::with_logical_islands(d26.soc, 5, d26.use_cases);

  const std::string text = io::write_soc_spec(orig);
  const io::ParseResult parsed = io::parse_soc_spec_string(text);
  ASSERT_TRUE(parsed.ok) << (parsed.errors.empty()
                                 ? "?"
                                 : parsed.errors.front().message);

  core::SynthesisOptions options;
  const core::SynthesisResult result = core::synthesize(parsed.spec, options);
  ASSERT_FALSE(result.points.empty());
  const core::DesignPoint& best = result.best_power();

  EXPECT_TRUE(best.topology.validate(parsed.spec).empty());
  EXPECT_TRUE(core::verify_shutdown_safety(best.topology, parsed.spec).empty());

  sim::SimOptions sopts;
  sopts.duration_cycles = 20'000;
  sopts.warmup_cycles = 2'000;
  const sim::SimReport sr =
      sim::simulate(best.topology, parsed.spec, options.tech, sopts);
  EXPECT_FALSE(sr.saturated);
  EXPECT_GT(sr.packets_delivered, 0);

  const power::ShutdownReport pr =
      power::evaluate_shutdown_savings(parsed.spec, best.topology, options.tech);
  EXPECT_GT(pr.saved_fraction, 0.0);

  EXPECT_FALSE(io::topology_to_dot(best.topology, parsed.spec).empty());
  EXPECT_FALSE(
      io::floorplan_to_svg(result.floorplan, parsed.spec, &best.topology).empty());
  EXPECT_FALSE(io::design_points_to_csv(result).empty());
}

TEST(Pipeline, AllNamedBenchmarksSynthesizeAtSeveralIslandings) {
  for (const soc::Benchmark& bm : soc::all_benchmarks()) {
    for (const int k : {1, 4}) {
      const soc::SocSpec spec = soc::with_logical_islands(bm.soc, k, bm.use_cases);
      const core::SynthesisResult r = core::synthesize(spec);
      ASSERT_FALSE(r.points.empty()) << bm.soc.name << " k=" << k;
      EXPECT_TRUE(core::verify_shutdown_safety(r.best_power().topology, spec).empty())
          << bm.soc.name << " k=" << k;
    }
  }
}

TEST(Pipeline, SyntheticGeneratorFeedsSynthesis) {
  soc::SyntheticParams params;
  params.cores = 28;
  params.hubs = 3;
  params.seed = 21;
  const soc::Benchmark bm = soc::make_synthetic_soc(params);
  const soc::SocSpec spec = soc::with_communication_islands(bm.soc, 5, bm.use_cases);
  const core::SynthesisResult r = core::synthesize(spec);
  ASSERT_FALSE(r.points.empty());
  EXPECT_TRUE(core::verify_shutdown_safety(r.best_power().topology, spec).empty());
}

}  // namespace
}  // namespace vinoc

// Canonical spec hashing: value-identical inputs hash equal, every
// result-affecting single-field perturbation re-keys the job, wall-clock
// knobs do not, and a cache hit hands back a bit-identical SynthesisResult.
#include <gtest/gtest.h>

#include <memory>

#include "vinoc/campaign/result_cache.hpp"
#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::campaign {
namespace {

soc::SocSpec small_spec() {
  const soc::Benchmark bench = soc::make_d16_auto_soc();
  return soc::with_logical_islands(bench.soc, 3, bench.use_cases);
}

TEST(SpecHash, IdenticalInputsHashEqual) {
  const soc::SocSpec a = small_spec();
  const soc::SocSpec b = small_spec();
  const core::SynthesisOptions opt;
  EXPECT_EQ(hash_soc_spec(a), hash_soc_spec(b));
  EXPECT_EQ(job_key(a, opt), job_key(b, opt));
}

TEST(SpecHash, FlowBandwidthPerturbationChangesHash) {
  const soc::SocSpec base = small_spec();
  soc::SocSpec tweaked = base;
  tweaked.flows[0].bandwidth_bits_per_s += 1.0;
  EXPECT_NE(hash_soc_spec(base), hash_soc_spec(tweaked));
}

TEST(SpecHash, IslandAssignmentPerturbationChangesHash) {
  const soc::SocSpec base = small_spec();
  soc::SocSpec tweaked = base;
  tweaked.cores[0].island = (tweaked.cores[0].island + 1) %
                            static_cast<int>(tweaked.islands.size());
  EXPECT_NE(hash_soc_spec(base), hash_soc_spec(tweaked));
}

TEST(SpecHash, ShutdownFlagAndScenarioPerturbationsChangeHash) {
  const soc::SocSpec base = small_spec();
  soc::SocSpec flag = base;
  flag.islands[0].can_shutdown = !flag.islands[0].can_shutdown;
  EXPECT_NE(hash_soc_spec(base), hash_soc_spec(flag));
  ASSERT_FALSE(base.scenarios.empty());
  soc::SocSpec scen = base;
  scen.scenarios[0].time_fraction *= 0.5;
  EXPECT_NE(hash_soc_spec(base), hash_soc_spec(scen));
}

TEST(SpecHash, OptionPerturbationsChangeKey) {
  const soc::SocSpec spec = small_spec();
  const core::SynthesisOptions base;
  const std::uint64_t base_key = job_key(spec, base);

  core::SynthesisOptions width = base;
  width.link_width_bits = 64;
  EXPECT_NE(base_key, job_key(spec, width));

  core::SynthesisOptions alpha = base;
  alpha.alpha += 0.01;
  EXPECT_NE(base_key, job_key(spec, alpha));

  core::SynthesisOptions seed = base;
  seed.partition_seed += 1;
  EXPECT_NE(base_key, job_key(spec, seed));

  core::SynthesisOptions deadlock = base;
  deadlock.enforce_deadlock_freedom = !deadlock.enforce_deadlock_freedom;
  EXPECT_NE(base_key, job_key(spec, deadlock));

  core::SynthesisOptions tech = base;
  tech.tech.fifo_latency_cycles += 1;
  EXPECT_NE(base_key, job_key(spec, tech));
}

TEST(SpecHash, WallClockKnobsDoNotChangeKey) {
  const soc::SocSpec spec = small_spec();
  const core::SynthesisOptions base;
  core::SynthesisOptions threaded = base;
  threaded.threads = 8;
  threaded.on_progress = [](const core::SynthesisProgress&) {};
  EXPECT_EQ(job_key(spec, base), job_key(spec, threaded));
}

TEST(SpecHash, KeyHexRoundTrips) {
  const std::uint64_t key = 0x0123456789abcdefull;
  EXPECT_EQ(key_hex(key), "0123456789abcdef");
  std::uint64_t back = 0;
  ASSERT_TRUE(key_from_hex(key_hex(key), back));
  EXPECT_EQ(back, key);
  EXPECT_FALSE(key_from_hex("123", back));
  EXPECT_FALSE(key_from_hex("0123456789abcdeg", back));
}

TEST(SpecHash, CacheHitReturnsBitIdenticalResult) {
  const soc::SocSpec spec = small_spec();
  core::SynthesisOptions opt;
  opt.threads = 1;
  const std::uint64_t key = job_key(spec, opt);

  auto first = std::make_shared<core::SynthesisResult>(
      core::synthesize(spec, opt));
  ResultCache cache;
  cache.put_result(key, first);

  // The hit IS the stored object — bit-identical by construction.
  const auto hit = cache.find_result(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), first.get());

  // And an independent recomputation fingerprints identically (synthesis is
  // deterministic), so serving the cached object loses nothing.
  const core::SynthesisResult second = core::synthesize(spec, opt);
  EXPECT_EQ(result_fingerprint(*hit), result_fingerprint(second));

  EXPECT_EQ(cache.find_result(key ^ 1), nullptr);
}

TEST(SpecHash, PerturbedSyntheticParamsChangeSpecHash) {
  soc::SyntheticParams params;
  params.cores = 9;
  params.hubs = 2;
  const soc::SyntheticParams variant =
      soc::perturb_synthetic_params(params, 1);
  EXPECT_NE(hash_soc_spec(soc::make_synthetic_soc(params).soc),
            hash_soc_spec(soc::make_synthetic_soc(variant).soc));
  // Perturbation is pure: the same (base, variant) yields the same params.
  const soc::SyntheticParams again = soc::perturb_synthetic_params(params, 1);
  EXPECT_EQ(variant.seed, again.seed);
  EXPECT_EQ(variant.flows_per_core, again.flows_per_core);
  EXPECT_EQ(variant.hub_bw_lo, again.hub_bw_lo);
  // variant 0 is the base itself.
  const soc::SyntheticParams zero = soc::perturb_synthetic_params(params, 0);
  EXPECT_EQ(zero.seed, params.seed);
  EXPECT_EQ(zero.flows_per_core, params.flows_per_core);
}

}  // namespace
}  // namespace vinoc::campaign

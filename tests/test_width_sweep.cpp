// Sweep-structured evaluation (the two-phase width sweep): bit-identity of
// explore_link_widths() / synthesize_width_set() against per-width
// synthesize() for every thread count and both prune settings, sound
// fallback when routing is width-dependent, true structure sharing when the
// widths' derived frequencies coincide, path-level route-equivalence
// certificates (near-tie trace flips share; genuine divergences don't),
// same-decision divergence cohorts, SIMD-vs-scalar relaxation-filter
// bit-identity, the streaming per-width merge's buffer cap, sweep-global
// progress reporting, and the flat PartitionTable container.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <vector>

#include "vinoc/core/router.hpp"

#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/candidates.hpp"
#include "vinoc/core/explore.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/core/width_eval.hpp"
#include "vinoc/exec/thread_pool.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::core {
namespace {

soc::SocSpec multi_island_spec(int cores = 16, int islands = 4) {
  soc::SyntheticParams params;
  params.cores = cores;
  params.hubs = std::max(1, cores / 8);
  params.seed = 17;
  const soc::Benchmark bm = soc::make_synthetic_soc(params);
  return soc::with_logical_islands(bm.soc, islands, bm.use_cases);
}

/// Spec whose island frequencies snap to the SAME grid point at every
/// sweep width (bandwidths far below the grid floor), so the lockstep's
/// per-decision verification can actually succeed and structures are
/// genuinely shared across widths.
soc::SocSpec low_bandwidth_spec() {
  soc::SocSpec spec = multi_island_spec();
  for (soc::Flow& f : spec.flows) f.bandwidth_bits_per_s /= 512.0;
  return spec;
}

std::uint64_t fp(const SynthesisResult& r) {
  return campaign::result_fingerprint(r);
}

/// Solo fingerprint at one width; 0 for an infeasible width.
std::uint64_t solo_fp(const soc::SocSpec& spec, SynthesisOptions opt, int width) {
  opt.link_width_bits = width;
  try {
    return fp(synthesize(spec, opt));
  } catch (const InfeasibleWidthError&) {
    return 0;
  }
}

TEST(WidthSweep, BitIdenticalToPerWidthSynthesizeForThreadsAndPrune) {
  // Two specs: one whose widths diverge (fallback/resume path) and one
  // whose frequencies coincide (shared-materialisation/replay path), so
  // the threads x prune matrix covers BOTH evaluation paths.
  for (const soc::SocSpec& spec :
       {multi_island_spec(12, 3), low_bandwidth_spec()}) {
  const std::vector<int> widths = {8, 16, 32, 64, 128};
  for (const bool prune : {true, false}) {
    // The solo reference is thread-count independent (synthesize()'s
    // guarantee, enforced elsewhere); compute it once at threads == 1.
    SynthesisOptions ref_opt;
    ref_opt.threads = 1;
    ref_opt.prune = prune;
    std::vector<std::uint64_t> ref;
    for (const int w : widths) ref.push_back(solo_fp(spec, ref_opt, w));

    for (const int threads : {1, 4}) {
      SynthesisOptions opt;
      opt.threads = threads;
      opt.prune = prune;
      const WidthSweepResult sweep = explore_link_widths(spec, widths, opt);
      ASSERT_EQ(sweep.entries.size(), widths.size());
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const WidthSweepEntry& e = sweep.entries[i];
        EXPECT_EQ(e.width_bits, widths[i]);
        if (ref[i] == 0) {
          EXPECT_FALSE(e.feasible) << "width " << widths[i];
        } else {
          ASSERT_TRUE(e.feasible) << "width " << widths[i];
          EXPECT_EQ(fp(e.result), ref[i])
              << "width " << widths[i] << " threads " << threads << " prune "
              << prune;
        }
      }
    }
  }
  }
}

TEST(WidthSweep, WidthDependentRoutingFallsBackSoundly) {
  // The seed benchmarks snap to DIFFERENT frequencies per width, so the
  // lockstep's decision verification diverges (the opening costs shift) and
  // the sweep must take the sound per-width fallback — while every entry
  // stays bit-identical to the solo run.
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 4, d26.use_cases);
  const std::vector<int> widths = {32, 64, 128};
  SynthesisOptions opt;
  exec::ThreadPool pool(1);
  EvalScratchPool scratch;
  WidthSetStats stats;
  const std::vector<WidthSweepEntry> entries =
      synthesize_width_set(spec, widths, opt, pool, scratch, &stats);
  EXPECT_GT(stats.fallback_evals, 0);  // width-dependent candidates detected
  for (std::size_t i = 0; i < widths.size(); ++i) {
    ASSERT_TRUE(entries[i].feasible);
    EXPECT_EQ(fp(entries[i].result), solo_fp(spec, opt, widths[i]));
  }
}

TEST(WidthSweep, SharesStructuresWhenFrequenciesCoincide) {
  const soc::SocSpec spec = low_bandwidth_spec();
  const std::vector<int> widths = {32, 64, 128};
  SynthesisOptions opt;
  // Sanity: one structural class with identical frequencies per width.
  for (const int w : {64, 128}) {
    const auto a = derive_island_params(spec, opt.tech, 32, opt.port_reserve);
    const auto b = derive_island_params(spec, opt.tech, w, opt.port_reserve);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].freq_hz, b[i].freq_hz);
      EXPECT_EQ(a[i].max_sw_size, b[i].max_sw_size);
    }
  }
  exec::ThreadPool pool(1);
  EvalScratchPool scratch;
  WidthSetStats stats;
  const std::vector<WidthSweepEntry> entries =
      synthesize_width_set(spec, widths, opt, pool, scratch, &stats);
  EXPECT_EQ(stats.width_classes, 1);
  EXPECT_GT(stats.shared_evals, 0);  // lockstep survivors materialised
  for (std::size_t i = 0; i < widths.size(); ++i) {
    ASSERT_TRUE(entries[i].feasible);
    EXPECT_EQ(fp(entries[i].result), solo_fp(spec, opt, widths[i]));
  }
}

TEST(WidthSweep, CertificateSharesNearTieTraceFlips) {
  // d24 at widths {128, 160} snaps to CLOSE island frequencies: the two
  // Dijkstras' traces differ (near-tie heap pops flip under the shifted
  // opening costs), so PR 4's per-decision lockstep diverged on every
  // candidate — but the chosen paths mostly coincide, which the path-level
  // certificate proves, unlocking full-candidate sharing. Results must stay
  // bit-identical to per-width synthesize().
  const soc::Benchmark d24 = soc::make_d24_imaging_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d24.soc, 5, d24.use_cases);
  const std::vector<int> widths = {128, 160};
  SynthesisOptions opt;
  exec::ThreadPool pool(1);
  EvalScratchPool scratch;
  WidthSetStats stats;
  const std::vector<WidthSweepEntry> entries =
      synthesize_width_set(spec, widths, opt, pool, scratch, &stats);
  EXPECT_GT(stats.certified_evals, 0);      // trace differed, path certified
  EXPECT_GT(stats.certificate_accepts, 0);  // flow-level acceptances
  EXPECT_GT(stats.shared_evals, 0);
  EXPECT_GE(stats.shared_evals, stats.certified_evals);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    ASSERT_TRUE(entries[i].feasible);
    EXPECT_EQ(fp(entries[i].result), solo_fp(spec, opt, widths[i]));
  }
  // Per-width attribution sums back to the sweep totals (the leader width
  // contributes nothing).
  int shared = 0;
  int certified = 0;
  for (const WidthSweepEntry& e : entries) {
    shared += e.result.stats.width_shared;
    certified += e.result.stats.width_certified;
  }
  EXPECT_EQ(shared, stats.shared_evals);
  EXPECT_EQ(certified, stats.certified_evals);
}

TEST(WidthSweep, CohortsLockstepSameDecisionDivergences) {
  // The dense d26 grid {128, 160, 192, 256} makes several follower lanes
  // genuinely diverge at the SAME decision with identical snapshots — those
  // tails resume as cohorts (one lane leads, the rest verify in lockstep)
  // instead of solo, and every entry stays bit-identical to the solo run.
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 4, d26.use_cases);
  const std::vector<int> widths = {128, 160, 192, 256};
  SynthesisOptions opt;
  exec::ThreadPool pool(1);
  EvalScratchPool scratch;
  WidthSetStats stats;
  const std::vector<WidthSweepEntry> entries =
      synthesize_width_set(spec, widths, opt, pool, scratch, &stats);
  EXPECT_GE(stats.cohort_groups, 1);
  EXPECT_GE(stats.cohort_evals, 2);  // a cohort is >= 2 lanes by definition
  EXPECT_GE(stats.fallback_evals, stats.cohort_evals);  // cohorts are a subset
  for (std::size_t i = 0; i < widths.size(); ++i) {
    ASSERT_TRUE(entries[i].feasible);
    EXPECT_EQ(fp(entries[i].result), solo_fp(spec, opt, widths[i]))
        << "width " << widths[i];
  }
  int cohort = 0;
  for (const WidthSweepEntry& e : entries) cohort += e.result.stats.width_cohort;
  EXPECT_EQ(cohort, stats.cohort_evals);
}

TEST(WidthSweep, SimdAndScalarRelaxationFiltersAreBitIdentical) {
  // The 4-wide relaxation filter must be a pure accelerant: across the
  // widths x threads x prune matrix (covering solo evaluation, lockstep,
  // certificates and cohort resumes), fingerprints with the vector filter
  // must equal the scalar reference's. In VINOC_SIMD_FORCE_SCALAR builds
  // the toggle is a no-op and both passes run the scalar path.
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const std::vector<soc::SocSpec> specs = {
      multi_island_spec(12, 3),
      soc::with_logical_islands(d26.soc, 4, d26.use_cases)};
  const std::vector<int> widths = {32, 64, 128, 160};
  const bool was_enabled = router_simd_enabled();
  for (const soc::SocSpec& spec : specs) {
    for (const bool prune : {true, false}) {
      for (const int threads : {1, 4}) {
        SynthesisOptions opt;
        opt.prune = prune;
        opt.threads = threads;
        std::vector<std::uint64_t> scalar_fps;
        set_router_simd_enabled(false);
        for (const WidthSweepEntry& e :
             explore_link_widths(spec, widths, opt).entries) {
          scalar_fps.push_back(e.feasible ? fp(e.result) : 0);
        }
        set_router_simd_enabled(true);
        std::vector<std::uint64_t> simd_fps;
        for (const WidthSweepEntry& e :
             explore_link_widths(spec, widths, opt).entries) {
          simd_fps.push_back(e.feasible ? fp(e.result) : 0);
        }
        EXPECT_EQ(scalar_fps, simd_fps)
            << "prune " << prune << " threads " << threads;
      }
    }
  }
  set_router_simd_enabled(was_enabled);
}

TEST(WidthSweep, StreamingMergeCapsBufferedOutcomes) {
  // With one thread every candidate merges as soon as it finishes, so the
  // streaming merge never buffers more than one evaluation batch: the
  // sweep's high-water mark is at most the width count, and a solo
  // synthesize() buffers exactly one outcome at a time.
  const soc::SocSpec spec = multi_island_spec(12, 3);
  const std::vector<int> widths = {32, 64, 128};
  SynthesisOptions opt;
  exec::ThreadPool pool(1);
  EvalScratchPool scratch;
  WidthSetStats stats;
  const std::vector<WidthSweepEntry> entries =
      synthesize_width_set(spec, widths, opt, pool, scratch, &stats);
  EXPECT_GT(stats.peak_buffered_outcomes, 0);
  EXPECT_LE(stats.peak_buffered_outcomes, static_cast<int>(widths.size()));
  long long total_outcomes = 0;
  for (const WidthSweepEntry& e : entries) {
    EXPECT_EQ(e.result.stats.peak_buffered_outcomes,
              stats.peak_buffered_outcomes);  // sweep-global, stamped per entry
    total_outcomes += e.result.stats.configs_explored;
  }
  EXPECT_LT(stats.peak_buffered_outcomes, total_outcomes);

  SynthesisOptions solo;
  solo.threads = 1;
  solo.link_width_bits = 64;
  const SynthesisResult r = synthesize(spec, solo);
  EXPECT_EQ(r.stats.peak_buffered_outcomes, 1);

  // Parallel runs may buffer out-of-order completions, but never more than
  // the whole candidate list.
  SynthesisOptions par = solo;
  par.threads = 4;
  const SynthesisResult rp = synthesize(spec, par);
  EXPECT_GE(rp.stats.peak_buffered_outcomes, 1);
  EXPECT_LE(rp.stats.peak_buffered_outcomes, rp.stats.configs_explored);
}

TEST(WidthSweep, CrossWidthPartitionCacheServesRepeatedProblems) {
  // d26 saturates several islands' max switch size across widths, so their
  // (island, k, max block) min-cut problems repeat between the classes.
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 4, d26.use_cases);
  SynthesisOptions opt;
  exec::ThreadPool pool(1);
  EvalScratchPool scratch;
  WidthSetStats stats;
  (void)synthesize_width_set(spec, {16, 32, 64, 128}, opt, pool, scratch, &stats);
  // Several widths saturate to the same per-island max switch size, so their
  // (island, k, max block) min-cut problems are computed once and reused.
  EXPECT_GT(stats.partition_cache_hits, 0);
}

TEST(WidthSweep, ProgressIsSweepGlobalAndMonotonic) {
  const soc::SocSpec spec = multi_island_spec(12, 3);
  const std::vector<int> widths = {1, 16, 32};  // width 1 is infeasible
  SynthesisOptions opt;
  opt.threads = 4;
  std::mutex mutex;
  std::size_t calls = 0;
  std::size_t last_completed = 0;
  std::size_t reported_total = 0;
  std::set<int> widths_seen;
  opt.on_progress = [&](const SynthesisProgress& p) {
    const std::lock_guard<std::mutex> lock(mutex);
    ++calls;
    EXPECT_EQ(p.completed, last_completed + 1);  // global, strictly monotone
    last_completed = p.completed;
    reported_total = p.total;
    widths_seen.insert(p.link_width_bits);
  };
  const WidthSweepResult sweep = explore_link_widths(spec, widths, opt);
  // Total == every (candidate, width) evaluation over the FEASIBLE widths.
  std::size_t expect_total = 0;
  for (const WidthSweepEntry& e : sweep.entries) {
    if (e.feasible) {
      expect_total += static_cast<std::size_t>(e.result.stats.configs_explored);
    }
  }
  EXPECT_EQ(calls, expect_total);
  EXPECT_EQ(last_completed, reported_total);
  EXPECT_EQ(reported_total, expect_total);
  std::set<int> feasible_widths;
  for (const WidthSweepEntry& e : sweep.entries) {
    if (e.feasible) feasible_widths.insert(e.width_bits);
  }
  EXPECT_FALSE(feasible_widths.count(1));  // infeasible widths stay silent
  EXPECT_EQ(widths_seen, feasible_widths);
}

TEST(WidthSweep, DuplicateWidthsYieldIdenticalEntries) {
  const soc::SocSpec spec = multi_island_spec(12, 3);
  SynthesisOptions opt;
  const WidthSweepResult sweep = explore_link_widths(spec, {32, 32}, opt);
  ASSERT_EQ(sweep.entries.size(), 2u);
  ASSERT_TRUE(sweep.entries[0].feasible);
  ASSERT_TRUE(sweep.entries[1].feasible);
  EXPECT_EQ(fp(sweep.entries[0].result), fp(sweep.entries[1].result));
  EXPECT_EQ(fp(sweep.entries[0].result), solo_fp(spec, opt, 32));
}

TEST(WidthSweep, InfeasibleWidthRecordedAndSpecErrorsPropagate) {
  const soc::SocSpec spec = multi_island_spec(12, 3);
  const WidthSweepResult sweep = explore_link_widths(spec, {1, 32});
  ASSERT_EQ(sweep.entries.size(), 2u);
  EXPECT_FALSE(sweep.entries[0].feasible);
  EXPECT_TRUE(sweep.entries[1].feasible);

  SynthesisOptions bad;
  bad.alpha = 2.0;
  EXPECT_THROW((void)explore_link_widths(spec, {32}, bad), std::invalid_argument);
}

TEST(PartitionTable, FlatSortedContainerSemantics) {
  std::vector<PartitionKey> keys = {{2, 3}, {0, 1}, {2, 3}, {1, 2}, {0, 1}};
  PartitionTable table(std::move(keys));
  ASSERT_EQ(table.size(), 3u);  // deduplicated
  // Sorted ascending by (island, switch count).
  EXPECT_EQ(table.key(0), (PartitionKey{0, 1}));
  EXPECT_EQ(table.key(1), (PartitionKey{1, 2}));
  EXPECT_EQ(table.key(2), (PartitionKey{2, 3}));
  table.slot(1).blocks = {{4, 5}};
  ASSERT_NE(table.find({1, 2}), nullptr);
  EXPECT_EQ(table.at({1, 2}).blocks.size(), 1u);
  EXPECT_EQ(table.find({1, 7}), nullptr);
  EXPECT_THROW((void)table.at({3, 1}), std::out_of_range);
  const PartitionTable empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.find({0, 1}), nullptr);
}

TEST(WidthEval, MatchesSoloEvaluateCandidatePerWidth) {
  // evaluate_candidate_widths vs evaluate_candidate, candidate by candidate
  // (prune off so outcomes compare directly without merge semantics).
  const soc::SocSpec spec = multi_island_spec(12, 3);
  SynthesisOptions base;
  base.prune = false;
  exec::ThreadPool pool(1);
  EvalScratchPool scratch_pool;

  const std::vector<int> widths = {64, 128};
  MultiWidthContext mctx;
  const floorplan::Floorplan plan = floorplan::Floorplan::build(spec, base.floorplan);
  const std::vector<double> traffic = compute_core_traffic(spec);
  const std::vector<std::size_t> order = bandwidth_descending_order(spec);
  for (const int w : widths) {
    WidthSlice s;
    s.options = base;
    s.options.link_width_bits = w;
    s.island_params = derive_island_params(spec, base.tech, w, base.port_reserve);
    s.intermediate_params = derive_intermediate_params(s.island_params, base.tech);
    ASSERT_EQ(width_class_key(s.island_params),
              width_class_key(derive_island_params(spec, base.tech, widths[0],
                                                   base.port_reserve)));
    mctx.slices.push_back(std::move(s));
  }
  const std::vector<CandidateConfig> cands =
      enumerate_candidates(spec, mctx.slices[0].island_params, mctx.slices[0].options);
  const PartitionTable partitions = compute_partitions(
      spec, mctx.slices[0].options, mctx.slices[0].island_params, cands, pool);
  mctx.spec = &spec;
  mctx.floorplan = &plan;
  mctx.partitions = &partitions;
  mctx.core_traffic = &traffic;
  mctx.flow_order = &order;

  EvalScratch& scratch = scratch_pool.local();
  for (const CandidateConfig& cand : cands) {
    const std::vector<CandidateOutcome> multi =
        evaluate_candidate_widths(mctx, cand, &scratch);
    ASSERT_EQ(multi.size(), widths.size());
    for (std::size_t j = 0; j < widths.size(); ++j) {
      const EvalContext solo_ctx{spec,
                                 plan,
                                 mctx.slices[j].island_params,
                                 mctx.slices[j].intermediate_params,
                                 partitions,
                                 traffic,
                                 mctx.slices[j].options,
                                 &order,
                                 0.0};
      const CandidateOutcome solo =
          evaluate_candidate(solo_ctx, cand, &scratch, nullptr);
      ASSERT_EQ(static_cast<int>(multi[j].status), static_cast<int>(solo.status));
      if (solo.status != EvalStatus::kRouted) continue;
      EXPECT_EQ(multi[j].signature, solo.signature);
      EXPECT_EQ(multi[j].deadlock_free, solo.deadlock_free);
      if (!solo.deadlock_free) continue;
      EXPECT_EQ(multi[j].point.metrics.noc_dynamic_w,
                solo.point.metrics.noc_dynamic_w);
      EXPECT_EQ(multi[j].point.metrics.avg_latency_cycles,
                solo.point.metrics.avg_latency_cycles);
      EXPECT_EQ(multi[j].point.topology.links.size(),
                solo.point.topology.links.size());
      EXPECT_EQ(multi[j].point.topology.switch_of_core,
                solo.point.topology.switch_of_core);
      for (std::size_t s = 0; s < solo.point.topology.switches.size(); ++s) {
        EXPECT_EQ(multi[j].point.topology.switches[s].freq_hz,
                  solo.point.topology.switches[s].freq_hz);
      }
    }
  }
}

}  // namespace
}  // namespace vinoc::core

// Unit + property tests for the 65 nm NoC component models. The synthesis
// algorithm relies on these monotonicities, so they are pinned here.
#include <gtest/gtest.h>

#include "vinoc/models/noc_models.hpp"
#include "vinoc/models/technology.hpp"

namespace vinoc::models {
namespace {

class SwitchModelTest : public ::testing::Test {
 protected:
  Technology tech = Technology::cmos65nm();
  SwitchModel sw{tech};
};

TEST_F(SwitchModelTest, MaxFrequencyDecreasesWithPorts) {
  double prev = sw.max_frequency_hz(2);
  for (int p = 3; p <= 64; ++p) {
    const double f = sw.max_frequency_hz(p);
    EXPECT_LE(f, prev + 1e-6) << "ports " << p;
    prev = f;
  }
}

TEST_F(SwitchModelTest, MaxFrequencyCappedAtTechLimit) {
  EXPECT_LE(sw.max_frequency_hz(2), tech.max_freq_hz);
}

TEST_F(SwitchModelTest, MaxPortsInvertsMaxFrequency) {
  for (int p = 2; p <= 32; ++p) {
    const double f = sw.max_frequency_hz(p);
    const int back = sw.max_ports_at(f);
    EXPECT_GE(back, p) << "a switch of size " << p << " must fit at its own f_max";
  }
}

TEST_F(SwitchModelTest, MaxPortsAtLowFrequencyIsLarge) {
  EXPECT_GE(sw.max_ports_at(100e6), 32);
}

TEST_F(SwitchModelTest, MaxPortsNeverBelowTwo) {
  EXPECT_GE(sw.max_ports_at(tech.max_freq_hz), 2);
}

TEST_F(SwitchModelTest, DynamicPowerIncreasesWithTrafficAndPorts) {
  const double p_small = sw.dynamic_power_w(4, 4, 500e6, 1e9);
  const double p_more_traffic = sw.dynamic_power_w(4, 4, 500e6, 2e9);
  const double p_more_ports = sw.dynamic_power_w(8, 8, 500e6, 1e9);
  EXPECT_GT(p_more_traffic, p_small);
  EXPECT_GT(p_more_ports, p_small);
}

TEST_F(SwitchModelTest, IdlePowerScalesWithFrequency) {
  const double slow = sw.dynamic_power_w(4, 4, 100e6, 0.0);
  const double fast = sw.dynamic_power_w(4, 4, 800e6, 0.0);
  EXPECT_NEAR(fast / slow, 8.0, 1e-6);
}

TEST_F(SwitchModelTest, LeakageAndAreaGrowWithPorts) {
  EXPECT_GT(sw.leakage_w(8, 8), sw.leakage_w(4, 4));
  EXPECT_GT(sw.area_um2(8, 8), sw.area_um2(4, 4));
  // Crossbar area grows superlinearly.
  const double a4 = sw.area_um2(4, 4);
  const double a16 = sw.area_um2(16, 16);
  EXPECT_GT(a16, 4.0 * (a4 - tech.sw_area_base_um2));
}

TEST_F(SwitchModelTest, AsymmetricSwitchSizedByLargerSide) {
  EXPECT_DOUBLE_EQ(sw.area_um2(2, 8), sw.area_um2(8, 8));
  EXPECT_DOUBLE_EQ(sw.leakage_w(8, 2), sw.leakage_w(8, 8));
}

TEST_F(SwitchModelTest, InvalidArgumentsThrow) {
  EXPECT_THROW((void)sw.max_frequency_hz(0), std::invalid_argument);
  EXPECT_THROW((void)sw.max_ports_at(0.0), std::invalid_argument);
}

class LinkModelTest : public ::testing::Test {
 protected:
  Technology tech = Technology::cmos65nm();
  LinkModel link{tech};
};

TEST_F(LinkModelTest, PowerProportionalToLengthAndBandwidth) {
  const double base = link.dynamic_power_w(1.0, 1e9);
  EXPECT_NEAR(link.dynamic_power_w(2.0, 1e9), 2.0 * base, 1e-15);
  EXPECT_NEAR(link.dynamic_power_w(1.0, 2e9), 2.0 * base, 1e-15);
}

TEST_F(LinkModelTest, DelayAndMaxLengthConsistent) {
  const double f = 500e6;
  const double max_len = link.max_unpipelined_length_mm(f);
  EXPECT_NEAR(link.wire_delay_s(max_len), 1.0 / f, 1e-12);
}

TEST_F(LinkModelTest, CapacityIsWidthTimesFrequency) {
  EXPECT_DOUBLE_EQ(link.capacity_bits_per_s(32, 500e6), 1.6e10);
  EXPECT_DOUBLE_EQ(link.capacity_bits_per_s(64, 250e6), 1.6e10);
}

TEST_F(LinkModelTest, LeakageScalesWithWidthAndLength) {
  EXPECT_NEAR(link.leakage_w(2.0, 64), 4.0 * link.leakage_w(1.0, 32), 1e-15);
}

TEST_F(LinkModelTest, InvalidFrequencyThrows) {
  EXPECT_THROW((void)link.max_unpipelined_length_mm(0.0), std::invalid_argument);
}

TEST(NiModel, PowerAndConstants) {
  const Technology tech = Technology::cmos65nm();
  const NiModel ni(tech);
  EXPECT_GT(ni.dynamic_power_w(1e9), 0.0);
  EXPECT_NEAR(ni.dynamic_power_w(2e9), 2.0 * ni.dynamic_power_w(1e9), 1e-15);
  EXPECT_GT(ni.leakage_w(), 0.0);
  EXPECT_GT(ni.area_um2(), 0.0);
}

TEST(BisyncFifoModel, FourCycleLatencyPerPaper) {
  const Technology tech = Technology::cmos65nm();
  const BisyncFifoModel fifo(tech);
  // Paper, Section 5: "a 4 cycle delay is incurred on the voltage-frequency
  // converters".
  EXPECT_EQ(fifo.latency_cycles(), 4);
  EXPECT_GT(fifo.dynamic_power_w(1e9), 0.0);
  EXPECT_GT(fifo.leakage_w(), 0.0);
}

TEST(SnapFrequency, RoundsUpToGrid) {
  const Technology tech = Technology::cmos65nm();
  EXPECT_DOUBLE_EQ(snap_frequency_up(tech, 1.0), tech.freq_grid_hz);
  EXPECT_DOUBLE_EQ(snap_frequency_up(tech, 50e6), 50e6);
  EXPECT_DOUBLE_EQ(snap_frequency_up(tech, 51e6), 100e6);
  EXPECT_DOUBLE_EQ(snap_frequency_up(tech, 449e6), 450e6);
  EXPECT_DOUBLE_EQ(snap_frequency_up(tech, 0.0), tech.freq_grid_hz);
  // Never beyond the technology ceiling.
  EXPECT_DOUBLE_EQ(snap_frequency_up(tech, 5e9), tech.max_freq_hz);
}

// Property sweep: the crossing cost (FIFO energy/bit) must exceed the plain
// link cost per mm for short links — otherwise the synthesis has no reason
// to keep heavy flows inside an island and Figure 2's overhead vanishes.
class CrossingCostTest : public ::testing::TestWithParam<double> {};

TEST_P(CrossingCostTest, CrossingMoreExpensiveThanShortIntraLink) {
  const Technology tech = Technology::cmos65nm();
  const LinkModel link(tech);
  const BisyncFifoModel fifo(tech);
  const double bw = GetParam();
  EXPECT_GT(fifo.dynamic_power_w(bw), link.dynamic_power_w(1.0, bw));
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, CrossingCostTest,
                         ::testing::Values(1e8, 1e9, 5e9, 2e10));

}  // namespace
}  // namespace vinoc::models

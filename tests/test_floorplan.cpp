// Tests for the island-aware floorplanner.
#include <gtest/gtest.h>

#include "vinoc/floorplan/floorplan.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::floorplan {
namespace {

TEST(Geometry, ManhattanDistance) {
  EXPECT_DOUBLE_EQ(manhattan_mm({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan_mm({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(manhattan_mm({-1, 2}, {2, -2}), 7.0);
}

TEST(Geometry, RectBasics) {
  const Rect r{1.0, 2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(r.center().x_mm, 3.0);
  EXPECT_DOUBLE_EQ(r.center().y_mm, 5.0);
  EXPECT_DOUBLE_EQ(r.area_mm2(), 24.0);
  EXPECT_TRUE(r.contains({1.0, 2.0}));
  EXPECT_TRUE(r.contains({5.0, 8.0}));
  EXPECT_FALSE(r.contains({5.1, 8.0}));
}

TEST(Geometry, RectOverlap) {
  const Rect a{0, 0, 2, 2};
  const Rect b{1, 1, 2, 2};
  const Rect c{2, 0, 2, 2};  // touching edge, not overlapping
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Centroid, UnweightedAndWeighted) {
  const std::vector<Point> pts = {{0, 0}, {2, 0}, {0, 2}, {2, 2}};
  const Point c = weighted_centroid(pts);
  EXPECT_DOUBLE_EQ(c.x_mm, 1.0);
  EXPECT_DOUBLE_EQ(c.y_mm, 1.0);
  const Point w = weighted_centroid(pts, {1.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(w.x_mm, 0.0);
  EXPECT_DOUBLE_EQ(w.y_mm, 0.0);
}

TEST(Centroid, AllZeroWeightsFallBackToUnweighted) {
  const std::vector<Point> pts = {{0, 0}, {4, 0}};
  const Point c = weighted_centroid(pts, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(c.x_mm, 2.0);
}

TEST(Centroid, BadInputsThrow) {
  EXPECT_THROW((void)weighted_centroid({}), std::invalid_argument);
  EXPECT_THROW((void)weighted_centroid({{0, 0}}, {1.0, 2.0}), std::invalid_argument);
}

class FloorplanD26Test : public ::testing::TestWithParam<int> {};

TEST_P(FloorplanD26Test, ValidAcrossIslandCounts) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec =
      soc::with_logical_islands(d26.soc, GetParam(), d26.use_cases);
  const Floorplan fp = Floorplan::build(spec);
  EXPECT_TRUE(fp.validate(spec).empty());
  EXPECT_EQ(fp.core_count(), spec.core_count());
  EXPECT_EQ(fp.island_count(), spec.island_count());
  // Whitespace: chip must be larger than the sum of core areas but not
  // absurdly so.
  EXPECT_GT(fp.chip_area_mm2(), spec.total_core_area_mm2());
  EXPECT_LT(fp.chip_area_mm2(), spec.total_core_area_mm2() * 4.0);
}

INSTANTIATE_TEST_SUITE_P(Counts, FloorplanD26Test,
                         ::testing::Values(1, 2, 4, 6, 7, 26));

TEST(Floorplan, AspectRatioReasonable) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  for (const int k : {1, 6, 26}) {
    const soc::SocSpec spec = soc::with_logical_islands(d26.soc, k, d26.use_cases);
    const Floorplan fp = Floorplan::build(spec);
    const double aspect = std::max(fp.chip_width_mm(), fp.chip_height_mm()) /
                          std::min(fp.chip_width_mm(), fp.chip_height_mm());
    EXPECT_LT(aspect, 2.2) << "k=" << k;
  }
}

TEST(Floorplan, ClampToIslandKeepsPointInside) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  const Floorplan fp = Floorplan::build(spec);
  for (std::size_t isl = 0; isl < spec.island_count(); ++isl) {
    const Point p = fp.clamp_to_island({-100.0, 1000.0},
                                       static_cast<soc::IslandId>(isl));
    EXPECT_TRUE(fp.island_rect(static_cast<soc::IslandId>(isl)).contains(p));
  }
  // Intermediate island (-1) clamps to the chip.
  const Point q = fp.clamp_to_island({1e6, 1e6}, -1);
  EXPECT_LE(q.x_mm, fp.chip_width_mm() + 1e-9);
  EXPECT_LE(q.y_mm, fp.chip_height_mm() + 1e-9);
}

TEST(Floorplan, DeterministicRebuild) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 4, d26.use_cases);
  const Floorplan a = Floorplan::build(spec);
  const Floorplan b = Floorplan::build(spec);
  for (std::size_t c = 0; c < spec.core_count(); ++c) {
    EXPECT_DOUBLE_EQ(a.core_rect(static_cast<soc::CoreId>(c)).x_mm,
                     b.core_rect(static_cast<soc::CoreId>(c)).x_mm);
  }
}

TEST(Floorplan, WhitespaceOptionRespected) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 4, d26.use_cases);
  FloorplanOptions tight;
  tight.whitespace = 1.05;
  FloorplanOptions loose;
  loose.whitespace = 1.6;
  const Floorplan a = Floorplan::build(spec, tight);
  const Floorplan b = Floorplan::build(spec, loose);
  EXPECT_LT(a.chip_area_mm2(), b.chip_area_mm2());
  EXPECT_THROW((void)Floorplan::build(spec, FloorplanOptions{0.9, 0.3}),
               std::invalid_argument);
}

TEST(Floorplan, AllBenchmarksFloorplanCleanly) {
  for (const soc::Benchmark& bm : soc::all_benchmarks()) {
    for (const int k : {1, 4}) {
      const soc::SocSpec spec = soc::with_logical_islands(bm.soc, k, bm.use_cases);
      const Floorplan fp = Floorplan::build(spec);
      EXPECT_TRUE(fp.validate(spec).empty()) << bm.soc.name << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace vinoc::floorplan

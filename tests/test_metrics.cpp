// Metrics verification: compute_metrics() cross-checked against hand
// calculations on a minimal topology, plus breakdown-consistency properties
// on real synthesized designs.
#include <gtest/gtest.h>

#include "vinoc/core/synthesis.hpp"
#include "vinoc/core/topology.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::core {
namespace {

/// Two cores, two islands, one switch each, one crossing flow — small enough
/// to evaluate the models by hand.
struct TinyFixture {
  soc::SocSpec spec;
  NocTopology topo;
  models::Technology tech = models::Technology::cmos65nm();
  static constexpr double kBw = 1.0e9;
  static constexpr double kFreq = 400e6;
  static constexpr double kLinkLen = 2.0;
  static constexpr double kNiWire = 0.5;

  TinyFixture() {
    spec.name = "tiny";
    spec.islands = {{"vi0", 1.0, false}, {"vi1", 1.0, true}};
    for (int i = 0; i < 2; ++i) {
      soc::CoreSpec c;
      c.name = "c" + std::to_string(i);
      c.island = i;
      spec.cores.push_back(c);
      SwitchInst sw;
      sw.island = i;
      sw.freq_hz = kFreq;
      sw.pos = {static_cast<double>(i) * kLinkLen, 0.0};
      sw.cores = {static_cast<soc::CoreId>(i)};
      topo.switches.push_back(sw);
      topo.switch_of_core.push_back(i);
      topo.ni_wire_mm.push_back(kNiWire);
    }
    topo.island_freq_hz = {kFreq, kFreq};
    soc::Flow f;
    f.src = 0;
    f.dst = 1;
    f.bandwidth_bits_per_s = kBw;
    f.max_latency_cycles = 20;
    f.label = "c0->c1";
    spec.flows.push_back(f);
    TopLink l;
    l.src_switch = 0;
    l.dst_switch = 1;
    l.crosses_island = true;
    l.length_mm = kLinkLen;
    l.carried_bw_bits_per_s = kBw;
    l.flows = {0};
    topo.links.push_back(l);
    FlowRoute r;
    r.src_switch = 0;
    r.dst_switch = 1;
    r.links = {0};
    r.crossings = 1;
    r.latency_cycles = 8.0;
    topo.routes.push_back(r);
  }
};

TEST(MetricsHandCheck, SwitchDynamicPower) {
  const TinyFixture fx;
  const Metrics m = compute_metrics(fx.topo, fx.spec, fx.tech);
  // Each switch: 2x2 ports (1 core + 1 link each way -> in=2? no: switch 0
  // has 1 core in + 1 link out, 1 core out; in=1, out=2 => ports=2).
  // e_bit = (0.20 + 0.02 * 2) pJ = 0.24 pJ; traffic 1e9 through each of the
  // two switches => 2 * 0.24 mW. Idle: ports(in+out)=3 per switch =>
  // 2 * 3 * 1.5e-12 W/Hz * 400e6 = 3.6 mW.
  const double e_bit = (0.20 + 0.02 * 2) * 1e-12;
  const double expected =
      2.0 * e_bit * TinyFixture::kBw +
      2.0 * 3.0 * fx.tech.sw_idle_power_per_port_w_per_hz * TinyFixture::kFreq;
  EXPECT_NEAR(m.switch_dynamic_w, expected, 1e-12);
}

TEST(MetricsHandCheck, LinkAndFifoDynamicPower) {
  const TinyFixture fx;
  const Metrics m = compute_metrics(fx.topo, fx.spec, fx.tech);
  // NI wires: both cores carry the flow once (out at c0, in at c1):
  // 2 * 0.15 pJ/bit/mm * 0.5 mm * 1e9. Inter-switch wire: 0.15 * 2.0 * 1e9.
  const double e_mm = fx.tech.link_energy_pj_per_bit_mm * 1e-12;
  const double expected_link = 2.0 * e_mm * TinyFixture::kNiWire * TinyFixture::kBw +
                               e_mm * TinyFixture::kLinkLen * TinyFixture::kBw;
  EXPECT_NEAR(m.link_dynamic_w, expected_link, 1e-12);
  const double expected_fifo =
      fx.tech.fifo_energy_pj_per_bit * 1e-12 * TinyFixture::kBw;
  EXPECT_NEAR(m.fifo_dynamic_w, expected_fifo, 1e-15);
  EXPECT_EQ(m.fifo_count, 1);
}

TEST(MetricsHandCheck, NiDynamicPower) {
  const TinyFixture fx;
  const Metrics m = compute_metrics(fx.topo, fx.spec, fx.tech);
  // Each NI sees the flow once: 2 * 0.30 pJ/bit * 1e9.
  EXPECT_NEAR(m.ni_dynamic_w, 2.0 * 0.30e-12 * TinyFixture::kBw, 1e-15);
}

TEST(MetricsHandCheck, AreaAndLeakage) {
  const TinyFixture fx;
  const Metrics m = compute_metrics(fx.topo, fx.spec, fx.tech);
  // Two 2-port switches + two NIs + one FIFO.
  const double sw_area = fx.tech.sw_area_base_um2 +
                         fx.tech.sw_area_per_port2_um2 * 4.0 +
                         fx.tech.sw_area_per_port_um2 * 2.0;
  const double expected_area =
      (2.0 * sw_area + 2.0 * fx.tech.ni_area_um2 + fx.tech.fifo_area_um2) * 1e-6;
  EXPECT_NEAR(m.noc_area_mm2, expected_area, 1e-12);

  const double sw_leak =
      (fx.tech.sw_leakage_base_mw + fx.tech.sw_leakage_per_port_mw * 2.0) * 1e-3;
  const double wire_leak =
      fx.tech.link_leakage_mw_per_wire_mm * 1e-3 * 32.0 *
      (2.0 * TinyFixture::kNiWire + TinyFixture::kLinkLen);
  const double expected_leak = 2.0 * sw_leak + 2.0 * fx.tech.ni_leakage_mw * 1e-3 +
                               fx.tech.fifo_leakage_mw * 1e-3 + wire_leak;
  EXPECT_NEAR(m.noc_leakage_w, expected_leak, 1e-12);
}

TEST(MetricsHandCheck, LatencyStatistics) {
  const TinyFixture fx;
  const Metrics m = compute_metrics(fx.topo, fx.spec, fx.tech);
  EXPECT_DOUBLE_EQ(m.avg_latency_cycles, 8.0);
  EXPECT_DOUBLE_EQ(m.max_latency_cycles, 8.0);
  EXPECT_DOUBLE_EQ(m.total_wire_mm, 2.0 * TinyFixture::kNiWire + TinyFixture::kLinkLen);
}

TEST(MetricsHandCheck, SwitchAggregateBandwidth) {
  const TinyFixture fx;
  EXPECT_DOUBLE_EQ(fx.topo.switch_aggregate_bw(0, fx.spec), TinyFixture::kBw);
  EXPECT_DOUBLE_EQ(fx.topo.switch_aggregate_bw(1, fx.spec), TinyFixture::kBw);
}

TEST(MetricsHandCheck, PortCounts) {
  const TinyFixture fx;
  EXPECT_EQ(fx.topo.switch_ports_in(0), 1);   // core only
  EXPECT_EQ(fx.topo.switch_ports_out(0), 2);  // core + link
  EXPECT_EQ(fx.topo.switch_ports_in(1), 2);
  EXPECT_EQ(fx.topo.switch_ports_out(1), 1);
}

// Property: on every synthesized design point, the dynamic-power breakdown
// sums to the total, the paper metric excludes exactly the NI share, and all
// components are non-negative.
class BreakdownTest : public ::testing::TestWithParam<int> {};

TEST_P(BreakdownTest, ComponentsSumToTotal) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec =
      soc::with_logical_islands(d26.soc, GetParam(), d26.use_cases);
  const SynthesisResult r = synthesize(spec);
  ASSERT_FALSE(r.points.empty());
  for (const DesignPoint& p : r.points) {
    const Metrics& m = p.metrics;
    EXPECT_NEAR(m.noc_dynamic_w,
                m.switch_dynamic_w + m.link_dynamic_w + m.ni_dynamic_w +
                    m.fifo_dynamic_w,
                1e-12);
    EXPECT_NEAR(m.paper_noc_dynamic_w(), m.noc_dynamic_w - m.ni_dynamic_w, 1e-12);
    EXPECT_GE(m.switch_dynamic_w, 0.0);
    EXPECT_GE(m.link_dynamic_w, 0.0);
    EXPECT_GE(m.ni_dynamic_w, 0.0);
    EXPECT_GE(m.fifo_dynamic_w, 0.0);
    EXPECT_GE(m.noc_leakage_w, 0.0);
    EXPECT_GE(m.noc_area_mm2, 0.0);
    // FIFO power iff crossings exist.
    EXPECT_EQ(m.fifo_dynamic_w > 0.0, m.fifo_count > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(IslandCounts, BreakdownTest, ::testing::Values(1, 4, 7));

TEST(TopologyValidate, CatchesCorruptedStructures) {
  TinyFixture fx;
  EXPECT_TRUE(fx.topo.validate(fx.spec).empty());
  // Corrupt: wrong carried bandwidth.
  NocTopology bad_bw = fx.topo;
  bad_bw.links[0].carried_bw_bits_per_s *= 2.0;
  EXPECT_FALSE(bad_bw.validate(fx.spec).empty());
  // Corrupt: crossing flag wrong.
  NocTopology bad_cross = fx.topo;
  bad_cross.links[0].crosses_island = false;
  EXPECT_FALSE(bad_cross.validate(fx.spec).empty());
  // Corrupt: route endpoint mismatch.
  NocTopology bad_route = fx.topo;
  bad_route.routes[0].dst_switch = 0;
  EXPECT_FALSE(bad_route.validate(fx.spec).empty());
  // Corrupt: core attached to a switch of another island.
  NocTopology bad_attach = fx.topo;
  bad_attach.switch_of_core[0] = 1;
  EXPECT_FALSE(bad_attach.validate(fx.spec).empty());
}

}  // namespace
}  // namespace vinoc::core

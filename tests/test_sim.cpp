// Tests for the flit-level simulator: zero-load agreement with the analytic
// latency model, contention behaviour, and saturation detection.
#include <gtest/gtest.h>

#include <cmath>

#include "vinoc/core/synthesis.hpp"
#include "vinoc/sim/simulator.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::sim {
namespace {

/// A small SoC where every island ends up at the same NoC clock, so the
/// analytic cycle count and the simulator's time-based count coincide.
soc::SocSpec uniform_clock_spec(int islands) {
  soc::SocSpec s;
  s.name = "uniform";
  for (int i = 0; i < islands; ++i) {
    s.islands.push_back({"vi" + std::to_string(i), 1.0, i != 0});
  }
  for (int i = 0; i < islands * 2; ++i) {
    soc::CoreSpec c;
    c.name = "c" + std::to_string(i);
    c.island = i % islands;
    c.width_mm = 1.0;
    c.height_mm = 1.0;
    s.cores.push_back(c);
  }
  auto flow = [&s](int src, int dst) {
    soc::Flow f;
    f.src = src;
    f.dst = dst;
    // 3.2e9 bits/s = 100 MHz at 32 bit for every island's hungriest NI.
    f.bandwidth_bits_per_s = 3.2e9;
    f.max_latency_cycles = 40;
    f.label = "f" + std::to_string(s.flows.size());
    s.flows.push_back(f);
  };
  for (int i = 0; i < islands * 2; ++i) {
    flow(i, (i + 1) % (islands * 2));
  }
  return s;
}

core::SynthesisResult synth(const soc::SocSpec& spec) {
  core::SynthesisOptions options;
  return core::synthesize(spec, options);
}

TEST(Simulator, ZeroLoadMatchesAnalyticOnUniformClocks) {
  const soc::SocSpec spec = uniform_clock_spec(3);
  const core::SynthesisResult result = synth(spec);
  ASSERT_FALSE(result.points.empty());
  const core::DesignPoint& best = result.best_power();

  SimOptions opts;
  opts.injection_scale = 0.02;
  opts.duration_cycles = 300'000;
  opts.warmup_cycles = 30'000;
  const SimReport report =
      simulate(best.topology, spec, core::SynthesisOptions{}.tech, opts);
  ASSERT_GT(report.packets_delivered, 0);

  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    ASSERT_GT(report.flows[f].packets_delivered, 0) << "flow " << f;
    // At near-zero load the head-flit latency equals the analytic number.
    EXPECT_NEAR(report.flows[f].avg_latency_cycles,
                best.topology.routes[f].latency_cycles, 0.75)
        << "flow " << f;
  }
}

TEST(Simulator, LatencyGrowsWithLoad) {
  const soc::SocSpec spec = uniform_clock_spec(2);
  const core::SynthesisResult result = synth(spec);
  ASSERT_FALSE(result.points.empty());
  const core::DesignPoint& best = result.best_power();
  const models::Technology tech = models::Technology::cmos65nm();

  SimOptions low;
  low.injection_scale = 0.05;
  SimOptions high;
  high.injection_scale = 0.9;
  const SimReport r_low = simulate(best.topology, spec, tech, low);
  const SimReport r_high = simulate(best.topology, spec, tech, high);
  EXPECT_GT(r_high.avg_latency_cycles, r_low.avg_latency_cycles);
  EXPECT_GT(r_high.max_link_utilization, r_low.max_link_utilization);
}

TEST(Simulator, SaturationFlaggedWhenDemandExceedsCapacity) {
  const soc::SocSpec spec = uniform_clock_spec(2);
  const core::SynthesisResult result = synth(spec);
  ASSERT_FALSE(result.points.empty());
  const core::DesignPoint& best = result.best_power();
  const models::Technology tech = models::Technology::cmos65nm();

  SimOptions opts;
  opts.injection_scale = 1.0;
  EXPECT_FALSE(simulate(best.topology, spec, tech, opts).saturated)
      << "the router's capacity accounting must leave the spec'd load feasible";
  opts.injection_scale = 4.0;
  EXPECT_TRUE(simulate(best.topology, spec, tech, opts).saturated);
}

TEST(Simulator, SynthesizedDesignsNeverSaturateAtSpecLoad) {
  // The router checks capacities; the simulator must agree for the D26
  // best-power designs across islandings.
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const models::Technology tech = models::Technology::cmos65nm();
  for (const int k : {1, 4, 7}) {
    const soc::SocSpec spec = soc::with_logical_islands(d26.soc, k, d26.use_cases);
    const core::SynthesisResult result = synth(spec);
    ASSERT_FALSE(result.points.empty()) << "k=" << k;
    SimOptions opts;
    opts.injection_scale = 1.0;
    opts.duration_cycles = 20'000;
    opts.warmup_cycles = 2'000;
    const SimReport r = simulate(result.best_power().topology, spec, tech, opts);
    EXPECT_FALSE(r.saturated) << "k=" << k;
    EXPECT_LE(r.max_link_utilization, 1.0 + 1e-6) << "k=" << k;
  }
}

TEST(Simulator, OfferedLoadComputedPerFlow) {
  const soc::SocSpec spec = uniform_clock_spec(2);
  const core::SynthesisResult result = synth(spec);
  ASSERT_FALSE(result.points.empty());
  const SimReport r = simulate(result.best_power().topology, spec,
                               models::Technology::cmos65nm(), SimOptions{});
  for (const FlowSimStats& fs : r.flows) {
    EXPECT_GT(fs.offered_load, 0.0);
    EXPECT_LE(fs.offered_load, 1.0 + 1e-9);
  }
}

TEST(Simulator, RandomArrivalsStillDeliverEverything) {
  const soc::SocSpec spec = uniform_clock_spec(2);
  const core::SynthesisResult result = synth(spec);
  ASSERT_FALSE(result.points.empty());
  SimOptions opts;
  opts.random_arrivals = true;
  opts.injection_scale = 0.3;
  opts.seed = 123;
  const SimReport r = simulate(result.best_power().topology, spec,
                               models::Technology::cmos65nm(), opts);
  EXPECT_GT(r.packets_delivered, 0);
  for (const FlowSimStats& fs : r.flows) {
    EXPECT_GT(fs.packets_delivered, 0);
  }
}

TEST(Simulator, DeterministicForFixedSeed) {
  const soc::SocSpec spec = uniform_clock_spec(2);
  const core::SynthesisResult result = synth(spec);
  ASSERT_FALSE(result.points.empty());
  SimOptions opts;
  opts.random_arrivals = true;
  opts.seed = 7;
  const models::Technology tech = models::Technology::cmos65nm();
  const SimReport a = simulate(result.best_power().topology, spec, tech, opts);
  const SimReport b = simulate(result.best_power().topology, spec, tech, opts);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_DOUBLE_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
}

TEST(Simulator, CrossingCostsVisibleInLatency) {
  // Same design, compare a same-switch flow against a cross-island flow.
  const soc::SocSpec spec = uniform_clock_spec(3);
  const core::SynthesisResult result = synth(spec);
  ASSERT_FALSE(result.points.empty());
  const core::DesignPoint& best = result.best_power();
  const SimReport r = simulate(best.topology, spec,
                               models::Technology::cmos65nm(), SimOptions{});
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    if (best.topology.routes[f].crossings > 0) {
      EXPECT_GE(r.flows[f].avg_latency_cycles, 7.0) << "flow " << f;
    }
  }
}

TEST(SaturationScale, SynthesizedDesignsHaveHeadroom) {
  const soc::SocSpec spec = uniform_clock_spec(3);
  const core::SynthesisResult result = synth(spec);
  ASSERT_FALSE(result.points.empty());
  for (const core::DesignPoint& p : result.points) {
    EXPECT_GE(find_saturation_scale(p.topology, spec), 1.0 - 1e-9);
  }
}

TEST(SaturationScale, AgreesWithSimulatorSaturationFlag) {
  const soc::SocSpec spec = uniform_clock_spec(2);
  const core::SynthesisResult result = synth(spec);
  ASSERT_FALSE(result.points.empty());
  const core::DesignPoint& best = result.best_power();
  const double headroom = find_saturation_scale(best.topology, spec);
  ASSERT_TRUE(std::isfinite(headroom));
  const models::Technology tech = models::Technology::cmos65nm();
  SimOptions below;
  below.injection_scale = headroom * 0.95;
  SimOptions above;
  above.injection_scale = headroom * 1.05;
  EXPECT_FALSE(simulate(best.topology, spec, tech, below).saturated);
  EXPECT_TRUE(simulate(best.topology, spec, tech, above).saturated);
}

TEST(SaturationScale, D26HeadroomAtLeastOne) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  const core::SynthesisResult result = synth(spec);
  ASSERT_FALSE(result.points.empty());
  EXPECT_GE(find_saturation_scale(result.best_power().topology, spec), 1.0 - 1e-9);
}

TEST(Simulator, RejectsBadOptionsAndInputs) {
  const soc::SocSpec spec = uniform_clock_spec(2);
  const core::SynthesisResult result = synth(spec);
  ASSERT_FALSE(result.points.empty());
  const models::Technology tech = models::Technology::cmos65nm();
  SimOptions opts;
  opts.packet_flits = 0;
  EXPECT_THROW((void)simulate(result.best_power().topology, spec, tech, opts),
               std::invalid_argument);
  core::NocTopology empty;
  EXPECT_THROW((void)simulate(empty, spec, tech, SimOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vinoc::sim

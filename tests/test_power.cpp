// Tests for the power-gating accounting (vinoc::power).
#include <gtest/gtest.h>

#include "vinoc/core/synthesis.hpp"
#include "vinoc/power/gating.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::power {
namespace {

struct GatingFixture {
  soc::SocSpec spec;
  core::SynthesisResult result;
  models::Technology tech = models::Technology::cmos65nm();

  explicit GatingFixture(int islands = 6) {
    const soc::Benchmark d26 = soc::make_d26_media_soc();
    spec = soc::with_logical_islands(d26.soc, islands, d26.use_cases);
    result = core::synthesize(spec, core::SynthesisOptions{});
  }
  const core::NocTopology& topo() const { return result.best_power().topology; }
};

TEST(NocLeakageByIsland, SumsToTotalNocLeakage) {
  const GatingFixture s;
  ASSERT_FALSE(s.result.points.empty());
  const auto by_island = noc_leakage_by_island(s.topo(), s.spec, s.tech);
  ASSERT_EQ(by_island.size(), s.spec.island_count() + 1);
  double sum = 0.0;
  for (const double w : by_island) sum += w;
  const core::Metrics m = core::compute_metrics(s.topo(), s.spec, s.tech);
  EXPECT_NEAR(sum, m.noc_leakage_w, 1e-12);
  for (const double w : by_island) EXPECT_GE(w, 0.0);
}

TEST(ShutdownSavings, GatingNeverIncreasesPower) {
  const GatingFixture s;
  ASSERT_FALSE(s.result.points.empty());
  const ShutdownReport r = evaluate_shutdown_savings(s.spec, s.topo(), s.tech);
  EXPECT_LE(r.avg_power_with_gating_w, r.avg_power_no_gating_w + 1e-12);
  EXPECT_GE(r.saved_fraction, 0.0);
  EXPECT_LE(r.saved_fraction, 1.0);
  for (const ScenarioPower& sc : r.scenarios) {
    EXPECT_LE(sc.power_with_gating_w, sc.power_no_gating_w + 1e-12);
  }
}

TEST(ShutdownSavings, D26ReachesPaperBallpark) {
  // Paper, Section 5: shutdown "can lead to even 25% or more reduction in
  // overall system power". Our D26 at the finest logical islanding must
  // land in that regime.
  const GatingFixture s(7);
  ASSERT_FALSE(s.result.points.empty());
  const ShutdownReport r = evaluate_shutdown_savings(s.spec, s.topo(), s.tech);
  EXPECT_GE(r.saved_fraction, 0.20);
  EXPECT_LE(r.saved_fraction, 0.45);
}

TEST(ShutdownSavings, SingleIslandSavesNothing) {
  // With one (always-on) island nothing can be gated.
  const GatingFixture s(1);
  ASSERT_FALSE(s.result.points.empty());
  const ShutdownReport r = evaluate_shutdown_savings(s.spec, s.topo(), s.tech);
  EXPECT_NEAR(r.saved_fraction, 0.0, 1e-9);
}

TEST(ShutdownSavings, MoreIslandsNeverSaveLess) {
  // Finer islanding can only improve (or match) the gating opportunities,
  // modulo the slightly different NoC; allow a small tolerance.
  const GatingFixture coarse(2);
  const GatingFixture fine(7);
  ASSERT_FALSE(coarse.result.points.empty());
  ASSERT_FALSE(fine.result.points.empty());
  const double s2 =
      evaluate_shutdown_savings(coarse.spec, coarse.topo(), coarse.tech).saved_w;
  const double s7 =
      evaluate_shutdown_savings(fine.spec, fine.topo(), fine.tech).saved_w;
  EXPECT_GE(s7, s2 * 0.9);
}

TEST(ShutdownSavings, RetentionFractionBoundsSavings) {
  const GatingFixture s(6);
  ASSERT_FALSE(s.result.points.empty());
  GatingModel leaky;
  leaky.retention_fraction = 0.5;
  GatingModel ideal;
  ideal.retention_fraction = 0.0;
  const double saved_leaky =
      evaluate_shutdown_savings(s.spec, s.topo(), s.tech, leaky).saved_w;
  const double saved_ideal =
      evaluate_shutdown_savings(s.spec, s.topo(), s.tech, ideal).saved_w;
  EXPECT_LT(saved_leaky, saved_ideal);
}

TEST(ShutdownSavings, UncoveredTimeTreatedAsAllActive) {
  GatingFixture s(6);
  ASSERT_FALSE(s.result.points.empty());
  // Keep only the idle scenario at 40%: the remaining 60% must be charged
  // as an implicit all-active scenario.
  s.spec.scenarios.resize(1);
  const ShutdownReport r = evaluate_shutdown_savings(s.spec, s.topo(), s.tech);
  ASSERT_EQ(r.scenarios.size(), 2u);
  EXPECT_NEAR(r.scenarios[1].time_fraction, 0.6, 1e-9);
  // The implicit scenario gates nothing.
  EXPECT_NEAR(r.scenarios[1].power_with_gating_w, r.scenarios[1].power_no_gating_w,
              1e-9);
}

TEST(ShutdownSavings, RejectsBadInputs) {
  GatingFixture s(6);
  ASSERT_FALSE(s.result.points.empty());
  soc::SocSpec no_scenarios = s.spec;
  no_scenarios.scenarios.clear();
  EXPECT_THROW((void)evaluate_shutdown_savings(no_scenarios, s.topo(), s.tech),
               std::invalid_argument);
  GatingModel bad;
  bad.retention_fraction = 1.5;
  EXPECT_THROW((void)evaluate_shutdown_savings(s.spec, s.topo(), s.tech, bad),
               std::invalid_argument);
}

TEST(ShutdownSavings, AlwaysOnIslandsNeverGated) {
  const GatingFixture s(6);
  ASSERT_FALSE(s.result.points.empty());
  // The memory island's leakage must be charged in full in every scenario:
  // compare against a spec where that island were (hypothetically) gated.
  const ShutdownReport r = evaluate_shutdown_savings(s.spec, s.topo(), s.tech);
  double mem_leak = 0.0;
  for (const soc::CoreSpec& c : s.spec.cores) {
    if (!s.spec.islands[static_cast<std::size_t>(c.island)].can_shutdown) {
      mem_leak += c.leakage_power_w;
    }
  }
  for (const ScenarioPower& sc : r.scenarios) {
    EXPECT_GE(sc.power_with_gating_w, mem_leak - 1e-9);
  }
}

}  // namespace
}  // namespace vinoc::power

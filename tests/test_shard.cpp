// Sharded campaigns: planner determinism and group integrity, status-line
// wire framing, manifest round-trips, the bit-identity store merger, the
// store-family verifier — and end-to-end supervisor runs that exec the real
// CLI as campaign-worker processes (VINOC_CLI_PATH), including crash chaos
// and resume-after-merge.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "vinoc/campaign/campaign_spec.hpp"
#include "vinoc/campaign/engine.hpp"
#include "vinoc/campaign/report.hpp"
#include "vinoc/campaign/shard.hpp"
#include "vinoc/campaign/shard_merge.hpp"
#include "vinoc/campaign/shard_supervisor.hpp"
#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/io/jsonl.hpp"
#include "vinoc/io/shard_wire.hpp"

namespace vinoc::campaign {
namespace {

namespace fs = std::filesystem;

/// Same fast matrix as test_campaign: 2 strategies x 2 island counts x
/// 2 widths over a 9-core synthetic family = 16 jobs, 8 structure groups.
CampaignSpec small_campaign() {
  CampaignSpec spec;
  spec.name = "shardunit";
  SyntheticScenario family;
  family.params.cores = 9;
  family.params.hubs = 2;
  family.perturbations = 1;
  spec.synthetic.push_back(family);
  spec.strategies = {"logical", "comm"};
  spec.island_counts = {2, 3};
  spec.widths = {32, 64};
  return spec;
}

/// The equivalent campaign FILE for worker processes to re-parse.
const char* kCampaignFile =
    "name = shardunit\n"
    "synthetic = cores:9 hubs:2 perturb:1\n"
    "strategies = logical comm\n"
    "islands = 2 3\n"
    "widths = 32 64\n";

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("vinoc_shard_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
};

std::string write_campaign_file(const TempDir& dir) {
  const std::string path = (dir.path / "unit.campaign").string();
  std::ofstream out(path);
  out << kCampaignFile;
  return path;
}

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string records_jsonl(const std::vector<JobRecord>& records) {
  std::string text;
  for (const JobRecord& rec : records) {
    text += record_to_jsonl(rec, /*include_timing=*/false);
    text += '\n';
  }
  return text;
}

/// A minimal but fully-populated record for merger unit tests.
JobRecord fake_record(std::uint64_t key, double power) {
  JobRecord rec;
  rec.campaign = "unit";
  rec.job = "fake/j" + std::to_string(key);
  rec.scenario = "fake";
  rec.strategy = "logical";
  rec.islands = 2;
  rec.width = 32;
  rec.key = key;
  rec.feasible = true;
  rec.points = 1;
  rec.best_power_mw = power;
  rec.wall_ms = 1.0 + static_cast<double>(key);  // differs per writer
  return rec;
}

void write_store(const std::string& path, const std::vector<JobRecord>& recs) {
  std::ofstream out(path, std::ios::trunc);
  for (const JobRecord& rec : recs) {
    out << io::add_line_checksum(record_to_jsonl(rec)) << '\n';
  }
}

ShardCampaignOptions sharded_options(const TempDir& dir,
                                     const std::string& spec_path,
                                     int shards) {
  ShardCampaignOptions sopt;
  sopt.base.cache_dir = (dir.path / "cache").string();
  sopt.base.include_timing = false;
  sopt.base.threads = 2;
  sopt.shards = shards;
  sopt.worker_exe = VINOC_CLI_PATH;
  sopt.spec_path = spec_path;
  sopt.worker_threads = 2;
  return sopt;
}

// --- Planner ----------------------------------------------------------------

TEST(ShardPlan, IsDeterministicAndNeverSplitsStructureGroups) {
  const std::vector<CampaignJob> jobs = expand_jobs(small_campaign());
  ASSERT_EQ(jobs.size(), 16u);
  const ShardPlan plan = plan_shards(jobs, 4);
  ASSERT_EQ(plan.shards(), 4);

  // Every job lands on exactly one shard.
  std::set<std::uint64_t> assigned;
  for (const auto& shard : plan.assignment) {
    for (const std::uint64_t key : shard) {
      EXPECT_TRUE(assigned.insert(key).second) << "key assigned twice";
    }
  }
  EXPECT_EQ(assigned.size(), jobs.size());

  // Width-sharing groups stay whole: both widths of a structure group must
  // live on the same shard.
  for (const CampaignJob& job : jobs) {
    const std::uint64_t skey = structure_key(job.spec, job.options);
    int home = -1;
    for (int k = 0; k < plan.shards(); ++k) {
      for (const std::uint64_t key : plan.assignment[k]) {
        if (key == job.key) home = k;
      }
    }
    ASSERT_GE(home, 0);
    for (const CampaignJob& other : jobs) {
      if (structure_key(other.spec, other.options) != skey) continue;
      bool on_home = false;
      for (const std::uint64_t key : plan.assignment[home]) {
        if (key == other.key) on_home = true;
      }
      EXPECT_TRUE(on_home) << "group split across shards";
    }
  }

  // Pure function of the matrix: replanning yields the identical assignment.
  const ShardPlan again = plan_shards(jobs, 4);
  EXPECT_EQ(plan.assignment, again.assignment);
  // Degenerate shard counts collapse to one shard holding everything.
  const ShardPlan one = plan_shards(jobs, 0);
  ASSERT_EQ(one.shards(), 1);
  EXPECT_EQ(one.assignment[0].size(), jobs.size());
  EXPECT_EQ(one.populated(), 1);
}

// --- Wire framing -----------------------------------------------------------

TEST(ShardWire, EventsRoundTrip) {
  io::ShardEvent start;
  start.type = io::ShardEventType::kStart;
  start.key = 0xf3ae58b624026f15ull;
  io::ShardEvent done;
  done.type = io::ShardEventType::kDone;
  done.key = 42;
  done.payload = record_to_jsonl(fake_record(42, 10.0));
  io::ShardEvent summary;
  summary.type = io::ShardEventType::kSummary;
  summary.payload = "{\"run\":3,\"cache_hits\":1}";

  for (const io::ShardEvent& ev : {start, done, summary}) {
    const std::string line = io::encode_shard_event(ev);
    const auto back = io::decode_shard_event(line);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, ev.type);
    EXPECT_EQ(back->key, ev.key);
    EXPECT_EQ(back->payload, ev.payload);
  }
}

TEST(ShardWire, TornAndCorruptLinesDecodeToNothing) {
  const std::string line = io::encode_shard_event(
      {io::ShardEventType::kDone, 7, record_to_jsonl(fake_record(7, 1.0))});
  // Torn anywhere: a prefix must never decode as a valid (different) event.
  for (std::size_t cut = 1; cut < line.size(); ++cut) {
    EXPECT_FALSE(io::decode_shard_event(line.substr(0, cut)).has_value())
        << "torn at " << cut;
  }
  EXPECT_FALSE(io::decode_shard_event("").has_value());
  EXPECT_FALSE(io::decode_shard_event("not json at all").has_value());
  // Valid checksum, unknown event type.
  EXPECT_FALSE(
      io::decode_shard_event(io::add_line_checksum("{\"ev\":\"mystery\"}"))
          .has_value());
}

TEST(ShardWire, ManifestRoundTripsAndRejectsCorruption) {
  const TempDir dir("manifest");
  const std::string path = (dir.path / "0.manifest").string();
  const std::vector<std::uint64_t> keys = {1, 0xffffffffffffffffull, 42, 7};
  ASSERT_TRUE(io::write_shard_manifest(path, keys));
  const auto back = io::read_shard_manifest(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, keys);

  // One flipped byte anywhere must reject the WHOLE manifest — a shard that
  // silently drops an assignment line would orphan jobs.
  std::string text = read_text(path);
  text[text.size() / 2] ^= 0x20;
  std::ofstream(path, std::ios::trunc | std::ios::binary) << text;
  EXPECT_FALSE(io::read_shard_manifest(path).has_value());
  EXPECT_FALSE(io::read_shard_manifest((dir.path / "no.manifest").string())
                   .has_value());
}

// --- Merger -----------------------------------------------------------------

TEST(ShardMerge, UnionsShardStoresInJobOrder) {
  const TempDir dir("merge");
  write_store((dir.path / shard_store_file(0)).string(),
              {fake_record(3, 1.0), fake_record(1, 2.0)});
  write_store((dir.path / shard_store_file(1)).string(), {fake_record(2, 3.0)});
  const std::vector<std::uint64_t> order = {1, 2, 3};
  const MergeStats stats = merge_shard_stores(dir.str(), &order);
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.shard_files, 2u);
  EXPECT_EQ(stats.merged_records, 3u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.conflicts, 0u);

  const std::vector<JobRecord> merged =
      read_store_records((dir.path / "store.jsonl").string());
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, 1u);
  EXPECT_EQ(merged[1].key, 2u);
  EXPECT_EQ(merged[2].key, 3u);
  // Shard stores are consumed once the merged store landed.
  EXPECT_FALSE(fs::exists(dir.path / shard_store_file(0)));
  EXPECT_FALSE(fs::exists(dir.path / shard_store_file(1)));
  // Re-merging with nothing left is a clean no-op.
  const MergeStats again = merge_shard_stores(dir.str(), &order);
  EXPECT_TRUE(again.ok);
  EXPECT_EQ(again.shard_files, 0u);
}

TEST(ShardMerge, IdenticalDuplicatesCollapseConflictsQuarantine) {
  const TempDir dir("dup");
  JobRecord dup_a = fake_record(5, 1.0);
  JobRecord dup_b = dup_a;
  dup_b.wall_ms = 999.0;  // timing may differ between workers — NOT a conflict
  JobRecord conflict = fake_record(6, 1.0);
  JobRecord conflict2 = conflict;
  conflict2.best_power_mw = 2.0;  // payload differs — determinism violation

  write_store((dir.path / shard_store_file(0)).string(), {dup_a, conflict});
  write_store((dir.path / shard_store_file(1)).string(), {dup_b, conflict2});
  const MergeStats stats = merge_shard_stores(dir.str());
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.merged_records, 2u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.conflicts, 1u);

  // First writer won; the conflicting loser is quarantined, checksummed.
  const std::vector<JobRecord> merged =
      read_store_records((dir.path / "store.jsonl").string());
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[1].best_power_mw, 1.0);
  const std::string quarantine =
      read_text((dir.path / "store.quarantine.jsonl").string());
  EXPECT_NE(quarantine.find("duplicate_conflict"), std::string::npos);
  std::string payload;
  EXPECT_EQ(io::verify_line_checksum(
                quarantine.substr(0, quarantine.find('\n')), &payload),
            io::ChecksumStatus::kOk);
}

TEST(ShardMerge, CorruptLinesAreQuarantinedNotMerged) {
  const TempDir dir("corrupt");
  write_store((dir.path / shard_store_file(0)).string(), {fake_record(1, 1.0)});
  {
    std::ofstream out((dir.path / shard_store_file(0)).string(), std::ios::app);
    out << "{\"torn\":tr";  // no newline: a torn tail
  }
  const MergeStats stats = merge_shard_stores(dir.str());
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.merged_records, 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_TRUE(fs::exists(dir.path / "store.quarantine.jsonl"));
  // The family verifier sees a healthy post-merge state: quarantine lines
  // are themselves checksummed (satellite of store v2).
  const VerifyStats vs = verify_stores(dir.str());
  EXPECT_TRUE(vs.clean()) << vs.summary();
  EXPECT_EQ(vs.records, 1u);
  EXPECT_EQ(vs.ledger_lines, 1u);
}

TEST(ShardVerify, FlagsTamperedStoresAndLedgers) {
  const TempDir dir("verify");
  write_store((dir.path / "store.jsonl").string(),
              {fake_record(1, 1.0), fake_record(2, 2.0)});
  write_store((dir.path / shard_store_file(0)).string(), {fake_record(1, 9.0)});
  {
    std::ofstream out((dir.path / "failed.jsonl").string());
    out << "no checksum here\n";
  }
  const VerifyStats vs = verify_stores(dir.str());
  EXPECT_FALSE(vs.clean());
  EXPECT_EQ(vs.duplicate_keys, 1u);    // key 1 in two store files
  EXPECT_EQ(vs.checksum_failures, 1u);  // the bare ledger line
  EXPECT_EQ(vs.files, 3u);
}

// --- End-to-end supervisor runs (real worker processes) ---------------------

TEST(ShardSupervisor, MatchesSingleProcessBitForBit) {
  const TempDir dir("e2e");
  const std::string spec_path = write_campaign_file(dir);
  const CampaignSpec spec = small_campaign();

  // Reference: the ordinary in-process engine, fresh store.
  CampaignOptions ref;
  ref.cache_dir = (dir.path / "ref_cache").string();
  ref.include_timing = false;
  ref.threads = 2;
  const CampaignResult reference = run_campaign(spec, ref);

  ShardCampaignOptions sopt = sharded_options(dir, spec_path, 3);
  const ShardCampaignResult sharded = run_sharded_campaign(spec, sopt);

  ASSERT_TRUE(sharded.merge.ok) << sharded.merge.error;
  EXPECT_EQ(sharded.merge.conflicts, 0u);
  EXPECT_EQ(sharded.campaign.jobs_total(), reference.jobs_total());
  EXPECT_EQ(records_jsonl(sharded.campaign.records),
            records_jsonl(reference.records));
  EXPECT_GT(sharded.campaign.metrics.value("workers_spawned"), 0.0);
  EXPECT_EQ(sharded.campaign.metrics.value("worker_crashes"), 0.0);

  // The merged store serves a resume run entirely from cache, and the
  // record stream (modulo cache_hit) matches the reference again.
  CampaignOptions res;
  res.cache_dir = sopt.base.cache_dir;
  res.resume = true;
  res.include_timing = false;
  const CampaignResult resumed = run_campaign(spec, res);
  EXPECT_EQ(resumed.cache_hits(), reference.jobs_total());
  EXPECT_EQ(resumed.jobs_run(), 0);
}

TEST(ShardSupervisor, SurvivesWorkerCrashWithIdenticalResults) {
  const TempDir dir("chaos");
  const std::string spec_path = write_campaign_file(dir);
  const CampaignSpec spec = small_campaign();

  CampaignOptions ref;
  ref.cache_dir = (dir.path / "ref_cache").string();
  ref.include_timing = false;
  ref.threads = 2;
  const CampaignResult reference = run_campaign(spec, ref);

  // Every worker SIGKILLs itself at its first job start (workers inherit
  // the env); respawns run with injection disarmed and finish the shard.
  ::setenv("VINOC_FAULT", "shard_crash:1@1", 1);
  ShardCampaignOptions sopt = sharded_options(dir, spec_path, 3);
  const ShardCampaignResult sharded = run_sharded_campaign(spec, sopt);
  ::unsetenv("VINOC_FAULT");

  ASSERT_TRUE(sharded.merge.ok) << sharded.merge.error;
  EXPECT_GT(sharded.campaign.metrics.value("worker_crashes"), 0.0);
  EXPECT_GT(sharded.campaign.metrics.value("worker_respawns"), 0.0);
  EXPECT_EQ(sharded.campaign.quarantined_jobs(), 0);
  // The acceptance bar: records bit-identical to the single-process run.
  EXPECT_EQ(records_jsonl(sharded.campaign.records),
            records_jsonl(reference.records));
  EXPECT_TRUE(verify_stores(sopt.base.cache_dir).clean());
}

TEST(ShardSupervisor, ExhaustedCrashRetriesQuarantineTheJob) {
  const TempDir dir("quarantine");
  const std::string spec_path = write_campaign_file(dir);
  const CampaignSpec spec = small_campaign();

  // Unbounded crash site + zero crash retries: the first job a worker
  // announces is immediately blamed and quarantined; the respawned worker
  // (injection disarmed) completes the rest.
  ::setenv("VINOC_FAULT", "shard_crash:1@1", 1);
  ShardCampaignOptions sopt = sharded_options(dir, spec_path, 2);
  sopt.crash_retries = 0;
  const ShardCampaignResult sharded = run_sharded_campaign(spec, sopt);
  ::unsetenv("VINOC_FAULT");

  ASSERT_TRUE(sharded.merge.ok) << sharded.merge.error;
  EXPECT_GT(sharded.campaign.quarantined_jobs(), 0);
  // One record per job regardless; quarantined ones carry status "failed".
  EXPECT_EQ(static_cast<int>(sharded.campaign.records.size()),
            sharded.campaign.jobs_total());
  int failed = 0;
  for (const JobRecord& rec : sharded.campaign.records) {
    if (rec.status == "failed") ++failed;
  }
  EXPECT_EQ(failed, sharded.campaign.quarantined_jobs());
  // The quarantine ledger is populated and checksummed.
  const std::string ledger =
      read_text((fs::path(sopt.base.cache_dir) / "failed.jsonl").string());
  EXPECT_FALSE(ledger.empty());
  std::string payload;
  EXPECT_EQ(io::verify_line_checksum(ledger.substr(0, ledger.find('\n')),
                                     &payload),
            io::ChecksumStatus::kOk);
}

}  // namespace
}  // namespace vinoc::campaign

// Durable store v2: checksummed lines, recovery-on-open (torn tails,
// corrupt lines, v1 upgrades, duplicate keys), the size-cap eviction
// policy, and --resume convergence after a simulated mid-append kill.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vinoc/campaign/campaign_spec.hpp"
#include "vinoc/campaign/engine.hpp"
#include "vinoc/campaign/report.hpp"
#include "vinoc/campaign/result_cache.hpp"
#include "vinoc/io/jsonl.hpp"

namespace vinoc::campaign {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

/// A synthetic record keyed by `i`; content is irrelevant, identity is not.
JobRecord fake_record(int i) {
  JobRecord rec;
  rec.campaign = "store_test";
  rec.job = "job" + std::to_string(i);
  rec.key = 0x1000 + static_cast<std::uint64_t>(i);
  rec.feasible = true;
  rec.points = i;
  return rec;
}

std::vector<std::string> store_lines(const ResultCache& cache) {
  std::ifstream in(cache.store_path());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Tiny fast matrix (one synthetic scenario, 4 jobs).
CampaignSpec tiny_campaign() {
  CampaignSpec spec;
  spec.name = "recovery";
  SyntheticScenario family;
  family.params.cores = 9;
  family.params.hubs = 2;
  spec.synthetic.push_back(family);
  spec.strategies = {"logical"};
  spec.island_counts = {2, 3};
  spec.widths = {32, 64};
  return spec;
}

TEST(StoreRecovery, EveryStoreLineCarriesAValidChecksum) {
  const fs::path dir = fresh_dir("vinoc_store_v2_test");
  ResultCache cache(dir.string());
  for (int i = 0; i < 5; ++i) cache.put_record(fake_record(i));
  const std::vector<std::string> lines = store_lines(cache);
  ASSERT_EQ(lines.size(), 5u);
  for (const std::string& line : lines) {
    std::string payload;
    EXPECT_EQ(io::verify_line_checksum(line, &payload), io::ChecksumStatus::kOk);
    JobRecord rec;
    EXPECT_TRUE(record_from_jsonl(payload, rec));
  }
  fs::remove_all(dir);
}

TEST(StoreRecovery, TornTailIsQuarantinedAndStoreRepublished) {
  const fs::path dir = fresh_dir("vinoc_store_torn_test");
  {
    ResultCache cache(dir.string());
    for (int i = 0; i < 4; ++i) cache.put_record(fake_record(i));
  }
  // Simulate a SIGKILL mid-append: chop the file mid-final-line.
  const fs::path store = dir / "store.jsonl";
  const auto full = fs::file_size(store);
  fs::resize_file(store, full - 10);

  ResultCache cache(dir.string());
  const StoreRecoveryStats stats = cache.load_store();
  EXPECT_EQ(stats.loaded, 3u);     // the three intact records
  EXPECT_EQ(stats.recovered, 1u);  // exactly the torn one
  EXPECT_TRUE(stats.rewritten);
  EXPECT_EQ(cache.recovered_records(), 1u);
  EXPECT_TRUE(fs::exists(cache.quarantine_path()));

  // The republished store is clean: a second open recovers nothing.
  ResultCache again(dir.string());
  const StoreRecoveryStats clean = again.load_store();
  EXPECT_EQ(clean.loaded, 3u);
  EXPECT_EQ(clean.recovered, 0u);
  EXPECT_FALSE(clean.rewritten);

  // The dangerous case the rewrite prevents: append after the torn tail.
  // The new record must land on its own line, not concatenate.
  cache.put_record(fake_record(9));
  for (const std::string& line : store_lines(cache)) {
    EXPECT_EQ(io::verify_line_checksum(line, nullptr),
              io::ChecksumStatus::kOk);
  }
  fs::remove_all(dir);
}

TEST(StoreRecovery, CorruptMiddleLineQuarantinedOthersSurvive) {
  const fs::path dir = fresh_dir("vinoc_store_corrupt_test");
  {
    ResultCache cache(dir.string());
    for (int i = 0; i < 4; ++i) cache.put_record(fake_record(i));
  }
  const fs::path store = dir / "store.jsonl";
  std::string text;
  {
    std::ifstream in(store, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  const std::size_t second_line = text.find('\n') + 1;
  text[second_line + 8] ^= 0x20;  // flip a byte inside line 2
  {
    std::ofstream out(store, std::ios::binary | std::ios::trunc);
    out << text;
  }
  ResultCache cache(dir.string());
  const StoreRecoveryStats stats = cache.load_store();
  EXPECT_EQ(stats.loaded, 3u);
  EXPECT_EQ(stats.recovered, 1u);
  EXPECT_TRUE(stats.rewritten);
  EXPECT_FALSE(cache.find_record(fake_record(1).key).has_value());
  EXPECT_TRUE(cache.find_record(fake_record(0).key).has_value());
  EXPECT_TRUE(cache.find_record(fake_record(3).key).has_value());
  fs::remove_all(dir);
}

TEST(StoreRecovery, ChecksumlessV1LinesAreUpgradedInPlace) {
  const fs::path dir = fresh_dir("vinoc_store_v1_test");
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "store.jsonl");
    for (int i = 0; i < 3; ++i) {
      out << record_to_jsonl(fake_record(i)) << '\n';  // v1: no _crc
    }
  }
  ResultCache cache(dir.string());
  const StoreRecoveryStats stats = cache.load_store();
  EXPECT_EQ(stats.loaded, 3u);
  EXPECT_EQ(stats.recovered, 0u);  // v1 lines are valid, just unstamped
  EXPECT_TRUE(stats.rewritten);    // ...so the store was republished as v2
  for (const std::string& line : store_lines(cache)) {
    EXPECT_EQ(io::verify_line_checksum(line, nullptr),
              io::ChecksumStatus::kOk);
  }
  fs::remove_all(dir);
}

TEST(StoreRecovery, SizeCapEvictsOldestFirst) {
  const fs::path dir = fresh_dir("vinoc_store_cap_test");
  ResultCache cache(dir.string());
  const std::string one_line = io::add_line_checksum(
      record_to_jsonl(fake_record(0)));
  // Room for roughly three records.
  cache.set_store_max_bytes(3 * (one_line.size() + 1) + 8);
  for (int i = 0; i < 8; ++i) cache.put_record(fake_record(i));
  EXPECT_GT(cache.evicted_records(), 0u);
  EXPECT_LE(fs::file_size(cache.store_path()), 3 * (one_line.size() + 1) + 8);

  // Newest record survives on disk; evicted ones stay served from memory.
  ResultCache reopened(dir.string());
  (void)reopened.load_store();
  EXPECT_TRUE(reopened.find_record(fake_record(7).key).has_value());
  EXPECT_FALSE(reopened.find_record(fake_record(0).key).has_value());
  EXPECT_TRUE(cache.find_record(fake_record(0).key).has_value());
  fs::remove_all(dir);
}

TEST(StoreRecovery, EvictionThenTornTailRecoversCleanly) {
  // The crash-after-eviction composition: a size-capped store that has
  // already evicted records loses the tail of its final line (power cut
  // mid-append), and the next open must recover without touching the
  // surviving capped records.
  const fs::path dir = fresh_dir("vinoc_store_cap_torn_test");
  const std::string one_line =
      io::add_line_checksum(record_to_jsonl(fake_record(0)));
  {
    ResultCache cache(dir.string());
    cache.set_store_max_bytes(4 * (one_line.size() + 1) + 8);
    for (int i = 0; i < 10; ++i) cache.put_record(fake_record(i));
    ASSERT_GT(cache.evicted_records(), 0u);
  }
  fs::resize_file(dir / "store.jsonl", fs::file_size(dir / "store.jsonl") - 5);

  ResultCache reopened(dir.string());
  const StoreRecoveryStats stats = reopened.load_store();
  EXPECT_EQ(stats.recovered, 1u);  // the torn final record
  EXPECT_TRUE(stats.rewritten);
  EXPECT_EQ(stats.loaded, 3u);  // the other records the cap had kept
  EXPECT_FALSE(reopened.find_record(fake_record(9).key).has_value());
  EXPECT_TRUE(reopened.find_record(fake_record(8).key).has_value());
  // The republished store is fully healthy again...
  for (const std::string& line : store_lines(reopened)) {
    EXPECT_EQ(io::verify_line_checksum(line, nullptr),
              io::ChecksumStatus::kOk);
  }
  // ...and the torn bytes sit in the quarantine ledger, themselves inside a
  // checksummed envelope.
  std::ifstream qin(dir / "store.quarantine.jsonl");
  std::string qline;
  ASSERT_TRUE(std::getline(qin, qline));
  EXPECT_EQ(io::verify_line_checksum(qline, nullptr), io::ChecksumStatus::kOk);
  EXPECT_NE(qline.find("store recovery"), std::string::npos);
  fs::remove_all(dir);
}

TEST(StoreRecovery, DuplicateKeysOnDiskCollapseToOne) {
  const fs::path dir = fresh_dir("vinoc_store_dup_test");
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "store.jsonl");
    const std::string line =
        io::add_line_checksum(record_to_jsonl(fake_record(1)));
    out << line << '\n' << line << '\n';
  }
  ResultCache cache(dir.string());
  const StoreRecoveryStats stats = cache.load_store();
  EXPECT_EQ(stats.loaded, 1u);
  EXPECT_TRUE(stats.rewritten);
  EXPECT_EQ(store_lines(cache).size(), 1u);
  fs::remove_all(dir);
}

TEST(StoreRecovery, ResumeAfterTornTailConvergesToReferenceStream) {
  const fs::path ref_dir = fresh_dir("vinoc_store_ref_run");
  const CampaignSpec spec = tiny_campaign();

  CampaignOptions opt;
  opt.threads = 1;
  opt.include_timing = false;
  opt.cache_dir = ref_dir.string();
  const CampaignResult reference = run_campaign(spec, opt);
  ASSERT_EQ(reference.jobs_total(), 4);

  // Tear the final record off a copy of the healthy store, then resume.
  const fs::path dir = fresh_dir("vinoc_store_resume_run");
  fs::create_directories(dir);
  fs::copy_file(ref_dir / "store.jsonl", dir / "store.jsonl");
  fs::resize_file(dir / "store.jsonl",
                  fs::file_size(dir / "store.jsonl") - 7);

  CampaignOptions ropt = opt;
  ropt.cache_dir = dir.string();
  ropt.resume = true;
  const CampaignResult resumed = run_campaign(spec, ropt);
  EXPECT_EQ(resumed.recovered_records(), 1);
  EXPECT_EQ(resumed.cache_hits(), 3);   // the intact records served
  EXPECT_EQ(resumed.jobs_run(), 1);     // exactly the torn one recomputed

  // Bit-identical convergence, modulo the cache_hit flag.
  auto normalized = [](const CampaignResult& r) {
    std::string out;
    for (JobRecord rec : r.records) {
      rec.cache_hit = false;
      out += record_to_jsonl(rec, false);
      out += '\n';
    }
    return out;
  };
  EXPECT_EQ(normalized(reference), normalized(resumed));
  fs::remove_all(ref_dir);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace vinoc::campaign

// Unit + property tests for the k-way min-cut partitioner, including
// optimality cross-checks against the exact ILP bisection on small graphs.
#include <gtest/gtest.h>

#include <random>

#include "vinoc/graph/algorithms.hpp"
#include "vinoc/ilp/mincut_model.hpp"
#include "vinoc/partition/kway.hpp"

namespace vinoc::partition {
namespace {

using graph::Digraph;

Digraph two_clusters(double bridge_weight) {
  // Nodes 0-3 tightly coupled, 4-7 tightly coupled, one bridge.
  Digraph g(8);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.add_edge(i, j, 6.0);
  }
  for (int i = 4; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) g.add_edge(i, j, 6.0);
  }
  g.add_edge(3, 4, bridge_weight);
  return g;
}

TEST(KwayMincut, FindsNaturalBisection) {
  const Digraph g = two_clusters(1.0);
  KwayOptions opts;
  opts.blocks = 2;
  const PartitionResult r = kway_mincut(g, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cut_weight, 1.0);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(r.block_of[0], r.block_of[static_cast<std::size_t>(i)]);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(r.block_of[4], r.block_of[static_cast<std::size_t>(i)]);
  EXPECT_NE(r.block_of[0], r.block_of[4]);
}

TEST(KwayMincut, SingleBlockIsTrivial) {
  const Digraph g = two_clusters(1.0);
  KwayOptions opts;
  opts.blocks = 1;
  const PartitionResult r = kway_mincut(g, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cut_weight, 0.0);
  for (const int b : r.block_of) EXPECT_EQ(b, 0);
}

TEST(KwayMincut, RespectsBlockSizeCap) {
  const Digraph g = two_clusters(1.0);
  KwayOptions opts;
  opts.blocks = 4;
  opts.max_block_size = 2;
  const PartitionResult r = kway_mincut(g, opts);
  ASSERT_TRUE(r.feasible);
  for (const std::size_t s : block_sizes(r.block_of, 4)) EXPECT_LE(s, 2u);
}

TEST(KwayMincut, ImpossibleCapThrows) {
  const Digraph g = two_clusters(1.0);
  KwayOptions opts;
  opts.blocks = 2;
  opts.max_block_size = 3;  // 2 * 3 < 8
  EXPECT_THROW((void)kway_mincut(g, opts), std::invalid_argument);
  opts.blocks = 0;
  EXPECT_THROW((void)kway_mincut(g, opts), std::invalid_argument);
}

TEST(KwayMincut, EmptyGraphIsFine) {
  Digraph g;
  KwayOptions opts;
  opts.blocks = 3;
  const PartitionResult r = kway_mincut(g, opts);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.block_of.empty());
}

TEST(KwayMincut, MoreBlocksThanNodesLeavesEmptyBlocks) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  KwayOptions opts;
  opts.blocks = 5;
  const PartitionResult r = kway_mincut(g, opts);
  ASSERT_TRUE(r.feasible);
  // All block ids must be valid; at most 3 distinct.
  for (const int b : r.block_of) {
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 5);
  }
}

TEST(KwayMincut, DeterministicForFixedSeed) {
  const Digraph g = two_clusters(2.0);
  KwayOptions opts;
  opts.blocks = 3;
  opts.seed = 7;
  const PartitionResult a = kway_mincut(g, opts);
  const PartitionResult b = kway_mincut(g, opts);
  EXPECT_EQ(a.block_of, b.block_of);
  EXPECT_DOUBLE_EQ(a.cut_weight, b.cut_weight);
}

TEST(KwayMincut, DirectedWeightsCountedOnce) {
  // cut_weight of the result is reported on the undirected view.
  Digraph g(4);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 0, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(3, 2, 2.0);
  g.add_edge(1, 2, 1.0);
  KwayOptions opts;
  opts.blocks = 2;
  const PartitionResult r = kway_mincut(g, opts);
  EXPECT_DOUBLE_EQ(r.cut_weight, 1.0);
}

// Property: on random small graphs, the FM bisection must be within 1.6x of
// the ILP optimum (and usually equal).
class BisectionQualityTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BisectionQualityTest, CloseToIlpOptimum) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> wdist(0.5, 5.0);
  const std::size_t n = 10;
  Digraph g(n);
  std::uniform_int_distribution<int> ndist(0, static_cast<int>(n) - 1);
  for (int e = 0; e < 22; ++e) {
    const int a = ndist(rng);
    int b = ndist(rng);
    if (a == b) b = (b + 1) % static_cast<int>(n);
    g.add_edge(a, b, wdist(rng));
  }
  KwayOptions opts;
  opts.blocks = 2;
  opts.max_block_size = 5;
  opts.restarts = 8;
  const PartitionResult heur = kway_mincut(g, opts);
  ASSERT_TRUE(heur.feasible);

  const ilp::BisectionResult exact = ilp::optimal_bisection(g, 5, 5);
  ASSERT_TRUE(exact.feasible);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_GE(heur.cut_weight, exact.cut_weight - 1e-9);
  EXPECT_LE(heur.cut_weight, exact.cut_weight * 1.6 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BisectionQualityTest, ::testing::Range(200u, 210u));

// Property: k-way cut weight always matches a direct recount, block ids are
// in range, caps hold.
class KwayInvariantTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(KwayInvariantTest, CutRecountAndBounds) {
  const auto [seed, blocks] = GetParam();
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> wdist(0.1, 8.0);
  const std::size_t n = 18;
  Digraph g(n);
  std::uniform_int_distribution<int> ndist(0, static_cast<int>(n) - 1);
  for (int e = 0; e < 40; ++e) {
    const int a = ndist(rng);
    int b = ndist(rng);
    if (a == b) b = (b + 1) % static_cast<int>(n);
    g.add_edge(a, b, wdist(rng));
  }
  KwayOptions opts;
  opts.blocks = blocks;
  opts.max_block_size = (n + static_cast<std::size_t>(blocks) - 1) /
                            static_cast<std::size_t>(blocks) + 2;
  opts.seed = seed;
  const PartitionResult r = kway_mincut(g, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(g.undirected_view().cut_weight(r.block_of), r.cut_weight, 1e-9);
  for (const int b : r.block_of) {
    EXPECT_GE(b, 0);
    EXPECT_LT(b, blocks);
  }
  for (const std::size_t s : block_sizes(r.block_of, blocks)) {
    EXPECT_LE(s, opts.max_block_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KwayInvariantTest,
    ::testing::Combine(::testing::Values(31u, 32u, 33u, 34u),
                       ::testing::Values(2, 3, 4, 6)));

// Property: pairwise refinement never worsens the cut and keeps all caps.
class PairwiseRefinementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PairwiseRefinementTest, NeverWorseThanRecursiveBisectionAlone) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> wdist(0.2, 6.0);
  const std::size_t n = 20;
  Digraph g(n);
  std::uniform_int_distribution<int> ndist(0, static_cast<int>(n) - 1);
  for (int e = 0; e < 45; ++e) {
    const int a = ndist(rng);
    int b = ndist(rng);
    if (a == b) b = (b + 1) % static_cast<int>(n);
    g.add_edge(a, b, wdist(rng));
  }
  KwayOptions base;
  base.blocks = 4;
  base.max_block_size = 7;
  base.seed = GetParam();
  base.pairwise_refinement = false;
  KwayOptions refined = base;
  refined.pairwise_refinement = true;
  const PartitionResult before = kway_mincut(g, base);
  const PartitionResult after = kway_mincut(g, refined);
  ASSERT_TRUE(before.feasible);
  ASSERT_TRUE(after.feasible);
  EXPECT_LE(after.cut_weight, before.cut_weight + 1e-9);
  for (const std::size_t s : block_sizes(after.block_of, refined.blocks)) {
    EXPECT_LE(s, refined.max_block_size);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairwiseRefinementTest,
                         ::testing::Range(400u, 410u));

TEST(PairwiseRefinement, FixesSuboptimalRecursiveSplit) {
  // Three triangles in a row, 9 nodes, 3 blocks of <= 3. Recursive
  // bisection may split a triangle at the first level; the pairwise pass
  // must recover the natural clustering's cut (the two bridges).
  Digraph g(9);
  for (int t = 0; t < 3; ++t) {
    const int base_node = t * 3;
    g.add_edge(base_node, base_node + 1, 10.0);
    g.add_edge(base_node + 1, base_node + 2, 10.0);
    g.add_edge(base_node, base_node + 2, 10.0);
  }
  g.add_edge(2, 3, 1.0);
  g.add_edge(5, 6, 1.0);
  KwayOptions opts;
  opts.blocks = 3;
  opts.max_block_size = 3;
  const PartitionResult r = kway_mincut(g, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cut_weight, 2.0);
}

TEST(Agglomerative, MergesHeaviestPairsFirst) {
  Digraph g(5);
  g.add_edge(0, 1, 10.0);
  g.add_edge(2, 3, 8.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 0.5);
  const PartitionResult r = agglomerative_cluster(g, 3);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.block_of[0], r.block_of[1]);
  EXPECT_EQ(r.block_of[2], r.block_of[3]);
  EXPECT_NE(r.block_of[0], r.block_of[2]);
  EXPECT_EQ(r.blocks, 3);
}

TEST(Agglomerative, SizeCapPreventsMonsterClusters) {
  // Star around node 0: unbounded clustering would absorb everything.
  Digraph g(9);
  for (int leaf = 1; leaf < 9; ++leaf) {
    g.add_edge(0, leaf, 10.0 - leaf);  // distinct weights, deterministic
  }
  const PartitionResult r = agglomerative_cluster(g, 3, /*max_cluster_size=*/3);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.blocks, 3);
  for (const std::size_t s : block_sizes(r.block_of, r.blocks)) EXPECT_LE(s, 3u);
}

TEST(Agglomerative, ClusterCountHonoredOnDisconnectedGraphs) {
  Digraph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  // 4 and 5 isolated.
  const PartitionResult r = agglomerative_cluster(g, 2);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.blocks, 2);
}

TEST(Agglomerative, RejectsBadArguments) {
  Digraph g(4);
  EXPECT_THROW((void)agglomerative_cluster(g, 0), std::invalid_argument);
  EXPECT_THROW((void)agglomerative_cluster(g, 5), std::invalid_argument);
  EXPECT_THROW((void)agglomerative_cluster(g, 3, 1), std::invalid_argument);
}

TEST(BlockSizes, CountsCorrectly) {
  const std::vector<int> blocks = {0, 1, 1, 2, 2, 2};
  const auto sizes = block_sizes(blocks, 3);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 3u);
}

}  // namespace
}  // namespace vinoc::partition

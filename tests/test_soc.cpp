// Tests for the SoC specification model, islanding strategies, and the
// benchmark suite.
#include <gtest/gtest.h>

#include <set>

#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::soc {
namespace {

SocSpec small_spec() {
  SocSpec s;
  s.name = "t";
  s.islands = {{"vi0", 1.0, false}, {"vi1", 1.0, true}};
  CoreSpec a;
  a.name = "a";
  a.kind = CoreKind::kCpu;
  a.island = 0;
  CoreSpec b = a;
  b.name = "b";
  b.kind = CoreKind::kMemory;
  b.island = 0;
  CoreSpec c = a;
  c.name = "c";
  c.kind = CoreKind::kDsp;
  c.island = 1;
  s.cores = {a, b, c};
  Flow f;
  f.src = 0;
  f.dst = 1;
  f.bandwidth_bits_per_s = 1e9;
  f.max_latency_cycles = 10;
  s.flows.push_back(f);
  f.src = 2;
  f.dst = 1;
  f.bandwidth_bits_per_s = 2e9;
  s.flows.push_back(f);
  return s;
}

TEST(SocSpec, ValidSpecPassesValidation) {
  EXPECT_TRUE(small_spec().validate().empty());
}

TEST(SocSpec, CoresInIsland) {
  const SocSpec s = small_spec();
  const auto vi0 = s.cores_in_island(0);
  ASSERT_EQ(vi0.size(), 2u);
  EXPECT_EQ(vi0[0], 0);
  EXPECT_EQ(vi0[1], 1);
  EXPECT_EQ(s.cores_in_island(1).size(), 1u);
}

TEST(SocSpec, CoreGraphMirrorsFlows) {
  const SocSpec s = small_spec();
  const graph::Digraph g = s.core_graph();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(g.edges()[1].weight, 2e9);
  EXPECT_EQ(g.edges()[1].user, 1);
  EXPECT_EQ(g.node_name(0), "a");
}

TEST(SocSpec, FindCore) {
  const SocSpec s = small_spec();
  EXPECT_EQ(s.find_core("c"), 2);
  EXPECT_EQ(s.find_core("zz"), -1);
}

TEST(SocSpec, ValidationCatchesProblems) {
  SocSpec s = small_spec();
  s.cores[1].name = "a";  // duplicate
  s.cores[2].island = 9;  // out of range
  Flow f;
  f.src = 0;
  f.dst = 0;  // self flow
  f.bandwidth_bits_per_s = -1.0;
  f.max_latency_cycles = 0.0;
  s.flows.push_back(f);
  const auto problems = s.validate();
  EXPECT_GE(problems.size(), 4u);
}

TEST(SocSpec, ScenarioValidation) {
  SocSpec s = small_spec();
  Scenario sc;
  sc.name = "bad";
  sc.time_fraction = 1.5;
  sc.island_active = {true};  // wrong size
  s.scenarios.push_back(sc);
  const auto problems = s.validate();
  EXPECT_GE(problems.size(), 2u);
}

TEST(SocSpec, ScenarioGatingAlwaysOnIslandFlagged) {
  SocSpec s = small_spec();
  Scenario sc;
  sc.name = "gates_mem";
  sc.time_fraction = 0.5;
  sc.island_active = {false, true};  // island 0 is can_shutdown=false
  s.scenarios.push_back(sc);
  EXPECT_FALSE(s.validate().empty());
}

TEST(SocSpec, PowerAndAreaTotals) {
  SocSpec s = small_spec();
  s.cores[0].dynamic_power_w = 0.5;
  s.cores[1].dynamic_power_w = 0.25;
  s.cores[0].leakage_power_w = 0.1;
  s.cores[0].width_mm = 2.0;
  s.cores[0].height_mm = 3.0;
  EXPECT_DOUBLE_EQ(s.total_core_dynamic_w(), 0.75);
  EXPECT_DOUBLE_EQ(s.total_core_leakage_w(), 0.1);
  EXPECT_GT(s.total_core_area_mm2(), 6.0);
}

TEST(Islanding, ExplicitAssignmentRebuildsIslands) {
  const SocSpec base = small_spec();
  const SocSpec out = with_explicit_islands(base, {0, 1, 1}, 2);
  EXPECT_EQ(out.islands.size(), 2u);
  EXPECT_EQ(out.cores[0].island, 0);
  EXPECT_EQ(out.cores[1].island, 1);
  // Island 1 holds the shared memory core 'b' => cannot shut down.
  EXPECT_FALSE(out.islands[1].can_shutdown);
  EXPECT_TRUE(out.islands[0].can_shutdown);
}

TEST(Islanding, SingleIslandIsAlwaysOn) {
  const SocSpec base = small_spec();
  const SocSpec out = with_explicit_islands(base, {0, 0, 0}, 1);
  EXPECT_FALSE(out.islands[0].can_shutdown);
}

TEST(Islanding, ExplicitRejectsBadInput) {
  const SocSpec base = small_spec();
  EXPECT_THROW((void)with_explicit_islands(base, {0, 1}, 2), std::invalid_argument);
  EXPECT_THROW((void)with_explicit_islands(base, {0, 2, 0}, 2), std::invalid_argument);
  EXPECT_THROW((void)with_explicit_islands(base, {0, 0, 0}, 0), std::invalid_argument);
}

TEST(Islanding, UseCasesBecomeScenarios) {
  const SocSpec base = small_spec();
  const std::vector<UseCase> ucs = {{"uc", 0.5, {"c"}}};
  const SocSpec out = with_explicit_islands(base, {0, 0, 1}, 2, ucs);
  ASSERT_EQ(out.scenarios.size(), 1u);
  EXPECT_TRUE(out.scenarios[0].island_active[1]);  // c active
  // Island 0 has the memory => always-on => active regardless.
  EXPECT_TRUE(out.scenarios[0].island_active[0]);
  EXPECT_TRUE(out.validate().empty());
}

TEST(Islanding, LogicalGroupsCoverAllKinds) {
  std::set<int> groups;
  for (const CoreKind kind :
       {CoreKind::kCpu, CoreKind::kDsp, CoreKind::kGpu, CoreKind::kCache,
        CoreKind::kMemory, CoreKind::kMemController, CoreKind::kDma,
        CoreKind::kVideo, CoreKind::kImaging, CoreKind::kDisplay,
        CoreKind::kAudio, CoreKind::kModem, CoreKind::kCrypto,
        CoreKind::kPeripheral, CoreKind::kOther}) {
    const int g = logical_group_of(kind);
    EXPECT_GE(g, 0);
    EXPECT_LT(g, logical_group_count());
    groups.insert(g);
  }
  EXPECT_EQ(static_cast<int>(groups.size()), logical_group_count());
}

class LogicalIslandingTest : public ::testing::TestWithParam<int> {};

TEST_P(LogicalIslandingTest, D26SweepProducesValidSpecs) {
  const Benchmark d26 = make_d26_media_soc();
  const int k = GetParam();
  const SocSpec out = with_logical_islands(d26.soc, k, d26.use_cases);
  EXPECT_TRUE(out.validate().empty());
  EXPECT_LE(out.islands.size(), static_cast<std::size_t>(std::max(k, 1)));
  EXPECT_GE(out.islands.size(), 1u);
  // Shared memories always land in an always-on island.
  for (const CoreSpec& c : out.cores) {
    if (c.kind == CoreKind::kMemory) {
      EXPECT_FALSE(out.islands[static_cast<std::size_t>(c.island)].can_shutdown);
    }
  }
  // Scenarios must be rebuilt for the new islanding.
  EXPECT_EQ(out.scenarios.size(), d26.use_cases.size());
}

INSTANTIATE_TEST_SUITE_P(Counts, LogicalIslandingTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 12, 26));

class CommIslandingTest : public ::testing::TestWithParam<int> {};

TEST_P(CommIslandingTest, D26SweepProducesValidSpecs) {
  const Benchmark d26 = make_d26_media_soc();
  const int k = GetParam();
  const SocSpec out = with_communication_islands(d26.soc, k, d26.use_cases);
  EXPECT_TRUE(out.validate().empty());
  EXPECT_EQ(out.islands.size(), static_cast<std::size_t>(k));
}

INSTANTIATE_TEST_SUITE_P(Counts, CommIslandingTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 26));

TEST(CommIslanding, HeavyPairStaysTogether) {
  const Benchmark d26 = make_d26_media_soc();
  const SocSpec out = with_communication_islands(d26.soc, 4, d26.use_cases);
  // arm_cpu <-> l2_cache is the heaviest pair; they must share an island.
  const CoreId cpu = out.find_core("arm_cpu");
  const CoreId l2 = out.find_core("l2_cache");
  EXPECT_EQ(out.cores[static_cast<std::size_t>(cpu)].island,
            out.cores[static_cast<std::size_t>(l2)].island);
}

TEST(Benchmarks, AllAreValidAndSized) {
  for (const Benchmark& bm : all_benchmarks()) {
    EXPECT_TRUE(bm.soc.validate().empty()) << bm.soc.name;
    EXPECT_GE(bm.soc.core_count(), 16u) << bm.soc.name;
    EXPECT_GE(bm.soc.flows.size(), 30u) << bm.soc.name;
    EXPECT_FALSE(bm.use_cases.empty()) << bm.soc.name;
    double frac = 0.0;
    for (const UseCase& uc : bm.use_cases) frac += uc.time_fraction;
    EXPECT_LE(frac, 1.0 + 1e-9) << bm.soc.name;
    // Use cases reference real cores only.
    for (const UseCase& uc : bm.use_cases) {
      for (const std::string& name : uc.active_cores) {
        EXPECT_NE(bm.soc.find_core(name), -1)
            << bm.soc.name << " use case " << uc.name << " core " << name;
      }
    }
  }
}

TEST(Benchmarks, D26HasTwentySixCores) {
  EXPECT_EQ(make_d26_media_soc().soc.core_count(), 26u);
}

TEST(Benchmarks, D64HasSixtyFourCores) {
  EXPECT_EQ(make_d64_tile_soc().soc.core_count(), 64u);
}

TEST(Benchmarks, LeakageShareMatchesCitedEra) {
  // The paper cites [6]: leakage can be 40%+ of total power. Our D26
  // reconstruction must land in that regime (35-50% at full activity).
  const Benchmark d26 = make_d26_media_soc();
  const double leak = d26.soc.total_core_leakage_w();
  const double total = leak + d26.soc.total_core_dynamic_w();
  EXPECT_GT(leak / total, 0.35);
  EXPECT_LT(leak / total, 0.50);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticParams p;
  p.cores = 20;
  p.seed = 5;
  const Benchmark a = make_synthetic_soc(p);
  const Benchmark b = make_synthetic_soc(p);
  ASSERT_EQ(a.soc.flows.size(), b.soc.flows.size());
  for (std::size_t i = 0; i < a.soc.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.soc.flows[i].bandwidth_bits_per_s,
                     b.soc.flows[i].bandwidth_bits_per_s);
  }
}

TEST(Synthetic, HubNiLoadStaysRealizable) {
  for (const int cores : {12, 24, 48, 96}) {
    SyntheticParams p;
    p.cores = cores;
    p.hubs = std::max(1, cores / 12);
    const Benchmark bm = make_synthetic_soc(p);
    std::vector<double> in_bw(bm.soc.core_count(), 0.0);
    std::vector<double> out_bw(bm.soc.core_count(), 0.0);
    for (const Flow& f : bm.soc.flows) {
      out_bw[static_cast<std::size_t>(f.src)] += f.bandwidth_bits_per_s;
      in_bw[static_cast<std::size_t>(f.dst)] += f.bandwidth_bits_per_s;
    }
    for (std::size_t c = 0; c < bm.soc.core_count(); ++c) {
      EXPECT_LE(std::max(in_bw[c], out_bw[c]), 32.0e9)
          << bm.soc.name << " core " << bm.soc.cores[c].name;
    }
  }
}

TEST(Synthetic, RejectsBadParams) {
  SyntheticParams p;
  p.cores = 3;
  EXPECT_THROW((void)make_synthetic_soc(p), std::invalid_argument);
  p.cores = 10;
  p.hubs = 10;
  EXPECT_THROW((void)make_synthetic_soc(p), std::invalid_argument);
}

TEST(CoreKindNames, RoundTripStrings) {
  EXPECT_STREQ(to_string(CoreKind::kCpu), "cpu");
  EXPECT_STREQ(to_string(CoreKind::kMemController), "mem_ctrl");
  EXPECT_STREQ(to_string(CoreKind::kPeripheral), "peripheral");
}

}  // namespace
}  // namespace vinoc::soc

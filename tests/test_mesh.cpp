// Tests for the regular 2D-mesh baseline.
#include <gtest/gtest.h>

#include "vinoc/core/deadlock.hpp"
#include "vinoc/core/mesh_baseline.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/sim/simulator.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::core {
namespace {

soc::SocSpec d26_flat() {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  return soc::with_logical_islands(d26.soc, 1, d26.use_cases);
}

TEST(MeshBaseline, GridCoversAllCores) {
  const soc::SocSpec spec = d26_flat();
  const MeshResult mesh = synthesize_mesh_baseline(spec);
  ASSERT_TRUE(mesh.ok) << mesh.failure_reason;
  EXPECT_GE(mesh.rows * mesh.cols, static_cast<int>(spec.core_count()));
  EXPECT_LE((mesh.rows - 1) * mesh.cols, static_cast<int>(spec.core_count()));
  EXPECT_EQ(mesh.topology.switches.size(),
            static_cast<std::size_t>(mesh.rows * mesh.cols));
  // One core per switch at most.
  for (const SwitchInst& sw : mesh.topology.switches) {
    EXPECT_LE(sw.cores.size(), 1u);
  }
}

TEST(MeshBaseline, TopologyStructurallyValid) {
  const soc::SocSpec spec = d26_flat();
  const MeshResult mesh = synthesize_mesh_baseline(spec);
  ASSERT_TRUE(mesh.ok);
  EXPECT_TRUE(mesh.topology.validate(spec).empty());
}

TEST(MeshBaseline, XyRoutingIsDeadlockFree) {
  // Dimension-order routing is the textbook deadlock-free scheme; our CDG
  // verifier must agree (cross-check of both components).
  for (const soc::Benchmark& bm : soc::all_benchmarks()) {
    const soc::SocSpec spec = soc::with_logical_islands(bm.soc, 1, bm.use_cases);
    const MeshResult mesh = synthesize_mesh_baseline(spec);
    ASSERT_TRUE(mesh.ok) << bm.soc.name;
    EXPECT_TRUE(is_deadlock_free(mesh.topology)) << bm.soc.name;
  }
}

TEST(MeshBaseline, RouteHopsMatchManhattanSlotDistance) {
  const soc::SocSpec spec = d26_flat();
  const MeshResult mesh = synthesize_mesh_baseline(spec);
  ASSERT_TRUE(mesh.ok);
  const int cols = mesh.cols;
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const FlowRoute& r = mesh.topology.routes[f];
    const int a = r.src_switch;
    const int b = r.dst_switch;
    const int dist = std::abs(a / cols - b / cols) + std::abs(a % cols - b % cols);
    EXPECT_EQ(static_cast<int>(r.links.size()), dist) << "flow " << f;
  }
}

TEST(MeshBaseline, HeavyCommunicatorsPlacedClose) {
  const soc::SocSpec spec = d26_flat();
  const MeshResult mesh = synthesize_mesh_baseline(spec);
  ASSERT_TRUE(mesh.ok);
  // The heaviest pair (arm_cpu <-> l2_cache) must be adjacent in the grid.
  const int a = mesh.topology.switch_of_core[static_cast<std::size_t>(
      spec.find_core("arm_cpu"))];
  const int b = mesh.topology.switch_of_core[static_cast<std::size_t>(
      spec.find_core("l2_cache"))];
  const int cols = mesh.cols;
  const int dist = std::abs(a / cols - b / cols) + std::abs(a % cols - b % cols);
  EXPECT_LE(dist, 1);
}

TEST(MeshBaseline, CustomSynthesisBeatsMeshOnPower) {
  const soc::SocSpec spec = d26_flat();
  const MeshResult mesh = synthesize_mesh_baseline(spec);
  ASSERT_TRUE(mesh.ok);
  const SynthesisResult custom = synthesize(spec);
  ASSERT_FALSE(custom.points.empty());
  EXPECT_LT(custom.best_power().metrics.noc_dynamic_w,
            mesh.metrics.noc_dynamic_w);
  EXPECT_LT(custom.best_latency().metrics.avg_latency_cycles,
            mesh.metrics.avg_latency_cycles);
}

TEST(MeshBaseline, UtilizationConsistentWithSimulator) {
  const soc::SocSpec spec = d26_flat();
  const MeshResult mesh = synthesize_mesh_baseline(spec);
  ASSERT_TRUE(mesh.ok);
  ASSERT_LE(mesh.max_link_utilization, 1.0);  // D26 fits a 32-bit mesh
  // The saturation headroom also accounts NI attach links, so it can only
  // be tighter than (or equal to) the inverse mesh-link utilization.
  const double headroom = sim::find_saturation_scale(mesh.topology, spec);
  EXPECT_GT(headroom, 1.0 - 1e-9);  // D26 traffic fits with margin
  EXPECT_LE(headroom, 1.0 / mesh.max_link_utilization + 1e-9);
  sim::SimOptions opts;
  opts.duration_cycles = 20'000;
  opts.warmup_cycles = 2'000;
  const sim::SimReport report = sim::simulate(
      mesh.topology, spec, models::Technology::cmos65nm(), opts);
  EXPECT_FALSE(report.saturated);
  EXPECT_GT(report.packets_delivered, 0);
}

TEST(MeshBaseline, RejectsMultiIslandSpec) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 4, d26.use_cases);
  const MeshResult mesh = synthesize_mesh_baseline(spec);
  EXPECT_FALSE(mesh.ok);
  EXPECT_NE(mesh.failure_reason.find("single-island"), std::string::npos);
}

TEST(MeshBaseline, ExplicitChipDimensionsRespected) {
  const soc::SocSpec spec = d26_flat();
  MeshOptions opts;
  opts.chip_w_mm = 12.0;
  opts.chip_h_mm = 6.0;
  const MeshResult mesh = synthesize_mesh_baseline(spec, opts);
  ASSERT_TRUE(mesh.ok);
  for (const SwitchInst& sw : mesh.topology.switches) {
    EXPECT_LE(sw.pos.x_mm, 12.0);
    EXPECT_LE(sw.pos.y_mm, 6.0);
  }
  // Horizontal links span the wider pitch.
  double max_len = 0.0;
  for (const TopLink& l : mesh.topology.links) {
    max_len = std::max(max_len, l.length_mm);
  }
  EXPECT_NEAR(max_len, 12.0 / mesh.cols, 1e-9);
}

class MeshAllBenchmarksTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MeshAllBenchmarksTest, ValidRoutedAndEvaluated) {
  const std::vector<soc::Benchmark> suite = soc::all_benchmarks();
  ASSERT_LT(GetParam(), suite.size());
  const soc::Benchmark& bm = suite[GetParam()];
  const soc::SocSpec spec = soc::with_logical_islands(bm.soc, 1, bm.use_cases);
  const MeshResult mesh = synthesize_mesh_baseline(spec);
  ASSERT_TRUE(mesh.ok) << bm.soc.name;
  EXPECT_TRUE(mesh.topology.validate(spec).empty()) << bm.soc.name;
  EXPECT_GT(mesh.metrics.noc_dynamic_w, 0.0);
  EXPECT_GT(mesh.metrics.avg_latency_cycles, 3.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Suite, MeshAllBenchmarksTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
}  // namespace vinoc::core

// Tests for the I/O module: exports (DOT/SVG/CSV) and the text spec format.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "vinoc/core/synthesis.hpp"
#include "vinoc/io/exports.hpp"
#include "vinoc/io/jsonl.hpp"
#include "vinoc/io/spec_format.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::io {
namespace {

const char* kGoodSpec = R"(# tiny test SoC
soc demo
island vi_main 1.0 always_on
island vi_acc  0.9 shutdown

core cpu    cpu    vi_main 1.5 1.5 300 120 400
core mem    memory vi_main 1.2 1.2  40  60 400
core accel  dsp    vi_acc  1.4 1.4 150  60 300
core uart   peripheral vi_acc 0.4 0.4 5 2 100

flow cpu mem    800 12
flow mem cpu    800 12
flow accel mem  400 18
flow cpu accel   50 24
flow cpu uart     2 40

scenario busy 0.5 vi_main vi_acc
scenario idle 0.5 vi_main
)";

TEST(SpecFormat, ParsesValidSpec) {
  const ParseResult r = parse_soc_spec_string(kGoodSpec);
  ASSERT_TRUE(r.ok) << (r.errors.empty() ? "?" : r.errors.front().message);
  EXPECT_EQ(r.spec.name, "demo");
  EXPECT_EQ(r.spec.islands.size(), 2u);
  EXPECT_FALSE(r.spec.islands[0].can_shutdown);
  EXPECT_TRUE(r.spec.islands[1].can_shutdown);
  EXPECT_EQ(r.spec.cores.size(), 4u);
  EXPECT_EQ(r.spec.cores[0].kind, soc::CoreKind::kCpu);
  EXPECT_DOUBLE_EQ(r.spec.cores[0].dynamic_power_w, 0.3);
  EXPECT_EQ(r.spec.flows.size(), 5u);
  EXPECT_DOUBLE_EQ(r.spec.flows[0].bandwidth_bits_per_s, 800 * 8e6);
  ASSERT_EQ(r.spec.scenarios.size(), 2u);
  EXPECT_TRUE(r.spec.scenarios[1].island_active[0]);
  EXPECT_FALSE(r.spec.scenarios[1].island_active[1]);
}

TEST(SpecFormat, RoundTripsThroughWriter) {
  const ParseResult first = parse_soc_spec_string(kGoodSpec);
  ASSERT_TRUE(first.ok);
  const std::string text = write_soc_spec(first.spec);
  const ParseResult second = parse_soc_spec_string(text);
  ASSERT_TRUE(second.ok) << (second.errors.empty() ? "?" : second.errors.front().message);
  EXPECT_EQ(second.spec.cores.size(), first.spec.cores.size());
  EXPECT_EQ(second.spec.flows.size(), first.spec.flows.size());
  EXPECT_EQ(second.spec.scenarios.size(), first.spec.scenarios.size());
  for (std::size_t f = 0; f < first.spec.flows.size(); ++f) {
    EXPECT_NEAR(second.spec.flows[f].bandwidth_bits_per_s,
                first.spec.flows[f].bandwidth_bits_per_s, 1.0);
  }
}

TEST(SpecFormat, ReportsAllErrorsWithLineNumbers) {
  const char* bad = R"(soc broken
island vi0 1.0 shutdown
core a cpu vi0 1 1 10 5 100
core b bogus_kind vi0 1 1 10 5 100
flow a nosuch 100 10
flow a b notanumber 10
junk directive
)";
  const ParseResult r = parse_soc_spec_string(bad);
  EXPECT_FALSE(r.ok);
  ASSERT_GE(r.errors.size(), 4u);
  // Each error carries the offending line.
  for (const ParseError& e : r.errors) {
    EXPECT_GT(e.line, 0);
    EXPECT_FALSE(e.message.empty());
  }
}

TEST(SpecFormat, SemanticValidationRunsAfterParse) {
  const char* dup = R"(soc d
island vi0 1.0 always_on
core a cpu vi0 1 1 10 5 100
core a cpu vi0 1 1 10 5 100
flow a a 100 10
)";
  const ParseResult r = parse_soc_spec_string(dup);
  EXPECT_FALSE(r.ok);
}

TEST(SpecFormat, MissingFileReported) {
  const ParseResult r = parse_soc_spec_file("/nonexistent/path/x.soc");
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].message.find("cannot open"), std::string::npos);
}

TEST(SpecFormat, CoreKindTokens) {
  soc::CoreKind kind = soc::CoreKind::kOther;
  EXPECT_TRUE(parse_core_kind("mem_ctrl", kind));
  EXPECT_EQ(kind, soc::CoreKind::kMemController);
  EXPECT_FALSE(parse_core_kind("warp_drive", kind));
}

TEST(SpecFormat, ParsedSpecSynthesizes) {
  const ParseResult r = parse_soc_spec_string(kGoodSpec);
  ASSERT_TRUE(r.ok);
  const core::SynthesisResult result = core::synthesize(r.spec);
  EXPECT_FALSE(result.points.empty());
}

struct Synthesized {
  soc::SocSpec spec;
  core::SynthesisResult result;

  Synthesized() {
    const soc::Benchmark d26 = soc::make_d26_media_soc();
    spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
    result = core::synthesize(spec, core::SynthesisOptions{});
  }
};

TEST(Exports, DotContainsAllSwitchesCoresAndFifoMarks) {
  const Synthesized s;
  ASSERT_FALSE(s.result.points.empty());
  const core::NocTopology& topo = s.result.best_power().topology;
  const std::string dot = topology_to_dot(topo, s.spec);
  EXPECT_NE(dot.find("digraph noc"), std::string::npos);
  for (const soc::CoreSpec& c : s.spec.cores) {
    EXPECT_NE(dot.find(c.name), std::string::npos) << c.name;
  }
  for (std::size_t sw = 0; sw < topo.switches.size(); ++sw) {
    EXPECT_NE(dot.find("sw" + std::to_string(sw)), std::string::npos);
  }
  bool has_crossing = false;
  for (const core::TopLink& l : topo.links) has_crossing |= l.crosses_island;
  if (has_crossing) {
    EXPECT_NE(dot.find("fifo"), std::string::npos);
  }
  // Island clusters present.
  EXPECT_NE(dot.find("cluster_isl0"), std::string::npos);
}

TEST(Exports, SvgWellFormedAndContainsGeometry) {
  const Synthesized s;
  ASSERT_FALSE(s.result.points.empty());
  const std::string svg = floorplan_to_svg(s.result.floorplan, s.spec,
                                           &s.result.best_power().topology);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);  // switches
  EXPECT_NE(svg.find("<line"), std::string::npos);    // links
  // One rect per core plus island regions plus the die outline.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, s.spec.core_count() + s.spec.island_count() + 1);
}

TEST(Exports, SvgWithoutTopologyOmitsNoc) {
  const Synthesized s;
  const std::string svg = floorplan_to_svg(s.result.floorplan, s.spec, nullptr);
  EXPECT_EQ(svg.find("<circle"), std::string::npos);
}

TEST(Exports, CsvHasOneRowPerPointAndMarksPareto) {
  const Synthesized s;
  ASSERT_FALSE(s.result.points.empty());
  const std::string csv = design_points_to_csv(s.result);
  std::size_t lines = 0;
  for (const char c : csv) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, s.result.points.size() + 1);  // header + rows
  EXPECT_NE(csv.find("power_mw"), std::string::npos);
  EXPECT_NE(csv.find(",1\n"), std::string::npos);  // at least one pareto row
}

TEST(Exports, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/vinoc_io_test.txt";
  write_file(path, "hello vinoc\n");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello vinoc\n");
  std::remove(path.c_str());
  EXPECT_THROW(write_file("/nonexistent_dir_zzz/f.txt", "x"), std::runtime_error);
}

TEST(Exports, WriteFileIsAtomicOverExisting) {
  // Overwriting goes through temp + rename: the old content is fully
  // replaced and no .tmp litter survives a successful write.
  const std::string path = ::testing::TempDir() + "/vinoc_io_atomic.txt";
  write_file(path, "old old old old old\n");
  write_file(path, "new\n");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "new\n");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(Jsonl, ChecksumRoundTrip) {
  const std::string line = "{\"a\":1,\"b\":\"x\"}";
  const std::string stamped = add_line_checksum(line);
  // Still a flat JSON object with a trailing _crc string field.
  EXPECT_EQ(stamped.rfind(line.substr(0, line.size() - 1) + ",\"_crc\":\"", 0),
            0u);
  EXPECT_EQ(stamped.back(), '}');
  std::string payload;
  EXPECT_EQ(verify_line_checksum(stamped, &payload), ChecksumStatus::kOk);
  EXPECT_EQ(payload, line);
}

TEST(Jsonl, ChecksumRoundTripEmptyObject) {
  const std::string stamped = add_line_checksum("{}");
  std::string payload;
  EXPECT_EQ(verify_line_checksum(stamped, &payload), ChecksumStatus::kOk);
  EXPECT_EQ(payload, "{}");
}

TEST(Jsonl, VerifyTreatsUnstampedLineAsAbsent) {
  std::string payload;
  EXPECT_EQ(verify_line_checksum("{\"a\":1}", &payload),
            ChecksumStatus::kAbsent);
  EXPECT_EQ(payload, "{\"a\":1}");  // v1 lines pass through verbatim
}

TEST(Jsonl, MalformedInputTable) {
  const std::string good = add_line_checksum("{\"a\":1}");
  struct Case {
    const char* name;
    std::string line;
    ChecksumStatus expect;
  };
  std::string flipped_payload = good;
  flipped_payload[2] = 'b';  // corrupt the payload, keep the shape
  std::string flipped_crc = good;
  flipped_crc[good.size() - 3] ^= 1;  // corrupt one hex digit
  std::string nonhex_crc = good;
  nonhex_crc[good.size() - 3] = 'Z';
  const Case kCases[] = {
      {"empty line", "", ChecksumStatus::kMalformed},
      {"not json", "garbage", ChecksumStatus::kMalformed},
      {"truncated mid-payload", good.substr(0, 4), ChecksumStatus::kMalformed},
      {"truncated mid-crc", good.substr(0, good.size() - 5),
       ChecksumStatus::kMalformed},
      {"lone brace", "{", ChecksumStatus::kMalformed},
      {"payload bit flip", flipped_payload, ChecksumStatus::kMismatch},
      {"crc bit flip", flipped_crc, ChecksumStatus::kMismatch},
      {"non-hex crc char", nonhex_crc, ChecksumStatus::kMismatch},
      {"two lines concatenated (torn-tail append)", good + good,
       ChecksumStatus::kMismatch},
      {"over-long unstamped line",
       "{\"a\":\"" + std::string(1 << 20, 'x') + "\"}", ChecksumStatus::kAbsent},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(verify_line_checksum(c.line, nullptr), c.expect) << c.name;
  }
}

TEST(Jsonl, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);    // offset basis
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);     // published vector
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace vinoc::io

// Randomized end-to-end property tests: for a grid of random synthetic SoCs
// and islanding variants, every design point the synthesizer saves must
// satisfy the full invariant set the paper's claims rest on:
//   1. the topology is structurally consistent (validate());
//   2. shutdown safety: no flow transits a third gateable island;
//   3. no routing deadlock (CDG acyclic);
//   4. every flow meets its latency budget;
//   5. bandwidth headroom >= 1 (no over-committed link or NI);
//   6. switch port counts respect the frequency-derived caps;
//   7. the reported cut/power metrics are internally consistent.
#include <gtest/gtest.h>

#include "vinoc/core/deadlock.hpp"
#include "vinoc/core/shutdown_safety.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/sim/simulator.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc {
namespace {

struct Case {
  int cores;
  int hubs;
  unsigned seed;
  int islands;
  bool comm;  ///< communication-based (vs. logical) islanding
};

class RandomSocPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(RandomSocPropertyTest, AllInvariantsHoldOnEveryDesignPoint) {
  const Case c = GetParam();
  soc::SyntheticParams params;
  params.cores = c.cores;
  params.hubs = c.hubs;
  params.seed = c.seed;
  params.flows_per_core = 2.2;
  const soc::Benchmark bm = soc::make_synthetic_soc(params);
  const soc::SocSpec spec =
      c.comm ? soc::with_communication_islands(bm.soc, c.islands, bm.use_cases)
             : soc::with_logical_islands(bm.soc, c.islands, bm.use_cases);
  ASSERT_TRUE(spec.validate().empty());

  const core::SynthesisResult result = core::synthesize(spec);
  ASSERT_FALSE(result.points.empty())
      << "cores=" << c.cores << " seed=" << c.seed << " islands=" << c.islands;

  for (const core::DesignPoint& p : result.points) {
    // 1. structural consistency
    const auto problems = p.topology.validate(spec);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
    // 2. shutdown safety
    EXPECT_TRUE(core::verify_shutdown_safety(p.topology, spec).empty());
    // 3. deadlock freedom
    EXPECT_TRUE(core::is_deadlock_free(p.topology));
    // 4. latency budgets
    for (std::size_t f = 0; f < spec.flows.size(); ++f) {
      EXPECT_LE(p.topology.routes[f].latency_cycles,
                spec.flows[f].max_latency_cycles + 1e-9);
    }
    // 5. bandwidth headroom
    EXPECT_GE(sim::find_saturation_scale(p.topology, spec), 1.0 - 1e-9);
    // 6. port caps
    for (std::size_t s = 0; s < p.topology.switches.size(); ++s) {
      const soc::IslandId isl = p.topology.switches[s].island;
      const int cap =
          isl == core::kIntermediateIsland
              ? result.intermediate_params.max_sw_size
              : result.island_params[static_cast<std::size_t>(isl)].max_sw_size;
      EXPECT_LE(p.topology.switch_ports_in(static_cast<int>(s)), cap);
      EXPECT_LE(p.topology.switch_ports_out(static_cast<int>(s)), cap);
    }
    // 7. metric consistency
    const core::Metrics fresh =
        core::compute_metrics(p.topology, spec, core::SynthesisOptions{}.tech);
    EXPECT_NEAR(fresh.noc_dynamic_w, p.metrics.noc_dynamic_w,
                1e-9 * std::max(1.0, p.metrics.noc_dynamic_w));
    EXPECT_NEAR(fresh.avg_latency_cycles, p.metrics.avg_latency_cycles, 1e-9);
  }
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  unsigned seed = 1000;
  for (const int cores : {10, 16, 24, 40}) {
    for (const int islands : {2, 3, 5}) {
      for (const bool comm : {false, true}) {
        cases.push_back(Case{cores, std::max(1, cores / 10), ++seed, islands, comm});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, RandomSocPropertyTest,
                         ::testing::ValuesIn(make_cases()));

// Separately: the synthesizer's determinism over the same random SoC.
TEST(RandomSocDeterminism, IdenticalResultsAcrossRuns) {
  soc::SyntheticParams params;
  params.cores = 20;
  params.seed = 77;
  const soc::Benchmark bm = soc::make_synthetic_soc(params);
  const soc::SocSpec spec = soc::with_logical_islands(bm.soc, 4, bm.use_cases);
  const core::SynthesisResult a = core::synthesize(spec);
  const core::SynthesisResult b = core::synthesize(spec);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].metrics.noc_dynamic_w,
                     b.points[i].metrics.noc_dynamic_w);
    EXPECT_EQ(a.points[i].topology.links.size(), b.points[i].topology.links.size());
  }
  EXPECT_EQ(a.pareto, b.pareto);
}

}  // namespace
}  // namespace vinoc

// Fault injection (spec parsing, seeded determinism, fire caps) and the
// supervision behaviors it powers: retry-then-succeed, quarantine after
// exhausted retries, job timeouts, deadlines and external interruption —
// a campaign under injected faults always COMPLETES, one record per job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "vinoc/campaign/campaign_spec.hpp"
#include "vinoc/campaign/engine.hpp"
#include "vinoc/campaign/report.hpp"
#include "vinoc/exec/cancel.hpp"
#include "vinoc/faultinject/faultinject.hpp"
#include "vinoc/io/jsonl.hpp"

namespace vinoc {
namespace {

namespace fs = std::filesystem;
using faultinject::Site;

/// Disarms injection around every test so armed state never leaks.
class FaultInject : public ::testing::Test {
 protected:
  void SetUp() override { faultinject::reset(); }
  void TearDown() override { faultinject::reset(); }
};

campaign::CampaignSpec tiny_campaign() {
  campaign::CampaignSpec spec;
  spec.name = "chaos";
  campaign::SyntheticScenario family;
  family.params.cores = 9;
  family.params.hubs = 2;
  spec.synthetic.push_back(family);
  spec.strategies = {"logical"};
  spec.island_counts = {2, 3};
  spec.widths = {32, 64};
  return spec;
}

campaign::CampaignOptions fast_options() {
  campaign::CampaignOptions opt;
  opt.threads = 1;
  opt.include_timing = false;
  opt.retry_backoff_ms = 0.0;  // keep chaos tests fast
  return opt;
}

TEST_F(FaultInject, SpecParsing) {
  std::string error;
  EXPECT_TRUE(faultinject::configure("eval:0.5", 1, &error)) << error;
  EXPECT_TRUE(faultinject::armed());
  EXPECT_TRUE(faultinject::configure("eval:0.1,store_write:1@2", 1, &error));
  EXPECT_TRUE(faultinject::configure("", 1, &error));  // empty = disarm
  EXPECT_FALSE(faultinject::armed());

  EXPECT_FALSE(faultinject::configure("bogus_site:0.5", 1, &error));
  EXPECT_FALSE(faultinject::configure("eval", 1, &error));
  EXPECT_FALSE(faultinject::configure("eval:notanumber", 1, &error));
  EXPECT_FALSE(faultinject::configure("eval:2.0", 1, &error));  // rate > 1
  EXPECT_FALSE(faultinject::configure("eval:0.5@", 1, &error));
  EXPECT_FALSE(faultinject::armed());  // a bad spec never half-arms
}

TEST_F(FaultInject, ConfigureFromEnv) {
  ::setenv("VINOC_FAULT", "eval:1@3", 1);
  ::setenv("VINOC_FAULT_SEED", "7", 1);
  faultinject::configure_from_env();
  EXPECT_TRUE(faultinject::armed());

  ::setenv("VINOC_FAULT", "eval:nope", 1);
  EXPECT_THROW(faultinject::configure_from_env(), std::invalid_argument);

  ::unsetenv("VINOC_FAULT");
  ::unsetenv("VINOC_FAULT_SEED");
  faultinject::configure_from_env();
  EXPECT_FALSE(faultinject::armed());
}

TEST_F(FaultInject, DecisionsAreSeededAndDeterministic) {
  auto pattern = [](std::uint64_t seed) {
    std::string error;
    EXPECT_TRUE(faultinject::configure("eval:0.3", seed, &error)) << error;
    std::vector<bool> fires;
    fires.reserve(64);
    for (int i = 0; i < 64; ++i) {
      fires.push_back(faultinject::should_fire(Site::kEval));
    }
    return fires;
  };
  const std::vector<bool> a = pattern(42);
  const std::vector<bool> b = pattern(42);
  EXPECT_EQ(a, b);  // same seed replays exactly
  const std::vector<bool> c = pattern(43);
  EXPECT_NE(a, c);  // different seed, different stream
}

TEST_F(FaultInject, RateZeroOneAndFireCap) {
  std::string error;
  ASSERT_TRUE(faultinject::configure("eval:1", 1, &error));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(faultinject::should_fire(Site::kEval));

  ASSERT_TRUE(faultinject::configure("eval:1,store_write:0", 1, &error));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(faultinject::should_fire(Site::kStoreWrite));
  }

  ASSERT_TRUE(faultinject::configure("eval:1@3", 1, &error));
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += faultinject::should_fire(Site::kEval);
  EXPECT_EQ(fired, 3);  // cap stops the site after 3 fires
  EXPECT_EQ(faultinject::fire_count(Site::kEval), 3u);
  EXPECT_EQ(faultinject::hit_count(Site::kEval), 10u);
}

TEST_F(FaultInject, AlwaysFailingEvalQuarantinesEveryJobButCompletes) {
  std::string error;
  ASSERT_TRUE(faultinject::configure("eval:1", 1, &error));
  const campaign::CampaignSpec spec = tiny_campaign();
  const fs::path dir = fs::path(testing::TempDir()) / "vinoc_chaos_fail";
  fs::remove_all(dir);

  campaign::CampaignOptions opt = fast_options();
  opt.cache_dir = dir.string();
  opt.max_retries = 1;
  const campaign::CampaignResult result = campaign::run_campaign(spec, opt);

  ASSERT_EQ(result.records.size(), 4u);  // one record per job, always
  for (const campaign::JobRecord& rec : result.records) {
    EXPECT_EQ(rec.status, "failed");
    EXPECT_FALSE(rec.feasible);
  }
  EXPECT_EQ(result.quarantined_jobs(), 4);
  EXPECT_GT(result.retries(), 0);
  EXPECT_FALSE(result.interrupted());

  // The quarantine ledger exists, is checksummed, and parses.
  std::ifstream failed(dir / "failed.jsonl");
  ASSERT_TRUE(failed.good());
  std::string line;
  int ledger_lines = 0;
  while (std::getline(failed, line)) {
    ++ledger_lines;
    EXPECT_EQ(io::verify_line_checksum(line, nullptr),
              io::ChecksumStatus::kOk);
    EXPECT_NE(line.find("\"status\":\"failed\""), std::string::npos);
  }
  EXPECT_GT(ledger_lines, 0);
  fs::remove_all(dir);
}

TEST_F(FaultInject, SingleInjectedFaultIsRetriedAndSucceeds) {
  std::string error;
  ASSERT_TRUE(faultinject::configure("eval:1@1", 1, &error));
  const campaign::CampaignSpec spec = tiny_campaign();
  campaign::CampaignOptions opt = fast_options();
  opt.max_retries = 2;
  const campaign::CampaignResult result = campaign::run_campaign(spec, opt);

  ASSERT_EQ(result.records.size(), 4u);
  for (const campaign::JobRecord& rec : result.records) {
    EXPECT_EQ(rec.status, "ok");
  }
  EXPECT_EQ(result.quarantined_jobs(), 0);
  EXPECT_GE(result.retries(), 1);  // exactly one attempt saw the fault
}

TEST_F(FaultInject, StoreWriteFaultsDegradeButNeverFailTheCampaign) {
  std::string error;
  ASSERT_TRUE(faultinject::configure("store_write:1", 1, &error));
  const campaign::CampaignSpec spec = tiny_campaign();
  const fs::path dir = fs::path(testing::TempDir()) / "vinoc_chaos_store";
  fs::remove_all(dir);

  campaign::CampaignOptions opt = fast_options();
  opt.cache_dir = dir.string();
  const campaign::CampaignResult result = campaign::run_campaign(spec, opt);

  ASSERT_EQ(result.records.size(), 4u);
  for (const campaign::JobRecord& rec : result.records) {
    EXPECT_EQ(rec.status, "ok");  // results are fine, only persistence broke
  }
  EXPECT_GT(result.store_write_errors(), 0);
  fs::remove_all(dir);
}

TEST_F(FaultInject, TinyJobTimeoutTimesEveryJobOut) {
  const campaign::CampaignSpec spec = tiny_campaign();
  campaign::CampaignOptions opt = fast_options();
  opt.job_timeout_s = 1e-9;  // expires before the first cancellation poll
  const campaign::CampaignResult result = campaign::run_campaign(spec, opt);

  ASSERT_EQ(result.records.size(), 4u);
  for (const campaign::JobRecord& rec : result.records) {
    EXPECT_EQ(rec.status, "timeout");
  }
  EXPECT_EQ(result.quarantined_jobs(), 4);
  EXPECT_GT(result.job_timeouts(), 0);
  EXPECT_EQ(result.retries(), 0);  // timeouts are never retried
}

TEST_F(FaultInject, TinyDeadlineSkipsEveryJob) {
  const campaign::CampaignSpec spec = tiny_campaign();
  campaign::CampaignOptions opt = fast_options();
  opt.deadline_s = 1e-9;
  const campaign::CampaignResult result = campaign::run_campaign(spec, opt);

  ASSERT_EQ(result.records.size(), 4u);
  for (const campaign::JobRecord& rec : result.records) {
    EXPECT_EQ(rec.status, "skipped");
  }
  EXPECT_EQ(result.skipped_jobs(), 4);
  EXPECT_FALSE(result.interrupted());  // a deadline is not an interrupt
}

TEST_F(FaultInject, PreCancelledTokenReportsInterrupted) {
  const campaign::CampaignSpec spec = tiny_campaign();
  exec::CancelToken interrupt;
  interrupt.cancel();
  campaign::CampaignOptions opt = fast_options();
  opt.cancel = &interrupt;
  const campaign::CampaignResult result = campaign::run_campaign(spec, opt);

  ASSERT_EQ(result.records.size(), 4u);
  for (const campaign::JobRecord& rec : result.records) {
    EXPECT_EQ(rec.status, "skipped");
  }
  EXPECT_EQ(result.skipped_jobs(), 4);
  EXPECT_TRUE(result.interrupted());
}

TEST_F(FaultInject, CancelMidCohortYieldsExactlyOneRecordPerJob) {
  // Token chaining under NESTED fan-outs: the campaign fans out over
  // structure groups, each group's synthesize_width_set fans out over
  // candidates on the same pool. Cancelling the PARENT token while the
  // first cohort is mid-flight must reach the nested sweep through the
  // chain, abandon it at a candidate boundary, and still leave exactly one
  // record per job — never zero (lost) or two (replayed).
  const campaign::CampaignSpec spec = tiny_campaign();
  exec::CancelToken interrupt;
  campaign::CampaignOptions opt = fast_options();
  opt.threads = 2;
  opt.cancel = &interrupt;
  std::atomic<int> started{0};
  opt.on_job_start = [&](const campaign::CampaignJob&) {
    if (started.fetch_add(1) == 0) interrupt.cancel();
  };
  const campaign::CampaignResult result = campaign::run_campaign(spec, opt);

  ASSERT_EQ(result.records.size(), 4u);
  std::set<std::uint64_t> keys;
  for (const campaign::JobRecord& rec : result.records) {
    EXPECT_TRUE(keys.insert(rec.key).second) << "duplicate record " << rec.job;
    EXPECT_TRUE(rec.status == "ok" || rec.status == "skipped") << rec.status;
  }
  EXPECT_TRUE(result.interrupted());
  EXPECT_EQ(result.quarantined_jobs(), 0);
  EXPECT_GE(result.skipped_jobs(), 1);
  EXPECT_EQ(result.jobs_run() + result.skipped_jobs(), 4);
}

TEST_F(FaultInject, StallSiteSleepsWithoutFailing) {
  std::string error;
  ASSERT_TRUE(faultinject::configure("eval_stall:1@1", 1, &error));
  faultinject::set_stall_ms(1);
  faultinject::maybe_stall(Site::kEvalStall);  // fires: sleeps 1 ms, no throw
  faultinject::maybe_stall(Site::kEvalStall);  // cap reached: no-op
  EXPECT_EQ(faultinject::fire_count(Site::kEvalStall), 1u);
}

}  // namespace
}  // namespace vinoc

// vinoc::obs unit tests: registry merge determinism, span recording, ring
// overflow policy, phase profiling and the Chrome-trace writer/validator
// round trip. Runs under TSan in CI (the sharded-merge and worker-flush
// tests exercise the concurrent paths).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "vinoc/io/obs_writers.hpp"
#include "vinoc/obs/profile.hpp"
#include "vinoc/obs/registry.hpp"
#include "vinoc/obs/trace.hpp"

namespace {

using namespace vinoc;

// --- Registry ---------------------------------------------------------------

TEST(ObsRegistry, CountersGaugesHistograms) {
  obs::Registry reg;
  reg.add("a", 2);
  reg.add("a", 3);
  reg.record_max("peak", 7);
  reg.record_max("peak", 4);  // lower value must not win
  reg.observe("lat", 0);
  reg.observe("lat", 1);
  reg.observe("lat", 6);
  reg.set_gauge("rate", 0.5);

  EXPECT_EQ(reg.value("a"), 5);
  EXPECT_EQ(reg.value("peak"), 7);
  EXPECT_EQ(reg.value("never_registered"), 0);
  const obs::Histogram* h = reg.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3);
  EXPECT_EQ(h->sum, 7);
  EXPECT_EQ(h->max, 6);
  EXPECT_EQ(h->buckets[0], 1);  // value 0
  EXPECT_EQ(h->buckets[1], 1);  // value 1
  EXPECT_EQ(h->buckets[3], 1);  // 4..7
  EXPECT_DOUBLE_EQ(reg.gauge("rate"), 0.5);
}

TEST(ObsRegistry, MergeOpIsFixedAtRegistration) {
  obs::Registry reg;
  reg.add("a", 1, obs::MergeOp::kSum);
  EXPECT_THROW(reg.add("a", 1, obs::MergeOp::kMax), std::logic_error);
}

TEST(ObsRegistry, MergeFromIgnoresGauges) {
  obs::Registry a;
  a.add("n", 1);
  a.set_gauge("rate", 0.25);
  obs::Registry b;
  b.add("n", 2);
  b.set_gauge("rate", 0.75);
  a.merge_from(b);
  EXPECT_EQ(a.value("n"), 3);
  // Gauges are serialization-time derived values; merging them would break
  // the byte-identity guarantee (doubles in thread-arrival order).
  EXPECT_DOUBLE_EQ(a.gauge("rate"), 0.25);
}

// The core determinism contract: the merged serialization is byte-identical
// whether the same totals were accumulated by 1 thread or by N.
TEST(ObsRegistry, ShardMergeIsByteIdenticalAcrossThreadCounts) {
  const auto record_with_threads = [](int threads) {
    obs::ShardedRegistry sharded;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&sharded, t, threads] {
        obs::Registry& shard = sharded.local();
        // Every thread contributes a different slice; totals are fixed.
        for (int i = t; i < 120; i += threads) {
          shard.add("evals", 1);
          shard.add("zebra_last", 2);  // name-sorts after the others
          shard.record_max("peak", i);
          shard.observe("flows", i);
        }
      });
    }
    for (std::thread& th : pool) th.join();
    return io::registry_record("t", sharded.merged());
  };

  const std::string one = record_with_threads(1);
  EXPECT_EQ(one, record_with_threads(2));
  EXPECT_EQ(one, record_with_threads(7));
  // Sanity on the payload itself (totals independent of the split).
  EXPECT_NE(one.find("\"evals\":120"), std::string::npos);
  EXPECT_NE(one.find("\"peak\":119"), std::string::npos);
  EXPECT_NE(one.find("\"flows_count\":120"), std::string::npos);
}

TEST(ObsRegistry, RegistryRecordOmitsEmptyRecordNameAndOrdersFields) {
  obs::Registry reg;
  reg.add("b_second", 2);
  reg.add("a_first", 1);  // registration order wins for hand-built registries
  reg.set_gauge("g", 1.5);
  EXPECT_EQ(io::registry_record("", reg),
            "{\"b_second\":2,\"a_first\":1,\"g\":1.5}");
  EXPECT_EQ(io::registry_record("x", reg),
            "{\"record\":\"x\",\"b_second\":2,\"a_first\":1,\"g\":1.5}");
}

// --- Tracing ----------------------------------------------------------------

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset_tracing(); }
  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::reset_tracing();
    obs::set_trace_ring_capacity(1 << 16);
  }
};

TEST_F(ObsTraceTest, DisabledSpansRecordNothing) {
  obs::set_tracing_enabled(false);
  { OBS_SPAN("ghost"); }
  EXPECT_TRUE(obs::collect_trace_events().events.empty());
}

TEST_F(ObsTraceTest, NestedSpansAreEnclosedAndExportValidates) {
  obs::set_tracing_enabled(true);
  obs::set_thread_trace_name("main");
  {
    OBS_SPAN("outer");
    { OBS_SPAN("inner"); }
  }
  std::thread worker([] {
    obs::set_thread_trace_name("worker");
    { OBS_SPAN("worker_span"); }
    obs::flush_thread_trace_sink();  // what exec::ThreadPool does at exit
  });
  worker.join();

  const obs::TraceSnapshot snap = obs::collect_trace_events();
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.dropped_events, 0u);

  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const obs::TraceEvent* wspan = nullptr;
  for (const obs::TraceEvent& ev : snap.events) {
    if (std::string(ev.name) == "outer") outer = &ev;
    if (std::string(ev.name) == "inner") inner = &ev;
    if (std::string(ev.name) == "worker_span") wspan = &ev;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(wspan, nullptr);
  // RAII nesting: the inner span lies inside the outer one, on one tid.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_NE(outer->tid, wspan->tid);
  EXPECT_LE(outer->start_ns, inner->start_ns);
  EXPECT_GE(outer->start_ns + outer->dur_ns, inner->start_ns + inner->dur_ns);
  ASSERT_LT(static_cast<std::size_t>(outer->tid), snap.thread_names.size());
  EXPECT_EQ(snap.thread_names[static_cast<std::size_t>(outer->tid)], "main");
  EXPECT_EQ(snap.thread_names[static_cast<std::size_t>(wspan->tid)], "worker");

  std::ostringstream os;
  io::write_chrome_trace(os, snap);
  std::string error;
  EXPECT_TRUE(io::validate_chrome_trace(os.str(), error)) << error;
}

TEST_F(ObsTraceTest, RingOverflowDropsOldestAndCountsDrops) {
  obs::set_trace_ring_capacity(8);  // applies to sinks created after
  obs::set_tracing_enabled(true);
  std::thread recorder([] {
    for (int i = 0; i < 32; ++i) {
      obs::detail::record_span("e", /*start_ns=*/i, /*end_ns=*/i + 1);
    }
    obs::flush_thread_trace_sink();
  });
  recorder.join();

  const obs::TraceSnapshot snap = obs::collect_trace_events();
  ASSERT_EQ(snap.events.size(), 8u);
  EXPECT_EQ(snap.dropped_events, 24u);
  // Drop-OLDEST: the survivors are exactly the newest 8 spans, in order.
  for (std::size_t i = 0; i < snap.events.size(); ++i) {
    EXPECT_EQ(snap.events[i].start_ns,
              static_cast<std::int64_t>(24 + i));
  }
}

TEST_F(ObsTraceTest, ResetDropsEverything) {
  obs::set_tracing_enabled(true);
  { OBS_SPAN("span"); }
  obs::reset_tracing();
  EXPECT_TRUE(obs::collect_trace_events().events.empty());
}

// --- Chrome-trace validator -------------------------------------------------

TEST(ObsTraceValidator, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(io::validate_chrome_trace("not json", error));
  EXPECT_FALSE(io::validate_chrome_trace("{\"noTraceEvents\":1}", error));
  EXPECT_FALSE(io::validate_chrome_trace("{\"traceEvents\":[]}", error));
  EXPECT_FALSE(io::validate_chrome_trace(  // unterminated array
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":1,"
      "\"pid\":1,\"tid\":0}",
      error));
  EXPECT_FALSE(io::validate_chrome_trace(  // missing dur
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"pid\":1,"
      "\"tid\":0}]}",
      error));
  EXPECT_NE(error.find("missing dur"), std::string::npos);
}

TEST(ObsTraceValidator, RejectsNonMonotoneTimestamps) {
  std::string error;
  EXPECT_FALSE(io::validate_chrome_trace(
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"X\",\"ts\":10,\"dur\":1,\"pid\":1,\"tid\":0},"
      "{\"name\":\"b\",\"ph\":\"X\",\"ts\":5,\"dur\":1,\"pid\":1,\"tid\":0}"
      "]}",
      error));
  EXPECT_NE(error.find("non-monotone"), std::string::npos);
}

TEST(ObsTraceValidator, RejectsPartialOverlapAcceptsProperNesting) {
  std::string error;
  // a: [0, 10), b: [5, 15) — partial overlap on one tid is impossible for
  // RAII scopes and must be rejected.
  EXPECT_FALSE(io::validate_chrome_trace(
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\"pid\":1,\"tid\":0},"
      "{\"name\":\"b\",\"ph\":\"X\",\"ts\":5,\"dur\":10,\"pid\":1,\"tid\":0}"
      "]}",
      error));
  EXPECT_NE(error.find("overlap"), std::string::npos);
  // a: [0, 10) enclosing b: [2, 5), then c disjoint at [20, 21): fine. The
  // same interval pattern on ANOTHER tid is independent state.
  EXPECT_TRUE(io::validate_chrome_trace(
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\"pid\":1,\"tid\":0},"
      "{\"name\":\"b\",\"ph\":\"X\",\"ts\":2,\"dur\":3,\"pid\":1,\"tid\":0},"
      "{\"name\":\"c\",\"ph\":\"X\",\"ts\":20,\"dur\":1,\"pid\":1,\"tid\":0},"
      "{\"name\":\"d\",\"ph\":\"X\",\"ts\":1,\"dur\":4,\"pid\":1,\"tid\":1}"
      "]}",
      error))
      << error;
}

// --- Phase profiling --------------------------------------------------------

TEST(ObsProfile, PhaseScopesAccumulateOnlyWhenEnabled) {
  obs::reset_phase_totals();
  obs::set_profiling_enabled(false);
  { const obs::PhaseScope scope(obs::Phase::kRoute); }
  EXPECT_EQ(obs::phase_totals()
                .phase[static_cast<std::size_t>(obs::Phase::kRoute)]
                .enters,
            0);

  obs::set_profiling_enabled(true);
  {
    const obs::PhaseScope route(obs::Phase::kRoute);
    const obs::PhaseScope merge(obs::Phase::kMerge);  // nested, other phase
  }
  obs::set_profiling_enabled(false);
  const obs::PhaseTotals totals = obs::phase_totals();
  const auto& route =
      totals.phase[static_cast<std::size_t>(obs::Phase::kRoute)];
  const auto& merge =
      totals.phase[static_cast<std::size_t>(obs::Phase::kMerge)];
  EXPECT_EQ(route.enters, 1);
  EXPECT_EQ(merge.enters, 1);
  EXPECT_GE(route.wall_ns, merge.wall_ns);  // route encloses merge

  const std::string rec = io::phase_profile_record(totals);
  EXPECT_NE(rec.find("\"record\":\"phase_profile\""), std::string::npos);
  EXPECT_NE(rec.find("\"route_scopes\":1"), std::string::npos);
  obs::reset_phase_totals();
}

}  // namespace

// Tests for the extension modules: deadlock-freedom verification, link-width
// exploration, power-gating transition overhead, and gnuplot emitters.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "vinoc/core/deadlock.hpp"
#include "vinoc/core/explore.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/graph/algorithms.hpp"
#include "vinoc/io/plots.hpp"
#include "vinoc/power/transitions.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc {
namespace {

// ---- Deadlock freedom -------------------------------------------------------

core::NocTopology three_switch_ring_topology(soc::SocSpec& spec) {
  // One island, three switches, three cores; links 0->1, 1->2, 2->0.
  spec = soc::SocSpec{};
  spec.name = "ring";
  spec.islands = {{"vi0", 1.0, false}};
  core::NocTopology topo;
  topo.island_freq_hz = {400e6};
  for (int i = 0; i < 3; ++i) {
    soc::CoreSpec c;
    c.name = "c" + std::to_string(i);
    c.island = 0;
    spec.cores.push_back(c);
    core::SwitchInst sw;
    sw.island = 0;
    sw.freq_hz = 400e6;
    sw.cores = {static_cast<soc::CoreId>(i)};
    topo.switches.push_back(sw);
    topo.switch_of_core.push_back(i);
    topo.ni_wire_mm.push_back(0.5);
  }
  for (int i = 0; i < 3; ++i) {
    core::TopLink l;
    l.src_switch = i;
    l.dst_switch = (i + 1) % 3;
    l.carried_bw_bits_per_s = 1e9;
    topo.links.push_back(l);
  }
  return topo;
}

TEST(Deadlock, TwoHopRoutesAreAcyclic) {
  soc::SocSpec spec;
  core::NocTopology topo = three_switch_ring_topology(spec);
  // Flows 0->2 (via links 0,1) only: chain dependency, no cycle.
  soc::Flow f;
  f.src = 0;
  f.dst = 2;
  f.bandwidth_bits_per_s = 1e9;
  f.max_latency_cycles = 30;
  f.label = "f0";
  spec.flows.push_back(f);
  core::FlowRoute r;
  r.src_switch = 0;
  r.dst_switch = 2;
  r.links = {0, 1};
  topo.links[0].flows = {0};
  topo.links[1].flows = {0};
  topo.routes = {r};
  EXPECT_TRUE(core::is_deadlock_free(topo));
  EXPECT_TRUE(core::dependency_cycles(topo).empty());
}

TEST(Deadlock, CyclicRingDependencyDetected) {
  soc::SocSpec spec;
  core::NocTopology topo = three_switch_ring_topology(spec);
  // Three 2-hop flows chasing each other around the ring: 0->2 uses links
  // (0,1), 1->0 uses (1,2), 2->1 uses (2,0) — the CDG is the full cycle.
  auto add_flow = [&spec](int s, int d) {
    soc::Flow f;
    f.src = s;
    f.dst = d;
    f.bandwidth_bits_per_s = 1e9;
    f.max_latency_cycles = 30;
    f.label = "f" + std::to_string(spec.flows.size());
    spec.flows.push_back(f);
  };
  add_flow(0, 2);
  add_flow(1, 0);
  add_flow(2, 1);
  topo.routes.resize(3);
  topo.routes[0] = {0, 2, {0, 1}, 0, 0};
  topo.routes[1] = {1, 0, {1, 2}, 0, 0};
  topo.routes[2] = {2, 1, {2, 0}, 0, 0};
  EXPECT_FALSE(core::is_deadlock_free(topo));
  const auto cycles = core::dependency_cycles(topo);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 3u);
}

TEST(Deadlock, CdgStructureMatchesRoutes) {
  soc::SocSpec spec;
  core::NocTopology topo = three_switch_ring_topology(spec);
  topo.routes.resize(1);
  topo.routes[0] = {0, 2, {0, 1}, 0, 0};
  spec.flows.resize(1);
  const graph::Digraph cdg = core::build_channel_dependency_graph(topo);
  EXPECT_EQ(cdg.node_count(), topo.links.size());
  ASSERT_EQ(cdg.edge_count(), 1u);
  EXPECT_EQ(cdg.edges()[0].src, 0);
  EXPECT_EQ(cdg.edges()[0].dst, 1);
  EXPECT_EQ(cdg.edges()[0].user, 0);  // witnessing flow
}

class DeadlockFreedomTest : public ::testing::TestWithParam<int> {};

TEST_P(DeadlockFreedomTest, AllD26DesignPointsDeadlockFree) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec =
      soc::with_logical_islands(d26.soc, GetParam(), d26.use_cases);
  const core::SynthesisResult r = core::synthesize(spec);
  ASSERT_FALSE(r.points.empty());
  for (const core::DesignPoint& p : r.points) {
    EXPECT_TRUE(core::is_deadlock_free(p.topology));
  }
}

INSTANTIATE_TEST_SUITE_P(IslandCounts, DeadlockFreedomTest,
                         ::testing::Values(1, 3, 6, 7, 26));

TEST(Deadlock, AllBenchmarksDeadlockFree) {
  for (const soc::Benchmark& bm : soc::all_benchmarks()) {
    const soc::SocSpec spec = soc::with_logical_islands(bm.soc, 4, bm.use_cases);
    const core::SynthesisResult r = core::synthesize(spec);
    ASSERT_FALSE(r.points.empty()) << bm.soc.name;
    EXPECT_TRUE(core::is_deadlock_free(r.best_power().topology)) << bm.soc.name;
  }
}

// ---- Link-width exploration -------------------------------------------------

TEST(WidthSweep, MergesDesignSpacesAcrossWidths) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  const core::WidthSweepResult sweep =
      core::explore_link_widths(spec, {16, 32, 64});
  ASSERT_EQ(sweep.entries.size(), 3u);
  EXPECT_FALSE(sweep.entries[0].feasible);  // 16-bit: NI link overloads
  EXPECT_TRUE(sweep.entries[1].feasible);
  EXPECT_TRUE(sweep.entries[2].feasible);
  ASSERT_FALSE(sweep.pareto.empty());
  // The merged front must be at least as good as either single-width front.
  const double best32 =
      sweep.entries[1].result.best_power().metrics.noc_dynamic_w;
  const double best64 =
      sweep.entries[2].result.best_power().metrics.noc_dynamic_w;
  const double merged_best =
      sweep.point(sweep.pareto.front()).metrics.noc_dynamic_w;
  EXPECT_LE(merged_best, std::min(best32, best64) + 1e-12);
}

TEST(WidthSweep, ParetoIsNonDominatedAndCarriesWidths) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 4, d26.use_cases);
  const core::WidthSweepResult sweep = core::explore_link_widths(spec, {32, 64});
  double prev_power = -1.0;
  double prev_lat = std::numeric_limits<double>::infinity();
  for (const core::GlobalPointRef& ref : sweep.pareto) {
    const core::Metrics& m = sweep.point(ref).metrics;
    EXPECT_GE(m.noc_dynamic_w, prev_power);
    EXPECT_LT(m.avg_latency_cycles, prev_lat);
    prev_power = m.noc_dynamic_w;
    prev_lat = m.avg_latency_cycles;
    EXPECT_TRUE(sweep.width_of(ref) == 32 || sweep.width_of(ref) == 64);
  }
}

TEST(WidthSweep, RejectsBadArguments) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 2, d26.use_cases);
  EXPECT_THROW((void)core::explore_link_widths(spec, {}), std::invalid_argument);
  EXPECT_THROW((void)core::explore_link_widths(spec, {0}), std::invalid_argument);
}

// ---- Gating transition overhead ---------------------------------------------

struct TransitionFixture {
  soc::SocSpec spec;
  power::ShutdownReport report;

  TransitionFixture() {
    const soc::Benchmark d26 = soc::make_d26_media_soc();
    spec = soc::with_logical_islands(d26.soc, 7, d26.use_cases);
    const core::SynthesisResult r = core::synthesize(spec);
    report = power::evaluate_shutdown_savings(
        spec, r.best_power().topology, models::Technology::cmos65nm());
  }
};

TEST(Transitions, SecondLongDwellKeepsMostSavings) {
  const TransitionFixture fx;
  const power::TransitionReport t =
      power::evaluate_transition_overhead(fx.spec, fx.report);
  EXPECT_GT(t.wakeups_per_s, 0.0);
  EXPECT_GT(t.transition_power_w, 0.0);
  // At 1 s dwell the transition tax must be well under 5% of the savings.
  EXPECT_GT(t.net_saved_w, fx.report.saved_w * 0.95);
  EXPECT_GT(t.breakeven_dwell_s, 0.0);
  EXPECT_LT(t.breakeven_dwell_s, 1.0);
}

TEST(Transitions, ShortDwellEatsSavings) {
  const TransitionFixture fx;
  power::TransitionModel fast;
  fast.scenario_dwell_s = 1e-5;  // absurd 10 us dwell
  const power::TransitionReport t =
      power::evaluate_transition_overhead(fx.spec, fx.report, fast);
  EXPECT_LT(t.net_saved_w, fx.report.saved_w);
  EXPECT_LT(t.net_saved_w, 0.0);  // gating is counterproductive here
}

TEST(Transitions, BreakevenConsistentWithModel) {
  const TransitionFixture fx;
  const power::TransitionReport base =
      power::evaluate_transition_overhead(fx.spec, fx.report);
  // Evaluating exactly at the break-even dwell must give ~zero net savings.
  power::TransitionModel at_breakeven;
  at_breakeven.scenario_dwell_s = base.breakeven_dwell_s;
  const power::TransitionReport t =
      power::evaluate_transition_overhead(fx.spec, fx.report, at_breakeven);
  EXPECT_NEAR(t.net_saved_w, 0.0, fx.report.saved_w * 1e-6);
}

TEST(Transitions, RejectsBadInputs) {
  const TransitionFixture fx;
  soc::SocSpec no_scen = fx.spec;
  no_scen.scenarios.clear();
  EXPECT_THROW(
      (void)power::evaluate_transition_overhead(no_scen, fx.report),
      std::invalid_argument);
  power::TransitionModel bad;
  bad.scenario_dwell_s = 0.0;
  EXPECT_THROW(
      (void)power::evaluate_transition_overhead(fx.spec, fx.report, bad),
      std::invalid_argument);
}

// ---- Gnuplot emitters ---------------------------------------------------------

TEST(Plots, DataHasOneIndexBlockPerSeries) {
  io::PlotSpec plot;
  plot.title = "t";
  plot.series = {{"a", {{1, 2}, {2, 3}}}, {"b", {{1, 5}}}};
  const std::string dat = io::plot_data(plot);
  EXPECT_NE(dat.find("# series: a"), std::string::npos);
  EXPECT_NE(dat.find("# series: b"), std::string::npos);
  EXPECT_NE(dat.find("1 2"), std::string::npos);
  EXPECT_NE(dat.find("2 3"), std::string::npos);
  // Index separator: a blank double-newline between blocks.
  EXPECT_NE(dat.find("\n\n\n"), std::string::npos);
}

TEST(Plots, ScriptReferencesEverySeries) {
  io::PlotSpec plot;
  plot.title = "Figure 2";
  plot.xlabel = "islands";
  plot.ylabel = "mW";
  plot.series = {{"logical", {{1, 60}}}, {"comm", {{1, 55}}}};
  const std::string gp = io::plot_script(plot, "f.dat", "f.png");
  EXPECT_NE(gp.find("set output 'f.png'"), std::string::npos);
  EXPECT_NE(gp.find("index 0"), std::string::npos);
  EXPECT_NE(gp.find("index 1"), std::string::npos);
  EXPECT_NE(gp.find("title 'logical'"), std::string::npos);
  EXPECT_NE(gp.find("title 'comm'"), std::string::npos);
}

TEST(Plots, WritePlotEmitsBothFiles) {
  io::PlotSpec plot;
  plot.title = "t";
  plot.series = {{"s", {{0, 0}, {1, 1}}}};
  const std::string base = ::testing::TempDir() + "/vinoc_plot_test";
  io::write_plot(base, plot);
  std::ifstream dat(base + ".dat");
  std::ifstream gp(base + ".gp");
  EXPECT_TRUE(dat.good());
  EXPECT_TRUE(gp.good());
  std::remove((base + ".dat").c_str());
  std::remove((base + ".gp").c_str());
  io::PlotSpec empty;
  EXPECT_THROW(io::write_plot(base, empty), std::runtime_error);
}

}  // namespace
}  // namespace vinoc

// Tests for the VI communication graph (Definition 1) and the frequency /
// switch-size derivation (Algorithm 1 steps 1-2).
#include <gtest/gtest.h>

#include "vinoc/core/frequency.hpp"
#include "vinoc/core/vcg.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::core {
namespace {

soc::SocSpec two_island_spec() {
  soc::SocSpec s;
  s.name = "t";
  s.islands = {{"vi0", 1.0, false}, {"vi1", 1.0, true}};
  auto add = [&s](const char* name, soc::IslandId isl) {
    soc::CoreSpec c;
    c.name = name;
    c.island = isl;
    s.cores.push_back(c);
  };
  add("a", 0);
  add("b", 0);
  add("c", 0);
  add("d", 1);
  auto flow = [&s](int src, int dst, double bw, double lat) {
    soc::Flow f;
    f.src = src;
    f.dst = dst;
    f.bandwidth_bits_per_s = bw;
    f.max_latency_cycles = lat;
    f.label = std::to_string(src) + "->" + std::to_string(dst);
    s.flows.push_back(f);
  };
  flow(0, 1, 4e9, 20);  // a->b, heavy
  flow(1, 2, 1e9, 10);  // b->c, tight latency
  flow(0, 3, 2e9, 40);  // a->d, crosses islands
  return s;
}

TEST(VcgScalingTest, ExtremesOverAllFlows) {
  const VcgScaling s = vcg_scaling(two_island_spec());
  EXPECT_DOUBLE_EQ(s.max_bw_bits_per_s, 4e9);
  EXPECT_DOUBLE_EQ(s.min_lat_cycles, 10.0);
}

TEST(VcgScalingTest, EmptySpecGetsNeutralScaling) {
  soc::SocSpec s;
  const VcgScaling sc = vcg_scaling(s);
  EXPECT_GT(sc.max_bw_bits_per_s, 0.0);
  EXPECT_GT(sc.min_lat_cycles, 0.0);
}

TEST(BuildVcg, OnlyIntraIslandEdges) {
  const soc::SocSpec s = two_island_spec();
  const graph::Digraph vcg = build_vcg(s, 0, 0.5);
  EXPECT_EQ(vcg.node_count(), 3u);  // a, b, c
  EXPECT_EQ(vcg.edge_count(), 2u);  // a->b and b->c; a->d crosses
  EXPECT_EQ(vcg.node_name(0), "a");
}

TEST(BuildVcg, DefinitionOneWeights) {
  const soc::SocSpec s = two_island_spec();
  const double alpha = 0.6;
  const graph::Digraph vcg = build_vcg(s, 0, alpha);
  // h(a->b) = 0.6 * 4e9/4e9 + 0.4 * 10/20 = 0.6 + 0.2 = 0.8
  // h(b->c) = 0.6 * 1e9/4e9 + 0.4 * 10/10 = 0.15 + 0.4 = 0.55
  EXPECT_NEAR(vcg.edges()[0].weight, 0.8, 1e-12);
  EXPECT_NEAR(vcg.edges()[1].weight, 0.55, 1e-12);
  // Edge::user carries the flow index.
  EXPECT_EQ(vcg.edges()[0].user, 0);
  EXPECT_EQ(vcg.edges()[1].user, 1);
}

TEST(BuildVcg, AlphaExtremes) {
  const soc::SocSpec s = two_island_spec();
  // alpha = 1: pure bandwidth.
  const graph::Digraph bw_only = build_vcg(s, 0, 1.0);
  EXPECT_NEAR(bw_only.edges()[0].weight, 1.0, 1e-12);
  EXPECT_NEAR(bw_only.edges()[1].weight, 0.25, 1e-12);
  // alpha = 0: pure latency tightness.
  const graph::Digraph lat_only = build_vcg(s, 0, 0.0);
  EXPECT_NEAR(lat_only.edges()[0].weight, 0.5, 1e-12);
  EXPECT_NEAR(lat_only.edges()[1].weight, 1.0, 1e-12);
}

TEST(BuildVcg, RejectsBadAlphaAndScaling) {
  const soc::SocSpec s = two_island_spec();
  EXPECT_THROW((void)build_vcg(s, 0, -0.1), std::invalid_argument);
  EXPECT_THROW((void)build_vcg(s, 0, 1.1), std::invalid_argument);
  EXPECT_THROW((void)build_vcg(s, 0, 0.5, VcgScaling{0.0, 1.0}),
               std::invalid_argument);
}

TEST(BuildVcg, D26IslandNodeCountsMatch) {
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d26.soc, 6, d26.use_cases);
  std::size_t total_nodes = 0;
  for (std::size_t isl = 0; isl < spec.island_count(); ++isl) {
    total_nodes +=
        build_vcg(spec, static_cast<soc::IslandId>(isl), 0.6).node_count();
  }
  EXPECT_EQ(total_nodes, spec.core_count());
}

// ---- Frequency derivation (Algorithm 1, steps 1-2) ------------------------

TEST(Frequency, IslandClockSetByHungriestNiLink) {
  const soc::SocSpec s = two_island_spec();
  const models::Technology tech = models::Technology::cmos65nm();
  const auto params = derive_island_params(s, tech, 32);
  ASSERT_EQ(params.size(), 2u);
  // Island 0: core a sends 4e9 + 2e9 = 6e9 bits/s => 187.5 MHz => 200 MHz.
  EXPECT_DOUBLE_EQ(params[0].freq_hz, 200e6);
  // Island 1: core d receives 2e9 => 62.5 MHz => 100 MHz.
  EXPECT_DOUBLE_EQ(params[1].freq_hz, 100e6);
  EXPECT_EQ(params[0].core_count, 3);
  EXPECT_EQ(params[1].core_count, 1);
}

TEST(Frequency, WiderLinksLowerTheClock) {
  const soc::SocSpec s = two_island_spec();
  const models::Technology tech = models::Technology::cmos65nm();
  const auto narrow = derive_island_params(s, tech, 32);
  const auto wide = derive_island_params(s, tech, 64);
  EXPECT_LE(wide[0].freq_hz, narrow[0].freq_hz);
}

TEST(Frequency, MaxSwitchSizeDecreasesWithClock) {
  const soc::SocSpec s = two_island_spec();
  const models::Technology tech = models::Technology::cmos65nm();
  const auto params = derive_island_params(s, tech, 32);
  const models::SwitchModel sw(tech);
  for (const IslandNocParams& p : params) {
    EXPECT_EQ(p.max_sw_size, sw.max_ports_at(p.freq_hz));
    EXPECT_GE(p.max_sw_size, 2);
  }
}

TEST(Frequency, MinSwitchesCoversCores) {
  // 9 cores in one island with enough traffic to cap switches at few ports.
  soc::SocSpec s;
  s.islands = {{"vi0", 1.0, false}};
  for (int i = 0; i < 9; ++i) {
    soc::CoreSpec c;
    c.name = "c" + std::to_string(i);
    c.island = 0;
    s.cores.push_back(c);
  }
  // One very hot core pushes the island clock high (=> small switches).
  soc::Flow f;
  f.src = 0;
  f.dst = 1;
  f.bandwidth_bits_per_s = 25.6e9;  // 800 MHz at 32 bits
  f.max_latency_cycles = 30;
  s.flows.push_back(f);
  const models::Technology tech = models::Technology::cmos65nm();
  const auto params = derive_island_params(s, tech, 32, /*port_reserve=*/1);
  ASSERT_EQ(params.size(), 1u);
  const int usable = params[0].max_sw_size - 1;
  EXPECT_EQ(params[0].min_switches, (9 + usable - 1) / usable);
  EXPECT_GE(params[0].min_switches, 1);
}

TEST(Frequency, OverloadedNiLinkFlagged) {
  soc::SocSpec s = two_island_spec();
  s.flows[0].bandwidth_bits_per_s = 40e9;  // > 32 bits * 1 GHz
  const models::Technology tech = models::Technology::cmos65nm();
  const auto params = derive_island_params(s, tech, 32);
  EXPECT_EQ(params[0].max_sw_size, 0);  // sentinel: widen the links
}

TEST(Frequency, IntermediateRunsAtFastestIslandClock) {
  const soc::SocSpec s = two_island_spec();
  const models::Technology tech = models::Technology::cmos65nm();
  const auto params = derive_island_params(s, tech, 32);
  const IslandNocParams inter = derive_intermediate_params(params, tech);
  EXPECT_DOUBLE_EQ(inter.freq_hz, 200e6);
  EXPECT_EQ(inter.core_count, 0);
  EXPECT_EQ(inter.min_switches, 0);
}

TEST(Frequency, RejectsBadArguments) {
  const soc::SocSpec s = two_island_spec();
  const models::Technology tech = models::Technology::cmos65nm();
  EXPECT_THROW((void)derive_island_params(s, tech, 0), std::invalid_argument);
  EXPECT_THROW((void)derive_island_params(s, tech, 32, -1), std::invalid_argument);
}

}  // namespace
}  // namespace vinoc::core

// Candidate-level delta evaluation: bit-identity of the config-diff replay
// path against from-scratch evaluation (threads x prune x deterministic_prune
// on seed benchmarks and synthetic multi-island specs), the forced
// route-equivalence certificate (every replayed route re-derived by the
// flow's own Dijkstra and compared hop-by-hop, zero rejects), reuse-counter
// sanity at threads == 1 (the reference always precedes its members), and
// composition with the width sweep on both the default and fine width grids.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/explore.hpp"
#include "vinoc/core/router.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::core {
namespace {

soc::SocSpec islanded(const soc::Benchmark& bm, int islands) {
  return soc::with_logical_islands(bm.soc, islands, bm.use_cases);
}

std::uint64_t fp(const SynthesisResult& r) {
  return campaign::result_fingerprint(r);
}

/// RAII guard for the process-global forced-certificate knob.
struct ForcedCertGuard {
  explicit ForcedCertGuard(bool enabled) : prev(set_delta_cert_forced(enabled)) {}
  ~ForcedCertGuard() { set_delta_cert_forced(prev); }
  bool prev;
};

TEST(DeltaEval, BitIdenticalToFromScratchForThreadsAndPrune) {
  for (const soc::SocSpec& spec :
       {islanded(soc::make_d26_media_soc(), 4),
        islanded(soc::make_d36_settop_soc(), 3)}) {
    for (const bool prune : {true, false}) {
      // From-scratch reference (delta off, threads == 1).
      SynthesisOptions ref_opt;
      ref_opt.threads = 1;
      ref_opt.prune = prune;
      ref_opt.delta_eval = false;
      const std::uint64_t ref = fp(synthesize(spec, ref_opt));

      for (const int threads : {1, 4}) {
        SynthesisOptions opt;
        opt.threads = threads;
        opt.prune = prune;
        opt.delta_eval = true;
        const SynthesisResult r = synthesize(spec, opt);
        EXPECT_EQ(fp(r), ref) << "threads " << threads << " prune " << prune;
        if (threads == 1) {
          // Sequential evaluation: every group reference finishes before its
          // members start, so replay is always armed and must pay off.
          EXPECT_GT(r.stats.delta_candidates, 0);
          EXPECT_GT(r.stats.delta_flows_reused, 0);
          EXPECT_GT(r.stats.delta_reuse_rate(), 0.0);
        }
        EXPECT_EQ(r.stats.delta_cert_rejects, 0);
      }
    }
  }
}

TEST(DeltaEval, DeterministicPruneOffStaysBitIdentical) {
  const soc::SocSpec spec = islanded(soc::make_d26_media_soc(), 4);
  SynthesisOptions off;
  off.deterministic_prune = false;
  off.delta_eval = false;
  const std::uint64_t ref = fp(synthesize(spec, off));
  SynthesisOptions on = off;
  on.delta_eval = true;
  EXPECT_EQ(fp(synthesize(spec, on)), ref);
}

TEST(DeltaEval, ForcedCertificateAcceptsEveryReplay) {
  // Forced mode re-derives every would-be replayed route with the flow's own
  // solo Dijkstra and compares hop sequences: the certificate must accept
  // every one (the replay machinery claims bit-identity; here it proves it
  // route by route), and the result must still match from-scratch.
  const ForcedCertGuard guard(true);
  for (const soc::SocSpec& spec :
       {islanded(soc::make_d26_media_soc(), 4),
        islanded(soc::make_d64_tile_soc(), 4)}) {
    SynthesisOptions ref_opt;
    ref_opt.delta_eval = false;
    const std::uint64_t ref = fp(synthesize(spec, ref_opt));

    SynthesisOptions opt;
    opt.delta_eval = true;
    const SynthesisResult r = synthesize(spec, opt);
    EXPECT_EQ(fp(r), ref);
    EXPECT_GT(r.stats.delta_flows_certified, 0);
    EXPECT_EQ(r.stats.delta_flows_reused, 0);  // forced mode certifies instead
    EXPECT_EQ(r.stats.delta_cert_rejects, 0);
  }
}

TEST(DeltaEval, ReuseRateIsMeaningfulOnSeedBenchmarks) {
  // The acceptance bar for the perf claim: seed-benchmark sweeps serve > 30%
  // of delta-eligible flows from the group reference instead of running
  // Dijkstra. The rate tracks the intra/cross flow mix (only intra-island
  // flows are replayable — a k_int diff can reroute any cross flow), so it
  // is highest at low island counts; these configurations measure 0.34-0.49.
  for (const auto& [bm, islands] :
       {std::pair{soc::make_d26_media_soc(), 2},
        std::pair{soc::make_d64_tile_soc(), 4}}) {
    const soc::SocSpec spec = islanded(bm, islands);
    SynthesisOptions opt;
    opt.threads = 1;
    const SynthesisResult r = synthesize(spec, opt);
    EXPECT_GT(r.stats.delta_reuse_rate(), 0.3);
  }
}

TEST(DeltaEval, ComposesWithWidthSweepOnDefaultAndFineGrids) {
  const soc::SocSpec spec = islanded(soc::make_d26_media_soc(), 4);
  for (const std::vector<int>& widths :
       {std::vector<int>{32, 64, 128}, std::vector<int>{128, 160, 192, 256}}) {
    SynthesisOptions ref_opt;
    ref_opt.delta_eval = false;
    const WidthSweepResult ref = explore_link_widths(spec, widths, ref_opt);

    for (const int threads : {1, 4}) {
      SynthesisOptions opt;
      opt.threads = threads;
      opt.delta_eval = true;
      const WidthSweepResult sweep = explore_link_widths(spec, widths, opt);
      ASSERT_EQ(sweep.entries.size(), ref.entries.size());
      for (std::size_t i = 0; i < widths.size(); ++i) {
        ASSERT_EQ(sweep.entries[i].feasible, ref.entries[i].feasible)
            << "width " << widths[i];
        if (!ref.entries[i].feasible) continue;
        EXPECT_EQ(fp(sweep.entries[i].result), fp(ref.entries[i].result))
            << "width " << widths[i] << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace vinoc::core

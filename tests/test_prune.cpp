// Pareto-bound pruning: the bound oracle itself, front preservation
// (pruned mode must keep the exact Pareto front / best points of the
// unpruned sweep on the seed benchmarks), determinism across thread counts
// (the merge-time replay), and scratch-arena bit-identity.
#include <gtest/gtest.h>

#include "vinoc/core/candidates.hpp"
#include "vinoc/core/prune.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/exec/thread_pool.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::core {
namespace {

TEST(ParetoBound, EmptyDominatesNothing) {
  ParetoBound b;
  EXPECT_FALSE(b.dominated(1.0, 1.0));
  EXPECT_FALSE(b.dominated(1e9, 1e9));
}

TEST(ParetoBound, DominatedIsComponentwiseLessOrEqual) {
  ParetoBound b;
  b.insert(2.0, 10.0);
  EXPECT_TRUE(b.dominated(2.0, 10.0));   // equality counts (never on front)
  EXPECT_TRUE(b.dominated(3.0, 11.0));   // strictly worse in both
  EXPECT_FALSE(b.dominated(1.9, 11.0));  // better power
  EXPECT_FALSE(b.dominated(3.0, 9.9));   // better latency
}

TEST(ParetoBound, StaircaseKeepsOnlyNonDominatedPoints) {
  ParetoBound b;
  b.insert(2.0, 10.0);
  b.insert(3.0, 8.0);
  b.insert(1.0, 12.0);
  EXPECT_EQ(b.size(), 3u);
  b.insert(2.5, 9.0);  // between (2,10) and (3,8): non-dominated
  EXPECT_EQ(b.size(), 4u);
  b.insert(2.5, 9.5);  // dominated by (2.5, 9.0): ignored
  EXPECT_EQ(b.size(), 4u);
  b.insert(0.5, 7.0);  // dominates everything: staircase collapses
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.dominated(0.5, 7.0));
  EXPECT_FALSE(b.dominated(0.4, 100.0));
}

TEST(ParetoBound, EqualPowerImprovementReplacesThePoint) {
  ParetoBound b;
  b.insert(2.0, 10.0);
  b.insert(2.0, 8.0);  // same power, better latency: supersedes, not appends
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.dominated(2.0, 8.0));
  EXPECT_FALSE(b.dominated(2.0, 7.9));
  b.insert(2.0, 9.0);  // worse again: ignored
  EXPECT_EQ(b.size(), 1u);
}

TEST(SharedParetoBound, SnapshotIsNullUntilFirstPublishThenStable) {
  SharedParetoBound shared;
  EXPECT_EQ(shared.snapshot(), nullptr);
  shared.publish(1.0, 5.0);
  const auto snap = shared.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->dominated(1.0, 5.0));
  // Later publishes do not mutate an already-taken snapshot.
  shared.publish(0.5, 4.0);
  EXPECT_FALSE(snap->dominated(0.9, 4.5));
  EXPECT_TRUE(shared.snapshot()->dominated(0.9, 4.5));
}

struct SeedCase {
  const char* name;
  soc::SocSpec spec;
};

std::vector<SeedCase> seed_cases() {
  std::vector<SeedCase> cases;
  const soc::Benchmark d26 = soc::make_d26_media_soc();
  const soc::Benchmark d36 = soc::make_d36_settop_soc();
  const soc::Benchmark d16 = soc::make_d16_auto_soc();
  // Single-island references (the paper's baseline point — prune-heavy) and
  // multi-island sweeps (base-bound pruning, intermediate VI in play).
  cases.push_back({"d26/l1", soc::with_logical_islands(d26.soc, 1, d26.use_cases)});
  cases.push_back({"d36/l1", soc::with_logical_islands(d36.soc, 1, d36.use_cases)});
  cases.push_back({"d16/l3", soc::with_logical_islands(d16.soc, 3, d16.use_cases)});
  cases.push_back({"d36/c4",
                   soc::with_communication_islands(d36.soc, 4, d36.use_cases)});
  cases.push_back({"d26/l6", soc::with_logical_islands(d26.soc, 6, d26.use_cases)});
  return cases;
}

TEST(Prune, FrontAndBestPointsMatchUnprunedOnSeedBenchmarks) {
  int total_pruned = 0;
  for (const SeedCase& c : seed_cases()) {
    SynthesisOptions on;
    on.prune = true;
    SynthesisOptions off;
    off.prune = false;
    const SynthesisResult pruned = synthesize(c.spec, on);
    const SynthesisResult full = synthesize(c.spec, off);
    total_pruned += pruned.stats.rejected_pruned;

    // Pruning may only drop dominated interior points.
    EXPECT_LE(pruned.points.size(), full.points.size()) << c.name;
    EXPECT_EQ(pruned.stats.rejected_pruned + pruned.stats.configs_routed +
                  pruned.stats.rejected_latency + pruned.stats.rejected_unroutable,
              pruned.stats.configs_explored)
        << c.name;
    EXPECT_EQ(full.stats.rejected_pruned, 0) << c.name;

    // The Pareto front must be METRIC-identical (indices may differ since
    // interior points are gone).
    ASSERT_EQ(pruned.pareto.size(), full.pareto.size()) << c.name;
    for (std::size_t i = 0; i < pruned.pareto.size(); ++i) {
      const Metrics& a = pruned.points[pruned.pareto[i]].metrics;
      const Metrics& b = full.points[full.pareto[i]].metrics;
      EXPECT_EQ(a.noc_dynamic_w, b.noc_dynamic_w) << c.name << " front " << i;
      EXPECT_EQ(a.avg_latency_cycles, b.avg_latency_cycles) << c.name << " front " << i;
    }
    ASSERT_FALSE(pruned.points.empty()) << c.name;
    EXPECT_EQ(pruned.best_power().metrics.noc_dynamic_w,
              full.best_power().metrics.noc_dynamic_w)
        << c.name;
    EXPECT_EQ(pruned.best_latency().metrics.avg_latency_cycles,
              full.best_latency().metrics.avg_latency_cycles)
        << c.name;

    // Every surviving pruned-mode point exists metric-identically in the
    // unpruned run (pruning never invents points).
    for (const DesignPoint& p : pruned.points) {
      bool found = false;
      for (const DesignPoint& q : full.points) {
        if (p.metrics.noc_dynamic_w == q.metrics.noc_dynamic_w &&
            p.metrics.avg_latency_cycles == q.metrics.avg_latency_cycles) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << c.name;
    }
  }
  // The machinery must actually fire somewhere on the seed set, or this
  // whole test is vacuous.
  EXPECT_GT(total_pruned, 0);
}

TEST(Prune, DeterministicAcrossThreadCounts) {
  for (const SeedCase& c : seed_cases()) {
    SynthesisOptions seq;
    seq.prune = true;
    seq.threads = 1;
    const SynthesisResult base = synthesize(c.spec, seq);
    for (const int threads : {2, 4}) {
      SynthesisOptions par = seq;
      par.threads = threads;
      const SynthesisResult r = synthesize(c.spec, par);
      EXPECT_EQ(base.stats.rejected_pruned, r.stats.rejected_pruned)
          << c.name << " t=" << threads;
      EXPECT_EQ(base.stats.configs_saved, r.stats.configs_saved)
          << c.name << " t=" << threads;
      ASSERT_EQ(base.points.size(), r.points.size()) << c.name << " t=" << threads;
      for (std::size_t i = 0; i < base.points.size(); ++i) {
        EXPECT_EQ(base.points[i].metrics.noc_dynamic_w,
                  r.points[i].metrics.noc_dynamic_w);
        EXPECT_EQ(base.points[i].metrics.avg_latency_cycles,
                  r.points[i].metrics.avg_latency_cycles);
        EXPECT_EQ(base.points[i].topology.links.size(),
                  r.points[i].topology.links.size());
      }
      EXPECT_EQ(base.pareto, r.pareto) << c.name << " t=" << threads;
    }
  }
}

TEST(Prune, NonDeterministicModeStillPreservesFront) {
  const soc::Benchmark d36 = soc::make_d36_settop_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d36.soc, 1, d36.use_cases);
  SynthesisOptions off;
  off.prune = false;
  const SynthesisResult full = synthesize(spec, off);
  SynthesisOptions fast;
  fast.prune = true;
  fast.deterministic_prune = false;
  fast.threads = 4;
  const SynthesisResult r = synthesize(spec, fast);
  ASSERT_EQ(r.pareto.size(), full.pareto.size());
  for (std::size_t i = 0; i < r.pareto.size(); ++i) {
    EXPECT_EQ(r.points[r.pareto[i]].metrics.noc_dynamic_w,
              full.points[full.pareto[i]].metrics.noc_dynamic_w);
    EXPECT_EQ(r.points[r.pareto[i]].metrics.avg_latency_cycles,
              full.points[full.pareto[i]].metrics.avg_latency_cycles);
  }
}

TEST(Prune, ScratchPoolReuseIsBitIdenticalAcrossRuns) {
  const soc::Benchmark d16 = soc::make_d16_auto_soc();
  const soc::SocSpec spec = soc::with_logical_islands(d16.soc, 3, d16.use_cases);
  SynthesisOptions opt;  // prune on, threads 1
  const SynthesisResult fresh = synthesize(spec, opt);

  exec::ThreadPool pool(1);
  EvalScratchPool scratch;
  for (int run = 0; run < 3; ++run) {  // arenas carry state across runs
    const SynthesisResult r = synthesize(spec, opt, pool, scratch);
    ASSERT_EQ(fresh.points.size(), r.points.size()) << "run " << run;
    for (std::size_t i = 0; i < fresh.points.size(); ++i) {
      EXPECT_EQ(fresh.points[i].metrics.noc_dynamic_w,
                r.points[i].metrics.noc_dynamic_w);
      EXPECT_EQ(fresh.points[i].metrics.avg_latency_cycles,
                r.points[i].metrics.avg_latency_cycles);
      EXPECT_EQ(fresh.points[i].topology.links.size(),
                r.points[i].topology.links.size());
    }
    EXPECT_EQ(fresh.pareto, r.pareto);
    EXPECT_EQ(fresh.stats.rejected_pruned, r.stats.rejected_pruned);
  }
  EXPECT_GE(scratch.slot_count(), 1u);
}

TEST(Prune, ZeroFlowSpecSynthesizesWithPruningOn) {
  const soc::Benchmark d16 = soc::make_d16_auto_soc();
  soc::SocSpec spec = soc::with_logical_islands(d16.soc, 2, d16.use_cases);
  spec.flows.clear();
  SynthesisOptions opt;  // prune on
  const SynthesisResult r = synthesize(spec, opt);
  ASSERT_FALSE(r.points.empty());
  for (const DesignPoint& p : r.points) {
    EXPECT_TRUE(p.topology.links.empty());
    EXPECT_EQ(p.metrics.avg_latency_cycles, 0.0);
  }
}

}  // namespace
}  // namespace vinoc::core

// Tests for the vinoc::exec worker pool and its deterministic fan-out
// primitives (index-ordered reduction, exception determinism, nesting).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "vinoc/exec/ordered_drain.hpp"
#include "vinoc/exec/parallel_for.hpp"
#include "vinoc/exec/thread_pool.hpp"

namespace vinoc::exec {
namespace {

TEST(Exec, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1);
  EXPECT_EQ(resolve_thread_count(7), 7);
  EXPECT_EQ(resolve_thread_count(-3), 1);
  EXPECT_GE(resolve_thread_count(0), 1);  // hardware concurrency, at least 1
}

TEST(Exec, PoolReportsParallelism) {
  ThreadPool p1(1);
  EXPECT_EQ(p1.parallelism(), 1);
  ThreadPool p4(4);
  EXPECT_EQ(p4.parallelism(), 4);
}

TEST(Exec, ParallelForEachRunsEveryIndexOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    parallel_for_each(pool, hits.size(),
                      [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Exec, ParallelMapIsIndexOrdered) {
  ThreadPool pool(4);
  const std::vector<int> out = parallel_map<int>(
      pool, 100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(Exec, ZeroAndOneTaskEdgeCases) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for_each(pool, 0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_each(pool, 1, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Exec, LowestIndexExceptionWins) {
  // Every index still runs; afterwards the exception from the lowest
  // failing index (3) must be the one rethrown. This holds for the
  // sequential fast path (parallelism 1) too, so side effects on the error
  // path do not depend on the thread count.
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    try {
      parallel_for_each(pool, 64, [&ran](std::size_t i) {
        ran.fetch_add(1);
        if (i == 3 || i == 40) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3");
    }
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(Exec, NestedFanOutCompletes) {
  // Outer fan-out over the pool; each outer task fans out again over the
  // same pool. Must complete (no deadlock) and cover the full index space.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(8 * 32);
  parallel_for_each(pool, 8, [&pool, &hits](std::size_t outer) {
    parallel_for_each(pool, 32, [&hits, outer](std::size_t inner) {
      hits[outer * 32 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Exec, OnWorkerThreadDistinguishesStrands) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(2);  // one worker + the caller
  std::atomic<bool> worker_flag{false};
  std::atomic<bool> done{false};
  pool.submit([&worker_flag, &done] {
    worker_flag.store(ThreadPool::on_worker_thread());
    done.store(true);
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_TRUE(worker_flag.load());
  EXPECT_FALSE(ThreadPool::on_worker_thread());  // the caller is unchanged
}

TEST(Exec, SubmitFrontJumpsTheQueue) {
  // One worker; keep it busy with a gate job, queue A and B normally, then
  // push C to the front: the worker must run C before A and B.
  ThreadPool pool(2);
  std::atomic<bool> gate{false};
  std::atomic<bool> gate_entered{false};
  std::mutex order_mutex;
  std::vector<char> order;
  auto record = [&order_mutex, &order](char c) {
    const std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(c);
  };
  std::atomic<int> pending{4};
  pool.submit([&gate, &gate_entered, &pending] {
    gate_entered.store(true);
    while (!gate.load()) std::this_thread::yield();
    pending.fetch_sub(1);
  });
  while (!gate_entered.load()) std::this_thread::yield();
  pool.submit([&record, &pending] { record('A'); pending.fetch_sub(1); });
  pool.submit([&record, &pending] { record('B'); pending.fetch_sub(1); });
  pool.submit_front([&record, &pending] { record('C'); pending.fetch_sub(1); });
  gate.store(true);
  while (pending.load() != 0) std::this_thread::yield();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 'C');
  EXPECT_EQ(order[1], 'A');
  EXPECT_EQ(order[2], 'B');
}

TEST(Exec, SubmitFrontRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  bool ran = false;
  pool.submit_front([&ran] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(OrderedDrainQueue, MergesInIndexOrderWithEverythingDrainedAtBarrier) {
  // Concurrent out-of-order deposits must merge in strict index order, the
  // buffer hook must balance to zero, and once every deposit() returned
  // (the fan-out barrier) nothing may remain buffered. `merged` needs no
  // lock: merge calls are serialised by the queue (exclusive drainer,
  // handed off under its mutex).
  constexpr std::size_t kN = 64;
  OrderedDrainQueue<int> queue(kN);
  std::vector<int> merged;
  int buffered = 0;
  int peak = 0;
  ThreadPool pool(4);
  parallel_for_each(pool, kN, [&](std::size_t i) {
    queue.deposit(
        i, static_cast<int>(i * 10),
        [&merged](int&& value) { merged.push_back(value); },
        [&](int delta) {
          buffered += delta;
          peak = std::max(peak, buffered);
        });
  });
  ASSERT_EQ(merged.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(merged[i], static_cast<int>(i * 10));
  }
  EXPECT_EQ(buffered, 0);
  EXPECT_GE(peak, 1);
}

TEST(OrderedDrainQueue, SequentialDepositsMergeImmediately) {
  OrderedDrainQueue<int> queue(8);
  std::vector<int> merged;
  int peak = 0;
  int buffered = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    queue.deposit(i, static_cast<int>(i),
                  [&merged](int&& v) { merged.push_back(v); },
                  [&](int delta) {
                    buffered += delta;
                    peak = std::max(peak, buffered);
                  });
  }
  ASSERT_EQ(merged.size(), 8u);
  EXPECT_EQ(peak, 1);  // in-order arrival never buffers more than itself
  EXPECT_EQ(buffered, 0);
}

TEST(Exec, SubmitRunsJobs) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  std::atomic<int> pending{16};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&sum, &pending, i] {
      sum.fetch_add(i);
      pending.fetch_sub(1);
    });
  }
  // The destructor drains the queue; join via busy-wait to keep the test
  // independent of that detail.
  while (pending.load() != 0) std::this_thread::yield();
  EXPECT_EQ(sum.load(), 120);
}

}  // namespace
}  // namespace vinoc::exec

// Tests for the vinoc::exec worker pool and its deterministic fan-out
// primitives (index-ordered reduction, exception determinism, nesting).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "vinoc/exec/cancel.hpp"
#include "vinoc/exec/ordered_drain.hpp"
#include "vinoc/exec/parallel_for.hpp"
#include "vinoc/exec/thread_pool.hpp"

namespace vinoc::exec {
namespace {

TEST(Exec, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1);
  EXPECT_EQ(resolve_thread_count(7), 7);
  EXPECT_EQ(resolve_thread_count(-3), 1);
  EXPECT_GE(resolve_thread_count(0), 1);  // hardware concurrency, at least 1
}

TEST(Exec, PoolReportsParallelism) {
  ThreadPool p1(1);
  EXPECT_EQ(p1.parallelism(), 1);
  ThreadPool p4(4);
  EXPECT_EQ(p4.parallelism(), 4);
}

TEST(Exec, ParallelForEachRunsEveryIndexOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    parallel_for_each(pool, hits.size(),
                      [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Exec, ParallelMapIsIndexOrdered) {
  ThreadPool pool(4);
  const std::vector<int> out = parallel_map<int>(
      pool, 100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(Exec, ZeroAndOneTaskEdgeCases) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for_each(pool, 0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_each(pool, 1, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Exec, LowestIndexExceptionWins) {
  // Every index still runs; afterwards the exception from the lowest
  // failing index (3) must be the one rethrown. This holds for the
  // sequential fast path (parallelism 1) too, so side effects on the error
  // path do not depend on the thread count.
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    try {
      parallel_for_each(pool, 64, [&ran](std::size_t i) {
        ran.fetch_add(1);
        if (i == 3 || i == 40) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3");
    }
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(Exec, NestedFanOutCompletes) {
  // Outer fan-out over the pool; each outer task fans out again over the
  // same pool. Must complete (no deadlock) and cover the full index space.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(8 * 32);
  parallel_for_each(pool, 8, [&pool, &hits](std::size_t outer) {
    parallel_for_each(pool, 32, [&hits, outer](std::size_t inner) {
      hits[outer * 32 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Exec, OnWorkerThreadDistinguishesStrands) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(2);  // one worker + the caller
  std::atomic<bool> worker_flag{false};
  std::atomic<bool> done{false};
  pool.submit([&worker_flag, &done] {
    worker_flag.store(ThreadPool::on_worker_thread());
    done.store(true);
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_TRUE(worker_flag.load());
  EXPECT_FALSE(ThreadPool::on_worker_thread());  // the caller is unchanged
}

TEST(Exec, SubmitFrontJumpsTheQueue) {
  // One worker; keep it busy with a gate job, queue A and B normally, then
  // push C to the front: the worker must run C before A and B.
  ThreadPool pool(2);
  std::atomic<bool> gate{false};
  std::atomic<bool> gate_entered{false};
  std::mutex order_mutex;
  std::vector<char> order;
  auto record = [&order_mutex, &order](char c) {
    const std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(c);
  };
  std::atomic<int> pending{4};
  pool.submit([&gate, &gate_entered, &pending] {
    gate_entered.store(true);
    while (!gate.load()) std::this_thread::yield();
    pending.fetch_sub(1);
  });
  while (!gate_entered.load()) std::this_thread::yield();
  pool.submit([&record, &pending] { record('A'); pending.fetch_sub(1); });
  pool.submit([&record, &pending] { record('B'); pending.fetch_sub(1); });
  pool.submit_front([&record, &pending] { record('C'); pending.fetch_sub(1); });
  gate.store(true);
  while (pending.load() != 0) std::this_thread::yield();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 'C');
  EXPECT_EQ(order[1], 'A');
  EXPECT_EQ(order[2], 'B');
}

TEST(Exec, SubmitFrontRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  bool ran = false;
  pool.submit_front([&ran] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(OrderedDrainQueue, MergesInIndexOrderWithEverythingDrainedAtBarrier) {
  // Concurrent out-of-order deposits must merge in strict index order, the
  // buffer hook must balance to zero, and once every deposit() returned
  // (the fan-out barrier) nothing may remain buffered. `merged` needs no
  // lock: merge calls are serialised by the queue (exclusive drainer,
  // handed off under its mutex).
  constexpr std::size_t kN = 64;
  OrderedDrainQueue<int> queue(kN);
  std::vector<int> merged;
  int buffered = 0;
  int peak = 0;
  ThreadPool pool(4);
  parallel_for_each(pool, kN, [&](std::size_t i) {
    queue.deposit(
        i, static_cast<int>(i * 10),
        [&merged](int&& value) { merged.push_back(value); },
        [&](int delta) {
          buffered += delta;
          peak = std::max(peak, buffered);
        });
  });
  ASSERT_EQ(merged.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(merged[i], static_cast<int>(i * 10));
  }
  EXPECT_EQ(buffered, 0);
  EXPECT_GE(peak, 1);
}

TEST(OrderedDrainQueue, SlowDrainerPicksUpConcurrentDepositsWithoutStalling) {
  // One deposit's merge is made artificially slow while every other deposit
  // lands. The contention contract under test: depositors must NOT stall on
  // the in-progress merge (the queue drops its lock around merge calls), the
  // mid-drain deposits must be picked up when the drainer re-checks the
  // cursor, and — because the drainer only bows out when the queue is empty —
  // every merge of this run happens on the first depositor's thread.
  constexpr std::size_t kN = 48;
  OrderedDrainQueue<int> queue(kN);
  std::vector<int> merged;
  std::atomic<bool> gate{false};
  std::atomic<bool> first_merge_entered{false};
  int buffered = 0;  // mutated under the queue lock only
  int peak = 0;
  bool single_drainer = true;  // mutated by serialised merge calls only
  std::thread::id drainer_id;
  auto on_buffered = [&](int delta) {
    buffered += delta;
    peak = std::max(peak, buffered);
  };
  std::thread drainer([&] {
    drainer_id = std::this_thread::get_id();
    queue.deposit(
        0, 0,
        [&](int&& value) {
          if (value == 0) {
            first_merge_entered.store(true);
            while (!gate.load()) std::this_thread::yield();
          }
          if (std::this_thread::get_id() != drainer_id) single_drainer = false;
          merged.push_back(value);
        },
        on_buffered);
  });
  while (!first_merge_entered.load()) std::this_thread::yield();
  // The drainer is parked inside merge(0) with the lock dropped: all these
  // deposits must return promptly instead of waiting for the merge.
  std::vector<std::thread> depositors;
  for (std::size_t i = 1; i < kN; ++i) {
    depositors.emplace_back([&queue, &merged, &on_buffered, i] {
      queue.deposit(
          i, static_cast<int>(i),
          [&merged](int&& value) { merged.push_back(value); }, on_buffered);
    });
  }
  for (std::thread& t : depositors) t.join();
  gate.store(true);
  drainer.join();
  ASSERT_EQ(merged.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(merged[i], static_cast<int>(i));
  }
  EXPECT_TRUE(single_drainer);
  EXPECT_EQ(buffered, 0);
  // Index 0 left the buffer before its merge began; every other deposit then
  // landed while that merge was parked, so the high-water mark is exactly
  // the full out-of-order window.
  EXPECT_EQ(peak, static_cast<int>(kN) - 1);
}

TEST(OrderedDrainQueue, ReverseOrderBuffersFullWindowThenDrainsInOneSweep) {
  // Deposits arrive in strictly reverse order, i.e. every deposit is beyond
  // the buffered window until index 0 lands: nothing may merge early, the
  // whole queue is buffered at the peak, and the final deposit's drain loop
  // releases everything in index order before deposit(0) returns.
  constexpr std::size_t kN = 16;
  OrderedDrainQueue<int> queue(kN);
  std::vector<int> merged;
  int buffered = 0;
  int peak = 0;
  auto on_buffered = [&](int delta) {
    buffered += delta;
    peak = std::max(peak, buffered);
  };
  auto merge = [&merged](int&& value) { merged.push_back(value); };
  for (std::size_t i = kN; i-- > 1;) {
    queue.deposit(i, static_cast<int>(i), merge, on_buffered);
    EXPECT_TRUE(merged.empty());
    EXPECT_EQ(buffered, static_cast<int>(kN - i));
  }
  queue.deposit(0, 0, merge, on_buffered);
  ASSERT_EQ(merged.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(merged[i], static_cast<int>(i));
  }
  EXPECT_EQ(buffered, 0);
  EXPECT_EQ(peak, static_cast<int>(kN));
}

TEST(OrderedDrainQueue, EverythingMergedOnceEveryDepositHasReturned) {
  // The queue has no close(): its drain-after-last-deposit contract is that
  // once every deposit() call has RETURNED, every outcome has merged. The
  // risky interleaving is a deposit landing exactly while the current
  // drainer is bowing out (it must either be seen by the drainer's cursor
  // re-check or trigger its own drain). Stress that window with two
  // interleaved depositor threads over many rounds.
  constexpr std::size_t kN = 32;
  for (int round = 0; round < 200; ++round) {
    OrderedDrainQueue<int> queue(kN);
    std::vector<int> merged;
    int buffered = 0;
    auto on_buffered = [&buffered](int delta) { buffered += delta; };
    auto merge = [&merged](int&& value) { merged.push_back(value); };
    auto work = [&](std::size_t first) {
      for (std::size_t i = first; i < kN; i += 2) {
        queue.deposit(i, static_cast<int>(i), merge, on_buffered);
      }
    };
    std::thread a(work, 0);
    std::thread b(work, 1);
    a.join();
    b.join();
    ASSERT_EQ(merged.size(), kN) << "round " << round;
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(merged[i], static_cast<int>(i));
    }
    EXPECT_EQ(buffered, 0);
  }
}

TEST(OrderedDrainQueue, SequentialDepositsMergeImmediately) {
  OrderedDrainQueue<int> queue(8);
  std::vector<int> merged;
  int peak = 0;
  int buffered = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    queue.deposit(i, static_cast<int>(i),
                  [&merged](int&& v) { merged.push_back(v); },
                  [&](int delta) {
                    buffered += delta;
                    peak = std::max(peak, buffered);
                  });
  }
  ASSERT_EQ(merged.size(), 8u);
  EXPECT_EQ(peak, 1);  // in-order arrival never buffers more than itself
  EXPECT_EQ(buffered, 0);
}

TEST(Exec, SubmitRunsJobs) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  std::atomic<int> pending{16};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&sum, &pending, i] {
      sum.fetch_add(i);
      pending.fetch_sub(1);
    });
  }
  // The destructor drains the queue; join via busy-wait to keep the test
  // independent of that detail.
  while (pending.load() != 0) std::this_thread::yield();
  EXPECT_EQ(sum.load(), 120);
}

TEST(Exec, LeakedExceptionIsRecordedNotTerminate) {
  // Inline path (no workers): the throwing job runs on the caller.
  ThreadPool solo(1);
  solo.submit([] { throw std::runtime_error("leaked inline"); });
  ASSERT_NE(solo.worker_error(), nullptr);
  EXPECT_THROW(std::rethrow_exception(solo.worker_error()),
               std::runtime_error);

  // Worker path: the pool records the first leak instead of terminating.
  ThreadPool pool(4);
  std::atomic<int> pending{2};
  pool.submit([&pending] {
    pending.fetch_sub(1);
    throw std::runtime_error("leaked on worker");
  });
  pool.submit([&pending] { pending.fetch_sub(1); });
  while (pending.load() != 0) std::this_thread::yield();
  while (pool.worker_error() == nullptr) std::this_thread::yield();
  EXPECT_THROW(std::rethrow_exception(pool.worker_error()),
               std::runtime_error);
}

TEST(Exec, CancelTokenFlagDeadlineAndParentChain) {
  CancelToken parent;
  CancelToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  EXPECT_NO_THROW(child.check("here"));

  parent.cancel();  // propagates down the chain
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(child.flag_cancelled());
  EXPECT_THROW(child.check("here"), CancelledError);

  CancelToken expired;
  expired.set_timeout(-1.0);  // already past
  EXPECT_TRUE(expired.cancelled());
  EXPECT_FALSE(expired.flag_cancelled());  // deadline, not explicit cancel

  CancelToken open;
  open.set_timeout(3600.0);
  EXPECT_FALSE(open.cancelled());
}

}  // namespace
}  // namespace vinoc::exec

#include "vinoc/campaign/result_cache.hpp"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <unordered_set>
#include <utility>

#include "vinoc/faultinject/faultinject.hpp"
#include "vinoc/io/jsonl.hpp"

namespace vinoc::campaign {

namespace {

/// Append failures tolerated before the cache stops touching the disk store
/// for the rest of its lifetime (memory tiers keep serving). Three strikes:
/// one flaky write is worth retrying on the next record, a dead disk is not
/// worth stalling every job on.
constexpr std::uint64_t kDegradeAfterErrors = 3;

}  // namespace

ResultCache::ResultCache(std::string dir, std::string store_file)
    : dir_(std::move(dir)), store_file_(std::move(store_file)) {
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

std::shared_ptr<const core::SynthesisResult> ResultCache::find_result(
    std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = results_.find(key);
  return it == results_.end() ? nullptr : it->second;
}

void ResultCache::put_result(
    std::uint64_t key, std::shared_ptr<const core::SynthesisResult> result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  results_.emplace(key, std::move(result));  // first writer wins
}

std::optional<JobRecord> ResultCache::find_record(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::string ResultCache::record_line(const JobRecord& record) const {
  return io::add_line_checksum(record_to_jsonl(record));
}

void ResultCache::put_record(const JobRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!records_.emplace(record.key, record).second) return;  // already stored
  if (dir_.empty() || degraded_) return;
  const std::string line = record_line(record);
  bool ok = false;
  try {
    faultinject::maybe_fail(faultinject::Site::kStoreWrite, "store append");
    std::ofstream out(store_path(), std::ios::app);
    if (out) {
      out << line << '\n';
      out.flush();
      ok = static_cast<bool>(out);
    }
  } catch (const std::exception&) {
    ok = false;
  }
  if (!ok) {
    // Graceful degradation, not an abort: the record stays served from
    // memory, the campaign keeps running, and the error is surfaced through
    // the store_write_errors counter (the CLI degrades the exit code).
    ++store_write_errors_;
    if (store_write_errors_ >= kDegradeAfterErrors) degraded_ = true;
    return;
  }
  store_order_.push_back(record.key);
  store_bytes_ += line.size() + 1;
  if (store_max_bytes_ > 0 && store_bytes_ > store_max_bytes_) {
    evict_to_cap_locked();
  }
}

void ResultCache::rewrite_store_locked(const std::vector<std::uint64_t>& keys) {
  std::string text;
  std::uint64_t bytes = 0;
  for (const std::uint64_t key : keys) {
    const std::string line = record_line(records_.at(key));
    text += line;
    text += '\n';
    bytes += line.size() + 1;
  }
  const std::string tmp = store_path() + ".tmp";
  bool ok = false;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (out) {
      out << text;
      out.flush();
      ok = static_cast<bool>(out);
    }
  }
  if (ok) {
    std::error_code ec;
    std::filesystem::rename(tmp, store_path(), ec);
    ok = !ec;
  }
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    ++store_write_errors_;
    if (store_write_errors_ >= kDegradeAfterErrors) degraded_ = true;
    return;
  }
  store_order_ = keys;
  store_bytes_ = bytes;
}

void ResultCache::evict_to_cap_locked() {
  // Keep the longest NEWEST-record suffix that fits the cap (always at
  // least the newest record). Evicted records stay in the memory tier; only
  // their on-disk lines go, so a fresh process recomputes them on --resume.
  std::uint64_t bytes = 0;
  std::size_t keep_from = store_order_.size();
  while (keep_from > 0) {
    const std::uint64_t line_bytes =
        record_line(records_.at(store_order_[keep_from - 1])).size() + 1;
    if (bytes + line_bytes > store_max_bytes_ &&
        keep_from != store_order_.size()) {
      break;
    }
    bytes += line_bytes;
    --keep_from;
  }
  if (keep_from == 0) return;  // everything fits
  evicted_records_ += keep_from;
  const std::vector<std::uint64_t> kept(store_order_.begin() +
                                            static_cast<std::ptrdiff_t>(keep_from),
                                        store_order_.end());
  rewrite_store_locked(kept);
}

StoreRecoveryStats ResultCache::load_store() {
  const std::lock_guard<std::mutex> lock(mutex_);
  StoreRecoveryStats stats;
  store_order_.clear();
  store_bytes_ = 0;
  if (dir_.empty()) return stats;
  std::string text;
  {
    std::ifstream in(store_path(), std::ios::binary);
    if (!in) return stats;
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  // A store that does not end in '\n' has a crash-torn tail: the final
  // append was cut mid-line. The torn line itself almost always fails its
  // checksum below; republishing the store is what matters either way,
  // because appending after a newline-less tail would CONCATENATE the next
  // record onto the torn bytes and corrupt both.
  bool needs_rewrite = !text.empty() && text.back() != '\n';
  std::vector<std::string> quarantined;
  std::unordered_set<std::uint64_t> on_disk;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) {
      needs_rewrite = true;  // stray blank line: drop on republish
      continue;
    }
    std::string payload;
    const io::ChecksumStatus cs = io::verify_line_checksum(line, &payload);
    JobRecord rec;
    const bool good =
        (cs == io::ChecksumStatus::kOk || cs == io::ChecksumStatus::kAbsent) &&
        record_from_jsonl(payload, rec);
    if (!good) {
      quarantined.push_back(line);
      ++stats.recovered;
      needs_rewrite = true;
      continue;
    }
    if (cs == io::ChecksumStatus::kAbsent) needs_rewrite = true;  // v1 upgrade
    if (!on_disk.insert(rec.key).second) {
      needs_rewrite = true;  // duplicate line: drop on republish
      continue;
    }
    const std::uint64_t key = rec.key;
    if (records_.emplace(key, std::move(rec)).second) ++stats.loaded;
    store_order_.push_back(key);
    store_bytes_ += record_line(records_.at(key)).size() + 1;
  }
  recovered_records_ += stats.recovered;
  if (!quarantined.empty()) {
    std::ofstream out(quarantine_path(), std::ios::app);
    if (out) {
      // Each rejected line rides inside a checksummed envelope so the
      // quarantine ledger itself stays verifiable (vinoc store verify).
      for (const std::string& line : quarantined) {
        out << io::quarantine_envelope(line, "store recovery") << '\n';
      }
    }
  }
  const std::size_t evicted_before = static_cast<std::size_t>(evicted_records_);
  if (store_max_bytes_ > 0 && store_bytes_ > store_max_bytes_) {
    evict_to_cap_locked();  // republishes the store itself
    stats.evicted = static_cast<std::size_t>(evicted_records_) - evicted_before;
    stats.rewritten = true;
  } else if (needs_rewrite) {
    rewrite_store_locked(store_order_);
    stats.rewritten = true;
  }
  return stats;
}

std::size_t ResultCache::load_side_store(const std::string& path) {
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return 0;
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t loaded = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    std::string payload;
    const io::ChecksumStatus cs = io::verify_line_checksum(line, &payload);
    JobRecord rec;
    if ((cs != io::ChecksumStatus::kOk && cs != io::ChecksumStatus::kAbsent) ||
        !record_from_jsonl(payload, rec)) {
      continue;  // not ours to quarantine
    }
    // Memory tier only: deliberately NOT added to store_order_, so these
    // records are never rewritten or evicted into this cache's own store.
    if (records_.emplace(rec.key, std::move(rec)).second) ++loaded;
  }
  return loaded;
}

void ResultCache::set_store_max_bytes(std::uint64_t max_bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_max_bytes_ = max_bytes;
}

std::string ResultCache::store_path() const {
  if (dir_.empty()) return {};
  return (std::filesystem::path(dir_) / store_file_).string();
}

std::string ResultCache::quarantine_path() const {
  if (dir_.empty()) return {};
  return (std::filesystem::path(dir_) / "store.quarantine.jsonl").string();
}

std::size_t ResultCache::result_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

std::size_t ResultCache::record_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::uint64_t ResultCache::recovered_records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recovered_records_;
}

std::uint64_t ResultCache::evicted_records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evicted_records_;
}

std::uint64_t ResultCache::store_write_errors() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_write_errors_;
}

bool ResultCache::store_degraded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return degraded_;
}

}  // namespace vinoc::campaign

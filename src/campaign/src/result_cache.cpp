#include "vinoc/campaign/result_cache.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace vinoc::campaign {

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

std::shared_ptr<const core::SynthesisResult> ResultCache::find_result(
    std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = results_.find(key);
  return it == results_.end() ? nullptr : it->second;
}

void ResultCache::put_result(
    std::uint64_t key, std::shared_ptr<const core::SynthesisResult> result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  results_.emplace(key, std::move(result));  // first writer wins
}

std::optional<JobRecord> ResultCache::find_record(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void ResultCache::put_record(const JobRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!records_.emplace(record.key, record).second) return;  // already stored
  if (dir_.empty()) return;
  std::ofstream out(store_path(), std::ios::app);
  if (!out) {
    throw std::runtime_error("cannot append to campaign store " + store_path());
  }
  out << record_to_jsonl(record) << '\n';
}

std::size_t ResultCache::load_store() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (dir_.empty()) return 0;
  std::ifstream in(store_path());
  if (!in) return 0;
  std::size_t loaded = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JobRecord rec;
    if (!record_from_jsonl(line, rec)) continue;  // skip malformed lines
    if (records_.emplace(rec.key, std::move(rec)).second) ++loaded;
  }
  return loaded;
}

std::string ResultCache::store_path() const {
  if (dir_.empty()) return {};
  return (std::filesystem::path(dir_) / "store.jsonl").string();
}

std::size_t ResultCache::result_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

std::size_t ResultCache::record_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

}  // namespace vinoc::campaign

#include "vinoc/campaign/shard_merge.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "vinoc/io/jsonl.hpp"

namespace vinoc::campaign {

namespace {

namespace fs = std::filesystem;

bool read_text(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

/// Splits `text` into lines (no trailing '\n' handling needed: the last
/// unterminated chunk comes back as a line and fails its checksum).
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    if (nl > pos) lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

/// The store files of one cache dir: canonical store.jsonl first (its
/// records predate any shard's), then store-<k>.jsonl sorted by path so the
/// input order — and with it every first-wins decision — is deterministic.
std::vector<std::string> store_family(const std::string& cache_dir) {
  std::vector<std::string> files;
  const fs::path canonical = fs::path(cache_dir) / "store.jsonl";
  if (fs::exists(canonical)) files.push_back(canonical.string());
  std::vector<std::string> shards;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cache_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("store-", 0) == 0 &&
        name.size() > 12 &&  // "store-" + k + ".jsonl"
        name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      shards.push_back(entry.path().string());
    }
  }
  std::sort(shards.begin(), shards.end());
  files.insert(files.end(), shards.begin(), shards.end());
  return files;
}

std::vector<std::string> ledger_family(const std::string& cache_dir) {
  std::vector<std::string> files;
  std::vector<std::string> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cache_dir, ec)) {
    const std::string name = entry.path().filename().string();
    const bool failed_ledger =
        name.rfind("failed", 0) == 0 &&
        name.compare(name.size() - 6, 6, ".jsonl") == 0;
    if (failed_ledger || name == "store.quarantine.jsonl") {
      found.push_back(entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace

std::vector<JobRecord> read_store_records(const std::string& path) {
  std::vector<JobRecord> records;
  std::string text;
  if (!read_text(path, text)) return records;
  for (const std::string& line : split_lines(text)) {
    std::string payload;
    const io::ChecksumStatus cs = io::verify_line_checksum(line, &payload);
    if (cs != io::ChecksumStatus::kOk && cs != io::ChecksumStatus::kAbsent) {
      continue;
    }
    JobRecord rec;
    if (record_from_jsonl(payload, rec)) records.push_back(std::move(rec));
  }
  return records;
}

MergeStats merge_shard_stores(const std::string& cache_dir,
                              const std::vector<std::uint64_t>* job_order) {
  MergeStats stats;
  if (cache_dir.empty() || !fs::exists(cache_dir)) {
    stats.error = "cache dir does not exist";
    return stats;
  }
  const std::vector<std::string> files = store_family(cache_dir);
  const bool has_canonical =
      !files.empty() && fs::path(files.front()).filename() == "store.jsonl";
  stats.shard_files = files.size() - (has_canonical ? 1 : 0);
  if (stats.shard_files == 0) {
    // Nothing to union — leave the canonical store exactly as is (its own
    // recovery pass runs on next open).
    stats.ok = true;
    return stats;
  }

  std::vector<std::string> quarantined_lines;
  // First-seen record per key, plus its timing-stripped identity for the
  // bit-identity assertion on duplicates.
  std::vector<std::uint64_t> first_seen_order;
  std::unordered_map<std::uint64_t, JobRecord> records;
  std::unordered_map<std::uint64_t, std::string> identity;
  for (const std::string& file : files) {
    std::string text;
    if (!read_text(file, text)) continue;
    for (const std::string& line : split_lines(text)) {
      std::string payload;
      const io::ChecksumStatus cs = io::verify_line_checksum(line, &payload);
      JobRecord rec;
      const bool good =
          (cs == io::ChecksumStatus::kOk || cs == io::ChecksumStatus::kAbsent) &&
          record_from_jsonl(payload, rec);
      if (!good) {
        quarantined_lines.push_back(
            io::quarantine_envelope(line, "merge: corrupt line"));
        ++stats.quarantined;
        continue;
      }
      // wall_ms is the one measured field — two workers computing the same
      // key legitimately differ there and nowhere else.
      const std::string id = record_to_jsonl(rec, /*include_timing=*/false);
      const auto it = identity.find(rec.key);
      if (it == identity.end()) {
        identity.emplace(rec.key, id);
        first_seen_order.push_back(rec.key);
        records.emplace(rec.key, std::move(rec));
        continue;
      }
      if (it->second == id) {
        ++stats.duplicates;
      } else {
        ++stats.conflicts;
        quarantined_lines.push_back(
            io::quarantine_envelope(line, "merge: duplicate_conflict"));
      }
    }
  }

  // Output order: the supplied campaign job order, then unknown keys
  // (records from other campaigns sharing the store) key-sorted — total
  // order is a pure function of the inputs either way.
  std::vector<std::uint64_t> ordered;
  ordered.reserve(records.size());
  if (job_order != nullptr) {
    std::unordered_set<std::uint64_t> placed;
    for (const std::uint64_t key : *job_order) {
      if (records.count(key) != 0 && placed.insert(key).second) {
        ordered.push_back(key);
      }
    }
    std::vector<std::uint64_t> rest;
    for (const std::uint64_t key : first_seen_order) {
      if (placed.count(key) == 0) rest.push_back(key);
    }
    std::sort(rest.begin(), rest.end());
    ordered.insert(ordered.end(), rest.begin(), rest.end());
  } else {
    ordered = first_seen_order;
  }

  std::string text;
  for (const std::uint64_t key : ordered) {
    text += io::add_line_checksum(record_to_jsonl(records.at(key)));
    text += '\n';
  }
  const std::string store_path =
      (fs::path(cache_dir) / "store.jsonl").string();
  const std::string tmp = store_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      stats.error = "cannot write " + tmp;
      return stats;
    }
    out << text;
    out.flush();
    if (!out) {
      stats.error = "short write to " + tmp;
      return stats;
    }
  }
  std::error_code ec;
  fs::rename(tmp, store_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    stats.error = "rename failed: " + ec.message();
    return stats;
  }
  if (!quarantined_lines.empty()) {
    std::ofstream out((fs::path(cache_dir) / "store.quarantine.jsonl").string(),
                      std::ios::app);
    if (out) {
      for (const std::string& line : quarantined_lines) out << line << '\n';
    }
  }
  // The merged store is durable — only now do the shard stores go away.
  // A crash before this point re-merges idempotently (identical duplicates
  // collapse); a crash mid-removal leaves some shards to collapse next time.
  for (const std::string& file : files) {
    if (fs::path(file).filename() != "store.jsonl") fs::remove(file, ec);
  }
  stats.merged_records = ordered.size();
  stats.ok = true;
  return stats;
}

std::string VerifyStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "store verify: %zu files, %zu records, %zu ledger lines — "
                "%zu checksum failures, %zu parse failures, %zu duplicate "
                "keys, %zu legacy lines — %s",
                files, records, ledger_lines, checksum_failures, parse_failures,
                duplicate_keys, legacy_lines, clean() ? "clean" : "ISSUES");
  return buf;
}

VerifyStats verify_stores(const std::string& cache_dir) {
  VerifyStats stats;
  if (cache_dir.empty() || !fs::exists(cache_dir)) return stats;
  std::unordered_set<std::uint64_t> seen;
  for (const std::string& file : store_family(cache_dir)) {
    ++stats.files;
    std::string text;
    if (!read_text(file, text)) continue;
    for (const std::string& line : split_lines(text)) {
      std::string payload;
      const io::ChecksumStatus cs = io::verify_line_checksum(line, &payload);
      if (cs == io::ChecksumStatus::kMismatch ||
          cs == io::ChecksumStatus::kMalformed) {
        ++stats.checksum_failures;
        continue;
      }
      if (cs == io::ChecksumStatus::kAbsent) ++stats.legacy_lines;
      JobRecord rec;
      if (!record_from_jsonl(payload, rec)) {
        ++stats.parse_failures;
        continue;
      }
      ++stats.records;
      if (!seen.insert(rec.key).second) ++stats.duplicate_keys;
    }
  }
  for (const std::string& file : ledger_family(cache_dir)) {
    ++stats.files;
    std::string text;
    if (!read_text(file, text)) continue;
    for (const std::string& line : split_lines(text)) {
      std::string payload;
      const io::ChecksumStatus cs = io::verify_line_checksum(line, &payload);
      if (cs != io::ChecksumStatus::kOk) {
        // Side ledgers are always written checksummed (satellite of store
        // v2): anything else is damage, including checksum-less lines.
        ++stats.checksum_failures;
        continue;
      }
      std::map<std::string, std::string> obj;
      if (!io::parse_jsonl_object(payload, obj)) {
        ++stats.parse_failures;
        continue;
      }
      ++stats.ledger_lines;
    }
  }
  return stats;
}

}  // namespace vinoc::campaign

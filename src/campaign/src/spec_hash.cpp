#include "vinoc/campaign/spec_hash.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>

namespace vinoc::campaign {

CanonicalHasher& CanonicalHasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= 1099511628211ull;  // FNV-1a prime
  }
  return *this;
}

CanonicalHasher& CanonicalHasher::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  return bytes(buf, sizeof buf);
}

CanonicalHasher& CanonicalHasher::f64(double v) {
  if (v == 0.0) v = 0.0;  // normalize -0.0
  return u64(std::bit_cast<std::uint64_t>(v));
}

CanonicalHasher& CanonicalHasher::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

namespace {

// Section tags keep field streams from aliasing across record kinds.
enum : std::uint8_t {
  kTagSpec = 0x01,
  kTagCore = 0x02,
  kTagIsland = 0x03,
  kTagFlow = 0x04,
  kTagScenario = 0x05,
  kTagOptions = 0x10,
  kTagTechnology = 0x11,
  kTagFloorplan = 0x12,
  kTagJob = 0x20,
  kTagResult = 0x30,
  kTagPoint = 0x31,
};

void hash_technology(CanonicalHasher& h, const models::Technology& t) {
  h.tag(kTagTechnology)
      .f64(t.node_nm)
      .f64(t.vdd_nominal_v)
      .f64(t.freq_grid_hz)
      .f64(t.max_freq_hz)
      .f64(t.sw_critical_path_base_ns)
      .f64(t.sw_critical_path_per_log2port_ns)
      .f64(t.sw_energy_base_pj_per_bit)
      .f64(t.sw_energy_per_port_pj_per_bit)
      .f64(t.sw_idle_power_per_port_w_per_hz)
      .f64(t.sw_leakage_base_mw)
      .f64(t.sw_leakage_per_port_mw)
      .f64(t.sw_area_base_um2)
      .f64(t.sw_area_per_port2_um2)
      .f64(t.sw_area_per_port_um2)
      .i64(t.sw_pipeline_cycles)
      .f64(t.link_energy_pj_per_bit_mm)
      .f64(t.wire_delay_ns_per_mm)
      .f64(t.link_leakage_mw_per_wire_mm)
      .f64(t.ni_energy_pj_per_bit)
      .f64(t.ni_area_um2)
      .f64(t.ni_leakage_mw)
      .f64(t.fifo_energy_pj_per_bit)
      .f64(t.fifo_area_um2)
      .f64(t.fifo_leakage_mw)
      .i64(t.fifo_latency_cycles);
}

}  // namespace

std::uint64_t hash_soc_spec(const soc::SocSpec& spec) {
  CanonicalHasher h;
  h.tag(kTagSpec).str(spec.name);
  h.u64(spec.cores.size());
  for (const soc::CoreSpec& c : spec.cores) {
    h.tag(kTagCore)
        .str(c.name)
        .i64(static_cast<std::int64_t>(c.kind))
        .i64(c.island)
        .f64(c.width_mm)
        .f64(c.height_mm)
        .f64(c.dynamic_power_w)
        .f64(c.leakage_power_w)
        .f64(c.clock_hz);
  }
  h.u64(spec.islands.size());
  for (const soc::VoltageIsland& v : spec.islands) {
    h.tag(kTagIsland).str(v.name).f64(v.vdd_v).boolean(v.can_shutdown);
  }
  h.u64(spec.flows.size());
  for (const soc::Flow& f : spec.flows) {
    h.tag(kTagFlow)
        .i64(f.src)
        .i64(f.dst)
        .f64(f.bandwidth_bits_per_s)
        .f64(f.max_latency_cycles)
        .str(f.label);
  }
  h.u64(spec.scenarios.size());
  for (const soc::Scenario& s : spec.scenarios) {
    h.tag(kTagScenario).str(s.name).f64(s.time_fraction);
    h.u64(s.island_active.size());
    for (const bool active : s.island_active) h.boolean(active);
  }
  return h.digest();
}

namespace {

/// Shared body of the two option hashes; `include_width` distinguishes the
/// full job hash from the width-excluded structure hash (a fixed sentinel
/// keeps the two streams from aliasing).
std::uint64_t hash_options_impl(const core::SynthesisOptions& options,
                                bool include_width) {
  CanonicalHasher h;
  h.tag(kTagOptions)
      .f64(options.alpha)
      .f64(options.alpha_power)
      .i64(include_width ? options.link_width_bits : -1)
      .boolean(options.allow_intermediate_island)
      .i64(options.max_intermediate_switches)
      .i64(options.port_reserve)
      .u64(options.partition_seed)
      .boolean(options.enforce_wire_timing)
      .boolean(options.enforce_deadlock_freedom)
      .boolean(options.prune)
      .boolean(options.deterministic_prune);
  // threads / delta_eval / on_progress intentionally omitted: pure
  // wall-clock knobs, bit-identical results either way (see header).
  hash_technology(h, options.tech);
  h.tag(kTagFloorplan)
      .f64(options.floorplan.whitespace)
      .f64(options.floorplan.pad_ring_mm);
  return h.digest();
}

}  // namespace

std::uint64_t hash_synthesis_options(const core::SynthesisOptions& options) {
  return hash_options_impl(options, /*include_width=*/true);
}

std::uint64_t hash_synthesis_options_width_excluded(
    const core::SynthesisOptions& options) {
  return hash_options_impl(options, /*include_width=*/false);
}

std::uint64_t job_key(const soc::SocSpec& spec,
                      const core::SynthesisOptions& options) {
  CanonicalHasher h;
  h.tag(kTagJob).u64(hash_soc_spec(spec)).u64(hash_synthesis_options(options));
  return h.digest();
}

std::uint64_t structure_key(const soc::SocSpec& spec,
                            const core::SynthesisOptions& options) {
  CanonicalHasher h;
  h.tag(kTagJob)
      .u64(hash_soc_spec(spec))
      .u64(hash_synthesis_options_width_excluded(options));
  return h.digest();
}

std::uint64_t result_fingerprint(const core::SynthesisResult& result) {
  CanonicalHasher h;
  h.tag(kTagResult)
      .i64(result.stats.configs_explored)
      .i64(result.stats.configs_routed)
      .i64(result.stats.configs_saved)
      .i64(result.stats.rejected_unroutable)
      .i64(result.stats.rejected_latency)
      .i64(result.stats.rejected_duplicate)
      .i64(result.stats.rejected_deadlock)
      .i64(result.stats.rejected_pruned);
  h.u64(result.points.size());
  for (const core::DesignPoint& p : result.points) {
    h.tag(kTagPoint);
    h.u64(p.switches_per_island.size());
    for (const int k : p.switches_per_island) h.i64(k);
    h.i64(p.intermediate_switches);
    const core::Metrics& m = p.metrics;
    h.f64(m.noc_dynamic_w)
        .f64(m.noc_leakage_w)
        .f64(m.noc_area_mm2)
        .f64(m.avg_latency_cycles)
        .f64(m.max_latency_cycles)
        .f64(m.total_wire_mm)
        .i64(m.switch_count)
        .i64(m.link_count)
        .i64(m.fifo_count)
        .i64(m.max_switch_ports);
    h.u64(p.topology.switches.size());
    h.u64(p.topology.links.size());
    for (const core::FlowRoute& r : p.topology.routes) {
      h.i64(r.src_switch).i64(r.dst_switch).u64(r.links.size()).f64(
          r.latency_cycles);
    }
  }
  h.u64(result.pareto.size());
  for (const std::size_t i : result.pareto) h.u64(i);
  return h.digest();
}

std::string key_hex(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

bool key_from_hex(std::string_view hex, std::uint64_t& key) {
  if (hex.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  key = value;
  return true;
}

}  // namespace vinoc::campaign

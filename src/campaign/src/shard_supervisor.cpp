#include "vinoc/campaign/shard_supervisor.hpp"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "vinoc/campaign/shard.hpp"
#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/exec/subprocess.hpp"
#include "vinoc/io/jsonl.hpp"
#include "vinoc/io/shard_wire.hpp"

namespace vinoc::campaign {

namespace {

using Clock = std::chrono::steady_clock;

/// Worker exit codes the supervisor treats as a NORMAL end of process:
/// ok / infeasible / partial / interrupted. Anything else — and any death
/// by signal — is a crash.
bool clean_exit_code(int code) {
  return code == 0 || code == 5 || code == 6 || code == 7;
}

/// Exit codes that mean the worker could not even start its assignment
/// (usage/parse/spec errors, exec failure). Respawning replays the same
/// failure; reassignment (which rewrites the manifest) might not.
bool config_exit_code(int code) {
  return code == 2 || code == 3 || code == 4 || code == 127;
}

/// One worker slot: a shard assignment plus the process currently (or last)
/// running it.
struct Slot {
  int id = 0;  ///< shard id: manifest / store-<id> / failed-<id> suffix
  std::vector<std::uint64_t> assigned;  ///< manifest content, job order
  std::unique_ptr<exec::ChildProcess> child;
  std::unordered_set<std::uint64_t> pending;    ///< no record delivered yet
  std::unordered_set<std::uint64_t> in_flight;  ///< started, not done
  int respawns = 0;
  bool live = false;
  bool sigkilled_by_watchdog = false;
  Clock::time_point last_event;
};

/// Streams records in global job order as they arrive out of order from the
/// shards — the supervisor-side twin of the engine's OrderedEmitter.
class OrderedStream {
 public:
  OrderedStream(const CampaignOptions& options, std::size_t total)
      : options_(options), have_(total, false), records_(total) {}

  [[nodiscard]] bool has(std::size_t index) const { return have_[index]; }
  [[nodiscard]] std::size_t delivered() const { return delivered_; }

  void deliver(std::size_t index, JobRecord record) {
    if (have_[index]) return;  // first writer wins (respawn duplicates)
    have_[index] = true;
    records_[index] = std::move(record);
    ++delivered_;
    while (next_ < have_.size() && have_[next_]) {
      const JobRecord& rec = records_[next_];
      if (options_.stream != nullptr) {
        const std::string line =
            record_to_jsonl(rec, options_.include_timing) + "\n";
        std::fputs(line.c_str(), options_.stream);
        std::fflush(options_.stream);
      }
      if (options_.on_record) options_.on_record(rec);
      ++next_;
    }
  }

  [[nodiscard]] std::vector<JobRecord> take() { return std::move(records_); }

 private:
  const CampaignOptions& options_;
  std::vector<bool> have_;
  std::vector<JobRecord> records_;
  std::size_t next_ = 0;
  std::size_t delivered_ = 0;
};

/// Counters a worker summary contributes by SUMMING (run/cache_hits/... are
/// re-derived from the delivered records instead — records survive worker
/// crashes, summaries do not).
constexpr const char* kSummedCounters[] = {
    "structure_groups",   "structure_shared_jobs",
    "width_shared_evals", "width_certified_evals",
    "width_cohort_evals", "width_fallback_evals",
    "certificate_accepts", "cohort_groups",
    "delta_candidates",   "delta_flows_reused",
    "delta_flows_certified", "delta_flows_rerouted",
    "delta_cert_rejects", "retries",
    "recovered_records",  "evicted_records",
    "store_write_errors",
};

}  // namespace

ShardCampaignResult run_sharded_campaign(const CampaignSpec& spec,
                                         const ShardCampaignOptions& sopt) {
  if (sopt.base.cache_dir.empty()) {
    throw std::invalid_argument("sharded campaign requires a cache dir");
  }
  if (sopt.worker_exe.empty() || sopt.spec_path.empty()) {
    throw std::invalid_argument(
        "sharded campaign requires worker_exe and spec_path");
  }
  const auto t_start = Clock::now();
  ShardCampaignResult out;
  CampaignResult& result = out.campaign;
  const std::string& cache_dir = sopt.base.cache_dir;
  std::filesystem::create_directories(cache_dir);

  const std::vector<CampaignJob> jobs = expand_jobs(spec, &result.expand);
  std::vector<std::uint64_t> order_keys;
  order_keys.reserve(jobs.size());
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    order_keys.push_back(jobs[i].key);
    index_of.emplace(jobs[i].key, i);
  }

  // A previous sharded run that crashed before its merge leaves shard
  // stores behind; fold them into the canonical store FIRST so worker-side
  // --resume sees one authoritative store.
  (void)merge_shard_stores(cache_dir, &order_keys);

  const ShardPlan plan = plan_shards(jobs, sopt.shards);
  std::filesystem::create_directories(shards_dir(cache_dir));

  OrderedStream stream(sopt.base, jobs.size());
  obs::Registry summed;  ///< worker-summary + fallback telemetry (see above)
  std::int64_t workers_spawned = 0, worker_crashes = 0, worker_respawns = 0;
  std::int64_t reassign_rounds = 0, reassigned_jobs = 0, fallback_jobs = 0;
  std::int64_t heartbeat_drops = 0;
  std::unordered_map<std::uint64_t, int> crash_count;
  std::vector<std::uint64_t> orphans;  ///< keys whose slot gave up entirely

  const bool cancellable = sopt.base.cancel != nullptr;
  auto cancelled = [&] { return cancellable && sopt.base.cancel->cancelled(); };

  // Supervisor-side quarantine: jobs whose WORKER died too often around
  // them. Same ledger, same checksummed shape as the engine's (satellite:
  // every side ledger line carries _crc).
  std::ofstream failed_out;
  auto quarantine = [&](const CampaignJob& job, const std::string& error,
                        int attempts) {
    if (!failed_out.is_open()) {
      const std::string name =
          sopt.base.failed_file.empty() ? "failed.jsonl" : sopt.base.failed_file;
      failed_out.open((std::filesystem::path(cache_dir) / name).string(),
                      std::ios::app);
    }
    if (!failed_out) return;
    io::JsonlWriter w;
    w.field("campaign", spec.name)
        .field("job", job.name)
        .field("key", key_hex(job.key))
        .field("status", "failed")
        .field("error", error)
        .field("attempts", attempts);
    failed_out << io::add_line_checksum(w.line()) << '\n' << std::flush;
  };

  auto deliver_key = [&](std::uint64_t key, JobRecord rec) {
    const auto it = index_of.find(key);
    if (it == index_of.end()) return;  // not a job of this campaign
    stream.deliver(it->second, std::move(rec));
  };

  auto absorb_summary_map = [&](const std::map<std::string, std::string>& obj) {
    for (const char* name : kSummedCounters) {
      const auto it = obj.find(name);
      if (it != obj.end()) {
        summed.add(name, std::strtoll(it->second.c_str(), nullptr, 10));
      }
    }
    const auto it = obj.find("peak_buffered_outcomes");
    if (it != obj.end()) {
      summed.record_max("peak_buffered_outcomes",
                        std::strtoll(it->second.c_str(), nullptr, 10));
    }
  };
  auto absorb_registry = [&](const obs::Registry& reg) {
    for (const char* name : kSummedCounters) summed.add(name, reg.value(name));
    summed.record_max("peak_buffered_outcomes",
                      reg.value("peak_buffered_outcomes"));
  };

  auto worker_argv = [&](int shard_id) {
    std::vector<std::string> argv = {sopt.worker_exe,
                                     "campaign-worker",
                                     sopt.spec_path,
                                     "--cache-dir",
                                     cache_dir,
                                     "--shard",
                                     std::to_string(shard_id)};
    if (sopt.base.resume) argv.push_back("--resume");
    if (sopt.worker_threads > 0) {
      argv.push_back("--threads");
      argv.push_back(std::to_string(sopt.worker_threads));
    }
    if (sopt.base.job_timeout_s > 0.0) {
      argv.push_back("--job-timeout");
      argv.push_back(std::to_string(sopt.base.job_timeout_s));
    }
    argv.push_back("--retries");
    argv.push_back(std::to_string(sopt.base.max_retries));
    if (sopt.base.deadline_s > 0.0) {
      argv.push_back("--deadline");
      argv.push_back(std::to_string(sopt.base.deadline_s));
    }
    return argv;
  };

  /// Spawns (or respawns) slot `slot`'s worker. Respawns disarm fault
  /// injection in the child: an injected crash site would otherwise fire
  /// again on every respawn and burn the whole budget on the same
  /// scripted fault (real crashes recur on their own if they are real).
  auto spawn_worker = [&](Slot& slot, bool respawn) {
    std::vector<std::string> env;
    if (respawn) env.push_back("VINOC_FAULT=");
    slot.child = exec::ChildProcess::spawn(worker_argv(slot.id), env);
    slot.in_flight.clear();
    slot.sigkilled_by_watchdog = false;
    slot.last_event = Clock::now();
    if (slot.child == nullptr) {
      slot.live = false;
      return false;
    }
    ++workers_spawned;
    slot.live = true;
    return true;
  };

  std::vector<Slot> slots;
  for (int k = 0; k < plan.shards(); ++k) {
    if (plan.assignment[static_cast<std::size_t>(k)].empty()) continue;
    Slot slot;
    slot.id = k;
    slot.assigned = plan.assignment[static_cast<std::size_t>(k)];
    slot.pending.insert(slot.assigned.begin(), slot.assigned.end());
    if (!io::write_shard_manifest(shard_manifest_path(cache_dir, k),
                                  slot.assigned)) {
      orphans.insert(orphans.end(), slot.assigned.begin(),
                     slot.assigned.end());
      continue;
    }
    if (!spawn_worker(slot, /*respawn=*/false)) {
      orphans.insert(orphans.end(), slot.assigned.begin(),
                     slot.assigned.end());
      continue;
    }
    slots.push_back(std::move(slot));
  }
  int next_shard_id = plan.shards();

  // Watchdog budget: a worker whose engine is healthy polls cancellation
  // and emits SOMETHING at least once per job timeout; silence for twice
  // that (plus startup slack) means a stall no cooperative mechanism can
  // reclaim. Without a job timeout there is no line between slow and
  // stuck, so the watchdog stays off.
  const double watchdog_s = sopt.base.job_timeout_s > 0.0
                                ? 2.0 * sopt.base.job_timeout_s + 2.0
                                : 0.0;

  bool sigterm_sent = false;
  Clock::time_point sigterm_at;

  /// Processes one decoded event from `slot`.
  auto handle_event = [&](Slot& slot, const io::ShardEvent& ev) {
    slot.last_event = Clock::now();
    switch (ev.type) {
      case io::ShardEventType::kStart:
        slot.in_flight.insert(ev.key);
        break;
      case io::ShardEventType::kDone: {
        slot.in_flight.erase(ev.key);
        JobRecord rec;
        if (record_from_jsonl(ev.payload, rec)) {
          slot.pending.erase(ev.key);
          deliver_key(ev.key, std::move(rec));
        } else {
          ++heartbeat_drops;
        }
        break;
      }
      case io::ShardEventType::kSummary: {
        std::map<std::string, std::string> obj;
        if (io::parse_jsonl_object(ev.payload, obj)) {
          absorb_summary_map(obj);
        } else {
          ++heartbeat_drops;
        }
        break;
      }
    }
  };

  /// The worker for `slot` is gone (reaped). Salvage its store, attribute
  /// in-flight jobs, then respawn / reassign / orphan what remains.
  auto handle_exit = [&](Slot& slot) {
    slot.live = false;
    const bool signaled = slot.child->term_signal() != 0;
    const int code = slot.child->exit_code();
    const bool crashed = signaled || !clean_exit_code(code);
    // Jobs the worker computed but whose done lines never arrived (lost to
    // a crash mid-write or an injected heartbeat drop) are already durable
    // in its shard store — records beat recomputation.
    if (!slot.pending.empty()) {
      for (JobRecord& rec :
           read_store_records((std::filesystem::path(cache_dir) /
                               shard_store_file(slot.id))
                                  .string())) {
        const std::uint64_t key = rec.key;
        if (slot.pending.count(key) != 0) {
          slot.pending.erase(key);
          slot.in_flight.erase(key);
          deliver_key(key, std::move(rec));
        }
      }
    }
    if (slot.pending.empty()) return;
    if (cancelled()) return;  // leftovers become "skipped" after the loop
    if (crashed) {
      ++worker_crashes;
      const std::string cause =
          slot.sigkilled_by_watchdog
              ? std::string("worker stalled past the heartbeat watchdog")
          : signaled
              ? "worker died to signal " + std::to_string(slot.child->term_signal())
              : "worker exited with code " + std::to_string(code);
      // The jobs that were IN FLIGHT when the worker died are the crash
      // suspects; each gets a bounded number of second chances before it
      // is quarantined as the likely cause.
      for (const std::uint64_t key : std::vector<std::uint64_t>(
               slot.in_flight.begin(), slot.in_flight.end())) {
        if (slot.pending.count(key) == 0) continue;
        const int count = ++crash_count[key];
        if (count > sopt.crash_retries) {
          const auto it = index_of.find(key);
          if (it == index_of.end()) continue;
          const CampaignJob& job = jobs[it->second];
          JobRecord rec = summarize(spec.name, job, nullptr);
          rec.status = "failed";
          quarantine(job, cause, count);
          slot.pending.erase(key);
          stream.deliver(it->second, std::move(rec));
        }
      }
    }
    if (slot.pending.empty()) return;
    const bool config_failure = !signaled && config_exit_code(code);
    if (!config_failure && slot.respawns < sopt.max_respawns) {
      ++slot.respawns;
      ++worker_respawns;
      if (spawn_worker(slot, /*respawn=*/true)) return;
    }
    // Respawn budget (or the spawn itself) exhausted: hand the leftovers
    // to a fresh worker over a fresh manifest, bounded rounds, then give
    // up to the in-process fallback.
    std::vector<std::uint64_t> leftovers;
    for (const std::uint64_t key : order_keys) {
      if (slot.pending.count(key) != 0) leftovers.push_back(key);
    }
    slot.pending.clear();
    if (reassign_rounds >= sopt.max_reassign_rounds) {
      orphans.insert(orphans.end(), leftovers.begin(), leftovers.end());
      return;
    }
    ++reassign_rounds;
    reassigned_jobs += static_cast<std::int64_t>(leftovers.size());
    Slot fresh;
    fresh.id = next_shard_id++;
    fresh.assigned = leftovers;
    fresh.pending.insert(leftovers.begin(), leftovers.end());
    if (!io::write_shard_manifest(
            shard_manifest_path(cache_dir, fresh.id), leftovers) ||
        !spawn_worker(fresh, /*respawn=*/true)) {
      orphans.insert(orphans.end(), leftovers.begin(), leftovers.end());
      return;
    }
    slots.push_back(std::move(fresh));
  };

  // --- Supervision loop -----------------------------------------------------
  std::vector<std::string> lines;
  for (;;) {
    bool any_live = false;
    bool progressed = false;
    // Index loop, not iterators: handle_exit may push reassignment slots.
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].live) continue;
      any_live = true;
      Slot& slot = slots[s];
      lines.clear();
      const bool open = slot.child->read_available(lines);
      for (const std::string& line : lines) {
        progressed = true;
        if (const auto ev = io::decode_shard_event(line)) {
          handle_event(slot, *ev);
        } else {
          ++heartbeat_drops;  // torn/corrupt status line: tolerated
        }
      }
      if (!open && slot.child->poll_exit()) {
        progressed = true;
        handle_exit(slot);
        continue;
      }
      if (cancelled()) continue;  // cancel path below owns signaling
      if (watchdog_s > 0.0 && !slot.sigkilled_by_watchdog &&
          std::chrono::duration<double>(Clock::now() - slot.last_event)
                  .count() > watchdog_s) {
        slot.sigkilled_by_watchdog = true;
        slot.child->signal_now(SIGKILL);
      }
    }
    if (!any_live) break;
    if (cancelled()) {
      if (!sigterm_sent) {
        sigterm_sent = true;
        sigterm_at = Clock::now();
        for (Slot& slot : slots) {
          if (slot.live) slot.child->signal_now(SIGTERM);
        }
      } else if (std::chrono::duration<double>(Clock::now() - sigterm_at)
                     .count() > 5.0) {
        for (Slot& slot : slots) {
          if (slot.live) slot.child->signal_now(SIGKILL);
        }
      }
    }
    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  // --- Degradation: whatever no worker delivered runs in-process ------------
  if (!cancelled()) {
    std::vector<std::uint64_t> missing;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!stream.has(i)) missing.push_back(jobs[i].key);
    }
    if (!missing.empty()) {
      fallback_jobs = static_cast<std::int64_t>(missing.size());
      CampaignOptions fopt = sopt.base;
      fopt.stream = nullptr;  // the supervisor's ordered stream re-emits
      fopt.on_record = nullptr;
      fopt.job_keys = &missing;
      fopt.on_job_start = nullptr;
      CampaignResult fres = run_campaign(spec, fopt);
      absorb_registry(fres.metrics);
      for (JobRecord& rec : fres.records) {
        const std::uint64_t key = rec.key;
        deliver_key(key, std::move(rec));
      }
    }
  }
  // Interrupted (or pathological) leftovers: emit "skipped" so the stream
  // stays one-record-per-job — exactly what the single-process engine does.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (stream.has(i)) continue;
    JobRecord rec = summarize(spec.name, jobs[i], nullptr);
    rec.status = "skipped";
    stream.deliver(i, std::move(rec));
  }

  out.merge = merge_shard_stores(cache_dir, &order_keys);
  result.records = stream.take();

  // --- Canonical metrics ----------------------------------------------------
  // run/cache_hits/infeasible/total and the outcome counters re-derive from
  // the delivered records (ground truth that survives worker crashes);
  // telemetry counters come from the summed worker summaries. Registration
  // order: the engine's canonical resume_summary order, supervisor counters
  // appended AFTER "interrupted" (CI greps match line prefixes).
  std::int64_t run = 0, hits = 0, infeasible = 0;
  std::int64_t quarantined = 0, skipped = 0, timeouts = 0;
  for (const JobRecord& rec : result.records) {
    if (rec.status == "ok") {
      if (rec.cache_hit) {
        ++hits;
      } else {
        ++run;
      }
      if (!rec.feasible) ++infeasible;
    } else if (rec.status == "skipped") {
      ++skipped;
    } else {
      ++quarantined;
      if (rec.status == "timeout") ++timeouts;
    }
  }
  obs::Registry& m = result.metrics;
  m.add("run", run);
  m.add("cache_hits", hits);
  m.add("infeasible", infeasible);
  m.add("total", static_cast<std::int64_t>(jobs.size()));
  m.add("structure_groups", summed.value("structure_groups"));
  m.add("structure_shared_jobs", summed.value("structure_shared_jobs"));
  m.add("width_shared_evals", summed.value("width_shared_evals"));
  m.add("width_certified_evals", summed.value("width_certified_evals"));
  m.add("width_cohort_evals", summed.value("width_cohort_evals"));
  m.add("width_fallback_evals", summed.value("width_fallback_evals"));
  m.add("certificate_accepts", summed.value("certificate_accepts"));
  m.add("cohort_groups", summed.value("cohort_groups"));
  m.record_max("peak_buffered_outcomes",
               summed.value("peak_buffered_outcomes"));
  m.add("delta_candidates", summed.value("delta_candidates"));
  m.add("delta_flows_reused", summed.value("delta_flows_reused"));
  m.add("delta_flows_certified", summed.value("delta_flows_certified"));
  m.add("delta_flows_rerouted", summed.value("delta_flows_rerouted"));
  m.add("delta_cert_rejects", summed.value("delta_cert_rejects"));
  m.add("retries", summed.value("retries"));
  m.add("job_timeouts", timeouts);
  m.add("quarantined_jobs", quarantined);
  m.add("skipped_jobs", skipped);
  m.add("recovered_records", summed.value("recovered_records"));
  m.add("evicted_records", summed.value("evicted_records"));
  m.add("store_write_errors", summed.value("store_write_errors"));
  m.add("interrupted", cancelled() ? 1 : 0);
  // Sharding counters (this PR) — appended after every pre-existing one.
  m.add("shards", plan.shards());
  m.add("workers_spawned", workers_spawned);
  m.add("worker_crashes", worker_crashes);
  m.add("worker_respawns", worker_respawns);
  m.add("reassign_rounds", reassign_rounds);
  m.add("reassigned_jobs", reassigned_jobs);
  m.add("fallback_jobs", fallback_jobs);
  m.add("heartbeat_drops", heartbeat_drops);
  m.add("merge_duplicates",
        static_cast<std::int64_t>(out.merge.duplicates));
  m.add("merge_conflicts", static_cast<std::int64_t>(out.merge.conflicts));
  m.add("merge_quarantined",
        static_cast<std::int64_t>(out.merge.quarantined));
  m.set_gauge("delta_reuse_rate", result.delta_reuse_rate());
  result.wall_s =
      std::chrono::duration<double>(Clock::now() - t_start).count();
  return out;
}

}  // namespace vinoc::campaign

#include "vinoc/campaign/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/io/jsonl.hpp"

namespace vinoc::campaign {

JobRecord summarize(const std::string& campaign_name, const CampaignJob& job,
                    const core::SynthesisResult* result) {
  JobRecord rec;
  rec.campaign = campaign_name;
  rec.job = job.name;
  rec.scenario = job.scenario;
  rec.strategy = job.strategy;
  rec.islands = job.islands;
  rec.width = job.width;
  rec.seed = job.seed;
  rec.key = job.key;
  if (result == nullptr) return rec;  // infeasible width
  rec.feasible = true;
  rec.points = static_cast<int>(result->points.size());
  rec.pareto_points = static_cast<int>(result->pareto.size());
  rec.configs_explored = result->stats.configs_explored;
  if (!result->points.empty()) {
    const core::Metrics& best = result->best_power().metrics;
    rec.best_power_mw = best.noc_dynamic_w * 1e3;
    rec.best_leakage_mw = best.noc_leakage_w * 1e3;
    rec.best_area_mm2 = best.noc_area_mm2;
    rec.best_power_latency_cycles = best.avg_latency_cycles;
    rec.min_latency_cycles = result->best_latency().metrics.avg_latency_cycles;
  }
  return rec;
}

std::string record_to_jsonl(const JobRecord& record, bool include_timing) {
  io::JsonlWriter w;
  w.field("campaign", record.campaign)
      .field("job", record.job)
      .field("scenario", record.scenario)
      .field("strategy", record.strategy)
      .field("islands", record.islands)
      .field("width", record.width)
      .field("seed", static_cast<std::uint64_t>(record.seed))
      .field("key", key_hex(record.key))
      .field("feasible", record.feasible)
      .field("cache_hit", record.cache_hit)
      .field("points", record.points)
      .field("pareto", record.pareto_points)
      .field("explored", record.configs_explored)
      .field("best_power_mw", record.best_power_mw)
      .field("best_leakage_mw", record.best_leakage_mw)
      .field("best_area_mm2", record.best_area_mm2)
      .field("best_power_latency_cy", record.best_power_latency_cycles)
      .field("min_latency_cy", record.min_latency_cycles);
  if (record.status != "ok") w.field("status", record.status);
  if (include_timing) w.field("wall_ms", record.wall_ms);
  return w.line();
}

namespace {

bool get_string(const std::map<std::string, std::string>& obj,
                const std::string& key, std::string& out) {
  const auto it = obj.find(key);
  if (it == obj.end()) return false;
  out = it->second;
  return true;
}

bool get_double(const std::map<std::string, std::string>& obj,
                const std::string& key, double& out) {
  const auto it = obj.find(key);
  if (it == obj.end()) return false;
  char* end = nullptr;
  out = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() + it->second.size() && !it->second.empty();
}

bool get_int(const std::map<std::string, std::string>& obj,
             const std::string& key, int& out) {
  double v = 0.0;
  if (!get_double(obj, key, v)) return false;
  out = static_cast<int>(v);
  return true;
}

bool get_bool(const std::map<std::string, std::string>& obj,
              const std::string& key, bool& out) {
  const auto it = obj.find(key);
  if (it == obj.end()) return false;
  if (it->second == "true") {
    out = true;
  } else if (it->second == "false") {
    out = false;
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool record_from_jsonl(const std::string& line, JobRecord& out) {
  std::map<std::string, std::string> obj;
  if (!io::parse_jsonl_object(line, obj)) return false;
  JobRecord rec;
  std::string key_text;
  double seed = 0.0;
  if (!get_string(obj, "campaign", rec.campaign) ||
      !get_string(obj, "job", rec.job) ||
      !get_string(obj, "scenario", rec.scenario) ||
      !get_string(obj, "strategy", rec.strategy) ||
      !get_int(obj, "islands", rec.islands) ||
      !get_int(obj, "width", rec.width) || !get_double(obj, "seed", seed) ||
      !get_string(obj, "key", key_text) ||
      !key_from_hex(key_text, rec.key) ||
      !get_bool(obj, "feasible", rec.feasible) ||
      !get_bool(obj, "cache_hit", rec.cache_hit) ||
      !get_int(obj, "points", rec.points) ||
      !get_int(obj, "pareto", rec.pareto_points) ||
      !get_int(obj, "explored", rec.configs_explored) ||
      !get_double(obj, "best_power_mw", rec.best_power_mw) ||
      !get_double(obj, "best_leakage_mw", rec.best_leakage_mw) ||
      !get_double(obj, "best_area_mm2", rec.best_area_mm2) ||
      !get_double(obj, "best_power_latency_cy",
                  rec.best_power_latency_cycles) ||
      !get_double(obj, "min_latency_cy", rec.min_latency_cycles)) {
    return false;
  }
  rec.seed = static_cast<unsigned>(seed);
  (void)get_string(obj, "status", rec.status);    // optional; default "ok"
  (void)get_double(obj, "wall_ms", rec.wall_ms);  // optional
  out = std::move(rec);
  return true;
}

std::string records_to_csv(const std::vector<JobRecord>& records) {
  std::string csv =
      "job,scenario,strategy,islands,width,seed,key,feasible,cache_hit,"
      "points,pareto,explored,best_power_mw,best_leakage_mw,best_area_mm2,"
      "best_power_latency_cy,min_latency_cy,status,wall_ms\n";
  char buf[512];
  for (const JobRecord& r : records) {
    std::snprintf(buf, sizeof buf,
                  "%s,%s,%s,%d,%d,%u,%s,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.3f,"
                  "%.3f,%s,%.3f\n",
                  r.job.c_str(), r.scenario.c_str(), r.strategy.c_str(),
                  r.islands, r.width, r.seed, key_hex(r.key).c_str(),
                  r.feasible ? 1 : 0, r.cache_hit ? 1 : 0, r.points,
                  r.pareto_points, r.configs_explored, r.best_power_mw,
                  r.best_leakage_mw, r.best_area_mm2,
                  r.best_power_latency_cycles, r.min_latency_cycles,
                  r.status.c_str(), r.wall_ms);
    csv += buf;
  }
  return csv;
}

}  // namespace vinoc::campaign

#include "vinoc/campaign/engine.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/candidates.hpp"
#include "vinoc/exec/parallel_for.hpp"
#include "vinoc/exec/thread_pool.hpp"

namespace vinoc::campaign {

namespace {

/// Reorders concurrently finishing records into job order and flushes each
/// one (stream + callback + result vector) as soon as all its predecessors
/// have been flushed — streaming, but deterministic.
class OrderedEmitter {
 public:
  OrderedEmitter(const CampaignOptions& options, std::vector<JobRecord>& out)
      : options_(options), out_(out) {}

  void emit(std::size_t index, JobRecord record) {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending_.emplace(index, std::move(record));
    for (auto it = pending_.find(next_); it != pending_.end();
         it = pending_.find(next_)) {
      JobRecord& rec = it->second;
      if (options_.stream != nullptr) {
        const std::string line =
            record_to_jsonl(rec, options_.include_timing) + "\n";
        std::fputs(line.c_str(), options_.stream);
        std::fflush(options_.stream);
      }
      if (options_.on_record) options_.on_record(rec);
      out_.push_back(std::move(rec));
      pending_.erase(it);
      ++next_;
    }
  }

 private:
  const CampaignOptions& options_;
  std::vector<JobRecord>& out_;
  std::mutex mutex_;
  std::map<std::size_t, JobRecord> pending_;
  std::size_t next_ = 0;
};

}  // namespace

std::string CampaignResult::to_jsonl(bool include_timing) const {
  std::string text;
  for (const JobRecord& rec : records) {
    text += record_to_jsonl(rec, include_timing);
    text += '\n';
  }
  return text;
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  const auto t_start = std::chrono::steady_clock::now();
  CampaignResult out;
  const std::vector<CampaignJob> jobs = expand_jobs(spec, &out.expand);
  out.jobs_total = static_cast<int>(jobs.size());
  out.records.reserve(jobs.size());

  ResultCache own_cache(options.cache != nullptr ? std::string()
                                                 : options.cache_dir);
  ResultCache& cache = options.cache != nullptr ? *options.cache : own_cache;
  // Load the store whenever one exists — a non-resume run ignores the
  // loaded records for scheduling (it recomputes every job) but must know
  // which keys are already on disk so put_record does not append duplicate
  // lines run after run. Resume additionally serves jobs from them.
  cache.load_store();

  OrderedEmitter emitter(options, out.records);
  std::atomic<int> jobs_run{0};
  std::atomic<int> cache_hits{0};
  std::atomic<int> infeasible{0};

  exec::ThreadPool pool(options.threads);
  // One scratch-arena pool for the whole campaign: each worker strand keeps
  // its evaluation buffers (router state, metrics accumulators, ...) across
  // every job and candidate it touches, so a thousand-job batch allocates
  // them once per strand instead of once per job.
  core::EvalScratchPool scratch;
  exec::parallel_for_each(pool, jobs.size(), [&](std::size_t i) {
    const CampaignJob& job = jobs[i];
    JobRecord rec;
    if (options.resume) {
      if (auto stored = cache.find_record(job.key)) {
        // Payload from the store, identity from THIS campaign (the store is
        // content-addressed and may have been written by another campaign
        // over the same jobs).
        rec = std::move(*stored);
        rec.campaign = spec.name;
        rec.job = job.name;
        rec.scenario = job.scenario;
        rec.strategy = job.strategy;
        rec.islands = job.islands;
        rec.width = job.width;
        rec.seed = job.seed;
        rec.cache_hit = true;
        cache_hits.fetch_add(1);
        if (!rec.feasible) infeasible.fetch_add(1);
        emitter.emit(i, std::move(rec));
        return;
      }
    }
    if (auto result = cache.find_result(job.key)) {
      rec = summarize(spec.name, job, result.get());
      rec.cache_hit = true;  // wall_ms stays 0: the hit costs nothing
      cache_hits.fetch_add(1);
      JobRecord stored = rec;
      stored.cache_hit = false;  // the store holds computed-job records
      cache.put_record(stored);
      emitter.emit(i, std::move(rec));
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<const core::SynthesisResult> result;
    try {
      result = std::make_shared<core::SynthesisResult>(
          core::synthesize(job.spec, job.options, pool, scratch));
    } catch (const core::InfeasibleWidthError&) {
      // Recorded, not fatal: an infeasible (scenario, width) pair is a
      // normal matrix outcome.
    }
    rec = summarize(spec.name, job, result.get());
    rec.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (result != nullptr) {
      cache.put_result(job.key, result);
    } else {
      infeasible.fetch_add(1);
    }
    jobs_run.fetch_add(1);
    cache.put_record(rec);  // cache_hit is false here by construction
    emitter.emit(i, std::move(rec));
  });

  out.jobs_run = jobs_run.load();
  out.cache_hits = cache_hits.load();
  out.infeasible = infeasible.load();
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t_start)
                   .count();
  return out;
}

}  // namespace vinoc::campaign

#include "vinoc/campaign/engine.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/candidates.hpp"
#include "vinoc/core/explore.hpp"
#include "vinoc/exec/parallel_for.hpp"
#include "vinoc/exec/thread_pool.hpp"

namespace vinoc::campaign {

namespace {

/// Reorders concurrently finishing records into job order and flushes each
/// one (stream + callback + result vector) as soon as all its predecessors
/// have been flushed — streaming, but deterministic.
class OrderedEmitter {
 public:
  OrderedEmitter(const CampaignOptions& options, std::vector<JobRecord>& out)
      : options_(options), out_(out) {}

  void emit(std::size_t index, JobRecord record) {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending_.emplace(index, std::move(record));
    for (auto it = pending_.find(next_); it != pending_.end();
         it = pending_.find(next_)) {
      JobRecord& rec = it->second;
      if (options_.stream != nullptr) {
        const std::string line =
            record_to_jsonl(rec, options_.include_timing) + "\n";
        std::fputs(line.c_str(), options_.stream);
        std::fflush(options_.stream);
      }
      if (options_.on_record) options_.on_record(rec);
      out_.push_back(std::move(rec));
      pending_.erase(it);
      ++next_;
    }
  }

 private:
  const CampaignOptions& options_;
  std::vector<JobRecord>& out_;
  std::mutex mutex_;
  std::map<std::size_t, JobRecord> pending_;
  std::size_t next_ = 0;
};

}  // namespace

std::string CampaignResult::to_jsonl(bool include_timing) const {
  std::string text;
  for (const JobRecord& rec : records) {
    text += record_to_jsonl(rec, include_timing);
    text += '\n';
  }
  return text;
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  const auto t_start = std::chrono::steady_clock::now();
  CampaignResult out;
  const std::vector<CampaignJob> jobs = expand_jobs(spec, &out.expand);
  out.jobs_total = static_cast<int>(jobs.size());
  out.records.reserve(jobs.size());

  ResultCache own_cache(options.cache != nullptr ? std::string()
                                                 : options.cache_dir);
  ResultCache& cache = options.cache != nullptr ? *options.cache : own_cache;
  // Load the store whenever one exists — a non-resume run ignores the
  // loaded records for scheduling (it recomputes every job) but must know
  // which keys are already on disk so put_record does not append duplicate
  // lines run after run. Resume additionally serves jobs from them.
  cache.load_store();

  OrderedEmitter emitter(options, out.records);
  std::atomic<int> jobs_run{0};
  std::atomic<int> cache_hits{0};
  std::atomic<int> infeasible{0};
  std::atomic<int> structure_groups{0};
  std::atomic<int> structure_shared_jobs{0};
  std::atomic<int> width_shared_evals{0};
  std::atomic<int> width_certified_evals{0};
  std::atomic<int> width_cohort_evals{0};
  std::atomic<int> width_fallback_evals{0};
  std::atomic<int> certificate_accepts{0};
  std::atomic<int> cohort_groups{0};
  std::atomic<int> peak_buffered_outcomes{0};
  std::atomic<int> delta_candidates{0};
  std::atomic<long long> delta_flows_reused{0};
  std::atomic<long long> delta_flows_certified{0};
  std::atomic<long long> delta_flows_rerouted{0};
  std::atomic<int> delta_cert_rejects{0};

  // The campaign-level structure cache: jobs that differ ONLY in
  // link_width_bits share every width-invariant input (floorplan, traffic,
  // min-cut partitions, candidate enumeration), so they are grouped under
  // the width-excluded content hash and synthesized TOGETHER through
  // core::synthesize_width_set — one structure pass per group instead of
  // one per width. Grouping never changes results (each width's result is
  // bit-identical to a solo synthesize()) nor the record stream (records
  // are emitted in job order either way).
  std::vector<std::vector<std::size_t>> groups;
  {
    std::map<std::uint64_t, std::size_t> group_of;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const std::uint64_t skey = structure_key(jobs[i].spec, jobs[i].options);
      const auto [it, inserted] = group_of.emplace(skey, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(i);
    }
  }

  exec::ThreadPool pool(options.threads);
  // One scratch-arena pool for the whole campaign: each worker strand keeps
  // its evaluation buffers (router state, metrics accumulators, ...) across
  // every job and candidate it touches, so a thousand-job batch allocates
  // them once per strand instead of once per job.
  core::EvalScratchPool scratch;

  /// Serves job i from the cache tiers; true when a record was emitted.
  auto serve_from_cache = [&](std::size_t i) -> bool {
    const CampaignJob& job = jobs[i];
    JobRecord rec;
    if (options.resume) {
      if (auto stored = cache.find_record(job.key)) {
        // Payload from the store, identity from THIS campaign (the store is
        // content-addressed and may have been written by another campaign
        // over the same jobs).
        rec = std::move(*stored);
        rec.campaign = spec.name;
        rec.job = job.name;
        rec.scenario = job.scenario;
        rec.strategy = job.strategy;
        rec.islands = job.islands;
        rec.width = job.width;
        rec.seed = job.seed;
        rec.cache_hit = true;
        cache_hits.fetch_add(1);
        if (!rec.feasible) infeasible.fetch_add(1);
        emitter.emit(i, std::move(rec));
        return true;
      }
    }
    if (auto result = cache.find_result(job.key)) {
      rec = summarize(spec.name, job, result.get());
      rec.cache_hit = true;  // wall_ms stays 0: the hit costs nothing
      cache_hits.fetch_add(1);
      JobRecord stored = rec;
      stored.cache_hit = false;  // the store holds computed-job records
      cache.put_record(stored);
      emitter.emit(i, std::move(rec));
      return true;
    }
    return false;
  };

  /// Emits a freshly computed job (result == nullptr for infeasible).
  auto emit_computed = [&](std::size_t i,
                           std::shared_ptr<const core::SynthesisResult> result,
                           double wall_ms) {
    const CampaignJob& job = jobs[i];
    JobRecord rec = summarize(spec.name, job, result.get());
    rec.wall_ms = wall_ms;
    if (result != nullptr) {
      cache.put_result(job.key, result);
    } else {
      infeasible.fetch_add(1);
    }
    jobs_run.fetch_add(1);
    cache.put_record(rec);  // cache_hit is false here by construction
    emitter.emit(i, std::move(rec));
  };

  exec::parallel_for_each(pool, groups.size(), [&](std::size_t g) {
    std::vector<std::size_t> compute;
    for (const std::size_t i : groups[g]) {
      if (!serve_from_cache(i)) compute.push_back(i);
    }
    if (compute.empty()) return;
    if (compute.size() == 1) {
      const std::size_t i = compute.front();
      const CampaignJob& job = jobs[i];
      const auto t0 = std::chrono::steady_clock::now();
      std::shared_ptr<const core::SynthesisResult> result;
      try {
        result = std::make_shared<core::SynthesisResult>(
            core::synthesize(job.spec, job.options, pool, scratch));
      } catch (const core::InfeasibleWidthError&) {
        // Recorded, not fatal: an infeasible (scenario, width) pair is a
        // normal matrix outcome.
      }
      emit_computed(i, std::move(result),
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
      return;
    }
    // Two or more widths over identical structure inputs: one shared
    // width-set synthesis. Infeasible widths come back as infeasible
    // entries (the solo path's InfeasibleWidthError); the group's wall
    // time is amortised uniformly over its jobs.
    structure_groups.fetch_add(1);
    structure_shared_jobs.fetch_add(static_cast<int>(compute.size()));
    const CampaignJob& first = jobs[compute.front()];
    std::vector<int> widths;
    widths.reserve(compute.size());
    for (const std::size_t i : compute) widths.push_back(jobs[i].width);
    const auto t0 = std::chrono::steady_clock::now();
    core::WidthSetStats set_stats;
    std::vector<core::WidthSweepEntry> entries =
        core::synthesize_width_set(first.spec, widths, first.options, pool,
                                   scratch, &set_stats);
    width_shared_evals.fetch_add(set_stats.shared_evals);
    width_certified_evals.fetch_add(set_stats.certified_evals);
    width_cohort_evals.fetch_add(set_stats.cohort_evals);
    width_fallback_evals.fetch_add(set_stats.fallback_evals);
    certificate_accepts.fetch_add(set_stats.certificate_accepts);
    cohort_groups.fetch_add(set_stats.cohort_groups);
    {
      // A memory bound, not a throughput counter: report the campaign's max.
      int peak = peak_buffered_outcomes.load();
      while (set_stats.peak_buffered_outcomes > peak &&
             !peak_buffered_outcomes.compare_exchange_weak(
                 peak, set_stats.peak_buffered_outcomes)) {
      }
    }
    delta_candidates.fetch_add(set_stats.delta_candidates);
    delta_flows_reused.fetch_add(set_stats.delta_flows_reused);
    delta_flows_certified.fetch_add(set_stats.delta_flows_certified);
    delta_flows_rerouted.fetch_add(set_stats.delta_flows_rerouted);
    delta_cert_rejects.fetch_add(set_stats.delta_cert_rejects);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count() /
                           static_cast<double>(compute.size());
    for (std::size_t j = 0; j < compute.size(); ++j) {
      std::shared_ptr<const core::SynthesisResult> result;
      if (entries[j].feasible) {
        result = std::make_shared<core::SynthesisResult>(
            std::move(entries[j].result));
      }
      emit_computed(compute[j], std::move(result), wall_ms);
    }
  });

  out.jobs_run = jobs_run.load();
  out.cache_hits = cache_hits.load();
  out.infeasible = infeasible.load();
  out.structure_groups = structure_groups.load();
  out.structure_shared_jobs = structure_shared_jobs.load();
  out.width_shared_evals = width_shared_evals.load();
  out.width_certified_evals = width_certified_evals.load();
  out.width_cohort_evals = width_cohort_evals.load();
  out.width_fallback_evals = width_fallback_evals.load();
  out.certificate_accepts = certificate_accepts.load();
  out.cohort_groups = cohort_groups.load();
  out.peak_buffered_outcomes = peak_buffered_outcomes.load();
  out.delta_candidates = delta_candidates.load();
  out.delta_flows_reused = delta_flows_reused.load();
  out.delta_flows_certified = delta_flows_certified.load();
  out.delta_flows_rerouted = delta_flows_rerouted.load();
  out.delta_cert_rejects = delta_cert_rejects.load();
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t_start)
                   .count();
  return out;
}

}  // namespace vinoc::campaign

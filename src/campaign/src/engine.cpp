#include "vinoc/campaign/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/core/candidates.hpp"
#include "vinoc/core/explore.hpp"
#include "vinoc/exec/cancel.hpp"
#include "vinoc/exec/parallel_for.hpp"
#include "vinoc/exec/thread_pool.hpp"
#include "vinoc/io/jsonl.hpp"
#include "vinoc/obs/trace.hpp"

namespace vinoc::campaign {

namespace {

/// Reorders concurrently finishing records into job order and flushes each
/// one (stream + callback + result vector) as soon as all its predecessors
/// have been flushed — streaming, but deterministic.
class OrderedEmitter {
 public:
  OrderedEmitter(const CampaignOptions& options, std::vector<JobRecord>& out)
      : options_(options), out_(out) {}

  void emit(std::size_t index, JobRecord record) {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending_.emplace(index, std::move(record));
    for (auto it = pending_.find(next_); it != pending_.end();
         it = pending_.find(next_)) {
      JobRecord& rec = it->second;
      if (options_.stream != nullptr) {
        const std::string line =
            record_to_jsonl(rec, options_.include_timing) + "\n";
        std::fputs(line.c_str(), options_.stream);
        std::fflush(options_.stream);
      }
      if (options_.on_record) options_.on_record(rec);
      out_.push_back(std::move(rec));
      pending_.erase(it);
      ++next_;
    }
  }

 private:
  const CampaignOptions& options_;
  std::vector<JobRecord>& out_;
  std::mutex mutex_;
  std::map<std::size_t, JobRecord> pending_;
  std::size_t next_ = 0;
};

/// Deterministic backoff jitter: splitmix64 over (seed, job key, attempt),
/// mapped to [0.5, 1.0) — no global RNG, so two runs of the same campaign
/// back off identically.
double backoff_jitter(std::uint64_t seed, std::uint64_t key, int attempt) {
  std::uint64_t x = seed * 0x2545f4914f6cdd1dull ^ key ^
                    (static_cast<std::uint64_t>(attempt) << 48);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return 0.5 + 0.5 * static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Outcome of a supervised synthesis that did not succeed.
struct JobFailure {
  const char* status;  ///< "failed" | "timeout" | "skipped"
  std::string error;
  int attempts;
};

}  // namespace

std::string CampaignResult::to_jsonl(bool include_timing) const {
  std::string text;
  for (const JobRecord& rec : records) {
    text += record_to_jsonl(rec, include_timing);
    text += '\n';
  }
  return text;
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  OBS_SPAN("run_campaign");
  const auto t_start = std::chrono::steady_clock::now();
  CampaignResult out;
  std::vector<CampaignJob> jobs = expand_jobs(spec, &out.expand);
  if (options.job_keys != nullptr) {
    // Shard filter: keep only the jobs this process owns. Expansion ran in
    // full above, so job names/ordering match every other shard and the
    // supervisor can merge streams by global job order.
    const std::unordered_set<std::uint64_t> mine(options.job_keys->begin(),
                                                 options.job_keys->end());
    std::vector<CampaignJob> kept;
    kept.reserve(mine.size());
    for (CampaignJob& job : jobs) {
      if (mine.count(job.key) != 0) kept.push_back(std::move(job));
    }
    jobs = std::move(kept);
  }
  out.records.reserve(jobs.size());

  ResultCache own_cache(options.cache != nullptr ? std::string()
                                                 : options.cache_dir);
  ResultCache& cache = options.cache != nullptr ? *options.cache : own_cache;
  if (options.cache == nullptr && options.store_max_bytes > 0) {
    own_cache.set_store_max_bytes(options.store_max_bytes);
  }
  // Load the store whenever one exists — a non-resume run ignores the
  // loaded records for scheduling (it recomputes every job) but must know
  // which keys are already on disk so put_record does not append duplicate
  // lines run after run. Resume additionally serves jobs from them. v2:
  // this is also the recovery pass that quarantines crash-torn lines.
  cache.load_store();

  // The campaign-level cancel token: chains the external interrupt
  // (SIGINT/SIGTERM) and carries the --deadline budget. Every job's own
  // token chains IT, so one cancel reaches every in-flight candidate poll.
  exec::CancelToken campaign_token(options.cancel);
  if (options.deadline_s > 0.0) {
    campaign_token.set_deadline(
        t_start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(options.deadline_s)));
  }

  // Quarantine ledger: one checksummed line per job that ended "failed" or
  // "timeout", beside the store (memory-only runs keep counters only).
  std::mutex failed_mutex;
  std::ofstream failed_out;
  auto quarantine_job = [&](const CampaignJob& job, const JobFailure& failure) {
    if (cache.dir().empty()) return;
    const std::lock_guard<std::mutex> lock(failed_mutex);
    if (!failed_out.is_open()) {
      failed_out.open(
          (std::filesystem::path(cache.dir()) / options.failed_file).string(),
          std::ios::app);
    }
    if (!failed_out) return;  // ledger I/O must never fail the campaign
    io::JsonlWriter w;
    w.field("campaign", spec.name)
        .field("job", job.name)
        .field("key", key_hex(job.key))
        .field("status", failure.status)
        .field("error", failure.error)
        .field("attempts", failure.attempts);
    failed_out << io::add_line_checksum(w.line()) << '\n' << std::flush;
  };

  OrderedEmitter emitter(options, out.records);
  // All campaign counters accumulate in per-worker obs registry shards
  // (integer sums; the buffered-outcome high-water as a kMax merge — each
  // group's peak is independent, so max-of-maxes is exact) and merge
  // deterministically after the pool joins. out.metrics is then built from
  // the merge in the canonical resume_summary registration order.
  obs::ShardedRegistry metrics;

  // The campaign-level structure cache: jobs that differ ONLY in
  // link_width_bits share every width-invariant input (floorplan, traffic,
  // min-cut partitions, candidate enumeration), so they are grouped under
  // the width-excluded content hash and synthesized TOGETHER through
  // core::synthesize_width_set — one structure pass per group instead of
  // one per width. Grouping never changes results (each width's result is
  // bit-identical to a solo synthesize()) nor the record stream (records
  // are emitted in job order either way).
  std::vector<std::vector<std::size_t>> groups;
  {
    std::map<std::uint64_t, std::size_t> group_of;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const std::uint64_t skey = structure_key(jobs[i].spec, jobs[i].options);
      const auto [it, inserted] = group_of.emplace(skey, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(i);
    }
  }

  exec::ThreadPool pool(options.threads);
  // One scratch-arena pool for the whole campaign: each worker strand keeps
  // its evaluation buffers (router state, metrics accumulators, ...) across
  // every job and candidate it touches, so a thousand-job batch allocates
  // them once per strand instead of once per job.
  core::EvalScratchPool scratch;

  /// Serves job i from the cache tiers; true when a record was emitted.
  auto serve_from_cache = [&](std::size_t i) -> bool {
    const CampaignJob& job = jobs[i];
    JobRecord rec;
    if (options.resume) {
      if (auto stored = cache.find_record(job.key)) {
        // Payload from the store, identity from THIS campaign (the store is
        // content-addressed and may have been written by another campaign
        // over the same jobs).
        rec = std::move(*stored);
        rec.campaign = spec.name;
        rec.job = job.name;
        rec.scenario = job.scenario;
        rec.strategy = job.strategy;
        rec.islands = job.islands;
        rec.width = job.width;
        rec.seed = job.seed;
        rec.cache_hit = true;
        metrics.local().add("cache_hits", 1);
        if (!rec.feasible) metrics.local().add("infeasible", 1);
        emitter.emit(i, std::move(rec));
        return true;
      }
    }
    if (auto result = cache.find_result(job.key)) {
      rec = summarize(spec.name, job, result.get());
      rec.cache_hit = true;  // wall_ms stays 0: the hit costs nothing
      metrics.local().add("cache_hits", 1);
      JobRecord stored = rec;
      stored.cache_hit = false;  // the store holds computed-job records
      cache.put_record(stored);
      emitter.emit(i, std::move(rec));
      return true;
    }
    return false;
  };

  /// Emits a freshly computed job (result == nullptr for infeasible).
  auto emit_computed = [&](std::size_t i,
                           std::shared_ptr<const core::SynthesisResult> result,
                           double wall_ms) {
    const CampaignJob& job = jobs[i];
    JobRecord rec = summarize(spec.name, job, result.get());
    rec.wall_ms = wall_ms;
    if (result != nullptr) {
      cache.put_result(job.key, result);
    } else {
      metrics.local().add("infeasible", 1);
    }
    metrics.local().add("run", 1);
    cache.put_record(rec);  // cache_hit is false here by construction
    emitter.emit(i, std::move(rec));
  };

  /// Emits a job that supervision gave up on. Failed/skipped records carry
  /// the status field, never enter the store (a later --resume retries
  /// them), and failed/timeout jobs are mirrored to failed.jsonl.
  auto emit_failed = [&](std::size_t i, const JobFailure& failure) {
    const CampaignJob& job = jobs[i];
    JobRecord rec = summarize(spec.name, job, nullptr);
    rec.status = failure.status;
    obs::Registry& shard = metrics.local();
    if (rec.status == "skipped") {
      shard.add("skipped_jobs", 1);
    } else {
      shard.add("quarantined_jobs", 1);
      quarantine_job(job, failure);
    }
    emitter.emit(i, std::move(rec));
  };

  /// Supervision policy around one synthesis call: per-attempt child token
  /// (job timeout on top of deadline/interrupt), retry with exponential
  /// backoff + deterministic jitter for transient failures, quarantine when
  /// retries are exhausted. `fn` must handle InfeasibleWidthError itself —
  /// an infeasible width is a RESULT, not a failure. Returns nullopt on
  /// success.
  auto supervised = [&](std::uint64_t job_key,
                        const std::function<void(const exec::CancelToken&)>& fn)
      -> std::optional<JobFailure> {
    for (int attempt = 0;; ++attempt) {
      if (campaign_token.cancelled()) {
        return JobFailure{"skipped",
                          campaign_token.flag_cancelled() ? "interrupted"
                                                          : "deadline exceeded",
                          attempt};
      }
      exec::CancelToken job_token(&campaign_token);
      if (options.job_timeout_s > 0.0) {
        job_token.set_timeout(options.job_timeout_s);
      }
      try {
        fn(job_token);
        return std::nullopt;
      } catch (const exec::CancelledError& e) {
        if (campaign_token.cancelled()) {
          return JobFailure{"skipped",
                            campaign_token.flag_cancelled()
                                ? "interrupted"
                                : "deadline exceeded",
                            attempt + 1};
        }
        // The job's own deadline fired: a timeout, and not worth retrying —
        // the same work would run past the same budget again.
        metrics.local().add("job_timeouts", 1);
        return JobFailure{"timeout", e.what(), attempt + 1};
      } catch (const std::invalid_argument&) {
        throw;  // spec/option errors are caller bugs, not transient faults
      } catch (const std::exception& e) {
        if (attempt >= options.max_retries) {
          return JobFailure{"failed", e.what(), attempt + 1};
        }
        metrics.local().add("retries", 1);
        const double sleep_ms =
            std::min(options.retry_backoff_ms * static_cast<double>(1 << attempt) *
                         backoff_jitter(options.retry_jitter_seed, job_key,
                                        attempt),
                     5000.0);
        if (sleep_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(sleep_ms));
        }
      }
    }
  };

  exec::parallel_for_each(pool, groups.size(), [&](std::size_t g) {
    OBS_SPAN("campaign_group");
    std::vector<std::size_t> compute;
    for (const std::size_t i : groups[g]) {
      if (!serve_from_cache(i)) compute.push_back(i);
    }
    if (compute.empty()) return;
    if (compute.size() == 1) {
      const std::size_t i = compute.front();
      const CampaignJob& job = jobs[i];
      if (options.on_job_start) options.on_job_start(job);
      const auto t0 = std::chrono::steady_clock::now();
      std::shared_ptr<const core::SynthesisResult> result;
      const std::optional<JobFailure> failure =
          supervised(job.key, [&](const exec::CancelToken& token) {
            core::SynthesisOptions jopt = job.options;
            jopt.cancel = &token;  // excluded from job keys (spec_hash)
            try {
              result = std::make_shared<core::SynthesisResult>(
                  core::synthesize(job.spec, jopt, pool, scratch));
            } catch (const core::InfeasibleWidthError&) {
              // Recorded, not fatal: an infeasible (scenario, width) pair is
              // a normal matrix outcome.
              result = nullptr;
            }
          });
      if (failure.has_value()) {
        emit_failed(i, *failure);
        return;
      }
      emit_computed(i, std::move(result),
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
      return;
    }
    // Two or more widths over identical structure inputs: one shared
    // width-set synthesis. Infeasible widths come back as infeasible
    // entries (the solo path's InfeasibleWidthError); the group's wall
    // time is amortised uniformly over its jobs, and the supervision
    // policy treats the whole group as one job (one timeout budget, one
    // retry counter; a group failure fails all its members).
    const CampaignJob& first = jobs[compute.front()];
    if (options.on_job_start) {
      for (const std::size_t i : compute) options.on_job_start(jobs[i]);
    }
    std::vector<int> widths;
    widths.reserve(compute.size());
    for (const std::size_t i : compute) widths.push_back(jobs[i].width);
    const auto t0 = std::chrono::steady_clock::now();
    core::WidthSetStats set_stats;
    std::vector<core::WidthSweepEntry> entries;
    const std::optional<JobFailure> failure =
        supervised(first.key, [&](const exec::CancelToken& token) {
          core::SynthesisOptions gopt = first.options;
          gopt.cancel = &token;
          set_stats = core::WidthSetStats{};
          entries = core::synthesize_width_set(first.spec, widths, gopt, pool,
                                               scratch, &set_stats);
        });
    if (failure.has_value()) {
      for (const std::size_t i : compute) emit_failed(i, *failure);
      return;
    }
    {
      obs::Registry& shard = metrics.local();
      shard.add("structure_groups", 1);
      shard.add("structure_shared_jobs", static_cast<int>(compute.size()));
    }
    {
      obs::Registry& shard = metrics.local();
      shard.add("width_shared_evals", set_stats.shared_evals);
      shard.add("width_certified_evals", set_stats.certified_evals);
      shard.add("width_cohort_evals", set_stats.cohort_evals);
      shard.add("width_fallback_evals", set_stats.fallback_evals);
      shard.add("certificate_accepts", set_stats.certificate_accepts);
      shard.add("cohort_groups", set_stats.cohort_groups);
      // A memory bound, not a throughput counter: max-merged across shards.
      shard.record_max("peak_buffered_outcomes",
                       set_stats.peak_buffered_outcomes);
      shard.add("delta_candidates", set_stats.delta_candidates);
      shard.add("delta_flows_reused", set_stats.delta_flows_reused);
      shard.add("delta_flows_certified", set_stats.delta_flows_certified);
      shard.add("delta_flows_rerouted", set_stats.delta_flows_rerouted);
      shard.add("delta_cert_rejects", set_stats.delta_cert_rejects);
    }
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count() /
                           static_cast<double>(compute.size());
    for (std::size_t j = 0; j < compute.size(); ++j) {
      std::shared_ptr<const core::SynthesisResult> result;
      if (entries[j].feasible) {
        result = std::make_shared<core::SynthesisResult>(
            std::move(entries[j].result));
      }
      emit_computed(compute[j], std::move(result), wall_ms);
    }
  });

  // Build out.metrics from the deterministic shard merge, registering the
  // counters in the CANONICAL resume_summary order: io::registry_record of
  // this registry IS the resume_summary line / --json campaign record. New
  // fields must be registered after the existing ones — the CI greps match
  // line prefixes, and test_campaign asserts this exact serialization.
  const obs::Registry acc = metrics.merged();
  out.metrics.add("run", acc.value("run"));
  out.metrics.add("cache_hits", acc.value("cache_hits"));
  out.metrics.add("infeasible", acc.value("infeasible"));
  out.metrics.add("total", static_cast<std::int64_t>(jobs.size()));
  out.metrics.add("structure_groups", acc.value("structure_groups"));
  out.metrics.add("structure_shared_jobs", acc.value("structure_shared_jobs"));
  out.metrics.add("width_shared_evals", acc.value("width_shared_evals"));
  out.metrics.add("width_certified_evals", acc.value("width_certified_evals"));
  out.metrics.add("width_cohort_evals", acc.value("width_cohort_evals"));
  out.metrics.add("width_fallback_evals", acc.value("width_fallback_evals"));
  out.metrics.add("certificate_accepts", acc.value("certificate_accepts"));
  out.metrics.add("cohort_groups", acc.value("cohort_groups"));
  out.metrics.record_max("peak_buffered_outcomes",
                         acc.value("peak_buffered_outcomes"));
  out.metrics.add("delta_candidates", acc.value("delta_candidates"));
  out.metrics.add("delta_flows_reused", acc.value("delta_flows_reused"));
  out.metrics.add("delta_flows_certified", acc.value("delta_flows_certified"));
  out.metrics.add("delta_flows_rerouted", acc.value("delta_flows_rerouted"));
  out.metrics.add("delta_cert_rejects", acc.value("delta_cert_rejects"));
  // Robustness counters (PR 9) — appended AFTER every pre-existing counter
  // so the CI's resume_summary prefix greps keep matching.
  out.metrics.add("retries", acc.value("retries"));
  out.metrics.add("job_timeouts", acc.value("job_timeouts"));
  out.metrics.add("quarantined_jobs", acc.value("quarantined_jobs"));
  out.metrics.add("skipped_jobs", acc.value("skipped_jobs"));
  out.metrics.add("recovered_records",
                  static_cast<std::int64_t>(cache.recovered_records()));
  out.metrics.add("evicted_records",
                  static_cast<std::int64_t>(cache.evicted_records()));
  out.metrics.add("store_write_errors",
                  static_cast<std::int64_t>(cache.store_write_errors()));
  out.metrics.add("interrupted",
                  options.cancel != nullptr && options.cancel->cancelled() ? 1
                                                                           : 0);
  out.metrics.set_gauge("delta_reuse_rate", out.delta_reuse_rate());
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t_start)
                   .count();
  return out;
}

}  // namespace vinoc::campaign

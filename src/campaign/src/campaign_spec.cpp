#include "vinoc/campaign/campaign_spec.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "vinoc/campaign/spec_hash.hpp"
#include "vinoc/soc/islanding.hpp"

namespace vinoc::campaign {

namespace {

const std::vector<std::string>& known_benchmarks() {
  static const std::vector<std::string> names = {"d26", "d16", "d36", "d64",
                                                 "d24"};
  return names;
}

soc::Benchmark make_named_benchmark(const std::string& name) {
  if (name == "d26") return soc::make_d26_media_soc();
  if (name == "d16") return soc::make_d16_auto_soc();
  if (name == "d36") return soc::make_d36_settop_soc();
  if (name == "d64") return soc::make_d64_tile_soc();
  if (name == "d24") return soc::make_d24_imaging_soc();
  throw std::invalid_argument("unknown benchmark '" + name + "'");
}

bool known_strategy(const std::string& s) {
  return s == "logical" || s == "comm" || s == "spec";
}

bool name_passes_filters(const std::string& name, const CampaignSpec& spec) {
  if (!spec.include.empty()) {
    bool matched = false;
    for (const std::string& pat : spec.include) {
      if (name.find(pat) != std::string::npos) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  for (const std::string& pat : spec.exclude) {
    if (name.find(pat) != std::string::npos) return false;
  }
  return true;
}

}  // namespace

std::vector<CampaignJob> expand_jobs(const CampaignSpec& spec,
                                     ExpandStats* stats) {
  // Scenario axis: named benchmarks first (in spec order), then synthetic
  // families (base = variant 0, then the perturbed variants).
  struct Scenario {
    std::string name;
    unsigned seed = 0;
    soc::Benchmark bench;
  };
  std::vector<Scenario> scenarios;
  for (const std::string& name : spec.benchmarks) {
    if (name == "all") {
      for (const std::string& n : known_benchmarks()) {
        scenarios.push_back({n, 0, make_named_benchmark(n)});
      }
      continue;
    }
    scenarios.push_back({name, 0, make_named_benchmark(name)});
  }
  for (const SyntheticScenario& family : spec.synthetic) {
    if (family.perturbations < 0) {
      throw std::invalid_argument("synthetic perturb count must be >= 0");
    }
    for (int v = 0; v <= family.perturbations; ++v) {
      const soc::SyntheticParams params = soc::perturb_synthetic_params(
          family.params, static_cast<unsigned>(v));
      soc::Benchmark bench = soc::make_synthetic_soc(params);
      // The generator names the SoC "synthetic_c<cores>_s<seed>"; that is
      // unique per family member and doubles as the scenario name.
      std::string name = bench.soc.name;
      scenarios.push_back({std::move(name), params.seed, std::move(bench)});
    }
  }
  for (const std::string& strategy : spec.strategies) {
    if (!known_strategy(strategy)) {
      throw std::invalid_argument("unknown strategy '" + strategy + "'");
    }
  }

  ExpandStats local;
  std::vector<CampaignJob> jobs;
  std::unordered_set<std::uint64_t> seen;
  auto emit = [&](const Scenario& sc, const std::string& strategy,
                  std::string name, soc::SocSpec job_spec, int width) {
    ++local.raw;
    if (!name_passes_filters(name, spec)) {
      ++local.filtered;
      return;
    }
    CampaignJob job;
    job.name = std::move(name);
    job.scenario = sc.name;
    job.strategy = strategy;
    job.islands = static_cast<int>(job_spec.islands.size());
    job.width = width;
    job.seed = sc.seed;
    job.options = spec.base_options;
    job.options.link_width_bits = width;
    job.options.threads = 1;
    job.options.on_progress = nullptr;
    job.key = job_key(job_spec, job.options);
    if (!seen.insert(job.key).second) {
      ++local.deduped;
      return;
    }
    job.spec = std::move(job_spec);
    jobs.push_back(std::move(job));
  };

  for (const Scenario& sc : scenarios) {
    for (const std::string& strategy : spec.strategies) {
      if (strategy == "spec") {
        for (const int width : spec.widths) {
          emit(sc, strategy, sc.name + "/spec/w" + std::to_string(width),
               sc.bench.soc, width);
        }
        continue;
      }
      for (const int islands : spec.island_counts) {
        // Clamp to the core count (one core per island is the maximum) and
        // name the job with the CLAMPED count, so the name matches the
        // record and an over-sized axis point collapses onto the saturated
        // one via the ordinary content dedup (visible in ExpandStats).
        const int clamped =
            std::min(islands, static_cast<int>(sc.bench.soc.core_count()));
        soc::SocSpec islanded =
            strategy == "logical"
                ? soc::with_logical_islands(sc.bench.soc, clamped,
                                            sc.bench.use_cases)
                : soc::with_communication_islands(sc.bench.soc, clamped,
                                                  sc.bench.use_cases);
        for (const int width : spec.widths) {
          emit(sc, strategy,
               sc.name + "/" + strategy + "/i" + std::to_string(clamped) +
                   "/w" + std::to_string(width),
               islanded, width);
        }
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return jobs;
}

// --- Parser -----------------------------------------------------------------

namespace {

std::vector<std::string> split_tokens(const std::string& s) {
  std::vector<std::string> tokens;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

bool parse_int(const std::string& s, int& out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || s.empty()) return false;
  if (errno == ERANGE || v < INT_MIN || v > INT_MAX) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_double(const std::string& s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || s.empty()) return false;
  out = v;
  return true;
}

/// Parses one `key:value` field of a `synthetic = ...` line.
bool parse_synthetic_field(const std::string& token, SyntheticScenario& out,
                           std::string& error) {
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos) {
    error = "synthetic field '" + token + "' is not key:value";
    return false;
  }
  const std::string key = token.substr(0, colon);
  const std::string value = token.substr(colon + 1);
  int iv = 0;
  double dv = 0.0;
  if (key == "cores" && parse_int(value, iv)) {
    out.params.cores = iv;
  } else if (key == "hubs" && parse_int(value, iv)) {
    out.params.hubs = iv;
  } else if (key == "seed" && parse_int(value, iv)) {
    out.params.seed = static_cast<unsigned>(iv);
  } else if (key == "flows" && parse_double(value, dv)) {
    out.params.flows_per_core = dv;
  } else if (key == "latency" && parse_double(value, dv)) {
    out.params.latency_budget_cycles = dv;
  } else if (key == "perturb" && parse_int(value, iv)) {
    out.perturbations = iv;
  } else {
    error = "bad synthetic field '" + token + "'";
    return false;
  }
  return true;
}

}  // namespace

CampaignParseResult parse_campaign_spec(std::istream& in) {
  CampaignParseResult result;
  CampaignSpec& spec = result.spec;
  bool saw_benchmark_axis = false;
  std::string line;
  int line_no = 0;
  auto fail = [&result, &line_no](std::string message) {
    result.errors.push_back({line_no, std::move(message)});
  };
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::vector<std::string> tokens = split_tokens(line);
    if (tokens.empty()) continue;
    if (tokens.size() < 3 || tokens[1] != "=") {
      fail("expected 'key = value...'");
      continue;
    }
    const std::string& key = tokens[0];
    const std::vector<std::string> values(tokens.begin() + 2, tokens.end());
    // Scalar keys take exactly one value; trailing tokens are an error, not
    // silently dropped (catches two settings jammed onto one line).
    if ((key == "name" || key == "alpha" || key == "alpha_power" ||
         key == "intermediate") &&
        values.size() != 1) {
      fail("'" + key + "' takes exactly one value");
      continue;
    }
    auto single = [&]() -> const std::string& { return values.front(); };
    if (key == "name") {
      spec.name = single();
    } else if (key == "benchmarks") {
      spec.benchmarks.clear();
      for (const std::string& v : values) {
        if (v != "all" &&
            std::find(known_benchmarks().begin(), known_benchmarks().end(),
                      v) == known_benchmarks().end()) {
          fail("unknown benchmark '" + v + "'");
          continue;
        }
        spec.benchmarks.push_back(v);
      }
      saw_benchmark_axis = true;
    } else if (key == "synthetic") {
      SyntheticScenario family;
      bool ok = true;
      for (const std::string& v : values) {
        std::string error;
        if (!parse_synthetic_field(v, family, error)) {
          fail(std::move(error));
          ok = false;
        }
      }
      if (ok) spec.synthetic.push_back(family);
      saw_benchmark_axis = true;
    } else if (key == "strategies") {
      spec.strategies.clear();
      for (const std::string& v : values) {
        if (!known_strategy(v)) {
          fail("unknown strategy '" + v + "'");
          continue;
        }
        spec.strategies.push_back(v);
      }
    } else if (key == "islands" || key == "widths") {
      std::vector<int> ints;
      for (const std::string& v : values) {
        int iv = 0;
        if (!parse_int(v, iv) || iv <= 0) {
          fail("bad positive integer '" + v + "' for " + key);
          continue;
        }
        ints.push_back(iv);
      }
      (key == "islands" ? spec.island_counts : spec.widths) = std::move(ints);
    } else if (key == "alpha" || key == "alpha_power") {
      double dv = 0.0;
      if (!parse_double(single(), dv)) {
        fail("bad number '" + single() + "' for " + key);
        continue;
      }
      (key == "alpha" ? spec.base_options.alpha
                      : spec.base_options.alpha_power) = dv;
    } else if (key == "intermediate") {
      if (single() == "on") {
        spec.base_options.allow_intermediate_island = true;
      } else if (single() == "off") {
        spec.base_options.allow_intermediate_island = false;
      } else {
        fail("intermediate must be 'on' or 'off'");
      }
    } else if (key == "include") {
      spec.include.insert(spec.include.end(), values.begin(), values.end());
    } else if (key == "exclude") {
      spec.exclude.insert(spec.exclude.end(), values.begin(), values.end());
    } else {
      fail("unknown key '" + key + "'");
    }
  }
  if (!saw_benchmark_axis) {
    line_no = 0;
    fail("campaign needs at least one 'benchmarks' or 'synthetic' line");
  }
  result.ok = result.errors.empty();
  return result;
}

CampaignParseResult parse_campaign_spec_string(const std::string& text) {
  std::istringstream in(text);
  return parse_campaign_spec(in);
}

CampaignParseResult parse_campaign_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    CampaignParseResult result;
    result.errors.push_back({0, "cannot open '" + path + "'"});
    return result;
  }
  return parse_campaign_spec(in);
}

}  // namespace vinoc::campaign

#include "vinoc/campaign/shard.hpp"

#include <filesystem>
#include <map>

#include "vinoc/campaign/spec_hash.hpp"

namespace vinoc::campaign {

namespace {

/// splitmix64 finalizer: structure keys are already uniform FNV-1a hashes,
/// but mixing before the modulo keeps the low bits independent of the hash
/// construction (FNV's low bits are its weakest).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

int ShardPlan::populated() const {
  int n = 0;
  for (const auto& keys : assignment) {
    if (!keys.empty()) ++n;
  }
  return n;
}

ShardPlan plan_shards(const std::vector<CampaignJob>& jobs, int shards) {
  if (shards < 1) shards = 1;
  ShardPlan plan;
  plan.assignment.resize(static_cast<std::size_t>(shards));
  for (const CampaignJob& job : jobs) {
    const std::uint64_t skey = structure_key(job.spec, job.options);
    const std::size_t shard = static_cast<std::size_t>(
        mix64(skey) % static_cast<std::uint64_t>(shards));
    plan.assignment[shard].push_back(job.key);
  }
  return plan;
}

std::string shards_dir(const std::string& cache_dir) {
  return (std::filesystem::path(cache_dir) / "shards").string();
}

std::string shard_manifest_path(const std::string& cache_dir, int shard) {
  return (std::filesystem::path(shards_dir(cache_dir)) /
          (std::to_string(shard) + ".manifest"))
      .string();
}

std::string shard_store_file(int shard) {
  return "store-" + std::to_string(shard) + ".jsonl";
}

std::string shard_failed_file(int shard) {
  return "failed-" + std::to_string(shard) + ".jsonl";
}

}  // namespace vinoc::campaign

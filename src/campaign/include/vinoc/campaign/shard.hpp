// Shard planning for multi-process campaigns.
//
// The supervisor partitions the expanded job matrix into N shards, one
// worker process each. The unit of assignment is the STRUCTURE GROUP (all
// jobs sharing a width-excluded content hash — spec_hash.hpp), never the
// single job: splitting a width-sharing group across processes would
// recompute its shared structures once per shard and silently lose the
// width-set sharing the engine is built around.
//
// Assignment is BY CONTENT HASH: a group lands on shard
// mix64(structure_key) % N. That makes the plan a pure function of the job
// matrix — independent of enumeration order, stable when unrelated jobs are
// added or removed, and reproducible across supervisor restarts (a respawned
// worker re-reads the same manifest; a re-planned campaign puts every
// surviving group right back where it was). The price is best-effort balance
// instead of perfect balance; for job matrices worth sharding (tens to
// thousands of groups) the hash spreads well.
//
// Each shard's assignment is persisted as a manifest file
// (<cache>/shards/<k>.manifest, io::write_shard_manifest) that the worker
// process reads back — the pipe carries status, never work assignments, so
// a torn pipe cannot corrupt what a worker believes it owns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vinoc/campaign/campaign_spec.hpp"

namespace vinoc::campaign {

/// Deterministic job -> shard assignment (see file header).
struct ShardPlan {
  /// assignment[k] = content keys of the jobs shard k owns, in campaign job
  /// order. Shards may be empty (the supervisor spawns no worker for them).
  std::vector<std::vector<std::uint64_t>> assignment;

  [[nodiscard]] int shards() const { return static_cast<int>(assignment.size()); }
  /// Shards with at least one job.
  [[nodiscard]] int populated() const;
};

/// Plans `shards` shards over the expanded matrix. `shards` < 1 is treated
/// as 1; the plan never splits a structure group.
[[nodiscard]] ShardPlan plan_shards(const std::vector<CampaignJob>& jobs,
                                    int shards);

// --- Layout of a sharded campaign inside the cache dir ----------------------
//
//   <cache>/shards/<k>.manifest   shard k's assigned keys (supervisor-written)
//   <cache>/store-<k>.jsonl       shard k's private result store
//   <cache>/failed-<k>.jsonl      shard k's private quarantine ledger
//
// Worker stores/ledgers reuse the v2 checksum + recovery machinery verbatim
// (ResultCache with a per-shard store file name); `vinoc store merge` unions
// them back into the canonical store.jsonl.

[[nodiscard]] std::string shards_dir(const std::string& cache_dir);
[[nodiscard]] std::string shard_manifest_path(const std::string& cache_dir,
                                              int shard);
[[nodiscard]] std::string shard_store_file(int shard);   ///< "store-<k>.jsonl"
[[nodiscard]] std::string shard_failed_file(int shard);  ///< "failed-<k>.jsonl"

}  // namespace vinoc::campaign

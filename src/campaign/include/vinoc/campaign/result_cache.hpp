// Content-hash result cache — the layer that makes campaigns incremental.
//
// Two tiers, both keyed by the canonical job key (spec_hash.hpp):
//
//  * FULL RESULTS, in-memory: shared_ptr<const SynthesisResult>. A hit
//    hands back the very object computed before, so it is bit-identical by
//    construction. This is what makes a re-run inside one process (bench
//    loops, repeated run_campaign calls against a shared cache) ~free.
//  * SUMMARY RECORDS, in-memory + optional on-disk JSONL store
//    (<dir>/store.jsonl, one record_to_jsonl line per computed job). The
//    store is append-only and content-addressed, so it survives across
//    processes, can be shared by different campaigns over the same jobs,
//    and is surgically editable: delete any subset of lines and a --resume
//    run recomputes exactly those keys.
//
// Thread-safe: all operations take an internal mutex (the engine calls them
// from pool workers).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "vinoc/campaign/report.hpp"
#include "vinoc/core/synthesis.hpp"

namespace vinoc::campaign {

class ResultCache {
 public:
  /// Memory-only cache.
  ResultCache() = default;
  /// Cache with an on-disk store under `dir` (created if missing). The
  /// store is NOT loaded implicitly — call load_store() (the engine does so
  /// for --resume runs).
  explicit ResultCache(std::string dir);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // --- Full results (in-memory tier) ---------------------------------------

  [[nodiscard]] std::shared_ptr<const core::SynthesisResult> find_result(
      std::uint64_t key) const;
  void put_result(std::uint64_t key,
                  std::shared_ptr<const core::SynthesisResult> result);

  // --- Summary records (disk-backed tier) ----------------------------------

  [[nodiscard]] std::optional<JobRecord> find_record(std::uint64_t key) const;
  /// Inserts (first writer wins) and, when a store dir is set, appends the
  /// line to store.jsonl immediately (flushed per record, so a killed run
  /// loses at most the in-flight job).
  void put_record(const JobRecord& record);
  /// Loads store.jsonl into the record tier; malformed lines are skipped.
  /// Returns the number of records loaded. Missing file = 0, not an error.
  std::size_t load_store();

  [[nodiscard]] std::string store_path() const;  ///< "" when memory-only
  [[nodiscard]] std::size_t result_count() const;
  [[nodiscard]] std::size_t record_count() const;

 private:
  mutable std::mutex mutex_;
  std::string dir_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const core::SynthesisResult>>
      results_;
  std::unordered_map<std::uint64_t, JobRecord> records_;
};

}  // namespace vinoc::campaign

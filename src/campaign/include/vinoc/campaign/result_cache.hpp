// Content-hash result cache — the layer that makes campaigns incremental.
//
// Two tiers, both keyed by the canonical job key (spec_hash.hpp):
//
//  * FULL RESULTS, in-memory: shared_ptr<const SynthesisResult>. A hit
//    hands back the very object computed before, so it is bit-identical by
//    construction. This is what makes a re-run inside one process (bench
//    loops, repeated run_campaign calls against a shared cache) ~free.
//  * SUMMARY RECORDS, in-memory + optional on-disk JSONL store
//    (<dir>/store.jsonl, one record_to_jsonl line per computed job). The
//    store is append-only and content-addressed, so it survives across
//    processes, can be shared by different campaigns over the same jobs,
//    and is surgically editable: delete any subset of lines and a --resume
//    run recomputes exactly those keys.
//
// DURABILITY (store v2): every store line carries a trailing `_crc` field —
// FNV-1a of the record text (io::add_line_checksum) — and load_store() is a
// recovery pass, not a blind reader. Corrupt, torn or truncated lines (the
// signature of a SIGKILL mid-append) are moved to <dir>/store.quarantine.jsonl
// and counted in recovered_records; checksum-less v1 lines that still parse
// are upgraded in place; the cleaned store is republished atomically
// (temp + rename), so the dangerous append-after-torn-tail case — where a
// new record would concatenate onto a half-written line and corrupt BOTH —
// cannot occur. An optional size cap evicts oldest-first. Store writes
// never throw: after repeated append failures the cache degrades to its
// memory tiers and keeps the campaign running (counted in
// store_write_errors).
//
// Thread-safe: all operations take an internal mutex (the engine calls them
// from pool workers).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "vinoc/campaign/report.hpp"
#include "vinoc/core/synthesis.hpp"

namespace vinoc::campaign {

/// What load_store()'s recovery pass found/did.
struct StoreRecoveryStats {
  std::size_t loaded = 0;     ///< records loaded into the memory tier
  std::size_t recovered = 0;  ///< corrupt/torn lines quarantined
  std::size_t evicted = 0;    ///< good records dropped by the size cap
  bool rewritten = false;     ///< store was republished (atomic rewrite)
};

class ResultCache {
 public:
  /// Memory-only cache.
  ResultCache() = default;
  /// Cache with an on-disk store under `dir` (created if missing).
  /// `store_file` names the store inside `dir` — the default is the
  /// canonical single-process store; sharded campaign workers pass
  /// "store-<k>.jsonl" so N processes never append to one file. The store
  /// is NOT loaded implicitly — call load_store() (the engine does so for
  /// --resume runs).
  explicit ResultCache(std::string dir, std::string store_file = "store.jsonl");

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // --- Full results (in-memory tier) ---------------------------------------

  [[nodiscard]] std::shared_ptr<const core::SynthesisResult> find_result(
      std::uint64_t key) const;
  void put_result(std::uint64_t key,
                  std::shared_ptr<const core::SynthesisResult> result);

  // --- Summary records (disk-backed tier) ----------------------------------

  [[nodiscard]] std::optional<JobRecord> find_record(std::uint64_t key) const;
  /// Inserts (first writer wins) and, when a store dir is set, appends the
  /// checksummed line to store.jsonl immediately (flushed per record, so a
  /// killed run loses at most the in-flight job). Never throws on store
  /// I/O: failures count into store_write_errors() and the record stays
  /// served from memory.
  void put_record(const JobRecord& record);
  /// Recovery-on-open (see file header): loads good records, quarantines
  /// bad lines, upgrades v1 lines, enforces the size cap, republishes the
  /// cleaned store atomically. Missing file = empty stats, not an error.
  StoreRecoveryStats load_store();
  /// Loads records from ANOTHER store file (e.g. the canonical store.jsonl
  /// while this cache appends to a shard store) into the memory record tier
  /// only: they serve --resume hits but are never rewritten, evicted or
  /// re-appended into this cache's own store. Lines that fail their
  /// checksum or do not parse are skipped (the file's owner quarantines
  /// them on ITS next recovery pass — this reader does not own it).
  /// Returns the number of records loaded; a missing file loads zero.
  std::size_t load_side_store(const std::string& path);

  /// On-disk size cap for store.jsonl, bytes; 0 (default) = unlimited.
  /// Enforced at load_store() and after every append, evicting OLDEST
  /// records first (evicted records stay in the memory tier; a later
  /// --resume in a fresh process recomputes them).
  void set_store_max_bytes(std::uint64_t max_bytes);

  [[nodiscard]] std::string dir() const { return dir_; }  ///< "" memory-only
  [[nodiscard]] std::string store_path() const;  ///< "" when memory-only
  /// Quarantine file for lines rejected by recovery ("" when memory-only).
  [[nodiscard]] std::string quarantine_path() const;
  [[nodiscard]] std::size_t result_count() const;
  [[nodiscard]] std::size_t record_count() const;

  // Cumulative robustness counters (across every load_store()/put_record on
  // this instance); the engine folds them into the campaign metrics.
  [[nodiscard]] std::uint64_t recovered_records() const;
  [[nodiscard]] std::uint64_t evicted_records() const;
  [[nodiscard]] std::uint64_t store_write_errors() const;
  /// True once append failures crossed the degradation threshold and the
  /// cache stopped touching the disk store.
  [[nodiscard]] bool store_degraded() const;

 private:
  std::string record_line(const JobRecord& record) const;
  void rewrite_store_locked(const std::vector<std::uint64_t>& keys);
  void evict_to_cap_locked();

  mutable std::mutex mutex_;
  std::string dir_;
  std::string store_file_ = "store.jsonl";
  std::unordered_map<std::uint64_t, std::shared_ptr<const core::SynthesisResult>>
      results_;
  std::unordered_map<std::uint64_t, JobRecord> records_;
  /// Append/identity order of the keys currently ON DISK — what eviction
  /// and compaction replay (records_ alone has no order).
  std::vector<std::uint64_t> store_order_;
  std::uint64_t store_bytes_ = 0;
  std::uint64_t store_max_bytes_ = 0;
  std::uint64_t recovered_records_ = 0;
  std::uint64_t evicted_records_ = 0;
  std::uint64_t store_write_errors_ = 0;
  bool degraded_ = false;
};

}  // namespace vinoc::campaign

// Merging shard stores back into the canonical store — and verifying the
// whole store family.
//
// A sharded campaign leaves one store-<k>.jsonl per worker beside the
// canonical store.jsonl. merge_shard_stores() unions them: every line is
// checksum-verified (torn or corrupt lines go to store.quarantine.jsonl in
// the standard envelope), duplicate keys are resolved by ASSERTING
// bit-identity — two processes that computed the same content key must have
// produced the same record (synthesis is deterministic; wall_ms, the one
// measured field, is excluded from the comparison). An identical duplicate
// collapses silently; a conflicting one keeps the FIRST record and
// quarantines the loser with reason "duplicate_conflict" — a conflict means
// determinism was violated somewhere and must stay visible, not be papered
// over.
//
// The merged store is republished atomically (temp + rename, same as
// ResultCache recovery) in job order when the caller supplies one —
// byte-identical to what a --shards 1 run would have left, modulo wall_ms
// and keys the order map does not know (appended last, key-sorted). Shard
// stores are deleted only AFTER the rename lands, so a crash mid-merge
// loses nothing: re-running the merge is idempotent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vinoc/campaign/report.hpp"

namespace vinoc::campaign {

struct MergeStats {
  bool ok = false;          ///< merged store was republished (or nothing to do)
  std::string error;        ///< why not, when !ok
  std::size_t shard_files = 0;     ///< store-<k>.jsonl files consumed
  std::size_t merged_records = 0;  ///< records in the republished store
  std::size_t duplicates = 0;      ///< identical duplicate keys collapsed
  std::size_t conflicts = 0;  ///< duplicate keys with DIFFERENT payloads —
                              ///< first kept, rest quarantined
  std::size_t quarantined = 0;  ///< torn/corrupt lines quarantined
};

/// Unions store.jsonl + every store-<k>.jsonl under `cache_dir` into a
/// canonical store.jsonl (see file header). `job_order`, when non-null,
/// orders the output records (keys absent from it come last, key-sorted);
/// null keeps first-seen order. With no shard stores present and a clean
/// canonical store the call is a no-op (ok, rewritten nothing).
[[nodiscard]] MergeStats merge_shard_stores(
    const std::string& cache_dir,
    const std::vector<std::uint64_t>* job_order = nullptr);

/// Reads every parseable record out of one store file (checksum-verified;
/// bad lines skipped, NOT quarantined — the reader does not own the file).
/// Missing file = empty. The supervisor uses this to recover records a
/// crashed worker computed but whose status lines never arrived.
[[nodiscard]] std::vector<JobRecord> read_store_records(const std::string& path);

struct VerifyStats {
  std::size_t files = 0;              ///< store + ledger files inspected
  std::size_t records = 0;            ///< valid records across store files
  std::size_t ledger_lines = 0;       ///< valid ledger lines
  std::size_t checksum_failures = 0;  ///< lines failing _crc verification
  std::size_t parse_failures = 0;     ///< checksummed lines that do not parse
  std::size_t duplicate_keys = 0;     ///< keys seen in more than one store line
  std::size_t legacy_lines = 0;       ///< v1 lines without a _crc field

  /// Healthy: nothing corrupt, nothing duplicated (legacy v1 lines are
  /// tolerated — the next recovery pass upgrades them).
  [[nodiscard]] bool clean() const {
    return checksum_failures == 0 && parse_failures == 0 &&
           duplicate_keys == 0;
  }
  /// One-line human summary ("store verify: ...").
  [[nodiscard]] std::string summary() const;
};

/// Validates checksums and key uniqueness across the whole store family
/// under `cache_dir`: store.jsonl, every store-<k>.jsonl, failed*.jsonl and
/// store.quarantine.jsonl. Ledger lines are checksum-verified only (their
/// payloads are failure envelopes, not records). Read-only.
[[nodiscard]] VerifyStats verify_stores(const std::string& cache_dir);

}  // namespace vinoc::campaign

// Multi-process campaign supervision.
//
// `vinoc campaign --shards N` turns the CLI into a SUPERVISOR: the expanded
// job matrix is partitioned by content hash into N shards (shard.hpp), each
// owned by a `vinoc campaign-worker` child process that appends to its own
// store-<k>.jsonl and streams checksummed status lines (io/shard_wire.hpp)
// up a pipe — start heartbeats, done records, a final metrics summary. The
// supervisor multiplexes the pipes, re-emits records in GLOBAL job order
// (the same stream a --shards 1 run produces, modulo wall_ms), and watches
// for trouble:
//
//  * CRASH (SIGKILL, segfault, exec failure, undocumented exit code): the
//    in-flight jobs — attributed through the worker's last start heartbeats
//    — get a bounded number of crash retries; past the budget they are
//    quarantined to failed.jsonl with status "failed" (a job that kills its
//    worker twice is treated as the cause, not a victim). The worker is
//    respawned over the same manifest with fault injection disarmed; its
//    shard store serves everything already computed, so a respawn costs one
//    job, not a shard.
//  * STALL (no pipe traffic past the watchdog budget, derived from
//    --job-timeout): the worker is SIGKILLed and handled as a crash. Only
//    active with a job timeout configured — without one, "slow" and
//    "stalled" cannot be told apart.
//  * RESPAWN EXHAUSTION: the shard's remaining jobs are reassigned to a
//    fresh worker (bounded rounds); when even that fails the supervisor
//    DEGRADES GRACEFULLY — leftover jobs run in-process through the
//    ordinary single-process engine, so a sharded campaign never aborts
//    with less than one record per job.
//  * CANCEL (SIGINT/SIGTERM): relayed as SIGTERM so workers checkpoint and
//    flush like any CLI run; stragglers are SIGKILLed after a grace period
//    and unfinished jobs are emitted with status "skipped".
//
// After the last worker exits, the shard stores are merged back into the
// canonical store.jsonl (shard_merge.hpp) so a follow-up --resume or
// --shards M run starts from one authoritative store.
#pragma once

#include <string>
#include <vector>

#include "vinoc/campaign/campaign_spec.hpp"
#include "vinoc/campaign/engine.hpp"
#include "vinoc/campaign/shard_merge.hpp"

namespace vinoc::campaign {

struct ShardCampaignOptions {
  /// Engine options shared with workers. Used fields: cache_dir (REQUIRED —
  /// sharding is pointless without a store, and the manifests/shard stores
  /// live there), resume, include_timing, stream, on_record, job_timeout_s,
  /// max_retries, retry_backoff_ms, deadline_s, cancel, threads (the
  /// in-process degradation path); job_keys/on_job_start/failed_file are
  /// supervisor-owned and ignored.
  CampaignOptions base;
  /// Worker process count (>= 1). Shards the hash leaves empty spawn no
  /// process.
  int shards = 2;
  /// Path to the vinoc binary to exec as `campaign-worker` (normally
  /// /proc/self/exe; tests point it at the built CLI).
  std::string worker_exe;
  /// Campaign spec file the workers re-parse (the supervisor's own parsed
  /// spec and this file must agree — the CLI passes its input path through).
  std::string spec_path;
  /// --threads forwarded to each worker; 0 = each worker sizes itself.
  int worker_threads = 0;
  /// Respawns allowed per worker slot before its jobs are reassigned.
  int max_respawns = 2;
  /// Crash retries per JOB: how many times a job may be in flight during a
  /// worker crash before it is quarantined as the likely cause.
  int crash_retries = 1;
  /// Reassignment rounds (fresh worker over a dead shard's leftovers)
  /// before degrading to in-process execution.
  int max_reassign_rounds = 2;
};

struct ShardCampaignResult {
  /// Same shape as a single-process run: job-ordered records, expand stats,
  /// canonical-order metrics (supervisor counters appended after the
  /// engine's), wall_s.
  CampaignResult campaign;
  /// Outcome of the final shard-store merge.
  MergeStats merge;
};

/// Runs `spec` across worker processes (see file header). Throws
/// std::invalid_argument for an unusable configuration (empty cache_dir /
/// worker_exe / spec_path); everything else degrades rather than throws.
[[nodiscard]] ShardCampaignResult run_sharded_campaign(
    const CampaignSpec& spec, const ShardCampaignOptions& options);

}  // namespace vinoc::campaign

// Declarative job matrix of a synthesis campaign.
//
// A CampaignSpec names the axes — benchmark / synthetic-generator scenarios,
// islanding strategies, island counts, link widths, seeded SyntheticParams
// perturbations — and expand_jobs() takes their cross product, applies the
// include/exclude name filters, and content-hash-deduplicates the result
// into the ordered job list the engine runs. Job order is deterministic
// (axis nesting order: scenario → strategy → islands → width), which is what
// the engine's job-ordered streaming reporter and the byte-identical-output
// guarantee build on.
//
// The on-disk spelling (parse_campaign_spec) is a line-oriented `key =
// values` file, '#' comments, in the spirit of io/spec_format.hpp:
//
//   name = nightly
//   benchmarks = all              # or: d26 d16 d36 d64 d24
//   synthetic = cores:24 hubs:3 seed:7 flows:2.0 perturb:4
//   strategies = logical comm     # logical | comm | spec
//   islands = 2 3 4
//   widths = 32 64 128
//   alpha = 0.6
//   alpha_power = 0.7
//   intermediate = on             # on | off
//   include = d26 syn             # keep jobs whose name contains any of these
//   exclude = w128                # drop jobs whose name contains any of these
//
// `synthetic` and the filters are repeatable; list-valued keys replace the
// defaults.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "vinoc/core/synthesis.hpp"
#include "vinoc/soc/benchmarks.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::campaign {

/// One synthetic-generator scenario family: the base parameters plus
/// `perturbations` seeded variants (soc::perturb_synthetic_params).
struct SyntheticScenario {
  soc::SyntheticParams params;
  int perturbations = 0;
};

struct CampaignSpec {
  std::string name = "campaign";
  /// Named benchmarks (d26, d16, d36, d64, d24); "all" expands to all five.
  std::vector<std::string> benchmarks;
  std::vector<SyntheticScenario> synthetic;
  /// Islanding strategies: "logical" | "comm" | "spec" ("spec" keeps the
  /// benchmark's own islanding and ignores the island-count axis).
  std::vector<std::string> strategies = {"logical"};
  std::vector<int> island_counts = {2, 3, 4};
  std::vector<int> widths = {32, 64};
  /// Base options for every job; link_width_bits is overwritten by the width
  /// axis, threads / on_progress are controlled by the engine.
  core::SynthesisOptions base_options;
  /// Substring filters on the job name, applied before deduplication. Empty
  /// include list = keep everything.
  std::vector<std::string> include;
  std::vector<std::string> exclude;
};

/// One expanded, filter-surviving, deduplicated job.
struct CampaignJob {
  /// "<scenario>/<strategy>/i<islands>/w<width>" (no island segment for the
  /// "spec" strategy).
  std::string name;
  std::string scenario;
  std::string strategy;
  int islands = 0;  ///< actual island count of `spec`
  int width = 0;
  unsigned seed = 0;  ///< synthetic generator seed; 0 for named benchmarks
  soc::SocSpec spec;  ///< fully islanded, use-case scenarios attached
  core::SynthesisOptions options;
  std::uint64_t key = 0;  ///< content hash (vinoc/campaign/spec_hash.hpp)
};

struct ExpandStats {
  int raw = 0;       ///< cross-product size before filters
  int filtered = 0;  ///< dropped by include/exclude
  int deduped = 0;   ///< dropped as content-identical to an earlier job
};

/// Expands the matrix (see file header). Throws std::invalid_argument on an
/// unknown benchmark or strategy name and propagates synthetic-generator
/// errors; a spec that expands to zero jobs is returned empty, not an error.
[[nodiscard]] std::vector<CampaignJob> expand_jobs(const CampaignSpec& spec,
                                                   ExpandStats* stats = nullptr);

struct CampaignParseError {
  int line = 0;
  std::string message;
};

struct CampaignParseResult {
  bool ok = false;
  CampaignSpec spec;
  std::vector<CampaignParseError> errors;
};

/// Parses the key = values format. On any error `ok` is false and `errors`
/// lists every offending line; parsing continues past errors.
[[nodiscard]] CampaignParseResult parse_campaign_spec(std::istream& in);
[[nodiscard]] CampaignParseResult parse_campaign_spec_string(
    const std::string& text);
[[nodiscard]] CampaignParseResult parse_campaign_spec_file(
    const std::string& path);

}  // namespace vinoc::campaign

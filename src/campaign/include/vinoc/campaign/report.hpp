// Machine-readable campaign reporting: one JobRecord per finished job,
// rendered as one JSON line (the streaming report and the on-disk cache
// store share this format — and the CLI's --json output reuses the same
// writer) plus a CSV summary table.
//
// Determinism: every field of a record is a pure function of the job input
// and the (thread-count-independent) synthesis result, EXCEPT `wall_ms`
// (measured) and `cache_hit` (a function of the cache state the run started
// with). A campaign streamed with the same cache state is therefore
// byte-identical across --threads values up to `wall_ms`; pass
// include_timing = false (CLI: --no-timing) to omit `wall_ms` and make the
// stream byte-identical outright.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vinoc/campaign/campaign_spec.hpp"
#include "vinoc/core/synthesis.hpp"

namespace vinoc::campaign {

struct JobRecord {
  std::string campaign;
  std::string job;       ///< CampaignJob::name
  std::string scenario;
  std::string strategy;
  int islands = 0;
  int width = 0;
  unsigned seed = 0;
  std::uint64_t key = 0;  ///< content hash; JSONL spells it as 16 hex digits
  bool feasible = false;  ///< false iff the width is infeasible for the spec
  bool cache_hit = false;
  int points = 0;           ///< saved design points
  int pareto_points = 0;    ///< size of the power/latency Pareto front
  int configs_explored = 0;
  /// Pareto summary (0 when no design point was saved): the best-power
  /// point's power/leakage/area and the two latency extremes of the front.
  double best_power_mw = 0.0;
  double best_leakage_mw = 0.0;
  double best_area_mm2 = 0.0;
  double best_power_latency_cycles = 0.0;  ///< latency AT the best-power point
  double min_latency_cycles = 0.0;         ///< best-latency point's latency
  /// Supervision outcome: "ok" (computed or cache-served), "failed"
  /// (quarantined after exhausting retries), "timeout" (--job-timeout hit),
  /// or "skipped" (--deadline passed / run interrupted before the job
  /// started). Only "ok" records enter the store; the JSONL spells the
  /// field out only when != "ok", so healthy streams are byte-identical to
  /// pre-supervision ones.
  std::string status = "ok";
  double wall_ms = 0.0;  ///< measured; 0 for in-memory cache hits
};

/// Identity fields + Pareto summary for one job. `result` == nullptr means
/// the job was infeasible at its width.
[[nodiscard]] JobRecord summarize(const std::string& campaign_name,
                                  const CampaignJob& job,
                                  const core::SynthesisResult* result);

/// One JSON line (no trailing newline); see the file header for what
/// include_timing removes.
[[nodiscard]] std::string record_to_jsonl(const JobRecord& record,
                                          bool include_timing = true);

/// Parses a line written by record_to_jsonl (extra keys ignored, missing
/// wall_ms treated as 0). Returns false on malformed input.
[[nodiscard]] bool record_from_jsonl(const std::string& line, JobRecord& out);

/// CSV summary table (header + one row per record, record order).
[[nodiscard]] std::string records_to_csv(const std::vector<JobRecord>& records);

}  // namespace vinoc::campaign

// Content addressing of synthesis jobs.
//
// A campaign job is cached under a 64-bit key computed from a CANONICAL
// serialization of its full input, (SocSpec, SynthesisOptions): every field
// that can change the synthesized result is fed — tagged and length-prefixed
// so field boundaries are unambiguous — into an FNV-1a stream. Two jobs get
// the same key iff their inputs are value-identical, so editing one axis of
// a campaign matrix (a flow bandwidth, an island assignment, a link width)
// re-keys exactly the affected jobs and a resumed run recomputes only those.
//
// Deliberately EXCLUDED from the options hash: `threads` and `on_progress`.
// Both are wall-clock-only knobs — synthesize() guarantees bit-identical
// results for every thread count (see synthesis.hpp) — so a cache populated
// at --threads 8 must hit at --threads 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "vinoc/core/synthesis.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::campaign {

/// Incremental FNV-1a (64-bit) over a canonical byte stream. Multi-byte
/// values are fed little-endian at fixed width; strings are length-prefixed;
/// callers separate fields/sections with tag bytes.
class CanonicalHasher {
 public:
  CanonicalHasher& bytes(const void* data, std::size_t n);
  CanonicalHasher& tag(std::uint8_t t) { return bytes(&t, 1); }
  CanonicalHasher& u64(std::uint64_t v);
  CanonicalHasher& i64(std::int64_t v) {
    return u64(static_cast<std::uint64_t>(v));
  }
  CanonicalHasher& boolean(bool v) { return tag(v ? 1 : 0); }
  /// Bit pattern of the double; -0.0 is normalized to 0.0 first so the two
  /// equal values hash equal.
  CanonicalHasher& f64(double v);
  CanonicalHasher& str(std::string_view s);

  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;  // FNV-1a offset basis
};

/// Canonical hash of the full synthesis input spec (cores, islands, flows,
/// scenarios — names included, since reports key on them).
[[nodiscard]] std::uint64_t hash_soc_spec(const soc::SocSpec& spec);

/// Canonical hash of the result-affecting SynthesisOptions fields, including
/// the technology constants and floorplan options (see file header for the
/// documented exclusions).
[[nodiscard]] std::uint64_t hash_synthesis_options(
    const core::SynthesisOptions& options);

/// Cache key of one job: hash_soc_spec ⊕-combined with
/// hash_synthesis_options under distinct domain tags.
[[nodiscard]] std::uint64_t job_key(const soc::SocSpec& spec,
                                    const core::SynthesisOptions& options);

/// Like hash_synthesis_options but with link_width_bits EXCLUDED: two
/// option sets equal under this hash differ at most in the link width.
[[nodiscard]] std::uint64_t hash_synthesis_options_width_excluded(
    const core::SynthesisOptions& options);

/// Structure-sharing key of a job (the campaign engine's width-group key):
/// jobs with equal structure keys share every width-invariant input —
/// floorplan, traffic, min-cut partitions, candidate enumeration inputs —
/// and are synthesized together through core::synthesize_width_set so that
/// work is computed once per group instead of once per width.
[[nodiscard]] std::uint64_t structure_key(const soc::SocSpec& spec,
                                          const core::SynthesisOptions& options);

/// Structural fingerprint of a SynthesisResult (stats, per-point switch
/// counts + metrics + route shape, Pareto indices). Two results with equal
/// fingerprints are the same design space for every purpose the campaign
/// reports on; tests use it to assert bit-identical cache hits.
[[nodiscard]] std::uint64_t result_fingerprint(
    const core::SynthesisResult& result);

/// 16 lowercase hex digits, zero-padded (the JSONL spelling of a key).
[[nodiscard]] std::string key_hex(std::uint64_t key);
/// Inverse of key_hex; returns false on anything but exactly 16 hex digits.
[[nodiscard]] bool key_from_hex(std::string_view hex, std::uint64_t& key);

}  // namespace vinoc::campaign

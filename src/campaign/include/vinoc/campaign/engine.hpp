// Campaign engine: runs an expanded job matrix over the shared exec pool,
// consults the result cache, and streams job-ordered JSONL records.
//
// Scheduling: jobs are grouped by their WIDTH-EXCLUDED content hash
// (spec_hash.hpp structure_key) — jobs that differ only in link_width_bits
// share every width-invariant input, so each group is synthesized together
// through core::synthesize_width_set (partitions, floorplan and candidate
// structures computed once per group, not once per width). Groups fan out
// with exec::parallel_for_each (the caller participates as a strand) and
// every group's candidate sweep fans out over the SAME pool — nested
// parallelism. The nested fan-outs queue at the front (exec's fairness
// hint), so in-flight groups finish before queued ones start and the
// job-ordered stream keeps flowing.
//
// Determinism: jobs are independent and synthesize() is bit-identical for
// every thread count, records are merged/streamed in job order, and the
// cache is consulted per job by content key — so a campaign's record stream
// is byte-identical for any `threads` given the same starting cache state
// (modulo the measured wall_ms field; see report.hpp).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "vinoc/campaign/campaign_spec.hpp"
#include "vinoc/campaign/report.hpp"
#include "vinoc/campaign/result_cache.hpp"

namespace vinoc::campaign {

struct CampaignOptions {
  /// Job + candidate parallelism, one shared pool: 0 = hardware
  /// concurrency, N = exactly N (results identical for every value).
  int threads = 0;
  /// Non-empty: enable the on-disk store under this directory (ignored when
  /// `cache` is provided).
  std::string cache_dir;
  /// Load the store first and serve matching jobs from it (marked
  /// cache_hit) instead of recomputing.
  bool resume = false;
  /// Include the measured wall_ms field in streamed/returned records; turn
  /// off for byte-exact diffing between runs.
  bool include_timing = true;
  /// External cache to consult/fill (shared across run_campaign calls);
  /// nullptr = the engine creates its own from cache_dir.
  ResultCache* cache = nullptr;
  /// Streaming report: one record_to_jsonl line appended per finished job,
  /// in job order, flushed per line. nullptr = no stream.
  std::FILE* stream = nullptr;
  /// Job-order record callback (progress displays). Called with an internal
  /// mutex held — keep it cheap, and do not call back into the engine.
  std::function<void(const JobRecord&)> on_record;
};

struct CampaignResult {
  std::vector<JobRecord> records;  ///< job order
  ExpandStats expand;
  int jobs_total = 0;
  int jobs_run = 0;     ///< actually synthesized this run
  int cache_hits = 0;
  int infeasible = 0;
  /// Width-sharing groups actually computed this run (two or more jobs that
  /// differ only in link_width_bits, synthesized together through
  /// core::synthesize_width_set — the campaign-level structure cache), and
  /// the number of jobs they covered.
  int structure_groups = 0;
  int structure_shared_jobs = 0;
  /// Sharing telemetry summed over this run's width-set group syntheses
  /// (see core::WidthSetStats): (candidate, width) results materialised
  /// from a shared structure, the subset unlocked by path-level
  /// route-equivalence certificates, and flow-level certificate
  /// acceptances. width_fallback_evals counts ALL width-dependent results
  /// (tails resumed after a genuine divergence); width_cohort_evals is the
  /// subset of those resolved by a cohort lockstep, the rest resumed solo.
  int width_shared_evals = 0;
  int width_certified_evals = 0;
  int width_cohort_evals = 0;
  int width_fallback_evals = 0;
  int certificate_accepts = 0;
  /// Cohorts formed across this run's width-set syntheses, and the
  /// sweep-global high-water mark of outcomes buffered by the streaming
  /// merges (max over groups — a memory bound, not a sum).
  int cohort_groups = 0;
  int peak_buffered_outcomes = 0;
  /// Candidate-level delta evaluation summed over this run's syntheses
  /// (see core::WidthSetStats / core::SynthesisStats delta_* counters).
  int delta_candidates = 0;
  long long delta_flows_reused = 0;
  long long delta_flows_certified = 0;
  long long delta_flows_rerouted = 0;
  int delta_cert_rejects = 0;
  double wall_s = 0.0;  ///< whole-campaign wall time

  /// Fraction of delta-eligible flows served without a live Dijkstra.
  [[nodiscard]] double delta_reuse_rate() const {
    const long long reused = delta_flows_reused + delta_flows_certified;
    const long long total = reused + delta_flows_rerouted;
    return total > 0 ? static_cast<double>(reused) / static_cast<double>(total)
                     : 0.0;
  }

  /// All records as JSONL text (one line each, trailing newline).
  [[nodiscard]] std::string to_jsonl(bool include_timing = true) const;
};

/// Runs the campaign. Per-job InfeasibleWidthError is recorded (feasible =
/// false), not fatal; any other synthesis error (invalid spec, bad weights)
/// propagates, as do expand_jobs() errors.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          const CampaignOptions& options = {});

}  // namespace vinoc::campaign

// Campaign engine: runs an expanded job matrix over the shared exec pool,
// consults the result cache, and streams job-ordered JSONL records.
//
// Scheduling: jobs are grouped by their WIDTH-EXCLUDED content hash
// (spec_hash.hpp structure_key) — jobs that differ only in link_width_bits
// share every width-invariant input, so each group is synthesized together
// through core::synthesize_width_set (partitions, floorplan and candidate
// structures computed once per group, not once per width). Groups fan out
// with exec::parallel_for_each (the caller participates as a strand) and
// every group's candidate sweep fans out over the SAME pool — nested
// parallelism. The nested fan-outs queue at the front (exec's fairness
// hint), so in-flight groups finish before queued ones start and the
// job-ordered stream keeps flowing.
//
// Determinism: jobs are independent and synthesize() is bit-identical for
// every thread count, records are merged/streamed in job order, and the
// cache is consulted per job by content key — so a campaign's record stream
// is byte-identical for any `threads` given the same starting cache state
// (modulo the measured wall_ms field; see report.hpp).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "vinoc/campaign/campaign_spec.hpp"
#include "vinoc/campaign/report.hpp"
#include "vinoc/campaign/result_cache.hpp"
#include "vinoc/exec/cancel.hpp"
#include "vinoc/obs/registry.hpp"

namespace vinoc::campaign {

struct CampaignOptions {
  /// Job + candidate parallelism, one shared pool: 0 = hardware
  /// concurrency, N = exactly N (results identical for every value).
  int threads = 0;
  /// Non-empty: enable the on-disk store under this directory (ignored when
  /// `cache` is provided).
  std::string cache_dir;
  /// Load the store first and serve matching jobs from it (marked
  /// cache_hit) instead of recomputing.
  bool resume = false;
  /// Include the measured wall_ms field in streamed/returned records; turn
  /// off for byte-exact diffing between runs.
  bool include_timing = true;
  /// External cache to consult/fill (shared across run_campaign calls);
  /// nullptr = the engine creates its own from cache_dir.
  ResultCache* cache = nullptr;
  /// Streaming report: one record_to_jsonl line appended per finished job,
  /// in job order, flushed per line. nullptr = no stream.
  std::FILE* stream = nullptr;
  /// Job-order record callback (progress displays). Called with an internal
  /// mutex held — keep it cheap, and do not call back into the engine.
  std::function<void(const JobRecord&)> on_record;

  // --- Supervision (crash-safe campaigns) -----------------------------------

  /// Per-job wall-clock timeout, seconds; 0 = none. A job (or width group —
  /// the timeout covers one synthesis call) that runs past it is abandoned
  /// at the next cancellation poll and quarantined with status "timeout"
  /// (timeouts are not retried: the same work would time out again).
  double job_timeout_s = 0.0;
  /// Retry attempts beyond the first try for TRANSIENT failures (I/O
  /// errors, injected faults — any std::exception that is not a spec/option
  /// error). A job that still fails is quarantined with status "failed".
  int max_retries = 2;
  /// Base retry backoff, milliseconds: attempt k sleeps
  /// backoff * 2^k * jitter(seeded), capped at 5 s.
  double retry_backoff_ms = 100.0;
  /// Seed for the deterministic backoff jitter.
  std::uint64_t retry_jitter_seed = 1;
  /// Whole-campaign budget, seconds; 0 = none. Once exceeded, jobs that
  /// have not started are emitted with status "skipped" (cache hits still
  /// serve — they are free) and the campaign completes with what finished.
  double deadline_s = 0.0;
  /// External interrupt (the CLI's SIGINT/SIGTERM token). In-flight jobs
  /// abandon at the next poll, finished work stays flushed, and the result
  /// reports interrupted().
  const exec::CancelToken* cancel = nullptr;
  /// On-disk store size cap, bytes (ResultCache::set_store_max_bytes);
  /// 0 = unlimited. Applied to the engine-owned cache only — an external
  /// `cache` keeps whatever policy its owner set.
  std::uint64_t store_max_bytes = 0;

  // --- Sharded execution (campaign-worker) ----------------------------------

  /// When non-null, only expanded jobs whose content key appears in this
  /// list run; the rest are dropped from the matrix entirely (no record,
  /// no "skipped" — they belong to another shard). Keys that match no
  /// expanded job are ignored. This is how a campaign-worker process owns
  /// exactly its shard of the matrix while sharing all expansion logic.
  const std::vector<std::uint64_t>* job_keys = nullptr;
  /// Called right before a job starts COMPUTING (not for cache hits; every
  /// member of a width group is announced when the group starts). Workers
  /// heartbeat the in-flight key to the supervisor through this, so a
  /// crash can be attributed to the job that was running. Called from pool
  /// strands — must be thread-safe and cheap.
  std::function<void(const CampaignJob&)> on_job_start;
  /// Name of the failed-job quarantine ledger inside the cache dir.
  /// Workers use "failed-<k>.jsonl" so shards never interleave appends.
  std::string failed_file = "failed.jsonl";
};

struct CampaignResult {
  std::vector<JobRecord> records;  ///< job order
  ExpandStats expand;

  /// The single source of truth for every campaign counter, accumulated in
  /// per-worker obs registry shards and merged deterministically after the
  /// pool joins. Counters are registered in the CANONICAL resume_summary
  /// field order (test_campaign locks the serialization in), so
  /// io::registry_record emits the CLI's resume_summary line and --json
  /// record directly — there is no hand-maintained duplicate field list to
  /// drift. The accessors below are thin views for programmatic use:
  ///
  ///   run                    jobs actually synthesized this run
  ///   cache_hits, infeasible, total
  ///   structure_groups       width-sharing groups computed this run (two+
  ///                          jobs differing only in link_width_bits,
  ///                          synthesized together via synthesize_width_set)
  ///   structure_shared_jobs  jobs those groups covered
  ///   width_*_evals          sharing telemetry summed over the run's
  ///                          width-set syntheses (see core::WidthSetStats);
  ///                          width_fallback_evals counts ALL
  ///                          width-dependent results, width_cohort_evals
  ///                          the subset resolved by a cohort lockstep
  ///   certificate_accepts, cohort_groups
  ///   peak_buffered_outcomes streaming-merge high-water mark (MAX over
  ///                          groups — a memory bound, not a sum)
  ///   delta_*                candidate-level delta evaluation sums
  obs::Registry metrics;
  double wall_s = 0.0;  ///< whole-campaign wall time

  [[nodiscard]] int jobs_total() const {
    return static_cast<int>(metrics.value("total"));
  }
  [[nodiscard]] int jobs_run() const {
    return static_cast<int>(metrics.value("run"));
  }
  [[nodiscard]] int cache_hits() const {
    return static_cast<int>(metrics.value("cache_hits"));
  }
  [[nodiscard]] int infeasible() const {
    return static_cast<int>(metrics.value("infeasible"));
  }
  [[nodiscard]] int structure_groups() const {
    return static_cast<int>(metrics.value("structure_groups"));
  }
  [[nodiscard]] int structure_shared_jobs() const {
    return static_cast<int>(metrics.value("structure_shared_jobs"));
  }
  [[nodiscard]] int width_shared_evals() const {
    return static_cast<int>(metrics.value("width_shared_evals"));
  }
  [[nodiscard]] int width_certified_evals() const {
    return static_cast<int>(metrics.value("width_certified_evals"));
  }
  [[nodiscard]] int width_cohort_evals() const {
    return static_cast<int>(metrics.value("width_cohort_evals"));
  }
  [[nodiscard]] int width_fallback_evals() const {
    return static_cast<int>(metrics.value("width_fallback_evals"));
  }
  [[nodiscard]] int certificate_accepts() const {
    return static_cast<int>(metrics.value("certificate_accepts"));
  }
  [[nodiscard]] int cohort_groups() const {
    return static_cast<int>(metrics.value("cohort_groups"));
  }
  [[nodiscard]] int peak_buffered_outcomes() const {
    return static_cast<int>(metrics.value("peak_buffered_outcomes"));
  }
  [[nodiscard]] int delta_candidates() const {
    return static_cast<int>(metrics.value("delta_candidates"));
  }
  [[nodiscard]] long long delta_flows_reused() const {
    return metrics.value("delta_flows_reused");
  }
  [[nodiscard]] long long delta_flows_certified() const {
    return metrics.value("delta_flows_certified");
  }
  [[nodiscard]] long long delta_flows_rerouted() const {
    return metrics.value("delta_flows_rerouted");
  }
  [[nodiscard]] int delta_cert_rejects() const {
    return static_cast<int>(metrics.value("delta_cert_rejects"));
  }
  /// Transient-failure retry attempts across all jobs.
  [[nodiscard]] int retries() const {
    return static_cast<int>(metrics.value("retries"));
  }
  /// Jobs abandoned by --job-timeout (a subset of quarantined_jobs).
  [[nodiscard]] int job_timeouts() const {
    return static_cast<int>(metrics.value("job_timeouts"));
  }
  /// Jobs quarantined to failed.jsonl (status "failed" or "timeout").
  [[nodiscard]] int quarantined_jobs() const {
    return static_cast<int>(metrics.value("quarantined_jobs"));
  }
  /// Jobs never started: --deadline passed or the run was interrupted.
  [[nodiscard]] int skipped_jobs() const {
    return static_cast<int>(metrics.value("skipped_jobs"));
  }
  /// Corrupt/torn store lines quarantined by recovery-on-open.
  [[nodiscard]] int recovered_records() const {
    return static_cast<int>(metrics.value("recovered_records"));
  }
  /// Store records evicted by the size cap.
  [[nodiscard]] int evicted_records() const {
    return static_cast<int>(metrics.value("evicted_records"));
  }
  /// Failed store appends/rewrites (the store may have degraded to
  /// memory-only; see ResultCache::store_degraded).
  [[nodiscard]] int store_write_errors() const {
    return static_cast<int>(metrics.value("store_write_errors"));
  }
  /// True when the run was cut short by the external cancel token
  /// (SIGINT/SIGTERM) rather than running to completion.
  [[nodiscard]] bool interrupted() const {
    return metrics.value("interrupted") != 0;
  }

  /// Fraction of delta-eligible flows served without a live Dijkstra
  /// (also stored as the registry gauge "delta_reuse_rate").
  [[nodiscard]] double delta_reuse_rate() const {
    const long long reused = delta_flows_reused() + delta_flows_certified();
    const long long total = reused + delta_flows_rerouted();
    return total > 0 ? static_cast<double>(reused) / static_cast<double>(total)
                     : 0.0;
  }

  /// All records as JSONL text (one line each, trailing newline).
  [[nodiscard]] std::string to_jsonl(bool include_timing = true) const;
};

/// Runs the campaign. Per-job InfeasibleWidthError is recorded (feasible =
/// false), not fatal. Spec/option errors (std::invalid_argument) propagate,
/// as do expand_jobs() errors. Every OTHER per-job exception is treated as
/// transient: retried per CampaignOptions and, if it keeps failing,
/// quarantined (status "failed"/"timeout", mirrored to <dir>/failed.jsonl) —
/// the campaign always completes with one record per job.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          const CampaignOptions& options = {});

}  // namespace vinoc::campaign

// Island-aware floorplanning.
//
// The paper inserts the synthesized NoC components on a floorplan and
// computes wire lengths / wire power / delay (end of Section 4); its flow
// reuses the floorplanner of [15]. We substitute a deterministic shelf
// packer: voltage islands are packed as contiguous rectangular regions (a VI
// must be contiguous to share VDD/ground rails), cores are shelf-packed
// inside their island region, and NoC components are later dropped at
// traffic-weighted centroids (see vinoc::core). Wire lengths are Manhattan
// distances between block centres.
#pragma once

#include <vector>

#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::floorplan {

struct Point {
  double x_mm = 0.0;
  double y_mm = 0.0;
};

struct Rect {
  double x_mm = 0.0;  ///< lower-left corner
  double y_mm = 0.0;
  double w_mm = 0.0;
  double h_mm = 0.0;

  [[nodiscard]] Point center() const { return {x_mm + w_mm / 2.0, y_mm + h_mm / 2.0}; }
  [[nodiscard]] double area_mm2() const { return w_mm * h_mm; }
  [[nodiscard]] bool contains(const Point& p) const {
    return p.x_mm >= x_mm - 1e-9 && p.x_mm <= x_mm + w_mm + 1e-9 &&
           p.y_mm >= y_mm - 1e-9 && p.y_mm <= y_mm + h_mm + 1e-9;
  }
  [[nodiscard]] bool overlaps(const Rect& o) const {
    return x_mm < o.x_mm + o.w_mm - 1e-9 && o.x_mm < x_mm + w_mm - 1e-9 &&
           y_mm < o.y_mm + o.h_mm - 1e-9 && o.y_mm < y_mm + h_mm - 1e-9;
  }
};

[[nodiscard]] double manhattan_mm(const Point& a, const Point& b);

/// Traffic-weighted centroid; equal weights if `weights` is empty. The
/// weighted centroid minimizes total squared wire length, which is the
/// standard one-shot placement for an inserted switch.
[[nodiscard]] Point weighted_centroid(const std::vector<Point>& points,
                                      const std::vector<double>& weights = {});

struct FloorplanOptions {
  /// Whitespace factor applied to each island region and the chip outline
  /// (>= 1). Real floorplans keep routing/power-grid space.
  double whitespace = 1.20;
  /// Extra margin (mm) reserved around the chip edge for I/O pads.
  double pad_ring_mm = 0.30;
};

/// Placement of every core, with islands as contiguous regions.
class Floorplan {
 public:
  /// Places `soc`'s cores. Islands are shelf-packed largest-first into rows;
  /// cores are shelf-packed largest-first inside their island.
  static Floorplan build(const soc::SocSpec& soc,
                         const FloorplanOptions& options = {});

  [[nodiscard]] const Rect& core_rect(soc::CoreId core) const {
    return core_rects_.at(static_cast<std::size_t>(core));
  }
  [[nodiscard]] const Rect& island_rect(soc::IslandId island) const {
    return island_rects_.at(static_cast<std::size_t>(island));
  }
  [[nodiscard]] std::size_t core_count() const { return core_rects_.size(); }
  [[nodiscard]] std::size_t island_count() const { return island_rects_.size(); }
  [[nodiscard]] double chip_width_mm() const { return chip_w_mm_; }
  [[nodiscard]] double chip_height_mm() const { return chip_h_mm_; }
  [[nodiscard]] double chip_area_mm2() const { return chip_w_mm_ * chip_h_mm_; }

  /// Clamps `p` into the island's region (switches must sit inside their VI
  /// to share its power rails; intermediate-VI components are clamped to the
  /// chip outline instead, island = -1).
  [[nodiscard]] Point clamp_to_island(const Point& p, soc::IslandId island) const;

  /// Sanity checks: no core overlaps another, every core inside its island
  /// region, every island inside the chip. Returns problems (empty = ok).
  [[nodiscard]] std::vector<std::string> validate(const soc::SocSpec& soc) const;

 private:
  std::vector<Rect> core_rects_;
  std::vector<Rect> island_rects_;
  double chip_w_mm_ = 0.0;
  double chip_h_mm_ = 0.0;
};

}  // namespace vinoc::floorplan

#include "vinoc/floorplan/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vinoc::floorplan {

double manhattan_mm(const Point& a, const Point& b) {
  return std::abs(a.x_mm - b.x_mm) + std::abs(a.y_mm - b.y_mm);
}

Point weighted_centroid(const std::vector<Point>& points,
                        const std::vector<double>& weights) {
  if (points.empty()) throw std::invalid_argument("weighted_centroid: no points");
  if (!weights.empty() && weights.size() != points.size()) {
    throw std::invalid_argument("weighted_centroid: weight size mismatch");
  }
  double sx = 0.0;
  double sy = 0.0;
  double sw = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double w = weights.empty() ? 1.0 : std::max(weights[i], 0.0);
    sx += points[i].x_mm * w;
    sy += points[i].y_mm * w;
    sw += w;
  }
  if (sw <= 0.0) {
    // All-zero weights: fall back to the unweighted centroid.
    return weighted_centroid(points);
  }
  return {sx / sw, sy / sw};
}

namespace {

struct PackItem {
  double w = 0.0;
  double h = 0.0;
};

struct PackResult {
  std::vector<Point> origin;  ///< lower-left corner per item
  double bbox_w = 0.0;
  double bbox_h = 0.0;
};

/// Height-sorted shelf packing into rows of at most `target_width`.
PackResult shelf_pack(const std::vector<PackItem>& items, double target_width) {
  PackResult result;
  result.origin.resize(items.size());
  if (items.empty()) return result;

  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&items](std::size_t a, std::size_t b) {
    return items[a].h > items[b].h;
  });

  double cursor_x = 0.0;
  double cursor_y = 0.0;
  double row_h = 0.0;
  for (const std::size_t i : order) {
    const PackItem& it = items[i];
    if (cursor_x > 0.0 && cursor_x + it.w > target_width) {
      cursor_y += row_h;
      cursor_x = 0.0;
      row_h = 0.0;
    }
    result.origin[i] = {cursor_x, cursor_y};
    cursor_x += it.w;
    row_h = std::max(row_h, it.h);
    result.bbox_w = std::max(result.bbox_w, cursor_x);
  }
  result.bbox_h = cursor_y + row_h;
  return result;
}

}  // namespace

Floorplan Floorplan::build(const soc::SocSpec& soc, const FloorplanOptions& options) {
  if (options.whitespace < 1.0) {
    throw std::invalid_argument("FloorplanOptions: whitespace must be >= 1");
  }
  Floorplan fp;
  const std::size_t n_islands = soc.islands.size();
  fp.island_rects_.resize(n_islands);
  fp.core_rects_.resize(soc.cores.size());

  // Pack the cores of each island into a near-square region.
  struct IslandPack {
    std::vector<soc::CoreId> cores;
    PackResult pack;
    double w = 0.0;
    double h = 0.0;
    double margin = 0.0;
  };
  std::vector<IslandPack> packs(n_islands);
  const double side_factor = std::sqrt(options.whitespace);
  for (std::size_t isl = 0; isl < n_islands; ++isl) {
    IslandPack& ip = packs[isl];
    ip.cores = soc.cores_in_island(static_cast<soc::IslandId>(isl));
    std::vector<PackItem> items;
    double area = 0.0;
    for (const soc::CoreId c : ip.cores) {
      const auto& core = soc.cores[static_cast<std::size_t>(c)];
      items.push_back({core.width_mm, core.height_mm});
      area += core.width_mm * core.height_mm;
    }
    double target = std::sqrt(std::max(area, 1e-6) * options.whitespace);
    for (const PackItem& it : items) target = std::max(target, it.w);
    ip.pack = shelf_pack(items, target);
    ip.w = ip.pack.bbox_w * side_factor;
    ip.h = ip.pack.bbox_h * side_factor;
    // Empty islands (possible mid-sweep) still get a token region.
    ip.w = std::max(ip.w, 0.2);
    ip.h = std::max(ip.h, 0.2);
    ip.margin = 0.0;  // cores sit at the region's lower-left + margin/2
  }

  // Pack island regions onto the die; try a few row widths and keep the
  // most square outline (dies with wild aspect ratios are unrealistic and
  // inflate wire lengths).
  std::vector<PackItem> island_items;
  double total_area = 0.0;
  double min_target = 0.0;
  for (const IslandPack& ip : packs) {
    island_items.push_back({ip.w, ip.h});
    total_area += ip.w * ip.h;
    min_target = std::max(min_target, ip.w);
  }
  PackResult chip_pack;
  double best_aspect = std::numeric_limits<double>::infinity();
  for (const double factor : {1.0, 1.15, 1.3, 1.5, 1.8}) {
    const double target = std::max(std::sqrt(total_area) * factor, min_target);
    PackResult candidate = shelf_pack(island_items, target);
    const double aspect =
        std::max(candidate.bbox_w, candidate.bbox_h) /
        std::max(1e-9, std::min(candidate.bbox_w, candidate.bbox_h));
    if (aspect < best_aspect) {
      best_aspect = aspect;
      chip_pack = std::move(candidate);
    }
  }

  const double pad = options.pad_ring_mm;
  fp.chip_w_mm_ = chip_pack.bbox_w + 2.0 * pad;
  fp.chip_h_mm_ = chip_pack.bbox_h + 2.0 * pad;

  for (std::size_t isl = 0; isl < n_islands; ++isl) {
    IslandPack& ip = packs[isl];
    const Point org = chip_pack.origin[isl];
    fp.island_rects_[isl] = Rect{org.x_mm + pad, org.y_mm + pad, ip.w, ip.h};
    // Centre the packed cores inside the (slightly larger) island region.
    const double off_x = (ip.w - ip.pack.bbox_w) / 2.0;
    const double off_y = (ip.h - ip.pack.bbox_h) / 2.0;
    for (std::size_t k = 0; k < ip.cores.size(); ++k) {
      const soc::CoreId c = ip.cores[k];
      const auto& core = soc.cores[static_cast<std::size_t>(c)];
      fp.core_rects_[static_cast<std::size_t>(c)] =
          Rect{fp.island_rects_[isl].x_mm + off_x + ip.pack.origin[k].x_mm,
               fp.island_rects_[isl].y_mm + off_y + ip.pack.origin[k].y_mm,
               core.width_mm, core.height_mm};
    }
  }
  return fp;
}

Point Floorplan::clamp_to_island(const Point& p, soc::IslandId island) const {
  Rect region;
  if (island < 0) {
    region = Rect{0.0, 0.0, chip_w_mm_, chip_h_mm_};
  } else {
    region = island_rects_.at(static_cast<std::size_t>(island));
  }
  Point out = p;
  out.x_mm = std::clamp(out.x_mm, region.x_mm, region.x_mm + region.w_mm);
  out.y_mm = std::clamp(out.y_mm, region.y_mm, region.y_mm + region.h_mm);
  return out;
}

std::vector<std::string> Floorplan::validate(const soc::SocSpec& soc) const {
  std::vector<std::string> problems;
  const Rect chip{0.0, 0.0, chip_w_mm_, chip_h_mm_};
  for (std::size_t i = 0; i < core_rects_.size(); ++i) {
    const Rect& r = core_rects_[i];
    const auto island = static_cast<std::size_t>(soc.cores[i].island);
    const Rect& reg = island_rects_.at(island);
    if (r.x_mm < reg.x_mm - 1e-6 || r.y_mm < reg.y_mm - 1e-6 ||
        r.x_mm + r.w_mm > reg.x_mm + reg.w_mm + 1e-6 ||
        r.y_mm + r.h_mm > reg.y_mm + reg.h_mm + 1e-6) {
      problems.push_back("core '" + soc.cores[i].name + "' outside its island region");
    }
    for (std::size_t j = i + 1; j < core_rects_.size(); ++j) {
      if (r.overlaps(core_rects_[j])) {
        problems.push_back("cores '" + soc.cores[i].name + "' and '" +
                           soc.cores[j].name + "' overlap");
      }
    }
  }
  for (std::size_t isl = 0; isl < island_rects_.size(); ++isl) {
    const Rect& r = island_rects_[isl];
    if (r.x_mm < -1e-6 || r.y_mm < -1e-6 ||
        r.x_mm + r.w_mm > chip.w_mm + 1e-6 || r.y_mm + r.h_mm > chip.h_mm + 1e-6) {
      problems.push_back("island " + std::to_string(isl) + " outside the chip");
    }
    for (std::size_t j = isl + 1; j < island_rects_.size(); ++j) {
      if (r.overlaps(island_rects_[j])) {
        problems.push_back("island regions " + std::to_string(isl) + " and " +
                           std::to_string(j) + " overlap");
      }
    }
  }
  return problems;
}

}  // namespace vinoc::floorplan

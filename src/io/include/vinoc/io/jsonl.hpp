// Minimal JSON-lines support, shared by the campaign subsystem's result
// store / streaming reporter and the CLI's --json output — one writer, one
// format, instead of each caller inventing its own.
//
// Scope is deliberately tiny: FLAT single-line objects whose values are
// strings, numbers or booleans. The writer is deterministic — fields appear
// in insertion order and doubles are printed with "%.17g", which round-trips
// bit-exactly through strtod — so two runs that compute identical values
// emit identical bytes (the campaign determinism guarantee builds on this).
// The parser reads exactly what the writer emits (plus whitespace); it is
// not a general JSON parser and rejects nested objects/arrays.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace vinoc::io {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Builds one flat JSON object, rendered as a single line.
class JsonlWriter {
 public:
  JsonlWriter& field(std::string_view key, std::string_view value);
  JsonlWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonlWriter& field(std::string_view key, double value);
  JsonlWriter& field(std::string_view key, std::int64_t value);
  JsonlWriter& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  JsonlWriter& field(std::string_view key, std::uint64_t value);
  JsonlWriter& field(std::string_view key, bool value);

  /// The rendered object, e.g. `{"a":1,"b":"x"}`. No trailing newline.
  [[nodiscard]] std::string line() const { return "{" + body_ + "}"; }

 private:
  void key_prefix(std::string_view key);
  std::string body_;
};

/// Parses one flat JSON object line into key -> value. String values are
/// unescaped; numbers and booleans keep their raw JSON spelling (use strtod
/// / comparison with "true"). Returns false on malformed input or on any
/// nested object/array value.
[[nodiscard]] bool parse_jsonl_object(std::string_view line,
                                      std::map<std::string, std::string>& out);

// --- Per-line checksums (durable store v2) ----------------------------------
//
// A checksummed line is the original flat object with one trailing
// `"_crc":"<16 hex>"` field spliced in before the closing brace — still a
// valid flat JSON line (parse_jsonl_object reads it; record parsers ignore
// the extra key), so v2 stores stay greppable and hand-editable. The
// checksum (FNV-1a 64 of the original line text) is what lets a recovery
// pass tell a crash-torn or bit-rotted record from a good one.

/// FNV-1a 64-bit over `bytes`.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// `{"a":1}` -> `{"a":1,"_crc":"<hex of fnv1a64 of the input>"}`. The input
/// must be a one-line object (starts '{', ends '}').
[[nodiscard]] std::string add_line_checksum(std::string_view line);

enum class ChecksumStatus {
  kOk,         ///< trailing _crc present and it matches the payload
  kAbsent,     ///< well-formed line without a _crc field (legacy v1 store)
  kMismatch,   ///< _crc present but wrong — torn or corrupted line
  kMalformed,  ///< not even shaped like a JSON object line
};

/// Verifies and strips the trailing _crc field. On kOk/kAbsent,
/// *payload_out (when non-null) receives the line without the checksum
/// field — the exact text add_line_checksum was given.
[[nodiscard]] ChecksumStatus verify_line_checksum(std::string_view line,
                                                  std::string* payload_out);

/// Canonical envelope for a REJECTED line bound for a quarantine ledger:
/// `{"quarantined":"<escaped original bytes>","reason":"...","_crc":...}`.
/// The original line is usually torn or corrupt — not valid JSON — so it
/// rides as an escaped string inside a fresh checksummed object; the ledger
/// itself stays verifiable line by line (every side ledger carries _crc,
/// same as the store).
[[nodiscard]] std::string quarantine_envelope(std::string_view line,
                                              std::string_view reason);

}  // namespace vinoc::io

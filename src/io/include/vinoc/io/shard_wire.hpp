// Wire framing for sharded campaigns: the status lines a campaign worker
// streams to its supervisor over a pipe, and the on-disk shard manifest the
// supervisor hands each worker.
//
// STATUS LINES are flat checksummed JSONL (the repo-wide JsonlWriter format
// plus add_line_checksum), one event per line:
//
//   {"ev":"start","key":"<16 hex>","_crc":"..."}          job began computing
//   {"ev":"done","key":"...","rec":"<escaped record JSONL>","_crc":"..."}
//   {"ev":"summary","metrics":"<escaped registry record>","_crc":"..."}
//
// The embedded record/registry line rides as an ESCAPED STRING field, so the
// envelope stays a flat object the shared parser reads. Every line is
// written with a single write(2) well under PIPE_BUF, so lines from a worker
// killed mid-stream are either whole or missing — never interleaved — and a
// torn final line fails its checksum instead of parsing as garbage. The
// supervisor treats any undecodable line as a dropped heartbeat (counted,
// tolerated): the merger re-derives ground truth from the shard stores.
//
// The MANIFEST is one checksummed line per assigned job key, in campaign job
// order. Workers reject a manifest with a bad line (a torn manifest must not
// silently shrink a shard's assignment).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vinoc::io {

enum class ShardEventType {
  kStart,    ///< worker began computing the job with `key`
  kDone,     ///< job finished; `payload` is the JobRecord JSONL line
  kSummary,  ///< worker is about to exit; `payload` is its metrics record
};

struct ShardEvent {
  ShardEventType type = ShardEventType::kStart;
  std::uint64_t key = 0;  ///< job key (start/done)
  std::string payload;    ///< record line (done) / registry record (summary)
};

/// One status line, checksummed, no trailing newline.
[[nodiscard]] std::string encode_shard_event(const ShardEvent& event);

/// Decodes one status line. nullopt on a torn/corrupt/unknown line — the
/// supervisor counts it as a dropped heartbeat and moves on.
[[nodiscard]] std::optional<ShardEvent> decode_shard_event(
    const std::string& line);

/// Writes `keys` as a manifest file (atomic temp + rename). Returns false
/// when the file cannot be written.
[[nodiscard]] bool write_shard_manifest(const std::string& path,
                                        const std::vector<std::uint64_t>& keys);

/// Reads a manifest written by write_shard_manifest. Returns nullopt when
/// the file is missing, any line fails its checksum, or any key is
/// malformed — a worker must run its exact assignment or nothing.
[[nodiscard]] std::optional<std::vector<std::uint64_t>> read_shard_manifest(
    const std::string& path);

}  // namespace vinoc::io

// Human-consumable exports: Graphviz DOT topologies (the paper's Figure 4),
// SVG floorplans with inserted NoC components (Figure 5), and CSV dumps of
// design-point sweeps (Figures 2-3 data).
#pragma once

#include <string>

#include "vinoc/core/synthesis.hpp"
#include "vinoc/core/topology.hpp"
#include "vinoc/floorplan/floorplan.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::io {

/// Graphviz DOT rendering of a topology: cores as boxes clustered by island,
/// switches as circles (intermediate-VI switches doubled), links as edges
/// (crossings dashed and annotated with the bi-sync FIFO).
[[nodiscard]] std::string topology_to_dot(const core::NocTopology& topo,
                                          const soc::SocSpec& spec);

/// SVG floorplan: island regions, core blocks, switch markers, link wires.
/// Pass nullptr for `topo` to draw the bare floorplan.
[[nodiscard]] std::string floorplan_to_svg(const floorplan::Floorplan& fp,
                                           const soc::SocSpec& spec,
                                           const core::NocTopology* topo);

/// CSV of all design points of a synthesis run:
/// columns: point,switches_total,intermediate,power_mw,leakage_mw,area_mm2,
///          avg_latency_cycles,max_latency_cycles,links,fifos,pareto
[[nodiscard]] std::string design_points_to_csv(const core::SynthesisResult& result);

/// Writes `text` to `path` atomically (temp file + rename, so a crash never
/// leaves a torn file at `path`); throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& text);

}  // namespace vinoc::io

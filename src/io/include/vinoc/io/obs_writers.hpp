// Serialization for the vinoc::obs layer — the ONE place trace snapshots,
// metric registries and phase profiles become bytes. The CLI, benches and
// tools/trace_check all go through these functions, so a format change
// cannot fork between producers and the validator.
//
//  * write_chrome_trace: Chrome trace_event JSON ("X" complete events,
//    microsecond timestamps) — loadable in Perfetto / chrome://tracing.
//  * validate_chrome_trace: the checker behind tools/trace_check. Scope is
//    the writer's output format, not general trace JSON.
//  * registry_record / phase_profile_record: flat JSONL lines in the
//    repo-wide JsonlWriter format (deterministic field order: counters,
//    then gauges, each name-sorted by obs::Registry's merge).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "vinoc/obs/profile.hpp"
#include "vinoc/obs/registry.hpp"
#include "vinoc/obs/trace.hpp"

namespace vinoc::io {

/// Writes `snap` as a Chrome trace_event JSON document:
/// {"traceEvents":[...],"displayTimeUnit":"ms","otherData":{...}}.
/// Each span is an "X" event with ts/dur in (fractional) microseconds;
/// thread_name metadata events label the lanes; the total ring-overflow
/// drop count is recorded under otherData.dropped_events.
void write_chrome_trace(std::ostream& os, const obs::TraceSnapshot& snap);

/// Convenience: write_chrome_trace to `path`. Returns false if the file
/// cannot be opened.
[[nodiscard]] bool write_chrome_trace_file(const std::string& path,
                                           const obs::TraceSnapshot& snap);

/// Validates a trace document produced by write_chrome_trace:
///  - well-formed JSON of the expected shape,
///  - every event has name/ph/ts/dur/pid/tid with ph=="X", ts/dur >= 0,
///  - per tid, event start timestamps are monotone non-decreasing,
///  - per tid, spans are properly nested (an event either encloses or is
///    disjoint from its predecessors — no partial overlap).
/// Returns true and leaves `error` empty on success; on failure `error`
/// names the first offending event.
[[nodiscard]] bool validate_chrome_trace(std::string_view json,
                                         std::string& error);

/// One flat JSONL line for a merged registry: {"record":<record_name>,
/// <counter fields...>, <histogram summaries...>, <gauge fields...>}.
/// An empty record_name omits the "record" field (the CLI's resume_summary
/// payload). Counter/gauge order is the registry's ENTRY order —
/// registration order for a hand-built registry (the campaign's canonical
/// resume_summary order), name-sorted after ShardedRegistry::merged()
/// (hence byte-identical for any thread count).
[[nodiscard]] std::string registry_record(std::string_view record_name,
                                          const obs::Registry& registry);

/// One flat JSONL line for accumulated phase totals:
/// {"record":"phase_profile","total_wall_s":...,
///  "<phase>_wall_s":...,"<phase>_cpu_s":...,"<phase>_scopes":...}
/// with phases in obs::Phase enum order.
[[nodiscard]] std::string phase_profile_record(const obs::PhaseTotals& totals);

}  // namespace vinoc::io

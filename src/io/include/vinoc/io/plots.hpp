// Gnuplot emitters: write <base>.dat + <base>.gp so every figure of the
// paper can be re-plotted with `gnuplot <base>.gp` (produces <base>.png).
#pragma once

#include <string>
#include <vector>

namespace vinoc::io {

struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;  ///< (x, y)
};

struct PlotSpec {
  std::string title;
  std::string xlabel;
  std::string ylabel;
  std::vector<Series> series;
  bool x_log = false;
  bool y_log = false;
};

/// Renders the .dat (whitespace columns: x y1 y2 ..., series aligned by x
/// where possible, one block per series otherwise) and the .gp driver.
[[nodiscard]] std::string plot_data(const PlotSpec& plot);
[[nodiscard]] std::string plot_script(const PlotSpec& plot,
                                      const std::string& data_file,
                                      const std::string& png_file);

/// Writes <base>.dat and <base>.gp; the script renders <base>.png.
/// Throws std::runtime_error on I/O failure.
void write_plot(const std::string& base_path, const PlotSpec& plot);

}  // namespace vinoc::io

// Plain-text SoC specification format, so users can feed their own designs
// to the synthesizer (see examples/custom_soc_from_file.cpp).
//
// Line-oriented; '#' starts a comment; blank lines ignored. Order matters
// only in that islands/cores must precede references to them.
//
//   soc <name>
//   island <name> <vdd_v> <shutdown|always_on>
//   core <name> <kind> <island_name> <w_mm> <h_mm> <dyn_mw> <leak_mw> <clk_mhz>
//   flow <src_core> <dst_core> <bandwidth_mbps> <max_latency_cycles>
//   scenario <name> <time_fraction> <active_island_1> [<active_island_2> ...]
//
// <kind> is one of: cpu dsp gpu cache memory mem_ctrl dma video imaging
// display audio modem crypto peripheral other. Bandwidth is in MB/s.
#pragma once

#include <iosfwd>
#include <string>

#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::io {

struct ParseError {
  int line = 0;
  std::string message;
};

struct ParseResult {
  bool ok = false;
  soc::SocSpec spec;
  std::vector<ParseError> errors;
};

/// Parses the text format. On any error `ok` is false and `errors` explains
/// each offending line; parsing continues past errors to report them all.
[[nodiscard]] ParseResult parse_soc_spec(std::istream& in);
[[nodiscard]] ParseResult parse_soc_spec_string(const std::string& text);
[[nodiscard]] ParseResult parse_soc_spec_file(const std::string& path);

/// Serializes a spec back into the text format (round-trips with the
/// parser up to floating-point formatting).
[[nodiscard]] std::string write_soc_spec(const soc::SocSpec& spec);

/// Parses a core kind token ("cpu", "dsp", ...); returns kOther + false on
/// unknown tokens.
[[nodiscard]] bool parse_core_kind(const std::string& token, soc::CoreKind& out);

}  // namespace vinoc::io

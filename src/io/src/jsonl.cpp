#include "vinoc/io/jsonl.hpp"

#include <cstdio>
#include <cstdlib>

namespace vinoc::io {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonlWriter::key_prefix(std::string_view key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
}

JsonlWriter& JsonlWriter::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonlWriter& JsonlWriter::field(std::string_view key, double value) {
  key_prefix(key);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  body_ += buf;
  return *this;
}

JsonlWriter& JsonlWriter::field(std::string_view key, std::int64_t value) {
  key_prefix(key);
  body_ += std::to_string(value);
  return *this;
}

JsonlWriter& JsonlWriter::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  body_ += std::to_string(value);
  return *this;
}

JsonlWriter& JsonlWriter::field(std::string_view key, bool value) {
  key_prefix(key);
  body_ += value ? "true" : "false";
  return *this;
}

namespace {

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' ||
                          s[i] == '\n')) {
    ++i;
  }
}

/// Parses a JSON string literal starting at the opening quote; leaves `i`
/// one past the closing quote.
bool parse_string(std::string_view s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= s.size()) return false;
      const char esc = s[i + 1];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i + 5 >= s.size()) return false;
          char* end = nullptr;
          const std::string hex(s.substr(i + 2, 4));
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return false;
          // Writer only emits \u00xx control escapes; decode the latin-1
          // subset and reject the rest (out of scope).
          if (code > 0xFF) return false;
          out += static_cast<char>(code);
          i += 4;
          break;
        }
        default: return false;
      }
      i += 2;
      continue;
    }
    out += c;
    ++i;
  }
  return false;  // unterminated
}

}  // namespace

bool parse_jsonl_object(std::string_view line,
                        std::map<std::string, std::string>& out) {
  out.clear();
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws(line, i);
      std::string key;
      if (!parse_string(line, i, key)) return false;
      skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') return false;
      ++i;
      skip_ws(line, i);
      if (i >= line.size()) return false;
      std::string value;
      if (line[i] == '"') {
        if (!parse_string(line, i, value)) return false;
      } else if (line[i] == '{' || line[i] == '[') {
        return false;  // nesting is out of scope
      } else {
        // Number / true / false / null: raw token up to ',' or '}'.
        const std::size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
        std::size_t end = i;
        while (end > start &&
               (line[end - 1] == ' ' || line[end - 1] == '\t')) {
          --end;
        }
        if (end == start) return false;
        value.assign(line.substr(start, end - start));
      }
      out[key] = std::move(value);
      skip_ws(line, i);
      if (i >= line.size()) return false;
      if (line[i] == ',') {
        ++i;
        continue;
      }
      if (line[i] == '}') {
        ++i;
        break;
      }
      return false;
    }
  }
  skip_ws(line, i);
  return i == line.size();
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

constexpr std::string_view kCrcPrefix = ",\"_crc\":\"";
constexpr std::size_t kCrcHexDigits = 16;

std::string crc_hex(std::uint64_t h) {
  char buf[kCrcHexDigits + 1];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

std::string add_line_checksum(std::string_view line) {
  const std::string hex = crc_hex(fnv1a64(line));
  std::string out(line.substr(0, line.size() - 1));  // drop closing '}'
  // An empty object has no field to follow, so no separating comma.
  out += line == "{}" ? std::string_view("\"_crc\":\"")
                      : std::string_view(kCrcPrefix);
  out += hex;
  out += "\"}";
  return out;
}

ChecksumStatus verify_line_checksum(std::string_view line,
                                    std::string* payload_out) {
  if (line.size() < 2 || line.front() != '{' || line.back() != '}') {
    return ChecksumStatus::kMalformed;
  }
  // Suffix shape: ,"_crc":"<16 hex>"}  (or without the comma after "{").
  const std::size_t suffix = kCrcPrefix.size() + kCrcHexDigits + 2;
  std::string payload;
  std::string_view hex;
  if (line.size() >= suffix &&
      line.substr(line.size() - suffix, kCrcPrefix.size()) == kCrcPrefix &&
      line.substr(line.size() - 2) == "\"}") {
    hex = line.substr(line.size() - kCrcHexDigits - 2, kCrcHexDigits);
    payload = std::string(line.substr(0, line.size() - suffix)) + "}";
  } else if (line.size() == suffix &&
             line.substr(1, kCrcPrefix.size() - 1) == kCrcPrefix.substr(1)) {
    hex = line.substr(kCrcPrefix.size(), kCrcHexDigits);
    payload = "{}";
  } else {
    if (payload_out != nullptr) *payload_out = std::string(line);
    return ChecksumStatus::kAbsent;
  }
  for (const char c : hex) {
    const bool is_hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!is_hex) return ChecksumStatus::kMismatch;
  }
  if (crc_hex(fnv1a64(payload)) != hex) return ChecksumStatus::kMismatch;
  if (payload_out != nullptr) *payload_out = std::move(payload);
  return ChecksumStatus::kOk;
}

std::string quarantine_envelope(std::string_view line, std::string_view reason) {
  JsonlWriter w;
  w.field("quarantined", line);
  w.field("reason", reason);
  return add_line_checksum(w.line());
}

}  // namespace vinoc::io

#include "vinoc/io/exports.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace vinoc::io {

namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

}  // namespace

std::string topology_to_dot(const core::NocTopology& topo, const soc::SocSpec& spec) {
  std::ostringstream os;
  os << "digraph noc {\n"
     << "  rankdir=LR;\n"
     << "  node [fontsize=10];\n";

  // Island clusters with their cores and direct switches.
  for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
    os << "  subgraph cluster_isl" << isl << " {\n"
       << "    label=\"" << spec.islands[isl].name
       << (spec.islands[isl].can_shutdown ? " (gateable)" : " (always-on)")
       << "\";\n    style=rounded;\n";
    for (std::size_t c = 0; c < spec.cores.size(); ++c) {
      if (static_cast<std::size_t>(spec.cores[c].island) != isl) continue;
      os << "    core_" << sanitize(spec.cores[c].name) << " [shape=box,label=\""
         << spec.cores[c].name << "\"];\n";
    }
    for (std::size_t s = 0; s < topo.switches.size(); ++s) {
      if (topo.switches[s].island != static_cast<soc::IslandId>(isl)) continue;
      os << "    sw" << s << " [shape=circle,label=\"sw" << s << "\\n"
         << topo.switches[s].freq_hz / 1e6 << "MHz\"];\n";
    }
    os << "  }\n";
  }
  // Intermediate NoC VI.
  bool has_intermediate = false;
  for (const core::SwitchInst& s : topo.switches) {
    if (s.island == core::kIntermediateIsland) has_intermediate = true;
  }
  if (has_intermediate) {
    os << "  subgraph cluster_noc_vi {\n"
       << "    label=\"NoC VI (always-on)\";\n    style=dashed;\n";
    for (std::size_t s = 0; s < topo.switches.size(); ++s) {
      if (topo.switches[s].island != core::kIntermediateIsland) continue;
      os << "    sw" << s << " [shape=doublecircle,label=\"sw" << s << "\"];\n";
    }
    os << "  }\n";
  }

  // NI attachments (one undirected-looking pair of edges would be noisy;
  // draw a single edge core -> switch).
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    os << "  core_" << sanitize(spec.cores[c].name) << " -> sw"
       << topo.switch_of_core[c] << " [dir=both,color=gray,arrowsize=0.5];\n";
  }
  // Inter-switch links.
  for (const core::TopLink& l : topo.links) {
    os << "  sw" << l.src_switch << " -> sw" << l.dst_switch;
    if (l.crosses_island) {
      os << " [style=dashed,label=\"fifo\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string floorplan_to_svg(const floorplan::Floorplan& fp, const soc::SocSpec& spec,
                             const core::NocTopology* topo) {
  constexpr double kScale = 80.0;  // px per mm
  const double W = fp.chip_width_mm() * kScale;
  const double H = fp.chip_height_mm() * kScale;
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << W << "\" height=\""
     << H << "\" viewBox=\"0 0 " << W << " " << H << "\">\n";
  os << "  <rect x=\"0\" y=\"0\" width=\"" << W << "\" height=\"" << H
     << "\" fill=\"#f7f7f7\" stroke=\"black\"/>\n";
  // SVG's y axis points down; flip so (0,0) is the chip's lower-left.
  auto X = [kScale](double mm) { return mm * kScale; };
  auto Y = [kScale, H](double mm) { return H - mm * kScale; };

  static const char* kPalette[] = {"#cfe8ff", "#ffe3cf", "#d8f5d0", "#f5d0ea",
                                   "#fff3b0", "#d0f0f5", "#e6d0f5", "#f5d6d0"};
  for (std::size_t isl = 0; isl < fp.island_count(); ++isl) {
    const floorplan::Rect& r = fp.island_rect(static_cast<soc::IslandId>(isl));
    os << "  <rect x=\"" << X(r.x_mm) << "\" y=\"" << Y(r.y_mm + r.h_mm)
       << "\" width=\"" << r.w_mm * kScale << "\" height=\"" << r.h_mm * kScale
       << "\" fill=\"" << kPalette[isl % 8]
       << "\" stroke=\"#555\" stroke-dasharray=\"4,2\"/>\n";
    os << "  <text x=\"" << X(r.x_mm) + 3 << "\" y=\"" << Y(r.y_mm + r.h_mm) + 12
       << "\" font-size=\"11\">" << spec.islands[isl].name
       << (spec.islands[isl].can_shutdown ? "" : " *") << "</text>\n";
  }
  for (std::size_t c = 0; c < fp.core_count(); ++c) {
    const floorplan::Rect& r = fp.core_rect(static_cast<soc::CoreId>(c));
    os << "  <rect x=\"" << X(r.x_mm) << "\" y=\"" << Y(r.y_mm + r.h_mm)
       << "\" width=\"" << r.w_mm * kScale << "\" height=\"" << r.h_mm * kScale
       << "\" fill=\"white\" stroke=\"#333\"/>\n";
    os << "  <text x=\"" << X(r.center().x_mm) << "\" y=\"" << Y(r.center().y_mm)
       << "\" font-size=\"8\" text-anchor=\"middle\">" << spec.cores[c].name
       << "</text>\n";
  }
  if (topo != nullptr) {
    for (const core::TopLink& l : topo->links) {
      const auto& a = topo->switches[static_cast<std::size_t>(l.src_switch)].pos;
      const auto& b = topo->switches[static_cast<std::size_t>(l.dst_switch)].pos;
      os << "  <line x1=\"" << X(a.x_mm) << "\" y1=\"" << Y(a.y_mm) << "\" x2=\""
         << X(b.x_mm) << "\" y2=\"" << Y(b.y_mm) << "\" stroke=\""
         << (l.crosses_island ? "#c33" : "#36c") << "\" stroke-width=\"1.5\""
         << (l.crosses_island ? " stroke-dasharray=\"5,3\"" : "") << "/>\n";
    }
    for (std::size_t c = 0; c < spec.cores.size(); ++c) {
      const auto& p = fp.core_rect(static_cast<soc::CoreId>(c)).center();
      const auto& s =
          topo->switches[static_cast<std::size_t>(topo->switch_of_core[c])].pos;
      os << "  <line x1=\"" << X(p.x_mm) << "\" y1=\"" << Y(p.y_mm) << "\" x2=\""
         << X(s.x_mm) << "\" y2=\"" << Y(s.y_mm)
         << "\" stroke=\"#999\" stroke-width=\"0.7\"/>\n";
    }
    for (std::size_t s = 0; s < topo->switches.size(); ++s) {
      const core::SwitchInst& sw = topo->switches[s];
      const bool inter = sw.island == core::kIntermediateIsland;
      os << "  <circle cx=\"" << X(sw.pos.x_mm) << "\" cy=\"" << Y(sw.pos.y_mm)
         << "\" r=\"" << (inter ? 7 : 5) << "\" fill=\""
         << (inter ? "#c33" : "#36c") << "\" stroke=\"black\"/>\n";
      os << "  <text x=\"" << X(sw.pos.x_mm) + 8 << "\" y=\"" << Y(sw.pos.y_mm)
         << "\" font-size=\"9\">sw" << s << "</text>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

std::string design_points_to_csv(const core::SynthesisResult& result) {
  std::ostringstream os;
  os << "point,switches_total,intermediate,power_mw,leakage_mw,area_mm2,"
        "avg_latency_cycles,max_latency_cycles,links,fifos,pareto\n";
  std::set<std::size_t> pareto(result.pareto.begin(), result.pareto.end());
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const core::DesignPoint& p = result.points[i];
    int total = p.intermediate_switches;
    for (const int k : p.switches_per_island) total += k;
    const core::Metrics& m = p.metrics;
    os << i << ',' << total << ',' << p.intermediate_switches << ','
       << m.noc_dynamic_w * 1e3 << ',' << m.noc_leakage_w * 1e3 << ','
       << m.noc_area_mm2 << ',' << m.avg_latency_cycles << ','
       << m.max_latency_cycles << ',' << m.link_count << ',' << m.fifo_count
       << ',' << (pareto.count(i) != 0 ? 1 : 0) << '\n';
  }
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  // Atomic publish: write a sibling temp file, then rename over the target.
  // A crash mid-write leaves either the old file or nothing at `path` —
  // never a torn half-report that a later tool would read as truth.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("write_file: cannot open " + tmp);
    out << text;
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("write_file: write failed for " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("write_file: cannot rename " + tmp + " over " +
                             path);
  }
}

}  // namespace vinoc::io

#include "vinoc/io/spec_format.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace vinoc::io {

namespace {

const std::map<std::string, soc::CoreKind>& kind_table() {
  static const std::map<std::string, soc::CoreKind> table = {
      {"cpu", soc::CoreKind::kCpu},
      {"dsp", soc::CoreKind::kDsp},
      {"gpu", soc::CoreKind::kGpu},
      {"cache", soc::CoreKind::kCache},
      {"memory", soc::CoreKind::kMemory},
      {"mem_ctrl", soc::CoreKind::kMemController},
      {"dma", soc::CoreKind::kDma},
      {"video", soc::CoreKind::kVideo},
      {"imaging", soc::CoreKind::kImaging},
      {"display", soc::CoreKind::kDisplay},
      {"audio", soc::CoreKind::kAudio},
      {"modem", soc::CoreKind::kModem},
      {"crypto", soc::CoreKind::kCrypto},
      {"peripheral", soc::CoreKind::kPeripheral},
      {"other", soc::CoreKind::kOther},
  };
  return table;
}

bool parse_double(const std::string& tok, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(tok, &pos);
    return pos == tok.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

bool parse_core_kind(const std::string& token, soc::CoreKind& out) {
  const auto it = kind_table().find(token);
  if (it == kind_table().end()) {
    out = soc::CoreKind::kOther;
    return false;
  }
  out = it->second;
  return true;
}

ParseResult parse_soc_spec(std::istream& in) {
  ParseResult result;
  soc::SocSpec& spec = result.spec;
  std::map<std::string, soc::IslandId> island_of_name;

  std::string line;
  int line_no = 0;
  auto fail = [&result, &line_no](std::string msg) {
    result.errors.push_back({line_no, std::move(msg)});
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd)) continue;  // blank

    if (cmd == "soc") {
      if (!(ls >> spec.name)) fail("soc: missing name");
    } else if (cmd == "island") {
      std::string name;
      std::string vdd_tok;
      std::string mode;
      if (!(ls >> name >> vdd_tok >> mode)) {
        fail("island: expected <name> <vdd_v> <shutdown|always_on>");
        continue;
      }
      soc::VoltageIsland vi;
      vi.name = name;
      if (!parse_double(vdd_tok, vi.vdd_v)) {
        fail("island " + name + ": bad vdd '" + vdd_tok + "'");
        continue;
      }
      if (mode == "shutdown") {
        vi.can_shutdown = true;
      } else if (mode == "always_on") {
        vi.can_shutdown = false;
      } else {
        fail("island " + name + ": mode must be 'shutdown' or 'always_on'");
        continue;
      }
      if (island_of_name.count(name) != 0) {
        fail("island " + name + ": duplicate island name");
        continue;
      }
      island_of_name[name] = static_cast<soc::IslandId>(spec.islands.size());
      spec.islands.push_back(std::move(vi));
    } else if (cmd == "core") {
      std::string name;
      std::string kind_tok;
      std::string island_name;
      std::string w;
      std::string h;
      std::string dyn;
      std::string leak;
      std::string clk;
      if (!(ls >> name >> kind_tok >> island_name >> w >> h >> dyn >> leak >> clk)) {
        fail("core: expected <name> <kind> <island> <w_mm> <h_mm> <dyn_mw> "
             "<leak_mw> <clk_mhz>");
        continue;
      }
      soc::CoreSpec c;
      c.name = name;
      if (!parse_core_kind(kind_tok, c.kind)) {
        fail("core " + name + ": unknown kind '" + kind_tok + "'");
        continue;
      }
      const auto isl = island_of_name.find(island_name);
      if (isl == island_of_name.end()) {
        fail("core " + name + ": unknown island '" + island_name + "'");
        continue;
      }
      c.island = isl->second;
      double dyn_mw = 0.0;
      double leak_mw = 0.0;
      double clk_mhz = 0.0;
      if (!parse_double(w, c.width_mm) || !parse_double(h, c.height_mm) ||
          !parse_double(dyn, dyn_mw) || !parse_double(leak, leak_mw) ||
          !parse_double(clk, clk_mhz)) {
        fail("core " + name + ": bad numeric field");
        continue;
      }
      c.dynamic_power_w = dyn_mw * 1e-3;
      c.leakage_power_w = leak_mw * 1e-3;
      c.clock_hz = clk_mhz * 1e6;
      spec.cores.push_back(std::move(c));
    } else if (cmd == "flow") {
      std::string src;
      std::string dst;
      std::string bw;
      std::string lat;
      if (!(ls >> src >> dst >> bw >> lat)) {
        fail("flow: expected <src> <dst> <bandwidth_mbps> <max_latency_cycles>");
        continue;
      }
      soc::Flow f;
      f.src = spec.find_core(src);
      f.dst = spec.find_core(dst);
      if (f.src < 0) {
        fail("flow: unknown source core '" + src + "'");
        continue;
      }
      if (f.dst < 0) {
        fail("flow: unknown destination core '" + dst + "'");
        continue;
      }
      double bw_mbps = 0.0;
      if (!parse_double(bw, bw_mbps) || !parse_double(lat, f.max_latency_cycles)) {
        fail("flow " + src + "->" + dst + ": bad numeric field");
        continue;
      }
      f.bandwidth_bits_per_s = bw_mbps * 8.0e6;
      f.label = src + "->" + dst;
      spec.flows.push_back(std::move(f));
    } else if (cmd == "scenario") {
      std::string name;
      std::string frac_tok;
      if (!(ls >> name >> frac_tok)) {
        fail("scenario: expected <name> <time_fraction> <islands...>");
        continue;
      }
      soc::Scenario s;
      s.name = name;
      if (!parse_double(frac_tok, s.time_fraction)) {
        fail("scenario " + name + ": bad time fraction");
        continue;
      }
      s.island_active.assign(spec.islands.size(), false);
      std::string isl_name;
      bool bad = false;
      while (ls >> isl_name) {
        const auto it = island_of_name.find(isl_name);
        if (it == island_of_name.end()) {
          fail("scenario " + name + ": unknown island '" + isl_name + "'");
          bad = true;
          break;
        }
        s.island_active[static_cast<std::size_t>(it->second)] = true;
      }
      if (bad) continue;
      // Always-on islands are implicitly active.
      for (std::size_t i = 0; i < spec.islands.size(); ++i) {
        if (!spec.islands[i].can_shutdown) s.island_active[i] = true;
      }
      spec.scenarios.push_back(std::move(s));
    } else {
      fail("unknown directive '" + cmd + "'");
    }
  }

  if (result.errors.empty()) {
    for (const std::string& problem : spec.validate()) {
      result.errors.push_back({0, "spec invalid: " + problem});
    }
  }
  result.ok = result.errors.empty();
  return result;
}

ParseResult parse_soc_spec_string(const std::string& text) {
  std::istringstream in(text);
  return parse_soc_spec(in);
}

ParseResult parse_soc_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult r;
    r.errors.push_back({0, "cannot open file: " + path});
    return r;
  }
  return parse_soc_spec(in);
}

std::string write_soc_spec(const soc::SocSpec& spec) {
  std::ostringstream os;
  os << "soc " << spec.name << "\n\n";
  for (const soc::VoltageIsland& vi : spec.islands) {
    os << "island " << vi.name << ' ' << vi.vdd_v << ' '
       << (vi.can_shutdown ? "shutdown" : "always_on") << '\n';
  }
  os << '\n';
  for (const soc::CoreSpec& c : spec.cores) {
    os << "core " << c.name << ' ' << soc::to_string(c.kind) << ' '
       << spec.islands[static_cast<std::size_t>(c.island)].name << ' '
       << c.width_mm << ' ' << c.height_mm << ' ' << c.dynamic_power_w * 1e3
       << ' ' << c.leakage_power_w * 1e3 << ' ' << c.clock_hz / 1e6 << '\n';
  }
  os << '\n';
  for (const soc::Flow& f : spec.flows) {
    os << "flow " << spec.cores[static_cast<std::size_t>(f.src)].name << ' '
       << spec.cores[static_cast<std::size_t>(f.dst)].name << ' '
       << f.bandwidth_bits_per_s / 8.0e6 << ' ' << f.max_latency_cycles << '\n';
  }
  if (!spec.scenarios.empty()) os << '\n';
  for (const soc::Scenario& s : spec.scenarios) {
    os << "scenario " << s.name << ' ' << s.time_fraction;
    for (std::size_t i = 0; i < s.island_active.size(); ++i) {
      if (s.island_active[i]) os << ' ' << spec.islands[i].name;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace vinoc::io

#include "vinoc/io/shard_wire.hpp"

#include <fstream>
#include <map>

#include "vinoc/io/exports.hpp"
#include "vinoc/io/jsonl.hpp"

namespace vinoc::io {

namespace {

// Local 16-hex-digit key spelling. campaign::key_hex is the same format,
// but io sits below campaign in the module graph and cannot link it.
std::string hex16(std::uint64_t key) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[key & 0xF];
    key >>= 4;
  }
  return out;
}

bool hex16_parse(const std::string& text, std::uint64_t& key) {
  if (text.size() != 16) return false;
  key = 0;
  for (const char c : text) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    key = (key << 4) | static_cast<std::uint64_t>(digit);
  }
  return true;
}

const char* event_name(ShardEventType type) {
  switch (type) {
    case ShardEventType::kStart: return "start";
    case ShardEventType::kDone: return "done";
    case ShardEventType::kSummary: return "summary";
  }
  return "?";
}

}  // namespace

std::string encode_shard_event(const ShardEvent& event) {
  JsonlWriter w;
  w.field("ev", event_name(event.type));
  switch (event.type) {
    case ShardEventType::kStart:
      w.field("key", hex16(event.key));
      break;
    case ShardEventType::kDone:
      w.field("key", hex16(event.key));
      w.field("rec", event.payload);
      break;
    case ShardEventType::kSummary:
      w.field("metrics", event.payload);
      break;
  }
  return add_line_checksum(w.line());
}

std::optional<ShardEvent> decode_shard_event(const std::string& line) {
  std::string payload;
  if (verify_line_checksum(line, &payload) != ChecksumStatus::kOk) {
    return std::nullopt;  // torn, corrupt, or not one of ours
  }
  std::map<std::string, std::string> obj;
  if (!parse_jsonl_object(payload, obj)) return std::nullopt;
  const auto ev = obj.find("ev");
  if (ev == obj.end()) return std::nullopt;
  ShardEvent out;
  if (ev->second == "start" || ev->second == "done") {
    const auto key = obj.find("key");
    if (key == obj.end() || !hex16_parse(key->second, out.key)) {
      return std::nullopt;
    }
    if (ev->second == "start") {
      out.type = ShardEventType::kStart;
      return out;
    }
    const auto rec = obj.find("rec");
    if (rec == obj.end()) return std::nullopt;
    out.type = ShardEventType::kDone;
    out.payload = rec->second;
    return out;
  }
  if (ev->second == "summary") {
    const auto metrics = obj.find("metrics");
    if (metrics == obj.end()) return std::nullopt;
    out.type = ShardEventType::kSummary;
    out.payload = metrics->second;
    return out;
  }
  return std::nullopt;
}

bool write_shard_manifest(const std::string& path,
                          const std::vector<std::uint64_t>& keys) {
  std::string text;
  for (const std::uint64_t key : keys) {
    JsonlWriter w;
    w.field("key", hex16(key));
    text += add_line_checksum(w.line());
    text += '\n';
  }
  try {
    write_file(path, text);  // atomic temp + rename
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

std::optional<std::vector<std::uint64_t>> read_shard_manifest(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::vector<std::uint64_t> keys;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string payload;
    if (verify_line_checksum(line, &payload) != ChecksumStatus::kOk) {
      return std::nullopt;
    }
    std::map<std::string, std::string> obj;
    std::uint64_t key = 0;
    const auto parse_key = [&]() {
      if (!parse_jsonl_object(payload, obj)) return false;
      const auto it = obj.find("key");
      return it != obj.end() && hex16_parse(it->second, key);
    };
    if (!parse_key()) return std::nullopt;
    keys.push_back(key);
  }
  return keys;
}

}  // namespace vinoc::io

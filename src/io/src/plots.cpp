#include "vinoc/io/plots.hpp"

#include <sstream>
#include <stdexcept>

#include "vinoc/io/exports.hpp"

namespace vinoc::io {

std::string plot_data(const PlotSpec& plot) {
  std::ostringstream os;
  // One index block per series: robust for series with different x grids.
  for (const Series& s : plot.series) {
    os << "# series: " << s.name << '\n';
    for (const auto& [x, y] : s.points) {
      os << x << ' ' << y << '\n';
    }
    os << "\n\n";  // gnuplot index separator
  }
  return os.str();
}

std::string plot_script(const PlotSpec& plot, const std::string& data_file,
                        const std::string& png_file) {
  std::ostringstream os;
  os << "set terminal pngcairo size 800,560 enhanced\n";
  os << "set output '" << png_file << "'\n";
  os << "set title '" << plot.title << "'\n";
  os << "set xlabel '" << plot.xlabel << "'\n";
  os << "set ylabel '" << plot.ylabel << "'\n";
  os << "set grid\n";
  os << "set key left top\n";
  if (plot.x_log) os << "set logscale x\n";
  if (plot.y_log) os << "set logscale y\n";
  os << "plot ";
  for (std::size_t i = 0; i < plot.series.size(); ++i) {
    if (i > 0) os << ", \\\n     ";
    os << "'" << data_file << "' index " << i
       << " using 1:2 with linespoints title '" << plot.series[i].name << "'";
  }
  os << '\n';
  return os.str();
}

void write_plot(const std::string& base_path, const PlotSpec& plot) {
  if (plot.series.empty()) {
    throw std::runtime_error("write_plot: no series");
  }
  const std::string dat = base_path + ".dat";
  const std::string gp = base_path + ".gp";
  const std::string png = base_path + ".png";
  write_file(dat, plot_data(plot));
  write_file(gp, plot_script(plot, dat, png));
}

}  // namespace vinoc::io

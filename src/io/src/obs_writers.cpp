#include "vinoc/io/obs_writers.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "vinoc/io/jsonl.hpp"

namespace vinoc::io {
namespace {

/// Microsecond timestamp with millinanosecond digits: %.3f of ns/1000.0
/// renders the exact integer nanosecond, so the validator can reconstruct
/// ns losslessly (std::llround(us * 1000)).
std::string us_from_ns(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const obs::TraceSnapshot& snap) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (std::size_t tid = 0; tid < snap.thread_names.size(); ++tid) {
    std::string name = snap.thread_names[tid];
    if (name.empty()) name = tid == 0 ? "main" : "thread";
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const obs::TraceEvent& ev : snap.events) {
    sep();
    os << "{\"name\":\"" << json_escape(ev.name)
       << "\",\"ph\":\"X\",\"ts\":" << us_from_ns(ev.start_ns)
       << ",\"dur\":" << us_from_ns(ev.dur_ns) << ",\"pid\":1,\"tid\":"
       << ev.tid << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << snap.dropped_events << "}}\n";
}

bool write_chrome_trace_file(const std::string& path,
                             const obs::TraceSnapshot& snap) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os, snap);
  return static_cast<bool>(os);
}

namespace {

// --- Minimal JSON scanner for the validator ---------------------------------
// Handles full JSON value syntax (the writer only emits a subset, but the
// validator should reject malformed documents rather than misparse them).

std::size_t skip_ws(std::string_view s, std::size_t pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos;
}

constexpr std::size_t npos = std::string_view::npos;

std::size_t skip_string(std::string_view s, std::size_t pos) {
  if (pos >= s.size() || s[pos] != '"') return npos;
  for (++pos; pos < s.size(); ++pos) {
    if (s[pos] == '\\') {
      ++pos;  // skip the escaped char (sufficient for \" and \\ handling)
    } else if (s[pos] == '"') {
      return pos + 1;
    }
  }
  return npos;
}

std::size_t skip_value(std::string_view s, std::size_t pos);

std::size_t skip_container(std::string_view s, std::size_t pos, char open,
                           char close, bool keyed) {
  if (pos >= s.size() || s[pos] != open) return npos;
  pos = skip_ws(s, pos + 1);
  if (pos < s.size() && s[pos] == close) return pos + 1;
  for (;;) {
    if (keyed) {
      pos = skip_string(s, skip_ws(s, pos));
      if (pos == npos) return npos;
      pos = skip_ws(s, pos);
      if (pos >= s.size() || s[pos] != ':') return npos;
      ++pos;
    }
    pos = skip_value(s, skip_ws(s, pos));
    if (pos == npos) return npos;
    pos = skip_ws(s, pos);
    if (pos >= s.size()) return npos;
    if (s[pos] == close) return pos + 1;
    if (s[pos] != ',') return npos;
    ++pos;
  }
}

std::size_t skip_value(std::string_view s, std::size_t pos) {
  if (pos >= s.size()) return npos;
  const char c = s[pos];
  if (c == '"') return skip_string(s, pos);
  if (c == '{') return skip_container(s, pos, '{', '}', /*keyed=*/true);
  if (c == '[') return skip_container(s, pos, '[', ']', /*keyed=*/false);
  if (s.compare(pos, 4, "true") == 0) return pos + 4;
  if (s.compare(pos, 5, "false") == 0) return pos + 5;
  if (s.compare(pos, 4, "null") == 0) return pos + 4;
  // Number: [-]digits[.digits][eE...]
  std::size_t end = pos;
  if (end < s.size() && (s[end] == '-' || s[end] == '+')) ++end;
  const std::size_t digits_start = end;
  while (end < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[end])) || s[end] == '.' ||
          s[end] == 'e' || s[end] == 'E' || s[end] == '-' || s[end] == '+')) {
    ++end;
  }
  return end == digits_start ? npos : end;
}

/// Extracts top-level key -> raw-value-text of one JSON object.
bool parse_object_fields(std::string_view s,
                         std::map<std::string, std::string>& out,
                         std::size_t* end_pos) {
  std::size_t pos = skip_ws(s, 0);
  if (pos >= s.size() || s[pos] != '{') return false;
  pos = skip_ws(s, pos + 1);
  if (pos < s.size() && s[pos] == '}') {
    if (end_pos != nullptr) *end_pos = pos + 1;
    return true;
  }
  for (;;) {
    pos = skip_ws(s, pos);
    const std::size_t key_start = pos;
    pos = skip_string(s, pos);
    if (pos == npos) return false;
    const std::string key(s.substr(key_start + 1, pos - key_start - 2));
    pos = skip_ws(s, pos);
    if (pos >= s.size() || s[pos] != ':') return false;
    pos = skip_ws(s, pos + 1);
    const std::size_t val_start = pos;
    pos = skip_value(s, pos);
    if (pos == npos) return false;
    out[key] = std::string(s.substr(val_start, pos - val_start));
    pos = skip_ws(s, pos);
    if (pos >= s.size()) return false;
    if (s[pos] == '}') {
      if (end_pos != nullptr) *end_pos = pos + 1;
      return true;
    }
    if (s[pos] != ',') return false;
    ++pos;
  }
}

bool parse_number(const std::string& raw, double& out) {
  if (raw.empty()) return false;
  char* end = nullptr;
  out = std::strtod(raw.c_str(), &end);
  return end == raw.c_str() + raw.size();
}

struct OpenSpan {
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

}  // namespace

bool validate_chrome_trace(std::string_view json, std::string& error) {
  error.clear();
  auto fail = [&](std::string msg) {
    error = std::move(msg);
    return false;
  };

  std::map<std::string, std::string> top;
  if (!parse_object_fields(json, top, nullptr)) {
    return fail("malformed JSON document");
  }
  const auto events_it = top.find("traceEvents");
  if (events_it == top.end()) return fail("missing traceEvents array");
  const std::string_view arr = events_it->second;
  if (arr.empty() || arr.front() != '[') {
    return fail("traceEvents is not an array");
  }

  // Per-tid monotonicity + nesting state. Events for one tid must appear in
  // non-decreasing start order, and each must either nest inside or lie
  // entirely after every still-open predecessor.
  std::map<long long, std::vector<OpenSpan>> open_stacks;
  std::map<long long, std::int64_t> last_start;

  std::size_t pos = skip_ws(arr, 1);
  std::size_t index = 0;
  bool any_x = false;
  while (pos < arr.size() && arr[pos] != ']') {
    std::map<std::string, std::string> ev;
    std::size_t end = 0;
    if (!parse_object_fields(arr.substr(pos), ev, &end)) {
      return fail("malformed event object at index " + std::to_string(index));
    }
    pos = skip_ws(arr, pos + end);
    if (pos < arr.size() && arr[pos] == ',') pos = skip_ws(arr, pos + 1);

    const std::string at = " at event index " + std::to_string(index);
    ++index;
    const auto ph_it = ev.find("ph");
    if (ph_it == ev.end()) return fail("event missing ph" + at);
    if (ph_it->second == "\"M\"") continue;  // metadata (thread_name)
    if (ph_it->second != "\"X\"") {
      return fail("unexpected ph " + ph_it->second + at);
    }
    any_x = true;
    for (const char* req : {"name", "ts", "dur", "pid", "tid"}) {
      if (ev.find(req) == ev.end()) {
        return fail(std::string("event missing ") + req + at);
      }
    }
    if (ev["name"].empty() || ev["name"].front() != '"') {
      return fail("event name is not a string" + at);
    }
    double ts_us = 0.0;
    double dur_us = 0.0;
    double tid_d = 0.0;
    if (!parse_number(ev["ts"], ts_us) || ts_us < 0.0) {
      return fail("bad ts " + ev["ts"] + at);
    }
    if (!parse_number(ev["dur"], dur_us) || dur_us < 0.0) {
      return fail("bad dur " + ev["dur"] + at);
    }
    if (!parse_number(ev["tid"], tid_d)) return fail("bad tid " + ev["tid"] + at);
    const auto tid = static_cast<long long>(tid_d);
    const auto start_ns = std::llround(ts_us * 1000.0);
    const auto end_ns = start_ns + std::llround(dur_us * 1000.0);

    const auto last_it = last_start.find(tid);
    if (last_it != last_start.end() && start_ns < last_it->second) {
      return fail("non-monotone ts on tid " + std::to_string(tid) + at);
    }
    last_start[tid] = start_ns;

    auto& stack = open_stacks[tid];
    while (!stack.empty() && stack.back().end_ns <= start_ns) stack.pop_back();
    if (!stack.empty() && end_ns > stack.back().end_ns) {
      return fail("partially overlapping spans on tid " + std::to_string(tid) +
                  at);
    }
    stack.push_back(OpenSpan{start_ns, end_ns});
  }
  if (pos >= arr.size()) return fail("unterminated traceEvents array");
  if (!any_x) return fail("trace contains no spans");
  return true;
}

std::string registry_record(std::string_view record_name,
                            const obs::Registry& registry) {
  JsonlWriter w;
  if (!record_name.empty()) w.field("record", record_name);
  for (const obs::Registry::Entry& e : registry.entries()) {
    w.field(e.name, e.value);
  }
  for (const std::string& name : registry.histogram_names()) {
    const obs::Histogram* h = registry.histogram(name);
    w.field(name + "_count", h->count)
        .field(name + "_sum", h->sum)
        .field(name + "_max", h->max);
  }
  for (const std::string& name : registry.gauge_names()) {
    w.field(name, registry.gauge(name));
  }
  return w.line();
}

std::string phase_profile_record(const obs::PhaseTotals& totals) {
  JsonlWriter w;
  w.field("record", "phase_profile");
  double total_wall = 0.0;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    total_wall += static_cast<double>(totals.phase[i].wall_ns) * 1e-9;
  }
  w.field("total_wall_s", total_wall);
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const std::string name = obs::phase_name(static_cast<obs::Phase>(i));
    const auto& p = totals.phase[i];
    w.field(name + "_wall_s", static_cast<double>(p.wall_ns) * 1e-9)
        .field(name + "_cpu_s", static_cast<double>(p.cpu_ns) * 1e-9)
        .field(name + "_scopes", p.enters);
  }
  return w.line();
}

}  // namespace vinoc::io

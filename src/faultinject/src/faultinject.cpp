#include "vinoc/faultinject/faultinject.hpp"

#include <array>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <thread>

namespace vinoc::faultinject {

namespace {

struct SiteState {
  // rate is stored as a 64-bit threshold (rate * 2^64, saturated) so the
  // fire decision is one integer compare against the hash — no float
  // rounding at rate 1.0.
  std::uint64_t threshold = 0;
  std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max();
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
};

std::array<SiteState, static_cast<std::size_t>(Site::kCount)> g_sites;
std::atomic<bool> g_armed{false};
std::uint64_t g_seed = 1;
std::atomic<int> g_stall_ms{10};

SiteState& state(Site site) {
  return g_sites[static_cast<std::size_t>(site)];
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool parse_site(const std::string& name, Site& out) {
  for (int s = 0; s < static_cast<int>(Site::kCount); ++s) {
    if (name == site_name(static_cast<Site>(s))) {
      out = static_cast<Site>(s);
      return true;
    }
  }
  return false;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

const char* site_name(Site site) {
  switch (site) {
    case Site::kStoreWrite: return "store_write";
    case Site::kEval: return "eval";
    case Site::kEvalStall: return "eval_stall";
    case Site::kShardCrash: return "shard_crash";
    case Site::kShardStall: return "shard_stall";
    case Site::kHeartbeatDrop: return "heartbeat_drop";
    case Site::kCount: break;
  }
  return "?";
}

bool armed() { return g_armed.load(std::memory_order_relaxed); }

void reset() {
  g_armed.store(false, std::memory_order_relaxed);
  for (SiteState& s : g_sites) {
    s.threshold = 0;
    s.max_fires = std::numeric_limits<std::uint64_t>::max();
    s.hits.store(0, std::memory_order_relaxed);
    s.fires.store(0, std::memory_order_relaxed);
  }
}

void set_stall_ms(int ms) { g_stall_ms.store(ms, std::memory_order_relaxed); }

bool configure(const std::string& spec, std::uint64_t seed,
               std::string* error) {
  reset();
  g_seed = seed;
  if (spec.empty()) return true;
  std::size_t pos = 0;
  bool any = false;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      return fail(error, "faultinject: empty entry in spec '" + spec + "'");
    }
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return fail(error, "faultinject: missing ':rate' in '" + entry + "'");
    }
    Site site = Site::kCount;
    if (!parse_site(entry.substr(0, colon), site)) {
      return fail(error,
                  "faultinject: unknown site '" + entry.substr(0, colon) + "'");
    }
    std::string rate_text = entry.substr(colon + 1);
    std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max();
    const std::size_t at = rate_text.find('@');
    if (at != std::string::npos) {
      const std::string cap_text = rate_text.substr(at + 1);
      rate_text = rate_text.substr(0, at);
      char* end = nullptr;
      max_fires = std::strtoull(cap_text.c_str(), &end, 10);
      if (cap_text.empty() || end != cap_text.c_str() + cap_text.size()) {
        return fail(error, "faultinject: bad fire cap '" + cap_text + "'");
      }
    }
    char* end = nullptr;
    const double rate = std::strtod(rate_text.c_str(), &end);
    if (rate_text.empty() || end != rate_text.c_str() + rate_text.size() ||
        rate < 0.0 || rate > 1.0) {
      return fail(error, "faultinject: rate '" + rate_text +
                             "' not a number in [0,1]");
    }
    SiteState& s = state(site);
    s.threshold = rate >= 1.0 ? std::numeric_limits<std::uint64_t>::max()
                              : static_cast<std::uint64_t>(
                                    rate * 18446744073709551616.0 /* 2^64 */);
    s.max_fires = max_fires;
    any = any || rate > 0.0;
  }
  g_armed.store(any, std::memory_order_relaxed);
  return true;
}

void configure_from_env() {
  const char* spec = std::getenv("VINOC_FAULT");
  const char* seed_text = std::getenv("VINOC_FAULT_SEED");
  const char* stall_text = std::getenv("VINOC_FAULT_STALL_MS");
  std::uint64_t seed = 1;
  if (seed_text != nullptr) seed = std::strtoull(seed_text, nullptr, 10);
  if (stall_text != nullptr) set_stall_ms(std::atoi(stall_text));
  std::string error;
  if (!configure(spec != nullptr ? spec : "", seed, &error)) {
    throw std::invalid_argument(error);
  }
}

bool should_fire(Site site) {
  SiteState& s = state(site);
  const std::uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed);
  if (s.threshold == 0) return false;
  if (s.threshold != std::numeric_limits<std::uint64_t>::max()) {
    const std::uint64_t h = splitmix64(
        g_seed * 0x2545f4914f6cdd1dull ^
        (static_cast<std::uint64_t>(site) << 56) ^ hit);
    if (h >= s.threshold) return false;
  }
  // Reserve a fire slot; losing the cap race means not firing.
  std::uint64_t fired = s.fires.load(std::memory_order_relaxed);
  do {
    if (fired >= s.max_fires) return false;
  } while (!s.fires.compare_exchange_weak(fired, fired + 1,
                                          std::memory_order_relaxed));
  return true;
}

void maybe_stall(Site site) {
  if (!armed() || !should_fire(site)) return;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(g_stall_ms.load(std::memory_order_relaxed)));
}

std::uint64_t hit_count(Site site) {
  return state(site).hits.load(std::memory_order_relaxed);
}

std::uint64_t fire_count(Site site) {
  return state(site).fires.load(std::memory_order_relaxed);
}

}  // namespace vinoc::faultinject

// Deterministic fault injection — the chaos-testing backbone.
//
// Every injection point is a named SITE compiled into a hot path (an eval
// throw, a store-write failure, an artificial stall). Sites are inert until
// armed through configure() or the environment:
//
//   VINOC_FAULT="eval:0.1,store_write:1@2"   site:rate[@max_fires], comma-sep
//   VINOC_FAULT_SEED=7                        decision-stream seed (default 1)
//   VINOC_FAULT_STALL_MS=50                   stall duration (default 10)
//
// Decisions are DETERMINISTIC: the n-th hit of a site fires iff
// splitmix64(seed, site, n) < rate — independent of threading, wall clock
// or address layout — so a chaos test that fails replays exactly with the
// same seed. `rate 1` always fires; `@N` stops after N fires, which is how
// tests script "fail the first attempt, then succeed" for retry coverage.
//
// The disarmed fast path is one relaxed atomic load, so production builds
// keep the sites compiled in (no macro soup, no perf tax worth measuring
// next to a millisecond-scale candidate evaluation).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace vinoc::faultinject {

/// Thrown by maybe_fail(). Deliberately a plain runtime_error subclass: the
/// supervision layer must classify it as a TRANSIENT failure exactly like a
/// real I/O error, not special-case injected ones.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class Site : int {
  kStoreWrite = 0,  ///< ResultCache::put_record disk append
  kEval,            ///< candidate evaluation (throws)
  kEvalStall,       ///< candidate evaluation (sleeps, for kill-window tests)
  kShardCrash,      ///< campaign worker: SIGKILLs itself at a job start —
                    ///< simulates a hard crash (OOM kill, segfault) for the
                    ///< shard supervisor's respawn/reassign machinery
  kShardStall,      ///< campaign worker: stalls at a job start without any
                    ///< cooperative cancel poll — only the supervisor's
                    ///< heartbeat watchdog can reclaim the shard
  kHeartbeatDrop,   ///< campaign worker: swallows one status line — tests
                    ///< the supervisor's tolerance of lost heartbeats
  kCount
};

/// Canonical spec name of a site ("store_write", "eval", "eval_stall",
/// "shard_crash", "shard_stall", "heartbeat_drop").
[[nodiscard]] const char* site_name(Site site);

/// True once any site has a non-zero rate (one relaxed atomic load).
[[nodiscard]] bool armed();

/// Arms sites from a spec string (see file header). Empty spec = disarm.
/// Returns false (and fills *error when non-null) on a malformed spec;
/// previously armed state is cleared either way.
bool configure(const std::string& spec, std::uint64_t seed,
               std::string* error = nullptr);

/// configure() from VINOC_FAULT / VINOC_FAULT_SEED / VINOC_FAULT_STALL_MS.
/// Unset VINOC_FAULT = disarmed. Throws std::invalid_argument on a
/// malformed value (a chaos run with a typoed spec must not silently run
/// fault-free).
void configure_from_env();

/// Disarms every site and resets hit/fire counters.
void reset();

/// Stall duration used by maybe_stall (configure_from_env reads
/// VINOC_FAULT_STALL_MS).
void set_stall_ms(int ms);

/// Records a hit at `site` and returns whether it fires this time.
[[nodiscard]] bool should_fire(Site site);

/// Throws InjectedFault{what} when the site fires.
inline void maybe_fail(Site site, const char* what) {
  if (armed() && should_fire(site)) {
    throw InjectedFault(std::string("injected fault at ") + site_name(site) +
                        ": " + what);
  }
}

/// Sleeps for the configured stall when the site fires.
void maybe_stall(Site site);

/// Total hits / fires observed at `site` since the last configure()/reset().
[[nodiscard]] std::uint64_t hit_count(Site site);
[[nodiscard]] std::uint64_t fire_count(Site site);

}  // namespace vinoc::faultinject

// Core-to-voltage-island assignment strategies.
//
// The paper (Section 5) studies two ways of grouping the D26 cores into VIs,
// with the island count swept from 1 (reference: everything in one island)
// to 26 (every core its own island):
//   * "logical partitioning": cores grouped by functionality — e.g. all
//     shared memories in one island (which is then never shut down, since
//     shared memories must stay reachable);
//   * "communication based partitioning": cores with high mutual bandwidth
//     grouped together, so heavy flows stay inside an island.
//
// The island assignment is an *input* to topology synthesis; these helpers
// just build the input variants the experiments sweep over.
#pragma once

#include <string>
#include <vector>

#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::soc {

/// Device-level use case expressed on cores (islanding-independent). The
/// islanding helpers translate these into SocSpec::scenarios.
struct UseCase {
  std::string name;
  double time_fraction = 0.0;
  std::vector<std::string> active_cores;
};

/// Ordered functional groups used by logical partitioning; adjacent groups
/// merge first when the island count is smaller than the group count.
/// Group 0 (shared memories) yields a non-shutdown island.
[[nodiscard]] int logical_group_of(CoreKind kind);
[[nodiscard]] int logical_group_count();

/// Rebuilds `base` with `island_count` islands assigned by functionality.
/// island_count == core_count() puts every core in its own island.
/// The island containing shared memories (and the single island when
/// island_count == 1) is marked can_shutdown = false.
[[nodiscard]] SocSpec with_logical_islands(const SocSpec& base, int island_count,
                                           const std::vector<UseCase>& use_cases = {});

/// Rebuilds `base` with `island_count` islands by agglomerative clustering of
/// the core communication graph (heaviest-bandwidth pairs merge first).
[[nodiscard]] SocSpec with_communication_islands(
    const SocSpec& base, int island_count,
    const std::vector<UseCase>& use_cases = {});

/// Rebuilds `base` using an explicit assignment (size core_count(), values in
/// [0, island_count)). Used by tests and the text-format loader.
[[nodiscard]] SocSpec with_explicit_islands(const SocSpec& base,
                                            const std::vector<int>& island_of,
                                            int island_count,
                                            const std::vector<UseCase>& use_cases = {});

}  // namespace vinoc::soc

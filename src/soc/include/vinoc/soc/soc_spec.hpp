// SoC specification: cores, voltage islands, traffic flows, use-case
// scenarios. This is the input to the topology synthesis (the paper's
// Figure 1 "Example Input"): the assignment of cores to VIs is part of the
// input, not something the synthesizer decides.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "vinoc/graph/digraph.hpp"

namespace vinoc::soc {

/// Functional class of a core; drives logical partitioning and the synthetic
/// benchmark generator's traffic patterns.
enum class CoreKind {
  kCpu,
  kDsp,
  kGpu,
  kCache,
  kMemory,         ///< on-chip SRAM (often shared => non-shutdown island)
  kMemController,  ///< off-chip DRAM controller
  kDma,
  kVideo,     ///< video decode/encode engines
  kImaging,   ///< ISP / camera pipeline blocks
  kDisplay,
  kAudio,
  kModem,     ///< baseband / RF digital front ends
  kCrypto,
  kPeripheral,  ///< low-bandwidth I/O (UART, SPI, I2C, GPIO, timers, ...)
  kOther,
};

[[nodiscard]] const char* to_string(CoreKind kind);

using CoreId = std::int32_t;
using IslandId = std::int32_t;

/// A hard IP block attached to the NoC through one network interface.
struct CoreSpec {
  std::string name;
  CoreKind kind = CoreKind::kOther;
  IslandId island = 0;
  /// Block dimensions for floorplanning [mm].
  double width_mm = 1.0;
  double height_mm = 1.0;
  /// Core-internal power, used for SoC-level overhead accounting (the NoC
  /// overhead claims are relative to *total* SoC power/area).
  double dynamic_power_w = 0.0;
  double leakage_power_w = 0.0;
  /// Core clock [Hz] (NIs do the conversion to the island's NoC clock).
  double clock_hz = 200e6;
};

/// A point-to-point traffic flow with its QoS constraints (Definition 1's
/// bw_{i,j} and lat_{i,j}).
struct Flow {
  CoreId src = 0;
  CoreId dst = 0;
  double bandwidth_bits_per_s = 0.0;
  /// Zero-load latency budget, in NoC cycles, NI output to NI input.
  double max_latency_cycles = 50.0;
  std::string label;
};

/// A voltage island: cores sharing VDD/ground rails, gated as a unit.
struct VoltageIsland {
  std::string name;
  double vdd_v = 1.0;
  /// Shared-service islands (e.g. shared memories) are never shut down.
  bool can_shutdown = true;
};

/// A use-case scenario for shutdown accounting: which islands are active and
/// what fraction of device time the scenario covers.
struct Scenario {
  std::string name;
  double time_fraction = 0.0;
  std::vector<bool> island_active;  ///< indexed by IslandId
};

/// The full synthesis input.
struct SocSpec {
  std::string name;
  std::vector<CoreSpec> cores;
  std::vector<VoltageIsland> islands;
  std::vector<Flow> flows;
  std::vector<Scenario> scenarios;  ///< optional; used by vinoc::power

  [[nodiscard]] std::size_t core_count() const { return cores.size(); }
  [[nodiscard]] std::size_t island_count() const { return islands.size(); }

  /// Cores assigned to a given island, in core-id order.
  [[nodiscard]] std::vector<CoreId> cores_in_island(IslandId island) const;

  /// Directed core-to-core communication graph; edge weight = bandwidth in
  /// bits/s, Edge::user = flow index.
  [[nodiscard]] graph::Digraph core_graph() const;

  /// Sum of per-core dynamic / leakage power [W].
  [[nodiscard]] double total_core_dynamic_w() const;
  [[nodiscard]] double total_core_leakage_w() const;
  /// Sum of core block areas [mm^2].
  [[nodiscard]] double total_core_area_mm2() const;

  [[nodiscard]] CoreId find_core(std::string_view name) const;

  /// Validates invariants; returns a list of human-readable problems
  /// (empty = valid): island ids in range, flows reference existing cores,
  /// no self-flows, positive bandwidths/latencies, scenario vectors sized,
  /// scenario fractions <= 1, names unique and non-empty.
  [[nodiscard]] std::vector<std::string> validate() const;
};

}  // namespace vinoc::soc

// Reconstructed SoC benchmarks.
//
// The paper evaluates on an industrial 26-core mobile communication +
// multimedia SoC ("several processors, DSPs, caches, DMA controller,
// integrated memory, video decoder engines and a multitude of peripheral I/O
// ports") plus "a variety of SoC benchmarks", none of which are public. The
// specs here are reconstructions: core mixes, traffic structure (few heavy
// memory/multimedia flows + many light control flows) and power/area budgets
// follow the paper's narrative and typical published SoC numbers of that
// era. DESIGN.md documents the substitution.
//
// Every benchmark is returned with a single voltage island (the paper's
// 1-island reference point); experiments re-island it via vinoc/soc/islanding.
#pragma once

#include <string>
#include <vector>

#include "vinoc/soc/islanding.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::soc {

/// A benchmark: the single-island SoC plus its device-level use cases
/// (needed by the shutdown-savings accounting).
struct Benchmark {
  SocSpec soc;                     ///< islands = {1 island, non-shutdown}
  std::vector<UseCase> use_cases;  ///< time fractions sum to <= 1
};

/// D26: 26-core mobile communication & multimedia SoC — the paper's main
/// case study (Figures 2-5). Host CPU + L2, audio/baseband DSPs, 2D GPU,
/// video decode pipeline, imaging, display, modem/GPS, crypto, DMA, on-chip
/// SRAMs + DRAM controller, and peripheral I/O.
Benchmark make_d26_media_soc();

/// D16: 16-core automotive control SoC (lockstep CPUs, CAN/LIN peripherals,
/// sensor fusion DSP). Small, latency-tight flows.
Benchmark make_d16_auto_soc();

/// D36: 36-core set-top/TV SoC (dual CPU, video decode/encode, transport
/// stream demux, scaler, HDMI, Ethernet). Heavier multimedia traffic.
Benchmark make_d36_settop_soc();

/// D64: 64-core tiled compute fabric (16 clusters of CPU+SRAM+DMA around a
/// shared DRAM spine); stresses the synthesizer's scalability.
Benchmark make_d64_tile_soc();

/// D24: 24-core imaging/drone SoC (stereo camera pipes, optical flow, CNN
/// accelerator, flight-control CPU). Streaming-pipeline-heavy traffic with
/// tight latency budgets on the control loop.
Benchmark make_d24_imaging_soc();

/// All named benchmarks above, in a fixed order (used by the overhead table).
std::vector<Benchmark> all_benchmarks();

/// Parameters for the synthetic SoC generator.
struct SyntheticParams {
  int cores = 24;
  /// Number of "hub" cores (memories/controllers) that attract traffic.
  int hubs = 3;
  /// Average outgoing flows per non-hub core (>= 1; each core always talks
  /// to at least one hub).
  double flows_per_core = 2.0;
  /// Heavy-flow bandwidth range [bits/s]; automatically scaled down when
  /// many clients share a hub so the hub's NI link stays realizable.
  double hub_bw_lo = 1.6e9;
  double hub_bw_hi = 6.4e9;
  /// Peer-flow bandwidth range [bits/s].
  double peer_bw_lo = 0.08e9;
  double peer_bw_hi = 1.6e9;
  double latency_budget_cycles = 25.0;
  unsigned seed = 7;
};

/// Deterministic synthetic SoC with hub-and-spoke + peer traffic, sized so
/// the NoC is a few percent of SoC power (like real designs).
Benchmark make_synthetic_soc(const SyntheticParams& params);

/// Deterministic seeded perturbation of a synthetic parameter set — the unit
/// of a SCENARIO FAMILY: `base` plus variants 1..N span a neighbourhood of
/// the same design (jittered generator seed, flows per core, hub/peer
/// bandwidth ranges and latency budget, all within ±25%), so a batch sweep
/// can stress the synthesizer on "the same SoC, slightly different" inputs.
/// Pure function of (base, variant) — a splitmix64 stream seeded from both —
/// so re-running a campaign reproduces every family member exactly.
/// variant == 0 returns `base` unchanged.
[[nodiscard]] SyntheticParams perturb_synthetic_params(
    const SyntheticParams& base, unsigned variant);

}  // namespace vinoc::soc

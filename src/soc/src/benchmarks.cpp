#include "vinoc/soc/benchmarks.hpp"

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>

namespace vinoc::soc {

namespace {

constexpr double kMBps = 8.0e6;  ///< bits/s per MB/s

/// Leakage calibration: the per-core leak_mw figures below are scaled so
/// that chip-level leakage lands at ~40-45% of total power under full
/// activity, matching the 65 nm-era figure the paper cites ([6]: "leakage
/// power can be responsible for 40% or more of the total system power").
constexpr double kLeakageCalibration = 1.6;

/// Appends a core; power given in mW, clock in MHz for readability.
CoreId add_core(SocSpec& soc, std::string name, CoreKind kind, double w_mm,
                double h_mm, double dyn_mw, double leak_mw, double clock_mhz) {
  CoreSpec c;
  c.name = std::move(name);
  c.kind = kind;
  c.island = 0;
  c.width_mm = w_mm;
  c.height_mm = h_mm;
  c.dynamic_power_w = dyn_mw * 1e-3;
  c.leakage_power_w = leak_mw * kLeakageCalibration * 1e-3;
  c.clock_hz = clock_mhz * 1e6;
  soc.cores.push_back(std::move(c));
  return static_cast<CoreId>(soc.cores.size()) - 1;
}

/// Appends a flow by core name; bandwidth in MB/s.
void add_flow(SocSpec& soc, const std::string& src, const std::string& dst,
              double mbps, double lat_cycles) {
  const CoreId s = soc.find_core(src);
  const CoreId d = soc.find_core(dst);
  if (s < 0 || d < 0) {
    throw std::logic_error("benchmark flow references unknown core: " + src +
                           " -> " + dst);
  }
  Flow f;
  f.src = s;
  f.dst = d;
  f.bandwidth_bits_per_s = mbps * kMBps;
  f.max_latency_cycles = lat_cycles;
  f.label = src + "->" + dst;
  soc.flows.push_back(std::move(f));
}

void add_bidir(SocSpec& soc, const std::string& a, const std::string& b,
               double mbps_ab, double mbps_ba, double lat_cycles) {
  add_flow(soc, a, b, mbps_ab, lat_cycles);
  add_flow(soc, b, a, mbps_ba, lat_cycles);
}

SocSpec single_island_shell(std::string name) {
  SocSpec soc;
  soc.name = std::move(name);
  VoltageIsland vi;
  vi.name = "VI0";
  vi.vdd_v = 1.0;
  vi.can_shutdown = false;
  soc.islands.push_back(std::move(vi));
  return soc;
}

}  // namespace

Benchmark make_d26_media_soc() {
  SocSpec soc = single_island_shell("d26_media");

  // --- Cores (26) ----------------------------------------------------------
  // name               kind                 w    h    dyn_mW leak_mW  MHz
  add_core(soc, "arm_cpu",     CoreKind::kCpu,        2.2, 2.2, 480, 190, 600);
  add_core(soc, "l2_cache",    CoreKind::kCache,      1.8, 1.8, 140,  90, 600);
  add_core(soc, "dsp_audio",   CoreKind::kDsp,        1.5, 1.5, 110,  45, 300);
  add_core(soc, "dsp_baseband",CoreKind::kDsp,        1.7, 1.7, 170,  70, 400);
  add_core(soc, "gpu2d",       CoreKind::kGpu,        1.8, 1.8, 180,  80, 300);
  add_core(soc, "video_dec",   CoreKind::kVideo,      2.0, 2.0, 240, 100, 250);
  add_core(soc, "video_post",  CoreKind::kVideo,      1.4, 1.4,  90,  40, 250);
  add_core(soc, "isp",         CoreKind::kImaging,    1.6, 1.6, 140,  60, 250);
  add_core(soc, "camera_if",   CoreKind::kImaging,    0.8, 0.8,  35,  15, 200);
  add_core(soc, "display_ctrl",CoreKind::kDisplay,    1.2, 1.2,  80,  35, 200);
  add_core(soc, "audio_io",    CoreKind::kAudio,      0.7, 0.7,  20,   8, 100);
  add_core(soc, "modem",       CoreKind::kModem,      2.4, 2.4, 300, 130, 400);
  add_core(soc, "gps",         CoreKind::kModem,      1.0, 1.0,  60,  25, 200);
  add_core(soc, "crypto",      CoreKind::kCrypto,     0.9, 0.9,  55,  22, 300);
  add_core(soc, "dma",         CoreKind::kDma,        0.8, 0.8,  45,  18, 400);
  add_core(soc, "sram0",       CoreKind::kMemory,     1.4, 1.4,  35,  60, 400);
  add_core(soc, "sram1",       CoreKind::kMemory,     1.4, 1.4,  35,  60, 400);
  add_core(soc, "sram2",       CoreKind::kMemory,     1.2, 1.2,  28,  48, 300);
  add_core(soc, "dram_ctrl",   CoreKind::kMemController, 1.6, 1.6, 160, 70, 400);
  add_core(soc, "boot_rom",    CoreKind::kMemory,     0.8, 0.8,   8,  10, 200);
  add_core(soc, "usb",         CoreKind::kPeripheral, 0.9, 0.9,  40,  16, 120);
  add_core(soc, "sdcard",      CoreKind::kPeripheral, 0.7, 0.7,  25,  10, 100);
  add_core(soc, "uart",        CoreKind::kPeripheral, 0.4, 0.4,   5,   2, 100);
  add_core(soc, "spi",         CoreKind::kPeripheral, 0.4, 0.4,   6,   2, 100);
  add_core(soc, "i2c",         CoreKind::kPeripheral, 0.4, 0.4,   5,   2, 100);
  add_core(soc, "gpio_timer",  CoreKind::kPeripheral, 0.5, 0.5,   8,   3, 100);

  // --- Flows ---------------------------------------------------------------
  // Memory hierarchy (heavy, tight latency). The DRAM controller is the
  // traffic hub; its aggregate inbound bandwidth (~3.1 GB/s) sets the
  // fastest island clock (~800 MHz at 32-bit links).
  add_bidir(soc, "arm_cpu", "l2_cache", 1600, 1600, 14);
  add_bidir(soc, "l2_cache", "dram_ctrl", 700, 700, 16);
  add_bidir(soc, "arm_cpu", "sram0", 400, 400, 16);
  add_flow(soc, "boot_rom", "arm_cpu", 90, 30);

  // Video decode pipeline.
  add_bidir(soc, "video_dec", "dram_ctrl", 900, 420, 16);
  add_flow(soc, "video_dec", "video_post", 760, 16);
  add_flow(soc, "video_post", "dram_ctrl", 200, 18);
  add_flow(soc, "video_post", "display_ctrl", 640, 16);
  add_flow(soc, "dram_ctrl", "display_ctrl", 640, 16);
  add_bidir(soc, "gpu2d", "dram_ctrl", 380, 350, 16);
  add_flow(soc, "gpu2d", "display_ctrl", 240, 18);

  // Imaging pipeline.
  add_flow(soc, "camera_if", "isp", 620, 16);
  add_flow(soc, "isp", "sram1", 420, 16);
  add_bidir(soc, "isp", "dram_ctrl", 350, 150, 16);

  // Audio + baseband.
  add_bidir(soc, "dsp_audio", "sram2", 210, 210, 16);
  add_bidir(soc, "dsp_audio", "audio_io", 48, 48, 24);
  add_bidir(soc, "dsp_baseband", "modem", 310, 310, 14);
  add_bidir(soc, "dsp_baseband", "sram2", 260, 260, 16);
  add_flow(soc, "gps", "dsp_baseband", 36, 24);
  add_bidir(soc, "modem", "dram_ctrl", 180, 120, 18);

  // Crypto + DMA-driven I/O.
  add_bidir(soc, "crypto", "dram_ctrl", 150, 150, 18);
  add_flow(soc, "arm_cpu", "crypto", 90, 20);
  add_bidir(soc, "dma", "dram_ctrl", 300, 300, 16);
  add_flow(soc, "dma", "sram0", 210, 16);
  add_bidir(soc, "dma", "usb", 150, 150, 22);
  add_bidir(soc, "dma", "sdcard", 190, 190, 22);

  // CPU control plane (light, relaxed latency).
  add_flow(soc, "arm_cpu", "video_dec", 48, 26);
  add_flow(soc, "arm_cpu", "isp", 24, 26);
  add_flow(soc, "arm_cpu", "modem", 40, 26);
  add_flow(soc, "arm_cpu", "display_ctrl", 22, 26);
  add_flow(soc, "arm_cpu", "dsp_audio", 20, 26);
  add_flow(soc, "arm_cpu", "dsp_baseband", 24, 26);
  add_flow(soc, "arm_cpu", "gpu2d", 96, 24);
  add_flow(soc, "arm_cpu", "dma", 48, 24);
  add_bidir(soc, "arm_cpu", "uart", 4, 4, 40);
  add_bidir(soc, "arm_cpu", "spi", 18, 18, 40);
  add_bidir(soc, "arm_cpu", "i2c", 4, 4, 40);
  add_bidir(soc, "arm_cpu", "gpio_timer", 6, 6, 40);
  add_flow(soc, "usb", "arm_cpu", 24, 30);
  add_flow(soc, "gps", "arm_cpu", 8, 40);

  // --- Use cases -------------------------------------------------------------
  Benchmark bench;
  bench.use_cases = {
      // Suspend-to-RAM: even the host CPU island is power-collapsed; the
      // always-on memory island self-refreshes and GPIO/timers wake the chip.
      {"idle", 0.40, {"sram0", "dram_ctrl", "gpio_timer"}},
      {"audio_playback", 0.20,
       {"arm_cpu", "l2_cache", "sram0", "sram2", "dram_ctrl", "dsp_audio",
        "audio_io", "sdcard", "dma"}},
      {"video_playback", 0.15,
       {"arm_cpu", "l2_cache", "sram0", "dram_ctrl", "video_dec", "video_post",
        "display_ctrl", "gpu2d", "dsp_audio", "audio_io", "dma"}},
      {"camera", 0.10,
       {"arm_cpu", "l2_cache", "sram0", "sram1", "dram_ctrl", "camera_if",
        "isp", "display_ctrl", "gpu2d", "dma"}},
      {"voice_call", 0.15,
       {"arm_cpu", "l2_cache", "sram0", "sram2", "dram_ctrl", "modem",
        "dsp_baseband", "dsp_audio", "audio_io", "crypto"}},
  };
  bench.soc = std::move(soc);
  return bench;
}

Benchmark make_d16_auto_soc() {
  SocSpec soc = single_island_shell("d16_auto");

  add_core(soc, "cpu_lock0",  CoreKind::kCpu,        1.8, 1.8, 320, 120, 400);
  add_core(soc, "cpu_lock1",  CoreKind::kCpu,        1.8, 1.8, 320, 120, 400);
  add_core(soc, "safety_mgr", CoreKind::kOther,      0.8, 0.8,  40,  15, 200);
  add_core(soc, "sensor_dsp", CoreKind::kDsp,        1.5, 1.5, 150,  60, 300);
  add_core(soc, "radar_if",   CoreKind::kImaging,    1.0, 1.0,  70,  28, 250);
  add_core(soc, "can0",       CoreKind::kPeripheral, 0.5, 0.5,  10,   4, 100);
  add_core(soc, "can1",       CoreKind::kPeripheral, 0.5, 0.5,  10,   4, 100);
  add_core(soc, "lin",        CoreKind::kPeripheral, 0.4, 0.4,   6,   2, 100);
  add_core(soc, "flexray",    CoreKind::kPeripheral, 0.6, 0.6,  18,   7, 150);
  add_core(soc, "eth_avb",    CoreKind::kPeripheral, 0.8, 0.8,  45,  18, 200);
  add_core(soc, "sram_a",     CoreKind::kMemory,     1.2, 1.2,  30,  50, 400);
  add_core(soc, "sram_b",     CoreKind::kMemory,     1.2, 1.2,  30,  50, 400);
  add_core(soc, "flash_ctrl", CoreKind::kMemController, 1.0, 1.0, 60, 25, 200);
  add_core(soc, "dma",        CoreKind::kDma,        0.7, 0.7,  35,  14, 300);
  add_core(soc, "crypto_hsm", CoreKind::kCrypto,     0.9, 0.9,  50,  20, 300);
  add_core(soc, "gpio_timer", CoreKind::kPeripheral, 0.5, 0.5,   8,   3, 100);

  add_bidir(soc, "cpu_lock0", "sram_a", 640, 640, 12);
  add_bidir(soc, "cpu_lock1", "sram_a", 640, 640, 12);
  add_bidir(soc, "cpu_lock0", "flash_ctrl", 160, 80, 18);
  add_bidir(soc, "cpu_lock1", "flash_ctrl", 160, 80, 18);
  add_flow(soc, "cpu_lock0", "safety_mgr", 24, 16);
  add_flow(soc, "cpu_lock1", "safety_mgr", 24, 16);
  add_bidir(soc, "sensor_dsp", "sram_b", 420, 420, 14);
  add_flow(soc, "radar_if", "sensor_dsp", 380, 14);
  add_flow(soc, "sensor_dsp", "cpu_lock0", 120, 16);
  add_bidir(soc, "dma", "sram_b", 260, 260, 16);
  add_bidir(soc, "dma", "eth_avb", 180, 180, 20);
  add_bidir(soc, "cpu_lock0", "can0", 6, 6, 30);
  add_bidir(soc, "cpu_lock0", "can1", 6, 6, 30);
  add_bidir(soc, "cpu_lock1", "lin", 3, 3, 36);
  add_bidir(soc, "cpu_lock1", "flexray", 14, 14, 26);
  add_bidir(soc, "crypto_hsm", "sram_a", 90, 90, 20);
  add_flow(soc, "cpu_lock0", "crypto_hsm", 36, 22);
  add_flow(soc, "eth_avb", "cpu_lock1", 60, 22);
  add_bidir(soc, "cpu_lock0", "gpio_timer", 4, 4, 40);

  Benchmark bench;
  bench.use_cases = {
      {"parked", 0.55, {"cpu_lock0", "sram_a", "can0", "gpio_timer", "flash_ctrl"}},
      {"driving", 0.40,
       {"cpu_lock0", "cpu_lock1", "safety_mgr", "sensor_dsp", "radar_if",
        "sram_a", "sram_b", "flash_ctrl", "dma", "can0", "can1", "flexray",
        "eth_avb", "gpio_timer"}},
      {"ota_update", 0.05,
       {"cpu_lock0", "sram_a", "flash_ctrl", "crypto_hsm", "eth_avb", "dma"}},
  };
  bench.soc = std::move(soc);
  return bench;
}

Benchmark make_d36_settop_soc() {
  SocSpec soc = single_island_shell("d36_settop");

  add_core(soc, "cpu0",        CoreKind::kCpu,        2.0, 2.0, 420, 170, 600);
  add_core(soc, "cpu1",        CoreKind::kCpu,        2.0, 2.0, 420, 170, 600);
  add_core(soc, "l2_cache",    CoreKind::kCache,      1.8, 1.8, 150,  95, 600);
  add_core(soc, "gpu3d",       CoreKind::kGpu,        2.6, 2.6, 380, 160, 400);
  add_core(soc, "vdec_h264",   CoreKind::kVideo,      2.0, 2.0, 260, 110, 300);
  add_core(soc, "vdec_mpeg2",  CoreKind::kVideo,      1.6, 1.6, 150,  65, 250);
  add_core(soc, "venc",        CoreKind::kVideo,      1.8, 1.8, 220,  90, 300);
  add_core(soc, "scaler",      CoreKind::kVideo,      1.2, 1.2,  90,  38, 250);
  add_core(soc, "deinterlace", CoreKind::kVideo,      1.2, 1.2,  85,  36, 250);
  add_core(soc, "osd_blend",   CoreKind::kDisplay,    1.0, 1.0,  60,  25, 250);
  add_core(soc, "hdmi_tx",     CoreKind::kDisplay,    1.0, 1.0,  70,  28, 300);
  add_core(soc, "ts_demux0",   CoreKind::kOther,      0.9, 0.9,  45,  18, 200);
  add_core(soc, "ts_demux1",   CoreKind::kOther,      0.9, 0.9,  45,  18, 200);
  add_core(soc, "tuner_if0",   CoreKind::kModem,      0.8, 0.8,  40,  16, 200);
  add_core(soc, "tuner_if1",   CoreKind::kModem,      0.8, 0.8,  40,  16, 200);
  add_core(soc, "audio_dsp",   CoreKind::kDsp,        1.4, 1.4, 120,  50, 300);
  add_core(soc, "audio_out",   CoreKind::kAudio,      0.6, 0.6,  18,   7, 100);
  add_core(soc, "crypto_ca",   CoreKind::kCrypto,     0.9, 0.9,  55,  22, 300);
  add_core(soc, "eth_mac",     CoreKind::kPeripheral, 0.8, 0.8,  50,  20, 200);
  add_core(soc, "usb0",        CoreKind::kPeripheral, 0.9, 0.9,  40,  16, 120);
  add_core(soc, "usb1",        CoreKind::kPeripheral, 0.9, 0.9,  40,  16, 120);
  add_core(soc, "sata",        CoreKind::kPeripheral, 1.0, 1.0,  55,  22, 200);
  add_core(soc, "dma0",        CoreKind::kDma,        0.7, 0.7,  40,  16, 400);
  add_core(soc, "dma1",        CoreKind::kDma,        0.7, 0.7,  40,  16, 400);
  add_core(soc, "dram_ctrl0",  CoreKind::kMemController, 1.6, 1.6, 170, 75, 400);
  add_core(soc, "dram_ctrl1",  CoreKind::kMemController, 1.6, 1.6, 170, 75, 400);
  add_core(soc, "sram0",       CoreKind::kMemory,     1.3, 1.3,  32,  55, 400);
  add_core(soc, "sram1",       CoreKind::kMemory,     1.3, 1.3,  32,  55, 400);
  add_core(soc, "boot_rom",    CoreKind::kMemory,     0.7, 0.7,   8,  10, 200);
  add_core(soc, "smartcard",   CoreKind::kPeripheral, 0.4, 0.4,   6,   2, 100);
  add_core(soc, "uart",        CoreKind::kPeripheral, 0.4, 0.4,   5,   2, 100);
  add_core(soc, "spi_flash",   CoreKind::kPeripheral, 0.5, 0.5,  12,   5, 100);
  add_core(soc, "i2c",         CoreKind::kPeripheral, 0.4, 0.4,   5,   2, 100);
  add_core(soc, "gpio",        CoreKind::kPeripheral, 0.4, 0.4,   6,   2, 100);
  add_core(soc, "ir_rx",       CoreKind::kPeripheral, 0.3, 0.3,   3,   1, 100);
  add_core(soc, "pwm_fan",     CoreKind::kPeripheral, 0.3, 0.3,   3,   1, 100);

  add_bidir(soc, "cpu0", "l2_cache", 1300, 1300, 14);
  add_bidir(soc, "cpu1", "l2_cache", 1300, 1300, 14);
  add_bidir(soc, "l2_cache", "dram_ctrl0", 900, 900, 16);
  add_bidir(soc, "gpu3d", "dram_ctrl1", 1200, 1000, 16);
  add_flow(soc, "gpu3d", "osd_blend", 260, 18);
  add_bidir(soc, "vdec_h264", "dram_ctrl0", 1100, 480, 16);
  add_bidir(soc, "vdec_mpeg2", "dram_ctrl1", 600, 260, 16);
  add_bidir(soc, "venc", "dram_ctrl1", 800, 380, 16);
  add_flow(soc, "vdec_h264", "deinterlace", 560, 16);
  add_flow(soc, "deinterlace", "scaler", 560, 16);
  add_flow(soc, "scaler", "osd_blend", 620, 16);
  add_flow(soc, "osd_blend", "hdmi_tx", 700, 14);
  add_flow(soc, "dram_ctrl0", "osd_blend", 280, 18);
  add_flow(soc, "tuner_if0", "ts_demux0", 120, 20);
  add_flow(soc, "tuner_if1", "ts_demux1", 120, 20);
  add_flow(soc, "ts_demux0", "crypto_ca", 110, 20);
  add_flow(soc, "ts_demux1", "crypto_ca", 110, 20);
  add_flow(soc, "crypto_ca", "vdec_h264", 100, 18);
  add_flow(soc, "crypto_ca", "vdec_mpeg2", 60, 18);
  add_flow(soc, "ts_demux0", "sram0", 90, 18);
  add_bidir(soc, "audio_dsp", "sram1", 220, 220, 16);
  add_flow(soc, "ts_demux0", "audio_dsp", 40, 20);
  add_flow(soc, "audio_dsp", "audio_out", 50, 22);
  add_bidir(soc, "dma0", "dram_ctrl0", 420, 420, 16);
  add_bidir(soc, "dma1", "dram_ctrl1", 420, 420, 16);
  add_bidir(soc, "dma0", "sata", 320, 320, 20);
  add_bidir(soc, "dma0", "usb0", 150, 150, 22);
  add_bidir(soc, "dma1", "usb1", 150, 150, 22);
  add_bidir(soc, "dma1", "eth_mac", 240, 240, 20);
  add_flow(soc, "boot_rom", "cpu0", 80, 30);
  add_flow(soc, "spi_flash", "cpu0", 40, 30);
  add_flow(soc, "cpu0", "venc", 40, 26);
  add_flow(soc, "cpu0", "vdec_h264", 44, 26);
  add_flow(soc, "cpu1", "gpu3d", 90, 24);
  add_flow(soc, "cpu1", "scaler", 20, 28);
  add_flow(soc, "cpu0", "ts_demux0", 18, 28);
  add_flow(soc, "cpu0", "ts_demux1", 18, 28);
  add_bidir(soc, "cpu0", "uart", 4, 4, 40);
  add_bidir(soc, "cpu0", "i2c", 4, 4, 40);
  add_bidir(soc, "cpu1", "gpio", 5, 5, 40);
  add_flow(soc, "ir_rx", "cpu0", 1, 48);
  add_flow(soc, "cpu1", "pwm_fan", 1, 48);
  add_bidir(soc, "cpu0", "smartcard", 2, 2, 44);
  add_bidir(soc, "crypto_ca", "sram0", 80, 80, 20);

  Benchmark bench;
  bench.use_cases = {
      {"standby", 0.45, {"cpu0", "sram0", "dram_ctrl0", "ir_rx", "gpio"}},
      {"live_tv", 0.30,
       {"cpu0", "cpu1", "l2_cache", "tuner_if0", "ts_demux0", "crypto_ca",
        "vdec_h264", "deinterlace", "scaler", "osd_blend", "hdmi_tx",
        "audio_dsp", "audio_out", "dram_ctrl0", "dram_ctrl1", "sram0", "sram1",
        "gpu3d"}},
      {"record_and_watch", 0.15,
       {"cpu0", "cpu1", "l2_cache", "tuner_if0", "tuner_if1", "ts_demux0",
        "ts_demux1", "crypto_ca", "vdec_h264", "vdec_mpeg2", "venc",
        "deinterlace", "scaler", "osd_blend", "hdmi_tx", "audio_dsp",
        "audio_out", "dram_ctrl0", "dram_ctrl1", "sram0", "sram1", "dma0",
        "sata"}},
      {"streaming", 0.10,
       {"cpu0", "cpu1", "l2_cache", "eth_mac", "dma1", "crypto_ca",
        "vdec_h264", "scaler", "osd_blend", "hdmi_tx", "audio_dsp",
        "audio_out", "dram_ctrl0", "sram0", "sram1", "gpu3d"}},
  };
  bench.soc = std::move(soc);
  return bench;
}

Benchmark make_d64_tile_soc() {
  SocSpec soc = single_island_shell("d64_tile");

  // 16 clusters x (cpu + sram + dma) = 48 cores, 2 DRAM controllers,
  // 8 accelerators, 6 shared services = 64 cores.
  for (int t = 0; t < 16; ++t) {
    const std::string id = std::to_string(t);
    add_core(soc, "tile_cpu" + id, CoreKind::kCpu, 1.2, 1.2, 140, 55, 400);
    add_core(soc, "tile_mem" + id, CoreKind::kMemory, 0.9, 0.9, 18, 30, 400);
    add_core(soc, "tile_dma" + id, CoreKind::kDma, 0.5, 0.5, 16, 7, 400);
  }
  add_core(soc, "dram_west", CoreKind::kMemController, 1.6, 1.6, 170, 75, 400);
  add_core(soc, "dram_east", CoreKind::kMemController, 1.6, 1.6, 170, 75, 400);
  for (int a = 0; a < 8; ++a) {
    add_core(soc, "accel" + std::to_string(a), CoreKind::kDsp, 1.4, 1.4, 130, 55, 350);
  }
  add_core(soc, "host_if",  CoreKind::kPeripheral, 0.9, 0.9, 45, 18, 200);
  add_core(soc, "eth_mac",  CoreKind::kPeripheral, 0.8, 0.8, 50, 20, 200);
  add_core(soc, "boot_rom", CoreKind::kMemory, 0.7, 0.7, 8, 10, 200);
  add_core(soc, "sys_ctrl", CoreKind::kOther, 0.6, 0.6, 20, 8, 200);
  add_core(soc, "uart",     CoreKind::kPeripheral, 0.4, 0.4, 5, 2, 100);
  add_core(soc, "gpio",     CoreKind::kPeripheral, 0.4, 0.4, 6, 2, 100);

  for (int t = 0; t < 16; ++t) {
    const std::string id = std::to_string(t);
    add_bidir(soc, "tile_cpu" + id, "tile_mem" + id, 520, 520, 12);
    add_bidir(soc, "tile_dma" + id, "tile_mem" + id, 180, 180, 16);
    const std::string dram = (t % 2 == 0) ? "dram_west" : "dram_east";
    add_bidir(soc, "tile_cpu" + id, dram, 150, 150, 20);
    add_bidir(soc, "tile_dma" + id, dram, 90, 90, 22);
    // Nearest-neighbour pipeline traffic around the ring of tiles.
    const std::string next = std::to_string((t + 1) % 16);
    add_flow(soc, "tile_cpu" + id, "tile_mem" + next, 90, 24);
  }
  for (int a = 0; a < 8; ++a) {
    const std::string id = std::to_string(a);
    const std::string dram = (a % 2 == 0) ? "dram_west" : "dram_east";
    add_bidir(soc, "accel" + id, dram, 300, 240, 18);
    add_flow(soc, "tile_cpu" + std::to_string(a * 2), "accel" + id, 110, 22);
    add_flow(soc, "accel" + id, "tile_mem" + std::to_string(a * 2 + 1), 130, 22);
  }
  add_bidir(soc, "host_if", "dram_west", 260, 260, 24);
  add_bidir(soc, "eth_mac", "dram_east", 240, 240, 24);
  add_flow(soc, "boot_rom", "tile_cpu0", 60, 32);
  add_flow(soc, "sys_ctrl", "tile_cpu0", 10, 36);
  add_bidir(soc, "tile_cpu0", "uart", 3, 3, 44);
  add_bidir(soc, "tile_cpu0", "gpio", 4, 4, 44);

  Benchmark bench;
  std::vector<std::string> half_active = {"dram_west", "dram_east", "host_if",
                                          "sys_ctrl", "boot_rom"};
  for (int t = 0; t < 8; ++t) {
    const std::string id = std::to_string(t);
    half_active.push_back("tile_cpu" + id);
    half_active.push_back("tile_mem" + id);
    half_active.push_back("tile_dma" + id);
  }
  std::vector<std::string> all_active = half_active;
  for (int t = 8; t < 16; ++t) {
    const std::string id = std::to_string(t);
    all_active.push_back("tile_cpu" + id);
    all_active.push_back("tile_mem" + id);
    all_active.push_back("tile_dma" + id);
  }
  for (int a = 0; a < 8; ++a) all_active.push_back("accel" + std::to_string(a));
  bench.use_cases = {
      {"light_load", 0.50, half_active},
      {"full_load", 0.30, all_active},
      {"idle", 0.20, {"dram_west", "sys_ctrl", "tile_cpu0", "tile_mem0"}},
  };
  bench.soc = std::move(soc);
  return bench;
}

Benchmark make_d24_imaging_soc() {
  SocSpec soc = single_island_shell("d24_imaging");

  add_core(soc, "flight_cpu",  CoreKind::kCpu,        1.8, 1.8, 350, 140, 500);
  add_core(soc, "nav_cpu",     CoreKind::kCpu,        1.5, 1.5, 220,  90, 400);
  add_core(soc, "l2_cache",    CoreKind::kCache,      1.4, 1.4, 110,  70, 500);
  add_core(soc, "cam_left",    CoreKind::kImaging,    0.9, 0.9,  45,  18, 200);
  add_core(soc, "cam_right",   CoreKind::kImaging,    0.9, 0.9,  45,  18, 200);
  add_core(soc, "isp_left",    CoreKind::kImaging,    1.5, 1.5, 140,  60, 300);
  add_core(soc, "isp_right",   CoreKind::kImaging,    1.5, 1.5, 140,  60, 300);
  add_core(soc, "stereo_match",CoreKind::kVideo,      1.8, 1.8, 210,  90, 300);
  add_core(soc, "optical_flow",CoreKind::kVideo,      1.6, 1.6, 180,  75, 300);
  add_core(soc, "cnn_accel",   CoreKind::kDsp,        2.4, 2.4, 380, 160, 400);
  add_core(soc, "cnn_weights", CoreKind::kMemory,     1.6, 1.6,  40,  70, 400);
  add_core(soc, "venc_h264",   CoreKind::kVideo,      1.6, 1.6, 170,  70, 300);
  add_core(soc, "imu_fusion",  CoreKind::kDsp,        1.0, 1.0,  80,  32, 300);
  add_core(soc, "motor_ctrl",  CoreKind::kOther,      0.7, 0.7,  30,  12, 200);
  add_core(soc, "gps_if",      CoreKind::kModem,      0.7, 0.7,  30,  12, 200);
  add_core(soc, "radio_link",  CoreKind::kModem,      1.2, 1.2, 140,  60, 300);
  add_core(soc, "crypto",      CoreKind::kCrypto,     0.8, 0.8,  45,  18, 300);
  add_core(soc, "dma",         CoreKind::kDma,        0.7, 0.7,  40,  16, 400);
  add_core(soc, "sram0",       CoreKind::kMemory,     1.3, 1.3,  32,  55, 400);
  add_core(soc, "sram1",       CoreKind::kMemory,     1.3, 1.3,  32,  55, 400);
  add_core(soc, "dram_ctrl",   CoreKind::kMemController, 1.5, 1.5, 150, 65, 400);
  add_core(soc, "sd_storage",  CoreKind::kPeripheral, 0.7, 0.7,  25,  10, 100);
  add_core(soc, "uart_debug",  CoreKind::kPeripheral, 0.4, 0.4,   5,   2, 100);
  add_core(soc, "gpio_pwm",    CoreKind::kPeripheral, 0.5, 0.5,   8,   3, 100);

  // Stereo vision pipeline (streaming, latency-sensitive).
  add_flow(soc, "cam_left", "isp_left", 540, 14);
  add_flow(soc, "cam_right", "isp_right", 540, 14);
  add_flow(soc, "isp_left", "stereo_match", 480, 14);
  add_flow(soc, "isp_right", "stereo_match", 480, 14);
  add_flow(soc, "stereo_match", "sram0", 380, 14);
  add_flow(soc, "isp_left", "optical_flow", 300, 14);
  add_flow(soc, "optical_flow", "sram0", 220, 16);
  add_bidir(soc, "stereo_match", "dram_ctrl", 320, 160, 16);
  // CNN inference.
  add_bidir(soc, "cnn_accel", "cnn_weights", 900, 900, 12);
  add_bidir(soc, "cnn_accel", "dram_ctrl", 620, 260, 16);
  add_flow(soc, "sram0", "cnn_accel", 340, 14);
  add_flow(soc, "cnn_accel", "nav_cpu", 90, 16);
  // Flight control loop (light but tight).
  add_bidir(soc, "flight_cpu", "l2_cache", 1100, 1100, 12);
  add_bidir(soc, "l2_cache", "dram_ctrl", 520, 520, 16);
  add_flow(soc, "imu_fusion", "flight_cpu", 60, 12);
  add_flow(soc, "flight_cpu", "motor_ctrl", 40, 12);
  add_flow(soc, "gps_if", "imu_fusion", 20, 20);
  add_bidir(soc, "nav_cpu", "sram1", 420, 420, 14);
  add_flow(soc, "nav_cpu", "flight_cpu", 110, 14);
  // Video downlink + storage.
  add_flow(soc, "isp_left", "venc_h264", 420, 18);
  add_bidir(soc, "venc_h264", "dram_ctrl", 380, 170, 18);
  add_flow(soc, "venc_h264", "crypto", 160, 20);
  add_flow(soc, "crypto", "radio_link", 150, 20);
  add_bidir(soc, "dma", "dram_ctrl", 300, 300, 18);
  add_bidir(soc, "dma", "sd_storage", 180, 180, 22);
  add_bidir(soc, "flight_cpu", "radio_link", 60, 60, 20);
  // Control plane.
  add_flow(soc, "flight_cpu", "cnn_accel", 36, 22);
  add_flow(soc, "flight_cpu", "stereo_match", 24, 22);
  add_flow(soc, "nav_cpu", "venc_h264", 20, 24);
  add_bidir(soc, "flight_cpu", "uart_debug", 3, 3, 40);
  add_bidir(soc, "flight_cpu", "gpio_pwm", 5, 5, 30);

  Benchmark bench;
  bench.use_cases = {
      {"ground_idle", 0.30,
       {"flight_cpu", "l2_cache", "sram0", "dram_ctrl", "gpio_pwm",
        "uart_debug", "radio_link"}},
      {"hover", 0.25,
       {"flight_cpu", "nav_cpu", "l2_cache", "sram0", "sram1", "dram_ctrl",
        "imu_fusion", "motor_ctrl", "gps_if", "cam_left", "isp_left",
        "optical_flow", "radio_link", "gpio_pwm"}},
      {"autonomous_flight", 0.30,
       {"flight_cpu", "nav_cpu", "l2_cache", "sram0", "sram1", "dram_ctrl",
        "imu_fusion", "motor_ctrl", "gps_if", "cam_left", "cam_right",
        "isp_left", "isp_right", "stereo_match", "optical_flow", "cnn_accel",
        "cnn_weights", "radio_link", "gpio_pwm"}},
      {"record_and_stream", 0.15,
       {"flight_cpu", "nav_cpu", "l2_cache", "sram0", "dram_ctrl",
        "imu_fusion", "motor_ctrl", "cam_left", "isp_left", "venc_h264",
        "crypto", "radio_link", "dma", "sd_storage", "gpio_pwm"}},
  };
  bench.soc = std::move(soc);
  return bench;
}

std::vector<Benchmark> all_benchmarks() {
  std::vector<Benchmark> out;
  out.push_back(make_d26_media_soc());
  out.push_back(make_d16_auto_soc());
  out.push_back(make_d36_settop_soc());
  out.push_back(make_d64_tile_soc());
  out.push_back(make_d24_imaging_soc());
  return out;
}

Benchmark make_synthetic_soc(const SyntheticParams& params) {
  if (params.cores < 4 || params.hubs < 1 || params.hubs >= params.cores) {
    throw std::invalid_argument("make_synthetic_soc: bad core/hub counts");
  }
  SocSpec soc = single_island_shell("synthetic_c" + std::to_string(params.cores) +
                                    "_s" + std::to_string(params.seed));
  std::mt19937 rng(params.seed);
  // Scale hub flow bandwidths so a hub's aggregate NI traffic stays below
  // ~60% of the fastest attainable link (1 GHz x 32 bit); otherwise designs
  // with many clients per hub are unsynthesizable at any clock.
  const int clients_per_hub =
      (params.cores - params.hubs + params.hubs - 1) / params.hubs;
  const double mean_hub_bw = (params.hub_bw_lo + params.hub_bw_hi) / 2.0;
  const double hub_scale =
      std::min(1.0, 0.6 * 32.0e9 / (clients_per_hub * mean_hub_bw));
  std::uniform_real_distribution<double> hub_bw(params.hub_bw_lo * hub_scale,
                                                params.hub_bw_hi * hub_scale);
  std::uniform_real_distribution<double> peer_bw(params.peer_bw_lo, params.peer_bw_hi);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  for (int h = 0; h < params.hubs; ++h) {
    add_core(soc, "hub" + std::to_string(h), CoreKind::kMemory, 1.5, 1.5, 60,
             70, 400);
  }
  const int clients = params.cores - params.hubs;
  for (int c = 0; c < clients; ++c) {
    const CoreKind kind = (c % 5 == 0)   ? CoreKind::kDsp
                          : (c % 5 == 1) ? CoreKind::kVideo
                          : (c % 5 == 2) ? CoreKind::kCpu
                          : (c % 5 == 3) ? CoreKind::kImaging
                                         : CoreKind::kPeripheral;
    const double dyn = kind == CoreKind::kPeripheral ? 20.0 : 180.0;
    add_core(soc, "core" + std::to_string(c), kind, 1.2, 1.2, dyn, dyn * 0.4,
             300);
  }

  auto add_raw_flow = [&soc](CoreId s, CoreId d, double bw_bits, double lat) {
    Flow f;
    f.src = s;
    f.dst = d;
    f.bandwidth_bits_per_s = bw_bits;
    f.max_latency_cycles = lat;
    f.label = soc.cores[static_cast<std::size_t>(s)].name + "->" +
              soc.cores[static_cast<std::size_t>(d)].name;
    soc.flows.push_back(std::move(f));
  };

  for (int c = 0; c < clients; ++c) {
    const auto core_id = static_cast<CoreId>(params.hubs + c);
    const auto hub_id = static_cast<CoreId>(c % params.hubs);
    const double bw = hub_bw(rng);
    add_raw_flow(core_id, hub_id, bw, params.latency_budget_cycles);
    add_raw_flow(hub_id, core_id, bw * 0.6, params.latency_budget_cycles);
    // Extra peer flows to random other clients.
    const double extra = params.flows_per_core - 1.0;
    int peers = static_cast<int>(extra);
    if (unit(rng) < extra - peers) ++peers;
    for (int p = 0; p < peers; ++p) {
      std::uniform_int_distribution<int> pick(0, clients - 1);
      int other = pick(rng);
      if (other == c) other = (other + 1) % clients;
      add_raw_flow(core_id, static_cast<CoreId>(params.hubs + other), peer_bw(rng),
                   params.latency_budget_cycles * 1.5);
    }
  }

  Benchmark bench;
  // Two coarse use cases so shutdown accounting has something to chew on.
  std::vector<std::string> half;
  std::vector<std::string> all;
  for (const CoreSpec& c : bench.soc.cores) (void)c;  // (filled below)
  for (std::size_t i = 0; i < soc.cores.size(); ++i) {
    all.push_back(soc.cores[i].name);
    if (i < soc.cores.size() / 2 ||
        soc.cores[i].kind == CoreKind::kMemory) {
      half.push_back(soc.cores[i].name);
    }
  }
  bench.use_cases = {{"half_load", 0.6, half}, {"full_load", 0.4, all}};
  bench.soc = std::move(soc);
  return bench;
}

SyntheticParams perturb_synthetic_params(const SyntheticParams& base,
                                         unsigned variant) {
  if (variant == 0) return base;
  // splitmix64 stream seeded from (base.seed, variant): cheap, well-mixed,
  // and — unlike std::mt19937's distributions — identical on every
  // implementation, so family members are stable across platforms.
  std::uint64_t s = (static_cast<std::uint64_t>(base.seed) << 32) ^
                    (0x9e3779b97f4a7c15ull * (variant + 1ull));
  auto next = [&s]() {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  auto unit = [&next]() {  // uniform in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  };
  SyntheticParams p = base;
  p.seed = static_cast<unsigned>(next());
  p.flows_per_core = std::max(1.0, base.flows_per_core * (0.75 + 0.5 * unit()));
  const double hub_scale = 0.8 + 0.4 * unit();
  p.hub_bw_lo = base.hub_bw_lo * hub_scale;
  p.hub_bw_hi = base.hub_bw_hi * hub_scale;
  const double peer_scale = 0.8 + 0.4 * unit();
  p.peer_bw_lo = base.peer_bw_lo * peer_scale;
  p.peer_bw_hi = base.peer_bw_hi * peer_scale;
  p.latency_budget_cycles =
      std::max(10.0, base.latency_budget_cycles * (0.85 + 0.3 * unit()));
  return p;
}

}  // namespace vinoc::soc

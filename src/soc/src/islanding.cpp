#include "vinoc/soc/islanding.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "vinoc/partition/kway.hpp"

namespace vinoc::soc {

namespace {

/// Builds scenarios for the new islanding: an island is active in a use case
/// iff any of its cores is active; non-shutdown islands are always active.
std::vector<Scenario> scenarios_from_use_cases(const SocSpec& soc,
                                               const std::vector<UseCase>& use_cases) {
  std::vector<Scenario> scenarios;
  for (const UseCase& uc : use_cases) {
    std::unordered_set<std::string> active(uc.active_cores.begin(),
                                           uc.active_cores.end());
    Scenario s;
    s.name = uc.name;
    s.time_fraction = uc.time_fraction;
    s.island_active.assign(soc.islands.size(), false);
    for (const CoreSpec& c : soc.cores) {
      if (active.count(c.name) > 0) {
        s.island_active[static_cast<std::size_t>(c.island)] = true;
      }
    }
    for (std::size_t i = 0; i < soc.islands.size(); ++i) {
      if (!soc.islands[i].can_shutdown) s.island_active[i] = true;
    }
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

bool island_has_shared_memory(const SocSpec& soc, IslandId island) {
  for (const CoreSpec& c : soc.cores) {
    if (c.island == island && c.kind == CoreKind::kMemory) return true;
  }
  return false;
}

}  // namespace

int logical_group_of(CoreKind kind) {
  switch (kind) {
    case CoreKind::kMemory:
    case CoreKind::kMemController:
      return 0;  // shared memory subsystem: stays powered
    case CoreKind::kCpu:
    case CoreKind::kCache:
      return 1;
    case CoreKind::kDsp:
    case CoreKind::kAudio:
      return 2;
    case CoreKind::kVideo:
    case CoreKind::kGpu:
    case CoreKind::kImaging:
    case CoreKind::kDisplay:
      return 3;
    case CoreKind::kModem:
    case CoreKind::kCrypto:
      return 4;
    case CoreKind::kDma:
      return 5;
    case CoreKind::kPeripheral:
    case CoreKind::kOther:
      return 6;
  }
  return 6;
}

int logical_group_count() { return 7; }

SocSpec with_explicit_islands(const SocSpec& base, const std::vector<int>& island_of,
                              int island_count,
                              const std::vector<UseCase>& use_cases) {
  if (island_of.size() != base.cores.size()) {
    throw std::invalid_argument("with_explicit_islands: island_of size mismatch");
  }
  if (island_count < 1) {
    throw std::invalid_argument("with_explicit_islands: island_count < 1");
  }
  SocSpec out = base;
  out.islands.clear();
  for (int i = 0; i < island_count; ++i) {
    VoltageIsland vi;
    vi.name = "VI" + std::to_string(i);
    vi.vdd_v = 1.0;
    vi.can_shutdown = true;
    out.islands.push_back(std::move(vi));
  }
  for (std::size_t c = 0; c < out.cores.size(); ++c) {
    const int isl = island_of[c];
    if (isl < 0 || isl >= island_count) {
      throw std::invalid_argument("with_explicit_islands: island index out of range");
    }
    out.cores[c].island = isl;
  }
  // Single-island reference and shared-memory islands cannot be gated.
  if (island_count == 1) {
    out.islands[0].can_shutdown = false;
  }
  for (int i = 0; i < island_count; ++i) {
    if (island_has_shared_memory(out, i)) {
      out.islands[static_cast<std::size_t>(i)].can_shutdown = false;
      out.islands[static_cast<std::size_t>(i)].name += "_mem";
    }
  }
  out.scenarios = scenarios_from_use_cases(out, use_cases);
  return out;
}

SocSpec with_logical_islands(const SocSpec& base, int island_count,
                             const std::vector<UseCase>& use_cases) {
  const auto n = static_cast<int>(base.cores.size());
  if (island_count < 1 || island_count > n) {
    throw std::invalid_argument("with_logical_islands: island_count out of range");
  }
  std::vector<int> island_of(base.cores.size(), 0);
  if (island_count >= n) {
    for (int c = 0; c < n; ++c) island_of[static_cast<std::size_t>(c)] = c;
    return with_explicit_islands(base, island_of, n, use_cases);
  }
  const int groups = logical_group_count();
  if (island_count <= groups) {
    // Merge adjacent functional groups: group g -> island g*k/groups.
    for (std::size_t c = 0; c < base.cores.size(); ++c) {
      const int g = logical_group_of(base.cores[c].kind);
      island_of[c] = g * island_count / groups;
    }
  } else {
    // More islands than groups: split the largest groups round-robin.
    // Deterministic: cores of group g get islands from a per-group pool.
    std::vector<std::vector<std::size_t>> members(static_cast<std::size_t>(groups));
    for (std::size_t c = 0; c < base.cores.size(); ++c) {
      members[static_cast<std::size_t>(logical_group_of(base.cores[c].kind))].push_back(c);
    }
    // Give each non-empty group one island, then hand extra islands to the
    // biggest groups.
    std::vector<int> extra(static_cast<std::size_t>(groups), 0);
    int non_empty = 0;
    for (const auto& m : members) {
      if (!m.empty()) ++non_empty;
    }
    int spare = island_count - non_empty;
    while (spare > 0) {
      int big = -1;
      std::size_t big_size = 0;
      for (int g = 0; g < groups; ++g) {
        const auto gs = static_cast<std::size_t>(g);
        const std::size_t shares = static_cast<std::size_t>(extra[gs]) + 1;
        if (members[gs].size() / shares > big_size &&
            members[gs].size() > shares) {
          big_size = members[gs].size() / shares;
          big = g;
        }
      }
      if (big < 0) break;
      ++extra[static_cast<std::size_t>(big)];
      --spare;
    }
    int next_island = 0;
    for (int g = 0; g < groups; ++g) {
      const auto gs = static_cast<std::size_t>(g);
      if (members[gs].empty()) continue;
      const int shares = extra[gs] + 1;
      for (std::size_t i = 0; i < members[gs].size(); ++i) {
        island_of[members[gs][i]] =
            next_island + static_cast<int>(i % static_cast<std::size_t>(shares));
      }
      next_island += shares;
    }
  }
  // Compact island ids (some may be unused if a group is empty).
  std::vector<int> remap(static_cast<std::size_t>(n), -1);
  int next = 0;
  for (int& isl : island_of) {
    if (remap[static_cast<std::size_t>(isl)] == -1) {
      remap[static_cast<std::size_t>(isl)] = next++;
    }
    isl = remap[static_cast<std::size_t>(isl)];
  }
  return with_explicit_islands(base, island_of, next, use_cases);
}

SocSpec with_communication_islands(const SocSpec& base, int island_count,
                                   const std::vector<UseCase>& use_cases) {
  const auto n = static_cast<int>(base.cores.size());
  if (island_count < 1 || island_count > n) {
    throw std::invalid_argument("with_communication_islands: island_count out of range");
  }
  // Cap cluster sizes at 1.5x the balanced share: pure greedy agglomeration
  // would absorb every core into the memory-hub cluster (hub-and-spoke
  // traffic), leaving no island that can run its NoC slower.
  const std::size_t n_cores = base.cores.size();
  const std::size_t cap =
      island_count == 1
          ? 0
          : std::max<std::size_t>(2, (n_cores * 3 + 2 * static_cast<std::size_t>(island_count) - 1) /
                                         (2 * static_cast<std::size_t>(island_count)));
  const partition::PartitionResult clustering =
      partition::agglomerative_cluster(base.core_graph(), island_count, cap);
  return with_explicit_islands(base, clustering.block_of, clustering.blocks,
                               use_cases);
}

}  // namespace vinoc::soc

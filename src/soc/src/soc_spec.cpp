#include "vinoc/soc/soc_spec.hpp"

#include <cmath>
#include <unordered_set>

namespace vinoc::soc {

const char* to_string(CoreKind kind) {
  switch (kind) {
    case CoreKind::kCpu: return "cpu";
    case CoreKind::kDsp: return "dsp";
    case CoreKind::kGpu: return "gpu";
    case CoreKind::kCache: return "cache";
    case CoreKind::kMemory: return "memory";
    case CoreKind::kMemController: return "mem_ctrl";
    case CoreKind::kDma: return "dma";
    case CoreKind::kVideo: return "video";
    case CoreKind::kImaging: return "imaging";
    case CoreKind::kDisplay: return "display";
    case CoreKind::kAudio: return "audio";
    case CoreKind::kModem: return "modem";
    case CoreKind::kCrypto: return "crypto";
    case CoreKind::kPeripheral: return "peripheral";
    case CoreKind::kOther: return "other";
  }
  return "other";
}

std::vector<CoreId> SocSpec::cores_in_island(IslandId island) const {
  std::vector<CoreId> out;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (cores[i].island == island) out.push_back(static_cast<CoreId>(i));
  }
  return out;
}

graph::Digraph SocSpec::core_graph() const {
  graph::Digraph g;
  for (const CoreSpec& c : cores) g.add_node(c.name);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    g.add_edge(flows[f].src, flows[f].dst, flows[f].bandwidth_bits_per_s,
               static_cast<std::int64_t>(f));
  }
  return g;
}

double SocSpec::total_core_dynamic_w() const {
  double w = 0.0;
  for (const CoreSpec& c : cores) w += c.dynamic_power_w;
  return w;
}

double SocSpec::total_core_leakage_w() const {
  double w = 0.0;
  for (const CoreSpec& c : cores) w += c.leakage_power_w;
  return w;
}

double SocSpec::total_core_area_mm2() const {
  double a = 0.0;
  for (const CoreSpec& c : cores) a += c.width_mm * c.height_mm;
  return a;
}

CoreId SocSpec::find_core(std::string_view name) const {
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (cores[i].name == name) return static_cast<CoreId>(i);
  }
  return -1;
}

std::vector<std::string> SocSpec::validate() const {
  std::vector<std::string> problems;
  auto complain = [&problems](std::string msg) { problems.push_back(std::move(msg)); };

  std::unordered_set<std::string> seen_names;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const CoreSpec& c = cores[i];
    if (c.name.empty()) complain("core " + std::to_string(i) + " has empty name");
    if (!seen_names.insert(c.name).second) {
      complain("duplicate core name '" + c.name + "'");
    }
    if (c.island < 0 || static_cast<std::size_t>(c.island) >= islands.size()) {
      complain("core '" + c.name + "' references island " +
               std::to_string(c.island) + " out of range");
    }
    if (c.width_mm <= 0.0 || c.height_mm <= 0.0) {
      complain("core '" + c.name + "' has non-positive dimensions");
    }
    if (c.dynamic_power_w < 0.0 || c.leakage_power_w < 0.0) {
      complain("core '" + c.name + "' has negative power");
    }
    if (c.clock_hz <= 0.0) complain("core '" + c.name + "' has non-positive clock");
  }

  for (std::size_t i = 0; i < islands.size(); ++i) {
    if (islands[i].name.empty()) {
      complain("island " + std::to_string(i) + " has empty name");
    }
    if (islands[i].vdd_v <= 0.0) {
      complain("island '" + islands[i].name + "' has non-positive vdd");
    }
  }

  for (std::size_t f = 0; f < flows.size(); ++f) {
    const Flow& fl = flows[f];
    const auto n = static_cast<CoreId>(cores.size());
    if (fl.src < 0 || fl.src >= n || fl.dst < 0 || fl.dst >= n) {
      complain("flow " + std::to_string(f) + " references core out of range");
      continue;
    }
    if (fl.src == fl.dst) {
      complain("flow " + std::to_string(f) + " is a self-flow on core '" +
               cores[static_cast<std::size_t>(fl.src)].name + "'");
    }
    if (fl.bandwidth_bits_per_s <= 0.0) {
      complain("flow " + std::to_string(f) + " has non-positive bandwidth");
    }
    if (fl.max_latency_cycles <= 0.0) {
      complain("flow " + std::to_string(f) + " has non-positive latency budget");
    }
  }

  double fraction_sum = 0.0;
  for (const Scenario& s : scenarios) {
    if (s.island_active.size() != islands.size()) {
      complain("scenario '" + s.name + "' island_active size mismatch");
    }
    if (s.time_fraction < 0.0 || s.time_fraction > 1.0) {
      complain("scenario '" + s.name + "' has time fraction outside [0,1]");
    }
    fraction_sum += s.time_fraction;
    for (std::size_t i = 0; i < islands.size() && i < s.island_active.size(); ++i) {
      if (!s.island_active[i] && !islands[i].can_shutdown) {
        complain("scenario '" + s.name + "' gates non-shutdown island '" +
                 islands[i].name + "'");
      }
    }
  }
  if (!scenarios.empty() && fraction_sum > 1.0 + 1e-9) {
    complain("scenario time fractions sum to " + std::to_string(fraction_sum) +
             " > 1");
  }
  return problems;
}

}  // namespace vinoc::soc

// Child-process lifecycle for the sharded campaign supervisor (POSIX).
//
// A ChildProcess is fork+exec with the child's stdout connected to a
// non-blocking pipe the parent polls — the transport for the campaign
// worker's heartbeat/status lines. The interface is deliberately tiny and
// supervisor-shaped:
//
//  * spawn() never throws: a failed fork/exec returns nullptr (the
//    supervisor treats it like an instant crash and applies its respawn
//    policy).
//  * read_available() drains whatever the pipe holds right now into a line
//    buffer; whole lines come back, a trailing partial line waits for more
//    bytes (or for EOF, where it is surfaced as-is so torn tails are seen).
//  * poll_exit() is waitpid(WNOHANG): the child stays a child until it is
//    reaped exactly once. EXITED vs SIGNALED is preserved — the supervisor
//    distinguishes a worker's documented exit codes from a SIGKILL.
//  * signal_now() forwards a signal (cancel propagation: the supervisor
//    relays SIGTERM so workers checkpoint-and-flush like any CLI run).
//
// Destruction of a live child SIGKILLs and reaps it — a supervisor that
// throws never leaks worker processes.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace vinoc::exec {

class ChildProcess {
 public:
  /// Forks and execs `argv` (argv[0] = executable path), child stdout ->
  /// pipe, stderr/stdin inherited. `extra_env` entries ("NAME=value") are
  /// added to the child's environment. Returns nullptr on fork/exec
  /// failure.
  static std::unique_ptr<ChildProcess> spawn(
      const std::vector<std::string>& argv,
      const std::vector<std::string>& extra_env = {});

  ~ChildProcess();
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  [[nodiscard]] int pid() const { return pid_; }
  /// Read end of the child's stdout pipe (for poll(2) in the supervisor).
  [[nodiscard]] int stdout_fd() const { return out_fd_; }

  /// Drains available pipe bytes (non-blocking) and appends completed lines
  /// to `lines`. Returns false once the pipe is at EOF and fully drained —
  /// any unterminated tail is flushed as a final line first (the decoder's
  /// checksum rejects it if torn).
  bool read_available(std::vector<std::string>& lines);

  /// True when the child has terminated AND been reaped; exit_code() /
  /// term_signal() are then valid. Non-blocking.
  bool poll_exit();
  /// Blocks until the child exits (used after a kill).
  void wait_exit();

  /// Exit status of a reaped child: exit code for a normal exit, or -1 when
  /// it died to a signal (see term_signal()).
  [[nodiscard]] int exit_code() const { return exit_code_; }
  /// Terminating signal, 0 for a normal exit.
  [[nodiscard]] int term_signal() const { return term_signal_; }

  /// Sends `sig` (e.g. SIGTERM for graceful cancel, SIGKILL to reclaim a
  /// stalled worker). No-op once the child is reaped.
  void signal_now(int sig);

 private:
  ChildProcess(int pid, int out_fd) : pid_(pid), out_fd_(out_fd) {}

  int pid_ = -1;
  int out_fd_ = -1;
  bool reaped_ = false;
  bool eof_ = false;
  int exit_code_ = -1;
  int term_signal_ = 0;
  std::string buffer_;  ///< bytes after the last complete line
};

}  // namespace vinoc::exec

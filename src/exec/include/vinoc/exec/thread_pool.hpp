// Fixed-size worker pool for the staged exploration engine.
//
// Design notes (read together with vinoc/exec/parallel_for.hpp):
//
//  * A pool models a fixed amount of PARALLELISM, not a fixed number of
//    spawned threads: `ThreadPool(p)` spawns `p - 1` workers, because in
//    every fan-out primitive the CALLING thread participates as the final
//    strand. `ThreadPool(1)` therefore spawns no threads at all and every
//    parallel_for_each over it runs inline, byte-for-byte identical to a
//    plain sequential loop.
//  * Workers never block on other pool work. The fan-out primitives hand
//    workers self-contained "runner" jobs that pull indices from a shared
//    atomic counter and exit as soon as the range is drained; the caller
//    drains the same counter itself. Progress is therefore guaranteed even
//    when every worker is busy with unrelated jobs, which makes NESTED
//    fan-outs safe: explore_link_widths() fans widths out over the pool and
//    each width's synthesize() fans its candidate sweep out over the same
//    pool without risk of deadlock (the inner fan-out simply degrades to
//    the calling strand when no worker is free).
//  * Jobs must not throw; parallel_for_each catches per-task exceptions
//    itself and rethrows deterministically (lowest task index wins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vinoc::exec {

/// Maps a user-facing thread-count request to an effective parallelism:
/// 0 = hardware concurrency (at least 1), negative values clamp to 1.
[[nodiscard]] int resolve_thread_count(int requested);

class ThreadPool {
 public:
  /// `parallelism` follows resolve_thread_count(): 0 = hardware concurrency.
  explicit ThreadPool(int parallelism = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Effective parallelism (worker threads + the participating caller).
  [[nodiscard]] int parallelism() const { return parallelism_; }

  /// Enqueues a job. Thread-safe; callable from worker threads (used by
  /// nested fan-outs). Jobs must not throw.
  void submit(std::function<void()> job);

  /// Enqueues a job at the FRONT of the queue — the fairness hint for nested
  /// fan-outs. An inner fan-out issued from a worker queues its runners
  /// ahead of not-yet-started outer jobs, so work already in flight drains
  /// before new top-level jobs begin. This keeps an index-ordered streaming
  /// consumer (e.g. the campaign engine's job-order reporter) flowing
  /// instead of stalling behind a queue full of unstarted outer jobs.
  /// Thread-safe; jobs must not throw.
  void submit_front(std::function<void()> job);

  /// True when the calling thread is a worker of ANY ThreadPool. The fan-out
  /// primitives use it to detect nesting (and then prefer submit_front);
  /// plain callers may use it to tell caller strands from pool strands.
  [[nodiscard]] static bool on_worker_thread();

  /// First exception a submitted job leaked, if any. Jobs must not throw —
  /// the fan-out primitives catch per-task exceptions themselves — so this
  /// is the safety net that turns a leaked exception into a recorded error
  /// instead of std::terminate tearing the process down. Check it after the
  /// work that could have leaked (e.g. before trusting a batch's results).
  [[nodiscard]] std::exception_ptr worker_error() const;

 private:
  void enqueue(std::function<void()> job, bool front);
  void run_guarded(std::function<void()>& job);
  void worker_loop();

  int parallelism_ = 1;
  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::exception_ptr worker_error_;
};

}  // namespace vinoc::exec

// Per-thread slots for reusable scratch state ("arena" reuse across tasks).
//
// The fan-out primitives hand indices to whatever strand pulls them next, so
// task-local buffers cannot live in the task closure without being rebuilt
// per index. A WorkerLocal<T> gives every strand (pool workers AND the
// participating caller) one lazily created T that persists across indices,
// across fan-outs, and — when the WorkerLocal itself outlives them — across
// whole jobs (the campaign engine keeps one for a full batch run).
//
// Contract:
//  * local() returns the calling thread's slot, creating it on first use.
//    The reference stays valid for the lifetime of the WorkerLocal (slots
//    are never evicted).
//  * A slot is only ever handed to its owning thread, so the caller may
//    mutate it without synchronisation; the registry lookup itself is
//    mutex-guarded and intended to be amortised (fetch once per task, not
//    once per inner-loop step).
//  * T must be default-constructible. Slots are destroyed with the
//    WorkerLocal, on whatever thread destroys it.
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace vinoc::exec {

template <typename T>
class WorkerLocal {
 public:
  WorkerLocal() = default;
  WorkerLocal(const WorkerLocal&) = delete;
  WorkerLocal& operator=(const WorkerLocal&) = delete;

  /// The calling thread's slot (created default-constructed on first use).
  [[nodiscard]] T& local() {
    const std::thread::id id = std::this_thread::get_id();
    const std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<T>& slot = slots_[id];
    if (!slot) slot = std::make_unique<T>();
    return *slot;
  }

  /// Number of distinct threads that have touched this WorkerLocal.
  [[nodiscard]] std::size_t slot_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::thread::id, std::unique_ptr<T>> slots_;
};

}  // namespace vinoc::exec

// Deterministic fan-out primitives over a ThreadPool.
//
// Contract shared by parallel_for_each() and parallel_map():
//
//  * fn(i) is invoked exactly once for every i in [0, n), with no ordering
//    guarantee BETWEEN indices; each invocation must be independent of the
//    others (no shared mutable state unless the caller synchronises it).
//  * The reduction is index-ordered and therefore deterministic: results are
//    stored by index, and the caller observes them only after every task has
//    completed. A run with parallelism p > 1 produces bit-identical output
//    to a run with p == 1 whenever fn itself is deterministic per index.
//  * Exceptions: every index still runs; afterwards the exception thrown by
//    the LOWEST failing index is rethrown on the calling thread. This keeps
//    error behaviour independent of scheduling.
//  * The calling thread participates as one strand, so these primitives are
//    safe to nest (see thread_pool.hpp): an inner fan-out issued from a
//    worker degrades gracefully instead of deadlocking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "vinoc/exec/thread_pool.hpp"

namespace vinoc::exec {

namespace detail {

/// Shared bookkeeping of one fan-out. Heap-allocated and shared with the
/// queued runner jobs so a runner that is dequeued after the fan-out already
/// finished (all indices drained by other strands) can still exit cleanly.
struct ForEachState {
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t first_error_index = static_cast<std::size_t>(-1);
  std::exception_ptr error;
};

/// One strand of a fan-out. `fn` is only dereferenced while un-drained
/// indices remain, which is only possible while the caller is still blocked
/// in parallel_for_each (so the pointee is alive); a runner dequeued after
/// the fan-out completed sees next >= n and exits without touching it.
template <typename Fn>
void run_strand(const std::shared_ptr<ForEachState>& state, Fn* fn) {
  for (;;) {
    const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->n) return;
    try {
      (*fn)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(state->mutex);
      if (i < state->first_error_index) {
        state->first_error_index = i;
        state->error = std::current_exception();
      }
    }
    std::size_t finished;
    {
      const std::lock_guard<std::mutex> lock(state->mutex);
      finished = state->done.fetch_add(1, std::memory_order_acq_rel) + 1;
    }
    if (finished == state->n) state->cv.notify_all();
  }
}

}  // namespace detail

/// Runs fn(i) for every i in [0, n) across the pool (see file header for the
/// determinism/exception contract). Blocks until all n tasks completed.
template <typename Fn>
void parallel_for_each(ThreadPool& pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  if (pool.parallelism() <= 1 || n == 1) {
    // Sequential fast path: no pool traffic, but the same contract as the
    // parallel path — every index runs even when one throws, and the
    // lowest failing index's exception is rethrown at the end.
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  auto state = std::make_shared<detail::ForEachState>();
  state->n = n;
  auto* fn_ptr = std::addressof(fn);
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(pool.parallelism()) - 1, n - 1);
  // Fairness hint: a fan-out issued FROM a pool worker is nested inside an
  // outer fan-out, so its runners go to the front of the queue — inner work
  // of jobs already in flight drains before not-yet-started outer jobs
  // (see ThreadPool::submit_front).
  const bool nested = ThreadPool::on_worker_thread();
  for (std::size_t h = 0; h < helpers; ++h) {
    auto runner = [state, fn_ptr] { detail::run_strand(state, fn_ptr); };
    if (nested) {
      pool.submit_front(std::move(runner));
    } else {
      pool.submit(std::move(runner));
    }
  }
  detail::run_strand(state, fn_ptr);  // the caller is the final strand

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

/// parallel_for_each that collects fn's return values into a vector indexed
/// by task index. T must be default-constructible and movable.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<T> results(n);
  parallel_for_each(pool, n, [&results, &fn](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace vinoc::exec

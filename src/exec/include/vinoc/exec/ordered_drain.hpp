// Enumeration-ordered deposit/drain queue for streaming merges.
//
// Workers produce per-index outcomes in arbitrary order; a consumer must
// fold them IN INDEX ORDER (the synthesis merges are order-sensitive:
// dedup, stats, deterministic pruning). This queue reorders on the fly:
// deposit(i) stores outcome i and, unless another thread is already
// draining, merges every outcome whose predecessors have all merged —
// releasing each one immediately, so only the out-of-order window is ever
// buffered (callers surface the high-water mark via the on_buffered hook).
#pragma once

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace vinoc::exec {

/// See the file header. One drainer runs at a time (the `draining` flag);
/// the internal lock is DROPPED around each merge call, which may be
/// expensive (synthesis deterministic-prune replays re-evaluate whole
/// candidates), so depositors never stall on a merge in progress. A
/// deposit landing mid-drain is picked up when the drainer re-checks the
/// cursor under the lock, or by the next depositor after the drainer bowed
/// out — when every deposit() call has returned, everything has merged.
/// `merge` calls are serialised (exclusive drainer, handed off under the
/// lock) and in strict index order; `on_buffered(+1/-1)` runs under the
/// lock on every buffer change.
template <typename Outcome>
class OrderedDrainQueue {
 public:
  explicit OrderedDrainQueue(std::size_t n) : pending_(n), ready_(n, 0) {}

  template <typename MergeFn, typename BufferFn>
  void deposit(std::size_t index, Outcome&& outcome, MergeFn&& merge,
               BufferFn&& on_buffered) {
    std::unique_lock<std::mutex> lock(mutex_);
    pending_[index] = std::move(outcome);
    ready_[index] = 1;
    on_buffered(+1);
    if (draining_) return;
    draining_ = true;
    while (next_ < pending_.size() && ready_[next_] != 0) {
      Outcome ready_outcome = std::move(pending_[next_]);
      pending_[next_] = Outcome{};  // release the merged slot's buffers
      ++next_;
      on_buffered(-1);
      lock.unlock();
      merge(std::move(ready_outcome));
      lock.lock();
    }
    draining_ = false;
  }

 private:
  std::mutex mutex_;
  std::size_t next_ = 0;  ///< first index not yet merged
  bool draining_ = false;
  std::vector<Outcome> pending_;
  std::vector<char> ready_;
};

}  // namespace vinoc::exec

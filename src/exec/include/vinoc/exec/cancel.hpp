// Cooperative cancellation for the staged exploration engine.
//
// A CancelToken is a passive flag + optional wall-clock deadline that hot
// loops POLL between units of work (one candidate evaluation, one sweep
// unit) — there is no preemption. Tokens chain: a per-job token created
// with a parent observes the parent's state too, so one campaign-level
// token (SIGINT/SIGTERM, --deadline) cancels every in-flight job while
// each job keeps its own --job-timeout deadline on top.
//
// cancel() is an atomic store with no locks or allocation, so it is safe
// to call from a signal handler (the CLI's SIGINT/SIGTERM path does).
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace vinoc::exec {

/// Thrown by CancelToken::check() (and thus out of synthesize() /
/// synthesize_width_set()) when a poll observes cancellation. Distinct from
/// std::runtime_error subclasses that mean "the work failed": cancellation
/// means the work was ABANDONED — the campaign engine maps it to a
/// timeout/skip, never to a retry.
struct CancelledError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class CancelToken {
 public:
  CancelToken() = default;
  /// A child token: cancelled whenever `parent` is (parent may be null and
  /// must outlive this token).
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Async-signal-safe (single lock-free store).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Absolute wall-clock deadline; the token reports cancelled once the
  /// clock passes it. Not thread-safe against concurrent polls — set before
  /// handing the token to workers.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  /// Relative form: deadline = now + seconds.
  void set_timeout(double seconds) {
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds)));
  }

  /// True once cancel() was called (here or on an ancestor) or a deadline
  /// (here or on an ancestor) has passed.
  [[nodiscard]] bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return true;
    }
    return parent_ != nullptr && parent_->cancelled();
  }

  /// True when cancellation came from an explicit cancel() call on this
  /// token or an ancestor — as opposed to a deadline expiring. The campaign
  /// engine uses the distinction to tell "interrupted" from "timed out".
  [[nodiscard]] bool flag_cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->flag_cancelled();
  }

  /// Polls and throws CancelledError when cancelled. `where` names the loop
  /// for the error message.
  void check(const char* where) const {
    if (cancelled()) {
      throw CancelledError(std::string(where) + ": cancelled");
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  const CancelToken* parent_ = nullptr;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace vinoc::exec

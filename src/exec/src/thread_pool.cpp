#include "vinoc/exec/thread_pool.hpp"

#include <algorithm>

#include "vinoc/obs/trace.hpp"

namespace vinoc::exec {

int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) return 1;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int parallelism)
    : parallelism_(resolve_thread_count(parallelism)) {
  workers_.reserve(static_cast<std::size_t>(parallelism_ - 1));
  for (int i = 1; i < parallelism_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) { enqueue(std::move(job), false); }

void ThreadPool::submit_front(std::function<void()> job) { enqueue(std::move(job), true); }

std::exception_ptr ThreadPool::worker_error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return worker_error_;
}

void ThreadPool::run_guarded(std::function<void()>& job) {
  try {
    job();
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!worker_error_) worker_error_ = std::current_exception();
  }
}

void ThreadPool::enqueue(std::function<void()> job, bool front) {
  if (workers_.empty()) {
    // No workers to hand the job to; run it inline. Runner jobs are written
    // to tolerate this (they drain a shared counter and exit when empty).
    run_guarded(job);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (front) {
      queue_.push_front(std::move(job));
    } else {
      queue_.push_back(std::move(job));
    }
  }
  cv_.notify_one();
}

namespace {
thread_local bool t_on_worker_thread = false;
}  // namespace

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  // Observability hook: label this lane in any trace export, and flush the
  // per-thread span sink when the pool quiesces so a trace collected after
  // the pool is destroyed still contains every worker's events. (The CLI
  // arms tracing before any pool exists, so the guard costs nothing real —
  // it only avoids allocating sinks on untraced runs.)
  if (obs::tracing_enabled()) obs::set_thread_trace_name("worker");
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_guarded(job);
  }
  obs::flush_thread_trace_sink();
}

}  // namespace vinoc::exec

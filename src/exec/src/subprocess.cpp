#include "vinoc/exec/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

namespace vinoc::exec {

std::unique_ptr<ChildProcess> ChildProcess::spawn(
    const std::vector<std::string>& argv,
    const std::vector<std::string>& extra_env) {
  if (argv.empty()) return nullptr;
  int fds[2];
  if (::pipe(fds) != 0) return nullptr;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return nullptr;
  }
  if (pid == 0) {
    // Child: stdout -> pipe write end, then exec. Only async-signal-safe
    // calls between fork and exec (the parent may be multi-threaded).
    ::close(fds[0]);
    if (::dup2(fds[1], STDOUT_FILENO) < 0) ::_exit(127);
    ::close(fds[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    for (const std::string& e : extra_env) {
      ::putenv(const_cast<char*>(e.c_str()));
    }
    ::execv(cargv[0], cargv.data());
    ::_exit(127);  // exec failed
  }
  ::close(fds[1]);
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  return std::unique_ptr<ChildProcess>(new ChildProcess(pid, fds[0]));
}

ChildProcess::~ChildProcess() {
  if (!reaped_) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    reaped_ = true;
  }
  if (out_fd_ >= 0) ::close(out_fd_);
}

bool ChildProcess::read_available(std::vector<std::string>& lines) {
  char chunk[4096];
  while (!eof_) {
    const ssize_t n = ::read(out_fd_, chunk, sizeof chunk);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof_ = true;  // pipe error: treat as EOF
    break;
  }
  std::size_t pos = 0;
  for (std::size_t nl = buffer_.find('\n', pos); nl != std::string::npos;
       nl = buffer_.find('\n', pos)) {
    lines.push_back(buffer_.substr(pos, nl - pos));
    pos = nl + 1;
  }
  buffer_.erase(0, pos);
  if (eof_) {
    if (!buffer_.empty()) {
      lines.push_back(buffer_);  // torn tail: the decoder will reject it
      buffer_.clear();
    }
    return false;
  }
  return true;
}

bool ChildProcess::poll_exit() {
  if (reaped_) return true;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r != pid_) return false;
  reaped_ = true;
  if (WIFSIGNALED(status)) {
    term_signal_ = WTERMSIG(status);
    exit_code_ = -1;
  } else {
    exit_code_ = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return true;
}

void ChildProcess::wait_exit() {
  if (reaped_) return;
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  reaped_ = true;
  if (WIFSIGNALED(status)) {
    term_signal_ = WTERMSIG(status);
    exit_code_ = -1;
  } else {
    exit_code_ = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
}

void ChildProcess::signal_now(int sig) {
  if (!reaped_) ::kill(pid_, sig);
}

}  // namespace vinoc::exec

#include "vinoc/partition/kway.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <random>
#include <stdexcept>

namespace vinoc::partition {

namespace {

using graph::Digraph;
using graph::NodeId;

/// Symmetric adjacency with merged parallel edges, restricted to a node
/// subset given as original ids. Local ids are 0..subset.size()-1.
struct LocalGraph {
  std::vector<NodeId> to_orig;
  std::vector<std::vector<std::pair<int, double>>> adj;  // (local nbr, weight)

  [[nodiscard]] std::size_t size() const { return to_orig.size(); }
};

LocalGraph build_local(const Digraph& undirected, const std::vector<NodeId>& subset) {
  LocalGraph lg;
  lg.to_orig = subset;
  lg.adj.resize(subset.size());
  std::vector<int> local_of(undirected.node_count(), -1);
  for (std::size_t i = 0; i < subset.size(); ++i) {
    local_of[static_cast<std::size_t>(subset[i])] = static_cast<int>(i);
  }
  for (const auto& e : undirected.edges()) {
    const int a = local_of[static_cast<std::size_t>(e.src)];
    const int b = local_of[static_cast<std::size_t>(e.dst)];
    if (a < 0 || b < 0 || a == b) continue;
    lg.adj[static_cast<std::size_t>(a)].emplace_back(b, e.weight);
    lg.adj[static_cast<std::size_t>(b)].emplace_back(a, e.weight);
  }
  return lg;
}

double side_cut(const LocalGraph& lg, const std::vector<int>& side) {
  double cut = 0.0;
  for (std::size_t u = 0; u < lg.size(); ++u) {
    for (const auto& [v, w] : lg.adj[u]) {
      if (static_cast<std::size_t>(v) > u && side[u] != side[static_cast<std::size_t>(v)]) {
        cut += w;
      }
    }
  }
  return cut;
}

/// One FM pass over a bisection with side-size bounds [lo0, hi0] for side 0.
/// Moves every node at most once, tracks the best prefix, rolls back the
/// rest. Returns the gain achieved (>= 0).
double fm_pass(const LocalGraph& lg, std::vector<int>& side, std::size_t lo0,
               std::size_t hi0) {
  const std::size_t n = lg.size();
  std::vector<double> gain(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    for (const auto& [v, w] : lg.adj[u]) {
      gain[u] += (side[u] != side[static_cast<std::size_t>(v)]) ? w : -w;
    }
  }
  std::vector<bool> locked(n, false);
  std::size_t size0 = static_cast<std::size_t>(std::count(side.begin(), side.end(), 0));

  struct Move {
    std::size_t node;
    double cum_gain;
  };
  std::vector<Move> moves;
  double cum = 0.0;

  for (std::size_t step = 0; step < n; ++step) {
    // Pick the unlocked node with max gain whose move keeps sides legal.
    int pick = -1;
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < n; ++u) {
      if (locked[u]) continue;
      const std::size_t new_size0 = side[u] == 0 ? size0 - 1 : size0 + 1;
      if (new_size0 < lo0 || new_size0 > hi0) continue;
      if (gain[u] > best) {
        best = gain[u];
        pick = static_cast<int>(u);
      }
    }
    if (pick < 0) break;
    const auto u = static_cast<std::size_t>(pick);
    locked[u] = true;
    side[u] = 1 - side[u];
    size0 += side[u] == 0 ? 1 : std::size_t(-1);
    cum += gain[u];
    moves.push_back({u, cum});
    for (const auto& [v, w] : lg.adj[u]) {
      const auto vi = static_cast<std::size_t>(v);
      // v's gain changes by +-2w depending on whether it now matches u.
      gain[vi] += (side[u] != side[vi]) ? 2.0 * w : -2.0 * w;
    }
  }

  // Keep the best prefix of moves.
  double best_cum = 0.0;
  std::size_t best_len = 0;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    if (moves[i].cum_gain > best_cum + 1e-12) {
      best_cum = moves[i].cum_gain;
      best_len = i + 1;
    }
  }
  for (std::size_t i = moves.size(); i > best_len; --i) {
    const std::size_t u = moves[i - 1].node;
    side[u] = 1 - side[u];
  }
  return best_cum;
}

/// Balanced bisection of `lg` into sides of exactly (n0, n-n0) nodes, with a
/// slack of +-`slack` tolerated during refinement (final sizes still within
/// [n0 - slack, n0 + slack]).
std::vector<int> bisect(const LocalGraph& lg, std::size_t n0, std::size_t slack,
                        int passes, int restarts, std::mt19937& rng) {
  const std::size_t n = lg.size();
  const std::size_t lo0 = n0 > slack ? n0 - slack : 0;
  const std::size_t hi0 = std::min(n, n0 + slack);

  std::vector<int> best_side;
  double best_cut = std::numeric_limits<double>::infinity();

  for (int r = 0; r < std::max(restarts, 1); ++r) {
    std::vector<int> side(n, 1);
    // Seeded BFS growth: start from a random node, greedily absorb the
    // neighbour with the strongest connection to side 0 until n0 nodes.
    std::vector<double> attraction(n, 0.0);
    std::vector<bool> in0(n, false);
    std::uniform_int_distribution<std::size_t> pickd(0, n - 1);
    std::size_t seed_node = pickd(rng);
    std::size_t count0 = 0;
    while (count0 < n0) {
      std::size_t u = seed_node;
      if (count0 > 0) {
        double best_attr = -1.0;
        u = n;  // invalid
        for (std::size_t v = 0; v < n; ++v) {
          if (!in0[v] && attraction[v] > best_attr) {
            best_attr = attraction[v];
            u = v;
          }
        }
        if (u == n) break;
      }
      in0[u] = true;
      side[u] = 0;
      ++count0;
      for (const auto& [v, w] : lg.adj[u]) {
        attraction[static_cast<std::size_t>(v)] += w;
      }
    }
    for (int p = 0; p < passes; ++p) {
      if (fm_pass(lg, side, lo0, hi0) <= 1e-12) break;
    }
    const double cut = side_cut(lg, side);
    if (cut < best_cut) {
      best_cut = cut;
      best_side = side;
    }
  }
  return best_side;
}

/// Recursive bisection into `blocks` blocks, each at most `cap` nodes
/// (cap = 0 means unbounded). Writes block ids into `block_of` starting at
/// `first_block`.
void recurse(const Digraph& undirected, const std::vector<NodeId>& subset,
             int blocks, std::size_t cap, int first_block, int passes,
             int restarts, std::mt19937& rng, std::vector<int>& block_of) {
  if (blocks <= 1 || subset.size() <= 1) {
    for (const NodeId v : subset) {
      block_of[static_cast<std::size_t>(v)] = first_block;
    }
    return;
  }
  const int k0 = blocks / 2;
  const int k1 = blocks - k0;
  const std::size_t n = subset.size();
  // Side sizes proportional to block counts, clamped so each side can still
  // host its blocks under the cap.
  std::size_t n0 = (n * static_cast<std::size_t>(k0) + static_cast<std::size_t>(blocks) - 1) /
                   static_cast<std::size_t>(blocks);
  if (cap > 0) {
    const std::size_t max0 = cap * static_cast<std::size_t>(k0);
    const std::size_t max1 = cap * static_cast<std::size_t>(k1);
    if (n > max1) n0 = std::max(n0, n - max1);
    n0 = std::min(n0, max0);
  }
  n0 = std::min(std::max<std::size_t>(n0, 1), n - 1);

  const LocalGraph lg = build_local(undirected, subset);
  // Slack lets FM wiggle but the cap side bound stays hard.
  std::size_t slack = std::max<std::size_t>(1, n / 10);
  if (cap > 0) {
    const std::size_t max0 = cap * static_cast<std::size_t>(k0);
    const std::size_t max1 = cap * static_cast<std::size_t>(k1);
    slack = std::min({slack, max0 >= n0 ? max0 - n0 : 0,
                      (n - n0) <= max1 ? std::min(slack, n0 - 1) : 0});
  }
  const std::vector<int> side = bisect(lg, n0, slack, passes, restarts, rng);

  std::vector<NodeId> sub0;
  std::vector<NodeId> sub1;
  for (std::size_t i = 0; i < n; ++i) {
    (side[i] == 0 ? sub0 : sub1).push_back(subset[i]);
  }
  recurse(undirected, sub0, k0, cap, first_block, passes, restarts, rng, block_of);
  recurse(undirected, sub1, k1, cap, first_block + k0, passes, restarts, rng, block_of);
}

/// Pairwise FM refinement between every block pair: builds the local graph
/// of the two blocks' nodes and lets fm_pass move nodes across, with side
/// bounds derived from the size cap. The best-prefix rollback inside
/// fm_pass guarantees the cut never worsens.
void pairwise_refine(const Digraph& undirected, int blocks, std::size_t cap,
                     int passes, int rounds, std::vector<int>& block_of) {
  for (int round = 0; round < rounds; ++round) {
    bool improved = false;
    for (int a = 0; a < blocks; ++a) {
      for (int b = a + 1; b < blocks; ++b) {
        std::vector<NodeId> subset;
        std::vector<int> side;
        for (std::size_t v = 0; v < block_of.size(); ++v) {
          if (block_of[v] == a || block_of[v] == b) {
            subset.push_back(static_cast<NodeId>(v));
            side.push_back(block_of[v] == a ? 0 : 1);
          }
        }
        if (subset.size() < 2) continue;
        const LocalGraph lg = build_local(undirected, subset);
        const std::size_t n = subset.size();
        // Both blocks must stay non-empty (the caller asked for `blocks`
        // switches; merging them would silently change the design point)
        // and within the size cap.
        const std::size_t hi0 = std::min(n - 1, cap > 0 ? cap : n - 1);
        const std::size_t lo0 = std::max<std::size_t>(1, cap > 0 && n > cap ? n - cap : 1);
        if (lo0 > hi0) continue;
        double gain = 0.0;
        for (int p = 0; p < passes; ++p) {
          const double g = fm_pass(lg, side, lo0, hi0);
          gain += g;
          if (g <= 1e-12) break;
        }
        if (gain > 1e-12) {
          improved = true;
          for (std::size_t i = 0; i < subset.size(); ++i) {
            block_of[static_cast<std::size_t>(subset[i])] = side[i] == 0 ? a : b;
          }
        }
      }
    }
    if (!improved) break;
  }
}

}  // namespace

PartitionResult kway_mincut(const Digraph& g, const KwayOptions& options) {
  if (options.blocks < 1) throw std::invalid_argument("kway_mincut: blocks < 1");
  const std::size_t n = g.node_count();
  PartitionResult result;
  result.blocks = options.blocks;
  if (options.max_block_size > 0 &&
      static_cast<std::size_t>(options.blocks) * options.max_block_size < n) {
    throw std::invalid_argument(
        "kway_mincut: blocks * max_block_size < node_count (cannot fit)");
  }
  result.block_of.assign(n, 0);
  if (n == 0) {
    result.feasible = true;
    return result;
  }

  const Digraph undirected = g.undirected_view();
  std::vector<NodeId> all(n);
  std::iota(all.begin(), all.end(), 0);
  std::mt19937 rng(options.seed);
  recurse(undirected, all, options.blocks, options.max_block_size, 0,
          options.refinement_passes, options.restarts, rng, result.block_of);
  if (options.pairwise_refinement && options.blocks > 2) {
    pairwise_refine(undirected, options.blocks, options.max_block_size,
                    options.refinement_passes, options.pairwise_rounds,
                    result.block_of);
  }

  result.cut_weight = undirected.cut_weight(result.block_of);
  result.feasible = true;
  if (options.max_block_size > 0) {
    for (const std::size_t s : block_sizes(result.block_of, options.blocks)) {
      if (s > options.max_block_size) result.feasible = false;
    }
  }
  return result;
}

PartitionResult agglomerative_cluster(const Digraph& g, int clusters,
                                      std::size_t max_cluster_size) {
  if (clusters < 1) throw std::invalid_argument("agglomerative_cluster: clusters < 1");
  const std::size_t n = g.node_count();
  PartitionResult result;
  result.blocks = clusters;
  result.block_of.assign(n, 0);
  if (n == 0) {
    result.feasible = true;
    return result;
  }
  if (static_cast<std::size_t>(clusters) > n) {
    throw std::invalid_argument("agglomerative_cluster: clusters > node_count");
  }
  if (max_cluster_size > 0 &&
      static_cast<std::size_t>(clusters) * max_cluster_size < n) {
    throw std::invalid_argument("agglomerative_cluster: size cap cannot fit");
  }

  const Digraph u = g.undirected_view();
  // cluster id per node; clusters are merged by relabelling (n is small --
  // tens of cores -- so the quadratic approach is fine and simple).
  std::vector<int> cl(n);
  std::iota(cl.begin(), cl.end(), 0);
  std::vector<std::size_t> size(n, 1);
  int alive = static_cast<int>(n);

  // Pairwise inter-cluster weights.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (const auto& e : u.edges()) {
    const auto a = static_cast<std::size_t>(e.src);
    const auto b = static_cast<std::size_t>(e.dst);
    if (a == b) continue;
    w[a][b] += e.weight;
    w[b][a] += e.weight;
  }

  std::vector<bool> dead(n, false);
  while (alive > clusters) {
    // Heaviest mergeable pair; ties broken by (a, b) for determinism.
    int best_a = -1;
    int best_b = -1;
    double best_w = -1.0;
    for (std::size_t a = 0; a < n; ++a) {
      if (dead[a]) continue;
      for (std::size_t b = a + 1; b < n; ++b) {
        if (dead[b]) continue;
        if (max_cluster_size > 0 && size[a] + size[b] > max_cluster_size) continue;
        if (w[a][b] > best_w) {
          best_w = w[a][b];
          best_a = static_cast<int>(a);
          best_b = static_cast<int>(b);
        }
      }
    }
    if (best_a < 0) {
      result.feasible = false;  // cap made further merging impossible
      break;
    }
    const auto a = static_cast<std::size_t>(best_a);
    const auto b = static_cast<std::size_t>(best_b);
    for (std::size_t c = 0; c < n; ++c) {
      if (dead[c] || c == a || c == b) continue;
      w[a][c] += w[b][c];
      w[c][a] += w[c][b];
    }
    size[a] += size[b];
    dead[b] = true;
    --alive;
    for (std::size_t v = 0; v < n; ++v) {
      if (cl[v] == best_b) cl[v] = best_a;
    }
  }

  // Compact cluster ids to [0, clusters).
  std::vector<int> remap(n, -1);
  int next = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (remap[static_cast<std::size_t>(cl[v])] == -1) {
      remap[static_cast<std::size_t>(cl[v])] = next++;
    }
    result.block_of[v] = remap[static_cast<std::size_t>(cl[v])];
  }
  result.blocks = next;
  if (alive == clusters) result.feasible = true;
  result.cut_weight = u.cut_weight(result.block_of);
  return result;
}

std::vector<std::size_t> block_sizes(const std::vector<int>& block_of, int blocks) {
  std::vector<std::size_t> sizes(static_cast<std::size_t>(std::max(blocks, 0)), 0);
  for (const int b : block_of) {
    if (b >= 0 && b < blocks) ++sizes[static_cast<std::size_t>(b)];
  }
  return sizes;
}

}  // namespace vinoc::partition

// Weighted min-cut partitioning.
//
// Two services:
//  * kway_mincut(): balanced k-way min-cut via recursive bisection with
//    Fiduccia–Mattheyses refinement and random restarts. This implements
//    step 11 of the paper's Algorithm 1 ("Perform k min-cut partitions of
//    VCG(V,E,j)"): cores in one block share a switch, so heavy communicators
//    land on the same switch and block size is capped by the island's
//    max_sw_size.
//  * agglomerative_cluster(): greedy heaviest-edge merging down to k
//    clusters. Used to build the paper's "communication based partitioning"
//    of cores into voltage islands (Section 5).
//
// All routines operate on the undirected coalesced view of the input graph
// and are deterministic for a fixed seed.
#pragma once

#include <cstddef>
#include <vector>

#include "vinoc/graph/digraph.hpp"

namespace vinoc::partition {

struct KwayOptions {
  int blocks = 2;
  /// Hard cap on nodes per block (the paper's max_sw_size minus the ports
  /// needed for inter-switch links). 0 = no cap beyond balance.
  std::size_t max_block_size = 0;
  /// FM passes per bisection level.
  int refinement_passes = 8;
  /// Random restarts; the best cut wins.
  int restarts = 4;
  unsigned seed = 1;
  /// After recursive bisection, run FM between every pair of blocks until
  /// no pair improves (bounded rounds). Recursive bisection fixes early
  /// decisions; the pairwise pass can undo them and never worsens the cut.
  bool pairwise_refinement = true;
  int pairwise_rounds = 3;
};

struct PartitionResult {
  std::vector<int> block_of;  ///< block index per node, in [0, blocks)
  int blocks = 0;
  double cut_weight = 0.0;  ///< undirected cut weight of the result
  bool feasible = false;    ///< false iff the size cap cannot be met
};

/// Balanced k-way min-cut. Throws std::invalid_argument on blocks < 1 or an
/// impossible cap (blocks * max_block_size < node_count).
PartitionResult kway_mincut(const graph::Digraph& g, const KwayOptions& options);

/// Greedy agglomerative clustering: repeatedly merges the pair of clusters
/// joined by the largest total edge weight until exactly `clusters` remain
/// (merging zero-weight pairs arbitrarily-but-deterministically if the graph
/// disconnects first). `max_cluster_size` of 0 means unbounded.
PartitionResult agglomerative_cluster(const graph::Digraph& g, int clusters,
                                      std::size_t max_cluster_size = 0);

/// Sizes of each block (histogram of block_of).
std::vector<std::size_t> block_sizes(const std::vector<int>& block_of, int blocks);

}  // namespace vinoc::partition

#include "vinoc/obs/profile.hpp"

#include <chrono>
#include <ctime>

namespace vinoc::obs {
namespace {

/// Relaxed atomics are sufficient: totals are read only after the profiled
/// region quiesces (pool join / end of run), and int64 adds commute.
struct AtomicTotals {
  struct PerPhase {
    std::atomic<std::int64_t> wall_ns{0};
    std::atomic<std::int64_t> cpu_ns{0};
    std::atomic<std::int64_t> enters{0};
  };
  std::array<PerPhase, kPhaseCount> phase{};
};

AtomicTotals& totals() {
  static AtomicTotals t;
  return t;
}

constexpr const char* kPhaseNames[kPhaseCount] = {
    "floorplan", "partition", "route", "metrics", "prune", "merge",
};

}  // namespace

const char* phase_name(Phase phase) {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

namespace detail {
std::atomic<bool> g_profiling_enabled{false};

void phase_accumulate(Phase phase, std::int64_t wall_ns, std::int64_t cpu_ns) {
  auto& slot = totals().phase[static_cast<std::size_t>(phase)];
  slot.wall_ns.fetch_add(wall_ns, std::memory_order_relaxed);
  slot.cpu_ns.fetch_add(cpu_ns, std::memory_order_relaxed);
  slot.enters.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t thread_cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }
#endif
  return 0;
}

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace detail

void set_profiling_enabled(bool enabled) {
  detail::g_profiling_enabled.store(enabled, std::memory_order_relaxed);
}

bool profiling_enabled() {
  return detail::g_profiling_enabled.load(std::memory_order_relaxed);
}

PhaseTotals phase_totals() {
  PhaseTotals out;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto& slot = totals().phase[i];
    out.phase[i].wall_ns = slot.wall_ns.load(std::memory_order_relaxed);
    out.phase[i].cpu_ns = slot.cpu_ns.load(std::memory_order_relaxed);
    out.phase[i].enters = slot.enters.load(std::memory_order_relaxed);
  }
  return out;
}

void reset_phase_totals() {
  for (auto& slot : totals().phase) {
    slot.wall_ns.store(0, std::memory_order_relaxed);
    slot.cpu_ns.store(0, std::memory_order_relaxed);
    slot.enters.store(0, std::memory_order_relaxed);
  }
}

}  // namespace vinoc::obs

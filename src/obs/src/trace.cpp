#include "vinoc/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace vinoc::obs {
namespace {

/// Fixed-capacity event ring for one thread. The owning thread appends
/// under `mu`; the collector reads under the same mutex. Contention is
/// effectively zero (the exporter runs after the traced region quiesces),
/// so a mutex beats a lock-free ring on simplicity and TSan cleanliness.
struct TraceSink {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t capacity = 0;
  std::size_t head = 0;  ///< next write position once the ring is full
  bool wrapped = false;
  std::uint64_t dropped = 0;
  int tid = 0;
  std::string name;

  void push(const TraceEvent& ev) {
    const std::lock_guard<std::mutex> lock(mu);
    if (ring.size() < capacity) {
      ring.push_back(ev);
      return;
    }
    // Drop-oldest: overwrite the slot `head` points at and count the loss.
    ring[head] = ev;
    head = (head + 1) % capacity;
    wrapped = true;
    ++dropped;
  }

  /// Events in record order (oldest surviving first).
  void snapshot_into(std::vector<TraceEvent>& out) {
    const std::lock_guard<std::mutex> lock(mu);
    if (!wrapped) {
      out.insert(out.end(), ring.begin(), ring.end());
      return;
    }
    out.insert(out.end(), ring.begin() + static_cast<std::ptrdiff_t>(head),
               ring.end());
    out.insert(out.end(), ring.begin(),
               ring.begin() + static_cast<std::ptrdiff_t>(head));
  }
};

struct Collector {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceSink>> live;     ///< threads still running
  std::vector<std::shared_ptr<TraceSink>> retired;  ///< flushed at thread exit
  std::size_t ring_capacity = 1u << 16;
  int next_tid = 0;
  std::chrono::steady_clock::time_point epoch;
  bool epoch_set = false;
};

Collector& collector() {
  static Collector c;  // leaked-on-exit singleton; sinks outlive any thread
  return c;
}

/// Thread-local handle: shared ownership with the collector so the sink
/// (and its events) survives this thread's death until reset_tracing().
thread_local std::shared_ptr<TraceSink> t_sink;

TraceSink& local_sink() {
  if (!t_sink) {
    auto sink = std::make_shared<TraceSink>();
    Collector& c = collector();
    const std::lock_guard<std::mutex> lock(c.mu);
    sink->capacity = std::max<std::size_t>(1, c.ring_capacity);
    sink->ring.reserve(std::min<std::size_t>(sink->capacity, 1024));
    sink->tid = c.next_tid++;
    c.live.push_back(sink);
    t_sink = std::move(sink);
  }
  return *t_sink;
}

}  // namespace

namespace detail {
std::atomic<bool> g_tracing_enabled{false};

void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns) {
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns - start_ns;
  TraceSink& sink = local_sink();
  ev.tid = sink.tid;
  sink.push(ev);
}
}  // namespace detail

void set_tracing_enabled(bool enabled) {
  if (enabled) trace_now_ns();  // arm the epoch before the first span
  detail::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

std::int64_t trace_now_ns() {
  Collector& c = collector();
  const auto now = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(c.mu);
    if (!c.epoch_set) {
      c.epoch = now;
      c.epoch_set = true;
    }
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now - c.epoch)
        .count();
  }
}

void set_trace_ring_capacity(std::size_t events) {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mu);
  c.ring_capacity = std::max<std::size_t>(1, events);
}

void set_thread_trace_name(const std::string& name) {
  TraceSink& sink = local_sink();
  const std::lock_guard<std::mutex> lock(sink.mu);
  sink.name = name;
}

void flush_thread_trace_sink() {
  if (!t_sink) return;
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mu);
  auto it = std::find(c.live.begin(), c.live.end(), t_sink);
  if (it != c.live.end()) {
    c.retired.push_back(std::move(*it));
    c.live.erase(it);
  }
  t_sink.reset();
}

TraceSnapshot collect_trace_events() {
  TraceSnapshot snap;
  Collector& c = collector();
  std::vector<std::shared_ptr<TraceSink>> sinks;
  {
    const std::lock_guard<std::mutex> lock(c.mu);
    sinks.reserve(c.live.size() + c.retired.size());
    sinks.insert(sinks.end(), c.live.begin(), c.live.end());
    sinks.insert(sinks.end(), c.retired.begin(), c.retired.end());
    snap.thread_names.resize(static_cast<std::size_t>(c.next_tid));
  }
  for (const auto& sink : sinks) {
    sink->snapshot_into(snap.events);
    const std::lock_guard<std::mutex> lock(sink->mu);
    snap.dropped_events += sink->dropped;
    if (sink->tid >= 0 &&
        static_cast<std::size_t>(sink->tid) < snap.thread_names.size()) {
      snap.thread_names[static_cast<std::size_t>(sink->tid)] = sink->name;
    }
  }
  // Deterministic lane-major order; within a lane, outer spans (same start,
  // longer duration) sort before the children they enclose.
  std::sort(snap.events.begin(), snap.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;
            });
  return snap;
}

void reset_tracing() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mu);
  // Live sinks belong to running threads whose thread_local handles still
  // point at them; empty each in place rather than orphaning it.
  for (const auto& sink : c.live) {
    const std::lock_guard<std::mutex> slock(sink->mu);
    sink->ring.clear();
    sink->head = 0;
    sink->wrapped = false;
    sink->dropped = 0;
  }
  c.retired.clear();
  c.epoch_set = false;
}

}  // namespace vinoc::obs

#include "vinoc/obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace vinoc::obs {

void Histogram::observe(std::int64_t value) {
  if (buckets.empty()) buckets.assign(kBuckets, 0);
  const auto v = value < 0 ? 0ull : static_cast<std::uint64_t>(value);
  const int bucket = std::bit_width(v);  // 0 for 0, 1 for 1, 2 for 2..3, ...
  ++buckets[static_cast<std::size_t>(bucket)];
  ++count;
  sum += value < 0 ? 0 : value;
  max = std::max(max, value);
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count == 0) return;
  if (buckets.empty()) buckets.assign(kBuckets, 0);
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

void Registry::add(std::string_view name, std::int64_t delta, MergeOp op) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    if (e.op != op) {
      throw std::logic_error("obs::Registry: merge-op mismatch for metric '" +
                             e.name + "'");
    }
    if (op == MergeOp::kMax) {
      e.value = std::max(e.value, delta);
    } else {
      e.value += delta;
    }
    return;
  }
  index_.emplace(std::string(name), entries_.size());
  entries_.push_back(Entry{std::string(name), op, delta});
}

void Registry::record_max(std::string_view name, std::int64_t value) {
  add(name, value, MergeOp::kMax);
}

std::int64_t Registry::value(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? 0 : entries_[it->second].value;
}

void Registry::observe(std::string_view name, std::int64_t value) {
  auto key = std::string(name);
  const auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    histogram_names_.push_back(key);
    histograms_[std::move(key)].observe(value);
  } else {
    it->second.observe(value);
  }
}

const Histogram* Registry::histogram(std::string_view name) const {
  const auto it = histograms_.find(std::string(name));
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::set_gauge(std::string_view name, double value) {
  auto key = std::string(name);
  if (gauges_.find(key) == gauges_.end()) gauge_names_.push_back(key);
  gauges_[std::move(key)] = value;
}

double Registry::gauge(std::string_view name) const {
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0.0 : it->second;
}

void Registry::merge_from(const Registry& other) {
  for (const Entry& e : other.entries_) add(e.name, e.value, e.op);
  for (const std::string& name : other.histogram_names_) {
    auto key = name;
    const auto src = other.histograms_.find(key);
    const auto it = histograms_.find(key);
    if (it == histograms_.end()) {
      histogram_names_.push_back(key);
      histograms_[std::move(key)].merge_from(src->second);
    } else {
      it->second.merge_from(src->second);
    }
  }
  // Gauges intentionally NOT merged: they are serialization-time derived
  // values, and cross-shard double accumulation would be order-dependent.
}

void Registry::sort_by_name() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  index_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    index_.emplace(entries_[i].name, i);
  }
  std::sort(gauge_names_.begin(), gauge_names_.end());
  std::sort(histogram_names_.begin(), histogram_names_.end());
}

void Registry::clear() {
  entries_.clear();
  index_.clear();
  gauge_names_.clear();
  gauges_.clear();
  histogram_names_.clear();
  histograms_.clear();
}

Registry& ShardedRegistry::local() {
  const std::thread::id id = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = shards_[id];
  if (!slot) slot = std::make_unique<Registry>();
  return *slot;
}

Registry ShardedRegistry::merged() const {
  Registry out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, shard] : shards_) {
      (void)id;
      out.merge_from(*shard);
    }
  }
  out.sort_by_name();
  return out;
}

void ShardedRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  shards_.clear();
}

}  // namespace vinoc::obs

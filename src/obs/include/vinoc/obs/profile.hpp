// vinoc::obs — per-phase wall/CPU attribution for the synthesis pipeline.
//
// Answers "where did the time actually go" without a rebuild: each pipeline
// phase (floorplan / partition / route / metrics / prune / merge) is
// bracketed by a PhaseScope, which accumulates wall time
// (steady_clock) and thread CPU time (CLOCK_THREAD_CPUTIME_ID) into
// process-wide per-phase totals. Totals are summed across threads — on an
// N-worker pool, a phase's cpu_s can exceed its wall_s; that ratio IS the
// parallelism attribution ROADMAP item 5 needs.
//
// Like tracing, profiling is a runtime knob that never perturbs results:
// off by default, one relaxed atomic load when disabled, and no phase data
// feeds back into synthesis. The accumulated snapshot is exported as a
// `phase_profile` JSONL record by benches and `vinoc campaign`
// (io/obs_writers.hpp::phase_profile_record).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace vinoc::obs {

enum class Phase : std::uint8_t {
  kFloorplan = 0,
  kPartition,
  kRoute,
  kMetrics,
  kPrune,
  kMerge,
  kCount_,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount_);

/// Stable lowercase names, used as JSONL field prefixes
/// ("floorplan_wall_s", ...). Order matches the Phase enum.
[[nodiscard]] const char* phase_name(Phase phase);

struct PhaseTotals {
  struct PerPhase {
    std::int64_t wall_ns = 0;
    std::int64_t cpu_ns = 0;   ///< summed across threads
    std::int64_t enters = 0;   ///< number of scopes
  };
  std::array<PerPhase, kPhaseCount> phase{};
};

void set_profiling_enabled(bool enabled);
[[nodiscard]] bool profiling_enabled();

/// Snapshot of the accumulated totals since the last reset.
[[nodiscard]] PhaseTotals phase_totals();
void reset_phase_totals();

namespace detail {
extern std::atomic<bool> g_profiling_enabled;
void phase_accumulate(Phase phase, std::int64_t wall_ns, std::int64_t cpu_ns);
[[nodiscard]] std::int64_t thread_cpu_now_ns();
[[nodiscard]] std::int64_t wall_now_ns();
}  // namespace detail

/// RAII phase bracket. Safe to nest different phases (each accumulates its
/// own slice, so nested time is attributed to BOTH scopes — by design:
/// phase totals answer "time spent under phase X", not an exclusive
/// breakdown).
class PhaseScope {
 public:
  explicit PhaseScope(Phase phase) {
    if (detail::g_profiling_enabled.load(std::memory_order_relaxed)) {
      phase_ = phase;
      armed_ = true;
      wall_start_ = detail::wall_now_ns();
      cpu_start_ = detail::thread_cpu_now_ns();
    }
  }
  ~PhaseScope() {
    if (armed_) {
      detail::phase_accumulate(phase_, detail::wall_now_ns() - wall_start_,
                               detail::thread_cpu_now_ns() - cpu_start_);
    }
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Phase phase_ = Phase::kFloorplan;
  bool armed_ = false;
  std::int64_t wall_start_ = 0;
  std::int64_t cpu_start_ = 0;
};

}  // namespace vinoc::obs

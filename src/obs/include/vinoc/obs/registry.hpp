// vinoc::obs — typed metrics registry with deterministic shard merging.
//
// The registry is the single source of truth for the pipeline's counters:
// SynthesisStats, WidthSetStats and CampaignResult aggregation are derived
// FROM it (not maintained beside it), and every CLI summary line / --json
// record serializes it through one path (io/obs_writers.hpp), so a counter
// can no longer drift between the struct, the human line and the JSON
// record.
//
// Determinism contract: shard-mergeable values are restricted to int64
// counters combined with commutative, associative ops (kSum, kMax). A
// merged export is therefore byte-identical whether the run used 1 thread
// or N (test_obs locks this in). Floating-point values exist only as
// *derived gauges* computed once at serialization time (e.g. a reuse
// rate), never accumulated across shards — summing doubles in
// thread-arrival order would break the byte-identity guarantee.
//
// Histograms are log2-bucketed int64 samples (bucket = bit-width of the
// value); bucket counts sum-merge, so they inherit the same determinism.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace vinoc::obs {

enum class MergeOp : std::uint8_t {
  kSum,  ///< counters: totals across shards
  kMax,  ///< high-water marks (e.g. peak buffered outcomes)
};

/// Log2-bucketed histogram of non-negative int64 samples. Bucket i counts
/// samples whose bit-width is i (bucket 0 = value 0, bucket 1 = value 1,
/// bucket 2 = 2..3, ...). All fields sum/max-merge deterministically.
struct Histogram {
  static constexpr int kBuckets = 64;
  std::vector<std::int64_t> buckets;  ///< sized kBuckets on first observe
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t max = 0;

  void observe(std::int64_t value);
  void merge_from(const Histogram& other);
};

/// An ordered collection of named metrics. Not thread-safe by itself —
/// wrap in ShardedRegistry for concurrent accumulation.
class Registry {
 public:
  struct Entry {
    std::string name;
    MergeOp op = MergeOp::kSum;
    std::int64_t value = 0;
  };

  /// Accumulates `delta` into counter `name` (registering it on first use).
  /// `op` is fixed at first registration; later calls must agree.
  void add(std::string_view name, std::int64_t delta, MergeOp op = MergeOp::kSum);

  /// max-merge convenience: counter `name` becomes max(current, value).
  void record_max(std::string_view name, std::int64_t value);

  /// Value of counter `name`, or 0 if it was never registered.
  [[nodiscard]] std::int64_t value(std::string_view name) const;

  /// Histogram sample (registers the histogram on first use).
  void observe(std::string_view name, std::int64_t value);
  [[nodiscard]] const Histogram* histogram(std::string_view name) const;

  /// Derived double gauge, set once at serialization time. NOT shard-merged
  /// (merge_from ignores gauges by design — see file comment).
  void set_gauge(std::string_view name, double value);
  [[nodiscard]] double gauge(std::string_view name) const;  ///< 0.0 if absent

  /// Merges another registry's counters and histograms into this one using
  /// each entry's MergeOp. Unknown names register in `other`'s order.
  void merge_from(const Registry& other);

  /// Counters in registration order.
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  /// Gauge names in registration order (values via gauge()).
  [[nodiscard]] const std::vector<std::string>& gauge_names() const {
    return gauge_names_;
  }
  /// Histogram names in registration order (data via histogram()).
  [[nodiscard]] const std::vector<std::string>& histogram_names() const {
    return histogram_names_;
  }

  /// Re-orders counters, gauges and histograms by name. A name-sorted
  /// registry serializes identically however its shards were discovered —
  /// ShardedRegistry::merged() applies this before returning.
  void sort_by_name();

  void clear();

 private:
  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<std::string> gauge_names_;
  std::unordered_map<std::string, double> gauges_;
  std::vector<std::string> histogram_names_;
  std::unordered_map<std::string, Histogram> histograms_;
};

/// Per-thread Registry shards with a deterministic merge. Mirrors
/// exec::WorkerLocal's thread-id slot map, but lives here because obs must
/// stay a leaf module (exec's pool hooks call INTO obs; a dependency the
/// other way would be a cycle). Slots are never evicted while the sharded
/// registry lives, so `local()` references stay valid across pool joins.
class ShardedRegistry {
 public:
  /// The calling thread's private shard (no lock after first call per
  /// thread is NOT guaranteed — each call takes the map mutex briefly;
  /// cache the reference across a hot loop).
  [[nodiscard]] Registry& local();

  /// Merges every shard into one name-sorted registry. Because all merge
  /// ops are commutative and associative over int64, the result is
  /// identical for any shard count and discovery order.
  [[nodiscard]] Registry merged() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::thread::id, std::unique_ptr<Registry>> shards_;
};

}  // namespace vinoc::obs

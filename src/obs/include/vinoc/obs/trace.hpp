// vinoc::obs — scoped-span tracing for the synthesis pipeline.
//
// Design constraints (see also registry.hpp / profile.hpp):
//
//  * Observability must NEVER perturb results. Tracing is a pure
//    wall-clock knob like SynthesisOptions::threads: it is not part of any
//    spec hash, and enabling it changes no routed bit. Spans only READ the
//    pipeline; they write to per-thread sinks owned by this module.
//  * Near-zero cost when off. OBS_SPAN compiles to one relaxed atomic load
//    and a branch when tracing is runtime-disabled (measured on
//    bench_eval_hotpath; the obs_span_overhead metric tracks it), and to
//    NOTHING when the TU is built with -DVINOC_OBS_NO_TRACE.
//  * Lock-free on the hot path is not required — spans are recorded at
//    candidate/phase granularity (>= tens of microseconds each), so a
//    per-thread sink guarded by an uncontended mutex (only the exporter
//    ever contends) is both simple and TSan-clean.
//
// Each thread that records a span lazily registers a TraceSink: a
// fixed-capacity ring of TraceEvents with a DROP-OLDEST overflow policy
// (the newest events are the ones a flame timeline needs; the dropped
// count is reported in the export so truncation is never silent). Sinks
// are owned by the process-wide collector via shared_ptr, so events
// survive thread exit — a ThreadPool's workers flush implicitly when they
// quiesce (see exec/thread_pool.cpp's obs::on_worker_started/
// on_worker_exiting hooks, which also name the lane in the export).
//
// Export: collect_trace_events() snapshots every sink (live and retired)
// into one list sorted by (tid, start) — exactly what the Chrome
// trace_event writer (io/obs_writers.hpp) and tools/trace_check consume.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace vinoc::obs {

/// One completed span ("X" phase in Chrome trace_event terms).
struct TraceEvent {
  const char* name = nullptr;  ///< static-storage literal (never freed)
  std::int64_t start_ns = 0;   ///< since trace_epoch (process start)
  std::int64_t dur_ns = 0;
  int tid = 0;  ///< dense per-thread id, assigned on first span
};

/// Runtime switch. Off by default; flipping it on/off is cheap and takes
/// effect on the next OBS_SPAN construction.
void set_tracing_enabled(bool enabled);
[[nodiscard]] bool tracing_enabled();

/// Nanoseconds since the trace epoch (steady clock; the epoch is captured
/// on first use so early spans do not start at huge offsets).
[[nodiscard]] std::int64_t trace_now_ns();

/// Capacity of each per-thread ring, in events. Applies to sinks created
/// AFTER the call (tests shrink it to exercise the drop-oldest policy).
void set_trace_ring_capacity(std::size_t events);

/// Labels the calling thread's sink in the export ("worker" lanes vs the
/// caller lane). exec::ThreadPool calls this from every worker.
void set_thread_trace_name(const std::string& name);

/// Flushes the calling thread's sink into the collector's retired list and
/// detaches it (subsequent spans on this thread start a fresh sink).
/// exec::ThreadPool calls this as each worker exits — the "flush at pool
/// quiesce" hook — so a pool's events are fully visible to an export that
/// runs after the pool is destroyed, and dead threads leave no live sink.
void flush_thread_trace_sink();

struct TraceSnapshot {
  std::vector<TraceEvent> events;  ///< sorted by (tid, start_ns, -dur_ns)
  /// tid -> lane name ("main", "worker", ...); indexed by TraceEvent::tid.
  std::vector<std::string> thread_names;
  std::uint64_t dropped_events = 0;  ///< ring overflow across all sinks
};

/// Snapshots every sink (live threads included — call after the traced
/// region quiesces for a complete picture).
[[nodiscard]] TraceSnapshot collect_trace_events();

/// Drops all recorded events, retired sinks and the dropped count, and
/// re-arms the epoch. Tests isolate themselves with this; the CLI does not
/// need it (one traced run per process).
void reset_tracing();

namespace detail {
void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns);
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

/// RAII scoped span. `name` MUST be a string literal (or otherwise outlive
/// the trace export): only the pointer is stored on the hot path.
class Span {
 public:
  explicit Span(const char* name) {
    if (detail::g_tracing_enabled.load(std::memory_order_relaxed)) {
      name_ = name;
      start_ns_ = trace_now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr) detail::record_span(name_, start_ns_, trace_now_ns());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace vinoc::obs

// OBS_SPAN("route_flows"): trace the enclosing scope. Compiled out entirely
// with -DVINOC_OBS_NO_TRACE; otherwise a relaxed load + branch when tracing
// is disabled at runtime.
#ifdef VINOC_OBS_NO_TRACE
#define OBS_SPAN(name) \
  do {                 \
  } while (false)
#else
#define OBS_SPAN_CONCAT2(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT2(a, b)
#define OBS_SPAN(name) \
  const ::vinoc::obs::Span OBS_SPAN_CONCAT(obs_span_, __LINE__) { name }
#endif

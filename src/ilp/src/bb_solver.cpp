#include "vinoc/ilp/bb_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vinoc::ilp {

namespace {
constexpr double kTol = 1e-9;
constexpr std::uint8_t kFree = 2;
}  // namespace

int Model::add_var(double cost, std::string name) {
  costs_.push_back(cost);
  var_names_.push_back(std::move(name));
  return static_cast<int>(costs_.size()) - 1;
}

void Model::add_constraint(Constraint c) {
  if (c.var_ids.size() != c.coeffs.size()) {
    throw std::invalid_argument("Constraint: var/coeff size mismatch");
  }
  for (const int v : c.var_ids) {
    if (v < 0 || static_cast<std::size_t>(v) >= var_count()) {
      throw std::out_of_range("Constraint references unknown variable");
    }
  }
  constraints_.push_back(std::move(c));
}

void Model::add_linear(const std::vector<int>& vars, const std::vector<double>& coeffs,
                       Sense sense, double rhs, std::string name) {
  Constraint c;
  c.var_ids = vars;
  c.coeffs = coeffs;
  c.sense = sense;
  c.rhs = rhs;
  c.name = std::move(name);
  add_constraint(std::move(c));
}

double Model::objective(const std::vector<std::uint8_t>& x) const {
  double obj = 0.0;
  for (std::size_t i = 0; i < costs_.size(); ++i) {
    if (x.at(i) != 0) obj += costs_[i];
  }
  return obj;
}

bool Model::feasible(const std::vector<std::uint8_t>& x) const {
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (std::size_t i = 0; i < c.var_ids.size(); ++i) {
      if (x.at(static_cast<std::size_t>(c.var_ids[i])) != 0) lhs += c.coeffs[i];
    }
    switch (c.sense) {
      case Sense::kLessEqual:
        if (lhs > c.rhs + kTol) return false;
        break;
      case Sense::kGreaterEqual:
        if (lhs < c.rhs - kTol) return false;
        break;
      case Sense::kEqual:
        if (std::abs(lhs - c.rhs) > kTol) return false;
        break;
    }
  }
  return true;
}

namespace {

/// Search state shared across the DFS.
struct Search {
  const Model& model;
  const std::vector<int>& order;          // variable branching order
  std::vector<std::uint8_t> assign;       // 0 / 1 / kFree
  double best_obj;
  std::vector<std::uint8_t> best_assign;
  bool found = false;
  std::int64_t nodes = 0;
  std::int64_t max_nodes;
  bool node_limit_hit = false;
};

/// For a partial assignment, returns false if some constraint can no longer
/// be satisfied no matter how the free variables are set.
bool partial_feasible(const Model& m, const std::vector<std::uint8_t>& assign) {
  for (const Constraint& c : m.constraints()) {
    double lo = 0.0;  // minimum achievable LHS
    double hi = 0.0;  // maximum achievable LHS
    for (std::size_t i = 0; i < c.var_ids.size(); ++i) {
      const std::uint8_t v = assign[static_cast<std::size_t>(c.var_ids[i])];
      const double a = c.coeffs[i];
      if (v == 1) {
        lo += a;
        hi += a;
      } else if (v == kFree) {
        lo += std::min(0.0, a);
        hi += std::max(0.0, a);
      }
    }
    switch (c.sense) {
      case Sense::kLessEqual:
        if (lo > c.rhs + kTol) return false;
        break;
      case Sense::kGreaterEqual:
        if (hi < c.rhs - kTol) return false;
        break;
      case Sense::kEqual:
        if (lo > c.rhs + kTol || hi < c.rhs - kTol) return false;
        break;
    }
  }
  return true;
}

/// Lower bound on the completed objective: committed cost plus every
/// beneficial (negative-cost) free variable taken.
double lower_bound(const Model& m, const std::vector<std::uint8_t>& assign) {
  double lb = 0.0;
  for (std::size_t i = 0; i < m.var_count(); ++i) {
    const double c = m.cost(static_cast<int>(i));
    if (assign[i] == 1) {
      lb += c;
    } else if (assign[i] == kFree && c < 0.0) {
      lb += c;
    }
  }
  return lb;
}

void dfs(Search& s, std::size_t depth) {
  if (s.node_limit_hit) return;
  if (++s.nodes > s.max_nodes) {
    s.node_limit_hit = true;
    return;
  }
  if (!partial_feasible(s.model, s.assign)) return;
  const double lb = lower_bound(s.model, s.assign);
  if (s.found && lb >= s.best_obj - kTol) return;

  if (depth == s.order.size()) {
    // All variables fixed; partial_feasible on a full assignment is exact.
    if (!s.found || lb < s.best_obj - kTol) {
      s.best_obj = lb;
      s.best_assign = s.assign;
      s.found = true;
    }
    return;
  }

  const auto var = static_cast<std::size_t>(s.order[depth]);
  // Try the objective-friendly value first.
  const std::uint8_t first = s.model.cost(static_cast<int>(var)) < 0.0 ? 1 : 0;
  for (const std::uint8_t val : {first, static_cast<std::uint8_t>(1 - first)}) {
    s.assign[var] = val;
    dfs(s, depth + 1);
    if (s.node_limit_hit) break;
  }
  s.assign[var] = kFree;
}

}  // namespace

SolveResult solve(const Model& model, const SolveOptions& options) {
  SolveResult result;
  const std::size_t n = model.var_count();

  // Branch on high-impact variables first: large |cost|, then constraint use.
  std::vector<std::size_t> usage(n, 0);
  for (const Constraint& c : model.constraints()) {
    for (const int v : c.var_ids) ++usage[static_cast<std::size_t>(v)];
  }
  std::vector<int> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ca = std::abs(model.cost(a));
    const double cb = std::abs(model.cost(b));
    if (ca != cb) return ca > cb;
    return usage[static_cast<std::size_t>(a)] > usage[static_cast<std::size_t>(b)];
  });

  Search s{model, order, std::vector<std::uint8_t>(n, kFree),
           std::numeric_limits<double>::infinity(), {}, false, 0,
           options.max_nodes, false};

  if (options.warm_start.has_value()) {
    const auto& ws = *options.warm_start;
    if (ws.size() != n) throw std::invalid_argument("warm_start size mismatch");
    if (model.feasible(ws)) {
      s.best_obj = model.objective(ws);
      s.best_assign = ws;
      s.found = true;
    }
  }

  dfs(s, 0);

  result.nodes_explored = s.nodes;
  if (s.node_limit_hit && !s.found) {
    result.status = SolveResult::Status::kNodeLimit;
    return result;
  }
  if (!s.found) {
    result.status = SolveResult::Status::kInfeasible;
    return result;
  }
  result.status = s.node_limit_hit ? SolveResult::Status::kNodeLimit
                                   : SolveResult::Status::kOptimal;
  result.objective = s.best_obj;
  result.assignment = s.best_assign;
  return result;
}

}  // namespace vinoc::ilp

#include "vinoc/ilp/mincut_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace vinoc::ilp {

BisectionResult optimal_bisection(const graph::Digraph& g, std::size_t min_side,
                                  std::size_t max_side, std::int64_t max_nodes) {
  const std::size_t n = g.node_count();
  if (n < 2) throw std::invalid_argument("optimal_bisection: need >= 2 nodes");
  if (min_side > max_side || max_side > n) {
    throw std::invalid_argument("optimal_bisection: bad side bounds");
  }
  const graph::Digraph u = g.undirected_view();

  Model m;
  std::vector<int> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = m.add_var(0.0, "x" + std::to_string(i));
  }
  // Break symmetry: node 0 on side 0.
  m.add_linear({x[0]}, {1.0}, Sense::kEqual, 0.0, "sym");

  std::vector<int> y;
  y.reserve(u.edge_count());
  for (std::size_t e = 0; e < u.edge_count(); ++e) {
    const auto& edge = u.edge(static_cast<graph::EdgeId>(e));
    const int ye = m.add_var(edge.weight, "y" + std::to_string(e));
    y.push_back(ye);
    const int xu = x[static_cast<std::size_t>(edge.src)];
    const int xv = x[static_cast<std::size_t>(edge.dst)];
    // y >= x_u - x_v   <=>   x_u - x_v - y <= 0
    m.add_linear({xu, xv, ye}, {1.0, -1.0, -1.0}, Sense::kLessEqual, 0.0);
    m.add_linear({xv, xu, ye}, {1.0, -1.0, -1.0}, Sense::kLessEqual, 0.0);
  }

  // Side-1 population bounds. (Side 0 bounds follow since sides partition V.)
  {
    std::vector<int> vars = x;
    std::vector<double> ones(n, 1.0);
    m.add_linear(vars, ones, Sense::kGreaterEqual, static_cast<double>(min_side), "bal_lo");
    m.add_linear(vars, ones, Sense::kLessEqual, static_cast<double>(max_side), "bal_hi");
  }

  SolveOptions opts;
  opts.max_nodes = max_nodes;
  const SolveResult r = solve(m, opts);

  BisectionResult out;
  if (r.status == SolveResult::Status::kInfeasible) return out;
  if (r.assignment.empty()) return out;  // node limit before any incumbent
  out.feasible = true;
  out.proven_optimal = (r.status == SolveResult::Status::kOptimal);
  out.cut_weight = r.objective;
  out.side_of.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.side_of[i] = r.assignment[static_cast<std::size_t>(x[i])];
  }
  return out;
}

LinkChoiceResult optimal_link_choice(const LinkChoiceProblem& prob,
                                     std::int64_t max_nodes) {
  Model m;
  const std::size_t nl = prob.links.size();
  std::vector<int> open_var(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    open_var[l] = m.add_var(prob.links[l].cost, "open" + std::to_string(l));
  }

  // Index candidate links by unordered endpoint pair.
  auto links_between = [&](int a, int b) {
    std::vector<std::size_t> out;
    for (std::size_t l = 0; l < nl; ++l) {
      const auto& cl = prob.links[l];
      if ((cl.a == a && cl.b == b) || (cl.a == b && cl.b == a)) out.push_back(l);
    }
    return out;
  };

  // Each flow picks exactly one route; a route via link set S requires all of
  // S open. Route variables cost 0.
  for (std::size_t f = 0; f < prob.flows.size(); ++f) {
    const auto& flow = prob.flows[f];
    std::vector<int> route_vars;

    auto add_route = [&](const std::vector<std::size_t>& link_set) {
      const int rv = m.add_var(0.0, "r" + std::to_string(f) + "_" +
                                        std::to_string(route_vars.size()));
      route_vars.push_back(rv);
      for (const std::size_t l : link_set) {
        // rv <= open_l
        m.add_linear({rv, open_var[l]}, {1.0, -1.0}, Sense::kLessEqual, 0.0);
      }
    };

    for (const std::size_t l : links_between(flow.src, flow.dst)) add_route({l});
    for (const int relay : prob.relays) {
      if (relay == flow.src || relay == flow.dst) continue;
      for (const std::size_t l1 : links_between(flow.src, relay)) {
        for (const std::size_t l2 : links_between(relay, flow.dst)) {
          add_route({l1, l2});
        }
      }
    }
    if (route_vars.empty()) return {};  // no way to route this flow
    std::vector<double> ones(route_vars.size(), 1.0);
    m.add_linear(route_vars, ones, Sense::kGreaterEqual, 1.0,
                 "flow" + std::to_string(f));
  }

  SolveOptions opts;
  opts.max_nodes = max_nodes;
  const SolveResult r = solve(m, opts);

  LinkChoiceResult out;
  if (r.status == SolveResult::Status::kInfeasible || r.assignment.empty()) return out;
  out.feasible = true;
  out.proven_optimal = (r.status == SolveResult::Status::kOptimal);
  out.total_cost = r.objective;
  out.opened.resize(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    out.opened[l] = r.assignment[static_cast<std::size_t>(open_var[l])] != 0;
  }
  return out;
}

}  // namespace vinoc::ilp

// Exact 0/1 integer linear program solver (branch and bound).
//
// The DAC'09 flow is a heuristic, but the reproduction uses exact
// optimization in two places:
//   * tests prove the FM partitioner's cut is optimal (or within a stated
//     bound) on small VI communication graphs by solving the min-cut ILP;
//   * tests cross-check the router's link-opening decisions against the
//     optimal link subset on toy topologies.
//
// Scope: binary variables only, linear objective and constraints. Bounding is
// LP-free (sum of beneficial free coefficients), plus per-constraint interval
// propagation for pruning infeasible subtrees. This is exponential in the
// worst case and intended for <= ~30 variables; solve() takes a node budget
// and reports if it was exhausted.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace vinoc::ilp {

enum class Sense { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: sum(coeffs[i] * x[var_ids[i]]) <sense> rhs.
struct Constraint {
  std::vector<int> var_ids;
  std::vector<double> coeffs;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

/// Minimization 0/1 ILP model.
class Model {
 public:
  /// Adds a binary variable with objective coefficient `cost`; returns its id.
  int add_var(double cost, std::string name = {});

  void add_constraint(Constraint c);
  /// Convenience: sum(coeffs . vars) <sense> rhs.
  void add_linear(const std::vector<int>& vars, const std::vector<double>& coeffs,
                  Sense sense, double rhs, std::string name = {});

  [[nodiscard]] std::size_t var_count() const { return costs_.size(); }
  [[nodiscard]] std::size_t constraint_count() const { return constraints_.size(); }
  [[nodiscard]] double cost(int var) const { return costs_.at(static_cast<std::size_t>(var)); }
  [[nodiscard]] const std::string& var_name(int var) const {
    return var_names_.at(static_cast<std::size_t>(var));
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Objective value of a full assignment.
  [[nodiscard]] double objective(const std::vector<std::uint8_t>& x) const;
  /// True if the full assignment satisfies every constraint (tolerance 1e-9).
  [[nodiscard]] bool feasible(const std::vector<std::uint8_t>& x) const;

 private:
  std::vector<double> costs_;
  std::vector<std::string> var_names_;
  std::vector<Constraint> constraints_;
};

struct SolveResult {
  enum class Status { kOptimal, kInfeasible, kNodeLimit };
  Status status = Status::kInfeasible;
  double objective = std::numeric_limits<double>::infinity();
  std::vector<std::uint8_t> assignment;  ///< size var_count() when a solution exists
  std::int64_t nodes_explored = 0;
};

struct SolveOptions {
  std::int64_t max_nodes = 50'000'000;
  /// Optional known-feasible warm start (size var_count()); tightens the
  /// incumbent immediately so the search mostly proves optimality.
  std::optional<std::vector<std::uint8_t>> warm_start;
};

/// Depth-first branch and bound with best-coefficient variable ordering.
SolveResult solve(const Model& model, const SolveOptions& options = {});

}  // namespace vinoc::ilp

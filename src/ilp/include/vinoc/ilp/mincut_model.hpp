// ILP formulations of graph partitioning problems, used to obtain provably
// optimal reference solutions for validating the heuristic partitioner.
#pragma once

#include <cstddef>
#include <vector>

#include "vinoc/graph/digraph.hpp"
#include "vinoc/ilp/bb_solver.hpp"

namespace vinoc::ilp {

/// Optimal balanced bisection of the undirected view of `g`:
/// minimize the cut weight subject to each side holding between
/// `min_side` and `max_side` nodes (inclusive). Formulation:
///   x_i in {0,1}  = side of node i (x_0 fixed to 0 to break symmetry)
///   y_e in {0,1}  = 1 iff edge e is cut, with y_e >= x_u - x_v and
///                   y_e >= x_v - x_u; minimizing sum(w_e * y_e) makes the
///                   relaxation tight at integral optima.
struct BisectionResult {
  bool feasible = false;
  bool proven_optimal = false;  ///< false if the node budget ran out
  double cut_weight = 0.0;
  std::vector<int> side_of;  ///< 0/1 per node
};

BisectionResult optimal_bisection(const graph::Digraph& g, std::size_t min_side,
                                  std::size_t max_side,
                                  std::int64_t max_nodes = 50'000'000);

/// Optimal "link opening" reference for the router cross-check: given
/// candidate links with opening costs and a set of unit flows (src,dst) that
/// must each be routed over exactly one candidate link connecting its
/// endpoints directly or via one relay node, choose the cheapest link subset.
/// This mirrors Algorithm 1's step-15 decision on a single-switch-per-VI
/// abstraction. Nodes are 0..node_count-1; relay nodes are `relays`.
struct LinkChoiceProblem {
  std::size_t node_count = 0;
  struct CandidateLink {
    int a = 0;
    int b = 0;        ///< undirected candidate link {a,b}
    double cost = 0;  ///< cost of opening it
  };
  std::vector<CandidateLink> links;
  struct UnitFlow {
    int src = 0;
    int dst = 0;
  };
  std::vector<UnitFlow> flows;
  std::vector<int> relays;  ///< nodes usable as the middle hop
};

struct LinkChoiceResult {
  bool feasible = false;
  bool proven_optimal = false;
  double total_cost = 0.0;
  std::vector<bool> opened;  ///< per candidate link
};

LinkChoiceResult optimal_link_choice(const LinkChoiceProblem& prob,
                                     std::int64_t max_nodes = 50'000'000);

}  // namespace vinoc::ilp

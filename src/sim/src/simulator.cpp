#include "vinoc/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <random>
#include <stdexcept>

namespace vinoc::sim {

namespace {

/// One hop of a packet's path. `resource` < 0 means a pure-latency stage
/// (switch pipeline) with no serialization/contention.
struct Stage {
  int resource = -1;
  double head_s = 0.0;      ///< added to the head flit
  double per_flit_s = 0.0;  ///< serialization time per flit
};

struct FlowPlan {
  std::vector<Stage> stages;
  double interarrival_s = 0.0;
  double src_freq_hz = 0.0;
  double bottleneck_capacity = 0.0;  ///< bits/s
};

double freq_of_switch(const core::NocTopology& topo, int sw) {
  return topo.switches[static_cast<std::size_t>(sw)].freq_hz;
}

}  // namespace

SimReport simulate(const core::NocTopology& topo, const soc::SocSpec& spec,
                   const models::Technology& tech, const SimOptions& options) {
  if (topo.routes.size() != spec.flows.size()) {
    throw std::invalid_argument("simulate: topology routes do not match spec flows");
  }
  if (options.packet_flits < 1 || options.duration_cycles <= 0.0 ||
      options.injection_scale <= 0.0) {
    throw std::invalid_argument("simulate: bad options");
  }

  const std::size_t n_links = topo.links.size();
  const std::size_t n_cores = spec.cores.size();
  // Resource ids: [0, n_links) inter-switch links, then NI-out and NI-in
  // links per core.
  const std::size_t n_resources = n_links + 2 * n_cores;
  auto ni_out_res = [n_links](soc::CoreId c) {
    return static_cast<int>(n_links + static_cast<std::size_t>(c));
  };
  auto ni_in_res = [n_links, n_cores](soc::CoreId c) {
    return static_cast<int>(n_links + n_cores + static_cast<std::size_t>(c));
  };

  // Build per-flow stage plans.
  std::vector<FlowPlan> plans(spec.flows.size());
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const soc::Flow& flow = spec.flows[f];
    const core::FlowRoute& route = topo.routes[f];
    FlowPlan& plan = plans[f];
    const double f_src = freq_of_switch(topo, route.src_switch);
    const double f_dst = freq_of_switch(topo, route.dst_switch);
    plan.src_freq_hz = f_src;

    const double width = options.link_width_bits;
    plan.bottleneck_capacity = width * f_src;

    // NI-out link + source switch pipeline.
    plan.stages.push_back({ni_out_res(flow.src), 1.0 / f_src, 1.0 / f_src});
    plan.stages.push_back({-1, tech.sw_pipeline_cycles / f_src, 0.0});

    for (const int l : route.links) {
      const core::TopLink& link = topo.links[static_cast<std::size_t>(l)];
      const double f_link = std::min(freq_of_switch(topo, link.src_switch),
                                     freq_of_switch(topo, link.dst_switch));
      const double link_cycles =
          link.crosses_island ? static_cast<double>(tech.fifo_latency_cycles) : 1.0;
      plan.stages.push_back({l, link_cycles / f_link, 1.0 / f_link});
      const double f_sw = freq_of_switch(topo, link.dst_switch);
      plan.stages.push_back({-1, tech.sw_pipeline_cycles / f_sw, 0.0});
      plan.bottleneck_capacity = std::min(plan.bottleneck_capacity, width * f_link);
    }
    plan.stages.push_back({ni_in_res(flow.dst), 1.0 / f_dst, 1.0 / f_dst});

    const double bits_per_packet = options.packet_flits * width;
    const double rate = flow.bandwidth_bits_per_s * options.injection_scale;
    plan.interarrival_s = bits_per_packet / rate;
  }

  // Demand-based saturation check (analytic, exact).
  SimReport report;
  report.link_utilization.assign(n_links, 0.0);
  {
    std::vector<double> demand(n_resources, 0.0);
    std::vector<double> capacity(n_resources, 0.0);
    for (std::size_t l = 0; l < n_links; ++l) {
      const core::TopLink& link = topo.links[l];
      capacity[l] = options.link_width_bits *
                    std::min(freq_of_switch(topo, link.src_switch),
                             freq_of_switch(topo, link.dst_switch));
      demand[l] = link.carried_bw_bits_per_s * options.injection_scale;
    }
    for (std::size_t c = 0; c < n_cores; ++c) {
      const int sw = topo.switch_of_core[c];
      const double cap = options.link_width_bits * freq_of_switch(topo, sw);
      capacity[static_cast<std::size_t>(ni_out_res(static_cast<soc::CoreId>(c)))] = cap;
      capacity[static_cast<std::size_t>(ni_in_res(static_cast<soc::CoreId>(c)))] = cap;
    }
    for (std::size_t f = 0; f < spec.flows.size(); ++f) {
      const double bw = spec.flows[f].bandwidth_bits_per_s * options.injection_scale;
      demand[static_cast<std::size_t>(ni_out_res(spec.flows[f].src))] += bw;
      demand[static_cast<std::size_t>(ni_in_res(spec.flows[f].dst))] += bw;
    }
    for (std::size_t r = 0; r < n_resources; ++r) {
      if (capacity[r] > 0.0 && demand[r] > capacity[r] * (1.0 + 1e-9)) {
        report.saturated = true;
      }
    }
  }

  // Event-driven run. Times in seconds; duration measured in cycles of the
  // fastest island clock (so "duration_cycles" is comparable across runs).
  double f_max = tech.freq_grid_hz;
  for (const core::SwitchInst& s : topo.switches) f_max = std::max(f_max, s.freq_hz);
  const double t_end = options.duration_cycles / f_max;
  const double t_warm = options.warmup_cycles / f_max;

  struct Event {
    double time;
    std::int64_t seq;   ///< tie-break for determinism
    int flow;
    int stage;
    double injected_at;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> events;
  std::int64_t next_seq = 0;

  std::mt19937 rng(options.seed);
  std::exponential_distribution<double> expo(1.0);

  // Pre-generate injections.
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const FlowPlan& plan = plans[f];
    // Desynchronize periodic flows so they do not all hit t=0 together.
    double t = options.random_arrivals
                   ? expo(rng) * plan.interarrival_s
                   : plan.interarrival_s * (static_cast<double>(f % 97) / 97.0);
    while (t < t_end) {
      events.push({t, next_seq++, static_cast<int>(f), 0, t});
      t += options.random_arrivals ? expo(rng) * plan.interarrival_s
                                   : plan.interarrival_s;
    }
  }

  std::vector<double> free_at(n_resources, 0.0);
  std::vector<double> busy_s(n_resources, 0.0);
  report.flows.assign(spec.flows.size(), FlowSimStats{});
  double latency_sum_cycles = 0.0;

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const FlowPlan& plan = plans[static_cast<std::size_t>(ev.flow)];
    const Stage& st = plan.stages[static_cast<std::size_t>(ev.stage)];

    double head_done = ev.time + st.head_s;
    if (st.resource >= 0) {
      const auto r = static_cast<std::size_t>(st.resource);
      const double start = std::max(ev.time, free_at[r]);
      head_done = start + st.head_s;
      const double serialize = st.per_flit_s * options.packet_flits;
      free_at[r] = start + serialize;
      busy_s[r] += serialize;
    }

    if (ev.stage + 1 < static_cast<int>(plan.stages.size())) {
      events.push({head_done, next_seq++, ev.flow, ev.stage + 1, ev.injected_at});
      continue;
    }
    // Delivered.
    if (ev.injected_at >= t_warm) {
      FlowSimStats& fs = report.flows[static_cast<std::size_t>(ev.flow)];
      const double lat_cycles = (head_done - ev.injected_at) * plan.src_freq_hz;
      ++fs.packets_delivered;
      fs.avg_latency_cycles += lat_cycles;  // sum; divided below
      fs.max_latency_cycles = std::max(fs.max_latency_cycles, lat_cycles);
      latency_sum_cycles += lat_cycles;
      ++report.packets_delivered;
    }
  }

  for (std::size_t f = 0; f < report.flows.size(); ++f) {
    FlowSimStats& fs = report.flows[f];
    if (fs.packets_delivered > 0) {
      fs.avg_latency_cycles /= fs.packets_delivered;
    }
    fs.offered_load = plans[f].bottleneck_capacity > 0.0
                          ? spec.flows[f].bandwidth_bits_per_s *
                                options.injection_scale / plans[f].bottleneck_capacity
                          : 0.0;
  }
  if (report.packets_delivered > 0) {
    report.avg_latency_cycles =
        latency_sum_cycles / static_cast<double>(report.packets_delivered);
  }
  const double span = t_end;
  for (std::size_t l = 0; l < n_links; ++l) {
    report.link_utilization[l] = span > 0.0 ? busy_s[l] / span : 0.0;
    report.max_link_utilization =
        std::max(report.max_link_utilization, report.link_utilization[l]);
  }
  return report;
}

double find_saturation_scale(const core::NocTopology& topo,
                             const soc::SocSpec& spec, int link_width_bits) {
  if (topo.routes.size() != spec.flows.size()) {
    throw std::invalid_argument(
        "find_saturation_scale: topology routes do not match spec flows");
  }
  double headroom = std::numeric_limits<double>::infinity();
  auto consider = [&headroom](double capacity, double demand) {
    if (demand > 0.0) headroom = std::min(headroom, capacity / demand);
  };
  for (const core::TopLink& l : topo.links) {
    const double cap = link_width_bits *
                       std::min(freq_of_switch(topo, l.src_switch),
                                freq_of_switch(topo, l.dst_switch));
    consider(cap, l.carried_bw_bits_per_s);
  }
  std::vector<double> ni_in(spec.cores.size(), 0.0);
  std::vector<double> ni_out(spec.cores.size(), 0.0);
  for (const soc::Flow& f : spec.flows) {
    ni_out[static_cast<std::size_t>(f.src)] += f.bandwidth_bits_per_s;
    ni_in[static_cast<std::size_t>(f.dst)] += f.bandwidth_bits_per_s;
  }
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    const double cap =
        link_width_bits * freq_of_switch(topo, topo.switch_of_core[c]);
    consider(cap, ni_in[c]);
    consider(cap, ni_out[c]);
  }
  return headroom;
}

}  // namespace vinoc::sim

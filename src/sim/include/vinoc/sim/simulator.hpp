// Cycle-based flit-level NoC simulator.
//
// Used to validate synthesized topologies: at low load the measured
// head-flit latency must equal the analytic zero-load latency used in the
// paper's Figure 3, and at the specified bandwidths no link may saturate
// (the router's capacity accounting must have been sound).
//
// Model (virtual cut-through approximation):
//  * a packet of `packet_flits` flits follows its flow's synthesized route;
//  * every link (NI attach, inter-switch, switch->NI) is a FIFO server that
//    forwards one flit per cycle; a crossing link's bi-sync FIFO adds the
//    technology's conversion latency to the head flit;
//  * each switch adds its pipeline latency to the head flit;
//  * contention: a packet must wait for the link to finish serializing every
//    packet that arrived before it (FIFO order, no preemption).
//
// Time is counted in cycles of the flow's source-island clock; frequency
// ratios between islands are folded into per-link service rates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vinoc/core/topology.hpp"
#include "vinoc/models/technology.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::sim {

struct SimOptions {
  double duration_cycles = 50'000;
  double warmup_cycles = 5'000;  ///< packets injected before this are dropped
                                 ///< from the statistics
  int packet_flits = 8;
  /// If true, interarrival times are exponential (Bernoulli-like traffic);
  /// otherwise packets are injected strictly periodically.
  bool random_arrivals = false;
  /// Global multiplier on every flow's injection rate (1.0 = the spec'd
  /// bandwidth); used by saturation sweeps.
  double injection_scale = 1.0;
  int link_width_bits = 32;
  unsigned seed = 42;
};

struct FlowSimStats {
  int packets_delivered = 0;
  double avg_latency_cycles = 0.0;  ///< head-flit, NI output to NI input
  double max_latency_cycles = 0.0;
  double offered_load = 0.0;  ///< flow bw / bottleneck link capacity
};

struct SimReport {
  std::vector<FlowSimStats> flows;  ///< parallel to SocSpec::flows
  double avg_latency_cycles = 0.0;  ///< over delivered packets of all flows
  double max_link_utilization = 0.0;
  std::vector<double> link_utilization;  ///< parallel to topology links
  std::int64_t packets_delivered = 0;
  bool saturated = false;  ///< some link's demand exceeds its capacity
};

/// Simulates `spec`'s traffic over the synthesized `topo`.
/// Throws std::invalid_argument on malformed inputs (routes missing, etc.).
[[nodiscard]] SimReport simulate(const core::NocTopology& topo,
                                 const soc::SocSpec& spec,
                                 const models::Technology& tech,
                                 const SimOptions& options = {});

/// Largest injection-scale multiplier (of the spec'd bandwidths) the
/// topology sustains without any link/NI demand exceeding capacity — the
/// design's bandwidth headroom, computed exactly as the minimum
/// capacity/demand ratio over all links and NI attachments. A correctly
/// synthesized design has headroom >= 1 (the router's admission checks).
[[nodiscard]] double find_saturation_scale(const core::NocTopology& topo,
                                           const soc::SocSpec& spec,
                                           int link_width_bits = 32);

}  // namespace vinoc::sim

// Link-width design-space exploration (the paper's stated extension).
//
// Section 4: "without loss of generality, we fix the data width of the NoC
// links to a user-defined value. Please note that it could be varied in a
// range and more design points could be explored, which does not affect the
// algorithm steps." This module does exactly that: run the synthesis once
// per candidate width and merge all saved design points into one global
// power/latency Pareto front, so the designer sees width as just another
// trade-off axis.
#pragma once

#include <cstddef>
#include <vector>

#include "vinoc/core/synthesis.hpp"

namespace vinoc::core {

struct WidthSweepEntry {
  int width_bits = 0;
  bool feasible = false;  ///< false if an NI link exceeds capacity at this width
  SynthesisResult result;
};

/// Reference to one design point of one width's synthesis run.
struct GlobalPointRef {
  std::size_t entry = 0;  ///< index into WidthSweepResult::entries
  std::size_t point = 0;  ///< index into entries[entry].result.points
};

struct WidthSweepResult {
  std::vector<WidthSweepEntry> entries;
  /// Global Pareto front over (noc_dynamic_w, avg_latency_cycles) across all
  /// widths, sorted by increasing power.
  std::vector<GlobalPointRef> pareto;

  [[nodiscard]] const DesignPoint& point(const GlobalPointRef& ref) const {
    return entries.at(ref.entry).result.points.at(ref.point);
  }
  [[nodiscard]] int width_of(const GlobalPointRef& ref) const {
    return entries.at(ref.entry).width_bits;
  }
};

/// Runs synthesize() once per width and merges the design spaces. `widths`
/// must be non-empty and positive. `base_options.link_width_bits` is
/// ignored. Widths at which an NI link exceeds attainable bandwidth
/// (synthesize() throws InfeasibleWidthError) are recorded as infeasible
/// entries, not fatal; every other error — invalid spec, bad alpha weights —
/// propagates to the caller.
///
/// The sweep runs on one pool of base_options.threads strands shared by the
/// per-width loop and each width's internal candidate sweep; results are
/// bit-identical for every thread count (see synthesis.hpp).
WidthSweepResult explore_link_widths(const soc::SocSpec& spec,
                                     const std::vector<int>& widths,
                                     const SynthesisOptions& base_options = {});

}  // namespace vinoc::core

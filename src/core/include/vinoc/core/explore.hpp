// Link-width design-space exploration (the paper's stated extension).
//
// Section 4: "without loss of generality, we fix the data width of the NoC
// links to a user-defined value. Please note that it could be varied in a
// range and more design points could be explored, which does not affect the
// algorithm steps." This module does exactly that: run the synthesis once
// per candidate width and merge all saved design points into one global
// power/latency Pareto front, so the designer sees width as just another
// trade-off axis.
#pragma once

#include <cstddef>
#include <vector>

#include "vinoc/core/synthesis.hpp"
#include "vinoc/obs/registry.hpp"

namespace vinoc::exec {
class ThreadPool;
}  // namespace vinoc::exec

namespace vinoc::core {

class EvalScratchPool;

struct WidthSweepEntry {
  int width_bits = 0;
  bool feasible = false;  ///< false if an NI link exceeds capacity at this width
  SynthesisResult result;
};

/// Reference to one design point of one width's synthesis run.
struct GlobalPointRef {
  std::size_t entry = 0;  ///< index into WidthSweepResult::entries
  std::size_t point = 0;  ///< index into entries[entry].result.points
};

struct WidthSweepResult {
  std::vector<WidthSweepEntry> entries;
  /// Global Pareto front over (noc_dynamic_w, avg_latency_cycles) across all
  /// widths, sorted by increasing power.
  std::vector<GlobalPointRef> pareto;

  [[nodiscard]] const DesignPoint& point(const GlobalPointRef& ref) const {
    return entries.at(ref.entry).result.points.at(ref.point);
  }
  [[nodiscard]] int width_of(const GlobalPointRef& ref) const {
    return entries.at(ref.entry).width_bits;
  }
};

/// Observability of one synthesize_width_set() call: how much of the sweep
/// was served by the sweep-structured evaluation (see width_eval.hpp).
struct WidthSetStats {
  int width_classes = 0;   ///< structural classes among the feasible widths
  /// (candidate, width) results materialised from a shared structure
  /// instead of being routed solo (certificate-accepted lanes included).
  int shared_evals = 0;
  /// (candidate, width) results whose routing outcome was width-dependent:
  /// a path certificate rejected some flow, so the width's tail was resumed
  /// (in a cohort or solo).
  int fallback_evals = 0;
  /// Lockstep survivors that needed >= 1 accepted path-level
  /// route-equivalence certificate — traces that differ from the leader's
  /// only in harmless near-tie flips (subset of shared_evals).
  int certified_evals = 0;
  /// Flow-level certificate acceptances across every lane (cohorts
  /// included).
  int certificate_accepts = 0;
  /// Diverged (candidate, width) results RESOLVED by a cohort lockstep —
  /// the cohort leader plus members that stayed locked to its tail (subset
  /// of fallback_evals) — and the number of cohorts formed.
  int cohort_evals = 0;
  int cohort_groups = 0;
  /// Per-class partition-table slots served by the sweep's cross-width
  /// partition cache beyond the first computation of each distinct
  /// (island, switch count, max block size) min-cut problem.
  int partition_cache_hits = 0;
  /// Sweep-global high-water mark of candidate outcomes buffered by the
  /// streaming per-width merges (see SynthesisStats::
  /// peak_buffered_outcomes).
  int peak_buffered_outcomes = 0;
  /// Candidate-level delta evaluation on the sweep's solo-schedule
  /// evaluations (one-width classes and classes voted out of lockstep);
  /// same meaning as the SynthesisStats::delta_* counters, summed across
  /// every (candidate, width) of the set. Multi-width lockstep evaluations
  /// already share whole structures, so delta does not apply there.
  int delta_candidates = 0;
  long long delta_flows_reused = 0;
  long long delta_flows_certified = 0;
  long long delta_flows_rerouted = 0;
  int delta_cert_rejects = 0;

  /// Share of non-leader (candidate, width) results served from a shared
  /// structure; 0 when the sweep had no followers.
  [[nodiscard]] double shared_rate() const {
    const int followers = shared_evals + fallback_evals;
    return followers > 0 ? static_cast<double>(shared_evals) / followers : 0.0;
  }
  /// Fraction of delta-eligible flows served without a live Dijkstra
  /// (see SynthesisStats::delta_reuse_rate).
  [[nodiscard]] double delta_reuse_rate() const {
    const long long reused = delta_flows_reused + delta_flows_certified;
    const long long total = reused + delta_flows_rerouted;
    return total > 0 ? static_cast<double>(reused) / static_cast<double>(total)
                     : 0.0;
  }

  /// The canonical registry view of these stats: counters registered in the
  /// `width_sweep_stats` record order, shared_rate/delta_reuse_rate as
  /// gauges. io::registry_record of this registry IS the CLI's --json
  /// width_sweep_stats record, and the `sharing:`/`delta:` console lines
  /// read their values from it — one serialization path, no drift.
  [[nodiscard]] obs::Registry to_registry() const;
};

/// Core engine of the width sweep: synthesizes `spec` at every width of
/// `widths` (entries parallel to it) with width-invariant work shared —
/// ONE floorplan, flow order and traffic profile for the whole set; ONE
/// min-cut partition per distinct (island, switch count, max block size)
/// across all widths; and, for widths whose derived island parameters share
/// a structural profile, ONE routed candidate structure evaluated at every
/// width of the class with per-width capacity checks verified in the
/// router's width lockstep (see vinoc/core/width_eval.hpp — widths whose
/// routing outcome is width-dependent fall back to the classic per-width
/// evaluation, detected soundly per decision).
///
/// Every entry's SynthesisResult is bit-identical to
/// synthesize(spec, base_options with that width) — same points, stats,
/// Pareto front — for every thread count and both prune settings
/// (elapsed_seconds, which is measured, reports the whole set's wall time).
/// Infeasible widths yield feasible == false with a default result, exactly
/// like the InfeasibleWidthError path of synthesize().
///
/// Progress: base_options.on_progress receives SWEEP-GLOBAL totals —
/// `completed` increases monotonically 1..total over all (candidate, width)
/// evaluations of the whole set, `total` is their overall count and
/// `link_width_bits` identifies the width whose evaluation completed. The
/// callback is serialised by one sweep-wide mutex.
std::vector<WidthSweepEntry> synthesize_width_set(
    const soc::SocSpec& spec, const std::vector<int>& widths,
    const SynthesisOptions& base_options, exec::ThreadPool& pool,
    EvalScratchPool& scratch, WidthSetStats* stats = nullptr);

/// Runs the synthesis once per width and merges the design spaces. `widths`
/// must be non-empty and positive. `base_options.link_width_bits` is
/// ignored. Widths at which an NI link exceeds attainable bandwidth are
/// recorded as infeasible entries, not fatal; every other error — invalid
/// spec, bad alpha weights — propagates to the caller.
///
/// The sweep runs on one pool of base_options.threads strands shared by
/// every internal fan-out, evaluates all widths through
/// synthesize_width_set() (width-invariant work shared, results
/// bit-identical to per-width synthesize() calls for every thread count),
/// and reports sweep-global progress (see synthesize_width_set). `stats`
/// (optional) receives the sharing telemetry of the underlying width-set
/// synthesis.
WidthSweepResult explore_link_widths(const soc::SocSpec& spec,
                                     const std::vector<int>& widths,
                                     const SynthesisOptions& base_options = {},
                                     WidthSetStats* stats = nullptr);

}  // namespace vinoc::core

// Shared (power, latency) Pareto-front rule.
//
// Both synthesize() (per-run front over its design points) and
// explore_link_widths() (global front across all widths) keep the same
// front: sort candidates by ascending noc_dynamic_w (ties broken by
// ascending avg_latency_cycles), then keep the strictly-latency-improving
// prefix points, with a 1e-12 absolute slack so floating-point noise does
// not admit duplicates. Extracted here so the two call sites cannot drift.
#pragma once

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

namespace vinoc::core {

/// Computes the Pareto front over `refs`. `metrics_of(ref)` must return
/// (a reference to) an object exposing `noc_dynamic_w` and
/// `avg_latency_cycles` (i.e. core::Metrics). Returns the front sorted by
/// increasing power. Deterministic: the sort order is a total function of
/// the input sequence, so equal inputs give equal fronts.
template <typename Ref, typename MetricsOf>
[[nodiscard]] std::vector<Ref> pareto_front(std::vector<Ref> refs,
                                            MetricsOf&& metrics_of) {
  std::sort(refs.begin(), refs.end(), [&metrics_of](const Ref& a, const Ref& b) {
    const auto& ma = metrics_of(a);
    const auto& mb = metrics_of(b);
    if (ma.noc_dynamic_w != mb.noc_dynamic_w) {
      return ma.noc_dynamic_w < mb.noc_dynamic_w;
    }
    return ma.avg_latency_cycles < mb.avg_latency_cycles;
  });
  std::vector<Ref> front;
  double best_lat = std::numeric_limits<double>::infinity();
  for (const Ref& ref : refs) {
    const auto& m = metrics_of(ref);
    if (m.avg_latency_cycles < best_lat - 1e-12) {
      front.push_back(ref);
      best_lat = m.avg_latency_cycles;
    }
  }
  return front;
}

}  // namespace vinoc::core

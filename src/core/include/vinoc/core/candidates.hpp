// Stage boundary of the staged exploration engine.
//
// Algorithm 1 is a sweep: an outer loop over per-island switch counts, an
// inner loop over intermediate-VI switch counts (and, one level up in
// explore_link_widths(), a sweep over link widths). This header splits the
// sweep into two pure stages that communicate only through value types:
//
//   1. ENUMERATION — enumerate_candidates() walks the (outer x inner) index
//      space and emits the deduplicated CandidateConfig list, in the exact
//      order the classic sequential loop would visit it. Cheap, sequential.
//   2. EVALUATION — evaluate_candidate() turns one CandidateConfig into a
//      CandidateOutcome: look up the precomputed partitions, place switches,
//      route all flows, compact/refine the topology, compute metrics. It
//      reads only const shared state (EvalContext) and touches no globals,
//      so any number of candidates can be evaluated concurrently.
//
// Between the stages sits compute_partitions(): the per-(island, k) min-cut
// partitions every candidate needs, memoized so partitioning runs once per
// island/switch-count pair instead of once per inner-loop iteration.
//
// synthesize() then merges outcomes back IN ENUMERATION ORDER — duplicate
// suppression, stats counters and the saved-point list all follow candidate
// index — which is what makes the parallel run bit-identical to the
// sequential one.
//
// Hot path: evaluation takes an optional per-worker EvalScratch (buffers
// reset, not reallocated, between candidates; see exec::WorkerLocal) and an
// optional ParetoBound for cost-bound pruning (see vinoc/core/prune.hpp) —
// a candidate whose monotone power/latency lower bounds are dominated by
// the current front is abandoned before routing/metrics complete.
#pragma once

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "vinoc/core/prune.hpp"
#include "vinoc/core/router.hpp"
#include "vinoc/core/synthesis.hpp"
#include "vinoc/exec/worker_local.hpp"

namespace vinoc::exec {
class ThreadPool;
}  // namespace vinoc::exec

namespace vinoc::core {

class ParetoBound;

/// One point of the sweep's index space, produced by the enumeration stage.
/// `intermediate_switches` is the k_int OFFERED to the router; the router
/// may use fewer (the evaluation stage compacts unused ones away).
struct CandidateConfig {
  std::vector<int> switches_per_island;
  int intermediate_switches = 0;
};

/// Enumerates the (outer x inner) sweep for `spec`: outer iterations i with
/// per-island switch counts k_j = min(min_sw_j + (i-1), |V_j|) (documented
/// deviation, see synthesis.hpp), deduplicated once every island saturates;
/// inner iterations k_int = 0..max_int. Pure; order matches the classic
/// sequential loop.
[[nodiscard]] std::vector<CandidateConfig> enumerate_candidates(
    const soc::SocSpec& spec, const std::vector<IslandNocParams>& island_params,
    const SynthesisOptions& options);

/// Cores-per-switch assignment of one island for a given switch count.
struct IslandPartition {
  std::vector<std::vector<soc::CoreId>> blocks;  ///< cores per switch
};

using PartitionKey = std::pair<soc::IslandId, int>;

/// (island, switch count) -> partition, computed once per distinct pair.
/// Flat sorted-vector container: the table sits on the evaluation hot path
/// (one lookup per island per candidate), is built once and read many
/// times, so lookups are a binary search over a dense key vector instead of
/// std::map node chasing. Keys and payloads live in parallel vectors; the
/// search never touches the (cold) partition blocks.
class PartitionTable {
 public:
  PartitionTable() = default;
  /// Creates one default-constructed slot per distinct key (the keys are
  /// sorted and deduplicated here; fill the slots via slot()).
  explicit PartitionTable(std::vector<PartitionKey> keys);

  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }
  [[nodiscard]] const PartitionKey& key(std::size_t i) const { return keys_[i]; }
  [[nodiscard]] IslandPartition& slot(std::size_t i) { return slots_[i]; }
  [[nodiscard]] const IslandPartition& slot(std::size_t i) const {
    return slots_[i];
  }
  /// nullptr when absent.
  [[nodiscard]] const IslandPartition* find(const PartitionKey& key) const;
  /// Throws std::out_of_range when absent (mirrors std::map::at).
  [[nodiscard]] const IslandPartition& at(const PartitionKey& key) const;

 private:
  std::vector<PartitionKey> keys_;      ///< sorted ascending, unique
  std::vector<IslandPartition> slots_;  ///< parallel to keys_
};

/// Runs the min-cut partitioner once for every distinct (island, switch
/// count) pair referenced by `candidates`, fanning the independent min-cut
/// problems out over `pool`. The returned table is immutable afterwards and
/// safely shared by concurrent evaluations.
[[nodiscard]] PartitionTable compute_partitions(
    const soc::SocSpec& spec, const SynthesisOptions& options,
    const std::vector<IslandNocParams>& island_params,
    const std::vector<CandidateConfig>& candidates, exec::ThreadPool& pool);

/// Everything the evaluation stage reads. All referenced objects are owned
/// by the caller, fully built before evaluation starts, and never mutated
/// while evaluations run — evaluate_candidate() is thread-safe by
/// construction.
struct EvalContext {
  const soc::SocSpec& spec;
  const floorplan::Floorplan& floorplan;
  const std::vector<IslandNocParams>& island_params;
  const IslandNocParams& intermediate_params;
  const PartitionTable& partitions;
  const std::vector<double>& core_traffic;  ///< per-core aggregate bandwidth
  const SynthesisOptions& options;
  /// Bandwidth-descending flow order shared by every candidate; the router
  /// re-sorts internally (same result) when null.
  const std::vector<std::size_t>* flow_order = nullptr;
  /// Spec-only floor of the power bound: Σ per-core NI dynamic power. Only
  /// read when a ParetoBound is supplied; 0 is a valid (weaker) floor.
  double ni_dynamic_base_w = 0.0;
};

enum class EvalStatus {
  kRouted,              ///< all flows routed within budget; point is valid
  kRejectedLatency,     ///< router failed on a latency budget
  kRejectedUnroutable,  ///< router failed structurally (ports/admissibility)
  kPruned,              ///< abandoned: lower bounds dominated by the front
};

/// Result of evaluating one candidate. `point`, `signature` and
/// `deadlock_free` are meaningful only when status == kRouted. When a
/// bound was supplied, the `pruned_*` lower bounds are filled for BOTH
/// kPruned (values at the abort checkpoint) and kRouted (values at the
/// last checkpoint of the evaluation) — the merge stage re-checks them
/// against the enumeration-ordered front to keep pruned runs bit-identical
/// to sequential ones for any thread count (see synthesis.cpp).
struct CandidateOutcome {
  EvalStatus status = EvalStatus::kRejectedUnroutable;
  DesignPoint point;
  /// Structural design signature for order-dependent deduplication, which
  /// therefore happens in the index-ordered merge, not here.
  std::vector<int> signature;
  bool deadlock_free = true;
  double pruned_power_lb_w = 0.0;
  double pruned_latency_lb_cycles = 0.0;
};

/// Per-worker scratch arena for the evaluation stage: router state, metrics
/// accumulators, placement/compaction buffers and the pruning-bound
/// vectors. Buffers are reset (assign/clear), never shrunk, so a sweep of
/// thousands of candidates allocates O(1) times per worker. Obtain one per
/// strand via EvalScratchPool; a null scratch falls back to call-local
/// allocation with identical results.
struct EvalScratch {
  RouterScratch router;
  MetricsScratch metrics;
  std::vector<floorplan::Point> centroid_pts;
  std::vector<double> centroid_wts;
  std::vector<double> min_flow_latency;   ///< per-flow latency floor
  std::vector<double> switch_bw_floor;    ///< per-switch endpoint traffic
  std::vector<double> switch_ebit_floor;  ///< per-switch energy/bit floor
  std::vector<double> switch_freq;        ///< per-switch frequency table
  /// Delta-evaluation replay state (taint vector, hop-comparison buffer,
  /// per-candidate counters); the caller points its `ref` at the group's
  /// published DeltaReference before each delta evaluation.
  DeltaRouteState delta;
};

/// Thread-keyed pool of EvalScratch arenas (exec::WorkerLocal). One slot
/// per strand, created lazily, reused across candidates, synthesize() runs
/// and — when the pool outlives them — campaign jobs.
class EvalScratchPool {
 public:
  [[nodiscard]] EvalScratch& local() { return slots_.local(); }
  [[nodiscard]] std::size_t slot_count() const { return slots_.slot_count(); }

 private:
  exec::WorkerLocal<EvalScratch> slots_;
};

/// Evaluation stage for one candidate: build switches from the partition
/// table, route all flows, compact unused intermediate switches, check
/// deadlock freedom, refine intermediate positions and compute metrics.
/// Pure w.r.t. `ctx` (const access only); deterministic per candidate.
///
/// `scratch` reuses the worker's buffers (optional). `bound` enables
/// Pareto-bound pruning: the candidate is abandoned (status kPruned) as
/// soon as its monotone power/latency lower bounds are dominated by the
/// front — before routing when the pre-routing floor already is, or after
/// any routed flow otherwise (restricted to topologies where the
/// intermediate-island fallback cannot change the outcome; see router.hpp).
///
/// `delta_record` / `delta` opt into the candidate-level delta evaluator
/// (see route_all_flows): a group REFERENCE evaluation records its routed
/// hop sequences into `delta_record` (pure observation); an adjacent
/// MEMBER evaluation replays them via `delta`, re-routing only the flows
/// the config diff can affect. Either way the outcome is bit-identical to
/// a plain evaluation of the same candidate.
[[nodiscard]] CandidateOutcome evaluate_candidate(const EvalContext& ctx,
                                                  const CandidateConfig& cand,
                                                  EvalScratch* scratch = nullptr,
                                                  const ParetoBound* bound = nullptr,
                                                  DeltaReference* delta_record = nullptr,
                                                  DeltaRouteState* delta = nullptr);

/// Incremental, enumeration-ordered merge of candidate outcomes into a
/// SynthesisResult — the single definition of Algorithm 1's dedup / stats /
/// Pareto-front / deterministic-pruning semantics, shared by synthesize()
/// and the width sweep (explore.cpp). Outcomes are fed ONE AT A TIME in
/// enumeration order (the i-th add() merges candidate i), so streaming
/// callers merge each candidate as soon as its predecessors have merged and
/// release it, instead of holding every outcome until the sweep ends —
/// SynthesisStats::peak_buffered_outcomes records the resulting buffer
/// high-water mark. `replay` re-evaluates candidate i against the
/// merge-front bound (called only when options.prune &&
/// options.deterministic_prune for a pruned outcome whose recorded bounds
/// the merge front does not dominate). Not thread-safe: callers serialise
/// add() externally. finish() builds result.pareto; call it exactly once,
/// after the final add().
class OutcomeMerger {
 public:
  using ReplayFn =
      std::function<CandidateOutcome(std::size_t, const ParetoBound&)>;
  OutcomeMerger(const SynthesisOptions& options, ReplayFn replay,
                SynthesisResult& result);
  void add(CandidateOutcome&& out);
  void finish();

 private:
  const SynthesisOptions& options_;
  ReplayFn replay_;
  SynthesisResult& result_;
  ParetoBound merge_bound_;
  std::set<std::vector<int>> seen_designs_;
  std::size_t index_ = 0;
};

/// One-shot wrapper over OutcomeMerger for callers that already hold every
/// outcome: merges `outcomes` (enumeration order) and finishes.
void merge_candidate_outcomes(
    std::vector<CandidateOutcome>&& outcomes, const SynthesisOptions& options,
    const std::function<CandidateOutcome(std::size_t, const ParetoBound&)>& replay,
    SynthesisResult& result);

/// Per-core total traffic (sum of inbound + outbound flow bandwidth), used
/// to weight switch placement.
[[nodiscard]] std::vector<double> compute_core_traffic(const soc::SocSpec& spec);

/// Spec-only floor of the power bound: Σ per-core NI dynamic power, exactly
/// the ni_dynamic_w term of compute_metrics (it depends on the flows alone).
[[nodiscard]] double compute_ni_dynamic_base_w(const soc::SocSpec& spec,
                                               const models::Technology& tech);

}  // namespace vinoc::core

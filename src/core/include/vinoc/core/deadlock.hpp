// Deadlock-freedom verification (extension beyond the paper).
//
// The paper routes each flow over a fixed least-cost path but does not
// discuss routing deadlock. For wormhole/virtual-cut-through NoCs the
// classic Dally–Seitz criterion applies: the topology+routing is
// deadlock-free iff the channel dependency graph (CDG) — one vertex per
// link, an edge l1 -> l2 whenever some flow traverses l2 immediately after
// l1 — is acyclic. vinoc's synthesized topologies are hierarchical
// (island-local switches plus direct or intermediate-VI crossings), which
// makes cycles unlikely but not impossible; this verifier proves it per
// design point and the test suite gates on it for every benchmark.
#pragma once

#include <vector>

#include "vinoc/core/topology.hpp"
#include "vinoc/graph/digraph.hpp"

namespace vinoc::core {

/// Channel dependency graph of a routed topology: node i = links[i];
/// edge (a, b) = some flow uses link b directly after link a. Edge::user
/// holds the index of one witnessing flow.
[[nodiscard]] graph::Digraph build_channel_dependency_graph(const NocTopology& topo);

/// True iff the CDG is acyclic (Dally–Seitz: no routing deadlock possible).
[[nodiscard]] bool is_deadlock_free(const NocTopology& topo);

/// Link indices involved in dependency cycles (empty iff deadlock-free).
/// Each inner vector is one strongly connected component with >= 2 links
/// (or a self-loop), i.e. one independent deadlock scenario.
[[nodiscard]] std::vector<std::vector<int>> dependency_cycles(const NocTopology& topo);

}  // namespace vinoc::core

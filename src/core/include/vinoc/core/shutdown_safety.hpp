// Shutdown-safety verification.
//
// The whole point of the paper: a topology supports voltage-island shutdown
// iff gating any shutdown-capable island only ever severs flows that
// terminate in that island. Equivalently, no route may pass through a
// switch located in a third, shutdown-capable island.
//
// verify_shutdown_safety() re-checks this property independently of the
// router (belt and braces: the router enforces it constructively, the
// verifier re-derives it from the finished topology).
#pragma once

#include <string>
#include <vector>

#include "vinoc/core/topology.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::core {

/// Flow indices that can no longer be routed when `island` is shut down
/// (i.e. flows whose route touches a switch of the island). For a
/// shutdown-safe topology this is exactly the set of flows with an endpoint
/// core in the island.
[[nodiscard]] std::vector<int> flows_blocked_by_shutdown(const NocTopology& topo,
                                                         const soc::SocSpec& spec,
                                                         soc::IslandId island);

/// Full safety audit. Checks, for every shutdown-capable island, that
/// flows_blocked_by_shutdown() equals the set of flows terminating in the
/// island, and that no intermediate-VI switch hosts a core. Returns
/// human-readable violations (empty = safe).
[[nodiscard]] std::vector<std::string> verify_shutdown_safety(
    const NocTopology& topo, const soc::SocSpec& spec);

}  // namespace vinoc::core

// Pareto-bound pruning support for the candidate-evaluation hot path.
//
// Algorithm 1 keeps a (noc_dynamic_w, avg_latency_cycles) Pareto front over
// the saved design points. During a sweep most candidates are dominated —
// their final metrics cannot beat any front point — and the evaluation
// engine can prove that EARLY, from monotone lower bounds on the metrics
// (see candidates.cpp / router.cpp), and abandon the candidate before the
// expensive routing + metrics work completes.
//
// ParetoBound is the dominance oracle: an incrementally maintained
// (power asc, latency strictly desc) staircase. `dominated(p_lb, l_lb)` is
// true when some recorded point has power <= p_lb AND latency <= l_lb; since
// a candidate's final metrics are >= its lower bounds component-wise, and
// the shared pareto_front() rule never admits a point that is
// dominated-or-equal, a dominated bound proves the candidate can never
// enter the front. Pruning on this oracle therefore preserves the Pareto
// front exactly; only dominated interior points are dropped from
// SynthesisResult::points.
//
// SharedParetoBound is the concurrent wrapper workers publish finished
// points into. Workers take an immutable snapshot per candidate (one lock),
// so mid-routing checks are lock-free. Because a snapshot may contain points
// from candidates that enumerate LATER, a worker's prune decision can differ
// from the sequential run's; synthesize() restores bit-identical output in
// deterministic mode by replaying any pruned candidate whose recorded bound
// is NOT dominated under the enumeration-ordered merge front (monotonicity
// of the bounds makes that check sufficient — see synthesis.cpp).
#pragma once

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

namespace vinoc::core {

/// Incremental (power, latency) dominance staircase. Not thread-safe; see
/// SharedParetoBound for the concurrent wrapper.
class ParetoBound {
 public:
  /// True if some recorded point has power <= power_lb and latency <=
  /// latency_lb (the point "dominates or equals" the bound).
  [[nodiscard]] bool dominated(double power_lb, double latency_lb) const {
    // front_ is sorted by power ascending with latency strictly descending,
    // so the minimum latency among points with power <= power_lb belongs to
    // the LAST such point.
    auto it = std::upper_bound(
        front_.begin(), front_.end(), power_lb,
        [](double p, const Point& pt) { return p < pt.power_w; });
    if (it == front_.begin()) return false;
    return std::prev(it)->latency_cycles <= latency_lb;
  }

  /// Records a finished design point's (power, latency). Dominated-or-equal
  /// incoming points are ignored; existing points the newcomer dominates are
  /// removed, keeping the staircase minimal.
  void insert(double power_w, double latency_cycles) {
    auto it = std::upper_bound(
        front_.begin(), front_.end(), power_w,
        [](double p, const Point& pt) { return p < pt.power_w; });
    if (it != front_.begin()) {
      const auto prev = std::prev(it);
      if (prev->latency_cycles <= latency_cycles) {
        return;  // dominated or equal: nothing new
      }
      if (prev->power_w == power_w) {
        // Equal power, worse latency: the newcomer supersedes it. (At most
        // one such point can exist — this branch keeps powers unique.)
        it = front_.erase(prev);
      }
    }
    it = front_.insert(it, Point{power_w, latency_cycles});
    // Drop successors with latency >= ours (they have power >= ours too).
    auto tail = std::next(it);
    auto last = tail;
    while (last != front_.end() && last->latency_cycles >= latency_cycles) {
      ++last;
    }
    front_.erase(tail, last);
  }

  [[nodiscard]] std::size_t size() const { return front_.size(); }
  [[nodiscard]] bool empty() const { return front_.empty(); }

 private:
  struct Point {
    double power_w;
    double latency_cycles;
  };
  std::vector<Point> front_;
};

/// Concurrent publish/snapshot wrapper over ParetoBound. Publishing and
/// snapshotting are mutex-guarded; snapshots are immutable and safe to query
/// from any thread without further locking.
class SharedParetoBound {
 public:
  void publish(double power_w, double latency_cycles) {
    const std::lock_guard<std::mutex> lock(mutex_);
    bound_.insert(power_w, latency_cycles);
    dirty_ = true;
  }

  /// Immutable snapshot for one candidate's checks (null when no point has
  /// been published yet — nothing to prune against).
  [[nodiscard]] std::shared_ptr<const ParetoBound> snapshot() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (dirty_) {
      snap_ = std::make_shared<const ParetoBound>(bound_);
      dirty_ = false;
    }
    return snap_;
  }

 private:
  std::mutex mutex_;
  ParetoBound bound_;
  std::shared_ptr<const ParetoBound> snap_;
  bool dirty_ = false;
};

}  // namespace vinoc::core

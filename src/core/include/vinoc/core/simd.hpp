// Portable 4-wide double/int lanes for the router's relaxation filter.
//
// The wrapper exposes exactly the operations the filter needs — unaligned
// loads, broadcast, lane-wise IEEE add and >=/< comparisons reduced to a
// 4-bit mask — over GCC/Clang vector extensions, with a scalar fallback
// that is the definitional reference. Per-lane IEEE arithmetic is
// deterministic, and the filter only COMPARES the computed floors (it never
// accumulates them into a running value), so the vector and scalar paths
// are bit-identical by construction: a survivor mask computed 4-wide equals
// the one computed element by element.
//
// The 4-wide double type is a pair of 16-byte vectors (baseline SSE2 /
// NEON registers), so no build flag or ABI concern arises on either x86-64
// or aarch64; with AVX enabled the compiler fuses the pairs.
//
// Build knobs:
//  * VINOC_SIMD_FORCE_SCALAR — compile the scalar fallback only (one CI
//    sanitizer matrix entry builds with this to keep the fallback honest).
//  * Non-GNU-compatible compilers fall back to scalar automatically.
#pragma once

#include <cstring>

#if !defined(VINOC_SIMD_FORCE_SCALAR) && (defined(__GNUC__) || defined(__clang__))
#define VINOC_SIMD_VECTOR_EXT 1
#endif

namespace vinoc::core::simd {

/// Number of elements one filter step covers.
inline constexpr int kWidth = 4;

/// True when the vector-extension path is compiled in (callers may still
/// disable it at runtime; see router.hpp set_router_simd_enabled).
[[nodiscard]] constexpr bool compiled_vector() {
#if defined(VINOC_SIMD_VECTOR_EXT)
  return true;
#else
  return false;
#endif
}

#if defined(VINOC_SIMD_VECTOR_EXT)

typedef double F64x2 __attribute__((vector_size(16), __may_alias__));
typedef long long I64x2 __attribute__((vector_size(16), __may_alias__));
typedef int I32x4 __attribute__((vector_size(16), __may_alias__));

/// Four doubles as a pair of native 16-byte vectors.
struct F64x4 {
  F64x2 lo, hi;
};

/// Unaligned loads (memcpy compiles to plain vector moves; the source
/// arrays carry no 16-byte alignment guarantee).
inline F64x4 load4(const double* p) {
  F64x4 v;
  std::memcpy(&v.lo, p, sizeof v.lo);
  std::memcpy(&v.hi, p + 2, sizeof v.hi);
  return v;
}
inline I32x4 load4i(const int* p) {
  I32x4 v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline F64x4 splat4(double x) { return {F64x2{x, x}, F64x2{x, x}}; }

inline F64x4 operator+(F64x4 a, F64x4 b) {
  return {a.lo + b.lo, a.hi + b.hi};
}

/// Lane-wise a >= b folded to a 4-bit mask, bit i = lane i.
inline unsigned ge_mask(F64x4 a, F64x4 b) {
  const I64x2 lo = a.lo >= b.lo;
  const I64x2 hi = a.hi >= b.hi;
  return (lo[0] < 0 ? 1u : 0u) | (lo[1] < 0 ? 2u : 0u) |
         (hi[0] < 0 ? 4u : 0u) | (hi[1] < 0 ? 8u : 0u);
}

/// Lane-wise v < 0 folded to a 4-bit mask, bit i = lane i.
inline unsigned lt0_mask(I32x4 v) {
  return (v[0] < 0 ? 1u : 0u) | (v[1] < 0 ? 2u : 0u) | (v[2] < 0 ? 4u : 0u) |
         (v[3] < 0 ? 8u : 0u);
}

#endif  // VINOC_SIMD_VECTOR_EXT

}  // namespace vinoc::core::simd
